// RAID-like striped hiding (paper §8: "data can be further encoded using
// RAID-like schemes, similarly to normal data"). A payload is spread over
// several blocks with Reed–Solomon parity shards; whole blocks can then
// die — bad blocks, or a normal user unknowingly recycling a cover page —
// and the payload still reconstructs.
//
// Run with: go run ./examples/raidstripe
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"stashflash"
)

func main() {
	dev := stashflash.OpenVendorA(21)
	hider, err := dev.NewHider([]byte("stripe key"), stashflash.Robust)
	if err != nil {
		log.Fatal(err)
	}

	// 6 data shards + 4 parity shards, one per block: any 4 block losses
	// are survivable.
	geo := stashflash.StripeGeometry{Data: 6, Parity: 4}
	var addrs []stashflash.PageAddr
	rng := rand.New(rand.NewPCG(1, 1))
	for b := 0; b < geo.Data+geo.Parity; b++ {
		a := stashflash.PageAddr{Block: b, Page: 0}
		cover := make([]byte, hider.PublicDataBytes())
		for i := range cover {
			cover[i] = byte(rng.IntN(256))
		}
		if err := hider.WritePage(a, cover); err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, a)
	}

	payload := make([]byte, hider.StripeCapacity(geo))
	copy(payload, "the full key material, spread across ten flash blocks")
	if err := hider.HideStriped(geo, addrs, payload, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hid %d bytes across %d blocks (%d data + %d parity shards)\n",
		len(payload), len(addrs), geo.Data, geo.Parity)

	// Disaster: four blocks are erased and recycled with new public data.
	for _, i := range []int{0, 3, 7, 9} {
		if err := dev.EraseBlock(addrs[i].Block); err != nil {
			log.Fatal(err)
		}
		cover := make([]byte, hider.PublicDataBytes())
		for j := range cover {
			cover[j] = byte(rng.IntN(256))
		}
		if err := hider.WritePage(addrs[i], cover); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("destroyed shards 0, 3, 7, 9 (blocks erased and recycled)")

	got, rep, err := hider.RevealStriped(geo, addrs, len(payload), 0)
	if err != nil {
		log.Fatalf("reveal: %v", err)
	}
	fmt.Printf("reveal detected failed shards %v and reconstructed from parity\n", rep.FailedShards)
	fmt.Printf("payload intact: %v\n", bytes.Equal(got, payload))
	fmt.Printf("recovered: %q\n", bytes.TrimRight(got, "\x00"))

	// A fifth loss exceeds the parity budget.
	if err := dev.EraseBlock(addrs[5].Block); err != nil {
		log.Fatal(err)
	}
	cover := make([]byte, hider.PublicDataBytes())
	if err := hider.WritePage(addrs[5], cover); err != nil {
		log.Fatal(err)
	}
	if _, rep, err := hider.RevealStriped(geo, addrs, len(payload), 0); err != nil {
		fmt.Printf("with a 5th loss (%d failed shards): %v\n", len(rep.FailedShards), err)
	}
}
