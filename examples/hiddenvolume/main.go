// Hidden volume: the paper's §9.2 steganographic "basic design". A public
// encrypted volume runs as a normal block device; with the secret key, a
// hidden volume mounts inside its cell voltages. Hidden sectors ride
// along through public overwrites and garbage collection, survive a
// remount from nothing but the key, and die quietly when the device is
// operated keyless.
//
// Run with: go run ./examples/hiddenvolume
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"stashflash"
)

func main() {
	dev := stashflash.OpenVendorA(7)
	vol, err := dev.CreateVolume([]byte("hidden passphrase"), []byte("disk encryption key"), 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public volume : %d sectors x %d bytes\n", vol.PublicCapacity(), vol.PublicSectorBytes())
	fmt.Printf("hidden volume : %d sectors x %d bytes\n\n", vol.HiddenCapacity(), vol.HiddenSectorBytes())

	// Ordinary use: the device is just an encrypted disk.
	rng := rand.New(rand.NewPCG(1, 1))
	sector := func() []byte {
		b := make([]byte, vol.PublicSectorBytes())
		for i := range b {
			b[i] = byte(rng.IntN(256))
		}
		return b
	}
	for lba := 0; lba < 32; lba++ {
		if err := vol.PublicWrite(lba, sector()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote 32 public sectors")

	// Hidden use: store secrets in the voltage levels.
	secrets := map[int]string{1: "offshore account", 2: "source identity", 3: "location"}
	for h, s := range secrets {
		if err := vol.HiddenWrite(h, []byte(s)); err != nil {
			log.Fatal(err)
		}
	}
	if err := vol.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d hidden sectors and synced the hidden superblock\n\n", len(secrets))

	// Heavy public churn: overwrites force garbage collection, which
	// migrates pages; the hiding layer re-embeds payloads on the fly.
	for i := 0; i < 3*vol.PublicCapacity(); i++ {
		if err := vol.PublicWrite(rng.IntN(vol.PublicCapacity()), sector()); err != nil {
			log.Fatal(err)
		}
	}
	st := vol.FTLStats()
	fmt.Printf("churned the public volume: %d host writes, %d GC copies (WA %.2f), wear %d..%d PEC\n",
		st.HostWrites, st.GCCopies, st.WriteAmplification, st.MinPEC, st.MaxPEC)

	// Remount from nothing but the key: anchors and validity bitmap are
	// re-derived; no plaintext metadata exists on the device.
	if err := vol.Remount([]byte("hidden passphrase")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nremounted hidden volume from the key alone:")
	for h, want := range secrets {
		got, err := vol.HiddenRead(h)
		if err != nil {
			log.Fatalf("hidden sector %d: %v", h, err)
		}
		fmt.Printf("  sector %d: %q (intact: %v)\n", h, got[:len(want)], string(got[:len(want)]) == want)
	}

	// The wrong key cannot even tell the hidden volume exists.
	if err := vol.Remount([]byte("rubber-hose guess")); err != nil {
		fmt.Printf("\nwrong key: %v\n", err)
	}
	if err := vol.Remount([]byte("hidden passphrase")); err != nil {
		log.Fatal(err)
	}
}
