// Retention: how long does hidden data last (paper Fig 11), and how does
// refreshing help (§8: "re-writing (refreshing) hidden data every several
// months ... can significantly improve retention")?
//
// The example hides payloads on a fresh and on a worn device, ages both
// by months of retention, and compares raw recovery — then demonstrates a
// refresh cycle restoring full margin.
//
// Run with: go run ./examples/retention
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"stashflash"
)

const month = 30 * 24 * time.Hour

func payload(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func main() {
	rng := rand.New(rand.NewPCG(5, 5))

	for _, tc := range []struct {
		name string
		pec  int
	}{
		{"fresh device (PEC 0)", 0},
		{"worn device (PEC 2000)", 2000},
	} {
		dev := stashflash.OpenVendorA(11)
		hider, err := dev.NewHider([]byte("key"), stashflash.Robust)
		if err != nil {
			log.Fatal(err)
		}
		// Pre-age the block, then store public + hidden data.
		elapsed = 0
		if tc.pec > 0 {
			if err := dev.Dev().CycleBlock(0, tc.pec); err != nil {
				log.Fatal(err)
			}
		}
		addr := stashflash.PageAddr{Block: 0, Page: 0}
		secret := payload(rng, hider.HiddenPayloadBytes())
		if _, err := hider.WriteAndHide(addr, payload(rng, hider.PublicDataBytes()), secret, 0); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s:\n", tc.name)
		for _, months := range []int{0, 1, 4, 8, 12} {
			cp := monthsElapsed(dev, months)
			got, st, err := hider.Reveal(addr, len(secret), 0)
			switch {
			case err != nil:
				fmt.Printf("  after %2d months: UNRECOVERABLE (%v)\n", cp, err)
			case !bytes.Equal(got, secret):
				fmt.Printf("  after %2d months: corrupted\n", cp)
			default:
				fmt.Printf("  after %2d months: intact (ECC corrected %d bits)\n", cp, st.CorrectedHidden)
			}
		}
		fmt.Println()
	}

	// Refresh: reveal and re-embed periodically on a worn device.
	fmt.Println("worn device (PEC 2000) with a 4-month refresh cycle:")
	dev := stashflash.OpenVendorA(13)
	hider, err := dev.NewHider([]byte("key"), stashflash.Robust)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.Dev().CycleBlock(0, 2000); err != nil {
		log.Fatal(err)
	}
	addr := stashflash.PageAddr{Block: 0, Page: 0}
	secret := payload(rng, hider.HiddenPayloadBytes())
	cover := payload(rng, hider.PublicDataBytes())
	if _, err := hider.WriteAndHide(addr, cover, secret, 0); err != nil {
		log.Fatal(err)
	}
	epoch := uint64(0)
	for cycle := 1; cycle <= 3; cycle++ {
		dev.Dev().AdvanceRetention(4 * month)
		got, _, err := hider.Reveal(addr, len(secret), epoch)
		if err != nil {
			fmt.Printf("  cycle %d: lost before refresh: %v\n", cycle, err)
			return
		}
		// Refresh: rewrite the cover page (fresh cells) and re-embed.
		if err := dev.EraseBlock(addr.Block); err != nil {
			log.Fatal(err)
		}
		epoch++
		if _, err := hider.WriteAndHide(addr, cover, got, epoch); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cycle %d (month %2d): revealed and re-embedded, payload intact: %v\n",
			cycle, cycle*4, bytes.Equal(got, secret))
	}
}

var elapsed int

func monthsElapsed(dev *stashflash.Device, target int) int {
	if target > elapsed {
		dev.Dev().AdvanceRetention(time.Duration(target-elapsed) * month)
		elapsed = target
	}
	return target
}
