// Quickstart: hide a message in the voltage levels of a simulated flash
// device, show that the public data is untouched and the wrong key gets
// nothing, then destroy the hidden payload with one erase.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"stashflash"
)

func main() {
	// A simulated vendor-A chip; the seed selects a physical sample.
	dev := stashflash.OpenVendorA(2026)
	fmt.Printf("device: %d blocks x %d pages x %d bytes\n",
		dev.Geometry().Blocks, dev.Geometry().PagesPerBlock, dev.Geometry().PageBytes)

	// The hiding user's pipeline, keyed by a master secret.
	hider, err := dev.NewHider([]byte("correct horse battery staple"), stashflash.Robust)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden capacity: %d bytes per page (of %d public bytes)\n\n",
		hider.HiddenPayloadBytes(), hider.PublicDataBytes())

	// 1. Store ordinary public data (any application data; here random
	// bytes standing in for an encrypted filesystem's blocks).
	addr := stashflash.PageAddr{Block: 3, Page: 0}
	public := make([]byte, hider.PublicDataBytes())
	rng := rand.New(rand.NewPCG(7, 7))
	for i := range public {
		public[i] = byte(rng.IntN(256))
	}
	if err := hider.WritePage(addr, public); err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. public data written to", addr)

	// 2. Hide a secret in the same page's cell voltages.
	secret := []byte("stash in a flash")
	st, err := hider.Hide(addr, secret, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. hid %d bytes using %d cells and %d partial-program steps\n",
		len(secret), st.Cells, st.Steps)

	// 3. The public data is unchanged — a normal user sees nothing odd.
	got, corrected, err := hider.ReadPublic(addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. public data intact: %v (ECC corrected %d symbols)\n",
		bytes.Equal(got, public), corrected)

	// 4. The right key recovers the secret with a single read.
	revealed, _, err := hider.Reveal(addr, len(secret), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. revealed: %q\n", revealed)

	// 5. The wrong key finds nothing (and cannot tell whether anything
	// is there).
	impostor, err := dev.NewHider([]byte("wrong key"), stashflash.Robust)
	if err != nil {
		log.Fatal(err)
	}
	if leak, _, err := impostor.Reveal(addr, len(secret), 0); err != nil {
		fmt.Printf("5. wrong key: %v\n", err)
	} else {
		fmt.Printf("5. wrong key read garbage: %q\n", leak)
	}

	// 6. One block erase destroys the hidden payload instantly.
	if err := dev.EraseBlock(addr.Block); err != nil {
		log.Fatal(err)
	}
	if err := hider.WritePage(addr, public); err != nil {
		log.Fatal(err)
	}
	if gone, _, err := hider.Reveal(addr, len(secret), 0); err != nil {
		fmt.Printf("6. after erase: %v\n", err)
	} else {
		fmt.Printf("6. after erase the secret is gone: %q\n", gone)
	}
}
