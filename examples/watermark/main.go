// Watermark: device-bound provenance (paper §9.1). A manufacturer embeds
// an authenticated record into the physical pages storing a firmware
// image; a counterfeit copy of the same bytes on another device fails
// verification, because the mark lives below the bit level.
//
// Run with: go run ./examples/watermark
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"stashflash"
)

func main() {
	authorityKey := []byte("acme factory signing secret")

	// The genuine device, marked at the factory.
	genuine := stashflash.OpenVendorA(1)
	marker, err := genuine.NewMarker(authorityKey)
	if err != nil {
		log.Fatal(err)
	}

	// "Firmware" content occupying a few pages.
	rng := rand.New(rand.NewPCG(99, 99))
	firmware := make([][]byte, 4)
	for i := range firmware {
		firmware[i] = make([]byte, marker.Hider().PublicDataBytes())
		for j := range firmware[i] {
			firmware[i][j] = byte(rng.IntN(256))
		}
	}

	record := stashflash.Record{ObjectID: 0xF1A5100D, Issuer: 1001, Serial: 1}
	for p, data := range firmware {
		addr := stashflash.PageAddr{Block: 0, Page: p}
		if err := marker.EmbedWithData(addr, data, record, 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("marked %d firmware pages with record %+v\n", len(firmware), record)

	// Field verification on the genuine device.
	for p := range firmware {
		got, err := marker.Verify(stashflash.PageAddr{Block: 0, Page: p}, 0)
		if err != nil {
			log.Fatalf("genuine device failed verification: %v", err)
		}
		if got != record {
			log.Fatalf("record mismatch: %+v", got)
		}
	}
	fmt.Println("genuine device: all pages verify")

	// A counterfeiter clones the firmware BYTES onto another device.
	clone := stashflash.OpenVendorA(2)
	cloneMarker, err := clone.NewMarker(authorityKey)
	if err != nil {
		log.Fatal(err)
	}
	for p, data := range firmware {
		if err := cloneMarker.Hider().WritePage(stashflash.PageAddr{Block: 0, Page: p}, data); err != nil {
			log.Fatal(err)
		}
	}
	fails := 0
	for p := range firmware {
		if _, err := cloneMarker.Verify(stashflash.PageAddr{Block: 0, Page: p}, 0); err != nil {
			fails++
		}
	}
	fmt.Printf("cloned device: %d/%d pages FAIL verification (bytes copy, voltages do not)\n",
		fails, len(firmware))
}
