package watermark

import (
	"math/rand/v2"
	"testing"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
)

func newMarker(t *testing.T, seed uint64, master string) (*Marker, *nand.Chip) {
	t.Helper()
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(8, 8, 4096), seed)
	m, err := New(chip, []byte(master), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, chip
}

func randPublic(rng *rand.Rand, m *Marker) []byte {
	b := make([]byte, m.Hider().PublicDataBytes())
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestEmbedVerifyRoundTrip(t *testing.T) {
	m, _ := newMarker(t, 1, "authority")
	rng := rand.New(rand.NewPCG(1, 1))
	a := nand.PageAddr{Block: 0, Page: 0}
	rec := Record{ObjectID: 0xDEADBEEFCAFE, Issuer: 42, Serial: 7}
	if err := m.EmbedWithData(a, randPublic(rng, m), rec, 0); err != nil {
		t.Fatal(err)
	}
	got, err := m.Verify(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("verified %+v, want %+v", got, rec)
	}
}

func TestUnmarkedPageRejected(t *testing.T) {
	m, _ := newMarker(t, 2, "authority")
	rng := rand.New(rand.NewPCG(2, 2))
	a := nand.PageAddr{Block: 0, Page: 0}
	if err := m.Hider().WritePage(a, randPublic(rng, m)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Verify(a, 0); err == nil {
		t.Fatal("unmarked page verified")
	}
}

func TestWrongAuthorityRejected(t *testing.T) {
	m, chip := newMarker(t, 3, "authority")
	rng := rand.New(rand.NewPCG(3, 3))
	a := nand.PageAddr{Block: 0, Page: 0}
	if err := m.EmbedWithData(a, randPublic(rng, m), Record{ObjectID: 1}, 0); err != nil {
		t.Fatal(err)
	}
	other, err := New(chip, []byte("impostor"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Verify(a, 0); err == nil {
		t.Fatal("impostor key verified the mark")
	}
}

func TestMarkDoesNotMoveAcrossPages(t *testing.T) {
	// A mark is bound to its physical page: the same record embedded at
	// page X must not verify at page Y (anti-replay for provenance).
	m, _ := newMarker(t, 4, "authority")
	rng := rand.New(rand.NewPCG(4, 4))
	a := nand.PageAddr{Block: 0, Page: 0}
	b := nand.PageAddr{Block: 0, Page: 2}
	rec := Record{ObjectID: 99, Issuer: 1, Serial: 1}
	if err := m.EmbedWithData(a, randPublic(rng, m), rec, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Hider().WritePage(b, randPublic(rng, m)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Verify(b, 0); err == nil {
		t.Fatal("mark verified at a page it was never embedded into")
	}
}

func TestPublicDataIntactAfterMark(t *testing.T) {
	m, _ := newMarker(t, 5, "authority")
	rng := rand.New(rand.NewPCG(5, 5))
	a := nand.PageAddr{Block: 0, Page: 0}
	public := randPublic(rng, m)
	if err := m.EmbedWithData(a, public, Record{ObjectID: 5}, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := m.Hider().ReadPublic(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != public[i] {
			t.Fatal("watermark corrupted public data")
		}
	}
}

func TestEraseDestroysMark(t *testing.T) {
	m, chip := newMarker(t, 6, "authority")
	rng := rand.New(rand.NewPCG(6, 6))
	a := nand.PageAddr{Block: 0, Page: 0}
	if err := m.EmbedWithData(a, randPublic(rng, m), Record{ObjectID: 5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := chip.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Hider().WritePage(a, randPublic(rng, m)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Verify(a, 0); err == nil {
		t.Fatal("mark survived an erase")
	}
}

func TestTooSmallCapacityRejected(t *testing.T) {
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(8, 8, 4096), 7)
	cfg := vthi.StandardConfig()
	cfg.HiddenCellsPerPage = 160 // BCH(8,8): 64 parity -> 12 payload bytes < record+tag
	cfg.BCHT = 8
	if _, err := New(chip, []byte("k"), cfg); err == nil {
		t.Fatal("capacity-starved config accepted")
	}
}
