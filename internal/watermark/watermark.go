// Package watermark builds the paper's §9.1 application on VT-HI:
// authentication and provenance. A trusted party embeds a signed record —
// binding an object identity to this physical device — into the voltage
// levels of the flash pages that store the object. Verification recovers
// the record and checks its tag; copying the file to another device (or a
// byte-level image of this one) cannot carry the watermark along, because
// the mark lives below the bit level ("copying hidden data without
// knowledge of the relevant secret key is impossible", §1).
//
// Records are HMAC-authenticated rather than public-key signed: the
// paper's motivating uses (counterfeit detection by the manufacturer,
// archival provenance by the archive) verify with the same authority that
// embedded, so a MAC gives the needed unforgeability with a fraction of
// the hidden-bit budget a signature would burn.
package watermark

import (
	"encoding/binary"
	"errors"
	"fmt"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
	"stashflash/internal/seal"
)

// Record is the provenance statement bound into the device.
type Record struct {
	// ObjectID identifies the watermarked object (for example a content
	// hash truncated by the caller's convention).
	ObjectID uint64
	// Issuer identifies the authority that embedded the mark.
	Issuer uint32
	// Serial is a per-issuer sequence number (anti-rollback).
	Serial uint32
}

const recordLen = 8 + 4 + 4

// Errors surfaced by watermark operations.
var (
	ErrNoWatermark = errors.New("watermark: no valid watermark found")
	ErrTooSmall    = errors.New("watermark: hidden page capacity too small for a record and tag")
)

// DefaultConfig returns the recommended hiding configuration for
// watermarking: the robust operating point with a slightly larger cell
// budget so a record plus a 32-bit-or-better tag fits in one page.
func DefaultConfig() vthi.Config {
	cfg := vthi.RobustConfig()
	cfg.HiddenCellsPerPage = 384
	return cfg
}

// Marker embeds and verifies provenance records on one device.
type Marker struct {
	hider  *vthi.Hider
	macKey []byte
	tagLen int
}

// New builds a Marker from the authority's master secret. Any nand.Device
// backend with the vendor command set works; the capability is asserted at
// construction.
func New(dev nand.Device, master []byte, cfg vthi.Config) (*Marker, error) {
	h, err := vthi.New(dev, master, cfg)
	if err != nil {
		return nil, err
	}
	keys := seal.DeriveKeys(master)
	tagLen := h.HiddenPayloadBytes() - recordLen
	if tagLen < 4 {
		return nil, fmt.Errorf("%w: %d payload bytes", ErrTooSmall, h.HiddenPayloadBytes())
	}
	if tagLen > 32 {
		tagLen = 32
	}
	return &Marker{hider: h, macKey: keys.MAC, tagLen: tagLen}, nil
}

// Hider exposes the underlying VT-HI pipeline (for callers that also
// manage the public data on the marked pages).
func (m *Marker) Hider() *vthi.Hider { return m.hider }

// encode serialises a record with its truncated tag bound to the page.
func (m *Marker) encode(a nand.PageAddr, r Record) []byte {
	buf := make([]byte, recordLen, recordLen+m.tagLen)
	binary.BigEndian.PutUint64(buf[0:8], r.ObjectID)
	binary.BigEndian.PutUint32(buf[8:12], r.Issuer)
	binary.BigEndian.PutUint32(buf[12:16], r.Serial)
	tag := m.tag(a, buf)
	return append(buf, tag...)
}

// tag binds the record bytes to the physical page so a mark cannot be
// replayed onto a different location.
func (m *Marker) tag(a nand.PageAddr, record []byte) []byte {
	bound := make([]byte, len(record)+8)
	copy(bound, record)
	binary.BigEndian.PutUint32(bound[len(record):], uint32(a.Block))
	binary.BigEndian.PutUint32(bound[len(record)+4:], uint32(a.Page))
	sum := seal.Sum(m.macKey, bound)
	return sum[:m.tagLen]
}

// Embed watermarks an already-programmed page with the record. The page's
// public content is untouched.
func (m *Marker) Embed(a nand.PageAddr, r Record, epoch uint64) error {
	_, err := m.hider.Hide(a, m.encode(a, r), epoch)
	return err
}

// EmbedWithData programs public data and watermarks it in one step.
func (m *Marker) EmbedWithData(a nand.PageAddr, public []byte, r Record, epoch uint64) error {
	_, err := m.hider.WriteAndHide(a, public, m.encode(a, r), epoch)
	return err
}

// Verify extracts and authenticates the watermark on a page. It returns
// ErrNoWatermark when the page carries none (or the key is wrong) — the
// two cases are indistinguishable by design.
func (m *Marker) Verify(a nand.PageAddr, epoch uint64) (Record, error) {
	payload, _, err := m.hider.Reveal(a, recordLen+m.tagLen, epoch)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrNoWatermark, err)
	}
	record := payload[:recordLen]
	want := m.tag(a, record)
	for i := range want {
		if payload[recordLen+i] != want[i] {
			return Record{}, ErrNoWatermark
		}
	}
	return Record{
		ObjectID: binary.BigEndian.Uint64(record[0:8]),
		Issuer:   binary.BigEndian.Uint32(record[8:12]),
		Serial:   binary.BigEndian.Uint32(record[12:16]),
	}, nil
}
