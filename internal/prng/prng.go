// Package prng implements the keyed pseudo-random machinery VT-HI uses to
// select which flash cells hold hidden bits (paper §5.3, Algorithm 1 line 2).
//
// The paper specifies "a pseudo-random number generator (PRNG), such as
// SHA-256, that produces a set of random numbers based on a key", combined
// with the page number so every page gets an independent selection. The
// hiding user never persists the cell map; it is recomputed from (key, page)
// on demand, so the stream here must be fully deterministic.
package prng

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// Stream is a deterministic byte stream derived from a secret key and a
// domain string via HMAC-SHA256 in counter mode. Distinct domains (for
// example "select/page/42" vs "scramble/page/42") yield independent
// streams under the same key.
type Stream struct {
	counter uint64
	key     []byte
	domain  []byte
	buf     []byte
	off     int

	// mac is the HMAC instance reused across refills (hmac.Reset restores
	// the keyed initial state, so reuse is bit-identical to a fresh
	// hmac.New per block); ctr is counter-encoding scratch. Both exist so
	// long selection draws do not allocate per 32-byte block.
	mac hash.Hash
	ctr [8]byte
}

// NewStream creates a stream bound to key and domain. The key is copied.
func NewStream(key []byte, domain string) *Stream {
	s := &Stream{
		key:    append([]byte(nil), key...),
		domain: []byte(domain),
	}
	return s
}

// PageStream derives the canonical per-page selection stream used by
// Algorithm 1: the key combined with the flash page number.
func PageStream(key []byte, page uint64, purpose string) *Stream {
	var pb [8]byte
	binary.BigEndian.PutUint64(pb[:], page)
	return NewStream(key, purpose+"/"+string(pb[:]))
}

func (s *Stream) refill() {
	if s.mac == nil {
		s.mac = hmac.New(sha256.New, s.key)
	} else {
		s.mac.Reset()
	}
	s.mac.Write(s.domain)
	binary.BigEndian.PutUint64(s.ctr[:], s.counter)
	s.mac.Write(s.ctr[:])
	s.counter++
	s.buf = s.mac.Sum(s.buf[:0])
	s.off = 0
}

// Bytes fills p with stream bytes.
func (s *Stream) Bytes(p []byte) {
	for len(p) > 0 {
		if s.off >= len(s.buf) {
			s.refill()
		}
		n := copy(p, s.buf[s.off:])
		s.off += n
		p = p[n:]
	}
}

// Uint64 returns the next 8 stream bytes as a big-endian uint64.
func (s *Stream) Uint64() uint64 {
	var b [8]byte
	s.Bytes(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Uint32 returns the next 4 stream bytes as a big-endian uint32.
func (s *Stream) Uint32() uint32 {
	var b [4]byte
	s.Bytes(b[:])
	return binary.BigEndian.Uint32(b[:])
}

// Intn returns a uniform integer in [0, n) using rejection sampling, so the
// result is exactly uniform (no modulo bias — bias in cell selection would
// itself be a statistical fingerprint). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive bound")
	}
	bound := uint64(n)
	// Largest multiple of bound that fits in a uint64.
	limit := (^uint64(0) / bound) * bound
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// SelectK deterministically selects k distinct integers from [0, n) using a
// partial Fisher–Yates shuffle driven by the stream. The result is sorted
// ascending so encoder and decoder walk cells in the same physical order.
// It panics if k > n or either is negative; callers size k from the page's
// available non-programmed bits, so exceeding n is a logic error.
func (s *Stream) SelectK(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("prng: SelectK bounds")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := idx[:k]
	insertionSort(out)
	return out
}

// SelectKSparse is SelectK for large n with small k: it draws indices by
// rejection instead of materialising a length-n permutation, so selecting
// 256 offsets out of ~70k candidate bits costs O(k) memory. The output is
// identical in distribution (uniform k-subsets) but not bit-identical to
// SelectK; encoder and decoder must agree on which variant they use.
func (s *Stream) SelectKSparse(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("prng: SelectKSparse bounds")
	}
	return s.SelectKSparseInto(make([]int, 0, k), n, k)
}

// SelectKSparseInto is SelectKSparse into a caller-owned buffer whose
// backing array is reused (dst may be nil). The stream draw sequence is
// identical to SelectKSparse — duplicates are redrawn — with the sorted
// result maintained by binary-search insertion instead of a scratch map,
// so steady-state callers allocate nothing.
func (s *Stream) SelectKSparseInto(dst []int, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("prng: SelectKSparse bounds")
	}
	out := dst[:0]
	for len(out) < k {
		v := s.Intn(n)
		lo, hi := 0, len(out)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if out[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(out) && out[lo] == v {
			continue // duplicate draw, same redraw as the map-based path
		}
		out = append(out, 0)
		copy(out[lo+1:], out[lo:])
		out[lo] = v
	}
	return out
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// XORStream XORs p in place with the stream; used to scramble/descramble
// hidden payloads so stored bit values are uniformly distributed (the paper
// notes VT-HI "encrypts hidden data, not unlike standard SSD controller
// data scrambling").
func (s *Stream) XORStream(p []byte) {
	tmp := make([]byte, len(p))
	s.Bytes(tmp)
	for i := range p {
		p[i] ^= tmp[i]
	}
}
