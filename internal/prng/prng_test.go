package prng

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStreamDeterministic(t *testing.T) {
	k := []byte("secret-key")
	a := make([]byte, 64)
	b := make([]byte, 64)
	NewStream(k, "d").Bytes(a)
	NewStream(k, "d").Bytes(b)
	if !bytes.Equal(a, b) {
		t.Fatal("same key+domain produced different streams")
	}
}

func TestStreamKeySeparation(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	NewStream([]byte("key-one"), "d").Bytes(a)
	NewStream([]byte("key-two"), "d").Bytes(b)
	if bytes.Equal(a, b) {
		t.Fatal("different keys produced identical streams")
	}
}

func TestStreamDomainSeparation(t *testing.T) {
	k := []byte("key")
	a := make([]byte, 64)
	b := make([]byte, 64)
	NewStream(k, "select").Bytes(a)
	NewStream(k, "scramble").Bytes(b)
	if bytes.Equal(a, b) {
		t.Fatal("different domains produced identical streams")
	}
}

func TestPageStreamPageSeparation(t *testing.T) {
	k := []byte("key")
	a := make([]byte, 32)
	b := make([]byte, 32)
	PageStream(k, 7, "select").Bytes(a)
	PageStream(k, 8, "select").Bytes(b)
	if bytes.Equal(a, b) {
		t.Fatal("different pages produced identical streams")
	}
}

func TestStreamChunkingInvariance(t *testing.T) {
	k := []byte("key")
	whole := make([]byte, 100)
	NewStream(k, "d").Bytes(whole)
	s := NewStream(k, "d")
	pieces := make([]byte, 0, 100)
	for _, n := range []int{1, 7, 31, 61} {
		p := make([]byte, n)
		s.Bytes(p)
		pieces = append(pieces, p...)
	}
	if !bytes.Equal(whole, pieces) {
		t.Fatal("chunked reads differ from one-shot read")
	}
}

func TestIntnUniformish(t *testing.T) {
	s := NewStream([]byte("k"), "intn")
	const n, draws = 10, 20000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	for v, c := range counts {
		f := float64(c) / draws
		if f < 0.08 || f > 0.12 {
			t.Errorf("value %d frequency %.4f, want ~0.1", v, f)
		}
	}
}

func TestIntnPanicsOnBadBound(t *testing.T) {
	s := NewStream([]byte("k"), "d")
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d): want panic", n)
				}
			}()
			s.Intn(n)
		}()
	}
}

func TestSelectKProperties(t *testing.T) {
	f := func(seedByte uint8, nSel, kSel uint16) bool {
		n := 1 + int(nSel)%500
		k := int(kSel) % (n + 1)
		s := NewStream([]byte{seedByte}, "sel")
		got := s.SelectK(n, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		prev := -1
		for _, v := range got {
			if v < 0 || v >= n || seen[v] || v <= prev {
				return false
			}
			seen[v] = true
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSelectKDeterministic(t *testing.T) {
	a := NewStream([]byte("k"), "sel").SelectK(100, 10)
	b := NewStream([]byte("k"), "sel").SelectK(100, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SelectK not deterministic")
		}
	}
}

func TestSelectKSparseProperties(t *testing.T) {
	f := func(seedByte uint8, kSel uint8) bool {
		n := 100000
		k := int(kSel) % 64
		s := NewStream([]byte{seedByte}, "sparse")
		got := s.SelectKSparse(n, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		prev := -1
		for _, v := range got {
			if v < 0 || v >= n || seen[v] || v <= prev {
				return false
			}
			seen[v] = true
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSelectBoundsPanic(t *testing.T) {
	s := NewStream([]byte("k"), "d")
	for _, fn := range []func(){
		func() { s.SelectK(5, 6) },
		func() { s.SelectK(-1, 0) },
		func() { s.SelectKSparse(5, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestXORStreamRoundTrip(t *testing.T) {
	k := []byte("key")
	msg := []byte("attack at dawn, hidden in the voltage levels")
	buf := append([]byte(nil), msg...)
	NewStream(k, "x").XORStream(buf)
	if bytes.Equal(buf, msg) {
		t.Fatal("XORStream left plaintext unchanged")
	}
	NewStream(k, "x").XORStream(buf)
	if !bytes.Equal(buf, msg) {
		t.Fatal("XORStream round trip failed")
	}
}
