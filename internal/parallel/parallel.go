// Package parallel is the bounded fan-out engine behind the experiment
// harness. It runs independent work units — chip samples, SVM-class
// blocks, replicate points — across a fixed number of goroutines while
// keeping every observable output deterministic: units are identified by
// index, results land in index-addressed slots, and callers merge them in
// index order. Combined with seed-partitioned PRNG streams (each unit
// derives its own stream from the run seed and its index, never sharing a
// sequential generator), the same inputs produce bit-identical results
// whether the pool runs one worker or sixteen.
//
// The pool deliberately has no work-stealing, batching or rate logic: the
// units the experiment layer submits are coarse (seconds of simulated
// chip work), so a shared atomic cursor is contention-free in practice.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment knob consulted by DefaultWorkers, for CI
// and scripts that cannot thread a flag through to the harness.
const EnvWorkers = "STASHFLASH_WORKERS"

// DefaultWorkers resolves the worker count used when a caller does not
// pin one explicitly: $STASHFLASH_WORKERS if set to a positive integer,
// otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(0) .. fn(n-1) on at most workers goroutines and waits
// for all of them. workers <= 1 degenerates to a plain serial loop on the
// calling goroutine.
//
// fn must treat its index as the unit's identity: any shared state it
// touches must either be read-only or be an index-addressed slot private
// to that unit. Under that contract the observable results are identical
// for every workers value.
//
// On failure ForEach returns the error of the lowest-indexed unit that
// ran and failed, wrapped with its index. Units not yet started when a
// failure is observed are skipped, so (only) on the error path the set of
// executed units may depend on scheduling.
//
// A unit that panics is reported as that unit's error rather than
// crashing the pool: a panic escaping into a pool goroutine would take
// the whole process down with no indication of which unit died, and
// would leave sibling workers unjoined. The panic value and the unit
// index are preserved in the error text.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := runUnit(fn, i); err != nil {
				return fmt.Errorf("parallel: unit %d: %w", i, err)
			}
		}
		return nil
	}

	var (
		cursor atomic.Int64
		failed atomic.Bool
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	cursor.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= n {
					return
				}
				if failed.Load() {
					continue // drain remaining indices without running them
				}
				if err := runUnit(fn, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("parallel: unit %d: %w", i, err)
		}
	}
	return nil
}

// runUnit runs one unit, converting a panic into an error so the pool
// always joins and the failure carries the unit's identity.
func runUnit(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("unit panicked: %v", r)
		}
	}()
	return fn(i)
}

// Map runs fn over indices 0..n-1 with at most workers goroutines and
// returns the results in index order, so downstream merges (float
// accumulation included) happen in a schedule-independent order. The
// same unit-isolation contract as ForEach applies.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
