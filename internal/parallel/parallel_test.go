package parallel

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	if err := ForEach(4, 0, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(0, 3, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("workers=0 must still run serially")
	}
}

func TestForEachZeroUnitsNeverCallsFn(t *testing.T) {
	for _, workers := range []int{0, 1, 8} {
		err := ForEach(workers, 0, func(int) error {
			t.Fatalf("workers=%d: fn called with zero units", workers)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestForEachMoreWorkersThanUnits pins the fan-out clamp: a pool wider
// than the work still runs every unit exactly once and joins cleanly.
func TestForEachMoreWorkersThanUnits(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{{4, 1}, {16, 3}, {64, 5}} {
		hits := make([]int32, tc.n)
		err := ForEach(tc.workers, tc.n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d n=%d: %v", tc.workers, tc.n, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d n=%d: index %d ran %d times", tc.workers, tc.n, i, h)
			}
		}
	}
}

// TestForEachPanicSurfacesAsError is the satellite contract: a panicking
// unit must come back as that unit's error — the pool joins, siblings
// finish, the process survives. Before panic recovery was added, the
// parallel path crashed the whole test binary here.
func TestForEachPanicSurfacesAsError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 20, func(i int) error {
			if i == 7 {
				panic("unit 7 exploded")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panicking unit did not surface as error", workers)
		}
		if !strings.Contains(err.Error(), "unit 7") || !strings.Contains(err.Error(), "exploded") {
			t.Fatalf("workers=%d: error %q names neither the unit nor the panic value", workers, err)
		}
	}
}

// TestMapPanicDiscardsResults mirrors the Map error contract for panics.
func TestMapPanicDiscardsResults(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 2 {
			panic("map unit died")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error from panicking unit")
	}
	if out != nil {
		t.Fatal("results must be discarded when a unit panics")
	}
}

func TestMapMatchesSerialResults(t *testing.T) {
	fn := func(i int) (int, error) { return i*i + 7, nil }
	want, err := Map(1, 257, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 33} {
		got, err := Map(workers, 257, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPropagatesLowestFailedUnit(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(8, 50, func(i int) error {
		if i == 13 || i == 31 {
			return boom
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the unit error", err)
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("bad unit")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatal("results must be discarded on error")
	}
}

func TestDefaultWorkersEnvKnob(t *testing.T) {
	t.Setenv(EnvWorkers, "3")
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("env knob: got %d, want 3", got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("bad env value: got %d, want GOMAXPROCS", got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative env value: got %d, want GOMAXPROCS", got)
	}
}

// TestForEachIndexSlotIsolation is the -race exercise of the pool's unit
// contract: many workers writing disjoint index-addressed slots.
func TestForEachIndexSlotIsolation(t *testing.T) {
	n := 512
	out := make([]uint64, n)
	err := ForEach(16, n, func(i int) error {
		v := uint64(1)
		for k := 0; k < 1000; k++ {
			v = v*6364136223846793005 + uint64(i)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v == 0 {
			t.Fatalf("slot %d never written", i)
		}
	}
}
