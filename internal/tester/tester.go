// Package tester is the host-side harness that drives a simulated NAND
// chip the way the paper's commercial SigNAS tester drives real packages
// (§6.1): it sequences raw commands into the characterisation and
// preconditioning procedures the evaluation needs — programming blocks
// with pseudorandom data, cycling them to target PEC levels, collecting
// per-state voltage distributions, measuring bit error rates, and emulating
// long retention periods (the paper's oven bake).
package tester

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"time"

	"stashflash/internal/nand"
	"stashflash/internal/stats"
)

// Tester drives one device through the full lab surface.
type Tester struct {
	dev nand.LabDevice
	rng *rand.Rand
}

// New creates a tester for a device. The seed drives only the
// host-generated pseudorandom data patterns, mirroring the paper's "on
// each run, a new random data pattern was used". Any nand.LabDevice
// backend works: the direct simulator chip or the ONFI bus adapter.
func New(dev nand.LabDevice, seed uint64) *Tester {
	return &Tester{dev: dev, rng: rand.New(rand.NewPCG(seed, 0x7e57e4))}
}

// Device exposes the underlying device for raw commands.
func (t *Tester) Device() nand.LabDevice { return t.dev }

// RandomPage generates one page worth of pseudorandom data.
func (t *Tester) RandomPage() []byte {
	b := make([]byte, t.dev.Geometry().PageBytes)
	for i := range b {
		b[i] = byte(t.rng.IntN(256))
	}
	return b
}

// ProgramRandomBlock programs every page of a block with fresh
// pseudorandom data and returns the written images for later BER
// comparison. The block must be erased.
func (t *Tester) ProgramRandomBlock(block int) ([][]byte, error) {
	g := t.dev.Geometry()
	// Generate every image first (host-side RNG order is part of the
	// harness contract), then push the whole block as one batched program
	// so a bus-attached chip sees multi-plane command cycles.
	flat := make([]byte, g.PagesPerBlock*g.PageBytes)
	for i := range flat {
		flat[i] = byte(t.rng.IntN(256))
	}
	pages := make([][]byte, g.PagesPerBlock)
	for p := range pages {
		pages[p] = flat[p*g.PageBytes : (p+1)*g.PageBytes : (p+1)*g.PageBytes]
	}
	if n, err := nand.ProgramPages(t.dev, nand.PageAddr{Block: block}, flat); err != nil {
		return nil, fmt.Errorf("tester: programming block %d page %d: %w", block, n, err)
	}
	return pages, nil
}

// CycleTo preconditions a block to the target PEC count using the
// simulator's fast-forward, then leaves it erased. This mirrors the
// paper's "we repeated this process for 0 to 3000 PEC".
func (t *Tester) CycleTo(block, targetPEC int) error {
	cur := t.dev.PEC(block)
	if targetPEC > cur {
		return t.dev.CycleBlock(block, targetPEC-cur)
	}
	return nil
}

// RealCycle performs n genuine program/erase cycles with random data; it
// is far slower than CycleTo and exists so tests can confirm the fast
// path and the real path agree on wear bookkeeping.
func (t *Tester) RealCycle(block, n int) error {
	for i := 0; i < n; i++ {
		if _, err := t.ProgramRandomBlock(block); err != nil {
			return err
		}
		if err := t.dev.EraseBlock(block); err != nil {
			return err
		}
	}
	return nil
}

// VoltageBins is the number of probe quantisation levels (0..255).
const VoltageBins = 256

// NewVoltageHistogram allocates the canonical one-bin-per-level histogram.
func NewVoltageHistogram() *stats.Histogram {
	return stats.NewHistogram(0, VoltageBins, VoltageBins)
}

// PageDistribution probes one page and splits cell levels into the erased
// ('1') and programmed ('0') populations around the public read reference,
// matching how the paper presents Fig 2 (separate curves per state).
func (t *Tester) PageDistribution(a nand.PageAddr) (erased, programmed *stats.Histogram, err error) {
	erased = NewVoltageHistogram()
	programmed = NewVoltageHistogram()
	if err := t.accumulatePage(a, erased, programmed); err != nil {
		return nil, nil, err
	}
	return erased, programmed, nil
}

// BlockDistribution probes every page of a block and accumulates the
// per-state voltage distributions.
func (t *Tester) BlockDistribution(block int) (erased, programmed *stats.Histogram, err error) {
	erased = NewVoltageHistogram()
	programmed = NewVoltageHistogram()
	g := t.dev.Geometry()
	levels := make([]uint8, g.CellsPerBlock())
	if _, err := nand.ProbeVoltages(t.dev, nand.PageAddr{Block: block}, g.PagesPerBlock, levels); err != nil {
		return nil, nil, err
	}
	t.accumulateLevels(levels, erased, programmed)
	return erased, programmed, nil
}

func (t *Tester) accumulatePage(a nand.PageAddr, erased, programmed *stats.Histogram) error {
	levels, err := t.dev.ProbePage(a)
	if err != nil {
		return err
	}
	t.accumulateLevels(levels, erased, programmed)
	return nil
}

func (t *Tester) accumulateLevels(levels []uint8, erased, programmed *stats.Histogram) {
	ref := uint8(t.dev.Model().ReadRef)
	for _, v := range levels {
		if v < ref {
			erased.Add(float64(v))
		} else {
			programmed.Add(float64(v))
		}
	}
}

// BERResult reports a bit error measurement.
type BERResult struct {
	Bits   int
	Errors int
}

// BER returns the measured bit error rate.
func (r BERResult) BER() float64 {
	if r.Bits == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Bits)
}

// MeasureBlockBER reads back a block programmed by ProgramRandomBlock and
// compares against the expected page images.
func (t *Tester) MeasureBlockBER(block int, expect [][]byte) (BERResult, error) {
	var res BERResult
	g := t.dev.Geometry()
	got := make([]byte, len(expect)*g.PageBytes)
	if _, err := nand.ReadPages(t.dev, nand.PageAddr{Block: block}, len(expect), got); err != nil {
		return res, err
	}
	for p, want := range expect {
		page := got[p*g.PageBytes : (p+1)*g.PageBytes]
		for i := range page {
			res.Errors += bits.OnesCount8(page[i] ^ want[i])
		}
		res.Bits += len(page) * 8
	}
	return res, nil
}

// Bake emulates d of power-off retention, the simulator's equivalent of
// the paper's accelerated oven aging (§8 Reliability). Under the lazy
// retention engine it is an O(1) virtual-clock bump — the decay is
// applied at the next sense of each page (nand/retention.go) — so baking
// a chip for years costs nothing until the data is actually read.
func (t *Tester) Bake(d time.Duration) {
	t.dev.AdvanceRetention(d)
}

// Ledger returns the chip's accumulated operation costs.
func (t *Tester) Ledger() nand.Ledger { return t.dev.Ledger() }
