package tester

import (
	"fmt"

	"stashflash/internal/core"
	"stashflash/internal/nand"
)

// Scheme-driven procedures: the harness analogue of handing the lab tester
// a firmware image. These consume the core.Scheme seam only, so the same
// sequences run unchanged over every registered hiding backend — the
// cross-scheme bake-off is built on them.

// randBytes generates n bytes from the tester's host-side RNG.
func (t *Tester) randBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(t.rng.IntN(256))
	}
	return b
}

// HideBlock drives a scheme across every hidden-capable page of an erased
// block: fresh pseudorandom public covers carrying fresh pseudorandom
// hidden payloads through WriteAndHide. It returns the hidden payloads in
// page order (for a later RevealBlock comparison) and the summed hide
// stats — the scheme's write-amplification numerators.
func (t *Tester) HideBlock(s core.Scheme, block int, epoch uint64) ([][]byte, core.HideStats, error) {
	g := t.dev.Geometry()
	stride := s.HiddenPageStride()
	var agg core.HideStats
	var payloads [][]byte
	for p := 0; p < g.PagesPerBlock; p += stride {
		a := nand.PageAddr{Block: block, Page: p}
		hidden := t.randBytes(s.HiddenPayloadBytes())
		st, err := s.WriteAndHide(a, t.randBytes(s.PublicDataBytes()), hidden, epoch)
		agg.Steps += st.Steps
		agg.Cells += st.Cells
		agg.Retries += st.Retries
		agg.FaultsAbsorbed += st.FaultsAbsorbed
		if err != nil {
			return payloads, agg, fmt.Errorf("tester: hiding into %v: %w", a, err)
		}
		payloads = append(payloads, hidden)
	}
	return payloads, agg, nil
}

// RevealBlock reads back every hidden payload of a block written by
// HideBlock, returning the payloads in page order and the summed reveal
// stats. Errors carry the failing page; partial results up to it are
// returned.
func (t *Tester) RevealBlock(s core.Scheme, block, n int, epoch uint64) ([][]byte, core.RevealStats, error) {
	g := t.dev.Geometry()
	stride := s.HiddenPageStride()
	var agg core.RevealStats
	var payloads [][]byte
	for p := 0; p < g.PagesPerBlock; p += stride {
		a := nand.PageAddr{Block: block, Page: p}
		got, st, err := s.Reveal(a, n, epoch)
		agg.CorrectedHidden += st.CorrectedHidden
		agg.CorrectedPublic += st.CorrectedPublic
		agg.Rereads += st.Rereads
		if err != nil {
			return payloads, agg, fmt.Errorf("tester: revealing %v: %w", a, err)
		}
		payloads = append(payloads, got)
	}
	return payloads, agg, nil
}
