package tester

import (
	"testing"
	"time"

	"stashflash/internal/nand"
)

func newTester(seed uint64) *Tester {
	return New(nand.NewChip(nand.TestModel(), seed), seed)
}

func TestProgramRandomBlockAndBER(t *testing.T) {
	ts := newTester(1)
	pages, err := ts.ProgramRandomBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != ts.Device().Geometry().PagesPerBlock {
		t.Fatalf("got %d page images", len(pages))
	}
	res, err := ts.MeasureBlockBER(0, pages)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != ts.Device().Geometry().CellsPerBlock() {
		t.Fatalf("bits = %d", res.Bits)
	}
	if ber := res.BER(); ber > 5e-4 {
		t.Fatalf("fresh block BER %.2e", ber)
	}
}

func TestProgramRandomBlockRejectsProgrammed(t *testing.T) {
	ts := newTester(2)
	if _, err := ts.ProgramRandomBlock(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.ProgramRandomBlock(0); err == nil {
		t.Fatal("reprogramming without erase accepted")
	}
}

func TestCycleTo(t *testing.T) {
	ts := newTester(3)
	if err := ts.CycleTo(1, 1500); err != nil {
		t.Fatal(err)
	}
	if pec := ts.Device().PEC(1); pec != 1500 {
		t.Fatalf("PEC = %d", pec)
	}
	// Cycling to a lower target is a no-op, never a rollback.
	if err := ts.CycleTo(1, 100); err != nil {
		t.Fatal(err)
	}
	if pec := ts.Device().PEC(1); pec != 1500 {
		t.Fatalf("PEC rolled back to %d", pec)
	}
}

func TestRealCycleMatchesFastPathPEC(t *testing.T) {
	ts := newTester(4)
	if err := ts.RealCycle(0, 3); err != nil {
		t.Fatal(err)
	}
	if pec := ts.Device().PEC(0); pec != 3 {
		t.Fatalf("real cycling left PEC = %d, want 3", pec)
	}
}

func TestBlockDistributionShapes(t *testing.T) {
	ts := newTester(5)
	if _, err := ts.ProgramRandomBlock(0); err != nil {
		t.Fatal(err)
	}
	erased, programmed, err := ts.BlockDistribution(0)
	if err != nil {
		t.Fatal(err)
	}
	total := erased.Total() + programmed.Total()
	if total != ts.Device().Geometry().CellsPerBlock() {
		t.Fatalf("histograms cover %d cells, block has %d", total, ts.Device().Geometry().CellsPerBlock())
	}
	// Random data: roughly half the cells per state.
	f := float64(erased.Total()) / float64(total)
	if f < 0.45 || f > 0.55 {
		t.Fatalf("erased fraction %.3f", f)
	}
	// State means must sit inside the paper's Fig 2 bands.
	if m := erased.Mean(); m < 10 || m > 45 {
		t.Errorf("erased mean %.1f outside [10,45]", m)
	}
	if m := programmed.Mean(); m < 140 || m > 190 {
		t.Errorf("programmed mean %.1f outside [140,190]", m)
	}
}

func TestPageDistribution(t *testing.T) {
	ts := newTester(6)
	if _, err := ts.ProgramRandomBlock(0); err != nil {
		t.Fatal(err)
	}
	erased, programmed, err := ts.PageDistribution(nand.PageAddr{Block: 0, Page: 3})
	if err != nil {
		t.Fatal(err)
	}
	if erased.Total()+programmed.Total() != ts.Device().Geometry().CellsPerPage() {
		t.Fatal("page histogram does not cover the page")
	}
}

func TestBakeAgesChip(t *testing.T) {
	ts := newTester(7)
	if err := ts.CycleTo(0, 2500); err != nil {
		t.Fatal(err)
	}
	pages, err := ts.ProgramRandomBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := ts.MeasureBlockBER(0, pages)
	ts.Bake(6 * 30 * 24 * time.Hour)
	after, _ := ts.MeasureBlockBER(0, pages)
	if after.Errors < before.Errors {
		t.Fatalf("bake reduced errors: %d -> %d", before.Errors, after.Errors)
	}
}

func TestBERResultZero(t *testing.T) {
	var r BERResult
	if r.BER() != 0 {
		t.Fatal("zero-bit BER must be 0")
	}
}
