package svm

import (
	"math"
	"math/rand/v2"
)

// Scaler standardises features to zero mean and unit variance, fitted on
// training data only. SVMs are scale-sensitive; the paper's "optimal
// parameters obtained using grid search" presuppose standardised inputs.
type Scaler struct {
	mean []float64
	std  []float64
}

// FitScaler learns per-feature moments from X.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	d := len(X[0])
	s := &Scaler{mean: make([]float64, d), std: make([]float64, d)}
	for _, x := range X {
		for j, v := range x {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(len(X))
	}
	for _, x := range X {
		for j, v := range x {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / float64(len(X)))
		if s.std[j] < 1e-12 {
			s.std[j] = 1
		}
	}
	return s
}

// Apply returns a standardised copy of X.
func (s *Scaler) Apply(X [][]float64) [][]float64 {
	if len(s.mean) == 0 {
		return X
	}
	out := make([][]float64, len(X))
	for i, x := range X {
		r := make([]float64, len(x))
		for j, v := range x {
			r[j] = (v - s.mean[j]) / s.std[j]
		}
		out[i] = r
	}
	return out
}

// CrossValidate scores params with k-fold cross-validation (stratified by
// shuffling with a fixed seed) and returns mean accuracy. Each fold fits
// its own scaler on the training split to avoid leakage.
func CrossValidate(X [][]float64, y []int, p Params, folds int, seed uint64) float64 {
	n := len(X)
	if folds < 2 || n < folds {
		panic("svm: bad cross-validation setup")
	}
	rng := rand.New(rand.NewPCG(seed, 0xf01d))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	total := 0.0
	for f := 0; f < folds; f++ {
		var trX, teX [][]float64
		var trY, teY []int
		for i, pi := range perm {
			if i%folds == f {
				teX = append(teX, X[pi])
				teY = append(teY, y[pi])
			} else {
				trX = append(trX, X[pi])
				trY = append(trY, y[pi])
			}
		}
		sc := FitScaler(trX)
		m := Train(sc.Apply(trX), trY, p)
		total += m.Accuracy(sc.Apply(teX), teY)
	}
	return total / float64(folds)
}

// GridResult reports the best configuration found by GridSearch.
type GridResult struct {
	Params   Params
	Accuracy float64
}

// DefaultGrid returns the parameter grid the experiments search: linear
// and RBF kernels across a logarithmic C (and gamma) range.
func DefaultGrid() []Params {
	var grid []Params
	for _, c := range []float64{0.1, 1, 10, 100} {
		p := DefaultParams()
		p.C = c
		grid = append(grid, p)
		for _, g := range []float64{0.01, 0.1, 1} {
			pr := DefaultParams()
			pr.C = c
			pr.Kernel = RBF{Gamma: g}
			grid = append(grid, pr)
		}
	}
	return grid
}

// GridSearch cross-validates every parameter set and returns the winner.
// This gives the adversary the paper's "unrealistically generous setup":
// the attack is tuned on the very data it will be scored on.
func GridSearch(X [][]float64, y []int, grid []Params, folds int, seed uint64) GridResult {
	best := GridResult{Accuracy: -1}
	for _, p := range grid {
		acc := CrossValidate(X, y, p, folds, seed)
		if acc > best.Accuracy {
			best = GridResult{Params: p, Accuracy: acc}
		}
	}
	return best
}
