// Package svm implements the supervised-learning attack the paper uses to
// evaluate detectability (§7): a soft-margin support-vector machine trained
// on per-block (or per-page) voltage-distribution features, asked to
// classify whether a block holds hidden data. Following the paper's
// methodology (which follows Wang et al.), the classifier is tuned by grid
// search and scored with k-fold cross-validation; 50% accuracy means the
// adversary does no better than a coin flip.
//
// The implementation is a from-scratch simplified SMO solver (Platt's
// algorithm in its standard didactic form) with linear and RBF kernels —
// ample for the dataset sizes of the paper's experiments (tens of blocks
// per class).
package svm

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Kernel computes an inner product in feature space.
type Kernel interface {
	Eval(a, b []float64) float64
	String() string
}

// Linear is the ordinary dot-product kernel.
type Linear struct{}

// Eval returns the dot product of a and b.
func (Linear) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func (Linear) String() string { return "linear" }

// RBF is the Gaussian radial-basis-function kernel.
type RBF struct{ Gamma float64 }

// Eval returns exp(-gamma * ||a-b||^2).
func (k RBF) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-k.Gamma * s)
}

func (k RBF) String() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// Params configures a training run.
type Params struct {
	C         float64 // soft-margin penalty
	Kernel    Kernel
	Tol       float64 // KKT violation tolerance
	MaxPasses int     // consecutive violation-free passes to converge
	Seed      uint64  // working-pair randomisation
}

// DefaultParams returns a sensible starting point.
func DefaultParams() Params {
	return Params{C: 1, Kernel: Linear{}, Tol: 1e-3, MaxPasses: 8, Seed: 1}
}

// Model is a trained SVM.
type Model struct {
	kernel  Kernel
	alphas  []float64
	targets []float64
	vecs    [][]float64
	b       float64
}

// Train fits an SVM on X (rows are samples) with labels y in {-1, +1}.
// It panics on malformed input — shape errors are harness bugs.
func Train(X [][]float64, y []int, p Params) *Model {
	n := len(X)
	if n == 0 || len(y) != n {
		panic("svm: empty training set or label mismatch")
	}
	for _, yi := range y {
		if yi != 1 && yi != -1 {
			panic("svm: labels must be +1/-1")
		}
	}
	if p.Tol <= 0 {
		p.Tol = 1e-3
	}
	if p.MaxPasses <= 0 {
		p.MaxPasses = 8
	}
	if p.Kernel == nil {
		p.Kernel = Linear{}
	}

	t := make([]float64, n)
	for i, yi := range y {
		t[i] = float64(yi)
	}
	// Precompute the kernel matrix: n is small in every use here.
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := p.Kernel.Eval(X[i], X[j])
			K[i][j] = v
			K[j][i] = v
		}
	}

	alphas := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewPCG(p.Seed, 0x5b0))

	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alphas[j] != 0 {
				s += alphas[j] * t[j] * K[j][i]
			}
		}
		return s
	}

	passes := 0
	iters := 0
	maxIters := 200 * n
	for passes < p.MaxPasses && iters < maxIters {
		iters++
		changed := 0
		for i := 0; i < n; i++ {
			Ei := f(i) - t[i]
			if !((t[i]*Ei < -p.Tol && alphas[i] < p.C) || (t[i]*Ei > p.Tol && alphas[i] > 0)) {
				continue
			}
			j := rng.IntN(n - 1)
			if j >= i {
				j++
			}
			Ej := f(j) - t[j]
			ai, aj := alphas[i], alphas[j]
			var L, H float64
			if t[i] != t[j] {
				L = math.Max(0, aj-ai)
				H = math.Min(p.C, p.C+aj-ai)
			} else {
				L = math.Max(0, ai+aj-p.C)
				H = math.Min(p.C, ai+aj)
			}
			if L == H {
				continue
			}
			eta := 2*K[i][j] - K[i][i] - K[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - t[j]*(Ei-Ej)/eta
			if ajNew > H {
				ajNew = H
			} else if ajNew < L {
				ajNew = L
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + t[i]*t[j]*(aj-ajNew)
			b1 := b - Ei - t[i]*(aiNew-ai)*K[i][i] - t[j]*(ajNew-aj)*K[i][j]
			b2 := b - Ej - t[i]*(aiNew-ai)*K[i][j] - t[j]*(ajNew-aj)*K[j][j]
			switch {
			case aiNew > 0 && aiNew < p.C:
				b = b1
			case ajNew > 0 && ajNew < p.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			alphas[i], alphas[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Keep only support vectors.
	m := &Model{kernel: p.Kernel, b: b}
	for i := 0; i < n; i++ {
		if alphas[i] > 1e-9 {
			m.alphas = append(m.alphas, alphas[i])
			m.targets = append(m.targets, t[i])
			m.vecs = append(m.vecs, X[i])
		}
	}
	return m
}

// Decision returns the signed margin of x.
func (m *Model) Decision(x []float64) float64 {
	s := m.b
	for i := range m.vecs {
		s += m.alphas[i] * m.targets[i] * m.kernel.Eval(m.vecs[i], x)
	}
	return s
}

// Classify returns +1 or -1 for x.
func (m *Model) Classify(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// SupportVectors returns the number of retained support vectors.
func (m *Model) SupportVectors() int { return len(m.vecs) }

// Accuracy scores the model on a labelled set.
func (m *Model) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	ok := 0
	for i := range X {
		if m.Classify(X[i]) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}
