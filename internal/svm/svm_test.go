package svm

import (
	"math/rand/v2"
	"testing"
)

// gauss2D draws a 2-D Gaussian blob around (cx, cy).
func gauss2D(rng *rand.Rand, n int, cx, cy, sd float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{cx + rng.NormFloat64()*sd, cy + rng.NormFloat64()*sd}
	}
	return out
}

func TestLinearSeparable(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	X := append(gauss2D(rng, 40, -2, -2, 0.5), gauss2D(rng, 40, 2, 2, 0.5)...)
	y := make([]int, 80)
	for i := range y {
		if i < 40 {
			y[i] = -1
		} else {
			y[i] = 1
		}
	}
	m := Train(X, y, DefaultParams())
	if acc := m.Accuracy(X, y); acc < 0.98 {
		t.Fatalf("linear SVM accuracy %.3f on separable blobs", acc)
	}
	if m.SupportVectors() == 0 || m.SupportVectors() == len(X) {
		t.Errorf("suspicious support vector count %d", m.SupportVectors())
	}
}

func TestRBFSolvesXOR(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	var X [][]float64
	var y []int
	for _, q := range []struct {
		cx, cy float64
		label  int
	}{{-2, -2, 1}, {2, 2, 1}, {-2, 2, -1}, {2, -2, -1}} {
		X = append(X, gauss2D(rng, 25, q.cx, q.cy, 0.5)...)
		for i := 0; i < 25; i++ {
			y = append(y, q.label)
		}
	}
	p := DefaultParams()
	p.Kernel = RBF{Gamma: 0.5}
	p.C = 10
	m := Train(X, y, p)
	if acc := m.Accuracy(X, y); acc < 0.95 {
		t.Fatalf("RBF SVM accuracy %.3f on XOR blobs", acc)
	}
	// A linear kernel cannot separate XOR.
	lin := Train(X, y, DefaultParams())
	if acc := lin.Accuracy(X, y); acc > 0.8 {
		t.Errorf("linear SVM claims %.3f on XOR; expected failure", acc)
	}
}

func TestRandomLabelsScoreAtChance(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	X := gauss2D(rng, 120, 0, 0, 1)
	y := make([]int, len(X))
	for i := range y {
		y[i] = 1 - 2*rng.IntN(2)
	}
	acc := CrossValidate(X, y, DefaultParams(), 3, 7)
	// Unlearnable labels must cross-validate near 50%.
	if acc < 0.3 || acc > 0.7 {
		t.Fatalf("CV accuracy %.3f on random labels, want ~0.5", acc)
	}
}

func TestCrossValidateSeparable(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	X := append(gauss2D(rng, 30, -3, 0, 0.5), gauss2D(rng, 30, 3, 0, 0.5)...)
	y := make([]int, 60)
	for i := range y {
		if i < 30 {
			y[i] = -1
		} else {
			y[i] = 1
		}
	}
	if acc := CrossValidate(X, y, DefaultParams(), 3, 1); acc < 0.95 {
		t.Fatalf("CV accuracy %.3f on separable data", acc)
	}
}

func TestGridSearchPrefersRBFOnXOR(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	var X [][]float64
	var y []int
	for _, q := range []struct {
		cx, cy float64
		label  int
	}{{-2, -2, 1}, {2, 2, 1}, {-2, 2, -1}, {2, -2, -1}} {
		X = append(X, gauss2D(rng, 20, q.cx, q.cy, 0.5)...)
		for i := 0; i < 20; i++ {
			y = append(y, q.label)
		}
	}
	res := GridSearch(X, y, DefaultGrid(), 4, 2)
	if res.Accuracy < 0.9 {
		t.Fatalf("grid search best accuracy %.3f on XOR", res.Accuracy)
	}
	if _, ok := res.Params.Kernel.(RBF); !ok {
		t.Errorf("grid search picked %v for XOR; expected an RBF kernel", res.Params.Kernel)
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	s := FitScaler(X)
	out := s.Apply(X)
	for j := 0; j < 2; j++ {
		mean := 0.0
		for i := range out {
			mean += out[i][j]
		}
		mean /= float64(len(out))
		if mean > 1e-9 || mean < -1e-9 {
			t.Errorf("feature %d mean %v after scaling", j, mean)
		}
	}
	// Constant features must not divide by zero.
	s2 := FitScaler([][]float64{{5}, {5}, {5}})
	if got := s2.Apply([][]float64{{5}})[0][0]; got != 0 {
		t.Errorf("constant feature scaled to %v", got)
	}
}

func TestTrainPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { Train(nil, nil, DefaultParams()) },
		func() { Train([][]float64{{1}}, []int{2}, DefaultParams()) },
		func() { CrossValidate([][]float64{{1}}, []int{1}, DefaultParams(), 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}
