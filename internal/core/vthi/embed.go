package vthi

import (
	"errors"
	"fmt"

	"stashflash/internal/nand"
	"stashflash/internal/prng"
)

// Embedder is the bit-level half of VT-HI: keyed cell selection plus the
// voltage manipulation loop, with no cryptography or ECC. The experiment
// harness drives it directly to measure raw hidden BER (paper Figs 6/7);
// Hider wraps it with the full Algorithm 1 pipeline.
// Like the nand.Device it drives, an Embedder is not safe for concurrent
// use: the hot-path methods reuse owned scratch buffers (page reads, cell
// candidate and pending lists) so steady-state embedding and decoding
// allocate nothing.
type Embedder struct {
	dev       nand.VendorDevice
	cfg       Config
	locateKey []byte

	raw     []byte // page-read scratch
	cand    []int  // candidate cell indices scratch
	sel     []int  // keyed selection scratch
	pending []int  // pulse / fine-program cell list scratch
}

// NewEmbedder builds an embedder for a device under cfg, selecting cells
// with locateKey. It returns an error for configurations the device
// cannot host.
func NewEmbedder(dev nand.VendorDevice, locateKey []byte, cfg Config) (*Embedder, error) {
	if err := cfg.Validate(dev.Model()); err != nil {
		return nil, err
	}
	g := dev.Geometry()
	return &Embedder{
		dev:       dev,
		cfg:       cfg,
		locateKey: append([]byte(nil), locateKey...),
		raw:       make([]byte, g.PageBytes),
		cand:      make([]int, 0, g.CellsPerPage()),
		pending:   make([]int, 0, cfg.HiddenCellsPerPage),
	}, nil
}

// Config returns the embedder's configuration.
func (e *Embedder) Config() Config { return e.cfg }

// PagePlan is the resolved cell selection for one page: cells[j] is the
// absolute cell index holding hidden bit j. It is recomputed from
// (key, page, public image) on demand and never persisted — the paper's
// "the HU does not explicitly persist the location of cells" (§5.3).
type PagePlan struct {
	Addr  nand.PageAddr
	Cells []int
}

// pageIndex flattens a page address into the PRNG's page number.
func (e *Embedder) pageIndex(a nand.PageAddr) uint64 {
	return nand.PageIndex(e.dev.Geometry(), a)
}

// Plan selects nBits cells for page a given its exact public image
// (the as-programmed bytes including any public parity). Only
// non-programmed ('1') public bits are candidates: PP "is too coarse to
// reliably make fine-grained changes to programmed cells" (§6.2).
func (e *Embedder) Plan(a nand.PageAddr, image []byte, nBits int) (*PagePlan, error) {
	p := &PagePlan{}
	if err := e.PlanTo(p, a, image, nBits); err != nil {
		return nil, err
	}
	return p, nil
}

// PlanTo is Plan into a caller-owned PagePlan, reusing p.Cells' backing
// array across calls. Experiments that hold several plans live at once
// keep distinct PagePlan values (or use Plan); the steady-state hide and
// reveal paths reuse one.
func (e *Embedder) PlanTo(p *PagePlan, a nand.PageAddr, image []byte, nBits int) error {
	g := e.dev.Geometry()
	if len(image) != g.PageBytes {
		return fmt.Errorf("vthi: image is %d bytes, page holds %d", len(image), g.PageBytes)
	}
	if nBits > e.cfg.HiddenCellsPerPage {
		return fmt.Errorf("vthi: %d bits exceed configured budget %d", nBits, e.cfg.HiddenCellsPerPage)
	}
	candidates := e.cand[:0]
	for i := 0; i < g.CellsPerPage(); i++ {
		if imageBit(image, i) == 1 {
			candidates = append(candidates, i)
		}
	}
	e.cand = candidates
	if len(candidates) < nBits {
		return fmt.Errorf("vthi: page %v has only %d non-programmed bits, need %d", a, len(candidates), nBits)
	}
	stream := prng.PageStream(e.locateKey, e.pageIndex(a), "vt-hi/select")
	e.sel = stream.SelectKSparseInto(e.sel, len(candidates), nBits)
	sel := e.sel
	if cap(p.Cells) < nBits {
		p.Cells = make([]int, nBits)
	}
	p.Cells = p.Cells[:nBits]
	for j, s := range sel {
		p.Cells[j] = candidates[s]
	}
	p.Addr = a
	return nil
}

// encodeTarget returns the voltage level hidden-'0' cells must reach on
// page a, before the guard band. Plain (paper-faithful) mode uses the
// absolute VthHidden; compensated mode re-centers it for the page's
// current neighbour-program count and block wear, making the threshold
// meaningful at any block fill state.
func (e *Embedder) encodeTarget(a nand.PageAddr) (float64, error) {
	t := e.cfg.VthHidden
	if !e.cfg.InterferenceComp {
		return t, nil
	}
	k, err := e.dev.NeighborPrograms(a)
	if err != nil {
		return 0, err
	}
	m := e.dev.Model()
	return t - float64(2-k)*m.InterfMean + e.wearComp(a), nil
}

// ProgramStep performs one iteration of Algorithm 1's main loop: read the
// page at the embed threshold, then partial-program every hidden-'0' cell
// still below it. It returns how many cells were pulsed; zero means the
// encode converged and no command was issued beyond the verify read.
func (e *Embedder) ProgramStep(p *PagePlan, bits []uint8) (pulsed int, err error) {
	if len(bits) != len(p.Cells) {
		return 0, fmt.Errorf("vthi: %d bits for %d planned cells", len(bits), len(p.Cells))
	}
	target, err := e.encodeTarget(p.Addr)
	if err != nil {
		return 0, err
	}
	if err := nand.ReadPageRefInto(e.dev, p.Addr, target+e.cfg.EmbedGuard, e.raw); err != nil {
		return 0, err
	}
	pending := e.pending[:0]
	for j, cell := range p.Cells {
		if bits[j] == 0 && imageBit(e.raw, cell) == 1 { // still below Vth
			pending = append(pending, cell)
		}
	}
	e.pending = pending
	if len(pending) == 0 {
		return 0, nil
	}
	if err := e.dev.PartialProgram(p.Addr, pending); err != nil {
		return 0, err
	}
	return len(pending), nil
}

// Embed runs the full encode loop, up to maxSteps iterations (m in
// Algorithm 1), and returns the number of PP passes actually issued.
func (e *Embedder) Embed(p *PagePlan, bits []uint8, maxSteps int) (steps int, err error) {
	for s := 0; s < maxSteps; s++ {
		pulsed, err := e.ProgramStep(p, bits)
		if err != nil {
			return steps, err
		}
		if pulsed == 0 {
			break
		}
		steps++
	}
	return steps, nil
}

// EmbedResilient is Embed for a device under fault injection: transient
// partial-program status FAILs (nand.ErrProgramFailed on a still-good
// block) are absorbed — a failed pulse moved no charge, so the loop simply
// re-verifies and pulses again, up to maxFaults times. Failed pulses do
// not consume the step budget. Non-transient errors (power loss, grown bad
// block) abort immediately.
func (e *Embedder) EmbedResilient(p *PagePlan, bits []uint8, maxSteps, maxFaults int) (steps, absorbed int, err error) {
	for budget := maxSteps; budget > 0; {
		pulsed, err := e.ProgramStep(p, bits)
		if err != nil {
			if errors.Is(err, nand.ErrProgramFailed) &&
				!e.dev.IsBadBlock(p.Addr.Block) && absorbed < maxFaults {
				absorbed++
				continue
			}
			return steps, absorbed, err
		}
		if pulsed == 0 {
			break
		}
		steps++
		budget--
	}
	return steps, absorbed, nil
}

// FineEmbed is the vendor-supported single-pass encode (§6.2): hidden '0'
// cells are parked just above Vth by one controller-grade fine programming
// operation. It must run at page-program time, before neighbour pages are
// programmed, so the natural levels are still below Vth.
func (e *Embedder) FineEmbed(p *PagePlan, bits []uint8) error {
	if !e.cfg.Vendor {
		return fmt.Errorf("vthi: FineEmbed requires a vendor-mode configuration")
	}
	if len(bits) != len(p.Cells) {
		return fmt.Errorf("vthi: %d bits for %d planned cells", len(bits), len(p.Cells))
	}
	zeros := e.pending[:0]
	for j, cell := range p.Cells {
		if bits[j] == 0 {
			zeros = append(zeros, cell)
		}
	}
	e.pending = zeros
	if len(zeros) == 0 {
		return nil
	}
	// Compensate the park target for interference already accumulated
	// from neighbour programs before this hide; DecodeRef applies the
	// matching compensation with the neighbour count at read time, so
	// interference added after the hide cancels out of the margin.
	k, err := e.dev.NeighborPrograms(p.Addr)
	if err != nil {
		return err
	}
	m := e.dev.Model()
	target := e.cfg.VthHidden + e.cfg.FinePark +
		float64(k)*m.InterfMean + e.wearComp(p.Addr)
	return e.dev.FineProgram(p.Addr, zeros, target)
}

// wearComp is the mean wear-induced distribution shift of the page's
// block; vendor firmware tracks PEC and can fold it into both the park
// target and the decode reference ("the ability to dynamically adjust
// voltage thresholds and targets ... is generally available to the
// controller internally", §6.2).
func (e *Embedder) wearComp(a nand.PageAddr) float64 {
	m := e.dev.Model()
	return m.WearShiftPerK * float64(e.dev.PEC(a.Block)) / 1000
}

// DecodeRef returns the reference threshold for reading hidden bits from
// page a. Standard mode reads at Vth directly. Vendor mode positions the
// reference between the natural and parked populations and adds the mean
// interference accumulated from neighbour programs since the hide — the
// firmware knows the neighbour program count, so this needs no key.
func (e *Embedder) DecodeRef(a nand.PageAddr) (float64, error) {
	if !e.cfg.Vendor {
		target, err := e.encodeTarget(a)
		if err != nil {
			return 0, err
		}
		return target + e.cfg.EmbedGuard/2, nil
	}
	n, err := e.dev.NeighborPrograms(a)
	if err != nil {
		return 0, err
	}
	m := e.dev.Model()
	return e.cfg.VthHidden + e.cfg.DecodeRefOffset +
		float64(n)*m.InterfMean + e.wearComp(a), nil
}

// ReadBits extracts the hidden bits of a plan with a single read at the
// shifted reference threshold: below the reference reads '1', at or above
// reads '0' (Fig 5). Non-destructive and repeatable.
func (e *Embedder) ReadBits(p *PagePlan) ([]uint8, error) {
	return e.ReadBitsAt(p, 0)
}

// ReadBitsAt reads the hidden bits with the reference threshold nudged by
// refDelta levels off the nominal DecodeRef — the read-retry primitive SSD
// firmware uses when the nominal reference fails to decode (read disturb
// pushes erased cells up; retention pulls programmed cells down).
func (e *Embedder) ReadBitsAt(p *PagePlan, refDelta float64) ([]uint8, error) {
	bits := make([]uint8, len(p.Cells))
	if err := e.ReadBitsInto(p, refDelta, bits); err != nil {
		return nil, err
	}
	return bits, nil
}

// ReadBitsInto is ReadBitsAt into a caller-owned bit buffer of exactly
// len(p.Cells) entries; the page read lands in embedder-owned scratch, so
// the steady-state reveal path allocates nothing.
func (e *Embedder) ReadBitsInto(p *PagePlan, refDelta float64, bits []uint8) error {
	if len(bits) != len(p.Cells) {
		return fmt.Errorf("vthi: %d-entry bit buffer for %d planned cells", len(bits), len(p.Cells))
	}
	ref, err := e.DecodeRef(p.Addr)
	if err != nil {
		return err
	}
	if err := nand.ReadPageRefInto(e.dev, p.Addr, ref+refDelta, e.raw); err != nil {
		return err
	}
	for j, cell := range p.Cells {
		bits[j] = imageBit(e.raw, cell)
	}
	return nil
}

// imageBit extracts cell i's bit from page bytes (MSB first).
func imageBit(image []byte, i int) uint8 {
	return (image[i/8] >> uint(7-i%8)) & 1
}
