package vthi

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

// Ablation: the paper-faithful plain threshold (StandardConfig) versus the
// compensated robust mode, across block fill states. The paper only ever
// hides into fully programmed blocks; these tests document why a live
// system needs the compensated mode (DESIGN.md §6).

// hideAtFillState programs `fill` pages of a block, hides into the last
// programmed page, then programs the remaining pages (post-hide
// interference), and finally reveals.
func hideAtFillState(t *testing.T, cfg Config, fill int, seed uint64) error {
	t.Helper()
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(8, 8, 4096), seed)
	h, err := NewHider(chip, []byte("ablation"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 17))
	g := chip.Geometry()
	for p := 0; p < fill; p++ {
		if err := h.WritePage(nand.PageAddr{Block: 0, Page: p}, randBytes(rng, h.PublicDataBytes())); err != nil {
			t.Fatal(err)
		}
	}
	target := nand.PageAddr{Block: 0, Page: fill - 1}
	secret := randBytes(rng, h.HiddenPayloadBytes())
	if _, err := h.Hide(target, secret, 0); err != nil {
		return err
	}
	for p := fill; p < g.PagesPerBlock; p++ {
		if err := h.WritePage(nand.PageAddr{Block: 0, Page: p}, randBytes(rng, h.PublicDataBytes())); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := h.Reveal(target, len(secret), 0)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("reveal returned wrong bytes without error")
	}
	return nil
}

func TestRobustSurvivesAnyFillState(t *testing.T) {
	for _, fill := range []int{1, 2, 4, 8} {
		for seed := uint64(0); seed < 3; seed++ {
			if err := hideAtFillState(t, RobustConfig(), fill, 100+seed); err != nil {
				t.Errorf("robust config, fill %d, seed %d: %v", fill, seed, err)
			}
		}
	}
}

func TestPlainWorksOnlyInFilledBlocks(t *testing.T) {
	// Fully programmed blocks: the paper's operating condition — the
	// plain absolute threshold works there.
	okFull := 0
	for seed := uint64(0); seed < 3; seed++ {
		if err := hideAtFillState(t, StandardConfig(), 8, 200+seed); err == nil {
			okFull++
		}
	}
	if okFull < 2 {
		t.Errorf("plain config failed in filled blocks %d/3 times; it must work in the paper's conditions", 3-okFull)
	}
	// Hiding early in a filling block: post-hide interference shifts the
	// '1' population across the absolute threshold — the plain config is
	// expected to fail here, which is exactly the robust mode's reason
	// to exist. (Documenting behaviour, not asserting failure on every
	// seed: the margin is statistical.)
	failEarly := 0
	for seed := uint64(0); seed < 3; seed++ {
		if err := hideAtFillState(t, StandardConfig(), 1, 300+seed); err != nil {
			failEarly++
		}
	}
	t.Logf("plain config at fill state 1 failed %d/3 reveals (robust: 0/3)", failEarly)
	if failEarly == 0 {
		t.Error("plain absolute threshold unexpectedly survived early-fill hiding; the robust mode ablation is vacuous")
	}
}
