// Package core implements VT-HI, the paper's contribution: hiding data in
// the analog voltage levels of pseudo-randomly selected NAND flash cells.
//
// Each selected cell keeps its public (SLC-style) bit while gaining a
// hidden bit read at a finer reference threshold inside the public state's
// natural voltage spread (paper Fig 5). Encoding follows Algorithm 1:
//
//  1. a keyed PRNG picks |H| non-programmed ('1') public bit offsets;
//  2. public data is programmed normally;
//  3. the hidden payload is encrypted and ECC-expanded;
//  4. cells holding hidden '0' are nudged above the hidden threshold Vth
//     by iterated partial-programming (read, pulse cells still below Vth,
//     repeat up to m times); hidden '1' cells are left untouched.
//
// Decoding is one read at the shifted reference threshold plus ECC/decrypt
// — non-destructive and repeatable, the property that gives VT-HI its 50x
// decode advantage over PT-HI (§8).
package vthi

import (
	"fmt"

	"stashflash/internal/nand"
)

// Config holds the VT-HI tuning parameters the paper calls configuration
// metadata (m, Vth, bits per page, §9.2). The two presets correspond to
// the paper's evaluated operating points.
type Config struct {
	// Name labels the configuration in reports.
	Name string

	// VthHidden is the hidden-bit threshold voltage: a selected cell
	// reads hidden '1' below it and hidden '0' at or above it.
	// The paper's standard configuration places it at level 34, "where
	// most public voltages naturally occur" (§5.3).
	VthHidden float64

	// HiddenCellsPerPage is the budget of cells selected per page for
	// hidden bits (payload + hidden ECC). The paper's standard choice is
	// 256, conservatively below the 512 bound derived in §6.3.
	HiddenCellsPerPage int

	// MaxPPSteps is m, the partial-programming iteration bound of
	// Algorithm 1. Ten steps drive hidden BER below 1% (Fig 6).
	MaxPPSteps int

	// PageInterval is the number of physical pages left between pages
	// holding hidden data, limiting PP interference on public data; the
	// paper settles on one (§6.3).
	PageInterval int

	// BCHT is the bit-error correction strength of the hidden payload's
	// BCH code. The field degree is derived from HiddenCellsPerPage.
	BCHT int

	// PublicRST is the per-255-byte-chunk symbol correction strength of
	// the Reed–Solomon code protecting public page data. It exists so
	// the decoder can reconstruct the exact public image that seeded
	// cell selection (raw NAND reads are not error-free). Zero disables
	// public parity; experiments that only measure raw distributions use
	// that mode.
	PublicRST int

	// Vendor enables the firmware-supported mode of §6.2/§8 "Improved
	// Capacity": hidden bits are placed with one controller-grade fine
	// programming step at page-program time (before neighbour
	// interference accumulates), and the decode reference compensates
	// for interference using the per-page neighbour program count the
	// firmware tracks.
	Vendor bool

	// FinePark is how far above VthHidden the vendor fine step parks
	// hidden '0' cells.
	FinePark float64

	// DecodeRefOffset positions the vendor-mode decode reference between
	// the hidden '1' (natural) and hidden '0' (parked) populations,
	// before interference compensation is added.
	DecodeRefOffset float64

	// InterferenceComp shifts the PP-mode embed target and decode
	// reference by the interference expected from the page's current
	// neighbour-program count (and by the block's wear shift). The
	// paper's prototype always hides in fully programmed blocks, where
	// VthHidden = 34 is implicitly the two-neighbour operating point;
	// compensation extends hiding to pages in any fill state — which a
	// live steganographic SSD (internal/stegfs) cannot avoid.
	InterferenceComp bool

	// EmbedGuard is extra margin (in voltage levels) the PP loop pushes
	// hidden '0' cells above the embed threshold; the decode reference
	// sits half a guard up. A non-zero guard absorbs the interference
	// noise of neighbour programs that land between hide and reveal.
	EmbedGuard float64
}

// StandardConfig is the paper's evaluated operating point for unmodified
// devices: Vth = 34, 256 hidden cells per page, m = 10 PP steps, one page
// interval (§6.3, §7).
func StandardConfig() Config {
	return Config{
		Name:               "standard",
		VthHidden:          34,
		HiddenCellsPerPage: 256,
		MaxPPSteps:         10,
		PageInterval:       1,
		BCHT:               8,
		PublicRST:          4,
	}
}

// EnhancedConfig is the vendor-supported high-capacity operating point of
// §8 "Improved Capacity": ten times the hidden bits, placed in a single
// precise programming step at page-program time. The paper quotes
// threshold level 15 with m=1 coarse PP on its chips; in this simulator's
// voltage scale the same regime — hide below the interference-inflated
// bulk, park hidden '0' cells only a dozen levels above the natural
// population, accept ~2% raw BER and spend ~14%+ of the cells on ECC —
// calibrates to Vth = 17 with a 6.5-level park (see DESIGN.md §2 on
// parameter substitution). Usable capacity lands at ~9x the standard
// configuration, and, as in Fig 12, detectability rises above the
// standard configuration
func EnhancedConfig() Config {
	return Config{
		Name:               "enhanced",
		VthHidden:          17,
		HiddenCellsPerPage: 2560,
		MaxPPSteps:         1,
		PageInterval:       1,
		BCHT:               64,
		PublicRST:          4,
		Vendor:             true,
		FinePark:           11,
		DecodeRefOffset:    6,
	}
}

// RobustConfig is the standard operating point hardened for live-system
// use: interference/wear compensation plus a guard band let pages be
// hidden-into at any block fill state and tolerate neighbour programs
// that land after the hide. This is this reproduction's extension beyond
// the paper's evaluation conditions (see DESIGN.md §6); the stegfs hidden
// volume runs on it.
func RobustConfig() Config {
	c := StandardConfig()
	c.Name = "robust"
	c.InterferenceComp = true
	c.EmbedGuard = 6
	c.MaxPPSteps = 12
	// Stronger hidden ECC than the paper-faithful point: a live system
	// must survive the worst chip sample, not the average one.
	c.BCHT = 12
	return c
}

// Validate checks the configuration against a chip model.
func (c Config) Validate(m nand.Model) error {
	if c.VthHidden <= 0 || c.VthHidden >= m.ReadRef {
		return fmt.Errorf("vthi: VthHidden %.1f must lie inside the erased state (0, %.0f)", c.VthHidden, m.ReadRef)
	}
	if c.HiddenCellsPerPage < 8 {
		return fmt.Errorf("vthi: HiddenCellsPerPage %d too small", c.HiddenCellsPerPage)
	}
	if c.HiddenCellsPerPage > m.CellsPerPage()/4 {
		return fmt.Errorf("vthi: HiddenCellsPerPage %d exceeds a quarter of the page's %d cells; selection would visibly distort the voltage distribution",
			c.HiddenCellsPerPage, m.CellsPerPage())
	}
	if c.MaxPPSteps < 1 {
		return fmt.Errorf("vthi: MaxPPSteps must be >= 1")
	}
	if c.PageInterval < 0 {
		return fmt.Errorf("vthi: PageInterval must be >= 0")
	}
	if c.BCHT < 1 {
		return fmt.Errorf("vthi: BCHT must be >= 1")
	}
	if c.PublicRST < 0 || c.PublicRST > 64 {
		return fmt.Errorf("vthi: PublicRST %d out of range", c.PublicRST)
	}
	if c.Vendor && c.FinePark <= 0 {
		return fmt.Errorf("vthi: vendor mode requires a positive FinePark")
	}
	if c.EmbedGuard < 0 {
		return fmt.Errorf("vthi: EmbedGuard must be >= 0")
	}
	if c.InterferenceComp && c.VthHidden <= 2*m.InterfMean {
		return fmt.Errorf("vthi: compensated threshold would go non-positive on uninterfered pages (VthHidden %.1f <= 2x InterfMean %.1f)",
			c.VthHidden, m.InterfMean)
	}
	return nil
}
