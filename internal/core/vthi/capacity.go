package vthi

import (
	"stashflash/internal/ecc"
	"stashflash/internal/nand"
)

// PlanCapacity computes the capacity report for cfg on model m.
func PlanCapacity(m nand.Model, cfg Config) (CapacityReport, error) {
	if err := cfg.Validate(m); err != nil {
		return CapacityReport{}, err
	}
	deg := bchDegree(cfg.HiddenCellsPerPage)
	bch := ecc.NewBCH(deg, cfg.BCHT)
	parity := bch.ParityBits()
	payloadBits := (cfg.HiddenCellsPerPage - parity) / 8 * 8

	stride := cfg.PageInterval + 1
	hiddenPages := (m.PagesPerBlock + cfg.PageInterval) / stride
	blockBits := hiddenPages * payloadBits

	deviceBits := int64(blockBits) * int64(m.Blocks)
	rawBits := m.TotalBytes() * 8

	return CapacityReport{
		Config:               cfg.Name,
		CellsPerPage:         cfg.HiddenCellsPerPage,
		ECCParityBits:        parity,
		PayloadBitsPerPage:   payloadBits,
		ECCOverheadFraction:  float64(parity) / float64(cfg.HiddenCellsPerPage),
		PagesPerBlock:        hiddenPages,
		PayloadBitsPerBlock:  blockBits,
		DevicePayloadBytes:   deviceBits / 8,
		FractionOfDeviceBits: float64(deviceBits) / float64(rawBits),
	}, nil
}
