package vthi

import (
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

func newEmbedderForTest(t *testing.T, seed uint64, cfg Config) (*Embedder, *nand.Chip) {
	t.Helper()
	chip := nand.NewChip(coreTestModel(), seed)
	e, err := NewEmbedder(chip, []byte("embed-key"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, chip
}

func programRandom(t *testing.T, chip *nand.Chip, a nand.PageAddr, seed uint64) []byte {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	img := make([]byte, chip.Geometry().PageBytes)
	for i := range img {
		img[i] = byte(rng.IntN(256))
	}
	if err := chip.ProgramPage(a, img); err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPlanDeterministicAndKeyed(t *testing.T) {
	e, chip := newEmbedderForTest(t, 1, StandardConfig())
	a := nand.PageAddr{Block: 0, Page: 0}
	img := programRandom(t, chip, a, 5)

	p1, err := e.Plan(a, img, 128)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Plan(a, img, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Cells {
		if p1.Cells[i] != p2.Cells[i] {
			t.Fatal("plan is not deterministic")
		}
	}

	// A different key must select different cells.
	other, err := NewEmbedder(chip, []byte("other-key"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	p3, err := other.Plan(a, img, 128)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range p1.Cells {
		if p1.Cells[i] == p3.Cells[i] {
			same++
		}
	}
	if same == len(p1.Cells) {
		t.Fatal("different keys selected identical cells")
	}
}

func TestPlanSelectsOnlyOneBits(t *testing.T) {
	e, chip := newEmbedderForTest(t, 2, StandardConfig())
	a := nand.PageAddr{Block: 0, Page: 1}
	img := programRandom(t, chip, a, 6)
	plan, err := e.Plan(a, img, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range plan.Cells {
		if (img[cell/8]>>(7-uint(cell%8)))&1 != 1 {
			t.Fatalf("cell %d holds a programmed ('0') public bit", cell)
		}
	}
	// Cells must be unique and sorted.
	for i := 1; i < len(plan.Cells); i++ {
		if plan.Cells[i] <= plan.Cells[i-1] {
			t.Fatal("plan cells not strictly ascending")
		}
	}
}

func TestPlanPageSeparation(t *testing.T) {
	e, chip := newEmbedderForTest(t, 3, StandardConfig())
	a := nand.PageAddr{Block: 0, Page: 0}
	b := nand.PageAddr{Block: 0, Page: 2}
	// Same image content on both pages: selection must still differ
	// (the PRNG mixes the page number).
	rng := rand.New(rand.NewPCG(7, 0))
	img := make([]byte, chip.Geometry().PageBytes)
	for i := range img {
		img[i] = byte(rng.IntN(256))
	}
	if err := chip.ProgramPage(a, img); err != nil {
		t.Fatal(err)
	}
	if err := chip.ProgramPage(b, img); err != nil {
		t.Fatal(err)
	}
	pa, err := e.Plan(a, img, 128)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := e.Plan(b, img, 128)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range pa.Cells {
		if pa.Cells[i] == pb.Cells[i] {
			same++
		}
	}
	if same == len(pa.Cells) {
		t.Fatal("identical selection on different pages")
	}
}

func TestPlanRejections(t *testing.T) {
	e, chip := newEmbedderForTest(t, 4, StandardConfig())
	a := nand.PageAddr{Block: 0, Page: 0}
	img := programRandom(t, chip, a, 8)
	if _, err := e.Plan(a, img[:10], 64); err == nil {
		t.Error("short image accepted")
	}
	if _, err := e.Plan(a, img, e.Config().HiddenCellsPerPage+1); err == nil {
		t.Error("over-budget bit count accepted")
	}
	// An all-zero image has no '1' candidates.
	zero := make([]byte, chip.Geometry().PageBytes)
	if _, err := e.Plan(a, zero, 64); err == nil {
		t.Error("page without candidates accepted")
	}
}

func TestEmbedConvergesAndStops(t *testing.T) {
	e, chip := newEmbedderForTest(t, 5, StandardConfig())
	// Hide in a page with both neighbours programmed — the standard
	// config's operating point (Vth 34 assumes full interference; on an
	// isolated page the 22-level gap can keep a slow cell pulsing).
	programRandom(t, chip, nand.PageAddr{Block: 0, Page: 0}, 19)
	a := nand.PageAddr{Block: 0, Page: 1}
	img := programRandom(t, chip, a, 9)
	programRandom(t, chip, nand.PageAddr{Block: 0, Page: 2}, 29)
	plan, err := e.Plan(a, img, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(10, 0))
	bits := make([]uint8, 256)
	for i := range bits {
		bits[i] = uint8(rng.IntN(2))
	}
	steps, err := e.Embed(plan, bits, 20)
	if err != nil {
		t.Fatal(err)
	}
	if steps < 1 || steps >= 20 {
		t.Fatalf("embed used %d steps; expect convergence well before 20", steps)
	}
	// After convergence another step must pulse nothing.
	pulsed, err := e.ProgramStep(plan, bits)
	if err != nil {
		t.Fatal(err)
	}
	if pulsed != 0 {
		t.Fatalf("post-convergence step pulsed %d cells", pulsed)
	}
}

func TestEmbedAllOnesIsFree(t *testing.T) {
	e, chip := newEmbedderForTest(t, 6, StandardConfig())
	a := nand.PageAddr{Block: 0, Page: 0}
	img := programRandom(t, chip, a, 11)
	plan, err := e.Plan(a, img, 64)
	if err != nil {
		t.Fatal(err)
	}
	before := chip.Ledger()
	steps, err := e.Embed(plan, make([]uint8, 64), 10) // wait: all zeros
	if err != nil {
		t.Fatal(err)
	}
	_ = steps
	// All-ones payload: no cell needs pulsing beyond verify reads.
	ones := make([]uint8, 64)
	for i := range ones {
		ones[i] = 1
	}
	plan2, err := e.Plan(nand.PageAddr{Block: 0, Page: 2}, programRandom(t, chip, nand.PageAddr{Block: 0, Page: 2}, 12), 64)
	if err != nil {
		t.Fatal(err)
	}
	before = chip.Ledger()
	if _, err := e.Embed(plan2, ones, 10); err != nil {
		t.Fatal(err)
	}
	cost := chip.Ledger().Sub(before)
	if cost.PartialPrograms != 0 {
		t.Fatalf("all-ones payload issued %d PP ops", cost.PartialPrograms)
	}
	if cost.Reads == 0 {
		t.Fatal("embedding must at least verify-read")
	}
}

func TestBitLengthMismatchRejected(t *testing.T) {
	e, chip := newEmbedderForTest(t, 7, StandardConfig())
	a := nand.PageAddr{Block: 0, Page: 0}
	img := programRandom(t, chip, a, 13)
	plan, err := e.Plan(a, img, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProgramStep(plan, make([]uint8, 63)); err == nil {
		t.Error("mismatched bits accepted by ProgramStep")
	}
	if err := e.FineEmbed(plan, make([]uint8, 63)); err == nil {
		t.Error("mismatched bits accepted by FineEmbed")
	}
}

func TestFineEmbedRequiresVendorConfig(t *testing.T) {
	e, chip := newEmbedderForTest(t, 8, StandardConfig())
	a := nand.PageAddr{Block: 0, Page: 0}
	img := programRandom(t, chip, a, 14)
	plan, err := e.Plan(a, img, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.FineEmbed(plan, make([]uint8, 64)); err == nil {
		t.Error("FineEmbed ran under a non-vendor configuration")
	}
}

func TestDecodeRefModes(t *testing.T) {
	chip := nand.NewChip(coreTestModel(), 9)
	std, err := NewEmbedder(chip, []byte("k"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := nand.PageAddr{Block: 0, Page: 1}
	ref, err := std.DecodeRef(a)
	if err != nil {
		t.Fatal(err)
	}
	if ref != StandardConfig().VthHidden {
		t.Errorf("standard decode ref = %v, want absolute Vth", ref)
	}

	rob, err := NewEmbedder(chip, []byte("k"), RobustConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No neighbours programmed: compensated ref sits 2 interference
	// units below the nominal threshold (plus half the guard).
	ref0, err := rob.DecodeRef(a)
	if err != nil {
		t.Fatal(err)
	}
	m := chip.Model()
	want := RobustConfig().VthHidden - 2*m.InterfMean + RobustConfig().EmbedGuard/2
	if diff := ref0 - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("uninterfered robust ref = %v, want %v", ref0, want)
	}
	// Program a neighbour: the ref must rise by one interference unit.
	programRandom(t, chip, nand.PageAddr{Block: 0, Page: 0}, 15)
	ref1, err := rob.DecodeRef(a)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref1 - ref0 - m.InterfMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ref moved by %v per neighbour, want %v", ref1-ref0, m.InterfMean)
	}
}
