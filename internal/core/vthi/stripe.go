package vthi

import (
	"fmt"

	"stashflash/internal/ecc"
	"stashflash/internal/nand"
)

// Striped hiding: the paper's §8 "RAID-like schemes" for hidden data.
// A payload is split into data shards, extended with Reed–Solomon parity
// shards (column-wise across the stripe), and each shard is hidden in its
// own page. Any subset of up to `parity` pages may be lost outright —
// a bad block, an erased cover page, a shard whose own BCH failed — and
// the payload still reconstructs, because a failed shard is an erasure at
// a known stripe position (recoverable at twice the unknown-error rate).

// StripeGeometry describes a striped embedding.
type StripeGeometry struct {
	// Data is the number of payload-carrying shards.
	Data int
	// Parity is the number of RS parity shards (pages that may be lost).
	Parity int
}

// Validate checks the stripe shape.
func (g StripeGeometry) Validate() error {
	if g.Data < 1 || g.Parity < 1 {
		return fmt.Errorf("vthi: stripe needs at least 1 data and 1 parity shard, got %d+%d", g.Data, g.Parity)
	}
	if g.Data+g.Parity > 255 {
		return fmt.Errorf("vthi: stripe of %d shards exceeds the RS symbol space", g.Data+g.Parity)
	}
	if g.Parity%2 != 0 {
		// RS(t) provides 2t parity symbols; keep shapes realisable.
		return fmt.Errorf("vthi: parity shard count must be even, got %d", g.Parity)
	}
	return nil
}

// StripeCapacity returns the payload bytes a stripe carries.
func (h *Hider) StripeCapacity(g StripeGeometry) int {
	return g.Data * h.HiddenPayloadBytes()
}

// HideStriped hides payload across addrs with the given stripe geometry;
// len(addrs) must equal Data+Parity and every page must already hold
// public data (or be written via WriteAndHide-style flows beforehand).
// The same epoch convention as Hide applies to every shard.
func (h *Hider) HideStriped(g StripeGeometry, addrs []nand.PageAddr, payload []byte, epoch uint64) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if len(addrs) != g.Data+g.Parity {
		return fmt.Errorf("vthi: stripe wants %d pages, got %d", g.Data+g.Parity, len(addrs))
	}
	shardLen := h.HiddenPayloadBytes()
	if len(payload) > g.Data*shardLen {
		return fmt.Errorf("vthi: payload %d bytes exceeds stripe capacity %d", len(payload), g.Data*shardLen)
	}
	// Build shards: zero-padded data shards, then column-wise RS parity.
	shards := make([][]byte, g.Data+g.Parity)
	for i := 0; i < g.Data; i++ {
		shards[i] = make([]byte, shardLen)
		lo := i * shardLen
		if lo < len(payload) {
			hi := lo + shardLen
			if hi > len(payload) {
				hi = len(payload)
			}
			copy(shards[i], payload[lo:hi])
		}
	}
	for i := 0; i < g.Parity; i++ {
		shards[g.Data+i] = make([]byte, shardLen)
	}
	rs := ecc.NewRS(g.Parity / 2)
	col := make([]byte, g.Data)
	for j := 0; j < shardLen; j++ {
		for i := 0; i < g.Data; i++ {
			col[i] = shards[i][j]
		}
		cw := rs.Encode(col)
		for i := 0; i < g.Parity; i++ {
			shards[g.Data+i][j] = cw[g.Data+i]
		}
	}
	for i, a := range addrs {
		if _, err := h.Hide(a, shards[i], epoch); err != nil {
			return fmt.Errorf("vthi: hiding stripe shard %d at %v: %w", i, a, err)
		}
	}
	return nil
}

// StripeReport describes a striped reveal.
type StripeReport struct {
	// FailedShards lists stripe positions whose page-level reveal failed
	// and were reconstructed from parity.
	FailedShards []int
}

// RevealStriped reconstructs n payload bytes from a stripe, tolerating up
// to Parity failed pages.
func (h *Hider) RevealStriped(g StripeGeometry, addrs []nand.PageAddr, n int, epoch uint64) ([]byte, StripeReport, error) {
	var rep StripeReport
	if err := g.Validate(); err != nil {
		return nil, rep, err
	}
	if len(addrs) != g.Data+g.Parity {
		return nil, rep, fmt.Errorf("vthi: stripe wants %d pages, got %d", g.Data+g.Parity, len(addrs))
	}
	shardLen := h.HiddenPayloadBytes()
	if n > g.Data*shardLen {
		return nil, rep, fmt.Errorf("vthi: requested %d bytes, stripe carries %d", n, g.Data*shardLen)
	}
	shards := make([][]byte, len(addrs))
	for i, a := range addrs {
		shard, _, err := h.Reveal(a, shardLen, epoch)
		if err != nil {
			rep.FailedShards = append(rep.FailedShards, i)
			continue
		}
		shards[i] = shard
	}
	if len(rep.FailedShards) > g.Parity {
		return nil, rep, fmt.Errorf("vthi: %d stripe shards failed, parity covers %d: %w",
			len(rep.FailedShards), g.Parity, ErrHiddenUnrecoverable)
	}
	if len(rep.FailedShards) > 0 {
		rs := ecc.NewRS(g.Parity / 2)
		for _, i := range rep.FailedShards {
			shards[i] = make([]byte, shardLen)
		}
		cw := make([]byte, g.Data+g.Parity)
		for j := 0; j < shardLen; j++ {
			for i := range shards {
				cw[i] = shards[i][j]
			}
			if err := rs.DecodeErasures(cw, rep.FailedShards); err != nil {
				return nil, rep, fmt.Errorf("vthi: stripe column %d: %w", j, err)
			}
			for _, i := range rep.FailedShards {
				shards[i][j] = cw[i]
			}
		}
	}
	out := make([]byte, 0, n)
	for i := 0; i < g.Data && len(out) < n; i++ {
		take := n - len(out)
		if take > shardLen {
			take = shardLen
		}
		out = append(out, shards[i][:take]...)
	}
	return out, rep, nil
}
