package vthi

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

// coreTestModel is large enough to host the standard 256-cell budget with
// realistic candidate statistics.
func coreTestModel() nand.Model {
	return nand.ModelA().ScaleGeometry(16, 8, 4096)
}

func fillBlock(t *testing.T, h *Hider, rng *rand.Rand, block int) [][]byte {
	t.Helper()
	g := h.dev.Geometry()
	pages := make([][]byte, g.PagesPerBlock)
	for p := 0; p < g.PagesPerBlock; p++ {
		pages[p] = randBytes(rng, h.PublicDataBytes())
		if err := h.WritePage(nand.PageAddr{Block: block, Page: p}, pages[p]); err != nil {
			t.Fatal(err)
		}
	}
	return pages
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestHideRevealRoundTripStandard(t *testing.T) {
	chip := nand.NewChip(coreTestModel(), 100)
	h, err := NewHider(chip, []byte("master secret"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	fillBlock(t, h, rng, 0)

	secret := []byte("deep secret")
	a := nand.PageAddr{Block: 0, Page: 2}
	st, err := h.Hide(a, secret, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps < 1 || st.Steps > h.Config().MaxPPSteps {
		t.Errorf("steps = %d, want 1..%d", st.Steps, h.Config().MaxPPSteps)
	}
	got, rst, err := h.Reveal(a, len(secret), 0)
	if err != nil {
		t.Fatalf("reveal: %v (stats %+v)", err, rst)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("revealed %q, want %q", got, secret)
	}
}

func TestRevealIsRepeatable(t *testing.T) {
	chip := nand.NewChip(coreTestModel(), 101)
	h, err := NewHider(chip, []byte("k"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	fillBlock(t, h, rng, 0)
	secret := randBytes(rng, h.HiddenPayloadBytes())
	a := nand.PageAddr{Block: 0, Page: 4}
	if _, err := h.Hide(a, secret, 0); err != nil {
		t.Fatal(err)
	}
	// The paper's key decode property: non-destructive, repeatable reads.
	for i := 0; i < 5; i++ {
		got, _, err := h.Reveal(a, len(secret), 0)
		if err != nil {
			t.Fatalf("reveal #%d: %v", i, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("reveal #%d mismatched", i)
		}
	}
}

func TestPublicDataUnaffectedByHiding(t *testing.T) {
	chip := nand.NewChip(coreTestModel(), 102)
	h, err := NewHider(chip, []byte("k"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	pages := fillBlock(t, h, rng, 0)
	a := nand.PageAddr{Block: 0, Page: 2}
	if _, err := h.Hide(a, []byte("hidden payload"), 0); err != nil {
		t.Fatal(err)
	}
	// The NU path: same page, no key material, data intact.
	got, _, err := h.ReadPublic(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pages[2]) {
		t.Fatal("hiding corrupted public data")
	}
}

func TestWrongKeyRevealsGarbage(t *testing.T) {
	chip := nand.NewChip(coreTestModel(), 103)
	h, err := NewHider(chip, []byte("right key"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	fillBlock(t, h, rng, 0)
	secret := randBytes(rng, h.HiddenPayloadBytes())
	a := nand.PageAddr{Block: 0, Page: 2}
	if _, err := h.Hide(a, secret, 0); err != nil {
		t.Fatal(err)
	}
	wrong, err := NewHider(chip, []byte("wrong key"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := wrong.Reveal(a, len(secret), 0)
	if err == nil && bytes.Equal(got, secret) {
		t.Fatal("wrong key recovered the secret")
	}
}

func TestEraseDestroysHiddenData(t *testing.T) {
	chip := nand.NewChip(coreTestModel(), 104)
	h, err := NewHider(chip, []byte("k"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	fillBlock(t, h, rng, 0)
	secret := randBytes(rng, h.HiddenPayloadBytes())
	a := nand.PageAddr{Block: 0, Page: 2}
	if _, err := h.Hide(a, secret, 0); err != nil {
		t.Fatal(err)
	}
	if err := chip.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	// Rewrite public data so the page is readable, then attempt reveal.
	if err := h.WritePage(a, randBytes(rng, h.PublicDataBytes())); err != nil {
		t.Fatal(err)
	}
	got, _, err := h.Reveal(a, len(secret), 0)
	if err == nil && bytes.Equal(got, secret) {
		t.Fatal("hidden data survived a block erase")
	}
}

func TestHideRevealRoundTripEnhanced(t *testing.T) {
	m := nand.ModelA().ScaleGeometry(8, 8, 4096) // 32768 cells/page
	m.PageBytes = 4096
	chip := nand.NewChip(m, 105)
	h, err := NewHider(chip, []byte("k"), EnhancedConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(6, 6))
	// Vendor mode hides at program time, sequential fill.
	g := chip.Geometry()
	secrets := make(map[int][]byte)
	for p := 0; p < g.PagesPerBlock; p++ {
		a := nand.PageAddr{Block: 0, Page: p}
		pub := randBytes(rng, h.PublicDataBytes())
		if p%h.HiddenPageStride() == 0 {
			secret := randBytes(rng, h.HiddenPayloadBytes())
			secrets[p] = secret
			if _, err := h.WriteAndHide(a, pub, secret, 0); err != nil {
				t.Fatal(err)
			}
		} else if err := h.WritePage(a, pub); err != nil {
			t.Fatal(err)
		}
	}
	for p, secret := range secrets {
		got, rst, err := h.Reveal(nand.PageAddr{Block: 0, Page: p}, len(secret), 0)
		if err != nil {
			t.Fatalf("reveal page %d: %v (stats %+v)", p, err, rst)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("page %d: enhanced reveal mismatched", p)
		}
	}
}

func TestHiddenCapacityNumbers(t *testing.T) {
	// Standard: 256 cells, BCH(9, t=8) -> 72 parity -> 23 payload bytes.
	rep, err := PlanCapacity(nand.ModelA(), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ECCParityBits != 72 {
		t.Errorf("standard parity = %d, want 72", rep.ECCParityBits)
	}
	if rep.PayloadBitsPerPage != 184 {
		t.Errorf("standard payload bits = %d, want 184", rep.PayloadBitsPerPage)
	}
	// Same order of magnitude as the paper's ~0.02% of device bits (the
	// paper counts MLC device bits at a 4-page interval; see
	// EXPERIMENTS.md for the accounting).
	if rep.FractionOfDeviceBits < 0.0001 || rep.FractionOfDeviceBits > 0.0015 {
		t.Errorf("standard device fraction = %.5f%%, want 0.01-0.15%%", rep.FractionOfDeviceBits*100)
	}

	enh, err := PlanCapacity(nand.ModelA(), EnhancedConfig())
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(enh.PayloadBitsPerPage) / float64(rep.PayloadBitsPerPage)
	// Paper: ~9x usable capacity increase with vendor support.
	if gain < 7 || gain > 13 {
		t.Errorf("enhanced/standard payload gain = %.1fx, want ~9-11x", gain)
	}
}

func TestHideRejectsOversizedPayload(t *testing.T) {
	chip := nand.NewChip(coreTestModel(), 106)
	h, err := NewHider(chip, []byte("k"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	fillBlock(t, h, rng, 0)
	big := make([]byte, h.HiddenPayloadBytes()+1)
	if _, err := h.Hide(nand.PageAddr{Block: 0, Page: 0}, big, 0); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, _, err := h.Reveal(nand.PageAddr{Block: 0, Page: 0}, h.HiddenPayloadBytes()+1, 0); err == nil {
		t.Fatal("oversized reveal accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	m := coreTestModel()
	bad := []Config{
		func() Config { c := StandardConfig(); c.VthHidden = 0; return c }(),
		func() Config { c := StandardConfig(); c.VthHidden = 200; return c }(),
		func() Config { c := StandardConfig(); c.HiddenCellsPerPage = 4; return c }(),
		func() Config { c := StandardConfig(); c.HiddenCellsPerPage = m.CellsPerPage(); return c }(),
		func() Config { c := StandardConfig(); c.MaxPPSteps = 0; return c }(),
		func() Config { c := StandardConfig(); c.PageInterval = -1; return c }(),
		func() Config { c := StandardConfig(); c.BCHT = 0; return c }(),
		func() Config { c := EnhancedConfig(); c.FinePark = 0; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(m); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := StandardConfig().Validate(m); err != nil {
		t.Errorf("standard config rejected: %v", err)
	}
}

func TestEpochSeparatesPayloads(t *testing.T) {
	chip := nand.NewChip(coreTestModel(), 107)
	h, err := NewHider(chip, []byte("k"), StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 8))
	fillBlock(t, h, rng, 0)
	secret := randBytes(rng, h.HiddenPayloadBytes())
	a := nand.PageAddr{Block: 0, Page: 2}
	if _, err := h.Hide(a, secret, 7); err != nil {
		t.Fatal(err)
	}
	got, _, err := h.Reveal(a, len(secret), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("same-epoch reveal failed")
	}
	wrongEpoch, _, err := h.Reveal(a, len(secret), 8)
	if err == nil && bytes.Equal(wrongEpoch, secret) {
		t.Fatal("different epoch decrypted the payload")
	}
}
