// Scheme-seam glue: vthi re-exports the shared hiding vocabulary from
// internal/core and registers its configurations in the core scheme
// registry, so consumers that used to import the concrete VT-HI types can
// keep their symbol names while the seam stays in core.
package vthi

import (
	"fmt"

	"stashflash/internal/core"
	"stashflash/internal/nand"
)

// Shared vocabulary, re-exported so vthi callers read naturally.
type (
	HideStats      = core.HideStats
	RevealStats    = core.RevealStats
	PublicLayout   = core.PublicLayout
	CapacityReport = core.CapacityReport
)

// Shared errors, re-exported (same values: errors.Is matches across).
var (
	ErrHiddenUnrecoverable = core.ErrHiddenUnrecoverable
	ErrPublicUncorrectable = core.ErrPublicUncorrectable
)

// NewPublicLayout builds the shared chunked-RS public page layout.
func NewPublicLayout(pageBytes, t int) (*PublicLayout, error) {
	return core.NewPublicLayout(pageBytes, t)
}

// bchDegree returns the BCH field degree whose natural length covers n
// codeword bits (shared helper; see core.BCHDegree).
func bchDegree(n int) int { return core.BCHDegree(n) }

// New builds a VT-HI scheme over any device, asserting the vendor command
// set (reference-shifted reads, fine programming) the scheme requires.
// Callers holding a nand.VendorDevice can use NewHider directly.
func New(dev nand.Device, master []byte, cfg Config) (*Hider, error) {
	vdev, ok := dev.(nand.VendorDevice)
	if !ok {
		return nil, fmt.Errorf("vthi: device %T lacks the vendor command set (reference-shifted reads) VT-HI requires", dev)
	}
	return NewHider(vdev, master, cfg)
}

// Name returns the scheme name of this instance's configuration.
func (h *Hider) Name() string { return "vthi-" + h.cfg.Name }

// CorrectionBudget returns the hidden BCH code's correctable-bit budget.
func (h *Hider) CorrectionBudget() int { return h.cfg.BCHT }

var _ core.Scheme = (*Hider)(nil)

// Factory returns a core.SchemeFactory pinned to cfg — the hook stegfs
// and the service layer use to mount VT-HI volumes with a chosen config.
func Factory(cfg Config) core.SchemeFactory {
	return func(dev nand.Device, master []byte) (core.Scheme, error) {
		return New(dev, master, cfg)
	}
}

func init() {
	core.RegisterScheme(core.SchemeInfo{
		Name:        "vthi",
		Description: "voltage-threshold hiding, robust config (paper VT-HI; default)",
		Caps:        core.DeviceCaps{Vendor: true},
		New:         Factory(RobustConfig()),
	})
	core.RegisterScheme(core.SchemeInfo{
		Name:        "vthi-standard",
		Description: "voltage-threshold hiding, paper standard config",
		Caps:        core.DeviceCaps{Vendor: true},
		New:         Factory(StandardConfig()),
	})
	core.RegisterScheme(core.SchemeInfo{
		Name:        "vthi-enhanced",
		Description: "voltage-threshold hiding, vendor fine-programming config",
		Caps:        core.DeviceCaps{Vendor: true},
		New:         Factory(EnhancedConfig()),
	})
}
