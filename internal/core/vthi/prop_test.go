package vthi

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"testing"
	"time"

	"stashflash/internal/core"
	"stashflash/internal/nand"
)

// VT-HI-specific property suite: the striped (RS-across-blocks) path is a
// vthi extension beyond the core.Scheme surface, so its property test lives
// here. The scheme-generic hide/reveal properties run table-driven over all
// registered schemes in internal/core.

// propSeeds yields the trial seeds: a pinned replay seed if the env knob is
// set, otherwise n time-derived seeds.
func propSeeds(t *testing.T, n int) []uint64 {
	t.Helper()
	if s := os.Getenv("STASHFLASH_PROP_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("STASHFLASH_PROP_SEED: %v", err)
		}
		return []uint64{v}
	}
	base := uint64(time.Now().UnixNano())
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)*0x9e3779b97f4a7c15
	}
	return seeds
}

// typedHideRevealErr reports whether err is one of the declared failure
// modes of the hide/reveal contract.
func typedHideRevealErr(err error) bool {
	for _, want := range []error{
		core.ErrHiddenUnrecoverable,
		nand.ErrProgramFailed,
		nand.ErrEraseFailed,
		nand.ErrBadBlock,
		nand.ErrPowerLoss,
		nand.ErrPageProgrammed,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return err != nil && err.Error() != ""
}

// propFaults draws a fault schedule: no plan, a zero plan, or live rates.
func propFaults(rng *rand.Rand, seed uint64) *nand.FaultPlan {
	switch rng.IntN(3) {
	case 0:
		return nil
	case 1:
		return nand.NewFaultPlan(nand.FaultConfig{Seed: seed})
	default:
		return nand.NewFaultPlan(nand.FaultConfig{
			Seed:            seed,
			ProgramFailProb: rng.Float64() * 0.05,
			PPFailProb:      rng.Float64() * 0.05,
			EraseFailProb:   rng.Float64() * 0.05,
			BadBlockFrac:    rng.Float64() * 0.1,
			ReadDisturbProb: rng.Float64() * 0.5,
		})
	}
}

// TestPropStripedExactOrTypedError extends the hide/reveal property to the
// striped path: shards spread over blocks of a fault-injected chip must come
// back exactly or fail with a typed error, even when injected faults eat
// shards.
func TestPropStripedExactOrTypedError(t *testing.T) {
	for _, seed := range propSeeds(t, 15) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, 0x57a1))
			chip := nand.NewChip(coreTestModel(), seed)
			chip.SetFaultPlan(propFaults(rng, seed))
			h, err := NewHider(chip, randBytes(rng, 16), RobustConfig())
			if err != nil {
				t.Fatal(err)
			}
			g := StripeGeometry{Data: 2 + rng.IntN(3), Parity: 1 + rng.IntN(2)}
			var addrs []nand.PageAddr
			for i := 0; i < g.Data+g.Parity; i++ {
				a := nand.PageAddr{Block: i, Page: 0}
				if err := h.WritePage(a, randBytes(rng, h.PublicDataBytes())); err != nil {
					if !typedHideRevealErr(err) {
						t.Fatalf("seed %d: cover write error not typed: %v", seed, err)
					}
					return
				}
				addrs = append(addrs, a)
			}
			payload := randBytes(rng, 1+rng.IntN(h.StripeCapacity(g)))
			if err := h.HideStriped(g, addrs, payload, 0); err != nil {
				if !typedHideRevealErr(err) {
					t.Fatalf("seed %d: striped hide error not typed: %v", seed, err)
				}
				return
			}
			got, _, err := h.RevealStriped(g, addrs, len(payload), 0)
			if err != nil {
				if !typedHideRevealErr(err) {
					t.Fatalf("seed %d: striped reveal error not typed: %v", seed, err)
				}
				return
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("seed %d: SILENT CORRUPTION on striped path: %d bytes differ",
					seed, diffBytes(got, payload))
			}
		})
	}
}

func diffBytes(a, b []byte) int {
	n := 0
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			n++
		}
	}
	if len(a) != len(b) {
		n += len(b) - len(a)
	}
	return n
}
