package vthi

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

func stripeSetup(t *testing.T, seed uint64, pages int) (*Hider, []nand.PageAddr) {
	t.Helper()
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(16, 8, 4096), seed)
	h, err := NewHider(chip, []byte("stripe-key"), RobustConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 1))
	// One shard per block: the point of striping is surviving the loss
	// of whole blocks, so shards must not share failure domains.
	var addrs []nand.PageAddr
	for i := 0; i < pages; i++ {
		a := nand.PageAddr{Block: i, Page: 0}
		if err := h.WritePage(a, randBytes(rng, h.PublicDataBytes())); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	return h, addrs
}

func TestStripeRoundTripClean(t *testing.T) {
	g := StripeGeometry{Data: 4, Parity: 2}
	h, addrs := stripeSetup(t, 1, 6)
	rng := rand.New(rand.NewPCG(2, 2))
	payload := randBytes(rng, h.StripeCapacity(g))
	if err := h.HideStriped(g, addrs, payload, 0); err != nil {
		t.Fatal(err)
	}
	got, rep, err := h.RevealStriped(g, addrs, len(payload), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FailedShards) != 0 {
		t.Errorf("clean reveal reported failed shards %v", rep.FailedShards)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestStripeSurvivesLostPages(t *testing.T) {
	g := StripeGeometry{Data: 4, Parity: 2}
	h, addrs := stripeSetup(t, 3, 6)
	rng := rand.New(rand.NewPCG(4, 4))
	payload := randBytes(rng, h.StripeCapacity(g))
	if err := h.HideStriped(g, addrs, payload, 0); err != nil {
		t.Fatal(err)
	}
	// Destroy two shards outright: erase their blocks and rewrite public
	// covers (the bad-block / lost-cover scenario of §8).
	chip := h.dev
	for _, i := range []int{1, 4} {
		if err := chip.EraseBlock(addrs[i].Block); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < chip.Geometry().PagesPerBlock; p++ {
			a := nand.PageAddr{Block: addrs[i].Block, Page: p}
			if err := h.WritePage(a, randBytes(rng, h.PublicDataBytes())); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, rep, err := h.RevealStriped(g, addrs, len(payload), 0)
	if err != nil {
		t.Fatalf("reveal with 2 lost pages: %v (failed %v)", err, rep.FailedShards)
	}
	if len(rep.FailedShards) != 2 {
		t.Errorf("failed shards = %v, want the 2 destroyed pages", rep.FailedShards)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload not reconstructed from parity")
	}
}

func TestStripeTooManyLosses(t *testing.T) {
	g := StripeGeometry{Data: 3, Parity: 2}
	h, addrs := stripeSetup(t, 5, 5)
	rng := rand.New(rand.NewPCG(6, 6))
	payload := randBytes(rng, h.StripeCapacity(g))
	if err := h.HideStriped(g, addrs, payload, 0); err != nil {
		t.Fatal(err)
	}
	chip := h.dev
	for _, i := range []int{0, 2, 4} { // three losses > parity 2
		if err := chip.EraseBlock(addrs[i].Block); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < chip.Geometry().PagesPerBlock; p++ {
			a := nand.PageAddr{Block: addrs[i].Block, Page: p}
			if err := h.WritePage(a, randBytes(rng, h.PublicDataBytes())); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := h.RevealStriped(g, addrs, len(payload), 0); err == nil {
		t.Fatal("stripe with losses beyond parity revealed successfully")
	}
}

func TestStripeShortPayloadPadding(t *testing.T) {
	g := StripeGeometry{Data: 4, Parity: 2}
	h, addrs := stripeSetup(t, 7, 6)
	payload := []byte("short")
	if err := h.HideStriped(g, addrs, payload, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := h.RevealStriped(g, addrs, len(payload), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestStripeValidation(t *testing.T) {
	h, addrs := stripeSetup(t, 8, 6)
	bad := []StripeGeometry{
		{Data: 0, Parity: 2},
		{Data: 4, Parity: 0},
		{Data: 4, Parity: 3},   // odd parity
		{Data: 254, Parity: 2}, // exceeds RS symbol space
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
	g := StripeGeometry{Data: 4, Parity: 2}
	if err := h.HideStriped(g, addrs[:5], []byte("x"), 0); err == nil {
		t.Error("wrong address count accepted")
	}
	big := make([]byte, h.StripeCapacity(g)+1)
	if err := h.HideStriped(g, addrs, big, 0); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, _, err := h.RevealStriped(g, addrs, h.StripeCapacity(g)+1, 0); err == nil {
		t.Error("oversized reveal accepted")
	}
}
