package vthi

import (
	"fmt"

	"stashflash/internal/ecc"
	"stashflash/internal/nand"
	"stashflash/internal/seal"
)

// Hider is the full VT-HI pipeline of paper Fig 4: public data flows
// through the public ECC layout onto flash; hidden data is encrypted,
// BCH-expanded, and embedded into keyed cell selections of the same pages.
// One Hider serves both roles of §5.1 — the normal user path (WritePage /
// ReadPublic, no key material needed to read) and the hiding user path
// (Hide / Reveal, driven by the master secret).
// Like the nand.Device it drives, a Hider is not safe for concurrent use:
// the hot-path methods (WritePage, Hide, Reveal, ReadPublic) reuse owned
// scratch — a cached sealer, page-image and codeword buffers, and one
// PagePlan — so the steady state allocates only what it must return.
type Hider struct {
	dev    nand.VendorDevice
	emb    *Embedder
	cfg    Config
	keys   seal.Keys
	sealer *seal.Sealer
	pub    *PublicLayout
	bch    *ecc.BCH

	codewordBits int
	payloadBytes int

	imgBuf  []byte  // page image scratch (write path and read/recover path)
	padBuf  []byte  // padded/encrypted payload scratch
	cwBuf   []uint8 // codeword bit scratch (build path)
	bitsBuf []uint8 // codeword bit scratch (verify/reveal read path)
	msgBits []uint8 // payload bit scratch
	plan    PagePlan
}

// NewHider builds a VT-HI pipeline on a device with the given master
// secret and configuration. Any nand.VendorDevice backend works: the
// direct simulator chip or the ONFI bus adapter (see internal/onfi).
func NewHider(dev nand.VendorDevice, master []byte, cfg Config) (*Hider, error) {
	if err := cfg.Validate(dev.Model()); err != nil {
		return nil, err
	}
	keys := seal.DeriveKeys(master)
	emb, err := NewEmbedder(dev, keys.Locate, cfg)
	if err != nil {
		return nil, err
	}
	pub, err := NewPublicLayout(dev.Geometry().PageBytes, cfg.PublicRST)
	if err != nil {
		return nil, err
	}
	m := bchDegree(cfg.HiddenCellsPerPage)
	bch := ecc.NewBCH(m, cfg.BCHT)
	parity := bch.ParityBits()
	if parity >= cfg.HiddenCellsPerPage {
		return nil, fmt.Errorf("vthi: hidden ECC parity (%d bits) consumes the whole %d-cell budget", parity, cfg.HiddenCellsPerPage)
	}
	payloadBytes := (cfg.HiddenCellsPerPage - parity) / 8
	if payloadBytes < 1 {
		return nil, fmt.Errorf("vthi: configuration leaves no hidden payload capacity")
	}
	cwBits := payloadBytes*8 + parity
	return &Hider{
		dev:          dev,
		emb:          emb,
		cfg:          cfg,
		keys:         keys,
		sealer:       seal.NewSealer(keys.Encrypt),
		pub:          pub,
		bch:          bch,
		codewordBits: cwBits,
		payloadBytes: payloadBytes,
		imgBuf:       make([]byte, dev.Geometry().PageBytes),
		padBuf:       make([]byte, payloadBytes),
		cwBuf:        make([]uint8, cwBits),
		bitsBuf:      make([]uint8, cwBits),
		msgBits:      make([]uint8, payloadBytes*8),
	}, nil
}

// Config returns the hider's configuration.
func (h *Hider) Config() Config { return h.cfg }

// PublicDataBytes returns the public capacity of one page under the
// hider's layout.
func (h *Hider) PublicDataBytes() int { return h.pub.DataBytes() }

// HiddenPayloadBytes returns the hidden capacity of one page: the cell
// budget minus BCH parity, floored to whole bytes.
func (h *Hider) HiddenPayloadBytes() int { return h.payloadBytes }

// Embedder exposes the low-level embedding machinery (used by experiments
// that measure raw BER below the ECC layer).
func (h *Hider) Embedder() *Embedder { return h.emb }

// WritePage stores public data (exactly PublicDataBytes long) to an erased
// page through the public ECC layout.
func (h *Hider) WritePage(a nand.PageAddr, public []byte) error {
	if err := h.pub.EncodeInto(h.imgBuf, public); err != nil {
		return err
	}
	return h.dev.ProgramPage(a, h.imgBuf)
}

// ReadPublic reads a page's public data, correcting raw bit errors through
// the public ECC. No key material is involved: hidden data leaves public
// reads untouched (§5.3, "public data can be read with no awareness of
// hidden data or private key").
func (h *Hider) ReadPublic(a nand.PageAddr) (data []byte, corrected int, err error) {
	if err := nand.ReadPageInto(h.dev, a, h.imgBuf); err != nil {
		return nil, 0, err
	}
	return h.pub.Decode(h.imgBuf)
}

// recoverImage reads a page and reconstructs its exact as-programmed image
// via the public ECC, which makes hidden cell selection reproducible.
func (h *Hider) recoverImage(a nand.PageAddr) ([]byte, error) {
	if err := nand.ReadPageInto(h.dev, a, h.imgBuf); err != nil {
		return nil, err
	}
	if _, err := h.pub.Correct(h.imgBuf); err != nil {
		return nil, err
	}
	return h.imgBuf, nil // Correct repaired the image in place
}

// Fault-injected resilience budgets: how many embed+verify rounds one
// Hide may run, and how many transient pulse FAILs one round may absorb.
const (
	hideAttempts     = 3
	embedFaultBudget = 8
)

// faultAware reports whether the device carries an active (non-zero)
// fault plan. All resilience machinery — verify reads, embed retries,
// reveal read-retry — is gated on it, so a pristine device (nil or
// zero-fault plan, or a backend without fault injection) keeps
// bit-identical behaviour and ledger costs.
func (h *Hider) faultAware() bool {
	p := nand.PlanOf(h.dev)
	return p != nil && !p.Config().Zero()
}

// buildCodeword encrypts and ECC-expands a hidden payload for a page.
func (h *Hider) buildCodeword(a nand.PageAddr, hidden []byte, epoch uint64) ([]uint8, error) {
	if len(hidden) > h.payloadBytes {
		return nil, fmt.Errorf("vthi: hidden payload %d bytes exceeds page capacity %d", len(hidden), h.payloadBytes)
	}
	n := copy(h.padBuf, hidden)
	for i := n; i < len(h.padBuf); i++ {
		h.padBuf[i] = 0
	}
	h.sealer.EncryptPageInto(h.padBuf, h.emb.pageIndex(a), epoch, h.padBuf)
	ecc.BytesToBitsInto(h.msgBits, h.padBuf)
	return h.bch.EncodeTo(h.cwBuf, h.msgBits), nil
}

// Hide embeds a hidden payload (up to HiddenPayloadBytes) into an
// already-programmed page, per Algorithm 1. epoch distinguishes successive
// embeddings of the same page across data migrations (see seal.EncryptPage).
func (h *Hider) Hide(a nand.PageAddr, hidden []byte, epoch uint64) (HideStats, error) {
	cw, err := h.buildCodeword(a, hidden, epoch)
	if err != nil {
		return HideStats{}, err
	}
	image, err := h.recoverImage(a)
	if err != nil {
		return HideStats{}, err
	}
	plan := &h.plan
	if err := h.emb.PlanTo(plan, a, image, len(cw)); err != nil {
		return HideStats{}, err
	}
	if h.cfg.Vendor {
		if err := h.emb.FineEmbed(plan, cw); err != nil {
			return HideStats{}, err
		}
		return HideStats{Steps: 1, Cells: len(plan.Cells)}, nil
	}
	if !h.faultAware() {
		steps, err := h.emb.Embed(plan, cw, h.cfg.MaxPPSteps)
		if err != nil {
			return HideStats{}, err
		}
		return HideStats{Steps: steps, Cells: len(plan.Cells)}, nil
	}
	// Fault-injected device: absorb transient pulse FAILs inside the embed
	// loop, then verify the page actually decodes to the embedded codeword
	// and re-run the loop if not (pushing any still-short cells further).
	// Cell selection is key-derived, so true fallback onto fresh cells
	// happens one layer up (stegfs rewrites the cover sector via the FTL).
	st := HideStats{Cells: len(plan.Cells)}
	for attempt := 0; ; attempt++ {
		steps, absorbed, err := h.emb.EmbedResilient(plan, cw, h.cfg.MaxPPSteps, embedFaultBudget)
		st.Steps += steps
		st.FaultsAbsorbed += absorbed
		if err != nil {
			return st, err
		}
		ok, err := h.verifyEmbed(plan, cw)
		if err != nil {
			return st, err
		}
		if ok {
			return st, nil
		}
		if attempt+1 >= hideAttempts {
			return st, fmt.Errorf("%w: embed verification failed after %d attempts at %v", ErrHiddenUnrecoverable, hideAttempts, a)
		}
		st.Retries++
	}
}

// verifyEmbed re-reads the plan's cells once and checks they BCH-decode to
// exactly the embedded codeword.
func (h *Hider) verifyEmbed(plan *PagePlan, cw []uint8) (bool, error) {
	bits := h.bitsBuf[:len(plan.Cells)]
	if err := h.emb.ReadBitsInto(plan, 0, bits); err != nil {
		return false, err
	}
	if _, err := h.bch.Decode(bits); err != nil {
		return false, nil
	}
	for i := range bits {
		if bits[i] != cw[i] {
			return false, nil
		}
	}
	return true, nil
}

// WriteAndHide programs public data and immediately embeds hidden data in
// the same page. Vendor-mode configurations require this path: fine
// placement must happen before neighbour interference accumulates.
func (h *Hider) WriteAndHide(a nand.PageAddr, public, hidden []byte, epoch uint64) (HideStats, error) {
	if err := h.WritePage(a, public); err != nil {
		return HideStats{}, err
	}
	return h.Hide(a, hidden, epoch)
}

// readRetryDeltas is the reference-nudge schedule a fault-injected reveal
// walks when the nominal read fails to decode: positive nudges recover
// disturb-bumped erased cells, negative ones retention-drooped programmed
// cells.
var readRetryDeltas = []float64{0, 1.5, -1.5, 3, -3}

// Reveal extracts n hidden bytes from a page: one read at the shifted
// reference threshold, BCH correction, then decryption. It does not alter
// any cell ("decoding ... requires a single, non-destructive read", §1).
func (h *Hider) Reveal(a nand.PageAddr, n int, epoch uint64) ([]byte, RevealStats, error) {
	var st RevealStats
	if n > h.payloadBytes {
		return nil, st, fmt.Errorf("vthi: requested %d bytes, page capacity is %d", n, h.payloadBytes)
	}
	if err := nand.ReadPageInto(h.dev, a, h.imgBuf); err != nil {
		return nil, st, err
	}
	var err error
	if st.CorrectedPublic, err = h.pub.Correct(h.imgBuf); err != nil {
		return nil, st, err
	}
	plan := &h.plan
	if err := h.emb.PlanTo(plan, a, h.imgBuf, h.codewordBits); err != nil {
		return nil, st, err
	}
	// Pristine devices get exactly one read at the nominal reference;
	// fault-injected devices walk the read-retry schedule until a read
	// decodes.
	deltas := readRetryDeltas[:1]
	if h.faultAware() {
		deltas = readRetryDeltas
	}
	var lastErr error
	for i, d := range deltas {
		if i > 0 {
			st.Rereads++
		}
		bits := h.bitsBuf[:h.codewordBits]
		if err := h.emb.ReadBitsInto(plan, d, bits); err != nil {
			return nil, st, err
		}
		corrected, err := h.bch.Decode(bits)
		if err != nil {
			lastErr = err
			continue
		}
		st.CorrectedHidden = corrected
		ecc.BitsToBytesInto(h.padBuf, bits[:h.payloadBytes*8])
		h.sealer.EncryptPageInto(h.padBuf, h.emb.pageIndex(a), epoch, h.padBuf)
		out := make([]byte, n)
		copy(out, h.padBuf[:n])
		return out, st, nil
	}
	return nil, st, fmt.Errorf("%w: %v", ErrHiddenUnrecoverable, lastErr)
}

// HiddenPageStride returns the stride between consecutive pages holding
// hidden data under the configured page interval: interval 1 means every
// second page carries hidden bits (§6.3).
func (h *Hider) HiddenPageStride() int { return h.cfg.PageInterval + 1 }

// HiddenBlockCapacity returns the hidden payload capacity of one block in
// bytes, honouring the page interval.
func (h *Hider) HiddenBlockCapacity() int {
	pages := (h.dev.Geometry().PagesPerBlock + h.cfg.PageInterval) / h.HiddenPageStride()
	return pages * h.payloadBytes
}
