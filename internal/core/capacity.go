package core

// CapacityReport quantifies a scheme configuration's hidden storage yield
// on a chip model: raw selected cells (or code units), payload after
// hidden ECC, per-block and whole-device capacity, and the fraction of
// device bits devoted to hidden data. Every scheme package exposes its
// own PlanCapacity returning this shared shape, so the cross-scheme
// bake-off can tabulate capacities side by side.
type CapacityReport struct {
	Config string

	// CellsPerPage is the hidden cell budget per hidden-carrying page
	// (for WOM-coded schemes: the cells of the selected code triples).
	CellsPerPage int
	// ECCParityBits is the per-page hidden ECC parity overhead.
	ECCParityBits int
	// PayloadBitsPerPage is the usable hidden payload per page.
	PayloadBitsPerPage int
	// ECCOverheadFraction is parity / hidden code bits.
	ECCOverheadFraction float64

	// PagesPerBlock counts hidden-carrying pages per block under the
	// configured page interval.
	PagesPerBlock int
	// PayloadBitsPerBlock is the usable hidden payload per block.
	PayloadBitsPerBlock int

	// DevicePayloadBytes is the whole-device hidden capacity.
	DevicePayloadBytes int64
	// FractionOfDeviceBits is hidden payload bits over raw device bits.
	FractionOfDeviceBits float64
}
