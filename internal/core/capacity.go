package core

import (
	"stashflash/internal/ecc"
	"stashflash/internal/nand"
)

// CapacityReport quantifies a configuration's hidden storage yield on a
// chip model, reproducing the arithmetic of paper §6.3/§8: raw selected
// cells, payload after hidden ECC, per-block and whole-device capacity,
// and the fraction of device bits devoted to hidden data (the paper quotes
// ~0.02% for the prototype and ~0.2% with firmware support).
type CapacityReport struct {
	Config string

	// CellsPerPage is the hidden cell budget per hidden-carrying page.
	CellsPerPage int
	// ECCParityBits is the per-page hidden BCH parity overhead.
	ECCParityBits int
	// PayloadBitsPerPage is the usable hidden payload per page.
	PayloadBitsPerPage int
	// ECCOverheadFraction is parity / cells.
	ECCOverheadFraction float64

	// PagesPerBlock counts hidden-carrying pages per block under the
	// configured page interval.
	PagesPerBlock int
	// PayloadBitsPerBlock is the usable hidden payload per block.
	PayloadBitsPerBlock int

	// DevicePayloadBytes is the whole-device hidden capacity.
	DevicePayloadBytes int64
	// FractionOfDeviceBits is hidden payload bits over raw device bits.
	FractionOfDeviceBits float64
}

// PlanCapacity computes the capacity report for cfg on model m.
func PlanCapacity(m nand.Model, cfg Config) (CapacityReport, error) {
	if err := cfg.Validate(m); err != nil {
		return CapacityReport{}, err
	}
	deg := bchDegree(cfg.HiddenCellsPerPage)
	bch := ecc.NewBCH(deg, cfg.BCHT)
	parity := bch.ParityBits()
	payloadBits := (cfg.HiddenCellsPerPage - parity) / 8 * 8

	stride := cfg.PageInterval + 1
	hiddenPages := (m.PagesPerBlock + cfg.PageInterval) / stride
	blockBits := hiddenPages * payloadBits

	deviceBits := int64(blockBits) * int64(m.Blocks)
	rawBits := m.TotalBytes() * 8

	return CapacityReport{
		Config:               cfg.Name,
		CellsPerPage:         cfg.HiddenCellsPerPage,
		ECCParityBits:        parity,
		PayloadBitsPerPage:   payloadBits,
		ECCOverheadFraction:  float64(parity) / float64(cfg.HiddenCellsPerPage),
		PagesPerBlock:        hiddenPages,
		PayloadBitsPerBlock:  blockBits,
		DevicePayloadBytes:   deviceBits / 8,
		FractionOfDeviceBits: float64(deviceBits) / float64(rawBits),
	}, nil
}
