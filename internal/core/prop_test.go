package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"testing"
	"time"

	"stashflash/internal/core"
	"stashflash/internal/nand"

	// Register every scheme so the suite is parameterized over all of them.
	_ "stashflash/internal/core/vthi"
	_ "stashflash/internal/core/womftl"
)

// Property suite: for every registered scheme, payload, wear state and
// injected fault schedule, Reveal(Hide(x)) must return exactly x or a
// typed error — never a silently corrupted payload. Each trial derives
// from an iteration seed that is logged on failure; replay a failing
// trial with
//
//	STASHFLASH_PROP_SEED=<seed> go test ./internal/core -run TestProp
//
// which pins the whole run to that single seed.

// propTestModel is large enough to host the standard 256-cell budget with
// realistic candidate statistics.
func propTestModel() nand.Model {
	return nand.ModelA().ScaleGeometry(16, 8, 4096)
}

func propRandBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

// propSeeds yields the trial seeds: a pinned replay seed if the env knob is
// set, otherwise n time-derived seeds (the property must hold for all of
// them, so fresh seeds each run widen coverage instead of flaking).
func propSeeds(t *testing.T, n int) []uint64 {
	t.Helper()
	if s := os.Getenv("STASHFLASH_PROP_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("STASHFLASH_PROP_SEED: %v", err)
		}
		return []uint64{v}
	}
	base := uint64(time.Now().UnixNano())
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)*0x9e3779b97f4a7c15
	}
	return seeds
}

// typedHideRevealErr reports whether err is one of the declared failure
// modes of the hide/reveal contract (as opposed to an internal invariant
// leak or a panic caught upstream).
func typedHideRevealErr(err error) bool {
	for _, want := range []error{
		core.ErrHiddenUnrecoverable,
		nand.ErrProgramFailed,
		nand.ErrEraseFailed,
		nand.ErrBadBlock,
		nand.ErrPowerLoss,
		nand.ErrPageProgrammed,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	// Public-ECC decode failure while reconstructing the cover image is the
	// remaining declared mode; it surfaces as an rs/ecc error. Accept any
	// non-nil error here but require it to carry a message (belt and
	// braces: the property we must reject is silent corruption, not a
	// specific error string).
	return err != nil && err.Error() != ""
}

// propFaults draws a fault schedule: roughly a third of the trials run
// pristine (no plan), a third with a zero plan attached (transparency), and
// a third with live fault rates.
func propFaults(rng *rand.Rand, seed uint64) *nand.FaultPlan {
	switch rng.IntN(3) {
	case 0:
		return nil
	case 1:
		return nand.NewFaultPlan(nand.FaultConfig{Seed: seed})
	default:
		return nand.NewFaultPlan(nand.FaultConfig{
			Seed:            seed,
			ProgramFailProb: rng.Float64() * 0.05,
			PPFailProb:      rng.Float64() * 0.05,
			EraseFailProb:   rng.Float64() * 0.05,
			BadBlockFrac:    rng.Float64() * 0.1,
			ReadDisturbProb: rng.Float64() * 0.5,
		})
	}
}

// TestPropHideRevealExactOrTypedError is the headline property, table-driven
// over every registered scheme: one page, random wear, random payload
// length, random fault plan.
func TestPropHideRevealExactOrTypedError(t *testing.T) {
	for _, name := range core.SchemeNames() {
		info, err := core.SchemeByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			for _, seed := range propSeeds(t, 20) {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewPCG(seed, 0x9909))
					chip := nand.NewChip(propTestModel(), seed)
					chip.SetFaultPlan(propFaults(rng, seed))
					s, err := info.New(chip, propRandBytes(rng, 16))
					if err != nil {
						t.Fatalf("seed %d: new scheme: %v", seed, err)
					}
					block := rng.IntN(chip.Geometry().Blocks)
					if pec := rng.IntN(3) * 1000; pec > 0 {
						if err := chip.CycleBlock(block, pec); err != nil {
							if !typedHideRevealErr(err) {
								t.Fatalf("seed %d: cycle error not typed: %v", seed, err)
							}
							return // block died during pre-conditioning: typed, done
						}
					}
					stride := s.HiddenPageStride()
					pages := chip.Geometry().PagesPerBlock
					a := nand.PageAddr{Block: block, Page: rng.IntN(1+(pages-1)/stride) * stride}
					payload := propRandBytes(rng, 1+rng.IntN(s.HiddenPayloadBytes()))
					epoch := rng.Uint64()

					_, err = s.WriteAndHide(a, propRandBytes(rng, s.PublicDataBytes()), payload, epoch)
					if err != nil {
						if !typedHideRevealErr(err) {
							t.Fatalf("seed %d: hide error not typed: %v", seed, err)
						}
						return
					}
					got, _, err := s.Reveal(a, len(payload), epoch)
					if err != nil {
						if !typedHideRevealErr(err) {
							t.Fatalf("seed %d: reveal error not typed: %v", seed, err)
						}
						return
					}
					if !bytes.Equal(got, payload) {
						t.Fatalf("seed %d: SILENT CORRUPTION: scheme %s, addr %v, %d bytes differ",
							seed, s.Name(), a, diffBytes(got, payload))
					}
				})
			}
		})
	}
}

// TestPropPostHocHideExactOrTypedError exercises the two-phase path every
// scheme must also support: program public data first, hide into the
// already-programmed page afterwards.
func TestPropPostHocHideExactOrTypedError(t *testing.T) {
	for _, name := range core.SchemeNames() {
		info, err := core.SchemeByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			for _, seed := range propSeeds(t, 8) {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewPCG(seed, 0xb01d))
					chip := nand.NewChip(propTestModel(), seed)
					chip.SetFaultPlan(propFaults(rng, seed))
					s, err := info.New(chip, propRandBytes(rng, 16))
					if err != nil {
						t.Fatalf("seed %d: new scheme: %v", seed, err)
					}
					a := nand.PageAddr{Block: rng.IntN(chip.Geometry().Blocks), Page: 0}
					payload := propRandBytes(rng, 1+rng.IntN(s.HiddenPayloadBytes()))
					epoch := rng.Uint64()

					if err := s.WritePage(a, propRandBytes(rng, s.PublicDataBytes())); err != nil {
						if !typedHideRevealErr(err) {
							t.Fatalf("seed %d: cover write error not typed: %v", seed, err)
						}
						return
					}
					if _, err := s.Hide(a, payload, epoch); err != nil {
						if !typedHideRevealErr(err) {
							t.Fatalf("seed %d: hide error not typed: %v", seed, err)
						}
						return
					}
					got, _, err := s.Reveal(a, len(payload), epoch)
					if err != nil {
						if !typedHideRevealErr(err) {
							t.Fatalf("seed %d: reveal error not typed: %v", seed, err)
						}
						return
					}
					if !bytes.Equal(got, payload) {
						t.Fatalf("seed %d: SILENT CORRUPTION: scheme %s, addr %v, %d bytes differ",
							seed, s.Name(), a, diffBytes(got, payload))
					}
				})
			}
		})
	}
}

func diffBytes(a, b []byte) int {
	n := 0
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			n++
		}
	}
	if len(a) != len(b) {
		n += len(b) - len(a)
	}
	return n
}
