package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"testing"
	"time"

	"stashflash/internal/nand"
)

// Property suite: for every configuration, payload, wear state and injected
// fault schedule, Reveal(Hide(x)) must return exactly x or a typed error —
// never a silently corrupted payload. Each trial derives from an iteration
// seed that is logged on failure; replay a failing trial with
//
//	STASHFLASH_PROP_SEED=<seed> go test ./internal/core -run TestProp
//
// which pins the whole run to that single seed.

// propSeeds yields the trial seeds: a pinned replay seed if the env knob is
// set, otherwise n time-derived seeds (the property must hold for all of
// them, so fresh seeds each run widen coverage instead of flaking).
func propSeeds(t *testing.T, n int) []uint64 {
	t.Helper()
	if s := os.Getenv("STASHFLASH_PROP_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("STASHFLASH_PROP_SEED: %v", err)
		}
		return []uint64{v}
	}
	base := uint64(time.Now().UnixNano())
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)*0x9e3779b97f4a7c15
	}
	return seeds
}

// typedHideRevealErr reports whether err is one of the declared failure
// modes of the hide/reveal contract (as opposed to an internal invariant
// leak or a panic caught upstream).
func typedHideRevealErr(err error) bool {
	for _, want := range []error{
		ErrHiddenUnrecoverable,
		nand.ErrProgramFailed,
		nand.ErrEraseFailed,
		nand.ErrBadBlock,
		nand.ErrPowerLoss,
		nand.ErrPageProgrammed,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	// Public-ECC decode failure while reconstructing the cover image is the
	// remaining declared mode; it surfaces as an rs/ecc error. Accept any
	// non-nil error here but require it to carry a message (belt and
	// braces: the property we must reject is silent corruption, not a
	// specific error string).
	return err != nil && err.Error() != ""
}

// propConfig draws one of the three public operating points.
func propConfig(rng *rand.Rand) Config {
	switch rng.IntN(3) {
	case 0:
		return StandardConfig()
	case 1:
		return EnhancedConfig()
	default:
		return RobustConfig()
	}
}

// propFaults draws a fault schedule: roughly a third of the trials run
// pristine (no plan), a third with a zero plan attached (transparency), and
// a third with live fault rates.
func propFaults(rng *rand.Rand, seed uint64) *nand.FaultPlan {
	switch rng.IntN(3) {
	case 0:
		return nil
	case 1:
		return nand.NewFaultPlan(nand.FaultConfig{Seed: seed})
	default:
		return nand.NewFaultPlan(nand.FaultConfig{
			Seed:            seed,
			ProgramFailProb: rng.Float64() * 0.05,
			PPFailProb:      rng.Float64() * 0.05,
			EraseFailProb:   rng.Float64() * 0.05,
			BadBlockFrac:    rng.Float64() * 0.1,
			ReadDisturbProb: rng.Float64() * 0.5,
		})
	}
}

// TestPropHideRevealExactOrTypedError is the headline property: one page,
// random config, random wear, random payload length, random fault plan.
func TestPropHideRevealExactOrTypedError(t *testing.T) {
	for _, seed := range propSeeds(t, 40) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, 0x9909))
			cfg := propConfig(rng)
			chip := nand.NewChip(coreTestModel(), seed)
			chip.SetFaultPlan(propFaults(rng, seed))
			h, err := NewHider(chip, randBytes(rng, 16), cfg)
			if err != nil {
				t.Fatalf("seed %d: NewHider: %v", seed, err)
			}
			block := rng.IntN(chip.Geometry().Blocks)
			if pec := rng.IntN(3) * 1000; pec > 0 {
				if err := chip.CycleBlock(block, pec); err != nil {
					if !typedHideRevealErr(err) {
						t.Fatalf("seed %d: cycle error not typed: %v", seed, err)
					}
					return // block died during pre-conditioning: typed, done
				}
			}
			a := nand.PageAddr{Block: block, Page: rng.IntN(chip.Geometry().PagesPerBlock)}
			payload := randBytes(rng, 1+rng.IntN(h.HiddenPayloadBytes()))
			epoch := rng.Uint64()

			_, err = h.WriteAndHide(a, randBytes(rng, h.PublicDataBytes()), payload, epoch)
			if err != nil {
				if !typedHideRevealErr(err) {
					t.Fatalf("seed %d: hide error not typed: %v", seed, err)
				}
				return
			}
			got, _, err := h.Reveal(a, len(payload), epoch)
			if err != nil {
				if !typedHideRevealErr(err) {
					t.Fatalf("seed %d: reveal error not typed: %v", seed, err)
				}
				return
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("seed %d: SILENT CORRUPTION: config %s, addr %v, %d bytes differ",
					seed, cfg.Name, a, diffBytes(got, payload))
			}
		})
	}
}

// TestPropStripedExactOrTypedError extends the property to the striped
// path: shards spread over blocks of a fault-injected chip must come back
// exactly or fail with a typed error, even when injected faults eat shards.
func TestPropStripedExactOrTypedError(t *testing.T) {
	for _, seed := range propSeeds(t, 15) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, 0x57a1))
			chip := nand.NewChip(coreTestModel(), seed)
			chip.SetFaultPlan(propFaults(rng, seed))
			h, err := NewHider(chip, randBytes(rng, 16), RobustConfig())
			if err != nil {
				t.Fatal(err)
			}
			g := StripeGeometry{Data: 2 + rng.IntN(3), Parity: 1 + rng.IntN(2)}
			var addrs []nand.PageAddr
			for i := 0; i < g.Data+g.Parity; i++ {
				a := nand.PageAddr{Block: i, Page: 0}
				if err := h.WritePage(a, randBytes(rng, h.PublicDataBytes())); err != nil {
					if !typedHideRevealErr(err) {
						t.Fatalf("seed %d: cover write error not typed: %v", seed, err)
					}
					return
				}
				addrs = append(addrs, a)
			}
			payload := randBytes(rng, 1+rng.IntN(h.StripeCapacity(g)))
			if err := h.HideStriped(g, addrs, payload, 0); err != nil {
				if !typedHideRevealErr(err) {
					t.Fatalf("seed %d: striped hide error not typed: %v", seed, err)
				}
				return
			}
			got, _, err := h.RevealStriped(g, addrs, len(payload), 0)
			if err != nil {
				if !typedHideRevealErr(err) {
					t.Fatalf("seed %d: striped reveal error not typed: %v", seed, err)
				}
				return
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("seed %d: SILENT CORRUPTION on striped path: %d bytes differ",
					seed, diffBytes(got, payload))
			}
		})
	}
}

func diffBytes(a, b []byte) int {
	n := 0
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			n++
		}
	}
	if len(a) != len(b) {
		n += len(b) - len(a)
	}
	return n
}
