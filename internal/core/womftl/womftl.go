// Package womftl implements a PEARL-style FTL hiding scheme (arXiv
// 2009.02011): hidden bits ride the write choices of a two-generation WOM
// code over ordinary page programs. Public data is encoded two bits per
// three cells (internal/wom); a keyed selection of triples carries one
// hidden bit each in its generation choice — generation 1 for '1',
// generation 2 for '0' — which public reads cannot see (both generations
// decode to the same public value) but a key holder recovers exactly.
//
// Unlike VT-HI the scheme needs no vendor commands: every operation is
// ReadPage / ProgramPage / PartialProgram from the baseline nand.Device
// set, so it runs on any standards-compliant backend (including the ONFI
// bus adapter). The costs move instead: public capacity drops to 2/3 of
// raw (before ECC), and a post-hoc Hide must drive selected cells across
// the public read reference with partial-program pulses — a slow,
// write-amplifying walk whose voltage placement is also what an SVM
// attacker can see. WriteAndHide folds the generation choice into the
// initial program, which is voltage-exact and undetectable; the schemes
// experiment quantifies both sides against VT-HI.
package womftl

import (
	"fmt"

	"stashflash/internal/core"
	"stashflash/internal/ecc"
	"stashflash/internal/nand"
	"stashflash/internal/prng"
	"stashflash/internal/seal"
	"stashflash/internal/wom"
)

// Config parameterises the scheme.
type Config struct {
	// Name labels the configuration (and the scheme instance).
	Name string
	// HiddenTriplesPerPage is the hidden codeword length in WOM triples
	// (one hidden bit each, including ECC parity).
	HiddenTriplesPerPage int
	// BCHT is the hidden BCH correction strength in bits.
	BCHT int
	// PublicRST is the public Reed–Solomon symbol correction strength
	// applied to the logical (pre-WOM) page image.
	PublicRST int
	// PageInterval spaces hidden-carrying pages (0 = every page; the WOM
	// channel does not disturb public margins, so 0 is the default).
	PageInterval int
	// MaxUpgradePulses bounds the partial-program rounds one post-hoc
	// Hide may spend driving upgrade cells across the read reference.
	// Cell programming gain is log-normally spread, so the slowest cells
	// dominate; leftover stragglers are absorbed by the hidden ECC.
	MaxUpgradePulses int
	// OvershootPulses adds margin pulses after an upgrade cell first
	// reads programmed, protecting the generation bit against disturb
	// and retention droop.
	OvershootPulses int
}

// DefaultConfig mirrors the VT-HI standard hidden budget (256 code bits,
// t=8 BCH) on the WOM channel.
func DefaultConfig() Config {
	return Config{
		Name:                 "womftl",
		HiddenTriplesPerPage: 256,
		BCHT:                 8,
		PublicRST:            4,
		PageInterval:         0,
		MaxUpgradePulses:     96,
		OvershootPulses:      3,
	}
}

// usableTriples returns how many WOM triples a page of pageBytes offers:
// floor(cells/3) floored to a multiple of 4 so the logical image is a
// whole number of bytes (4 triples = 8 public bits).
func usableTriples(pageBytes int) int {
	t := pageBytes * 8 / wom.CellsPerTriple
	return t - t%4
}

// Validate checks cfg against a chip model's geometry.
func (c Config) Validate(m nand.Model) error {
	usable := usableTriples(m.PageBytes)
	if c.HiddenTriplesPerPage < 16 {
		return fmt.Errorf("womftl: need at least 16 hidden triples, got %d", c.HiddenTriplesPerPage)
	}
	if c.HiddenTriplesPerPage > usable {
		return fmt.Errorf("womftl: %d hidden triples exceed the %d usable triples of a %d-byte page",
			c.HiddenTriplesPerPage, usable, m.PageBytes)
	}
	if c.PageInterval < 0 {
		return fmt.Errorf("womftl: PageInterval must be >= 0")
	}
	if c.MaxUpgradePulses < 8 {
		return fmt.Errorf("womftl: MaxUpgradePulses %d is too small to cross the read reference", c.MaxUpgradePulses)
	}
	if c.OvershootPulses < 0 {
		return fmt.Errorf("womftl: OvershootPulses must be >= 0")
	}
	return nil
}

// Scheme is one mounted womftl instance. Like the device underneath it is
// not safe for concurrent use: the hot paths reuse owned scratch buffers.
type Scheme struct {
	dev    nand.Device
	cfg    Config
	keys   seal.Keys
	sealer *seal.Sealer
	pub    *core.PublicLayout
	bch    *ecc.BCH

	usable       int // WOM triples per page
	logicalBytes int // logical image bytes (usable triples * 2 bits)
	codewordBits int
	payloadBytes int

	physBuf []byte  // physical page image scratch
	logBuf  []byte  // logical image scratch
	padBuf  []byte  // padded/encrypted payload scratch
	cwBuf   []uint8 // codeword bit scratch (build path)
	bitsBuf []uint8 // codeword bit scratch (reveal path)
	msgBits []uint8 // payload bit scratch
	selBuf  []int   // selected triple indices
	pending []int   // upgrade cells still below the reference
	cellBuf []int   // all upgrade cells of the current hide
}

// New builds a womftl scheme over any nand.Device with the given master
// secret and configuration.
func New(dev nand.Device, master []byte, cfg Config) (*Scheme, error) {
	m := dev.Model()
	if err := cfg.Validate(m); err != nil {
		return nil, err
	}
	usable := usableTriples(m.PageBytes)
	logicalBytes := usable * wom.BitsPerTriple / 8
	pub, err := core.NewPublicLayout(logicalBytes, cfg.PublicRST)
	if err != nil {
		return nil, err
	}
	bch := ecc.NewBCH(core.BCHDegree(cfg.HiddenTriplesPerPage), cfg.BCHT)
	parity := bch.ParityBits()
	if parity >= cfg.HiddenTriplesPerPage {
		return nil, fmt.Errorf("womftl: hidden ECC parity (%d bits) consumes the whole %d-triple budget", parity, cfg.HiddenTriplesPerPage)
	}
	payloadBytes := (cfg.HiddenTriplesPerPage - parity) / 8
	if payloadBytes < 1 {
		return nil, fmt.Errorf("womftl: configuration leaves no hidden payload capacity")
	}
	cwBits := payloadBytes*8 + parity
	keys := seal.DeriveKeys(master)
	return &Scheme{
		dev:          dev,
		cfg:          cfg,
		keys:         keys,
		sealer:       seal.NewSealer(keys.Encrypt),
		pub:          pub,
		bch:          bch,
		usable:       usable,
		logicalBytes: logicalBytes,
		codewordBits: cwBits,
		payloadBytes: payloadBytes,
		physBuf:      make([]byte, m.PageBytes),
		logBuf:       make([]byte, logicalBytes),
		padBuf:       make([]byte, payloadBytes),
		cwBuf:        make([]uint8, cwBits),
		bitsBuf:      make([]uint8, cwBits),
		msgBits:      make([]uint8, payloadBytes*8),
		selBuf:       make([]int, cwBits),
		pending:      make([]int, 0, 3*cwBits),
		cellBuf:      make([]int, 0, 3*cwBits),
	}, nil
}

// Config returns the scheme's configuration.
func (s *Scheme) Config() Config { return s.cfg }

// Name returns the scheme's registry name.
func (s *Scheme) Name() string { return s.cfg.Name }

// PublicDataBytes returns the public payload per page: the WOM-coded
// logical image minus public ECC parity.
func (s *Scheme) PublicDataBytes() int { return s.pub.DataBytes() }

// HiddenPayloadBytes returns the hidden payload per hidden-capable page.
func (s *Scheme) HiddenPayloadBytes() int { return s.payloadBytes }

// HiddenPageStride returns the stride between hidden-capable pages.
func (s *Scheme) HiddenPageStride() int { return s.cfg.PageInterval + 1 }

// HiddenBlockCapacity returns one block's hidden payload bytes.
func (s *Scheme) HiddenBlockCapacity() int {
	pages := (s.dev.Geometry().PagesPerBlock + s.cfg.PageInterval) / s.HiddenPageStride()
	return pages * s.payloadBytes
}

// CorrectionBudget returns the hidden BCH correction budget per page.
func (s *Scheme) CorrectionBudget() int { return s.cfg.BCHT }

// pageIndex flattens a page address for seal nonces and selection keys.
func (s *Scheme) pageIndex(a nand.PageAddr) uint64 {
	return nand.PageIndex(s.dev.Geometry(), a)
}

// faultAware reports whether the device carries an active fault plan;
// reveal read-retries are gated on it so pristine devices keep
// bit-identical behaviour and ledger costs.
func (s *Scheme) faultAware() bool {
	p := nand.PlanOf(s.dev)
	return p != nil && !p.Config().Zero()
}

// logicalValue extracts triple t's two public bits from a logical image.
func logicalValue(img []byte, t int) uint8 {
	return (img[t/4] >> (6 - 2*uint(t%4))) & 0b11
}

// setLogicalValue writes triple t's two public bits into a logical image
// (the target bits must be zero, as after clearing the byte).
func setLogicalValue(img []byte, t int, v uint8) {
	img[t/4] |= (v & 0b11) << (6 - 2*uint(t%4))
}

// physBit reads cell i of a physical image (1 = erased, 0 = programmed).
func physBit(img []byte, i int) uint8 {
	return (img[i/8] >> uint(7-i%8)) & 1
}

// clearPhysBit marks cell i programmed in a physical image.
func clearPhysBit(img []byte, i int) {
	img[i/8] &^= 1 << uint(7-i%8)
}

// tripleMask assembles triple t's programmed-cell mask from a physical
// image (wom bit i = cell 3t+i).
func tripleMask(img []byte, t int) uint8 {
	base := t * wom.CellsPerTriple
	var mask uint8
	for i := 0; i < wom.CellsPerTriple; i++ {
		if physBit(img, base+i) == 0 {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// encodeImage expands a logical image into the all-gen-1 physical page
// image in s.physBuf (trailing cells beyond the usable triples stay
// erased).
func (s *Scheme) encodeImage(logical []byte) {
	for i := range s.physBuf {
		s.physBuf[i] = 0xFF
	}
	for t := 0; t < s.usable; t++ {
		mask := wom.ProgrammedSet(logicalValue(logical, t), wom.Gen1)
		base := t * wom.CellsPerTriple
		for i := 0; i < wom.CellsPerTriple; i++ {
			if mask&(1<<uint(i)) != 0 {
				clearPhysBit(s.physBuf, base+i)
			}
		}
	}
}

// decodeImage reduces the physical image in s.physBuf to the logical
// image in s.logBuf, dropping generation information.
func (s *Scheme) decodeImage() {
	for i := range s.logBuf {
		s.logBuf[i] = 0
	}
	for t := 0; t < s.usable; t++ {
		v, _ := wom.Decode(tripleMask(s.physBuf, t))
		setLogicalValue(s.logBuf, t, v)
	}
}

// WritePage stores public data (exactly PublicDataBytes long) to an
// erased page: RS-encode the logical image, expand to generation-1 WOM
// patterns, one ProgramPage.
func (s *Scheme) WritePage(a nand.PageAddr, public []byte) error {
	if err := s.pub.EncodeInto(s.logBuf, public); err != nil {
		return err
	}
	s.encodeImage(s.logBuf)
	return s.dev.ProgramPage(a, s.physBuf)
}

// ReadPublic reads a page's public data: sense, WOM-decode each triple
// (any generation), correct through the public RS layout. No key material
// is involved, and hidden generation choices are invisible here.
func (s *Scheme) ReadPublic(a nand.PageAddr) (data []byte, corrected int, err error) {
	if err := nand.ReadPageInto(s.dev, a, s.physBuf); err != nil {
		return nil, 0, err
	}
	s.decodeImage()
	return s.pub.Decode(s.logBuf)
}

// buildCodeword encrypts and ECC-expands a hidden payload for a page.
func (s *Scheme) buildCodeword(a nand.PageAddr, hidden []byte, epoch uint64) ([]uint8, error) {
	if len(hidden) > s.payloadBytes {
		return nil, fmt.Errorf("womftl: hidden payload %d bytes exceeds page capacity %d", len(hidden), s.payloadBytes)
	}
	n := copy(s.padBuf, hidden)
	for i := n; i < len(s.padBuf); i++ {
		s.padBuf[i] = 0
	}
	s.sealer.EncryptPageInto(s.padBuf, s.pageIndex(a), epoch, s.padBuf)
	ecc.BytesToBitsInto(s.msgBits, s.padBuf)
	return s.bch.EncodeTo(s.cwBuf, s.msgBits), nil
}

// selectTriples fills s.selBuf with the key-derived ascending triple
// selection for a page. Unlike VT-HI the selection is independent of page
// content: every triple carries a generation bit regardless of its value.
func (s *Scheme) selectTriples(a nand.PageAddr) []int {
	return prng.PageStream(s.keys.Locate, s.pageIndex(a), "womftl/select").
		SelectKSparseInto(s.selBuf, s.usable, s.codewordBits)
}

// hideFaultBudget bounds the transient partial-program status FAILs one
// Hide may absorb on a fault-injected device.
const hideFaultBudget = 8

// Hide embeds a hidden payload (up to HiddenPayloadBytes) into an
// already-programmed page by upgrading the selected '0'-bit triples to
// generation 2: partial-program pulses drive the upgrade cells across the
// public read reference, plus overshoot margin. This is the vendor-free
// but slow and voltage-visible path; WriteAndHide is the exact one.
func (s *Scheme) Hide(a nand.PageAddr, hidden []byte, epoch uint64) (core.HideStats, error) {
	var st core.HideStats
	cw, err := s.buildCodeword(a, hidden, epoch)
	if err != nil {
		return st, err
	}
	sel := s.selectTriples(a)
	if err := nand.ReadPageInto(s.dev, a, s.physBuf); err != nil {
		return st, err
	}
	// Classify the selected triples and collect the upgrade cells. A
	// triple that must stay generation 1 (hidden '1') but already reads
	// generation 2 cannot be downgraded — the page carries conflicting
	// state (e.g. a previous embedding) and the caller must remap to a
	// fresh cover page.
	cells := s.cellBuf[:0]
	for j, t := range sel {
		v, g := wom.Decode(tripleMask(s.physBuf, t))
		if cw[j] == 1 {
			if g != wom.Gen1 {
				return st, fmt.Errorf("%w: triple %d of %v already upgraded", core.ErrHiddenUnrecoverable, t, a)
			}
			continue
		}
		if g == wom.Gen2 {
			continue // already encodes '0'
		}
		up := wom.UpgradeSet(v)
		base := t * wom.CellsPerTriple
		for i := 0; i < wom.CellsPerTriple; i++ {
			if up&(1<<uint(i)) != 0 {
				cells = append(cells, base+i)
			}
		}
	}
	s.cellBuf = cells
	st.Cells = len(cells)
	if len(cells) == 0 {
		return st, nil
	}
	// Pulse rounds: partial-program every cell still reading erased,
	// re-sense, repeat. Cell gain is log-normally spread, so stragglers
	// are expected; whatever the pulse budget leaves short is handed to
	// the hidden ECC, within half its correction budget.
	pending := append(s.pending[:0], cells...)
	budget := hideFaultBudget
	for round := 0; round < s.cfg.MaxUpgradePulses && len(pending) > 0; round++ {
		if err := s.pulse(a, pending, &budget, &st); err != nil {
			return st, err
		}
		st.Steps++
		if err := nand.ReadPageInto(s.dev, a, s.physBuf); err != nil {
			return st, err
		}
		next := pending[:0]
		for _, c := range pending {
			if physBit(s.physBuf, c) == 1 {
				next = append(next, c)
			}
		}
		pending = next
	}
	s.pending = pending[:0]
	if len(pending) > 0 {
		// Stragglers flip their triples' generation bits; stay well inside
		// the BCH budget or hand the page back for a remap.
		if len(pending) > s.cfg.BCHT/2 {
			return st, fmt.Errorf("%w: %d upgrade cells below the read reference after %d pulse rounds at %v",
				core.ErrHiddenUnrecoverable, len(pending), s.cfg.MaxUpgradePulses, a)
		}
	}
	// Overshoot margin for every upgrade cell that crossed.
	crossed := cells[:0]
	for _, c := range cells {
		if physBit(s.physBuf, c) == 0 {
			crossed = append(crossed, c)
		}
	}
	for k := 0; k < s.cfg.OvershootPulses && len(crossed) > 0; k++ {
		if err := s.pulse(a, crossed, &budget, &st); err != nil {
			return st, err
		}
		st.Steps++
	}
	s.cellBuf = cells[:0]
	return st, nil
}

// pulse issues one partial-program round, absorbing transient status
// FAILs on fault-injected devices up to the hide budget (a FAIL that grew
// the block bad is final).
func (s *Scheme) pulse(a nand.PageAddr, cells []int, budget *int, st *core.HideStats) error {
	for {
		err := s.dev.PartialProgram(a, cells)
		if err == nil {
			return nil
		}
		if s.dev.IsBadBlock(a.Block) || *budget <= 0 {
			return err
		}
		*budget--
		st.FaultsAbsorbed++
	}
}

// WriteAndHide programs public data with the hidden generation choices
// folded into the initial page program: selected '0'-bit triples are
// written directly as generation 2. One ProgramPage, voltage-exact cell
// placement — on-flash distributions are identical to a page written
// without hidden data.
func (s *Scheme) WriteAndHide(a nand.PageAddr, public, hidden []byte, epoch uint64) (core.HideStats, error) {
	var st core.HideStats
	cw, err := s.buildCodeword(a, hidden, epoch)
	if err != nil {
		return st, err
	}
	sel := s.selectTriples(a)
	if err := s.pub.EncodeInto(s.logBuf, public); err != nil {
		return st, err
	}
	s.encodeImage(s.logBuf)
	for j, t := range sel {
		if cw[j] != 0 {
			continue
		}
		v := logicalValue(s.logBuf, t)
		mask := wom.ProgrammedSet(v, wom.Gen2)
		base := t * wom.CellsPerTriple
		for i := 0; i < wom.CellsPerTriple; i++ {
			if mask&(1<<uint(i)) != 0 && physBit(s.physBuf, base+i) == 1 {
				clearPhysBit(s.physBuf, base+i)
				st.Cells++
			}
		}
	}
	st.Steps = 1
	return st, s.dev.ProgramPage(a, s.physBuf)
}

// revealRetries is how many extra full-page re-reads a fault-injected
// reveal may take when the nominal sense fails to decode.
const revealRetries = 2

// Reveal extracts n hidden bytes from a page: one plain read, generation
// bits off the selected triples, BCH correction, decryption. No vendor
// commands and no cell is altered.
func (s *Scheme) Reveal(a nand.PageAddr, n int, epoch uint64) ([]byte, core.RevealStats, error) {
	var st core.RevealStats
	if n > s.payloadBytes {
		return nil, st, fmt.Errorf("womftl: requested %d bytes, page capacity is %d", n, s.payloadBytes)
	}
	sel := s.selectTriples(a)
	attempts := 1
	if s.faultAware() {
		attempts += revealRetries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			st.Rereads++
		}
		if err := nand.ReadPageInto(s.dev, a, s.physBuf); err != nil {
			return nil, st, err
		}
		bits := s.bitsBuf[:s.codewordBits]
		for j, t := range sel {
			_, g := wom.Decode(tripleMask(s.physBuf, t))
			if g == wom.Gen1 {
				bits[j] = 1
			} else {
				bits[j] = 0
			}
		}
		corrected, err := s.bch.Decode(bits)
		if err != nil {
			lastErr = err
			continue
		}
		st.CorrectedHidden = corrected
		ecc.BitsToBytesInto(s.padBuf, bits[:s.payloadBytes*8])
		s.sealer.EncryptPageInto(s.padBuf, s.pageIndex(a), epoch, s.padBuf)
		out := make([]byte, n)
		copy(out, s.padBuf[:n])
		return out, st, nil
	}
	return nil, st, fmt.Errorf("%w: %v", core.ErrHiddenUnrecoverable, lastErr)
}

var _ core.Scheme = (*Scheme)(nil)

// PlanCapacity computes the capacity report for cfg on model m, in the
// shared cross-scheme shape.
func PlanCapacity(m nand.Model, cfg Config) (core.CapacityReport, error) {
	if err := cfg.Validate(m); err != nil {
		return core.CapacityReport{}, err
	}
	bch := ecc.NewBCH(core.BCHDegree(cfg.HiddenTriplesPerPage), cfg.BCHT)
	parity := bch.ParityBits()
	payloadBits := (cfg.HiddenTriplesPerPage - parity) / 8 * 8

	stride := cfg.PageInterval + 1
	hiddenPages := (m.PagesPerBlock + cfg.PageInterval) / stride
	blockBits := hiddenPages * payloadBits

	deviceBits := int64(blockBits) * int64(m.Blocks)
	rawBits := m.TotalBytes() * 8

	return core.CapacityReport{
		Config:               cfg.Name,
		CellsPerPage:         cfg.HiddenTriplesPerPage * wom.CellsPerTriple,
		ECCParityBits:        parity,
		PayloadBitsPerPage:   payloadBits,
		ECCOverheadFraction:  float64(parity) / float64(cfg.HiddenTriplesPerPage),
		PagesPerBlock:        hiddenPages,
		PayloadBitsPerBlock:  blockBits,
		DevicePayloadBytes:   deviceBits / 8,
		FractionOfDeviceBits: float64(deviceBits) / float64(rawBits),
	}, nil
}

func init() {
	core.RegisterScheme(core.SchemeInfo{
		Name:        "womftl",
		Description: "PEARL-style WOM-code generation hiding at the FTL, no vendor commands",
		Caps:        core.DeviceCaps{},
		New: func(dev nand.Device, master []byte) (core.Scheme, error) {
			return New(dev, master, DefaultConfig())
		},
	})
}
