package womftl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"

	"stashflash/internal/core"
	"stashflash/internal/nand"
	"stashflash/internal/onfi"
)

// deviceOnly strips a chip down to the baseline nand.Device surface: a
// compile-time and runtime proof that womftl needs no vendor commands.
type deviceOnly struct{ c *nand.Chip }

func (d deviceOnly) Geometry() nand.Geometry                       { return d.c.Geometry() }
func (d deviceOnly) Model() nand.Model                             { return d.c.Model() }
func (d deviceOnly) PEC(block int) int                             { return d.c.PEC(block) }
func (d deviceOnly) IsBadBlock(block int) bool                     { return d.c.IsBadBlock(block) }
func (d deviceOnly) EraseBlock(block int) error                    { return d.c.EraseBlock(block) }
func (d deviceOnly) CycleBlock(block, n int) error                 { return d.c.CycleBlock(block, n) }
func (d deviceOnly) ProgramPage(a nand.PageAddr, p []byte) error   { return d.c.ProgramPage(a, p) }
func (d deviceOnly) ReadPage(a nand.PageAddr) ([]byte, error)      { return d.c.ReadPage(a) }
func (d deviceOnly) PartialProgram(a nand.PageAddr, c []int) error { return d.c.PartialProgram(a, c) }

var _ nand.Device = deviceOnly{}

// backends enumerates the device stacks every round-trip test runs over:
// the direct chip, the ONFI bus adapter, and the stripped Device-only
// wrapper. All three must agree bit-exactly.
func backends(seed uint64) map[string]nand.Device {
	return map[string]nand.Device{
		"direct":      nand.NewChip(nand.TestModel(), seed),
		"onfi":        onfi.NewDevice(nand.NewChip(nand.TestModel(), seed)),
		"device-only": deviceOnly{nand.NewChip(nand.TestModel(), seed)},
	}
}

func testRandBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

// TestWriteAndHideRoundTrip checks the single-program path on every
// backend: public data reads back exactly, the hidden payload reveals
// bit-exact, and all backends produce identical bytes.
func TestWriteAndHideRoundTrip(t *testing.T) {
	var refHidden, refPublic []byte
	for _, name := range []string{"direct", "onfi", "device-only"} {
		dev := backends(42)[name]
		t.Run(name, func(t *testing.T) {
			s, err := New(dev, []byte("master secret"), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(7, 7))
			public := testRandBytes(rng, s.PublicDataBytes())
			hidden := testRandBytes(rng, s.HiddenPayloadBytes())
			a := nand.PageAddr{Block: 3, Page: 2}

			st, err := s.WriteAndHide(a, public, hidden, 1)
			if err != nil {
				t.Fatal(err)
			}
			if st.Steps != 1 {
				t.Errorf("WriteAndHide took %d steps, want 1 (single program)", st.Steps)
			}
			gotPub, _, err := s.ReadPublic(a)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotPub, public) {
				t.Fatal("public data corrupted by hidden embedding")
			}
			gotHid, _, err := s.Reveal(a, len(hidden), 1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotHid, hidden) {
				t.Fatal("hidden payload did not round-trip")
			}
			if refHidden == nil {
				refHidden, refPublic = gotHid, gotPub
			} else if !bytes.Equal(gotHid, refHidden) || !bytes.Equal(gotPub, refPublic) {
				t.Fatal("backend diverged from direct-chip reference bytes")
			}
		})
	}
}

// TestPostHocHideRoundTrip checks the two-phase path on every backend:
// write public data first, upgrade triples afterwards with partial-program
// pulses, then verify both channels.
func TestPostHocHideRoundTrip(t *testing.T) {
	for name, dev := range backends(99) {
		t.Run(name, func(t *testing.T) {
			s, err := New(dev, []byte("master secret"), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(11, 13))
			public := testRandBytes(rng, s.PublicDataBytes())
			hidden := testRandBytes(rng, s.HiddenPayloadBytes())
			a := nand.PageAddr{Block: 1, Page: 0}

			if err := s.WritePage(a, public); err != nil {
				t.Fatal(err)
			}
			st, err := s.Hide(a, hidden, 5)
			if err != nil {
				t.Fatal(err)
			}
			if st.Steps == 0 || st.Cells == 0 {
				t.Errorf("post-hoc hide reported no work: %+v", st)
			}
			gotPub, _, err := s.ReadPublic(a)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotPub, public) {
				t.Fatal("public data corrupted by post-hoc hide")
			}
			gotHid, _, err := s.Reveal(a, len(hidden), 5)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotHid, hidden) {
				t.Fatal("hidden payload did not round-trip after post-hoc hide")
			}
		})
	}
}

// TestRoundTripUnderFaultPlan drives both hide paths on fault-injected
// chips: every outcome must be the exact payload or a typed error.
func TestRoundTripUnderFaultPlan(t *testing.T) {
	typed := func(err error) bool {
		return errors.Is(err, core.ErrHiddenUnrecoverable) ||
			errors.Is(err, nand.ErrProgramFailed) ||
			errors.Is(err, nand.ErrBadBlock) ||
			errors.Is(err, nand.ErrPageProgrammed)
	}
	for seed := uint64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chip := nand.NewChip(nand.TestModel(), seed)
			chip.SetFaultPlan(nand.NewFaultPlan(nand.FaultConfig{
				Seed:            seed,
				ProgramFailProb: 0.02,
				PPFailProb:      0.02,
				BadBlockFrac:    0.05,
				ReadDisturbProb: 0.2,
			}))
			s, err := New(chip, []byte("master secret"), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(seed, 3))
			public := testRandBytes(rng, s.PublicDataBytes())
			hidden := testRandBytes(rng, s.HiddenPayloadBytes())
			a := nand.PageAddr{Block: int(seed) % chip.Geometry().Blocks, Page: 1}

			if err := s.WritePage(a, public); err != nil {
				if !typed(err) {
					t.Fatalf("cover write error not typed: %v", err)
				}
				return
			}
			if _, err := s.Hide(a, hidden, seed); err != nil {
				if !typed(err) {
					t.Fatalf("hide error not typed: %v", err)
				}
				return
			}
			got, _, err := s.Reveal(a, len(hidden), seed)
			if err != nil {
				if !typed(err) {
					t.Fatalf("reveal error not typed: %v", err)
				}
				return
			}
			if !bytes.Equal(got, hidden) {
				t.Fatal("SILENT CORRUPTION under fault plan")
			}
		})
	}
}

// TestPublicReadBlindToHidden writes the same public data with and without
// a hidden payload on twin chips: public reads must be byte-identical, the
// generation channel invisible to anyone without the key.
func TestPublicReadBlindToHidden(t *testing.T) {
	plain := nand.NewChip(nand.TestModel(), 7)
	laden := nand.NewChip(nand.TestModel(), 7)
	sPlain, err := New(plain, []byte("master secret"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sLaden, err := New(laden, []byte("master secret"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	public := testRandBytes(rng, sPlain.PublicDataBytes())
	hidden := testRandBytes(rng, sLaden.HiddenPayloadBytes())
	a := nand.PageAddr{Block: 0, Page: 0}

	if err := sPlain.WritePage(a, public); err != nil {
		t.Fatal(err)
	}
	if _, err := sLaden.WriteAndHide(a, public, hidden, 0); err != nil {
		t.Fatal(err)
	}
	p1, _, err := sPlain.ReadPublic(a)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := sLaden.ReadPublic(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, p2) {
		t.Fatal("hidden payload changed the public read")
	}
}

// TestWrongKeyOrEpochFails checks a reveal under the wrong key or epoch
// never silently returns the payload.
func TestWrongKeyOrEpochFails(t *testing.T) {
	chip := nand.NewChip(nand.TestModel(), 21)
	s, err := New(chip, []byte("right key"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	public := testRandBytes(rng, s.PublicDataBytes())
	hidden := testRandBytes(rng, s.HiddenPayloadBytes())
	a := nand.PageAddr{Block: 2, Page: 3}
	if _, err := s.WriteAndHide(a, public, hidden, 9); err != nil {
		t.Fatal(err)
	}

	if got, _, err := s.Reveal(a, len(hidden), 10); err == nil && bytes.Equal(got, hidden) {
		t.Fatal("wrong epoch revealed the payload")
	}
	other, err := New(chip, []byte("wrong key"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := other.Reveal(a, len(hidden), 9); err == nil && bytes.Equal(got, hidden) {
		t.Fatal("wrong key revealed the payload")
	}
}

// TestPlanCapacity sanity-checks the shared capacity report shape.
func TestPlanCapacity(t *testing.T) {
	rep, err := PlanCapacity(nand.TestModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PayloadBitsPerPage <= 0 || rep.DevicePayloadBytes <= 0 {
		t.Fatalf("degenerate capacity report: %+v", rep)
	}
	if rep.ECCOverheadFraction <= 0 || rep.ECCOverheadFraction >= 1 {
		t.Fatalf("ECC overhead fraction out of range: %v", rep.ECCOverheadFraction)
	}
	s, err := New(nand.NewChip(nand.TestModel(), 1), []byte("k"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.HiddenPayloadBytes() * 8; got != rep.PayloadBitsPerPage {
		t.Fatalf("scheme payload %d bits != report %d", got, rep.PayloadBitsPerPage)
	}
}

// TestRegistered checks the scheme registry entry and its declared caps.
func TestRegistered(t *testing.T) {
	info, err := core.SchemeByName("womftl")
	if err != nil {
		t.Fatal(err)
	}
	if info.Caps.Vendor {
		t.Fatal("womftl must not require vendor device capabilities")
	}
	s, err := info.New(deviceOnly{nand.NewChip(nand.TestModel(), 5)}, []byte("k"))
	if err != nil {
		t.Fatalf("factory rejected a Device-only backend: %v", err)
	}
	if s.Name() != "womftl" {
		t.Fatalf("scheme name = %q", s.Name())
	}
}
