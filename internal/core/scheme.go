// Package core defines the hiding-scheme seam: the Scheme interface every
// deniability backend implements, the shared stats and error vocabulary,
// the scheme registry, and the building blocks (public ECC layout,
// capacity reporting, page-store adapter) schemes share. Concrete schemes
// live in subpackages — core/vthi is the paper's voltage-threshold hiding
// (the default), core/womftl the PEARL-style WOM-coded FTL backend — and
// register themselves here at init time, so consumers select backends by
// name without importing scheme internals.
package core

import (
	"errors"
	"fmt"
	"sort"

	"stashflash/internal/nand"
)

// ErrHiddenUnrecoverable reports that a hidden payload exceeded the hidden
// ECC correction capability (or could not be embedded verifiably) and
// could not be recovered exactly. Callers treat it as "try a fresh cover
// page", never as data.
var ErrHiddenUnrecoverable = errors.New("core: hidden payload unrecoverable")

// ErrUnknownScheme reports a scheme name absent from the registry.
var ErrUnknownScheme = errors.New("core: unknown hiding scheme")

// HideStats reports what an embedding cost.
type HideStats struct {
	// Steps is the number of partial-programming (or program) rounds the
	// embedding took.
	Steps int
	// Cells is the number of physical cells the embedding touched — the
	// scheme's write amplification numerator.
	Cells int
	// Retries counts whole-embedding restarts under fault plans.
	Retries int
	// FaultsAbsorbed counts transient device faults retried through.
	FaultsAbsorbed int
}

// RevealStats reports what a decode observed.
type RevealStats struct {
	// CorrectedHidden is the number of hidden-codeword bit errors the
	// hidden ECC fixed.
	CorrectedHidden int
	// CorrectedPublic is the number of public ECC symbol corrections
	// performed while recovering the as-programmed image.
	CorrectedPublic int
	// Rereads counts extra read passes (e.g. reference-shift retries).
	Rereads int
}

// Scheme is one deniability backend over a flash device: it owns a page's
// public payload encoding and can hide/reveal a sealed hidden payload in
// the same physical page. Implementations are bound to one device and one
// master key at construction and are not safe for concurrent use (the
// device underneath is single-goroutine by contract).
//
// The error contract is the repo-wide one: Reveal returns the exact hidden
// payload or a typed error (ErrHiddenUnrecoverable, a nand.* fault), never
// silently corrupted data.
type Scheme interface {
	// Name returns the registry name of this scheme instance.
	Name() string
	// PublicDataBytes is the public payload per page (after public ECC).
	PublicDataBytes() int
	// HiddenPayloadBytes is the hidden payload per hidden-capable page.
	HiddenPayloadBytes() int
	// HiddenPageStride is the page-index stride between hidden-capable
	// pages (1 = every page may carry hidden data).
	HiddenPageStride() int
	// HiddenBlockCapacity is the hidden payload bytes one block can hold.
	HiddenBlockCapacity() int
	// CorrectionBudget is the hidden ECC's correctable-bit budget per
	// page; mount-time recovery replays payloads that needed more than
	// half of it.
	CorrectionBudget() int

	// WritePage encodes and programs a page of public data.
	WritePage(a nand.PageAddr, public []byte) error
	// ReadPublic decodes a page's public data, reporting ECC corrections.
	ReadPublic(a nand.PageAddr) (data []byte, corrected int, err error)
	// Hide embeds a hidden payload into an already-programmed page.
	Hide(a nand.PageAddr, hidden []byte, epoch uint64) (HideStats, error)
	// Reveal extracts n hidden payload bytes from a page.
	Reveal(a nand.PageAddr, n int, epoch uint64) ([]byte, RevealStats, error)
	// WriteAndHide programs public data and embeds a hidden payload in
	// one flow (schemes may fold both into a single program operation).
	WriteAndHide(a nand.PageAddr, public, hidden []byte, epoch uint64) (HideStats, error)
}

// DeviceCaps names the device capabilities a scheme needs beyond the
// baseline nand.Device command set.
type DeviceCaps struct {
	// Vendor is true when the scheme needs nand.VendorDevice commands
	// (reference-shifted reads, fine programming). A scheme without it
	// runs on any standards-compliant device.
	Vendor bool
}

// SchemeFactory builds a scheme instance over a device with a master key.
// Factories for vendor-dependent schemes type-assert the device and fail
// with a descriptive error when the capability is missing.
type SchemeFactory func(dev nand.Device, master []byte) (Scheme, error)

// SchemeInfo describes one registered scheme.
type SchemeInfo struct {
	Name        string
	Description string
	Caps        DeviceCaps
	New         SchemeFactory
}

var schemeRegistry = map[string]SchemeInfo{}

// RegisterScheme adds a scheme to the registry; scheme subpackages call it
// from init. Registering a duplicate name panics — it is a wiring bug.
func RegisterScheme(info SchemeInfo) {
	if info.Name == "" || info.New == nil {
		panic("core: RegisterScheme needs a name and a factory")
	}
	if _, dup := schemeRegistry[info.Name]; dup {
		panic(fmt.Sprintf("core: scheme %q registered twice", info.Name))
	}
	schemeRegistry[info.Name] = info
}

// SchemeByName looks a registered scheme up, wrapping ErrUnknownScheme
// (with the known names) when absent.
func SchemeByName(name string) (SchemeInfo, error) {
	info, ok := schemeRegistry[name]
	if !ok {
		return SchemeInfo{}, fmt.Errorf("%w: %q (known: %v)", ErrUnknownScheme, name, SchemeNames())
	}
	return info, nil
}

// SchemeNames lists the registered scheme names, sorted.
func SchemeNames() []string {
	names := make([]string, 0, len(schemeRegistry))
	for name := range schemeRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BCHDegree returns the minimal GF(2^m) extension degree covering an
// n-bit hidden codeword — shared by schemes sizing their hidden ECC.
func BCHDegree(n int) int {
	m := 1
	for (1 << m) <= n {
		m++
	}
	if m < 3 {
		m = 3
	}
	return m
}
