package core

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPublicLayoutSizes(t *testing.T) {
	// 18048-byte page at t=4: chunks of 255 with 8 parity symbols each.
	pl, err := NewPublicLayout(18048, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PageBytes() != 18048 {
		t.Errorf("page bytes %d", pl.PageBytes())
	}
	// 70 full chunks of 247 data + a final chunk of 198-8=190 data.
	want := 70*247 + (18048 - 70*255 - 8)
	if pl.DataBytes() != want {
		t.Errorf("data bytes %d, want %d", pl.DataBytes(), want)
	}
}

func TestPublicLayoutPassThrough(t *testing.T) {
	pl, err := NewPublicLayout(512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.DataBytes() != 512 {
		t.Fatal("t=0 layout must be identity-sized")
	}
	data := make([]byte, 512)
	data[3] = 7
	img, err := pl.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := pl.Decode(img)
	if err != nil || n != 0 {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pass-through mismatch")
	}
}

func TestPublicLayoutRoundTripWithErrors(t *testing.T) {
	pl, err := NewPublicLayout(2040, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	data := make([]byte, pl.DataBytes())
	for i := range data {
		data[i] = byte(rng.IntN(256))
	}
	img, err := pl.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 2040 {
		t.Fatalf("image %d bytes", len(img))
	}
	// Corrupt up to t symbols in each of two chunks.
	img[3] ^= 0x55
	img[257] ^= 0xAA
	img[300] ^= 0x11
	got, corrected, err := pl.Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 3 {
		t.Errorf("corrected %d, want 3", corrected)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after correction")
	}
	// The corrected image must equal the original encode (selection
	// reproducibility depends on it).
	img2, _ := pl.Encode(data)
	if !bytes.Equal(img, img2) {
		t.Fatal("Decode did not restore the exact as-programmed image")
	}
}

func TestPublicLayoutOverloadNotSilentlyClean(t *testing.T) {
	// Three symbol errors in a t=1 chunk exceed the distance-3 code's
	// capability: the decoder must either report failure or mis-correct
	// to a DIFFERENT codeword — it may never return the original data
	// while claiming zero corrections.
	pl, err := NewPublicLayout(1020, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, pl.DataBytes())
	img, _ := pl.Encode(data)
	img[0] ^= 1
	img[1] ^= 2
	img[2] ^= 3
	got, corrected, err := pl.Decode(img)
	if err == nil && corrected == 0 && bytes.Equal(got, data) {
		t.Fatal("overloaded chunk decoded as clean")
	}
}

func TestPublicLayoutValidation(t *testing.T) {
	if _, err := NewPublicLayout(0, 2); err == nil {
		t.Error("zero page accepted")
	}
	if _, err := NewPublicLayout(4, 2); err == nil {
		t.Error("page smaller than parity accepted")
	}
	// 2048 = 8*255 + 8: the 8-byte runt equals the parity size at t=4.
	if _, err := NewPublicLayout(2048, 4); err == nil {
		t.Error("runt-chunk page accepted")
	}
	pl, _ := NewPublicLayout(510, 2)
	if _, err := pl.Encode(make([]byte, 1)); err == nil {
		t.Error("short data accepted")
	}
	if _, _, err := pl.Decode(make([]byte, 7)); err == nil {
		t.Error("short image accepted")
	}
}

func TestPublicLayoutProperty(t *testing.T) {
	pl, err := NewPublicLayout(1275, 2) // exactly five 255-byte chunks
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, errSel uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		data := make([]byte, pl.DataBytes())
		for i := range data {
			data[i] = byte(rng.IntN(256))
		}
		img, err := pl.Encode(data)
		if err != nil {
			return false
		}
		// Up to 2 random corruptions per chunk.
		for c := 0; c < 5; c++ {
			for e := 0; e < int(errSel)%3; e++ {
				img[c*255+rng.IntN(255)] ^= byte(1 + rng.IntN(255))
			}
		}
		got, _, err := pl.Decode(img)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
