package core

import "stashflash/internal/nand"

// PublicStore adapts a Hider's public path to the page-store shape the
// FTL consumes (DataBytes/WritePage/ReadPage): sector payloads flow
// through the public ECC layout, and read-side symbol corrections are
// absorbed silently. It satisfies ftl.PageStore structurally, without an
// import in either direction.
type PublicStore struct{ H *Hider }

// DataBytes returns the public payload per page under the hider's layout.
func (s PublicStore) DataBytes() int { return s.H.PublicDataBytes() }

// WritePage stores a sector through the public ECC layout.
func (s PublicStore) WritePage(a nand.PageAddr, data []byte) error {
	return s.H.WritePage(a, data)
}

// ReadPage retrieves a sector, correcting raw bit errors via public ECC.
func (s PublicStore) ReadPage(a nand.PageAddr) ([]byte, error) {
	data, _, err := s.H.ReadPublic(a)
	return data, err
}
