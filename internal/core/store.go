package core

import "stashflash/internal/nand"

// PublicStore adapts a scheme's public path to the page-store shape the
// FTL consumes (DataBytes/WritePage/ReadPage): sector payloads flow
// through the scheme's public encoding, and read-side corrections are
// absorbed silently. It satisfies ftl.PageStore structurally, without an
// import in either direction.
type PublicStore struct{ S Scheme }

// DataBytes returns the public payload per page under the scheme's layout.
func (s PublicStore) DataBytes() int { return s.S.PublicDataBytes() }

// WritePage stores a sector through the scheme's public encoding.
func (s PublicStore) WritePage(a nand.PageAddr, data []byte) error {
	return s.S.WritePage(a, data)
}

// ReadPage retrieves a sector, correcting raw bit errors via public ECC.
func (s PublicStore) ReadPage(a nand.PageAddr) ([]byte, error) {
	data, _, err := s.S.ReadPublic(a)
	return data, err
}
