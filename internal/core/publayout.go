package core

import (
	"errors"
	"fmt"

	"stashflash/internal/ecc"
)

// PublicLayout maps user data onto a flash page with interleaved
// Reed–Solomon protection, chunked into RS(255) codewords like a real
// controller's per-sector ECC. It exists for a load-bearing reason: cell
// selection is defined over the exact as-programmed public image (the
// "non-programmed public bit offsets" of Algorithm 1), and raw NAND reads
// are not error-free — a single uncorrected public bit flip would shift
// the candidate list and garble the whole hidden payload. Decoding the
// public image through ECC makes selection reproducible.
type PublicLayout struct {
	pageBytes int
	t         int
	rs        *ecc.RS
	chunks    []chunkSpec // data sizes per chunk, in order
	dataBytes int
}

type chunkSpec struct{ data int }

// ErrPublicUncorrectable reports that a page's public data exceeded the RS
// correction capability; the hidden payload on such a page is unreachable
// through the normal path.
var ErrPublicUncorrectable = errors.New("core: public page data uncorrectable")

// NewPublicLayout builds the layout for a page of pageBytes with per-chunk
// symbol correction strength t. t = 0 yields a pass-through layout (no
// parity, raw image).
func NewPublicLayout(pageBytes, t int) (*PublicLayout, error) {
	if pageBytes < 1 {
		return nil, fmt.Errorf("core: invalid page size %d", pageBytes)
	}
	pl := &PublicLayout{pageBytes: pageBytes, t: t}
	if t == 0 {
		pl.dataBytes = pageBytes
		return pl, nil
	}
	pl.rs = ecc.NewRS(t)
	parity := pl.rs.ParitySymbols()
	if pageBytes <= parity {
		return nil, fmt.Errorf("core: page of %d bytes cannot host %d parity symbols", pageBytes, parity)
	}
	remaining := pageBytes
	for remaining > 0 {
		cw := remaining
		if cw > 255 {
			cw = 255
		}
		if cw <= parity {
			// Fold a runt tail into the previous chunk's budget by
			// shrinking that chunk's data; simplest is to reject —
			// page sizes in practice never leave a <=parity runt.
			return nil, fmt.Errorf("core: page size %d leaves a %d-byte runt chunk", pageBytes, cw)
		}
		pl.chunks = append(pl.chunks, chunkSpec{data: cw - parity})
		remaining -= cw
	}
	for _, ch := range pl.chunks {
		pl.dataBytes += ch.data
	}
	return pl, nil
}

// DataBytes returns the user-visible capacity of the page under this
// layout.
func (pl *PublicLayout) DataBytes() int { return pl.dataBytes }

// PageBytes returns the raw page size the layout targets.
func (pl *PublicLayout) PageBytes() int { return pl.pageBytes }

// Encode expands user data (exactly DataBytes long) into the page image.
func (pl *PublicLayout) Encode(data []byte) ([]byte, error) {
	if len(data) != pl.dataBytes {
		return nil, fmt.Errorf("core: public data is %d bytes, layout holds %d", len(data), pl.dataBytes)
	}
	if pl.t == 0 {
		return append([]byte(nil), data...), nil
	}
	image := make([]byte, 0, pl.pageBytes)
	off := 0
	for _, ch := range pl.chunks {
		image = append(image, pl.rs.Encode(data[off:off+ch.data])...)
		off += ch.data
	}
	return image, nil
}

// Decode corrects a raw page image in place and returns the user data
// view, the number of corrected symbols, and an error if any chunk was
// uncorrectable. The corrected image slice aliases the input, which after
// a successful decode equals the exact as-programmed image.
func (pl *PublicLayout) Decode(image []byte) (data []byte, corrected int, err error) {
	if len(image) != pl.pageBytes {
		return nil, 0, fmt.Errorf("core: image is %d bytes, want %d", len(image), pl.pageBytes)
	}
	if pl.t == 0 {
		return image, 0, nil
	}
	parity := pl.rs.ParitySymbols()
	data = make([]byte, 0, pl.dataBytes)
	off := 0
	for i, ch := range pl.chunks {
		cw := image[off : off+ch.data+parity]
		n, err := pl.rs.Decode(cw)
		if err != nil {
			return nil, corrected, fmt.Errorf("%w: chunk %d: %v", ErrPublicUncorrectable, i, err)
		}
		corrected += n
		data = append(data, cw[:ch.data]...)
		off += ch.data + parity
	}
	return data, corrected, nil
}
