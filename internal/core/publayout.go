package core

import (
	"errors"
	"fmt"

	"stashflash/internal/ecc"
)

// PublicLayout maps user data onto a flash page with interleaved
// Reed–Solomon protection, chunked into RS(255) codewords like a real
// controller's per-sector ECC. It exists for a load-bearing reason: cell
// selection is defined over the exact as-programmed public image (the
// "non-programmed public bit offsets" of Algorithm 1), and raw NAND reads
// are not error-free — a single uncorrected public bit flip would shift
// the candidate list and garble the whole hidden payload. Decoding the
// public image through ECC makes selection reproducible.
type PublicLayout struct {
	pageBytes int
	t         int
	rs        *ecc.RS
	chunks    []chunkSpec // data sizes per chunk, in order
	dataBytes int
}

type chunkSpec struct{ data int }

// ErrPublicUncorrectable reports that a page's public data exceeded the RS
// correction capability; the hidden payload on such a page is unreachable
// through the normal path.
var ErrPublicUncorrectable = errors.New("core: public page data uncorrectable")

// NewPublicLayout builds the layout for a page of pageBytes with per-chunk
// symbol correction strength t. t = 0 yields a pass-through layout (no
// parity, raw image).
func NewPublicLayout(pageBytes, t int) (*PublicLayout, error) {
	if pageBytes < 1 {
		return nil, fmt.Errorf("core: invalid page size %d", pageBytes)
	}
	pl := &PublicLayout{pageBytes: pageBytes, t: t}
	if t == 0 {
		pl.dataBytes = pageBytes
		return pl, nil
	}
	pl.rs = ecc.NewRS(t)
	parity := pl.rs.ParitySymbols()
	if pageBytes <= parity {
		return nil, fmt.Errorf("core: page of %d bytes cannot host %d parity symbols", pageBytes, parity)
	}
	remaining := pageBytes
	for remaining > 0 {
		cw := remaining
		if cw > 255 {
			cw = 255
		}
		if cw <= parity {
			// Fold a runt tail into the previous chunk's budget by
			// shrinking that chunk's data; simplest is to reject —
			// page sizes in practice never leave a <=parity runt.
			return nil, fmt.Errorf("core: page size %d leaves a %d-byte runt chunk", pageBytes, cw)
		}
		pl.chunks = append(pl.chunks, chunkSpec{data: cw - parity})
		remaining -= cw
	}
	for _, ch := range pl.chunks {
		pl.dataBytes += ch.data
	}
	return pl, nil
}

// DataBytes returns the user-visible capacity of the page under this
// layout.
func (pl *PublicLayout) DataBytes() int { return pl.dataBytes }

// PageBytes returns the raw page size the layout targets.
func (pl *PublicLayout) PageBytes() int { return pl.pageBytes }

// Encode expands user data (exactly DataBytes long) into the page image.
func (pl *PublicLayout) Encode(data []byte) ([]byte, error) {
	image := make([]byte, pl.pageBytes)
	if err := pl.EncodeInto(image, data); err != nil {
		return nil, err
	}
	return image, nil
}

// EncodeInto is Encode into a caller-owned image buffer of exactly
// PageBytes; it performs no allocations. dst must not alias data.
func (pl *PublicLayout) EncodeInto(dst, data []byte) error {
	if len(data) != pl.dataBytes {
		return fmt.Errorf("core: public data is %d bytes, layout holds %d", len(data), pl.dataBytes)
	}
	if len(dst) != pl.pageBytes {
		return fmt.Errorf("core: image buffer is %d bytes, want %d", len(dst), pl.pageBytes)
	}
	if pl.t == 0 {
		copy(dst, data)
		return nil
	}
	parity := pl.rs.ParitySymbols()
	off, ioff := 0, 0
	for _, ch := range pl.chunks {
		pl.rs.EncodeTo(dst[ioff:ioff+ch.data+parity], data[off:off+ch.data])
		off += ch.data
		ioff += ch.data + parity
	}
	return nil
}

// Decode corrects a raw page image in place and returns the user data
// view, the number of corrected symbols, and an error if any chunk was
// uncorrectable. The corrected image slice aliases the input, which after
// a successful decode equals the exact as-programmed image.
func (pl *PublicLayout) Decode(image []byte) (data []byte, corrected int, err error) {
	corrected, err = pl.Correct(image)
	if err != nil {
		return nil, corrected, err
	}
	if pl.t == 0 {
		return image, corrected, nil
	}
	parity := pl.rs.ParitySymbols()
	data = make([]byte, 0, pl.dataBytes)
	off := 0
	for _, ch := range pl.chunks {
		data = append(data, image[off:off+ch.data]...)
		off += ch.data + parity
	}
	return data, corrected, nil
}

// Correct repairs a raw page image in place without materialising the
// user-data view, returning the number of corrected symbols. It performs
// no allocations: the selection path only needs the exact as-programmed
// image, not the gathered data bytes.
func (pl *PublicLayout) Correct(image []byte) (corrected int, err error) {
	if len(image) != pl.pageBytes {
		return 0, fmt.Errorf("core: image is %d bytes, want %d", len(image), pl.pageBytes)
	}
	if pl.t == 0 {
		return 0, nil
	}
	parity := pl.rs.ParitySymbols()
	off := 0
	for i, ch := range pl.chunks {
		n, err := pl.rs.Decode(image[off : off+ch.data+parity])
		if err != nil {
			return corrected, fmt.Errorf("%w: chunk %d: %v", ErrPublicUncorrectable, i, err)
		}
		corrected += n
		off += ch.data + parity
	}
	return corrected, nil
}
