package pthi

import (
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

// testConfig shrinks the optimal configuration to unit-test scale while
// keeping the stress/decode physics identical.
func testConfig() Config {
	c := OptimalConfig()
	c.BitsPerPage = 32
	c.StressCycles = 625
	return c
}

func testModel() nand.Model {
	return nand.ModelA().ScaleGeometry(8, 8, 512) // 4096 cells/page
}

func randBits(rng *rand.Rand, n int) []uint8 {
	b := make([]uint8, n)
	for i := range b {
		b[i] = uint8(rng.IntN(2))
	}
	return b
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	chip := nand.NewChip(testModel(), 1)
	h, err := NewHider(chip, []byte("pt-key"), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	bits := randBits(rng, h.BlockCapacityBits())
	if err := h.EncodeBlock(0, bits); err != nil {
		t.Fatal(err)
	}
	got, err := h.DecodeBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	// The paper's optimal fresh-chip setup has "negligible" error rate;
	// allow ~3%.
	if frac := float64(errs) / float64(len(bits)); frac > 0.03 {
		t.Fatalf("PT-HI BER %.3f on fresh chip, want near zero (%d/%d)", frac, errs, len(bits))
	}
}

func TestEncodeWearsBlockByStressCycles(t *testing.T) {
	chip := nand.NewChip(testModel(), 2)
	h, err := NewHider(chip, []byte("k"), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	if err := h.EncodeBlock(1, randBits(rng, h.BlockCapacityBits())); err != nil {
		t.Fatal(err)
	}
	// The paper's wear-amplification claim: encode costs one PEC per
	// stress cycle (625 in the optimal configuration).
	if pec := chip.PEC(1); pec != h.Config().StressCycles {
		t.Fatalf("encode consumed %d PEC, want %d", pec, h.Config().StressCycles)
	}
}

func TestDecodeDestroysPublicData(t *testing.T) {
	chip := nand.NewChip(testModel(), 3)
	h, err := NewHider(chip, []byte("k"), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	bits := randBits(rng, h.BlockCapacityBits())
	if err := h.EncodeBlock(0, bits); err != nil {
		t.Fatal(err)
	}
	// Store public data over the encoded block (PT-HI survives this).
	public := make([]byte, chip.Geometry().PageBytes)
	for i := range public {
		public[i] = byte(rng.IntN(256))
	}
	if err := chip.ProgramPage(nand.PageAddr{Block: 0, Page: 0}, public); err != nil {
		t.Fatal(err)
	}
	if _, err := h.DecodeBlock(0); err != nil {
		t.Fatal(err)
	}
	got, err := chip.ReadPage(nand.PageAddr{Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range got {
		if got[i] == public[i] {
			same++
		}
	}
	if same == len(got) {
		t.Fatal("public data survived a PT-HI decode; decode must be destructive")
	}
}

func TestHiddenDataSurvivesPublicRewrites(t *testing.T) {
	chip := nand.NewChip(testModel(), 4)
	h, err := NewHider(chip, []byte("k"), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	bits := randBits(rng, h.BlockCapacityBits())
	if err := h.EncodeBlock(0, bits); err != nil {
		t.Fatal(err)
	}
	// Several public data generations over the stressed block: PT-HI's
	// distinguishing advantage (§2) is that stress survives them.
	for gen := 0; gen < 3; gen++ {
		for p := 0; p < chip.Geometry().PagesPerBlock; p++ {
			data := make([]byte, chip.Geometry().PageBytes)
			for i := range data {
				data[i] = byte(rng.IntN(256))
			}
			if err := chip.ProgramPage(nand.PageAddr{Block: 0, Page: p}, data); err != nil {
				t.Fatal(err)
			}
		}
		if err := chip.EraseBlock(0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := h.DecodeBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(bits)); frac > 0.05 {
		t.Fatalf("PT-HI BER %.3f after public rewrites", frac)
	}
}

func TestBERDegradesWithWear(t *testing.T) {
	ber := func(precycles int) float64 {
		chip := nand.NewChip(testModel(), 5)
		h, err := NewHider(chip, []byte("k"), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := chip.CycleBlock(0, precycles); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(5, 5))
		bits := randBits(rng, h.BlockCapacityBits())
		if err := h.EncodeBlock(0, bits); err != nil {
			t.Fatal(err)
		}
		got, err := h.DecodeBlock(0)
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for i := range bits {
			if got[i] != bits[i] {
				errs++
			}
		}
		return float64(errs) / float64(len(bits))
	}
	fresh := ber(0)
	worn := ber(2500)
	if worn < fresh {
		t.Errorf("PT-HI BER improved with wear: fresh %.4f vs worn %.4f", fresh, worn)
	}
}

func TestLedgerMatchesPaperCostModel(t *testing.T) {
	chip := nand.NewChip(testModel(), 6)
	cfg := testConfig()
	h, err := NewHider(chip, []byte("k"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(6, 6))
	before := chip.Ledger()
	if err := h.EncodeBlock(0, randBits(rng, h.BlockCapacityBits())); err != nil {
		t.Fatal(err)
	}
	cost := chip.Ledger().Sub(before)
	g := chip.Geometry()
	wantProgs := int64(cfg.StressCycles * g.PagesPerBlock)
	if cost.Programs != wantProgs {
		t.Errorf("encode programs = %d, want %d", cost.Programs, wantProgs)
	}
	if cost.Erases != int64(cfg.StressCycles) {
		t.Errorf("encode erases = %d, want %d", cost.Erases, cfg.StressCycles)
	}

	before = chip.Ledger()
	if _, err := h.DecodeBlock(0); err != nil {
		t.Fatal(err)
	}
	cost = chip.Ledger().Sub(before)
	pages := int64(len(h.hiddenPages()))
	if cost.PartialPrograms != pages*int64(cfg.DecodePulses) {
		t.Errorf("decode PPs = %d, want %d", cost.PartialPrograms, pages*int64(cfg.DecodePulses))
	}
	if cost.Reads != pages*int64(cfg.DecodePulses) {
		t.Errorf("decode reads = %d, want %d", cost.Reads, pages*int64(cfg.DecodePulses))
	}
}

func TestConfigValidation(t *testing.T) {
	m := testModel()
	bad := []Config{
		func() Config { c := OptimalConfig(); c.StressCycles = 0; return c }(),
		func() Config { c := OptimalConfig(); c.CellsPerHalfGroup = 0; return c }(),
		func() Config { c := OptimalConfig(); c.BitsPerPage = 0; return c }(),
		func() Config { c := testConfig(); c.BitsPerPage = 1 << 20; return c }(),
		func() Config { c := testConfig(); c.DecodePulses = 0; return c }(),
		func() Config { c := testConfig(); c.DecodeRef = 300; return c }(),
		func() Config { c := testConfig(); c.DecodeRef = -1; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(m); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
