// Package pthi implements PT-HI, the prior-art baseline VT-HI is compared
// against throughout the paper (Wang et al., "Hiding Information in Flash
// Memory", IEEE S&P 2013, the paper's [38]).
//
// PT-HI creates a covert channel out of programming TIME rather than
// voltage: repeatedly program-stressing chosen cells permanently slows
// them, and a hidden bit is encoded in which half of a cell-group pair is
// slower. The properties the paper's Table 1 contrasts fall directly out
// of the construction:
//
//   - Encode is hundreds of full block program/erase cycles (625 in the
//     optimal configuration), so it is slow (~51 s/block), energy-hungry
//     (~43 mJ/page) and burns device lifetime (the paper's 625x wear
//     figure is literally the encode cycle count).
//   - Decode measures programming speed, which requires programming: it
//     destroys any public data in the block and cannot be repeated
//     without re-running the destructive measurement.
//   - The stress differential survives public-data rewrites (its one
//     advantage over VT-HI — stress is permanent oxide damage).
package pthi

import (
	"fmt"

	"stashflash/internal/nand"
	"stashflash/internal/prng"
)

// Config parameterises the PT-HI channel.
type Config struct {
	// StressCycles is the number of program/erase stress cycles applied
	// during encode; the paper's optimal setup uses 625.
	StressCycles int
	// CellsPerHalfGroup is the number of cells in each half of a bit's
	// group pair; larger groups average out per-cell noise.
	CellsPerHalfGroup int
	// BitsPerPage is the hidden bit count per page (the paper credits
	// PT-HI's optimal setup with 72 Kb/block = 1125 bits/page at 64
	// pages/block).
	BitsPerPage int
	// PageInterval is the physical spacing between encoded pages (the
	// optimal setup uses 4).
	PageInterval int
	// DecodePulses is the number of partial-program+read iterations the
	// destructive decode uses (30 in the paper's cost model).
	DecodePulses int
	// DecodeRef is the read reference that separates fast (unstressed)
	// from slow (stressed) cells after DecodePulses pulses.
	DecodeRef float64
}

// OptimalConfig is the paper's "ideal setup" for PT-HI (§8 Throughput):
// 625 per-page stress cycles, 4-page interval, 30-step decode.
func OptimalConfig() Config {
	return Config{
		StressCycles:      625,
		CellsPerHalfGroup: 16,
		BitsPerPage:       1125,
		PageInterval:      4,
		DecodePulses:      30,
		DecodeRef:         215,
	}
}

// Validate checks the configuration against a chip model.
func (c Config) Validate(m nand.Model) error {
	if c.StressCycles < 1 {
		return fmt.Errorf("pthi: StressCycles must be >= 1")
	}
	if c.CellsPerHalfGroup < 1 {
		return fmt.Errorf("pthi: CellsPerHalfGroup must be >= 1")
	}
	need := c.BitsPerPage * 2 * c.CellsPerHalfGroup
	if c.BitsPerPage < 1 || need > m.CellsPerPage() {
		return fmt.Errorf("pthi: %d bits x %d cells needs %d cells, page has %d",
			c.BitsPerPage, 2*c.CellsPerHalfGroup, need, m.CellsPerPage())
	}
	if c.DecodePulses < 1 {
		return fmt.Errorf("pthi: DecodePulses must be >= 1")
	}
	if c.DecodeRef <= 0 || c.DecodeRef >= 255 {
		// Any probe-able level works: the decode read uses the vendor
		// reference-shift command, not the public threshold.
		return fmt.Errorf("pthi: DecodeRef %.1f outside (0, 255)", c.DecodeRef)
	}
	return nil
}

// Device is what the PT-HI channel needs from a backend: the vendor
// command set (reference-shifted decode reads) plus the bulk
// program-stress operations that implement the encode's repeated cycles.
type Device interface {
	nand.VendorDevice
	nand.StressDevice
}

// Hider embeds and extracts PT-HI payloads on one device.
type Hider struct {
	dev Device
	cfg Config
	key []byte
}

// NewHider builds a PT-HI codec for a device under cfg with the given
// secret key (group locations derive from it, mirroring VT-HI's keyed
// selection).
func NewHider(dev Device, key []byte, cfg Config) (*Hider, error) {
	if err := cfg.Validate(dev.Model()); err != nil {
		return nil, err
	}
	return &Hider{dev: dev, cfg: cfg, key: append([]byte(nil), key...)}, nil
}

// Config returns the hider's configuration.
func (h *Hider) Config() Config { return h.cfg }

// groups returns, for a page, the cell-group pair for every bit:
// groups[j][0] and groups[j][1] are the A/B halves of bit j.
func (h *Hider) groups(a nand.PageAddr) [][2][]int {
	g := h.dev.Geometry()
	pageIdx := uint64(a.Block)*uint64(g.PagesPerBlock) + uint64(a.Page)
	stream := prng.PageStream(h.key, pageIdx, "pt-hi/groups")
	per := 2 * h.cfg.CellsPerHalfGroup
	cells := stream.SelectKSparse(g.CellsPerPage(), h.cfg.BitsPerPage*per)
	out := make([][2][]int, h.cfg.BitsPerPage)
	for j := range out {
		base := j * per
		out[j][0] = cells[base : base+h.cfg.CellsPerHalfGroup]
		out[j][1] = cells[base+h.cfg.CellsPerHalfGroup : base+per]
	}
	return out
}

// hiddenPages lists the page numbers of a block that carry hidden bits
// under the configured interval.
func (h *Hider) hiddenPages() []int {
	var pages []int
	stride := h.cfg.PageInterval + 1
	for p := 0; p < h.dev.Geometry().PagesPerBlock; p += stride {
		pages = append(pages, p)
	}
	return pages
}

// BlockCapacityBits returns how many hidden bits one block carries.
func (h *Hider) BlockCapacityBits() int {
	return len(h.hiddenPages()) * h.cfg.BitsPerPage
}

// EncodeBlock embeds bits into a block by running StressCycles full
// program/erase stress cycles. The block must be expendable: encode wears
// it by StressCycles PEC and leaves it erased. bits must hold exactly
// BlockCapacityBits entries (0/1), consumed page by page.
func (h *Hider) EncodeBlock(block int, bits []uint8) error {
	want := h.BlockCapacityBits()
	if len(bits) != want {
		return fmt.Errorf("pthi: got %d bits, block carries %d", len(bits), want)
	}
	g := h.dev.Geometry()
	// Build the per-page stress patterns once: bit 1 stresses half A,
	// bit 0 stresses half B, so total stress is data-independent (no
	// aggregate wear signature reveals the payload).
	patterns := make([][]int, g.PagesPerBlock)
	off := 0
	for _, p := range h.hiddenPages() {
		grp := h.groups(nand.PageAddr{Block: block, Page: p})
		var cells []int
		for j := 0; j < h.cfg.BitsPerPage; j++ {
			half := 1
			if bits[off] == 1 {
				half = 0
			}
			cells = append(cells, grp[j][half]...)
			off++
		}
		patterns[p] = cells
	}
	for cyc := 0; cyc < h.cfg.StressCycles; cyc++ {
		if err := h.dev.StressCycleBlock(block, patterns); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBlock extracts the hidden bits of a block. The measurement is
// DESTRUCTIVE: the block is erased first (any public data is lost) and the
// pages are left partially programmed with measurement garbage. Each page
// costs DecodePulses partial programs plus reads — the (600+90)us x 30
// arithmetic behind the paper's 54 Kb/s PT-HI decode throughput.
func (h *Hider) DecodeBlock(block int) ([]uint8, error) {
	if err := h.dev.EraseBlock(block); err != nil {
		return nil, err
	}
	out := make([]uint8, 0, h.BlockCapacityBits())
	for _, p := range h.hiddenPages() {
		bits, err := h.decodePage(nand.PageAddr{Block: block, Page: p})
		if err != nil {
			return nil, err
		}
		out = append(out, bits...)
	}
	return out, nil
}

func (h *Hider) decodePage(a nand.PageAddr) ([]uint8, error) {
	grp := h.groups(a)
	var all []int
	for j := range grp {
		all = append(all, grp[j][0]...)
		all = append(all, grp[j][1]...)
	}
	var raw []byte
	for k := 0; k < h.cfg.DecodePulses; k++ {
		if err := h.dev.PartialProgram(a, all); err != nil {
			return nil, err
		}
		var err error
		raw, err = h.dev.ReadPageRef(a, h.cfg.DecodeRef)
		if err != nil {
			return nil, err
		}
	}
	bits := make([]uint8, len(grp))
	for j := range grp {
		// Count cells still below the reference (slow cells) per half;
		// the stressed half lags. Ties break toward 0, matching the
		// encode convention of stressing half A for bit 1.
		slowA := countBelow(raw, grp[j][0])
		slowB := countBelow(raw, grp[j][1])
		if slowA > slowB {
			bits[j] = 1
		}
	}
	return bits, nil
}

// countBelow counts listed cells whose read bit is '1' (below reference).
func countBelow(raw []byte, cells []int) int {
	n := 0
	for _, c := range cells {
		if (raw[c/8]>>(7-uint(c%8)))&1 == 1 {
			n++
		}
	}
	return n
}
