package stegfs

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"stashflash/internal/nand"
	"stashflash/internal/onfi"
)

// backendTrace runs the full volume lifecycle — create, public writes,
// hidden write, sync, a power loss truncating a hidden overwrite after k
// pulses, power cycle, remount with recovery — over the given device and
// renders every observable outcome plus the complete physical cell state
// into a transcript. Two devices are equivalent exactly when their
// transcripts are byte-identical.
func backendTrace(t *testing.T, dev nand.VendorDevice, plan *nand.FaultPlan, k int) string {
	t.Helper()
	dev.(nand.FaultInjector).SetFaultPlan(plan)
	var sb strings.Builder
	note := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }
	errName := func(err error) string {
		switch {
		case err == nil:
			return "nil"
		case errors.Is(err, nand.ErrPowerLoss):
			return "power-loss"
		case errors.Is(err, ErrHiddenInvalid):
			return "hidden-invalid"
		default:
			return err.Error()
		}
	}

	v, err := Create(dev, []byte("hidden-master"), []byte("public-master"), DefaultConfig(dev.Geometry()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(uint64(k), 0xbac8))
	for _, lba := range []int{0, 5, 11} {
		note("public write %d: %s", lba, errName(v.PublicWrite(lba, randSector(rng, v.PublicSectorBytes()))))
	}
	note("hidden write 1: %s", errName(v.HiddenWrite(1, randSector(rng, v.HiddenSectorBytes()))))
	note("sync: %s", errName(v.Sync()))

	plan.ArmPowerLossAfterPP(k)
	note("truncated overwrite: %s", errName(v.HiddenWrite(1, randSector(rng, v.HiddenSectorBytes()))))
	dev.(interface{ PowerCycle() }).PowerCycle()
	note("remount: %s", errName(v.Remount([]byte("hidden-master"))))
	rep := v.LastRecovery()
	note("recovery: checked=%d replayed=%v scrubbed=%v", rep.Checked, rep.Replayed, rep.Scrubbed)

	for _, lba := range []int{0, 5, 11} {
		data, err := v.PublicRead(lba)
		note("public read %d: %s %x", lba, errName(err), data)
	}
	data, err := v.HiddenRead(1)
	note("hidden read 1: %s %x", errName(err), data)
	note("ftl stats: %+v", v.FTLStats())

	// Physical ground truth: every cell level on the device, via the
	// vendor probe. Logical equality could mask compensating differences;
	// the array itself must match.
	g := dev.Geometry()
	for b := 0; b < g.Blocks; b++ {
		for p := 0; p < g.PagesPerBlock; p++ {
			levels, err := dev.ProbePage(nand.PageAddr{Block: b, Page: p})
			note("probe %d/%d: %s %x", b, p, errName(err), levels)
		}
	}
	return sb.String()
}

// TestCrashRoundTripBackendEquivalence is the ISSUE's stegfs equivalence
// proof: the create → write → crash → recover flow must leave the device
// in a bit-identical physical state — and produce identical logical
// outcomes — whether the volume drives the chip directly or through the
// ONFI bus command adapter.
func TestCrashRoundTripBackendEquivalence(t *testing.T) {
	for _, k := range []int{1, 4, 9} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			m := nand.ModelA().ScaleGeometry(20, 8, 2040)
			seed := uint64(500 + k)

			direct := nand.NewChip(m, seed)
			directTrace := backendTrace(t, direct, nand.NewFaultPlan(nand.FaultConfig{Seed: seed}), k)

			onfiDev := onfi.NewDevice(nand.NewChip(m, seed))
			onfiTrace := backendTrace(t, onfiDev, nand.NewFaultPlan(nand.FaultConfig{Seed: seed}), k)

			if directTrace != onfiTrace {
				t.Errorf("direct and onfi traces differ\n--- direct ---\n%.2000s\n--- onfi ---\n%.2000s",
					directTrace, onfiTrace)
			}
		})
	}
}
