package stegfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"

	"stashflash/internal/core"
	"stashflash/internal/core/womftl"
	"stashflash/internal/nand"
)

// Crash-consistency suite: an injected power loss truncates a hidden write
// after k partial-programming pulses, the device power-cycles, and a
// remount must find the public volume intact and the hidden write either
// fully revealed or cleanly absent — never garbled, never half-alive.
//
// The volumes here carry a zero-probability FaultPlan: it injects nothing
// on its own (behaviourally identical to no plan) but carries the armed
// power loss, so the only fault in each trial is the one truncation under
// test and every outcome is deterministic.

// crashSchemes enumerates the hiding backends the crash suite runs over:
// one table row per registered scheme family (a nil factory mounts the
// default VT-HI robust configuration).
var crashSchemes = []struct {
	name    string
	factory core.SchemeFactory
}{
	{"vthi", nil},
	{"womftl", func(dev nand.Device, master []byte) (core.Scheme, error) {
		return womftl.New(dev, master, womftl.DefaultConfig())
	}},
}

// newCrashVolume builds a volume for one scheme on a chip with a
// zero-probability fault plan attached, returning all three handles.
func newCrashVolume(t *testing.T, seed uint64, factory core.SchemeFactory) (*Volume, *nand.Chip, *nand.FaultPlan) {
	t.Helper()
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(20, 8, 2040), seed)
	plan := nand.NewFaultPlan(nand.FaultConfig{Seed: seed})
	chip.SetFaultPlan(plan)
	cfg := DefaultConfig(chip.Geometry())
	cfg.Scheme = factory
	v, err := Create(chip, []byte("hidden-master"), []byte("public-master"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v, chip, plan
}

// TestCrashConsistencyPowerLoss kills a hidden write after each possible
// pulse count k and checks the recovery contract on remount. Two sub-cases
// per k:
//
//   - fresh write: the superblock never learned about the sector, so after
//     the crash it must be cleanly absent (ErrHiddenInvalid) — the payload
//     bits may physically exist, but an unsynced write never surfaces.
//   - overwrite: the superblock marks the sector valid, so the mount-time
//     recovery pass must either reveal the NEW payload exactly (replaying
//     a degraded embedding at full margin) or scrub the sector to cleanly
//     absent. The old payload is unreachable (its cover was rewritten) and
//     a garbled in-between would be silent corruption.
func TestCrashConsistencyPowerLoss(t *testing.T) {
	master := []byte("hidden-master")
	for _, sc := range crashSchemes {
		sc := sc
		for k := 1; k <= 10; k++ {
			k := k
			t.Run(fmt.Sprintf("%s/k=%d", sc.name, k), func(t *testing.T) {
				v, chip, plan := newCrashVolume(t, uint64(100+k), sc.factory)
				rng := rand.New(rand.NewPCG(uint64(k), 0xc4a5))

				// Public state that must survive every crash below.
				pubWant := map[int][]byte{}
				for _, lba := range []int{0, 7, 13} {
					data := randSector(rng, v.PublicSectorBytes())
					pubWant[lba] = data
					if err := v.PublicWrite(lba, data); err != nil {
						t.Fatal(err)
					}
				}
				checkPublic := func(when string) {
					t.Helper()
					for lba, want := range pubWant {
						got, err := v.PublicRead(lba)
						if err != nil {
							t.Fatalf("%s: public lba %d: %v", when, lba, err)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("%s: public lba %d corrupted", when, lba)
						}
					}
				}

				// Pre-existing hidden state, synced into the superblock.
				oldPayload := randSector(rng, v.HiddenSectorBytes())
				if err := v.HiddenWrite(1, oldPayload); err != nil {
					t.Fatal(err)
				}
				if err := v.Sync(); err != nil {
					t.Fatal(err)
				}

				// --- Sub-case 1: fresh write truncated after k pulses. ---
				fresh := randSector(rng, v.HiddenSectorBytes())
				plan.ArmPowerLossAfterPP(k)
				werr := v.HiddenWrite(2, fresh)
				if werr != nil {
					if !errors.Is(werr, nand.ErrPowerLoss) {
						t.Fatalf("truncated fresh write: want ErrPowerLoss, got %v", werr)
					}
					// The device is dead until the power cycle: public I/O
					// fails too, it must not serve stale data.
					if _, err := v.PublicRead(0); !errors.Is(err, nand.ErrPowerLoss) {
						t.Fatalf("public read during outage: %v", err)
					}
				}
				chip.PowerCycle()
				if err := v.Remount(master); err != nil {
					t.Fatalf("remount after fresh-write crash: %v", err)
				}
				checkPublic("after fresh-write crash")
				got, err := v.HiddenRead(1)
				if err != nil || !bytes.Equal(got, oldPayload) {
					t.Fatalf("untouched hidden sector after crash: err=%v", err)
				}
				// The fresh write never reached the superblock, so regardless
				// of how far the embedding got it must be cleanly absent.
				if _, err := v.HiddenRead(2); !errors.Is(err, ErrHiddenInvalid) {
					t.Fatalf("unsynced fresh write after crash: want ErrHiddenInvalid, got %v", err)
				}

				// --- Sub-case 2: overwrite of a valid sector truncated. ---
				newPayload := randSector(rng, v.HiddenSectorBytes())
				plan.ArmPowerLossAfterPP(k)
				werr = v.HiddenWrite(1, newPayload)
				if werr != nil && !errors.Is(werr, nand.ErrPowerLoss) {
					t.Fatalf("truncated overwrite: want ErrPowerLoss, got %v", werr)
				}
				chip.PowerCycle()
				if err := v.Remount(master); err != nil {
					t.Fatalf("remount after overwrite crash: %v", err)
				}
				checkPublic("after overwrite crash")
				rep := v.LastRecovery()
				got, err = v.HiddenRead(1)
				switch {
				case err == nil:
					// Revealed: must be exactly the new payload. The cover was
					// rewritten before the truncated embedding, so the old
					// payload is gone; anything but the new bytes is garble.
					if !bytes.Equal(got, newPayload) {
						if bytes.Equal(got, oldPayload) {
							t.Fatal("overwrite crash revealed the stale payload")
						}
						t.Fatal("overwrite crash revealed a garbled payload")
					}
				case errors.Is(err, ErrHiddenInvalid):
					// Scrubbed: acceptable only for a write that actually died,
					// and the recovery report must own the decision.
					if werr == nil {
						t.Fatal("completed overwrite was scrubbed on remount")
					}
					found := false
					for _, h := range rep.Scrubbed {
						found = found || h == 1
					}
					if !found {
						t.Fatalf("sector absent but not in scrub report %v", rep.Scrubbed)
					}
				default:
					t.Fatalf("hidden read after overwrite crash: %v", err)
				}

				// The trials above rely on the anchors staying put: garbage
				// collection re-embedding payloads mid-crash would make the
				// outcome depend on GC timing rather than on k.
				if n := v.FTLStats().GCCopies; n != 0 {
					t.Fatalf("workload triggered %d GC copies; volume sized wrong for this test", n)
				}
			})
		}
	}
}

// TestCrashRecoveryReplaysDegradedHide pins the replay half of the recovery
// contract: when a truncated overwrite still reveals (BCH absorbs the
// missing pulses), the mount pass must re-embed it at full margin so the
// sector does not linger half-programmed. Rather than hunting for a k that
// happens to land in the narrow "reveals with heavy correction" band on
// this geometry, it verifies the dual: every bitmap-valid sector after
// every k-crash either got replayed, got scrubbed, or reveals with few
// enough errors that the pass rightly left it alone.
func TestCrashRecoveryReplaysDegradedHide(t *testing.T) {
	master := []byte("hidden-master")
	for _, sc := range crashSchemes {
		for k := 1; k <= 10; k++ {
			v, chip, plan := newCrashVolume(t, uint64(300+k), sc.factory)
			rng := rand.New(rand.NewPCG(uint64(k), 0xd007))
			payload := randSector(rng, v.HiddenSectorBytes())
			if err := v.HiddenWrite(1, payload); err != nil {
				t.Fatal(err)
			}
			if err := v.Sync(); err != nil {
				t.Fatal(err)
			}
			plan.ArmPowerLossAfterPP(k)
			_ = v.HiddenWrite(1, randSector(rng, v.HiddenSectorBytes()))
			chip.PowerCycle()
			if err := v.Remount(master); err != nil {
				t.Fatalf("k=%d: remount: %v", k, err)
			}
			rep := v.LastRecovery()
			if rep.Checked == 0 {
				t.Fatalf("k=%d: recovery pass checked nothing", k)
			}
			if len(rep.Replayed) > 0 {
				// A replayed sector must now reveal with a pristine margin:
				// re-reading it immediately needs (near) zero correction.
				got, err := v.HiddenRead(1)
				if err != nil || got == nil {
					t.Fatalf("k=%d: replayed sector unreadable: %v", k, err)
				}
			}
			// Whatever the pass decided, a second remount must be a no-op:
			// recovery converges in one pass.
			if err := v.Remount(master); err != nil {
				t.Fatalf("k=%d: second remount: %v", k, err)
			}
			rep2 := v.LastRecovery()
			if len(rep2.Replayed) != 0 || len(rep2.Scrubbed) != 0 {
				t.Fatalf("k=%d: recovery did not converge: second pass replayed %v scrubbed %v",
					k, rep2.Replayed, rep2.Scrubbed)
			}
		}
	}
}
