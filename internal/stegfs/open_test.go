package stegfs

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

// TestOpenAfterChipSaveLoad is the volume-persistence round trip: hide
// and write, Sync, persist the chip image and the FTL snapshot, restore
// both into a fresh process-worth of state via Open, and require every
// public and hidden sector back bit-exact.
func TestOpenAfterChipSaveLoad(t *testing.T) {
	const seed = 77
	master, public := []byte("hidden-master"), []byte("public-master")
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(20, 8, 2040), seed)
	cfg := DefaultConfig(chip.Geometry())
	v, err := Create(chip, master, public, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 9))
	pubWant := map[int][]byte{}
	for _, lba := range []int{0, 5, 17, v.PublicCapacity() - 1} {
		data := randSector(rng, v.PublicSectorBytes())
		pubWant[lba] = data
		if err := v.PublicWrite(lba, data); err != nil {
			t.Fatal(err)
		}
	}
	hidWant := map[int][]byte{
		1: []byte("pre-restart one"),
		2: []byte("pre-restart two"),
	}
	for h, data := range hidWant {
		if err := v.HiddenWrite(h, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	st := v.FTLState()
	var img bytes.Buffer
	if err := chip.Save(&img); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh chip from the image, a fresh volume from Open.
	chip2, err := nand.Load(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Open(chip2, master, public, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	for lba, want := range pubWant {
		got, err := v2.PublicRead(lba)
		if err != nil {
			t.Fatalf("public lba %d after reopen: %v", lba, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("public lba %d mismatched after reopen", lba)
		}
	}
	for h, want := range hidWant {
		got, err := v2.HiddenRead(h)
		if err != nil {
			t.Fatalf("hidden sector %d after reopen: %v", h, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("hidden sector %d mismatched after reopen", h)
		}
	}
	// The reopened volume must stay writable: new hides and public writes
	// land on the restored frontier without colliding with old mappings.
	if err := v2.PublicWrite(5, randSector(rng, v2.PublicSectorBytes())); err != nil {
		t.Fatalf("post-reopen public write: %v", err)
	}
	if err := v2.HiddenWrite(3, []byte("post-restart")); err != nil {
		t.Fatalf("post-reopen hide: %v", err)
	}
	if err := v2.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := v2.HiddenRead(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len("post-restart")], []byte("post-restart")) {
		t.Fatal("post-reopen hide mismatched")
	}
}

// TestOpenWrongKeyFails: Open proves the key against the superblock.
func TestOpenWrongKeyFails(t *testing.T) {
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(20, 8, 2040), 5)
	cfg := DefaultConfig(chip.Geometry())
	v, err := Create(chip, []byte("right"), []byte("pub"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.HiddenWrite(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	st := v.FTLState()
	var img bytes.Buffer
	if err := chip.Save(&img); err != nil {
		t.Fatal(err)
	}
	chip2, err := nand.Load(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(chip2, []byte("wrong"), []byte("pub"), cfg, st); !errors.Is(err, ErrBadSuperblock) {
		t.Fatalf("wrong key: got %v, want ErrBadSuperblock", err)
	}
}

// TestSetStateRejectsMismatchedGeometry: a snapshot from one geometry
// must not restore into another.
func TestSetStateRejectsMismatchedGeometry(t *testing.T) {
	big := newVolume(t, 8)
	st := big.FTLState()
	small := nand.NewChip(nand.ModelA().ScaleGeometry(10, 8, 2040), 8)
	cfg := DefaultConfig(small.Geometry())
	if _, err := Open(small, []byte("hidden-master"), []byte("public-master"), cfg, st); err == nil {
		t.Fatal("mismatched geometry snapshot restored without error")
	}
}
