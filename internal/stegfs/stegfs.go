// Package stegfs implements the paper's §9.2 "Basic Design": a publicly
// visible, encrypted volume within which a keyed user can mount a hidden
// volume whose sectors live in the voltage levels of the public sectors'
// cells.
//
// Layout and lifecycle:
//
//   - The public volume is an FTL-backed block device whose sectors are
//     encrypted (the paper assumes public data behind Bitlocker/FileVault;
//     uniformly random cover bits are also what makes cell selection
//     statistics uniform).
//   - Hidden sector h is anchored to a pseudo-randomly chosen public LBA;
//     the payload physically rides whatever flash page currently backs
//     that LBA. The anchor map derives from the secret key alone — no
//     plaintext metadata ever touches the device.
//   - When the FTL migrates an anchored page (garbage collection, wear
//     leveling), the volume's migration hook re-embeds the payload into
//     the new location before the old block is erased — the §5.1
//     requirement.
//   - Hidden sector 0 is reserved for a superblock carrying the validity
//     bitmap under a truncated MAC, so a remount with only the key
//     recovers which hidden sectors hold data.
//   - Without the key the device is indistinguishable from a plain
//     encrypted SSD, and operating it keyless will eventually overwrite
//     hidden payloads — the paper's "inherent limitation of almost all
//     existing steganographic systems" (§9.2).
//
// FTL mapping-table persistence across power cycles is orthogonal
// (real SSDs journal it out-of-band) and out of scope, as is a full POSIX
// filesystem — the paper defers the same (§9.2).
package stegfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"stashflash/internal/core"
	"stashflash/internal/core/vthi"
	"stashflash/internal/ftl"
	"stashflash/internal/nand"
	"stashflash/internal/prng"
	"stashflash/internal/seal"
)

// Config sizes the hidden volume.
type Config struct {
	// HiddenSectors is the number of hidden sectors (including the
	// superblock at sector 0).
	HiddenSectors int
	// Scheme builds the hiding backend for the payload embeddings; any
	// registered core.Scheme works (core.SchemeByName(name).New). Nil
	// means the default VT-HI robust configuration.
	Scheme core.SchemeFactory
	// FTL tunes the public volume's translation layer.
	FTL ftl.Config
}

// DefaultConfig sizes a small hidden volume on the given geometry.
func DefaultConfig(g nand.Geometry) Config {
	return Config{
		HiddenSectors: 16,
		Scheme:        vthi.Factory(vthi.RobustConfig()),
		FTL:           ftl.DefaultConfig(g),
	}
}

// Errors surfaced by volume operations.
var (
	ErrHiddenRange    = errors.New("stegfs: hidden sector out of range")
	ErrHiddenInvalid  = errors.New("stegfs: hidden sector holds no data")
	ErrBadSuperblock  = errors.New("stegfs: superblock MAC mismatch (wrong key or lost hidden state)")
	ErrSectorReserved = errors.New("stegfs: hidden sector 0 is the superblock")
)

const (
	superMagic   = 0x5A5F
	superHdrLen  = 2 + 4 // magic + truncated MAC
	superSector  = 0
	firstUserSec = 1
)

// Volume is a mounted steganographic device. Not safe for concurrent use.
type Volume struct {
	dev     nand.Device
	ftl     *ftl.FTL
	scheme  core.Scheme
	keys    seal.Keys
	cfg     Config
	anchors []int       // hidden sector -> public LBA
	anchorH map[int]int // public LBA -> hidden sector
	valid   []bool
	dirty   bool // superblock needs Sync

	lastRecovery RecoveryReport
}

// hideRemapAttempts bounds how many fresh cover pages one hidden write may
// burn through when embeds keep failing.
const hideRemapAttempts = 3

// remappableHideErr reports hide failures a fresh cover page can cure: the
// cover's block went bad, the program failed (growing it bad), or the
// embedding could not be verified on those cells.
func remappableHideErr(err error) bool {
	return errors.Is(err, nand.ErrProgramFailed) || errors.Is(err, nand.ErrBadBlock) ||
		errors.Is(err, core.ErrHiddenUnrecoverable)
}

// migrationHook re-embeds hidden payloads when the FTL moves their cover
// page (§5.1: "re-embed the hidden data in a new location ... before the
// old NU page ... is permanently erased").
type migrationHook struct{ v *Volume }

func (m migrationHook) PageMoved(lba int, src, dst nand.PageAddr) error {
	v := m.v
	h, ok := v.anchorH[lba]
	if !ok || !v.valid[h] {
		return nil
	}
	payload, _, err := v.scheme.Reveal(src, v.HiddenSectorBytes(), v.epoch(src))
	if err != nil {
		return fmt.Errorf("stegfs: rescuing hidden sector %d during GC: %w", h, err)
	}
	if _, err := v.scheme.Hide(dst, payload, v.epoch(dst)); err != nil {
		return fmt.Errorf("stegfs: re-embedding hidden sector %d: %w", h, err)
	}
	return nil
}

// Create formats a fresh device as a steganographic volume. masterKey
// protects the hidden volume; publicKey encrypts the public volume (the
// NU's ordinary disk-encryption credential). Any nand.Device backend the
// configured scheme supports works, including the ONFI bus adapter; the
// default VT-HI scheme additionally needs the vendor command set.
func Create(dev nand.Device, masterKey, publicKey []byte, cfg Config) (*Volume, error) {
	if cfg.HiddenSectors < 2 {
		return nil, fmt.Errorf("stegfs: need at least 2 hidden sectors (superblock + data), got %d", cfg.HiddenSectors)
	}
	if cfg.Scheme == nil {
		cfg.Scheme = vthi.Factory(vthi.RobustConfig())
	}
	scheme, err := cfg.Scheme(dev, masterKey)
	if err != nil {
		return nil, err
	}
	keys := seal.DeriveKeys(masterKey)
	v := &Volume{
		dev:    dev,
		scheme: scheme,
		keys:   keys,
		cfg:    cfg,
		valid:  make([]bool, cfg.HiddenSectors),
	}
	if max := v.maxHiddenSectors(); cfg.HiddenSectors > max {
		return nil, fmt.Errorf("stegfs: %d hidden sectors exceed superblock bitmap capacity %d", cfg.HiddenSectors, max)
	}
	// Public sectors flow scheme -> public ECC, sealed to their physical
	// location by the shared ftl.SealedStore plumbing.
	store := ftl.NewSealedStore(dev, core.PublicStore{S: scheme}, seal.DeriveKeys(publicKey).Encrypt)
	hook := migrationHook{v: v}
	f, err := ftl.New(dev, store, cfg.FTL, hook)
	if err != nil {
		return nil, err
	}
	v.ftl = f
	if cfg.HiddenSectors > f.Capacity() {
		return nil, fmt.Errorf("stegfs: %d hidden sectors exceed %d public LBAs", cfg.HiddenSectors, f.Capacity())
	}
	v.deriveAnchors()
	return v, nil
}

// maxHiddenSectors bounds the bitmap the superblock payload can hold.
func (v *Volume) maxHiddenSectors() int {
	return (v.scheme.HiddenPayloadBytes() - superHdrLen) * 8
}

// deriveAnchors computes the hidden-sector -> public-LBA map from the key.
func (v *Volume) deriveAnchors() {
	stream := prng.NewStream(v.keys.Locate, "stegfs/anchors")
	v.anchors = stream.SelectKSparse(v.ftl.Capacity(), v.cfg.HiddenSectors)
	v.anchorH = make(map[int]int, len(v.anchors))
	for h, lba := range v.anchors {
		v.anchorH[lba] = h
	}
}

// PublicCapacity returns the number of public sectors.
func (v *Volume) PublicCapacity() int { return v.ftl.Capacity() }

// PublicSectorBytes returns the public sector size.
func (v *Volume) PublicSectorBytes() int { return v.ftl.SectorBytes() }

// HiddenCapacity returns the number of user hidden sectors (excluding the
// superblock).
func (v *Volume) HiddenCapacity() int { return v.cfg.HiddenSectors - 1 }

// HiddenSectorBytes returns the hidden sector size.
func (v *Volume) HiddenSectorBytes() int { return v.scheme.HiddenPayloadBytes() }

// epoch binds an embedding to its physical page generation: the block's
// current PEC. It is derivable at read time with no stored state and can
// never repeat for the same page without an intervening erase (which
// destroys the payload anyway), so the seal's CTR IV is never reused.
func (v *Volume) epoch(a nand.PageAddr) uint64 {
	return uint64(v.dev.PEC(a.Block))
}

// PublicRead reads a public sector; no hidden-volume state is involved.
func (v *Volume) PublicRead(lba int) ([]byte, error) { return v.ftl.Read(lba) }

// PublicWrite writes a public sector. If the sector anchors a live hidden
// payload, the payload is carried over to the fresh physical page — this
// is how "modifications simply require the user to repeat the hiding
// process ... on newly written normal data" (§9.1) plays out in firmware.
func (v *Volume) PublicWrite(lba int, data []byte) error {
	var carry []byte
	if h, ok := v.anchorH[lba]; ok && v.valid[h] {
		payload, err := v.hiddenReadAt(lba)
		if err != nil {
			return fmt.Errorf("stegfs: preserving hidden sector %d across public write: %w", h, err)
		}
		carry = payload
	}
	if err := v.ftl.Write(lba, data); err != nil {
		return err
	}
	if carry != nil {
		for attempt := 0; ; attempt++ {
			addr, err := v.ftl.Lookup(lba)
			if err != nil {
				return err
			}
			_, herr := v.scheme.Hide(addr, carry, v.epoch(addr))
			if herr == nil {
				return nil
			}
			if !remappableHideErr(herr) || attempt+1 >= hideRemapAttempts {
				return herr
			}
			// Remap: rewriting the sector makes the FTL allocate a fresh
			// page in a good block — genuinely new cells for the same
			// key-derived selection.
			if err := v.ftl.Write(lba, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// PublicTrim discards a public sector. Any hidden payload anchored to it
// is lost (its cover is gone); the validity bitmap is updated.
func (v *Volume) PublicTrim(lba int) error {
	if h, ok := v.anchorH[lba]; ok && v.valid[h] {
		v.valid[h] = false
		v.dirty = true
	}
	return v.ftl.Trim(lba)
}

// hiddenReadAt reveals the payload riding the page currently backing lba.
func (v *Volume) hiddenReadAt(lba int) ([]byte, error) {
	addr, err := v.ftl.Lookup(lba)
	if err != nil {
		return nil, err
	}
	payload, _, err := v.scheme.Reveal(addr, v.HiddenSectorBytes(), v.epoch(addr))
	return payload, err
}

// hiddenWriteAt embeds a payload for hidden sector h anchored at lba,
// rewriting the cover sector first so the embedding lands on fresh cells.
// If the embed fails in a way a new location can cure (grown bad block,
// program failure, unverifiable cells), the cover is rewritten again —
// each rewrite lands on a fresh physical page — up to hideRemapAttempts.
func (v *Volume) hiddenWriteAt(h, lba int, payload []byte) error {
	cover, err := v.ftl.Read(lba)
	if err == ftl.ErrUnwritten {
		// No cover yet: initialise the public sector with zeros (it
		// encrypts to uniform bits on flash).
		cover = make([]byte, v.ftl.SectorBytes())
		err = nil
	}
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < hideRemapAttempts; attempt++ {
		if err := v.ftl.Write(lba, cover); err != nil {
			return err
		}
		addr, err := v.ftl.Lookup(lba)
		if err != nil {
			return err
		}
		_, herr := v.scheme.Hide(addr, payload, v.epoch(addr))
		if herr == nil {
			v.valid[h] = true
			v.dirty = true
			return nil
		}
		if !remappableHideErr(herr) {
			return herr
		}
		lastErr = herr
	}
	return lastErr
}

// HiddenWrite stores a hidden sector (1 <= h <= HiddenCapacity), up to
// HiddenSectorBytes long.
func (v *Volume) HiddenWrite(h int, data []byte) error {
	if h == superSector {
		return ErrSectorReserved
	}
	if h < firstUserSec || h >= v.cfg.HiddenSectors {
		return ErrHiddenRange
	}
	if len(data) > v.HiddenSectorBytes() {
		return fmt.Errorf("stegfs: hidden sector payload %d bytes exceeds %d", len(data), v.HiddenSectorBytes())
	}
	padded := make([]byte, v.HiddenSectorBytes())
	copy(padded, data)
	return v.hiddenWriteAt(h, v.anchors[h], padded)
}

// HiddenRead returns a hidden sector's payload.
func (v *Volume) HiddenRead(h int) ([]byte, error) {
	if h == superSector {
		return nil, ErrSectorReserved
	}
	if h < firstUserSec || h >= v.cfg.HiddenSectors {
		return nil, ErrHiddenRange
	}
	if !v.valid[h] {
		return nil, ErrHiddenInvalid
	}
	return v.hiddenReadAt(v.anchors[h])
}

// HiddenRefresh re-embeds a hidden sector onto fresh cells by rewriting
// its cover sector in place. §8 recommends refreshing hidden data every
// few months on worn devices: retention decay erodes the margin between a
// parked cell and its threshold, and a refresh restores it in full.
func (v *Volume) HiddenRefresh(h int) error {
	if h == superSector {
		return ErrSectorReserved
	}
	if h < firstUserSec || h >= v.cfg.HiddenSectors {
		return ErrHiddenRange
	}
	if !v.valid[h] {
		return ErrHiddenInvalid
	}
	payload, err := v.hiddenReadAt(v.anchors[h])
	if err != nil {
		return fmt.Errorf("stegfs: refreshing hidden sector %d: %w", h, err)
	}
	return v.hiddenWriteAt(h, v.anchors[h], payload)
}

// HiddenErase invalidates a hidden sector (its bits remain until the cover
// migrates; use PublicWrite on the anchor to scrub immediately).
func (v *Volume) HiddenErase(h int) error {
	if h == superSector {
		return ErrSectorReserved
	}
	if h < firstUserSec || h >= v.cfg.HiddenSectors {
		return ErrHiddenRange
	}
	if v.valid[h] {
		v.valid[h] = false
		v.dirty = true
	}
	return nil
}

// Sync persists the validity bitmap into the hidden superblock.
func (v *Volume) Sync() error {
	payload := v.encodeSuperblock()
	if err := v.hiddenWriteAt(superSector, v.anchors[superSector], payload); err != nil {
		return err
	}
	v.dirty = false
	return nil
}

// Dirty reports whether hidden state awaits a Sync.
func (v *Volume) Dirty() bool { return v.dirty }

func (v *Volume) encodeSuperblock() []byte {
	payload := make([]byte, v.HiddenSectorBytes())
	binary.BigEndian.PutUint16(payload[0:2], superMagic)
	bits := payload[superHdrLen:]
	for h, ok := range v.valid {
		if ok && h != superSector {
			bits[h/8] |= 1 << uint(7-h%8)
		}
	}
	tag := seal.Sum(v.keys.MAC, payload[superHdrLen:])
	copy(payload[2:superHdrLen], tag[:4])
	return payload
}

// parseSuperblock validates a candidate superblock payload (magic,
// truncated MAC, validity bitmap) and returns the per-sector validity
// bits. It is a pure function over untrusted bytes — arbitrary corrupted
// input must yield ErrBadSuperblock, never a panic or over-read.
func parseSuperblock(payload, macKey []byte, nSectors int) ([]bool, error) {
	if nSectors < 1 {
		return nil, fmt.Errorf("%w: %d hidden sectors", ErrBadSuperblock, nSectors)
	}
	if len(payload) < superHdrLen+(nSectors+7)/8 {
		return nil, fmt.Errorf("%w: %d-byte payload too short for %d sectors", ErrBadSuperblock, len(payload), nSectors)
	}
	if binary.BigEndian.Uint16(payload[0:2]) != superMagic {
		return nil, ErrBadSuperblock
	}
	tag := seal.Sum(macKey, payload[superHdrLen:])
	for i := 0; i < 4; i++ {
		if payload[2+i] != tag[i] {
			return nil, ErrBadSuperblock
		}
	}
	bits := payload[superHdrLen:]
	valid := make([]bool, nSectors)
	for h := range valid {
		valid[h] = h != superSector && (bits[h/8]>>(7-uint(h%8)))&1 == 1
	}
	return valid, nil
}

// Remount re-derives all hidden-volume state (scheme, anchors, validity)
// from the master key and the superblock — demonstrating that the hidden
// volume needs no plaintext metadata — then runs the mount-time recovery
// pass (see recoverMounted). It fails with ErrBadSuperblock if the key is
// wrong or the superblock was never synced, leaving the volume unchanged.
func (v *Volume) Remount(masterKey []byte) error {
	scheme, err := v.cfg.Scheme(v.dev, masterKey)
	if err != nil {
		return err
	}
	probe := *v
	probe.scheme = scheme
	probe.keys = seal.DeriveKeys(masterKey)
	probe.deriveAnchors()
	payload, err := probe.hiddenReadAt(probe.anchors[superSector])
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSuperblock, err)
	}
	valid, err := parseSuperblock(payload, probe.keys.MAC, v.cfg.HiddenSectors)
	if err != nil {
		return err
	}
	copy(v.valid, valid)
	v.scheme = probe.scheme
	v.keys = probe.keys
	v.anchors = probe.anchors
	v.anchorH = probe.anchorH
	v.dirty = false
	return v.recoverMounted()
}

// RecoveryReport summarises the mount-time consistency pass.
type RecoveryReport struct {
	// Checked is the number of bitmap-valid user sectors probed.
	Checked int
	// Replayed lists sectors whose payload revealed but showed the
	// signature of an interrupted or degraded hide; they were re-embedded
	// at full margin.
	Replayed []int
	// Scrubbed lists sectors whose payload could not be revealed; they
	// were marked cleanly absent (and the superblock re-synced).
	Scrubbed []int
}

// LastRecovery returns the report of the most recent Remount's pass.
func (v *Volume) LastRecovery() RecoveryReport { return v.lastRecovery }

// recoverMounted is the mount-time consistency pass: every sector the
// superblock marks valid must reveal. A sector that reveals but needed
// nontrivial correction — the signature of a hide interrupted mid
// partial-programming sequence, or of margin eroded by disturb — is
// replayed (re-embedded onto a fresh cover at full margin). A sector that
// cannot reveal is scrubbed: marked absent and the superblock re-synced.
// A truncated hide therefore ends fully revealed or cleanly absent, never
// half-alive.
func (v *Volume) recoverMounted() error {
	rep := RecoveryReport{}
	replayAt := v.scheme.CorrectionBudget() / 2
	for h := firstUserSec; h < v.cfg.HiddenSectors; h++ {
		if !v.valid[h] {
			continue
		}
		rep.Checked++
		scrub := func() {
			v.valid[h] = false
			v.dirty = true
			rep.Scrubbed = append(rep.Scrubbed, h)
		}
		addr, err := v.ftl.Lookup(v.anchors[h])
		if err != nil {
			scrub()
			continue
		}
		payload, st, err := v.scheme.Reveal(addr, v.HiddenSectorBytes(), v.epoch(addr))
		if err != nil {
			scrub()
			continue
		}
		if st.CorrectedHidden > replayAt || st.Rereads > 0 {
			if err := v.hiddenWriteAt(h, v.anchors[h], payload); err != nil {
				return err
			}
			rep.Replayed = append(rep.Replayed, h)
		}
	}
	v.lastRecovery = rep
	if v.dirty {
		return v.Sync()
	}
	return nil
}

// FTLStats exposes the public volume's translation-layer statistics.
func (v *Volume) FTLStats() ftl.Stats { return v.ftl.Stats() }
