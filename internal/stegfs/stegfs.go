// Package stegfs implements the paper's §9.2 "Basic Design": a publicly
// visible, encrypted volume within which a keyed user can mount a hidden
// volume whose sectors live in the voltage levels of the public sectors'
// cells.
//
// Layout and lifecycle:
//
//   - The public volume is an FTL-backed block device whose sectors are
//     encrypted (the paper assumes public data behind Bitlocker/FileVault;
//     uniformly random cover bits are also what makes cell selection
//     statistics uniform).
//   - Hidden sector h is anchored to a pseudo-randomly chosen public LBA;
//     the payload physically rides whatever flash page currently backs
//     that LBA. The anchor map derives from the secret key alone — no
//     plaintext metadata ever touches the device.
//   - When the FTL migrates an anchored page (garbage collection, wear
//     leveling), the volume's migration hook re-embeds the payload into
//     the new location before the old block is erased — the §5.1
//     requirement.
//   - Hidden sector 0 is reserved for a superblock carrying the validity
//     bitmap under a truncated MAC, so a remount with only the key
//     recovers which hidden sectors hold data.
//   - Without the key the device is indistinguishable from a plain
//     encrypted SSD, and operating it keyless will eventually overwrite
//     hidden payloads — the paper's "inherent limitation of almost all
//     existing steganographic systems" (§9.2).
//
// FTL mapping-table persistence across power cycles is orthogonal
// (real SSDs journal it out-of-band) and out of scope, as is a full POSIX
// filesystem — the paper defers the same (§9.2).
package stegfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"stashflash/internal/core"
	"stashflash/internal/ftl"
	"stashflash/internal/nand"
	"stashflash/internal/prng"
	"stashflash/internal/seal"
)

// Config sizes the hidden volume.
type Config struct {
	// HiddenSectors is the number of hidden sectors (including the
	// superblock at sector 0).
	HiddenSectors int
	// Hiding is the VT-HI configuration for the payload embeddings.
	Hiding core.Config
	// FTL tunes the public volume's translation layer.
	FTL ftl.Config
}

// DefaultConfig sizes a small hidden volume on the given geometry.
func DefaultConfig(g nand.Geometry) Config {
	return Config{
		HiddenSectors: 16,
		Hiding:        core.RobustConfig(),
		FTL:           ftl.DefaultConfig(g),
	}
}

// Errors surfaced by volume operations.
var (
	ErrHiddenRange    = errors.New("stegfs: hidden sector out of range")
	ErrHiddenInvalid  = errors.New("stegfs: hidden sector holds no data")
	ErrBadSuperblock  = errors.New("stegfs: superblock MAC mismatch (wrong key or lost hidden state)")
	ErrSectorReserved = errors.New("stegfs: hidden sector 0 is the superblock")
)

const (
	superMagic   = 0x5A5F
	superHdrLen  = 2 + 4 // magic + truncated MAC
	superSector  = 0
	firstUserSec = 1
)

// Volume is a mounted steganographic device. Not safe for concurrent use.
type Volume struct {
	chip    *nand.Chip
	ftl     *ftl.FTL
	hider   *core.Hider
	keys    seal.Keys
	cfg     Config
	anchors []int       // hidden sector -> public LBA
	anchorH map[int]int // public LBA -> hidden sector
	valid   []bool
	dirty   bool // superblock needs Sync
}

// hiderStore adapts the VT-HI pipeline as the FTL's PageStore, encrypting
// sector payloads bound to their physical location so cover bits are
// uniformly random and GC rewrites re-encrypt naturally.
type hiderStore struct {
	chip  *nand.Chip
	hider *core.Hider
	key   []byte // public-volume (NU) encryption key
}

func (s hiderStore) DataBytes() int { return s.hider.PublicDataBytes() }

func (s hiderStore) pageIndex(a nand.PageAddr) uint64 {
	return uint64(a.Block)*uint64(s.chip.Geometry().PagesPerBlock) + uint64(a.Page)
}

func (s hiderStore) WritePage(a nand.PageAddr, data []byte) error {
	ct := seal.EncryptPage(s.key, s.pageIndex(a), uint64(s.chip.PEC(a.Block)), data)
	return s.hider.WritePage(a, ct)
}

func (s hiderStore) ReadPage(a nand.PageAddr) ([]byte, error) {
	ct, _, err := s.hider.ReadPublic(a)
	if err != nil {
		return nil, err
	}
	return seal.EncryptPage(s.key, s.pageIndex(a), uint64(s.chip.PEC(a.Block)), ct), nil
}

// migrationHook re-embeds hidden payloads when the FTL moves their cover
// page (§5.1: "re-embed the hidden data in a new location ... before the
// old NU page ... is permanently erased").
type migrationHook struct{ v *Volume }

func (m migrationHook) PageMoved(lba int, src, dst nand.PageAddr) error {
	v := m.v
	h, ok := v.anchorH[lba]
	if !ok || !v.valid[h] {
		return nil
	}
	payload, _, err := v.hider.Reveal(src, v.HiddenSectorBytes(), v.epoch(src))
	if err != nil {
		return fmt.Errorf("stegfs: rescuing hidden sector %d during GC: %w", h, err)
	}
	if _, err := v.hider.Hide(dst, payload, v.epoch(dst)); err != nil {
		return fmt.Errorf("stegfs: re-embedding hidden sector %d: %w", h, err)
	}
	return nil
}

// Create formats a fresh chip as a steganographic volume. masterKey
// protects the hidden volume; publicKey encrypts the public volume (the
// NU's ordinary disk-encryption credential).
func Create(chip *nand.Chip, masterKey, publicKey []byte, cfg Config) (*Volume, error) {
	if cfg.HiddenSectors < 2 {
		return nil, fmt.Errorf("stegfs: need at least 2 hidden sectors (superblock + data), got %d", cfg.HiddenSectors)
	}
	hider, err := core.NewHider(chip, masterKey, cfg.Hiding)
	if err != nil {
		return nil, err
	}
	keys := seal.DeriveKeys(masterKey)
	v := &Volume{
		chip:  chip,
		hider: hider,
		keys:  keys,
		cfg:   cfg,
		valid: make([]bool, cfg.HiddenSectors),
	}
	if max := v.maxHiddenSectors(); cfg.HiddenSectors > max {
		return nil, fmt.Errorf("stegfs: %d hidden sectors exceed superblock bitmap capacity %d", cfg.HiddenSectors, max)
	}
	store := hiderStore{chip: chip, hider: hider, key: seal.DeriveKeys(publicKey).Encrypt}
	hook := migrationHook{v: v}
	f, err := ftl.New(chip, store, cfg.FTL, hook)
	if err != nil {
		return nil, err
	}
	v.ftl = f
	if cfg.HiddenSectors > f.Capacity() {
		return nil, fmt.Errorf("stegfs: %d hidden sectors exceed %d public LBAs", cfg.HiddenSectors, f.Capacity())
	}
	v.deriveAnchors()
	return v, nil
}

// maxHiddenSectors bounds the bitmap the superblock payload can hold.
func (v *Volume) maxHiddenSectors() int {
	return (v.hider.HiddenPayloadBytes() - superHdrLen) * 8
}

// deriveAnchors computes the hidden-sector -> public-LBA map from the key.
func (v *Volume) deriveAnchors() {
	stream := prng.NewStream(v.keys.Locate, "stegfs/anchors")
	v.anchors = stream.SelectKSparse(v.ftl.Capacity(), v.cfg.HiddenSectors)
	v.anchorH = make(map[int]int, len(v.anchors))
	for h, lba := range v.anchors {
		v.anchorH[lba] = h
	}
}

// PublicCapacity returns the number of public sectors.
func (v *Volume) PublicCapacity() int { return v.ftl.Capacity() }

// PublicSectorBytes returns the public sector size.
func (v *Volume) PublicSectorBytes() int { return v.ftl.SectorBytes() }

// HiddenCapacity returns the number of user hidden sectors (excluding the
// superblock).
func (v *Volume) HiddenCapacity() int { return v.cfg.HiddenSectors - 1 }

// HiddenSectorBytes returns the hidden sector size.
func (v *Volume) HiddenSectorBytes() int { return v.hider.HiddenPayloadBytes() }

// epoch binds an embedding to its physical page generation: the block's
// current PEC. It is derivable at read time with no stored state and can
// never repeat for the same page without an intervening erase (which
// destroys the payload anyway), so the seal's CTR IV is never reused.
func (v *Volume) epoch(a nand.PageAddr) uint64 {
	return uint64(v.chip.PEC(a.Block))
}

// PublicRead reads a public sector; no hidden-volume state is involved.
func (v *Volume) PublicRead(lba int) ([]byte, error) { return v.ftl.Read(lba) }

// PublicWrite writes a public sector. If the sector anchors a live hidden
// payload, the payload is carried over to the fresh physical page — this
// is how "modifications simply require the user to repeat the hiding
// process ... on newly written normal data" (§9.1) plays out in firmware.
func (v *Volume) PublicWrite(lba int, data []byte) error {
	var carry []byte
	if h, ok := v.anchorH[lba]; ok && v.valid[h] {
		payload, err := v.hiddenReadAt(lba)
		if err != nil {
			return fmt.Errorf("stegfs: preserving hidden sector %d across public write: %w", h, err)
		}
		carry = payload
	}
	if err := v.ftl.Write(lba, data); err != nil {
		return err
	}
	if carry != nil {
		addr, err := v.ftl.Lookup(lba)
		if err != nil {
			return err
		}
		if _, err := v.hider.Hide(addr, carry, v.epoch(addr)); err != nil {
			return err
		}
	}
	return nil
}

// PublicTrim discards a public sector. Any hidden payload anchored to it
// is lost (its cover is gone); the validity bitmap is updated.
func (v *Volume) PublicTrim(lba int) error {
	if h, ok := v.anchorH[lba]; ok && v.valid[h] {
		v.valid[h] = false
		v.dirty = true
	}
	return v.ftl.Trim(lba)
}

// hiddenReadAt reveals the payload riding the page currently backing lba.
func (v *Volume) hiddenReadAt(lba int) ([]byte, error) {
	addr, err := v.ftl.Lookup(lba)
	if err != nil {
		return nil, err
	}
	payload, _, err := v.hider.Reveal(addr, v.HiddenSectorBytes(), v.epoch(addr))
	return payload, err
}

// hiddenWriteAt embeds a payload for hidden sector h anchored at lba,
// rewriting the cover sector first so the embedding lands on fresh cells.
func (v *Volume) hiddenWriteAt(h, lba int, payload []byte) error {
	cover, err := v.ftl.Read(lba)
	if err == ftl.ErrUnwritten {
		// No cover yet: initialise the public sector with zeros (it
		// encrypts to uniform bits on flash).
		cover = make([]byte, v.ftl.SectorBytes())
		err = nil
	}
	if err != nil {
		return err
	}
	if err := v.ftl.Write(lba, cover); err != nil {
		return err
	}
	addr, err := v.ftl.Lookup(lba)
	if err != nil {
		return err
	}
	if _, err := v.hider.Hide(addr, payload, v.epoch(addr)); err != nil {
		return err
	}
	v.valid[h] = true
	v.dirty = true
	return nil
}

// HiddenWrite stores a hidden sector (1 <= h <= HiddenCapacity), up to
// HiddenSectorBytes long.
func (v *Volume) HiddenWrite(h int, data []byte) error {
	if h == superSector {
		return ErrSectorReserved
	}
	if h < firstUserSec || h >= v.cfg.HiddenSectors {
		return ErrHiddenRange
	}
	if len(data) > v.HiddenSectorBytes() {
		return fmt.Errorf("stegfs: hidden sector payload %d bytes exceeds %d", len(data), v.HiddenSectorBytes())
	}
	padded := make([]byte, v.HiddenSectorBytes())
	copy(padded, data)
	return v.hiddenWriteAt(h, v.anchors[h], padded)
}

// HiddenRead returns a hidden sector's payload.
func (v *Volume) HiddenRead(h int) ([]byte, error) {
	if h == superSector {
		return nil, ErrSectorReserved
	}
	if h < firstUserSec || h >= v.cfg.HiddenSectors {
		return nil, ErrHiddenRange
	}
	if !v.valid[h] {
		return nil, ErrHiddenInvalid
	}
	return v.hiddenReadAt(v.anchors[h])
}

// HiddenRefresh re-embeds a hidden sector onto fresh cells by rewriting
// its cover sector in place. §8 recommends refreshing hidden data every
// few months on worn devices: retention decay erodes the margin between a
// parked cell and its threshold, and a refresh restores it in full.
func (v *Volume) HiddenRefresh(h int) error {
	if h == superSector {
		return ErrSectorReserved
	}
	if h < firstUserSec || h >= v.cfg.HiddenSectors {
		return ErrHiddenRange
	}
	if !v.valid[h] {
		return ErrHiddenInvalid
	}
	payload, err := v.hiddenReadAt(v.anchors[h])
	if err != nil {
		return fmt.Errorf("stegfs: refreshing hidden sector %d: %w", h, err)
	}
	return v.hiddenWriteAt(h, v.anchors[h], payload)
}

// HiddenErase invalidates a hidden sector (its bits remain until the cover
// migrates; use PublicWrite on the anchor to scrub immediately).
func (v *Volume) HiddenErase(h int) error {
	if h == superSector {
		return ErrSectorReserved
	}
	if h < firstUserSec || h >= v.cfg.HiddenSectors {
		return ErrHiddenRange
	}
	if v.valid[h] {
		v.valid[h] = false
		v.dirty = true
	}
	return nil
}

// Sync persists the validity bitmap into the hidden superblock.
func (v *Volume) Sync() error {
	payload := v.encodeSuperblock()
	if err := v.hiddenWriteAt(superSector, v.anchors[superSector], payload); err != nil {
		return err
	}
	v.dirty = false
	return nil
}

// Dirty reports whether hidden state awaits a Sync.
func (v *Volume) Dirty() bool { return v.dirty }

func (v *Volume) encodeSuperblock() []byte {
	payload := make([]byte, v.HiddenSectorBytes())
	binary.BigEndian.PutUint16(payload[0:2], superMagic)
	bits := payload[superHdrLen:]
	for h, ok := range v.valid {
		if ok && h != superSector {
			bits[h/8] |= 1 << uint(7-h%8)
		}
	}
	tag := seal.Sum(v.keys.MAC, payload[superHdrLen:])
	copy(payload[2:superHdrLen], tag[:4])
	return payload
}

// Remount re-derives all hidden-volume state (hider, anchors, validity)
// from the master key and the superblock — demonstrating that the hidden
// volume needs no plaintext metadata. It fails with ErrBadSuperblock if
// the key is wrong or the superblock was never synced, leaving the volume
// unchanged.
func (v *Volume) Remount(masterKey []byte) error {
	hider, err := core.NewHider(v.chip, masterKey, v.cfg.Hiding)
	if err != nil {
		return err
	}
	probe := *v
	probe.hider = hider
	probe.keys = seal.DeriveKeys(masterKey)
	probe.deriveAnchors()
	payload, err := probe.hiddenReadAt(probe.anchors[superSector])
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSuperblock, err)
	}
	if binary.BigEndian.Uint16(payload[0:2]) != superMagic {
		return ErrBadSuperblock
	}
	tag := seal.Sum(probe.keys.MAC, payload[superHdrLen:])
	for i := 0; i < 4; i++ {
		if payload[2+i] != tag[i] {
			return ErrBadSuperblock
		}
	}
	bits := payload[superHdrLen:]
	for h := range v.valid {
		v.valid[h] = h != superSector && (bits[h/8]>>(7-uint(h%8)))&1 == 1
	}
	v.hider = probe.hider
	v.keys = probe.keys
	v.anchors = probe.anchors
	v.anchorH = probe.anchorH
	v.dirty = false
	return nil
}

// FTLStats exposes the public volume's translation-layer statistics.
func (v *Volume) FTLStats() ftl.Stats { return v.ftl.Stats() }
