package stegfs

import (
	"encoding/binary"
	"testing"

	"stashflash/internal/seal"
)

// FuzzSuperblockParse hammers the one mount-path function that consumes
// fully untrusted bytes: a stolen or corrupted device hands Remount an
// arbitrary candidate superblock, and parseSuperblock must reject it with
// ErrBadSuperblock — never panic, over-read, or accept a forged bitmap.
// Seed corpus in testdata/fuzz; `make fuzz-smoke` runs this in CI.
func FuzzSuperblockParse(f *testing.F) {
	macKey := []byte("fuzz-mac-key-0123456789abcdef###")
	// Seeds: empty, header-only garbage, and a genuinely valid superblock
	// so the fuzzer starts on both sides of the accept/reject boundary.
	f.Add([]byte{}, uint16(8))
	f.Add([]byte{0x5A, 0x5F, 0, 0, 0, 0, 0xFF}, uint16(8))
	valid := make([]byte, 16)
	binary.BigEndian.PutUint16(valid[0:2], superMagic)
	valid[6] = 0x5A // sectors 1,3,4,6 valid
	tag := seal.Sum(macKey, valid[superHdrLen:])
	copy(valid[2:superHdrLen], tag[:4])
	f.Add(valid, uint16(8))

	f.Fuzz(func(t *testing.T, payload []byte, nSectors uint16) {
		n := int(nSectors)
		got, err := parseSuperblock(payload, macKey, n)
		if err != nil {
			if got != nil {
				t.Fatal("error return carried a validity bitmap")
			}
			return
		}
		// Accepted: the bitmap must be exactly nSectors wide, sector 0
		// (the superblock itself) never valid, and the payload must carry
		// a MAC this key actually produces — i.e. acceptance implies the
		// payload re-encodes to the same truncated tag.
		if len(got) != n {
			t.Fatalf("accepted bitmap has %d sectors, want %d", len(got), n)
		}
		if n > 0 && got[superSector] {
			t.Fatal("superblock sector marked valid")
		}
		retag := seal.Sum(macKey, payload[superHdrLen:])
		for i := 0; i < 4; i++ {
			if payload[2+i] != retag[i] {
				t.Fatal("accepted payload fails MAC recomputation")
			}
		}
	})
}
