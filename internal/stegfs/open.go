package stegfs

import (
	"stashflash/internal/ftl"
	"stashflash/internal/nand"
)

// Volume persistence: a volume's durable state lives in two places — the
// device's analog cell state (persisted by nand.Chip Save/Load) and the
// FTL's logical-to-physical map, which ftl.New builds empty and the FTL
// keeps in memory only. FTLState exports that map and Open rebuilds a
// volume from a restored device plus the exported map, then proves the
// master key against the on-flash superblock via Remount. Nothing else
// needs saving: scheme, keys, anchors and the validity bitmap all
// re-derive from the key and the flash contents.

// FTLState snapshots the volume's translation layer for persistence.
// Capture it only when the volume is quiescent and synced (Dirty()
// false), or the snapshot may disagree with the flash.
func (v *Volume) FTLState() ftl.State { return v.ftl.State() }

// Open rebuilds a volume over a device whose flash already holds one:
// same keys, same Config shape as the original Create, plus the FTL
// snapshot taken at save time. A wrong master key fails with
// ErrBadSuperblock exactly as Remount does; a snapshot that does not fit
// the device geometry fails typed from ftl.SetState. The mount-time
// recovery pass runs as part of the open, so a volume saved mid-hide
// comes back fully revealed or cleanly absent, never half-alive.
func Open(dev nand.Device, masterKey, publicKey []byte, cfg Config, st ftl.State) (*Volume, error) {
	v, err := Create(dev, masterKey, publicKey, cfg)
	if err != nil {
		return nil, err
	}
	if err := v.ftl.SetState(st); err != nil {
		return nil, err
	}
	if err := v.Remount(masterKey); err != nil {
		return nil, err
	}
	return v, nil
}
