package stegfs

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"stashflash/internal/ftl"
	"stashflash/internal/nand"
)

func newVolume(t *testing.T, seed uint64) *Volume {
	t.Helper()
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(20, 8, 2040), seed)
	cfg := DefaultConfig(chip.Geometry())
	v, err := Create(chip, []byte("hidden-master"), []byte("public-master"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func randSector(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestPublicVolumeRoundTrip(t *testing.T) {
	v := newVolume(t, 1)
	rng := rand.New(rand.NewPCG(1, 1))
	want := map[int][]byte{}
	for _, lba := range []int{0, 3, v.PublicCapacity() - 1} {
		data := randSector(rng, v.PublicSectorBytes())
		want[lba] = data
		if err := v.PublicWrite(lba, data); err != nil {
			t.Fatal(err)
		}
	}
	for lba, data := range want {
		got, err := v.PublicRead(lba)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("public lba %d mismatched", lba)
		}
	}
}

func TestHiddenVolumeRoundTrip(t *testing.T) {
	v := newVolume(t, 2)
	secret := []byte("hidden sector!")
	if err := v.HiddenWrite(1, secret); err != nil {
		t.Fatal(err)
	}
	got, err := v.HiddenRead(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(secret)], secret) {
		t.Fatalf("hidden read %q", got[:len(secret)])
	}
}

func TestHiddenSectorBounds(t *testing.T) {
	v := newVolume(t, 3)
	if err := v.HiddenWrite(0, []byte("x")); err != ErrSectorReserved {
		t.Errorf("superblock write: %v", err)
	}
	if _, err := v.HiddenRead(0); err != ErrSectorReserved {
		t.Errorf("superblock read: %v", err)
	}
	if err := v.HiddenWrite(-1, []byte("x")); err != ErrHiddenRange {
		t.Errorf("negative sector: %v", err)
	}
	if err := v.HiddenWrite(v.HiddenCapacity()+1, []byte("x")); err != ErrHiddenRange {
		t.Errorf("out of range: %v", err)
	}
	if _, err := v.HiddenRead(2); err != ErrHiddenInvalid {
		t.Errorf("unwritten hidden read: %v", err)
	}
	big := make([]byte, v.HiddenSectorBytes()+1)
	if err := v.HiddenWrite(1, big); err == nil {
		t.Error("oversized hidden sector accepted")
	}
}

func TestHiddenSurvivesPublicOverwrite(t *testing.T) {
	v := newVolume(t, 4)
	rng := rand.New(rand.NewPCG(4, 4))
	secret := []byte("survives rewrites")
	if err := v.HiddenWrite(1, secret); err != nil {
		t.Fatal(err)
	}
	lba := v.anchors[1]
	// The NU (with the volume mounted) rewrites the anchoring sector
	// repeatedly; §9.1: hiding is repeated on the newly written data.
	for i := 0; i < 5; i++ {
		if err := v.PublicWrite(lba, randSector(rng, v.PublicSectorBytes())); err != nil {
			t.Fatal(err)
		}
	}
	got, err := v.HiddenRead(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(secret)], secret) {
		t.Fatal("hidden data lost across public overwrites")
	}
}

func TestHiddenSurvivesGC(t *testing.T) {
	v := newVolume(t, 5)
	rng := rand.New(rand.NewPCG(5, 5))
	secrets := map[int][]byte{}
	for h := 1; h <= 5; h++ {
		s := randSector(rng, v.HiddenSectorBytes())
		secrets[h] = s
		if err := v.HiddenWrite(h, s); err != nil {
			t.Fatal(err)
		}
	}
	// Churn the public volume hard enough to force repeated GC over the
	// anchored pages.
	for i := 0; i < 4*v.PublicCapacity(); i++ {
		lba := rng.IntN(v.PublicCapacity())
		if h, anchored := v.anchorH[lba]; anchored && v.valid[h] {
			continue // hammer everything else
		}
		if err := v.PublicWrite(lba, randSector(rng, v.PublicSectorBytes())); err != nil {
			t.Fatal(err)
		}
	}
	if v.FTLStats().GCCopies == 0 {
		t.Fatal("workload produced no GC copies; test is vacuous")
	}
	for h, want := range secrets {
		got, err := v.HiddenRead(h)
		if err != nil {
			t.Fatalf("hidden sector %d after GC: %v", h, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("hidden sector %d corrupted by GC migration", h)
		}
	}
}

func TestSyncAndRemount(t *testing.T) {
	v := newVolume(t, 6)
	secret := []byte("persistent")
	if err := v.HiddenWrite(3, secret); err != nil {
		t.Fatal(err)
	}
	if !v.Dirty() {
		t.Fatal("write did not mark volume dirty")
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	if v.Dirty() {
		t.Fatal("sync left volume dirty")
	}
	// Forget in-memory hidden state; recover it from key + superblock.
	for h := range v.valid {
		v.valid[h] = false
	}
	if err := v.Remount([]byte("hidden-master")); err != nil {
		t.Fatal(err)
	}
	got, err := v.HiddenRead(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(secret)], secret) {
		t.Fatal("remount lost hidden sector")
	}
	if _, err := v.HiddenRead(2); err != ErrHiddenInvalid {
		t.Errorf("sector 2 should be invalid after remount: %v", err)
	}
}

func TestRemountWrongKeyFails(t *testing.T) {
	v := newVolume(t, 7)
	if err := v.HiddenWrite(1, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Remount([]byte("not the key")); err == nil {
		t.Fatal("wrong key remounted successfully")
	}
	// The correct key must still work afterwards.
	if err := v.Remount([]byte("hidden-master")); err != nil {
		t.Fatalf("correct key failed after bad attempt: %v", err)
	}
}

func TestHiddenErase(t *testing.T) {
	v := newVolume(t, 8)
	if err := v.HiddenWrite(1, []byte("gone soon")); err != nil {
		t.Fatal(err)
	}
	if err := v.HiddenErase(1); err != nil {
		t.Fatal(err)
	}
	if _, err := v.HiddenRead(1); err != ErrHiddenInvalid {
		t.Errorf("read after erase: %v", err)
	}
	if err := v.HiddenErase(0); err != ErrSectorReserved {
		t.Errorf("superblock erase: %v", err)
	}
}

func TestKeylessOperationEventuallyDestroysHidden(t *testing.T) {
	v := newVolume(t, 9)
	rng := rand.New(rand.NewPCG(9, 9))
	secret := []byte("doomed without key")
	if err := v.HiddenWrite(1, secret); err != nil {
		t.Fatal(err)
	}
	// Simulate keyless operation: a plain FTL write to the anchor LBA
	// (no hidden carry-over, no migration hook) — i.e. what happens when
	// the device runs without the hiding firmware loaded (§9.2).
	lba := v.anchors[1]
	cover := randSector(rng, v.PublicSectorBytes())
	if err := v.ftl.Write(lba, cover); err != nil {
		t.Fatal(err)
	}
	got, err := v.HiddenRead(1)
	if err == nil && bytes.Equal(got[:len(secret)], secret) {
		t.Fatal("hidden data survived a keyless overwrite of its cover; the paper says it must not")
	}
}

func TestCreateValidation(t *testing.T) {
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(20, 8, 2040), 10)
	cfg := DefaultConfig(chip.Geometry())
	cfg.HiddenSectors = 1
	if _, err := Create(chip, []byte("k"), []byte("p"), cfg); err == nil {
		t.Error("1-sector volume accepted")
	}
	cfg = DefaultConfig(chip.Geometry())
	cfg.HiddenSectors = 1 << 20
	if _, err := Create(chip, []byte("k"), []byte("p"), cfg); err == nil {
		t.Error("absurd hidden sector count accepted")
	}
	cfg = DefaultConfig(chip.Geometry())
	cfg.FTL = ftl.Config{OverProvisionBlocks: 0}
	if _, err := Create(chip, []byte("k"), []byte("p"), cfg); err == nil {
		t.Error("bad FTL config accepted")
	}
}

func TestHiddenRefresh(t *testing.T) {
	v := newVolume(t, 11)
	secret := []byte("needs refreshing")
	if err := v.HiddenWrite(1, secret); err != nil {
		t.Fatal(err)
	}
	before, err := v.ftl.Lookup(v.anchors[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := v.HiddenRefresh(1); err != nil {
		t.Fatal(err)
	}
	after, err := v.ftl.Lookup(v.anchors[1])
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("refresh did not move the cover to fresh cells")
	}
	got, err := v.HiddenRead(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(secret)], secret) {
		t.Fatal("refresh corrupted the payload")
	}
	// Refresh of an invalid sector fails cleanly.
	if err := v.HiddenRefresh(2); err != ErrHiddenInvalid {
		t.Errorf("refresh of invalid sector: %v", err)
	}
	if err := v.HiddenRefresh(0); err != ErrSectorReserved {
		t.Errorf("refresh of superblock: %v", err)
	}
}
