package ftl

import (
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

func newFTL(t *testing.T, seed uint64) (*FTL, *nand.Chip) {
	t.Helper()
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(16, 8, 256), seed)
	f, err := New(chip, RawStore{Dev: chip}, DefaultConfig(chip.Geometry()), nil)
	if err != nil {
		t.Fatal(err)
	}
	return f, chip
}

// sameSector compares sectors tolerating the raw NAND bit-error floor:
// RawStore bypasses ECC, so ~3e-5 BER occasionally flips a bit.
func sameSector(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	diff := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			diff += int(x & 1)
			x >>= 1
		}
	}
	return diff <= 3
}

func sector(f *FTL, rng *rand.Rand) []byte {
	b := make([]byte, f.SectorBytes())
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, _ := newFTL(t, 1)
	rng := rand.New(rand.NewPCG(1, 1))
	want := map[int][]byte{}
	for _, lba := range []int{0, 5, 17, f.Capacity() - 1} {
		data := sector(f, rng)
		want[lba] = data
		if err := f.Write(lba, data); err != nil {
			t.Fatal(err)
		}
	}
	for lba, data := range want {
		got, err := f.Read(lba)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSector(got, data) {
			t.Fatalf("lba %d mismatched", lba)
		}
	}
}

func TestOverwriteRemaps(t *testing.T) {
	f, _ := newFTL(t, 2)
	rng := rand.New(rand.NewPCG(2, 2))
	first := sector(f, rng)
	second := sector(f, rng)
	if err := f.Write(3, first); err != nil {
		t.Fatal(err)
	}
	a1, _ := f.Lookup(3)
	if err := f.Write(3, second); err != nil {
		t.Fatal(err)
	}
	a2, _ := f.Lookup(3)
	if a1 == a2 {
		t.Fatal("overwrite did not remap to a fresh page")
	}
	got, err := f.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSector(got, second) {
		t.Fatal("read returned stale data")
	}
}

func TestReadErrors(t *testing.T) {
	f, _ := newFTL(t, 3)
	if _, err := f.Read(-1); err != ErrLBARange {
		t.Errorf("got %v", err)
	}
	if _, err := f.Read(f.Capacity()); err != ErrLBARange {
		t.Errorf("got %v", err)
	}
	if _, err := f.Read(0); err != ErrUnwritten {
		t.Errorf("got %v", err)
	}
}

func TestTrim(t *testing.T) {
	f, _ := newFTL(t, 4)
	rng := rand.New(rand.NewPCG(4, 4))
	if err := f.Write(7, sector(f, rng)); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(7); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(7); err != ErrUnwritten {
		t.Errorf("read after trim: %v", err)
	}
	// Trimming twice is harmless.
	if err := f.Trim(7); err != nil {
		t.Fatal(err)
	}
}

// Sustained random overwrites must trigger GC and keep all live data
// intact — the core FTL correctness property.
func TestGCPreservesData(t *testing.T) {
	f, _ := newFTL(t, 5)
	rng := rand.New(rand.NewPCG(5, 5))
	live := make(map[int][]byte)
	hot := f.Capacity() / 2 // overwrite pressure on half the LBAs
	for i := 0; i < 6*f.Capacity(); i++ {
		lba := rng.IntN(hot)
		data := sector(f, rng)
		if err := f.Write(lba, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		live[lba] = data
	}
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("workload never triggered GC; test is vacuous")
	}
	if st.WriteAmplification < 1 {
		t.Fatalf("write amplification %v < 1", st.WriteAmplification)
	}
	for lba, want := range live {
		got, err := f.Read(lba)
		if err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !sameSector(got, want) {
			t.Fatalf("lba %d corrupted after GC", lba)
		}
	}
}

func TestDeviceFull(t *testing.T) {
	f, _ := newFTL(t, 6)
	rng := rand.New(rand.NewPCG(6, 6))
	for lba := 0; lba < f.Capacity(); lba++ {
		if err := f.Write(lba, sector(f, rng)); err != nil {
			t.Fatalf("fill write %d: %v", lba, err)
		}
	}
	// Device full of valid data: overwrites must still succeed (they
	// invalidate as they go).
	for i := 0; i < f.Capacity(); i++ {
		if err := f.Write(i%f.Capacity(), sector(f, rng)); err != nil {
			t.Fatalf("overwrite on full device: %v", err)
		}
	}
}

func TestWearLeveling(t *testing.T) {
	f, chip := newFTL(t, 7)
	rng := rand.New(rand.NewPCG(7, 7))
	// Hammer a tiny hot set; wear-aware allocation should still spread
	// erases across many blocks.
	for i := 0; i < 20*f.Capacity(); i++ {
		if err := f.Write(rng.IntN(4), sector(f, rng)); err != nil {
			t.Fatal(err)
		}
	}
	worn := 0
	for b := 0; b < chip.Geometry().Blocks; b++ {
		if chip.PEC(b) > 0 {
			worn++
		}
	}
	if worn < chip.Geometry().Blocks/2 {
		t.Errorf("only %d/%d blocks ever erased; wear is pathologically concentrated",
			worn, chip.Geometry().Blocks)
	}
}

type recordingHook struct{ moves int }

func (h *recordingHook) PageMoved(lba int, src, dst nand.PageAddr) error {
	h.moves++
	return nil
}

func TestMigrationHookRuns(t *testing.T) {
	chip := nand.NewChip(nand.ModelA().ScaleGeometry(16, 8, 256), 8)
	hook := &recordingHook{}
	f, err := New(chip, RawStore{Dev: chip}, DefaultConfig(chip.Geometry()), hook)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 8*f.Capacity(); i++ {
		if err := f.Write(rng.IntN(f.Capacity()*3/4), sector(f, rng)); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.GCCopies == 0 {
		t.Fatal("no GC copies; test is vacuous")
	}
	if int64(hook.moves) != st.GCCopies {
		t.Fatalf("hook saw %d moves, FTL made %d copies", hook.moves, st.GCCopies)
	}
}

func TestWriteValidation(t *testing.T) {
	f, _ := newFTL(t, 9)
	if err := f.Write(0, []byte{1, 2, 3}); err == nil {
		t.Error("short sector accepted")
	}
	if err := f.Write(-1, make([]byte, f.SectorBytes())); err != ErrLBARange {
		t.Errorf("got %v", err)
	}
	if err := f.Trim(f.Capacity()); err != ErrLBARange {
		t.Errorf("got %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	chip := nand.NewChip(nand.TestModel(), 10)
	if _, err := New(chip, RawStore{Dev: chip}, Config{OverProvisionBlocks: 1}, nil); err == nil {
		t.Error("1 OP block accepted")
	}
	if _, err := New(chip, RawStore{Dev: chip}, Config{OverProvisionBlocks: 1 << 20}, nil); err == nil {
		t.Error("absurd OP accepted")
	}
}
