package ftl

import (
	"fmt"

	"stashflash/internal/nand"
)

// State is the FTL's complete mapping snapshot, exported so a host can
// persist a volume's translation layer across process restarts (the
// device's analog state is persisted separately by nand.Chip Save/Load;
// the map alone is what New cannot reconstruct, since the FTL keeps it
// in memory only). The snapshot is plain data — gob/JSON friendly — and
// deep-copied both ways, so callers may hold it as long as they like.
type State struct {
	L2P          []nand.PageAddr
	Mapped       []bool
	P2L          [][]int
	Valid        []int
	Free         []int
	Retired      []bool
	RetiredCount int
	Active       int
	NextPg       int
	GCActive     int
	GCNextPg     int
	Writes       int64
	Copies       int64
	GCRuns       int64
	Erases       int64
}

// State snapshots the current mapping.
func (f *FTL) State() State {
	st := State{
		L2P:          append([]nand.PageAddr(nil), f.l2p...),
		Mapped:       append([]bool(nil), f.mapped...),
		P2L:          make([][]int, len(f.p2l)),
		Valid:        append([]int(nil), f.valid...),
		Free:         append([]int(nil), f.free...),
		Retired:      append([]bool(nil), f.retired...),
		RetiredCount: f.retiredCount,
		Active:       f.active,
		NextPg:       f.nextPg,
		GCActive:     f.gcActive,
		GCNextPg:     f.gcNextPg,
		Writes:       f.writes,
		Copies:       f.copies,
		GCRuns:       f.gcRuns,
		Erases:       f.erases,
	}
	for b := range f.p2l {
		st.P2L[b] = append([]int(nil), f.p2l[b]...)
	}
	return st
}

// SetState restores a snapshot taken from an FTL with the same geometry
// and over-provisioning. It validates shapes against the receiver (built
// by New over the restored device) and rejects mismatches typed.
func (f *FTL) SetState(st State) error {
	g := f.dev.Geometry()
	if len(st.L2P) != len(f.l2p) || len(st.Mapped) != len(f.mapped) {
		return fmt.Errorf("ftl: state capacity %d does not match %d logical sectors", len(st.L2P), len(f.l2p))
	}
	if len(st.P2L) != g.Blocks || len(st.Valid) != g.Blocks || len(st.Retired) != g.Blocks {
		return fmt.Errorf("ftl: state block count does not match geometry (%d blocks)", g.Blocks)
	}
	for b := range st.P2L {
		if len(st.P2L[b]) != g.PagesPerBlock {
			return fmt.Errorf("ftl: state block %d has %d page slots, geometry has %d",
				b, len(st.P2L[b]), g.PagesPerBlock)
		}
	}
	for _, a := range st.L2P {
		if err := g.Check(a); err != nil {
			return fmt.Errorf("ftl: state mapping: %w", err)
		}
	}
	for _, b := range st.Free {
		if b < 0 || b >= g.Blocks {
			return fmt.Errorf("ftl: state free block %d out of range", b)
		}
	}
	f.l2p = append([]nand.PageAddr(nil), st.L2P...)
	f.mapped = append([]bool(nil), st.Mapped...)
	f.p2l = make([][]int, len(st.P2L))
	for b := range st.P2L {
		f.p2l[b] = append([]int(nil), st.P2L[b]...)
	}
	f.valid = append([]int(nil), st.Valid...)
	f.free = append([]int(nil), st.Free...)
	f.retired = append([]bool(nil), st.Retired...)
	f.retiredCount = st.RetiredCount
	f.active = st.Active
	f.nextPg = st.NextPg
	f.gcActive = st.GCActive
	f.gcNextPg = st.GCNextPg
	f.writes = st.Writes
	f.copies = st.Copies
	f.gcRuns = st.GCRuns
	f.erases = st.Erases
	return nil
}
