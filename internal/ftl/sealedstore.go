package ftl

import (
	"stashflash/internal/nand"
	"stashflash/internal/seal"
)

// SealedStore wraps an inner PageStore with location-bound encryption:
// every payload is sealed to its physical page index and the block's
// current PEC (the page generation), so cover bits on flash are
// uniformly random and every GC relocation or rewrite re-encrypts
// naturally. This is the one shared implementation of the plumbing that
// ftl consumers and stegfs each used to hand-roll over a concrete chip;
// it is defined against nand.Device, so it works over any backend.
type SealedStore struct {
	// Dev supplies page geometry and per-block PEC for the seal nonce.
	Dev nand.Device
	// Inner performs the actual page I/O (RawStore, a Hider adapter, ...).
	Inner PageStore
	// Key is the encryption key (e.g. the public volume's NU credential).
	Key []byte
}

// DataBytes returns the inner store's payload size.
func (s SealedStore) DataBytes() int { return s.Inner.DataBytes() }

// WritePage seals the payload to its location and writes it through.
func (s SealedStore) WritePage(a nand.PageAddr, data []byte) error {
	ct := seal.EncryptPage(s.Key, nand.PageIndex(s.Dev.Geometry(), a),
		uint64(s.Dev.PEC(a.Block)), data)
	return s.Inner.WritePage(a, ct)
}

// ReadPage reads through the inner store and unseals (the seal is an
// XOR stream, so encrypt and decrypt are the same operation).
func (s SealedStore) ReadPage(a nand.PageAddr) ([]byte, error) {
	ct, err := s.Inner.ReadPage(a)
	if err != nil {
		return nil, err
	}
	return seal.EncryptPage(s.Key, nand.PageIndex(s.Dev.Geometry(), a),
		uint64(s.Dev.PEC(a.Block)), ct), nil
}
