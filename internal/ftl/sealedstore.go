package ftl

import (
	"stashflash/internal/nand"
	"stashflash/internal/seal"
)

// SealedStore wraps an inner PageStore with location-bound encryption:
// every payload is sealed to its physical page index and the block's
// current PEC (the page generation), so cover bits on flash are
// uniformly random and every GC relocation or rewrite re-encrypts
// naturally. This is the one shared implementation of the plumbing that
// ftl consumers and stegfs each used to hand-roll over a concrete chip;
// it is defined against nand.Device, so it works over any backend.
// A store built with NewSealedStore carries a cached key schedule and a
// reusable seal buffer, so steady-state writes expand no AES keys and
// allocate nothing; like the device underneath, such a store is then not
// safe for concurrent use. A plain struct literal still works and falls
// back to per-call sealing.
type SealedStore struct {
	// Dev supplies page geometry and per-block PEC for the seal nonce.
	Dev nand.Device
	// Inner performs the actual page I/O (RawStore, a Hider adapter, ...).
	Inner PageStore
	// Key is the encryption key (e.g. the public volume's NU credential).
	Key []byte

	sealer *seal.Sealer
	buf    []byte
}

// NewSealedStore builds a sealed store with the AES key schedule expanded
// once and a write buffer sized to the inner store's payload.
func NewSealedStore(dev nand.Device, inner PageStore, key []byte) SealedStore {
	return SealedStore{
		Dev:    dev,
		Inner:  inner,
		Key:    key,
		sealer: seal.NewSealer(key),
		buf:    make([]byte, inner.DataBytes()),
	}
}

// DataBytes returns the inner store's payload size.
func (s SealedStore) DataBytes() int { return s.Inner.DataBytes() }

// WritePage seals the payload to its location and writes it through.
func (s SealedStore) WritePage(a nand.PageAddr, data []byte) error {
	page, epoch := nand.PageIndex(s.Dev.Geometry(), a), uint64(s.Dev.PEC(a.Block))
	if s.sealer != nil && len(data) <= len(s.buf) {
		s.sealer.EncryptPageInto(s.buf, page, epoch, data)
		return s.Inner.WritePage(a, s.buf[:len(data)])
	}
	return s.Inner.WritePage(a, seal.EncryptPage(s.Key, page, epoch, data))
}

// ReadPage reads through the inner store and unseals (the seal is an
// XOR stream, so encrypt and decrypt are the same operation).
func (s SealedStore) ReadPage(a nand.PageAddr) ([]byte, error) {
	ct, err := s.Inner.ReadPage(a)
	if err != nil {
		return nil, err
	}
	page, epoch := nand.PageIndex(s.Dev.Geometry(), a), uint64(s.Dev.PEC(a.Block))
	if s.sealer != nil {
		s.sealer.EncryptPageInto(ct, page, epoch, ct) // ct is ours: unseal in place
		return ct, nil
	}
	return seal.EncryptPage(s.Key, page, epoch, ct), nil
}
