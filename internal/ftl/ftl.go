// Package ftl implements a page-mapped flash translation layer over any
// nand.Device backend: logical block addresses map to physical pages, writes
// append to an active block, garbage collection reclaims invalidated
// pages, and erase counts are balanced across blocks.
//
// The FTL matters to VT-HI for one specific reason the paper calls out in
// §5.1: firmware moves data around (GC, wear leveling, cold-data
// migration), and any move of a page that carries a hidden payload
// destroys that payload unless the hiding layer re-embeds it into the new
// location first. The MigrationHook interface is that re-embedding seam;
// internal/stegfs plugs into it.
package ftl

import (
	"errors"
	"fmt"

	"stashflash/internal/nand"
)

// PageStore abstracts how page-sized data reaches the device, so the FTL
// works both raw (tests, plain SSD behaviour) and through VT-HI's public
// ECC layout (internal/core.Hider satisfies the same shape via an adapter).
type PageStore interface {
	// DataBytes is the usable payload per page.
	DataBytes() int
	// WritePage stores data (exactly DataBytes) to an erased page.
	WritePage(a nand.PageAddr, data []byte) error
	// ReadPage retrieves a page's payload.
	ReadPage(a nand.PageAddr) ([]byte, error)
}

// RawStore is the trivial PageStore writing full raw pages to any
// device backend.
type RawStore struct{ Dev nand.Device }

// DataBytes returns the raw page size.
func (s RawStore) DataBytes() int { return s.Dev.Geometry().PageBytes }

// WritePage programs the page directly.
func (s RawStore) WritePage(a nand.PageAddr, data []byte) error {
	return s.Dev.ProgramPage(a, data)
}

// ReadPage reads the page directly.
func (s RawStore) ReadPage(a nand.PageAddr) ([]byte, error) {
	return s.Dev.ReadPage(a)
}

// MigrationHook observes valid-data relocations. PageMoved runs after the
// payload is written to dst and before src's block is erased — the only
// window in which hidden data riding on src can be re-embedded onto dst.
type MigrationHook interface {
	PageMoved(lba int, src, dst nand.PageAddr) error
}

// Config tunes the FTL.
type Config struct {
	// OverProvisionBlocks is the number of physical blocks withheld from
	// the logical capacity for GC headroom; minimum 2 (one active, one
	// GC spare).
	OverProvisionBlocks int
	// GCThreshold triggers garbage collection when the free-block pool
	// drops to this size; minimum 1.
	GCThreshold int
	// WearDelta is the PEC spread beyond which victim selection starts
	// preferring colder blocks even at some extra copy cost.
	WearDelta int
}

// DefaultConfig sizes over-provisioning at roughly 7% of blocks.
func DefaultConfig(g nand.Geometry) Config {
	op := g.Blocks / 14
	if op < 2 {
		op = 2
	}
	return Config{OverProvisionBlocks: op, GCThreshold: 1, WearDelta: 200}
}

const unmapped = -1

// FTL is a page-mapped translation layer. Not safe for concurrent use.
type FTL struct {
	dev   nand.Device
	store PageStore
	cfg   Config
	hook  MigrationHook

	l2p []nand.PageAddr // lba -> physical page
	p2l [][]int         // block -> page -> lba (or unmapped)

	valid []int // per-block valid page count
	free  []int // erased blocks available

	// Host and GC writes use separate frontiers: mixing relocated (cold)
	// data into the host (hot) stream inflates future GC work, and a
	// separate GC frontier also makes reclamation non-recursive.
	active   int // block accepting host writes; -1 before first write
	nextPg   int
	gcActive int // block accepting GC relocations; -1 until first GC
	gcNextPg int

	// retired marks blocks permanently removed from circulation after a
	// failed erase or after being found grown bad in the free pool. A
	// grown-bad block holding valid pages is NOT retired immediately: it
	// stays readable and victim-eligible until GC evacuates it.
	retired      []bool
	retiredCount int

	mapped []bool
	writes int64 // host sectors written
	copies int64 // GC relocations
	gcRuns int64
	erases int64
}

// writeRetries bounds how many fresh frontier blocks a single logical
// write may burn through when programs keep failing.
const writeRetries = 4

// mediaErr reports a failure a retry on a fresh block can cure: the
// program failed (growing its block bad) or the block was already bad.
func mediaErr(err error) bool {
	return errors.Is(err, nand.ErrProgramFailed) || errors.Is(err, nand.ErrBadBlock)
}

// Errors surfaced by FTL operations.
var (
	ErrLBARange   = errors.New("ftl: logical address out of range")
	ErrUnwritten  = errors.New("ftl: logical address never written")
	ErrDeviceFull = errors.New("ftl: no free blocks (device full)")
)

// New builds an FTL on a device, writing through store. A nil hook is
// valid.
func New(dev nand.Device, store PageStore, cfg Config, hook MigrationHook) (*FTL, error) {
	g := dev.Geometry()
	if cfg.OverProvisionBlocks < 2 {
		return nil, fmt.Errorf("ftl: need at least 2 over-provisioned blocks, got %d", cfg.OverProvisionBlocks)
	}
	if cfg.OverProvisionBlocks >= g.Blocks {
		return nil, fmt.Errorf("ftl: over-provisioning %d exceeds %d blocks", cfg.OverProvisionBlocks, g.Blocks)
	}
	if cfg.GCThreshold < 1 {
		cfg.GCThreshold = 1
	}
	lbas := (g.Blocks - cfg.OverProvisionBlocks) * g.PagesPerBlock
	f := &FTL{
		dev:      dev,
		store:    store,
		cfg:      cfg,
		hook:     hook,
		l2p:      make([]nand.PageAddr, lbas),
		p2l:      make([][]int, g.Blocks),
		valid:    make([]int, g.Blocks),
		retired:  make([]bool, g.Blocks),
		mapped:   make([]bool, lbas),
		active:   -1,
		nextPg:   g.PagesPerBlock, // force allocation on first write
		gcActive: -1,
		gcNextPg: g.PagesPerBlock,
	}
	for b := range f.p2l {
		f.p2l[b] = make([]int, g.PagesPerBlock)
		for p := range f.p2l[b] {
			f.p2l[b][p] = unmapped
		}
		f.free = append(f.free, b)
	}
	return f, nil
}

// Capacity returns the number of logical sectors the device exposes.
func (f *FTL) Capacity() int { return len(f.l2p) }

// SectorBytes returns the logical sector size.
func (f *FTL) SectorBytes() int { return f.store.DataBytes() }

// Stats reports FTL internals.
type Stats struct {
	HostWrites int64
	GCCopies   int64
	GCRuns     int64
	Erases     int64
	FreeBlocks int
	// RetiredBlocks counts blocks permanently removed from circulation
	// (grown bad and fully evacuated).
	RetiredBlocks int
	// WriteAmplification is (host + GC copies) / host writes.
	WriteAmplification float64
	MinPEC, MaxPEC     int
}

// Stats snapshots the counters.
func (f *FTL) Stats() Stats {
	s := Stats{
		HostWrites:    f.writes,
		GCCopies:      f.copies,
		GCRuns:        f.gcRuns,
		Erases:        f.erases,
		FreeBlocks:    len(f.free),
		RetiredBlocks: f.retiredCount,
	}
	if f.writes > 0 {
		s.WriteAmplification = float64(f.writes+f.copies) / float64(f.writes)
	}
	s.MinPEC, s.MaxPEC = f.wearSpread()
	return s
}

func (f *FTL) wearSpread() (min, max int) {
	g := f.dev.Geometry()
	min, max = int(^uint(0)>>1), 0
	for b := 0; b < g.Blocks; b++ {
		if f.retired[b] {
			continue // dead blocks stop cycling; don't let them pin min
		}
		pec := f.dev.PEC(b)
		if pec < min {
			min = pec
		}
		if pec > max {
			max = pec
		}
	}
	if min > max {
		min, max = 0, 0
	}
	return min, max
}

// Lookup returns the physical page currently backing lba.
func (f *FTL) Lookup(lba int) (nand.PageAddr, error) {
	if lba < 0 || lba >= len(f.l2p) {
		return nand.PageAddr{}, ErrLBARange
	}
	if !f.mapped[lba] {
		return nand.PageAddr{}, ErrUnwritten
	}
	return f.l2p[lba], nil
}

// Read returns the payload of a logical sector.
func (f *FTL) Read(lba int) ([]byte, error) {
	a, err := f.Lookup(lba)
	if err != nil {
		return nil, err
	}
	return f.store.ReadPage(a)
}

// Write stores a logical sector (exactly SectorBytes long), remapping it
// to a fresh physical page; the old copy is invalidated for GC.
func (f *FTL) Write(lba int, data []byte) error {
	if lba < 0 || lba >= len(f.l2p) {
		return ErrLBARange
	}
	if len(data) != f.store.DataBytes() {
		return fmt.Errorf("ftl: sector is %d bytes, want %d", len(data), f.store.DataBytes())
	}
	var lastErr error
	for attempt := 0; attempt <= writeRetries; attempt++ {
		a, err := f.allocPage()
		if err != nil {
			return err
		}
		err = f.store.WritePage(a, data)
		if err == nil {
			f.commitMapping(lba, a)
			f.writes++
			return nil
		}
		if !mediaErr(err) {
			return err
		}
		// The program failed and grew the frontier block bad: abandon the
		// rest of that block and retry on a fresh one. The failed page was
		// never mapped, and the block's surviving valid pages stay
		// victim-eligible for GC evacuation.
		f.nextPg = f.dev.Geometry().PagesPerBlock
		lastErr = err
	}
	return lastErr
}

// Trim invalidates a logical sector without writing.
func (f *FTL) Trim(lba int) error {
	if lba < 0 || lba >= len(f.l2p) {
		return ErrLBARange
	}
	if f.mapped[lba] {
		f.invalidate(f.l2p[lba])
		f.mapped[lba] = false
	}
	return nil
}

func (f *FTL) invalidate(a nand.PageAddr) {
	if f.p2l[a.Block][a.Page] != unmapped {
		f.p2l[a.Block][a.Page] = unmapped
		f.valid[a.Block]--
	}
}

func (f *FTL) commitMapping(lba int, a nand.PageAddr) {
	if f.mapped[lba] {
		f.invalidate(f.l2p[lba])
	}
	f.l2p[lba] = a
	f.p2l[a.Block][a.Page] = lba
	f.valid[a.Block]++
	f.mapped[lba] = true
}

// allocPage returns the next writable host page, rotating blocks and
// triggering GC as needed.
func (f *FTL) allocPage() (nand.PageAddr, error) {
	g := f.dev.Geometry()
	if f.nextPg >= g.PagesPerBlock {
		// Reclaim until the free pool is above threshold plus the GC
		// reserve (or nothing more can be reclaimed).
		allowCold := true
		for len(f.free) <= f.cfg.GCThreshold+1 {
			if err := f.collect(allowCold); err != nil {
				break
			}
			// Static wear leveling may relocate one fully valid cold
			// block per allocation; letting it repeat would let GC
			// spin on net-zero reclaims.
			allowCold = false
		}
		// The host may never take GC's last reserve block while invalid
		// pages remain reclaimable: doing so deadlocks reclamation (GC
		// needs a free block to rotate its relocation frontier into).
		if len(f.free) <= 1 && f.hasReclaimable() {
			return nand.PageAddr{}, ErrDeviceFull
		}
		b, ok := f.popColdestFree()
		if !ok {
			return nand.PageAddr{}, ErrDeviceFull
		}
		f.active = b
		f.nextPg = 0
	}
	a := nand.PageAddr{Block: f.active, Page: f.nextPg}
	f.nextPg++
	return a, nil
}

// gcAllocPage returns the next writable relocation page. It draws from the
// free pool without triggering GC (the caller IS the GC).
func (f *FTL) gcAllocPage() (nand.PageAddr, error) {
	g := f.dev.Geometry()
	if f.gcNextPg >= g.PagesPerBlock {
		b, ok := f.popColdestFree()
		if !ok {
			return nand.PageAddr{}, ErrDeviceFull
		}
		f.gcActive = b
		f.gcNextPg = 0
	}
	a := nand.PageAddr{Block: f.gcActive, Page: f.gcNextPg}
	f.gcNextPg++
	return a, nil
}

// popColdestFree removes and returns the free block with the lowest PEC
// (wear-aware allocation). Grown bad blocks discovered in the free pool
// are retired on the spot instead of handed out.
func (f *FTL) popColdestFree() (int, bool) {
	kept := f.free[:0]
	for _, b := range f.free {
		if f.dev.IsBadBlock(b) {
			f.retire(b)
			continue
		}
		kept = append(kept, b)
	}
	f.free = kept
	if len(f.free) == 0 {
		return 0, false
	}
	best := 0
	for i := range f.free {
		if f.dev.PEC(f.free[i]) < f.dev.PEC(f.free[best]) {
			best = i
		}
	}
	b := f.free[best]
	f.free = append(f.free[:best], f.free[best+1:]...)
	return b, true
}

// collect runs one round of garbage collection: pick a victim, relocate
// its valid pages (running the migration hook for each), erase it.
// allowCold permits static wear leveling to choose a cold, fully valid
// victim (a net-zero reclaim, so callers must bound how often).
func (f *FTL) collect(allowCold bool) error {
	victim := f.pickVictim(allowCold)
	if victim < 0 {
		return ErrDeviceFull
	}
	f.gcRuns++
	g := f.dev.Geometry()
	for p := 0; p < g.PagesPerBlock; p++ {
		lba := f.p2l[victim][p]
		if lba == unmapped {
			continue
		}
		src := nand.PageAddr{Block: victim, Page: p}
		data, err := f.store.ReadPage(src)
		if err != nil {
			return err
		}
		for attempt := 0; ; attempt++ {
			dst, err := f.gcAllocPage()
			if err != nil {
				return err
			}
			werr := f.store.WritePage(dst, data)
			if werr == nil {
				f.commitMapping(lba, dst)
				f.copies++
				if f.hook != nil {
					if err := f.hook.PageMoved(lba, src, dst); err != nil {
						return err
					}
				}
				break
			}
			if !mediaErr(werr) || attempt >= writeRetries {
				return werr
			}
			// Relocation frontier went bad mid-copy: abandon it and pull
			// a fresh block for the remaining pages.
			f.gcNextPg = g.PagesPerBlock
		}
	}
	if err := f.dev.EraseBlock(victim); err != nil {
		if errors.Is(err, nand.ErrEraseFailed) || errors.Is(err, nand.ErrBadBlock) {
			// The victim's valid data is already evacuated; the block
			// leaves circulation instead of returning to the free pool.
			f.p2lReset(victim)
			f.retire(victim)
			return nil
		}
		return err
	}
	f.erases++
	f.p2lReset(victim)
	f.free = append(f.free, victim)
	return nil
}

// retire permanently removes a block from circulation.
func (f *FTL) retire(b int) {
	if !f.retired[b] {
		f.retired[b] = true
		f.retiredCount++
	}
}

func (f *FTL) p2lReset(b int) {
	for p := range f.p2l[b] {
		f.p2l[b][p] = unmapped
	}
	f.valid[b] = 0
}

// pickVictim chooses the GC victim: fewest valid pages wins (greedy), with
// the colder block preferred on ties so reclamation rotates across the
// device. Once the wear spread exceeds WearDelta, the coldest candidate
// wins outright even at a higher copy cost — static wear leveling that
// unsticks cold, fully-valid blocks.
func (f *FTL) pickVictim(allowCold bool) int {
	g := f.dev.Geometry()
	minPEC, maxPEC := f.wearSpread()
	forceCold := allowCold && maxPEC-minPEC > f.cfg.WearDelta && f.cfg.WearDelta > 0
	best := -1
	for b := 0; b < g.Blocks; b++ {
		if b == f.active || b == f.gcActive || f.isFree(b) || f.retired[b] {
			continue
		}
		if best < 0 {
			best = b
			continue
		}
		if forceCold {
			if f.dev.PEC(b) < f.dev.PEC(best) {
				best = b
			}
			continue
		}
		vb, vbest := f.valid[b], f.valid[best]
		if vb < vbest || (vb == vbest && f.dev.PEC(b) < f.dev.PEC(best)) {
			best = b
		}
	}
	if best >= 0 && f.valid[best] == g.PagesPerBlock && !forceCold {
		// Every candidate is fully valid: nothing reclaimable.
		return -1
	}
	return best
}

// hasReclaimable reports whether any non-frontier block holds at least one
// invalid page (i.e. GC could make progress given a free block).
func (f *FTL) hasReclaimable() bool {
	g := f.dev.Geometry()
	for b := 0; b < g.Blocks; b++ {
		if b == f.active || b == f.gcActive || f.isFree(b) || f.retired[b] {
			continue
		}
		if f.valid[b] < g.PagesPerBlock {
			return true
		}
	}
	return false
}

// IsRetired reports whether a block has been retired (diagnostics).
func (f *FTL) IsRetired(b int) bool { return f.retired[b] }

func (f *FTL) isFree(b int) bool {
	for _, fb := range f.free {
		if fb == b {
			return true
		}
	}
	return false
}

// ValidCount reports the number of valid pages in a block (diagnostics).
func (f *FTL) ValidCount(b int) int { return f.valid[b] }

// IsFreeBlock reports whether a block is in the free pool (diagnostics).
func (f *FTL) IsFreeBlock(b int) bool { return f.isFree(b) }

// ActiveBlocks returns the host and GC frontier blocks (diagnostics).
func (f *FTL) ActiveBlocks() (host, gc int) { return f.active, f.gcActive }
