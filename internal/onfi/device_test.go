package onfi

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

// twin builds two identical chip samples — one driven directly, one
// through the bus adapter — so tests can compare the adapter against the
// chip's own ground truth.
func twin(seed uint64) (*nand.Chip, *Device) {
	direct := nand.NewChip(nand.TestModel(), seed)
	adapted := nand.NewChip(nand.TestModel(), seed)
	return direct, NewDevice(adapted)
}

// TestDeviceReadRefSweep sweeps the read reference — integer and
// fractional levels, the §5.3 decode reads — and requires the SET-FEATURE
// (fine register) + READ path to return bit-identical pages to direct
// ReadPageRef calls at every threshold.
func TestDeviceReadRefSweep(t *testing.T) {
	direct, dev := twin(7)
	rng := rand.New(rand.NewPCG(7, 7))
	a := nand.PageAddr{Block: 1, Page: 2}
	data := randPage(rng, direct.Geometry().PageBytes)
	if err := direct.ProgramPage(a, data); err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramPage(a, data); err != nil {
		t.Fatal(err)
	}
	refs := []float64{10, 20.5, 33.7, 34, 34.05, 40, 47.25, 60}
	for _, ref := range refs {
		want, err := direct.ReadPageRef(a, ref)
		if err != nil {
			t.Fatalf("direct ReadPageRef(%v): %v", ref, err)
		}
		got, err := dev.ReadPageRef(a, ref)
		if err != nil {
			t.Fatalf("onfi ReadPageRef(%v): %v", ref, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("ref %v: bus read differs from direct read", ref)
		}
	}
	// The default-reference read must match too (and must not be
	// perturbed by the sweep having moved the bus register).
	want, err := direct.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dev.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("default-reference read differs from direct read")
	}
}

// TestDeviceProbeMatchesChip compares the vendor probe command against
// the chip's own per-cell characterisation.
func TestDeviceProbeMatchesChip(t *testing.T) {
	direct, dev := twin(11)
	rng := rand.New(rand.NewPCG(11, 11))
	a := nand.PageAddr{Block: 0, Page: 1}
	data := randPage(rng, direct.Geometry().PageBytes)
	if err := direct.ProgramPage(a, data); err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramPage(a, data); err != nil {
		t.Fatal(err)
	}
	want, err := direct.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dev.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("vendor probe differs from direct probe")
	}
}

// TestDevicePartialProgramLedger proves the adapter's PartialProgram is
// the §1 PROGRAM + RESET idiom at the array level: the chip ledger
// records a partial-programming pulse and no completed program.
func TestDevicePartialProgramLedger(t *testing.T) {
	chip := nand.NewChip(nand.TestModel(), 3)
	dev := NewDevice(chip)
	if err := dev.PartialProgram(nand.PageAddr{Block: 0, Page: 0}, []int{1, 5, 9}); err != nil {
		t.Fatal(err)
	}
	l := chip.Ledger()
	if l.PartialPrograms != 1 {
		t.Fatalf("PartialPrograms = %d, want 1", l.PartialPrograms)
	}
	if l.Programs != 0 {
		t.Fatalf("Programs = %d, want 0 (RESET must abort the PROGRAM)", l.Programs)
	}
}

// TestDeviceFineProgramMatchesChip drives the vendor fine-program command
// and requires the resulting cell levels to match a direct FineProgram.
func TestDeviceFineProgramMatchesChip(t *testing.T) {
	direct, dev := twin(13)
	a := nand.PageAddr{Block: 2, Page: 0}
	cells := []int{0, 3, 17, 64, 100}
	const target = 52.5
	if err := direct.FineProgram(a, cells, target); err != nil {
		t.Fatal(err)
	}
	if err := dev.FineProgram(a, cells, target); err != nil {
		t.Fatal(err)
	}
	want, err := direct.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dev.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("fine program via bus left different cell levels than direct call")
	}
}

// TestDeviceHealthAndCycle checks the vendor health and cycle commands
// against the chip's PEC/bad-block ground truth, including firmware-side
// rejection of negative cycle counts (the bus payload is unsigned).
func TestDeviceHealthAndCycle(t *testing.T) {
	direct, dev := twin(17)
	if err := direct.CycleBlock(1, 250); err != nil {
		t.Fatal(err)
	}
	if err := dev.CycleBlock(1, 250); err != nil {
		t.Fatal(err)
	}
	if got, want := dev.PEC(1), direct.PEC(1); got != want {
		t.Fatalf("PEC via health command = %d, direct = %d", got, want)
	}
	if dev.IsBadBlock(1) != direct.IsBadBlock(1) {
		t.Fatal("bad-block flag differs between health command and direct call")
	}
	err := dev.CycleBlock(1, -5)
	if !errors.Is(err, nand.ErrNegativeCount) {
		t.Fatalf("CycleBlock(-5) = %v, want ErrNegativeCount", err)
	}
	if got, want := dev.PEC(1), direct.PEC(1); got != want {
		t.Fatalf("rejected cycle changed PEC: %d vs %d", got, want)
	}
}

// errScript runs the same operation sequence against a device and
// returns the per-step error identities, classified against the typed
// error set, so direct and bus-adapted devices can be compared.
func errScript(t *testing.T, dev nand.VendorDevice, data []byte) []string {
	t.Helper()
	classify := func(err error) string {
		switch {
		case err == nil:
			return "nil"
		case errors.Is(err, nand.ErrPowerLoss):
			return "power-loss"
		case errors.Is(err, nand.ErrBadBlock):
			return "bad-block"
		case errors.Is(err, nand.ErrProgramFailed):
			return "program-failed"
		case errors.Is(err, nand.ErrEraseFailed):
			return "erase-failed"
		default:
			t.Fatalf("untyped error crossed the device boundary: %v", err)
			return ""
		}
	}
	var out []string
	a := nand.PageAddr{Block: 0, Page: 0}
	// Program fails (prob 1) and grows the block bad; the next program
	// sees the bad mark; the erase also fails under prob 1.
	out = append(out, classify(dev.ProgramPage(a, data)))
	out = append(out, classify(dev.ProgramPage(nand.PageAddr{Block: 0, Page: 1}, data)))
	out = append(out, classify(dev.EraseBlock(1)))
	// Power loss after one admitted pulse: pulse 1 lands, pulse 2 kills
	// the device, everything after returns power-loss until PowerCycle.
	nand.PlanOf(dev).ArmPowerLossAfterPP(1)
	b := nand.PageAddr{Block: 2, Page: 0}
	out = append(out, classify(dev.PartialProgram(b, []int{1, 2})))
	out = append(out, classify(dev.PartialProgram(b, []int{3, 4})))
	out = append(out, classify(dev.ProgramPage(nand.PageAddr{Block: 3, Page: 0}, data)))
	if pc, ok := dev.(interface{ PowerCycle() }); ok {
		pc.PowerCycle()
	} else {
		t.Fatal("device does not expose PowerCycle")
	}
	out = append(out, classify(dev.PartialProgram(b, []int{5})))
	return out
}

// TestDeviceTypedErrorParity runs an identical fault script on a direct
// chip and on the bus adapter under identical fault plans and requires
// every step to surface the same typed error through errors.Is: the
// adapter must not launder, wrap away, or re-class the failure taxonomy.
func TestDeviceTypedErrorParity(t *testing.T) {
	cfg := nand.FaultConfig{Seed: 99, ProgramFailProb: 1, EraseFailProb: 1}
	direct, dev := twin(23)
	direct.SetFaultPlan(nand.NewFaultPlan(cfg))
	dev.SetFaultPlan(nand.NewFaultPlan(cfg))
	rng := rand.New(rand.NewPCG(23, 23))
	data := randPage(rng, direct.Geometry().PageBytes)

	want := errScript(t, direct, data)
	got := errScript(t, dev, data)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: direct=%s onfi=%s (full: direct=%v onfi=%v)",
				i, want[i], got[i], want, got)
		}
	}
	if want[0] != "program-failed" || want[1] != "bad-block" || want[2] != "erase-failed" ||
		want[4] != "power-loss" || want[5] != "power-loss" || want[6] != "nil" {
		t.Fatalf("script did not exercise the expected taxonomy: %v", want)
	}
}

// TestDeviceNeighborPrograms checks the host-side firmware bitmap against
// the chip's ground truth across programs, a failed program (which still
// charges the page), an erase, and a failed erase (which must not forget
// the block's pages).
func TestDeviceNeighborPrograms(t *testing.T) {
	direct, dev := twin(31)
	rng := rand.New(rand.NewPCG(31, 31))
	g := direct.Geometry()
	data := randPage(rng, g.PageBytes)

	check := func(stage string) {
		t.Helper()
		for b := 0; b < g.Blocks; b++ {
			for p := 0; p < g.PagesPerBlock; p++ {
				a := nand.PageAddr{Block: b, Page: p}
				want, err := direct.NeighborPrograms(a)
				if err != nil {
					t.Fatal(err)
				}
				got, err := dev.NeighborPrograms(a)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s: NeighborPrograms(%v) = %d, chip says %d", stage, a, got, want)
				}
			}
		}
	}

	check("fresh")
	for _, a := range []nand.PageAddr{{Block: 0, Page: 0}, {Block: 0, Page: 2}, {Block: 1, Page: 3}} {
		if err := direct.ProgramPage(a, data); err != nil {
			t.Fatal(err)
		}
		if err := dev.ProgramPage(a, data); err != nil {
			t.Fatal(err)
		}
	}
	check("programmed")

	// A program that reports FAIL leaves the page charged: the bitmap
	// must record it, exactly as the chip does.
	failCfg := nand.FaultConfig{Seed: 5, ProgramFailProb: 1}
	direct.SetFaultPlan(nand.NewFaultPlan(failCfg))
	dev.SetFaultPlan(nand.NewFaultPlan(failCfg))
	fa := nand.PageAddr{Block: 2, Page: 1}
	if err := direct.ProgramPage(fa, data); !errors.Is(err, nand.ErrProgramFailed) {
		t.Fatalf("direct program: %v, want ErrProgramFailed", err)
	}
	if err := dev.ProgramPage(fa, data); !errors.Is(err, nand.ErrProgramFailed) {
		t.Fatalf("onfi program: %v, want ErrProgramFailed", err)
	}
	check("after failed program")

	// A failed erase keeps the block's charge: the bitmap must survive.
	eraseCfg := nand.FaultConfig{Seed: 6, EraseFailProb: 1}
	direct.SetFaultPlan(nand.NewFaultPlan(eraseCfg))
	dev.SetFaultPlan(nand.NewFaultPlan(eraseCfg))
	if err := direct.EraseBlock(0); !errors.Is(err, nand.ErrEraseFailed) {
		t.Fatalf("direct erase: %v, want ErrEraseFailed", err)
	}
	if err := dev.EraseBlock(0); !errors.Is(err, nand.ErrEraseFailed) {
		t.Fatalf("onfi erase: %v, want ErrEraseFailed", err)
	}
	check("after failed erase")

	// A successful erase forgets the block.
	direct.SetFaultPlan(nil)
	dev.SetFaultPlan(nil)
	if err := direct.EraseBlock(1); err != nil {
		t.Fatal(err)
	}
	if err := dev.EraseBlock(1); err != nil {
		t.Fatal(err)
	}
	check("after erase")
}
