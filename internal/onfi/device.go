package onfi

import (
	"errors"
	"fmt"
	"time"

	"stashflash/internal/nand"
)

// Device adapts the bus-level command interface to the nand.Device /
// nand.VendorDevice surface, so the entire VT-HI stack — core.Hider, ftl,
// stegfs, tester, pthi, watermark, every experiment — can run over
// command cycles instead of direct chip calls. It is the host-controller
// half of the paper's prototype: PartialProgram becomes PROGRAM + RESET
// (§1), ReadPageRef becomes SET-FEATURE + READ (§5.3), and the probe,
// health, cycle and fine-program operations ride the vendor opcodes of
// §6.2.
//
// Bus-driven operations are bit-identical to direct chip calls: the bus
// rebuilds cell lists from data patterns in ascending order, which is
// the order every caller produces (see nand.Device), and the fine read
// reference register carries full float64 resolution.
//
// NeighborPrograms is answered host-side: the adapter keeps the per-page
// program bitmap that real firmware maintains ("firmware knows this
// trivially — it issued the programs", §6.2). The adapter therefore
// assumes it is attached at device power-on, before any page has been
// programmed through another path.
//
// The lab/testbed capabilities (fault plans, stress cycling, retention
// baking, the cost ledger, MLC mode) are control-plane affordances of
// the simulated rig, not bus transactions; the adapter forwards them to
// the chip directly so the fault layer and the experiment suite work
// unchanged behind the interface.
//
// Device follows the nand.Device concurrency contract: one device per
// goroutine (the bus is inherently serial).
type Device struct {
	bus    *Bus
	chip   *nand.Chip
	defRef float64
	curRef float64
	// programmed is the firmware-side page-program bitmap backing
	// NeighborPrograms, allocated lazily per block.
	programmed [][]bool
}

// Compile-time proof that the bus adapter satisfies the full stack's
// requirements, vendor commands and lab surface included.
var (
	_ nand.VendorDevice = (*Device)(nil)
	_ nand.LabDevice    = (*Device)(nil)
	_ nand.BatchDevice  = (*Device)(nil)
)

// NewDevice attaches a bus-backed device adapter to a chip. The chip
// should be freshly powered on (no pages programmed outside this
// adapter), so the host-side program bitmap starts in sync.
func NewDevice(chip *nand.Chip) *Device {
	ref := chip.Model().ReadRef
	return &Device{
		bus:        New(chip),
		chip:       chip,
		defRef:     ref,
		curRef:     ref,
		programmed: make([][]bool, chip.Geometry().Blocks),
	}
}

// Bus exposes the underlying command interface for protocol-level tests
// and tools.
func (d *Device) Bus() *Bus { return d.bus }

// progRef lazily materialises the program bitmap for a block.
func (d *Device) progRef(block int) []bool {
	if d.programmed[block] == nil {
		d.programmed[block] = make([]bool, d.chip.Geometry().PagesPerBlock)
	}
	return d.programmed[block]
}

// clearProg forgets the program bitmap of an erased block.
func (d *Device) clearProg(block int) {
	if block >= 0 && block < len(d.programmed) {
		d.programmed[block] = nil
	}
}

// setRef moves the bus read-reference register, skipping the SET-FEATURE
// transaction when the register already holds the value.
func (d *Device) setRef(ref float64) error {
	if ref == d.curRef {
		return nil
	}
	if err := d.bus.SetReadRefFine(ref); err != nil {
		return err
	}
	d.curRef = ref
	return nil
}

// --- nand.Device (standard commands) -------------------------------------

// Geometry returns the device layout (parameter-page metadata).
func (d *Device) Geometry() nand.Geometry { return d.chip.Geometry() }

// Model returns the device parameter sheet (parameter-page metadata).
func (d *Device) Model() nand.Model { return d.chip.Model() }

// PEC reports a block's program/erase cycle count via the vendor health
// command. An unaddressable block is a programmer error, as on the chip.
func (d *Device) PEC(block int) int {
	pec, _, err := d.bus.BlockHealth(block)
	if err != nil {
		panic(fmt.Sprintf("onfi: health report for block %d: %v", block, err))
	}
	return pec
}

// IsBadBlock reports the grown-bad mark via the vendor health command.
func (d *Device) IsBadBlock(block int) bool {
	_, bad, err := d.bus.BlockHealth(block)
	if err != nil {
		return false
	}
	return bad
}

// EraseBlock issues an erase transaction. The program bitmap is cleared
// only on success: a failed erase leaves charge (and programmed pages)
// in place.
func (d *Device) EraseBlock(block int) error {
	if err := d.bus.EraseBlock(block); err != nil {
		return err
	}
	d.clearProg(block)
	return nil
}

// CycleBlock fast-forwards wear via the vendor cycle command, leaving
// the block erased on success. A block that dies at its wear-out point
// keeps its materialised pages, so the bitmap survives the error.
func (d *Device) CycleBlock(block, n int) error {
	if n < 0 {
		// Firmware-side validation: the bus payload is unsigned.
		return fmt.Errorf("%w: cycle count %d", nand.ErrNegativeCount, n)
	}
	if err := d.bus.CycleBlock(block, n); err != nil {
		return err
	}
	d.clearProg(block)
	return nil
}

// ProgramPage issues a full program transaction. The page is marked
// programmed on success and on a program status FAIL (the aborted ISPP
// sequence leaves the page charged and unusable until erase), but not on
// errors that precede any array activity (bad block, power loss).
func (d *Device) ProgramPage(a nand.PageAddr, data []byte) error {
	err := d.bus.ProgramPage(a, data)
	if err == nil || errors.Is(err, nand.ErrProgramFailed) {
		d.progRef(a.Block)[a.Page] = true
	}
	return err
}

// ReadPage reads at the model's default public reference.
func (d *Device) ReadPage(a nand.PageAddr) ([]byte, error) {
	return d.ReadPageRef(a, d.defRef)
}

// PartialProgram delivers one PP pulse using only PROGRAM + RESET (§1).
func (d *Device) PartialProgram(a nand.PageAddr, cells []int) error {
	return d.bus.PartialProgram(a, cells)
}

// --- nand.BatchDevice (grouped command cycles) ----------------------------
//
// The batch surface is where the extended command set pays off on the bus
// backend: page groups ride multi-plane program staging, cached sequential
// reads and the batched vendor probe, so a group costs one command/address
// sequence instead of one per page. Results stay bit-identical to the
// single-op loops (the chip executes pages in the same ascending order);
// only the cycle count changes.

// batchRange clamps a page group to the block boundary the way the chip
// does: the valid prefix proceeds, and the first out-of-range page yields
// the chip's own range error.
func (d *Device) batchRange(start nand.PageAddr, count int) (valid int, err error) {
	g := d.chip.Geometry()
	if count < 0 {
		return 0, fmt.Errorf("%w: page count %d", nand.ErrNegativeCount, count)
	}
	for p := 0; p < count; p++ {
		a := nand.PageAddr{Block: start.Block, Page: start.Page + p}
		if err := g.Check(a); err != nil {
			return p, err
		}
	}
	return count, nil
}

// ReadPageInto reads a page at the default reference directly into a
// caller-owned buffer (host DMA on the data-out cycles).
func (d *Device) ReadPageInto(a nand.PageAddr, out []byte) error {
	return d.ReadPageRefInto(a, d.defRef, out)
}

// ReadPageRefInto reads against an arbitrary reference into a caller-owned
// buffer: SET-FEATURE (skipped when the register already holds the value)
// plus a DMA read transaction.
func (d *Device) ReadPageRefInto(a nand.PageAddr, ref float64, out []byte) error {
	if err := d.setRef(ref); err != nil {
		return err
	}
	return d.bus.ReadPageInto(a, out)
}

// ReadPages reads count consecutive pages into out using one full READ
// sequence plus cached sequential reads (CmdReadCache) for the rest of
// the group.
func (d *Device) ReadPages(start nand.PageAddr, count int, out []byte) (int, error) {
	pb := d.chip.Geometry().PageBytes
	if len(out) < count*pb {
		return 0, fmt.Errorf("%w: got %d bytes, %d pages need %d", nand.ErrBadDataLength, len(out), count, count*pb)
	}
	if err := d.setRef(d.defRef); err != nil {
		return 0, err
	}
	valid, rangeErr := d.batchRange(start, count)
	n, err := d.bus.ReadPagesInto(start, valid, out[:valid*pb])
	if err != nil {
		return n, err
	}
	return n, rangeErr
}

// ProgramPages programs count consecutive pages as one multi-plane group
// (CmdProgramPlane staging plus a single flush). The program bitmap is
// kept exact: completed pages are marked, and a program status FAIL marks
// the failing page too, matching ProgramPage semantics.
func (d *Device) ProgramPages(start nand.PageAddr, data []byte) (int, error) {
	g := d.chip.Geometry()
	pb := g.PageBytes
	if len(data)%pb != 0 {
		return 0, fmt.Errorf("%w: got %d bytes, not a multiple of page size %d", nand.ErrBadDataLength, len(data), pb)
	}
	count := len(data) / pb
	valid, rangeErr := d.batchRange(start, count)
	n, err := d.bus.ProgramPages(start, data[:valid*pb])
	if start.Block >= 0 && start.Block < g.Blocks && n+boolInt(err != nil && errors.Is(err, nand.ErrProgramFailed)) > 0 {
		prog := d.progRef(start.Block)
		for p := 0; p < n; p++ {
			prog[start.Page+p] = true
		}
		if err != nil && errors.Is(err, nand.ErrProgramFailed) && start.Page+n < len(prog) {
			prog[start.Page+n] = true
		}
	}
	if err != nil {
		return n, err
	}
	return n, rangeErr
}

// ProbePageInto probes one page into a caller-owned buffer via the
// batched vendor opcode.
func (d *Device) ProbePageInto(a nand.PageAddr, out []uint8) error {
	cp := d.chip.Geometry().CellsPerPage()
	if len(out) != cp {
		return fmt.Errorf("%w: got %d levels, page has %d cells", nand.ErrBadDataLength, len(out), cp)
	}
	if err := d.chip.Geometry().Check(a); err != nil {
		return err
	}
	_, err := d.bus.ProbeVoltagesInto(a, 1, out)
	return err
}

// ProbeVoltages probes count consecutive pages into out with one batched
// vendor probe transaction per block-bounded group.
func (d *Device) ProbeVoltages(start nand.PageAddr, count int, out []uint8) (int, error) {
	cp := d.chip.Geometry().CellsPerPage()
	if len(out) < count*cp {
		return 0, fmt.Errorf("%w: got %d levels, %d pages need %d", nand.ErrBadDataLength, len(out), count, count*cp)
	}
	valid, rangeErr := d.batchRange(start, count)
	n, err := d.bus.ProbeVoltagesInto(start, valid, out[:valid*cp])
	if err != nil {
		return n, err
	}
	return n, rangeErr
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- nand.VendorDevice (§6.2 vendor commands) ----------------------------

// ReadPageRef reads against an arbitrary reference: SET-FEATURE (fine
// register) + READ. The feature write is skipped when the register
// already holds the reference.
func (d *Device) ReadPageRef(a nand.PageAddr, ref float64) ([]byte, error) {
	if err := d.setRef(ref); err != nil {
		return nil, err
	}
	return d.bus.ReadPage(a)
}

// FineProgram drives the vendor fine-program command.
func (d *Device) FineProgram(a nand.PageAddr, cells []int, target float64) error {
	return d.bus.FineProgram(a, cells, target)
}

// ProbePage runs the vendor characterisation command.
func (d *Device) ProbePage(a nand.PageAddr) ([]uint8, error) {
	return d.bus.ProbePage(a)
}

// NeighborPrograms answers from the host-side program bitmap — the
// firmware bookkeeping of §6.2 — with no bus traffic at all.
func (d *Device) NeighborPrograms(a nand.PageAddr) (int, error) {
	g := d.chip.Geometry()
	if a.Block < 0 || a.Block >= g.Blocks || a.Page < 0 || a.Page >= g.PagesPerBlock {
		return 0, fmt.Errorf("%w: %v", ErrAddress, a)
	}
	prog := d.programmed[a.Block]
	if prog == nil {
		return 0, nil
	}
	n := 0
	for _, np := range []int{a.Page - 1, a.Page + 1} {
		if np >= 0 && np < g.PagesPerBlock && prog[np] {
			n++
		}
	}
	return n, nil
}

// --- lab capabilities (testbed control plane, forwarded) ------------------

// SetFaultPlan attaches a fault plan to the underlying silicon.
func (d *Device) SetFaultPlan(p *nand.FaultPlan) { d.chip.SetFaultPlan(p) }

// FaultPlan returns the attached fault plan, if any.
func (d *Device) FaultPlan() *nand.FaultPlan { return d.chip.FaultPlan() }

// PowerCycle restores power after an injected power loss. Voltages are
// untouched, so the program bitmap stays valid.
func (d *Device) PowerCycle() { d.chip.PowerCycle() }

// GrownBadBlocks lists blocks grown bad so far.
func (d *Device) GrownBadBlocks() []int { return d.chip.GrownBadBlocks() }

// StressCycleBlock forwards one PT-HI stress cycle; the completing erase
// clears the program bitmap, but a wear-out death mid-cycle leaves the
// block's pages (and the bitmap) in place.
func (d *Device) StressCycleBlock(block int, cellsPerPage [][]int) error {
	if err := d.chip.StressCycleBlock(block, cellsPerPage); err != nil {
		return err
	}
	d.clearProg(block)
	return nil
}

// StressCells forwards bulk program stress.
func (d *Device) StressCells(a nand.PageAddr, cells []int, n int) error {
	return d.chip.StressCells(a, cells, n)
}

// AdvanceRetention forwards the retention bake. The bake is a lazy
// virtual-clock bump on the chip (no array traffic), so nothing crosses
// the bus — matching real hardware, where oven time is not a command.
func (d *Device) AdvanceRetention(t time.Duration) { d.chip.AdvanceRetention(t) }

// Ledger returns the chip's operation cost accounting.
func (d *Device) Ledger() nand.Ledger { return d.chip.Ledger() }

// ResetLedger zeroes the cost accounting.
func (d *Device) ResetLedger() { d.chip.ResetLedger() }

// DropBlockState forwards the simulator-only state release; the block
// regenerates as freshly erased, so the bitmap is cleared with it.
func (d *Device) DropBlockState(block int) error {
	if err := d.chip.DropBlockState(block); err != nil {
		return err
	}
	d.clearProg(block)
	return nil
}

// ProgramPageMLC forwards the MLC-mode program and tracks the page in
// the program bitmap.
func (d *Device) ProgramPageMLC(a nand.PageAddr, lower, upper []byte) error {
	if err := d.chip.ProgramPageMLC(a, lower, upper); err != nil {
		return err
	}
	d.progRef(a.Block)[a.Page] = true
	return nil
}

// ReadPageMLC forwards the MLC-mode read.
func (d *Device) ReadPageMLC(a nand.PageAddr) (lower, upper []byte, err error) {
	return d.chip.ReadPageMLC(a)
}
