// Package onfi models the standard NAND flash command interface (ONFI,
// the paper's [31]) as a bus-level state machine over the simulated chip:
// command cycles, address cycles, data cycles, and a status register.
//
// It exists to demonstrate the paper's §1 claim mechanically: partial
// programming "requires only standard flash interface commands (i.e.,
// PROGRAM and RESET)". Issuing CmdProgram + address + data and then
// aborting with CmdReset — instead of confirming with CmdProgramConfirm —
// delivers one coarse partial-programming pulse to the cells the data
// pattern targets. That RESET-mid-PROGRAM idiom is exactly how the
// paper's prototype drives VT-HI on unmodified devices; the vendor-only
// operations (read-reference shift, per-cell probe) are exposed as
// SET-FEATURE / vendor commands, matching §6.2's description of what the
// NDA unlocked.
package onfi

import (
	"errors"
	"fmt"
	"math"

	"stashflash/internal/nand"
)

// Command opcodes. The core set follows the ONFI convention; the vendor
// opcodes stand in for the NDA'd commands of §6.2.
const (
	CmdRead           = 0x00 // begin read: address cycles follow
	CmdReadConfirm    = 0x30 // execute read into the data register
	CmdReadCache      = 0x31 // cached sequential read: next page, no address
	CmdProgram        = 0x80 // begin program: address + data cycles follow
	CmdProgramConfirm = 0x10 // execute the program (flushes any staged queue)
	CmdProgramPlane   = 0x11 // stage the latched page for a multi-plane group
	CmdErase          = 0x60 // begin erase: row address follows
	CmdEraseConfirm   = 0xD0 // execute the erase
	CmdStatus         = 0x70 // latch the status register for reading
	CmdReset          = 0xFF // abort the in-flight operation
	CmdSetFeature     = 0xEF // set a feature register (vendor: read ref)
	CmdVendorProbe    = 0xCA // vendor: per-cell voltage characterisation
	CmdVendorHealth   = 0xCB // vendor: per-block health report (PEC + bad mark)
	CmdVendorCycle    = 0xCC // vendor: tester-rig wear fast-forward on a block
	CmdVendorFine     = 0xCD // vendor: controller-grade fine program (§6.2)
	// CmdVendorProbeBatch streams the per-cell characterisation of a run
	// of consecutive pages in one transaction: 5 address cycles select the
	// first page, a 4-byte little-endian payload gives the page count, and
	// the data register then holds count*CellsPerPage levels. One command
	// cycle amortised over a whole block is what makes bus-driven
	// characterisation sweeps competitive with direct rig access (the
	// multi-plane/cache command-set rationale of Cai et al., §IV).
	CmdVendorProbeBatch = 0xCE
)

// Feature addresses for CmdSetFeature.
const (
	// FeatReadRef sets the read reference threshold for subsequent reads
	// (the vendor command VT-HI decodes with; §5.3). The 2-byte payload
	// is the threshold in tenths of a normalized level, little-endian.
	FeatReadRef = 0x91
	// FeatReadRefFine sets the read reference with full resolution: the
	// 8-byte payload is an IEEE-754 float64, little-endian, in normalized
	// units. This is the register the host adapter uses so that
	// bus-driven decodes land on bit-identical thresholds to direct
	// ReadPageRef calls; FeatReadRef's tenths quantisation remains for
	// protocol-level compatibility demos.
	FeatReadRefFine = 0x92
)

// Status register bits.
const (
	StatusFail  = 0x01 // last operation failed
	StatusReady = 0x40 // device ready for a new command
)

// busState tracks the interface state machine.
type busState int

const (
	stateIdle busState = iota
	stateReadAddr
	stateReadData
	stateProgramAddr
	stateProgramData
	stateEraseAddr
	stateStatus
	stateFeatureAddr
	stateFeatureData
	stateProbeAddr
	stateProbeData
	stateHealthAddr
	stateCycleAddr
	stateCycleData
	stateFineAddr
	stateFineData
	stateProbeBatchAddr
	stateProbeBatchData
)

// Errors surfaced by the bus.
var (
	ErrProtocol = errors.New("onfi: command sequence violates the protocol")
	ErrAddress  = errors.New("onfi: malformed or out-of-range address")
)

// Bus is one chip's command interface. Not safe for concurrent use (the
// physical bus is inherently serial).
type Bus struct {
	chip *nand.Chip

	state   busState
	rowSet  bool
	row     int // block*pagesPerBlock + page
	colSet  bool
	col     int
	dataBuf []byte
	dataOff int
	status  byte
	readRef float64
	featBuf []byte
	feat    byte
	rec     CycleRecorder // optional cycle trace sink (see trace.go)

	// wbuf backs the data-in register for write-path transactions
	// (program, fine, cycle, batch-probe count). Read-path transactions
	// never touch it: their data register aliases chip-fresh or
	// caller-owned memory, so reusing wbuf there would corrupt results a
	// host still holds.
	wbuf []byte
	// pendingDst, when non-nil, is a caller-owned page buffer the next
	// read confirm senses into directly (host DMA) instead of allocating.
	pendingDst []byte
	// Cached sequential read bookkeeping: the row of the last completed
	// READ, valid until any non-read-cache command.
	lastReadRow int
	readValid   bool
	// Multi-plane program queue: pages staged by CmdProgramPlane, flushed
	// in order by the final CmdProgramConfirm. Slot buffers are reused
	// across groups.
	progQueue []progSlot
	queued    int
	groupDone int // pages completed by the last program confirm
	// probeBuf backs the data register of a batch probe.
	probeBuf []uint8
	// cellScratch backs the cell lists rebuilt from fine-program patterns.
	cellScratch []int
	// ppPattern backs the pattern built by the PartialProgram wrapper.
	ppPattern []byte
}

// progSlot is one staged page of a multi-plane program group.
type progSlot struct {
	row  int
	data []byte
}

// New attaches a bus to a chip. The read reference starts at the model's
// public default.
func New(chip *nand.Chip) *Bus {
	return &Bus{
		chip:    chip,
		status:  StatusReady,
		readRef: chip.Model().ReadRef,
	}
}

// rowToAddr converts a row address to a page address, validating range.
func (b *Bus) rowToAddr() (nand.PageAddr, error) {
	g := b.chip.Geometry()
	if !b.rowSet || b.row < 0 || b.row >= g.Blocks*g.PagesPerBlock {
		return nand.PageAddr{}, ErrAddress
	}
	return nand.PageAddr{Block: b.row / g.PagesPerBlock, Page: b.row % g.PagesPerBlock}, nil
}

func (b *Bus) fail() {
	b.status = StatusReady | StatusFail
	b.state = stateIdle
}

func (b *Bus) ok() {
	b.status = StatusReady
	b.state = stateIdle
}

// Cmd latches a command byte.
func (b *Bus) Cmd(op byte) error {
	err := b.cmd(op)
	b.recordCmd(op)
	return err
}

func (b *Bus) cmd(op byte) error {
	switch op {
	case CmdReset:
		return b.reset()
	case CmdStatus:
		b.state = stateStatus
		return nil
	}
	if op != CmdReadCache && op != CmdReadConfirm {
		// Any other array command ends a cached sequential read run.
		b.readValid = false
	}
	switch op {
	case CmdRead:
		b.beginAddr(stateReadAddr)
	case CmdReadConfirm:
		return b.execRead()
	case CmdReadCache:
		return b.execReadCache()
	case CmdProgram:
		b.beginAddr(stateProgramAddr)
	case CmdProgramConfirm:
		return b.execProgram()
	case CmdProgramPlane:
		return b.stageProgram()
	case CmdErase:
		b.beginAddr(stateEraseAddr)
	case CmdEraseConfirm:
		return b.execErase()
	case CmdVendorProbeBatch:
		b.beginAddr(stateProbeBatchAddr)
	case CmdSetFeature:
		b.state = stateFeatureAddr
		b.featBuf = b.featBuf[:0]
	case CmdVendorProbe:
		b.beginAddr(stateProbeAddr)
	case CmdVendorHealth:
		b.beginAddr(stateHealthAddr)
	case CmdVendorCycle:
		b.beginAddr(stateCycleAddr)
	case CmdVendorFine:
		b.beginAddr(stateFineAddr)
	default:
		b.fail()
		return fmt.Errorf("%w: unknown opcode %#02x", ErrProtocol, op)
	}
	return nil
}

func (b *Bus) beginAddr(s busState) {
	b.state = s
	b.rowSet = false
	b.colSet = false
	b.dataBuf = nil
	b.dataOff = 0
}

// Addr sends address cycles: two column bytes then three row bytes,
// little-endian, the classic 5-cycle NAND addressing.
func (b *Bus) Addr(bytes ...byte) error {
	feature := b.state == stateFeatureAddr
	err := b.addr(bytes...)
	if feature {
		b.recordAddr(int(b.feat), 0)
	} else {
		b.recordAddr(b.row, b.col)
	}
	return err
}

func (b *Bus) addr(bytes ...byte) error {
	switch b.state {
	case stateReadAddr, stateProgramAddr, stateEraseAddr, stateProbeAddr,
		stateHealthAddr, stateCycleAddr, stateFineAddr, stateProbeBatchAddr:
	case stateFeatureAddr:
		if len(bytes) != 1 {
			b.fail()
			return fmt.Errorf("%w: feature address is one cycle", ErrProtocol)
		}
		b.feat = bytes[0]
		b.state = stateFeatureData
		b.featBuf = b.featBuf[:0]
		return nil
	default:
		b.fail()
		return fmt.Errorf("%w: address cycle outside an addressed command", ErrProtocol)
	}
	// Block ops take only row cycles (3); page ops take 2 column + 3 row.
	want := 5
	if b.state == stateEraseAddr || b.state == stateHealthAddr || b.state == stateCycleAddr {
		want = 3
	}
	if len(bytes) != want {
		b.fail()
		return fmt.Errorf("%w: got %d address cycles, want %d", ErrAddress, len(bytes), want)
	}
	if want == 5 {
		b.col = int(bytes[0]) | int(bytes[1])<<8
		b.colSet = true
		bytes = bytes[2:]
	} else {
		b.col = 0
		b.colSet = true
	}
	b.row = int(bytes[0]) | int(bytes[1])<<8 | int(bytes[2])<<16
	b.rowSet = true
	switch b.state {
	case stateReadAddr:
		b.state = stateReadData // awaiting CmdReadConfirm
	case stateProgramAddr:
		b.state = stateProgramData
		b.dataBuf = b.wbuf[:0] // data-in register: reuse the write buffer
	case stateProbeAddr:
		b.state = stateProbeData // awaiting data out
		return b.execProbe()
	case stateHealthAddr:
		return b.execHealth()
	case stateCycleAddr:
		b.state = stateCycleData
		b.dataBuf = b.wbuf[:0]
	case stateFineAddr:
		b.state = stateFineData
		b.dataBuf = b.wbuf[:0]
	case stateProbeBatchAddr:
		b.state = stateProbeBatchData // awaiting the 4-byte page count
		b.dataBuf = b.wbuf[:0]
	}
	return nil
}

// WriteData clocks data cycles into the page register (program path or
// feature payload).
func (b *Bus) WriteData(p []byte) error {
	err := b.writeData(p)
	b.recordData(CycleDataIn, len(p))
	return err
}

func (b *Bus) writeData(p []byte) error {
	switch b.state {
	case stateProgramData:
		b.dataBuf = append(b.dataBuf, p...)
		if len(b.dataBuf) > b.chip.Geometry().PageBytes {
			b.fail()
			return fmt.Errorf("%w: page register overflow", ErrProtocol)
		}
		return nil
	case stateFeatureData:
		b.featBuf = append(b.featBuf, p...)
		if len(b.featBuf) >= featLen(b.feat) {
			return b.execFeature()
		}
		return nil
	case stateCycleData:
		b.dataBuf = append(b.dataBuf, p...)
		if len(b.dataBuf) > 4 {
			b.fail()
			return fmt.Errorf("%w: cycle count is a 4-byte payload", ErrProtocol)
		}
		if len(b.dataBuf) == 4 {
			return b.execCycle()
		}
		return nil
	case stateProbeBatchData:
		b.dataBuf = append(b.dataBuf, p...)
		if len(b.dataBuf) > 4 {
			b.fail()
			return fmt.Errorf("%w: batch probe count is a 4-byte payload", ErrProtocol)
		}
		if len(b.dataBuf) == 4 {
			return b.execProbeBatch()
		}
		return nil
	case stateFineData:
		want := b.chip.Geometry().PageBytes + 8
		b.dataBuf = append(b.dataBuf, p...)
		if len(b.dataBuf) > want {
			b.fail()
			return fmt.Errorf("%w: fine-program register overflow", ErrProtocol)
		}
		if len(b.dataBuf) == want {
			return b.execFine()
		}
		return nil
	default:
		b.fail()
		return fmt.Errorf("%w: data cycle outside a data phase", ErrProtocol)
	}
}

// ReadData clocks n bytes out of the data register (after a read or probe
// confirm, or a status latch).
func (b *Bus) ReadData(n int) ([]byte, error) {
	out, err := b.readData(n)
	b.recordData(CycleDataOut, len(out))
	return out, err
}

func (b *Bus) readData(n int) ([]byte, error) {
	if b.state == stateStatus {
		out := make([]byte, n)
		for i := range out {
			out[i] = b.status
		}
		return out, nil
	}
	if b.dataBuf == nil {
		return nil, fmt.Errorf("%w: no data latched", ErrProtocol)
	}
	if b.dataOff+n > len(b.dataBuf) {
		n = len(b.dataBuf) - b.dataOff
	}
	out := b.dataBuf[b.dataOff : b.dataOff+n]
	b.dataOff += n
	return out, nil
}

// Status returns the status register directly (sugar over Cmd(CmdStatus)).
func (b *Bus) Status() byte { return b.status }

func (b *Bus) execRead() error {
	if b.state != stateReadData {
		b.fail()
		return fmt.Errorf("%w: read confirm without read setup", ErrProtocol)
	}
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	return b.senseRow(a)
}

// senseRow performs the array read for the current row, filling the data
// register. With a pendingDst attached (host DMA) the sense lands directly
// in the caller's buffer with no allocation; otherwise the register is a
// fresh chip slice, since hosts may hold ReadData results indefinitely.
// A completed sense arms the cached sequential read path.
func (b *Bus) senseRow(a nand.PageAddr) error {
	if b.pendingDst != nil && b.col == 0 {
		if err := b.chip.ReadPageRefInto(a, b.readRef, b.pendingDst); err != nil {
			b.fail()
			return err
		}
		b.dataBuf = b.pendingDst
	} else {
		data, err := b.chip.ReadPageRef(a, b.readRef)
		if err != nil {
			b.fail()
			return err
		}
		if b.col > len(data) {
			b.fail()
			return ErrAddress
		}
		b.dataBuf = data[b.col:]
	}
	b.dataOff = 0
	b.status = StatusReady
	b.state = stateIdle
	b.lastReadRow = b.row
	b.readValid = true
	return nil
}

// execReadCache services CmdReadCache: read the page following the last
// completed READ in the same block, with no new address cycles. This is
// the cached sequential read of the extended command set (Cai et al.,
// §IV): the page register pipelines while the host clocks data, so a
// block sweep costs one full command/address sequence plus one cycle per
// page. Crossing a block boundary is a protocol error — real cache reads
// do not carry across blocks.
func (b *Bus) execReadCache() error {
	if !b.readValid || b.state != stateIdle {
		b.fail()
		return fmt.Errorf("%w: cached read without a completed read", ErrProtocol)
	}
	g := b.chip.Geometry()
	next := b.lastReadRow + 1
	if next%g.PagesPerBlock == 0 {
		b.fail()
		return fmt.Errorf("%w: cached read across block boundary", ErrProtocol)
	}
	b.row = next
	b.rowSet = true
	b.col = 0
	b.colSet = true
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	return b.senseRow(a)
}

// stageProgram services CmdProgramPlane: instead of executing, the latched
// page joins the multi-plane program queue and the bus returns ready for
// the next CmdProgram sequence. The final CmdProgramConfirm flushes the
// whole group in staging order. This is the multi-plane program of the
// extended command set (Cai et al., §IV): one confirm amortised over a
// group of pages.
func (b *Bus) stageProgram() error {
	g := b.chip.Geometry()
	if b.state != stateProgramData || !b.rowSet || b.col != 0 || len(b.dataBuf) != g.PageBytes {
		b.fail()
		return fmt.Errorf("%w: plane stage requires a fully latched program page", ErrProtocol)
	}
	if b.queued < len(b.progQueue) {
		s := &b.progQueue[b.queued]
		s.row = b.row
		s.data = append(s.data[:0], b.dataBuf...)
	} else {
		b.progQueue = append(b.progQueue, progSlot{
			row:  b.row,
			data: append([]byte(nil), b.dataBuf...),
		})
	}
	b.queued++
	b.wbuf = b.dataBuf[:0]
	b.dataBuf = nil
	b.ok()
	return nil
}

func (b *Bus) execProgram() error {
	if b.state != stateProgramData {
		b.queued = 0
		b.fail()
		return fmt.Errorf("%w: program confirm without program setup", ErrProtocol)
	}
	a, err := b.rowToAddr()
	if err != nil {
		b.queued = 0
		b.fail()
		return err
	}
	g := b.chip.Geometry()
	if b.col != 0 || len(b.dataBuf) != g.PageBytes {
		b.queued = 0
		b.fail()
		return fmt.Errorf("%w: full-page program requires column 0 and %d data bytes", ErrProtocol, g.PageBytes)
	}
	// Flush staged multi-plane pages in order, then the current page. The
	// first failure stops the group; groupDone reports how many pages
	// completed before it, so firmware can keep its bitmaps exact.
	b.groupDone = 0
	queued := b.queued
	b.queued = 0
	for i := 0; i < queued; i++ {
		s := &b.progQueue[i]
		qa := nand.PageAddr{Block: s.row / g.PagesPerBlock, Page: s.row % g.PagesPerBlock}
		if err := b.chip.ProgramPage(qa, s.data); err != nil {
			b.wbuf = b.dataBuf[:0]
			b.dataBuf = nil
			b.fail()
			return err
		}
		b.groupDone++
	}
	if err := b.chip.ProgramPage(a, b.dataBuf); err != nil {
		b.wbuf = b.dataBuf[:0]
		b.dataBuf = nil
		b.fail()
		return err
	}
	b.groupDone++
	b.wbuf = b.dataBuf[:0]
	b.dataBuf = nil
	b.ok()
	return nil
}

// GroupCompleted reports how many pages the last CmdProgramConfirm flush
// fully programmed (staged pages plus the final one), for firmware-side
// bookkeeping after a mid-group failure.
func (b *Bus) GroupCompleted() int { return b.groupDone }

func (b *Bus) execErase() error {
	if b.state != stateEraseAddr || !b.rowSet {
		b.fail()
		return fmt.Errorf("%w: erase confirm without erase setup", ErrProtocol)
	}
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	if err := b.chip.EraseBlock(a.Block); err != nil {
		b.fail()
		return err
	}
	b.ok()
	return nil
}

// reset implements CmdReset. An idle reset only clears the interface
// state. A reset that lands while a program is staged — address and a
// full page register latched — models aborting the array operation
// mid-flight, the paper's partial-programming trick: the cells the
// pattern drives toward '0' receive exactly one coarse charge pulse
// instead of the full incremental-step sequence.
func (b *Bus) reset() error {
	b.queued = 0 // an abort drops any staged multi-plane pages
	b.readValid = false
	if b.state == stateProgramData && b.rowSet && len(b.dataBuf) == b.chip.Geometry().PageBytes {
		a, err := b.rowToAddr()
		if err != nil {
			b.fail()
			return err
		}
		// The latched data register IS the pulse pattern: hand it to the
		// chip in one pass instead of expanding a cell list. An all-ones
		// pattern selects no cells and, as before, touches nothing.
		if anyZeroBit(b.dataBuf) {
			if err := b.chip.PartialProgramPattern(a, b.dataBuf); err != nil {
				b.fail()
				return err
			}
		}
	}
	if b.inWriteDataPhase() {
		b.wbuf = b.dataBuf[:0]
	}
	b.dataBuf = nil
	b.dataOff = 0
	b.ok()
	return nil
}

// inWriteDataPhase reports whether the data register currently belongs to
// a write-path transaction (and so is safe to recycle into wbuf). Read
// paths latch chip-fresh or caller-owned slices that must not be reused.
func (b *Bus) inWriteDataPhase() bool {
	switch b.state {
	case stateProgramData, stateCycleData, stateFineData, stateProbeBatchData:
		return true
	}
	return false
}

// anyZeroBit reports whether the pattern selects at least one cell.
func anyZeroBit(pattern []byte) bool {
	for _, p := range pattern {
		if p != 0xFF {
			return true
		}
	}
	return false
}

// featLen returns the payload size of a feature register. Unknown
// features get the classic 2-byte subfeature payload and are rejected at
// execution time.
func featLen(feat byte) int {
	if feat == FeatReadRefFine {
		return 8
	}
	return 2
}

func (b *Bus) execFeature() error {
	switch b.feat {
	case FeatReadRef:
		tenths := int(b.featBuf[0]) | int(b.featBuf[1])<<8
		b.readRef = float64(tenths) / 10
		b.ok()
		return nil
	case FeatReadRefFine:
		var bits uint64
		for i := 0; i < 8; i++ {
			bits |= uint64(b.featBuf[i]) << (8 * i)
		}
		b.readRef = math.Float64frombits(bits)
		b.ok()
		return nil
	default:
		b.fail()
		return fmt.Errorf("%w: unknown feature %#02x", ErrProtocol, b.feat)
	}
}

// execHealth services CmdVendorHealth: a 5-byte report for the addressed
// block — PEC as little-endian uint32 plus the grown-bad flag. This is
// metadata the controller keeps anyway; exposing it as a vendor command
// lets bus-only hosts run the wear-levelling and remap logic the FTL and
// stegfs layers need.
func (b *Bus) execHealth() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	pec := uint32(b.chip.PEC(a.Block))
	bad := byte(0)
	if b.chip.IsBadBlock(a.Block) {
		bad = 1
	}
	b.dataBuf = []byte{byte(pec), byte(pec >> 8), byte(pec >> 16), byte(pec >> 24), bad}
	b.dataOff = 0
	b.status = StatusReady
	b.state = stateIdle
	return nil
}

// execCycle services CmdVendorCycle: fast-forward wear by the latched
// 4-byte little-endian cycle count. The physical tester performs real
// program/erase loops; the simulated chip exposes the same effect as one
// command so bus-driven pre-conditioning stays cheap.
func (b *Bus) execCycle() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	n := int(uint32(b.dataBuf[0]) | uint32(b.dataBuf[1])<<8 |
		uint32(b.dataBuf[2])<<16 | uint32(b.dataBuf[3])<<24)
	b.wbuf = b.dataBuf[:0]
	b.dataBuf = nil
	if err := b.chip.CycleBlock(a.Block, n); err != nil {
		b.fail()
		return err
	}
	b.ok()
	return nil
}

// execFine services CmdVendorFine: the §6.2 in-controller programming
// operation. The latched payload is a full page pattern (0-bits select
// cells, as in PROGRAM) followed by the 8-byte float64 target level. A
// pattern selecting no cells completes without touching the array, the
// same no-op guard every host-side caller applies before a direct
// FineProgram call.
func (b *Bus) execFine() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	g := b.chip.Geometry()
	if b.col != 0 {
		b.fail()
		return fmt.Errorf("%w: fine program requires column 0", ErrProtocol)
	}
	pattern := b.dataBuf[:g.PageBytes]
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(b.dataBuf[g.PageBytes+i]) << (8 * i)
	}
	target := math.Float64frombits(bits)
	cells := b.cellScratch[:0]
	for i := 0; i < g.CellsPerPage(); i++ {
		if (pattern[i/8]>>(7-uint(i%8)))&1 == 0 {
			cells = append(cells, i)
		}
	}
	b.cellScratch = cells
	b.wbuf = b.dataBuf[:0]
	b.dataBuf = nil
	if len(cells) > 0 {
		if err := b.chip.FineProgram(a, cells, target); err != nil {
			b.fail()
			return err
		}
	}
	b.ok()
	return nil
}

func (b *Bus) execProbe() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	levels, err := b.chip.ProbePage(a)
	if err != nil {
		b.fail()
		return err
	}
	b.dataBuf = levels
	b.dataOff = 0
	b.status = StatusReady
	return nil
}

// execProbeBatch services CmdVendorProbeBatch: the latched 4-byte payload
// is the page count, and the data register fills with count*CellsPerPage
// levels probed from consecutive pages in ascending order (bit-identical
// to a ProbePage loop). The register is bus-owned scratch valid until the
// next command — hosts must copy before issuing anything else, the usual
// data-register lifetime on real parts.
func (b *Bus) execProbeBatch() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	count := int(uint32(b.dataBuf[0]) | uint32(b.dataBuf[1])<<8 |
		uint32(b.dataBuf[2])<<16 | uint32(b.dataBuf[3])<<24)
	b.wbuf = b.dataBuf[:0]
	b.dataBuf = nil
	g := b.chip.Geometry()
	if count < 1 || a.Page+count > g.PagesPerBlock {
		b.fail()
		return fmt.Errorf("%w: batch probe of %d pages from page %d", ErrAddress, count, a.Page)
	}
	need := count * g.CellsPerPage()
	if cap(b.probeBuf) < need {
		b.probeBuf = make([]uint8, need)
	}
	out := b.probeBuf[:need]
	if _, err := b.chip.ProbeVoltages(a, count, out); err != nil {
		b.fail()
		return err
	}
	b.dataBuf = out
	b.dataOff = 0
	b.status = StatusReady
	b.state = stateIdle
	return nil
}

// --- convenience wrappers (what host software builds over the raw bus) ---

// rowOf packs a page address into a row number.
func rowOf(g nand.Geometry, a nand.PageAddr) int {
	return a.Block*g.PagesPerBlock + a.Page
}

// addrCycles builds the 5-cycle address for a page operation.
func addrCycles(g nand.Geometry, a nand.PageAddr) []byte {
	row := rowOf(g, a)
	return []byte{0, 0, byte(row), byte(row >> 8), byte(row >> 16)}
}

// ReadPage performs a full read transaction at the current read reference.
func (b *Bus) ReadPage(a nand.PageAddr) ([]byte, error) {
	if err := b.Cmd(CmdRead); err != nil {
		return nil, err
	}
	if err := b.Addr(addrCycles(b.chip.Geometry(), a)...); err != nil {
		return nil, err
	}
	if err := b.Cmd(CmdReadConfirm); err != nil {
		return nil, err
	}
	return b.ReadData(b.chip.Geometry().PageBytes)
}

// ProgramPage performs a full program transaction.
func (b *Bus) ProgramPage(a nand.PageAddr, data []byte) error {
	if err := b.Cmd(CmdProgram); err != nil {
		return err
	}
	if err := b.Addr(addrCycles(b.chip.Geometry(), a)...); err != nil {
		return err
	}
	if err := b.WriteData(data); err != nil {
		return err
	}
	return b.Cmd(CmdProgramConfirm)
}

// EraseBlock performs a full erase transaction.
func (b *Bus) EraseBlock(block int) error {
	if err := b.Cmd(CmdErase); err != nil {
		return err
	}
	row := block * b.chip.Geometry().PagesPerBlock
	if err := b.Addr(byte(row), byte(row>>8), byte(row>>16)); err != nil {
		return err
	}
	return b.Cmd(CmdEraseConfirm)
}

// ReadPageInto performs a full read transaction at the current read
// reference, sensing directly into the caller-owned page buffer (host
// DMA). Cycle-for-cycle it matches ReadPage — command, address, confirm,
// data out — but allocates nothing.
func (b *Bus) ReadPageInto(a nand.PageAddr, out []byte) error {
	g := b.chip.Geometry()
	if len(out) != g.PageBytes {
		return fmt.Errorf("%w: read buffer holds %d bytes, page holds %d", ErrProtocol, len(out), g.PageBytes)
	}
	b.pendingDst = out
	defer func() { b.pendingDst = nil }()
	if err := b.Cmd(CmdRead); err != nil {
		return err
	}
	if err := b.Addr(addrCycles(g, a)...); err != nil {
		return err
	}
	if err := b.Cmd(CmdReadConfirm); err != nil {
		return err
	}
	b.recordData(CycleDataOut, len(out))
	return nil
}

// ReadPagesInto reads count consecutive pages into out (count*PageBytes
// bytes): one full command/address sequence for the first page, then one
// cached sequential read (CmdReadCache) per following page. It returns
// the number of pages fully read; out holds valid data for exactly those
// leading pages.
func (b *Bus) ReadPagesInto(a nand.PageAddr, count int, out []byte) (int, error) {
	g := b.chip.Geometry()
	pb := g.PageBytes
	if len(out) < count*pb {
		return 0, fmt.Errorf("%w: read buffer holds %d bytes, %d pages need %d", ErrProtocol, len(out), count, count*pb)
	}
	if count < 1 {
		return 0, nil
	}
	if err := b.ReadPageInto(a, out[:pb]); err != nil {
		return 0, err
	}
	defer func() { b.pendingDst = nil }()
	for p := 1; p < count; p++ {
		b.pendingDst = out[p*pb : (p+1)*pb]
		if err := b.Cmd(CmdReadCache); err != nil {
			return p, err
		}
		b.recordData(CycleDataOut, pb)
	}
	return count, nil
}

// ProgramPages programs count consecutive pages from data as one
// multi-plane group: every page but the last is staged with
// CmdProgramPlane, and the final CmdProgramConfirm flushes the group in
// order. It returns the number of pages fully programmed (via
// GroupCompleted on failure).
func (b *Bus) ProgramPages(a nand.PageAddr, data []byte) (int, error) {
	g := b.chip.Geometry()
	pb := g.PageBytes
	if len(data)%pb != 0 {
		return 0, fmt.Errorf("%w: group data is %d bytes, not a multiple of page size %d", ErrProtocol, len(data), pb)
	}
	count := len(data) / pb
	b.groupDone = 0
	for p := 0; p < count; p++ {
		if err := b.Cmd(CmdProgram); err != nil {
			return b.groupDone, err
		}
		pa := nand.PageAddr{Block: a.Block, Page: a.Page + p}
		if err := b.Addr(addrCycles(g, pa)...); err != nil {
			return b.groupDone, err
		}
		if err := b.WriteData(data[p*pb : (p+1)*pb]); err != nil {
			return b.groupDone, err
		}
		op := byte(CmdProgramPlane)
		if p == count-1 {
			op = CmdProgramConfirm
		}
		if err := b.Cmd(op); err != nil {
			return b.groupDone, err
		}
	}
	return b.groupDone, nil
}

// ProbeVoltagesInto probes count consecutive pages via the batched vendor
// opcode, copying the streamed levels into the caller-owned buffer. The
// whole run costs one command cycle plus the data transfer.
func (b *Bus) ProbeVoltagesInto(a nand.PageAddr, count int, out []uint8) (int, error) {
	g := b.chip.Geometry()
	cp := g.CellsPerPage()
	if len(out) < count*cp {
		return 0, fmt.Errorf("%w: probe buffer holds %d levels, %d pages need %d", ErrProtocol, len(out), count, count*cp)
	}
	if count < 1 {
		return 0, nil
	}
	if err := b.Cmd(CmdVendorProbeBatch); err != nil {
		return 0, err
	}
	if err := b.Addr(addrCycles(g, a)...); err != nil {
		return 0, err
	}
	u := uint32(count)
	if err := b.WriteData([]byte{byte(u), byte(u >> 8), byte(u >> 16), byte(u >> 24)}); err != nil {
		return 0, err
	}
	levels, err := b.ReadData(count * cp)
	if err != nil {
		return 0, err
	}
	copy(out[:count*cp], levels)
	return count, nil
}

// PartialProgram delivers one PP pulse to the listed cells using ONLY the
// standard PROGRAM + RESET idiom (§1): the data pattern drives the chosen
// cells toward '0' and the reset aborts the operation after a single
// charge step.
func (b *Bus) PartialProgram(a nand.PageAddr, cells []int) error {
	g := b.chip.Geometry()
	if cap(b.ppPattern) < g.PageBytes {
		b.ppPattern = make([]byte, g.PageBytes)
	}
	pattern := b.ppPattern[:g.PageBytes]
	for i := range pattern {
		pattern[i] = 0xFF
	}
	for _, c := range cells {
		if c < 0 || c >= g.CellsPerPage() {
			return fmt.Errorf("%w: cell %d", ErrAddress, c)
		}
		pattern[c/8] &^= 1 << (7 - uint(c%8))
	}
	if err := b.Cmd(CmdProgram); err != nil {
		return err
	}
	if err := b.Addr(addrCycles(g, a)...); err != nil {
		return err
	}
	if err := b.WriteData(pattern); err != nil {
		return err
	}
	return b.Cmd(CmdReset)
}

// SetReadRef moves the read reference threshold (vendor feature; §5.3's
// decode read).
func (b *Bus) SetReadRef(level float64) error {
	if err := b.Cmd(CmdSetFeature); err != nil {
		return err
	}
	if err := b.Addr(FeatReadRef); err != nil {
		return err
	}
	tenths := int(level * 10)
	return b.WriteData([]byte{byte(tenths), byte(tenths >> 8)})
}

// ProbePage reads per-cell voltage levels via the vendor characterisation
// command.
func (b *Bus) ProbePage(a nand.PageAddr) ([]byte, error) {
	if err := b.Cmd(CmdVendorProbe); err != nil {
		return nil, err
	}
	if err := b.Addr(addrCycles(b.chip.Geometry(), a)...); err != nil {
		return nil, err
	}
	return b.ReadData(b.chip.Geometry().CellsPerPage())
}

// SetReadRefFine moves the read reference with full float64 resolution
// (the register the host adapter decodes with; see FeatReadRefFine).
func (b *Bus) SetReadRefFine(level float64) error {
	if err := b.Cmd(CmdSetFeature); err != nil {
		return err
	}
	if err := b.Addr(FeatReadRefFine); err != nil {
		return err
	}
	bits := math.Float64bits(level)
	p := make([]byte, 8)
	for i := range p {
		p[i] = byte(bits >> (8 * i))
	}
	return b.WriteData(p)
}

// BlockHealth fetches the vendor health report for a block: its PEC and
// grown-bad flag.
func (b *Bus) BlockHealth(block int) (pec int, bad bool, err error) {
	if err := b.Cmd(CmdVendorHealth); err != nil {
		return 0, false, err
	}
	row := block * b.chip.Geometry().PagesPerBlock
	if err := b.Addr(byte(row), byte(row>>8), byte(row>>16)); err != nil {
		return 0, false, err
	}
	rep, err := b.ReadData(5)
	if err != nil {
		return 0, false, err
	}
	pec = int(uint32(rep[0]) | uint32(rep[1])<<8 | uint32(rep[2])<<16 | uint32(rep[3])<<24)
	return pec, rep[4] != 0, nil
}

// CycleBlock fast-forwards wear on a block via the vendor cycle command.
func (b *Bus) CycleBlock(block, n int) error {
	if err := b.Cmd(CmdVendorCycle); err != nil {
		return err
	}
	row := block * b.chip.Geometry().PagesPerBlock
	if err := b.Addr(byte(row), byte(row>>8), byte(row>>16)); err != nil {
		return err
	}
	u := uint32(n)
	return b.WriteData([]byte{byte(u), byte(u >> 8), byte(u >> 16), byte(u >> 24)})
}

// FineProgram drives the §6.2 in-controller fine-programming command: a
// page pattern whose 0-bits select the cells, then the float64 target.
func (b *Bus) FineProgram(a nand.PageAddr, cells []int, target float64) error {
	g := b.chip.Geometry()
	pattern := make([]byte, g.PageBytes)
	for i := range pattern {
		pattern[i] = 0xFF
	}
	for _, c := range cells {
		if c < 0 || c >= g.CellsPerPage() {
			return fmt.Errorf("%w: cell %d", ErrAddress, c)
		}
		pattern[c/8] &^= 1 << (7 - uint(c%8))
	}
	if err := b.Cmd(CmdVendorFine); err != nil {
		return err
	}
	if err := b.Addr(addrCycles(g, a)...); err != nil {
		return err
	}
	if err := b.WriteData(pattern); err != nil {
		return err
	}
	bits := math.Float64bits(target)
	p := make([]byte, 8)
	for i := range p {
		p[i] = byte(bits >> (8 * i))
	}
	return b.WriteData(p)
}
