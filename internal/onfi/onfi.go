// Package onfi models the standard NAND flash command interface (ONFI,
// the paper's [31]) as a bus-level state machine over the simulated chip:
// command cycles, address cycles, data cycles, and a status register.
//
// It exists to demonstrate the paper's §1 claim mechanically: partial
// programming "requires only standard flash interface commands (i.e.,
// PROGRAM and RESET)". Issuing CmdProgram + address + data and then
// aborting with CmdReset — instead of confirming with CmdProgramConfirm —
// delivers one coarse partial-programming pulse to the cells the data
// pattern targets. That RESET-mid-PROGRAM idiom is exactly how the
// paper's prototype drives VT-HI on unmodified devices; the vendor-only
// operations (read-reference shift, per-cell probe) are exposed as
// SET-FEATURE / vendor commands, matching §6.2's description of what the
// NDA unlocked.
package onfi

import (
	"errors"
	"fmt"
	"math"

	"stashflash/internal/nand"
)

// Command opcodes. The core set follows the ONFI convention; the vendor
// opcodes stand in for the NDA'd commands of §6.2.
const (
	CmdRead           = 0x00 // begin read: address cycles follow
	CmdReadConfirm    = 0x30 // execute read into the data register
	CmdProgram        = 0x80 // begin program: address + data cycles follow
	CmdProgramConfirm = 0x10 // execute the program
	CmdErase          = 0x60 // begin erase: row address follows
	CmdEraseConfirm   = 0xD0 // execute the erase
	CmdStatus         = 0x70 // latch the status register for reading
	CmdReset          = 0xFF // abort the in-flight operation
	CmdSetFeature     = 0xEF // set a feature register (vendor: read ref)
	CmdVendorProbe    = 0xCA // vendor: per-cell voltage characterisation
	CmdVendorHealth   = 0xCB // vendor: per-block health report (PEC + bad mark)
	CmdVendorCycle    = 0xCC // vendor: tester-rig wear fast-forward on a block
	CmdVendorFine     = 0xCD // vendor: controller-grade fine program (§6.2)
)

// Feature addresses for CmdSetFeature.
const (
	// FeatReadRef sets the read reference threshold for subsequent reads
	// (the vendor command VT-HI decodes with; §5.3). The 2-byte payload
	// is the threshold in tenths of a normalized level, little-endian.
	FeatReadRef = 0x91
	// FeatReadRefFine sets the read reference with full resolution: the
	// 8-byte payload is an IEEE-754 float64, little-endian, in normalized
	// units. This is the register the host adapter uses so that
	// bus-driven decodes land on bit-identical thresholds to direct
	// ReadPageRef calls; FeatReadRef's tenths quantisation remains for
	// protocol-level compatibility demos.
	FeatReadRefFine = 0x92
)

// Status register bits.
const (
	StatusFail  = 0x01 // last operation failed
	StatusReady = 0x40 // device ready for a new command
)

// busState tracks the interface state machine.
type busState int

const (
	stateIdle busState = iota
	stateReadAddr
	stateReadData
	stateProgramAddr
	stateProgramData
	stateEraseAddr
	stateStatus
	stateFeatureAddr
	stateFeatureData
	stateProbeAddr
	stateProbeData
	stateHealthAddr
	stateCycleAddr
	stateCycleData
	stateFineAddr
	stateFineData
)

// Errors surfaced by the bus.
var (
	ErrProtocol = errors.New("onfi: command sequence violates the protocol")
	ErrAddress  = errors.New("onfi: malformed or out-of-range address")
)

// Bus is one chip's command interface. Not safe for concurrent use (the
// physical bus is inherently serial).
type Bus struct {
	chip *nand.Chip

	state   busState
	rowSet  bool
	row     int // block*pagesPerBlock + page
	colSet  bool
	col     int
	dataBuf []byte
	dataOff int
	status  byte
	readRef float64
	featBuf []byte
	feat    byte
	rec     CycleRecorder // optional cycle trace sink (see trace.go)
}

// New attaches a bus to a chip. The read reference starts at the model's
// public default.
func New(chip *nand.Chip) *Bus {
	return &Bus{
		chip:    chip,
		status:  StatusReady,
		readRef: chip.Model().ReadRef,
	}
}

// rowToAddr converts a row address to a page address, validating range.
func (b *Bus) rowToAddr() (nand.PageAddr, error) {
	g := b.chip.Geometry()
	if !b.rowSet || b.row < 0 || b.row >= g.Blocks*g.PagesPerBlock {
		return nand.PageAddr{}, ErrAddress
	}
	return nand.PageAddr{Block: b.row / g.PagesPerBlock, Page: b.row % g.PagesPerBlock}, nil
}

func (b *Bus) fail() {
	b.status = StatusReady | StatusFail
	b.state = stateIdle
}

func (b *Bus) ok() {
	b.status = StatusReady
	b.state = stateIdle
}

// Cmd latches a command byte.
func (b *Bus) Cmd(op byte) error {
	err := b.cmd(op)
	b.recordCmd(op)
	return err
}

func (b *Bus) cmd(op byte) error {
	switch op {
	case CmdReset:
		return b.reset()
	case CmdStatus:
		b.state = stateStatus
		return nil
	}
	switch op {
	case CmdRead:
		b.beginAddr(stateReadAddr)
	case CmdReadConfirm:
		return b.execRead()
	case CmdProgram:
		b.beginAddr(stateProgramAddr)
	case CmdProgramConfirm:
		return b.execProgram()
	case CmdErase:
		b.beginAddr(stateEraseAddr)
	case CmdEraseConfirm:
		return b.execErase()
	case CmdSetFeature:
		b.state = stateFeatureAddr
		b.featBuf = b.featBuf[:0]
	case CmdVendorProbe:
		b.beginAddr(stateProbeAddr)
	case CmdVendorHealth:
		b.beginAddr(stateHealthAddr)
	case CmdVendorCycle:
		b.beginAddr(stateCycleAddr)
	case CmdVendorFine:
		b.beginAddr(stateFineAddr)
	default:
		b.fail()
		return fmt.Errorf("%w: unknown opcode %#02x", ErrProtocol, op)
	}
	return nil
}

func (b *Bus) beginAddr(s busState) {
	b.state = s
	b.rowSet = false
	b.colSet = false
	b.dataBuf = nil
	b.dataOff = 0
}

// Addr sends address cycles: two column bytes then three row bytes,
// little-endian, the classic 5-cycle NAND addressing.
func (b *Bus) Addr(bytes ...byte) error {
	feature := b.state == stateFeatureAddr
	err := b.addr(bytes...)
	if feature {
		b.recordAddr(int(b.feat), 0)
	} else {
		b.recordAddr(b.row, b.col)
	}
	return err
}

func (b *Bus) addr(bytes ...byte) error {
	switch b.state {
	case stateReadAddr, stateProgramAddr, stateEraseAddr, stateProbeAddr,
		stateHealthAddr, stateCycleAddr, stateFineAddr:
	case stateFeatureAddr:
		if len(bytes) != 1 {
			b.fail()
			return fmt.Errorf("%w: feature address is one cycle", ErrProtocol)
		}
		b.feat = bytes[0]
		b.state = stateFeatureData
		b.featBuf = b.featBuf[:0]
		return nil
	default:
		b.fail()
		return fmt.Errorf("%w: address cycle outside an addressed command", ErrProtocol)
	}
	// Block ops take only row cycles (3); page ops take 2 column + 3 row.
	want := 5
	if b.state == stateEraseAddr || b.state == stateHealthAddr || b.state == stateCycleAddr {
		want = 3
	}
	if len(bytes) != want {
		b.fail()
		return fmt.Errorf("%w: got %d address cycles, want %d", ErrAddress, len(bytes), want)
	}
	if want == 5 {
		b.col = int(bytes[0]) | int(bytes[1])<<8
		b.colSet = true
		bytes = bytes[2:]
	} else {
		b.col = 0
		b.colSet = true
	}
	b.row = int(bytes[0]) | int(bytes[1])<<8 | int(bytes[2])<<16
	b.rowSet = true
	switch b.state {
	case stateReadAddr:
		b.state = stateReadData // awaiting CmdReadConfirm
	case stateProgramAddr:
		b.state = stateProgramData
		b.dataBuf = b.dataBuf[:0]
	case stateProbeAddr:
		b.state = stateProbeData // awaiting data out
		return b.execProbe()
	case stateHealthAddr:
		return b.execHealth()
	case stateCycleAddr:
		b.state = stateCycleData
		b.dataBuf = b.dataBuf[:0]
	case stateFineAddr:
		b.state = stateFineData
		b.dataBuf = b.dataBuf[:0]
	}
	return nil
}

// WriteData clocks data cycles into the page register (program path or
// feature payload).
func (b *Bus) WriteData(p []byte) error {
	err := b.writeData(p)
	b.recordData(CycleDataIn, len(p))
	return err
}

func (b *Bus) writeData(p []byte) error {
	switch b.state {
	case stateProgramData:
		b.dataBuf = append(b.dataBuf, p...)
		if len(b.dataBuf) > b.chip.Geometry().PageBytes {
			b.fail()
			return fmt.Errorf("%w: page register overflow", ErrProtocol)
		}
		return nil
	case stateFeatureData:
		b.featBuf = append(b.featBuf, p...)
		if len(b.featBuf) >= featLen(b.feat) {
			return b.execFeature()
		}
		return nil
	case stateCycleData:
		b.dataBuf = append(b.dataBuf, p...)
		if len(b.dataBuf) > 4 {
			b.fail()
			return fmt.Errorf("%w: cycle count is a 4-byte payload", ErrProtocol)
		}
		if len(b.dataBuf) == 4 {
			return b.execCycle()
		}
		return nil
	case stateFineData:
		want := b.chip.Geometry().PageBytes + 8
		b.dataBuf = append(b.dataBuf, p...)
		if len(b.dataBuf) > want {
			b.fail()
			return fmt.Errorf("%w: fine-program register overflow", ErrProtocol)
		}
		if len(b.dataBuf) == want {
			return b.execFine()
		}
		return nil
	default:
		b.fail()
		return fmt.Errorf("%w: data cycle outside a data phase", ErrProtocol)
	}
}

// ReadData clocks n bytes out of the data register (after a read or probe
// confirm, or a status latch).
func (b *Bus) ReadData(n int) ([]byte, error) {
	out, err := b.readData(n)
	b.recordData(CycleDataOut, len(out))
	return out, err
}

func (b *Bus) readData(n int) ([]byte, error) {
	if b.state == stateStatus {
		out := make([]byte, n)
		for i := range out {
			out[i] = b.status
		}
		return out, nil
	}
	if b.dataBuf == nil {
		return nil, fmt.Errorf("%w: no data latched", ErrProtocol)
	}
	if b.dataOff+n > len(b.dataBuf) {
		n = len(b.dataBuf) - b.dataOff
	}
	out := b.dataBuf[b.dataOff : b.dataOff+n]
	b.dataOff += n
	return out, nil
}

// Status returns the status register directly (sugar over Cmd(CmdStatus)).
func (b *Bus) Status() byte { return b.status }

func (b *Bus) execRead() error {
	if b.state != stateReadData {
		b.fail()
		return fmt.Errorf("%w: read confirm without read setup", ErrProtocol)
	}
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	data, err := b.chip.ReadPageRef(a, b.readRef)
	if err != nil {
		b.fail()
		return err
	}
	if b.col > len(data) {
		b.fail()
		return ErrAddress
	}
	b.dataBuf = data[b.col:]
	b.dataOff = 0
	b.status = StatusReady
	b.state = stateIdle
	return nil
}

func (b *Bus) execProgram() error {
	if b.state != stateProgramData {
		b.fail()
		return fmt.Errorf("%w: program confirm without program setup", ErrProtocol)
	}
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	g := b.chip.Geometry()
	if b.col != 0 || len(b.dataBuf) != g.PageBytes {
		b.fail()
		return fmt.Errorf("%w: full-page program requires column 0 and %d data bytes", ErrProtocol, g.PageBytes)
	}
	if err := b.chip.ProgramPage(a, b.dataBuf); err != nil {
		b.fail()
		return err
	}
	b.ok()
	return nil
}

func (b *Bus) execErase() error {
	if b.state != stateEraseAddr || !b.rowSet {
		b.fail()
		return fmt.Errorf("%w: erase confirm without erase setup", ErrProtocol)
	}
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	if err := b.chip.EraseBlock(a.Block); err != nil {
		b.fail()
		return err
	}
	b.ok()
	return nil
}

// reset implements CmdReset. An idle reset only clears the interface
// state. A reset that lands while a program is staged — address and a
// full page register latched — models aborting the array operation
// mid-flight, the paper's partial-programming trick: the cells the
// pattern drives toward '0' receive exactly one coarse charge pulse
// instead of the full incremental-step sequence.
func (b *Bus) reset() error {
	if b.state == stateProgramData && b.rowSet && len(b.dataBuf) == b.chip.Geometry().PageBytes {
		a, err := b.rowToAddr()
		if err != nil {
			b.fail()
			return err
		}
		var cells []int
		for i := 0; i < b.chip.Geometry().CellsPerPage(); i++ {
			if (b.dataBuf[i/8]>>(7-uint(i%8)))&1 == 0 {
				cells = append(cells, i)
			}
		}
		if len(cells) > 0 {
			if err := b.chip.PartialProgram(a, cells); err != nil {
				b.fail()
				return err
			}
		}
	}
	b.dataBuf = nil
	b.dataOff = 0
	b.ok()
	return nil
}

// featLen returns the payload size of a feature register. Unknown
// features get the classic 2-byte subfeature payload and are rejected at
// execution time.
func featLen(feat byte) int {
	if feat == FeatReadRefFine {
		return 8
	}
	return 2
}

func (b *Bus) execFeature() error {
	switch b.feat {
	case FeatReadRef:
		tenths := int(b.featBuf[0]) | int(b.featBuf[1])<<8
		b.readRef = float64(tenths) / 10
		b.ok()
		return nil
	case FeatReadRefFine:
		var bits uint64
		for i := 0; i < 8; i++ {
			bits |= uint64(b.featBuf[i]) << (8 * i)
		}
		b.readRef = math.Float64frombits(bits)
		b.ok()
		return nil
	default:
		b.fail()
		return fmt.Errorf("%w: unknown feature %#02x", ErrProtocol, b.feat)
	}
}

// execHealth services CmdVendorHealth: a 5-byte report for the addressed
// block — PEC as little-endian uint32 plus the grown-bad flag. This is
// metadata the controller keeps anyway; exposing it as a vendor command
// lets bus-only hosts run the wear-levelling and remap logic the FTL and
// stegfs layers need.
func (b *Bus) execHealth() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	pec := uint32(b.chip.PEC(a.Block))
	bad := byte(0)
	if b.chip.IsBadBlock(a.Block) {
		bad = 1
	}
	b.dataBuf = []byte{byte(pec), byte(pec >> 8), byte(pec >> 16), byte(pec >> 24), bad}
	b.dataOff = 0
	b.status = StatusReady
	b.state = stateIdle
	return nil
}

// execCycle services CmdVendorCycle: fast-forward wear by the latched
// 4-byte little-endian cycle count. The physical tester performs real
// program/erase loops; the simulated chip exposes the same effect as one
// command so bus-driven pre-conditioning stays cheap.
func (b *Bus) execCycle() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	n := int(uint32(b.dataBuf[0]) | uint32(b.dataBuf[1])<<8 |
		uint32(b.dataBuf[2])<<16 | uint32(b.dataBuf[3])<<24)
	b.dataBuf = nil
	if err := b.chip.CycleBlock(a.Block, n); err != nil {
		b.fail()
		return err
	}
	b.ok()
	return nil
}

// execFine services CmdVendorFine: the §6.2 in-controller programming
// operation. The latched payload is a full page pattern (0-bits select
// cells, as in PROGRAM) followed by the 8-byte float64 target level. A
// pattern selecting no cells completes without touching the array, the
// same no-op guard every host-side caller applies before a direct
// FineProgram call.
func (b *Bus) execFine() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	g := b.chip.Geometry()
	if b.col != 0 {
		b.fail()
		return fmt.Errorf("%w: fine program requires column 0", ErrProtocol)
	}
	pattern := b.dataBuf[:g.PageBytes]
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(b.dataBuf[g.PageBytes+i]) << (8 * i)
	}
	target := math.Float64frombits(bits)
	var cells []int
	for i := 0; i < g.CellsPerPage(); i++ {
		if (pattern[i/8]>>(7-uint(i%8)))&1 == 0 {
			cells = append(cells, i)
		}
	}
	b.dataBuf = nil
	if len(cells) > 0 {
		if err := b.chip.FineProgram(a, cells, target); err != nil {
			b.fail()
			return err
		}
	}
	b.ok()
	return nil
}

func (b *Bus) execProbe() error {
	a, err := b.rowToAddr()
	if err != nil {
		b.fail()
		return err
	}
	levels, err := b.chip.ProbePage(a)
	if err != nil {
		b.fail()
		return err
	}
	b.dataBuf = levels
	b.dataOff = 0
	b.status = StatusReady
	return nil
}

// --- convenience wrappers (what host software builds over the raw bus) ---

// rowOf packs a page address into a row number.
func rowOf(g nand.Geometry, a nand.PageAddr) int {
	return a.Block*g.PagesPerBlock + a.Page
}

// addrCycles builds the 5-cycle address for a page operation.
func addrCycles(g nand.Geometry, a nand.PageAddr) []byte {
	row := rowOf(g, a)
	return []byte{0, 0, byte(row), byte(row >> 8), byte(row >> 16)}
}

// ReadPage performs a full read transaction at the current read reference.
func (b *Bus) ReadPage(a nand.PageAddr) ([]byte, error) {
	if err := b.Cmd(CmdRead); err != nil {
		return nil, err
	}
	if err := b.Addr(addrCycles(b.chip.Geometry(), a)...); err != nil {
		return nil, err
	}
	if err := b.Cmd(CmdReadConfirm); err != nil {
		return nil, err
	}
	return b.ReadData(b.chip.Geometry().PageBytes)
}

// ProgramPage performs a full program transaction.
func (b *Bus) ProgramPage(a nand.PageAddr, data []byte) error {
	if err := b.Cmd(CmdProgram); err != nil {
		return err
	}
	if err := b.Addr(addrCycles(b.chip.Geometry(), a)...); err != nil {
		return err
	}
	if err := b.WriteData(data); err != nil {
		return err
	}
	return b.Cmd(CmdProgramConfirm)
}

// EraseBlock performs a full erase transaction.
func (b *Bus) EraseBlock(block int) error {
	if err := b.Cmd(CmdErase); err != nil {
		return err
	}
	row := block * b.chip.Geometry().PagesPerBlock
	if err := b.Addr(byte(row), byte(row>>8), byte(row>>16)); err != nil {
		return err
	}
	return b.Cmd(CmdEraseConfirm)
}

// PartialProgram delivers one PP pulse to the listed cells using ONLY the
// standard PROGRAM + RESET idiom (§1): the data pattern drives the chosen
// cells toward '0' and the reset aborts the operation after a single
// charge step.
func (b *Bus) PartialProgram(a nand.PageAddr, cells []int) error {
	g := b.chip.Geometry()
	pattern := make([]byte, g.PageBytes)
	for i := range pattern {
		pattern[i] = 0xFF
	}
	for _, c := range cells {
		if c < 0 || c >= g.CellsPerPage() {
			return fmt.Errorf("%w: cell %d", ErrAddress, c)
		}
		pattern[c/8] &^= 1 << (7 - uint(c%8))
	}
	if err := b.Cmd(CmdProgram); err != nil {
		return err
	}
	if err := b.Addr(addrCycles(g, a)...); err != nil {
		return err
	}
	if err := b.WriteData(pattern); err != nil {
		return err
	}
	return b.Cmd(CmdReset)
}

// SetReadRef moves the read reference threshold (vendor feature; §5.3's
// decode read).
func (b *Bus) SetReadRef(level float64) error {
	if err := b.Cmd(CmdSetFeature); err != nil {
		return err
	}
	if err := b.Addr(FeatReadRef); err != nil {
		return err
	}
	tenths := int(level * 10)
	return b.WriteData([]byte{byte(tenths), byte(tenths >> 8)})
}

// ProbePage reads per-cell voltage levels via the vendor characterisation
// command.
func (b *Bus) ProbePage(a nand.PageAddr) ([]byte, error) {
	if err := b.Cmd(CmdVendorProbe); err != nil {
		return nil, err
	}
	if err := b.Addr(addrCycles(b.chip.Geometry(), a)...); err != nil {
		return nil, err
	}
	return b.ReadData(b.chip.Geometry().CellsPerPage())
}

// SetReadRefFine moves the read reference with full float64 resolution
// (the register the host adapter decodes with; see FeatReadRefFine).
func (b *Bus) SetReadRefFine(level float64) error {
	if err := b.Cmd(CmdSetFeature); err != nil {
		return err
	}
	if err := b.Addr(FeatReadRefFine); err != nil {
		return err
	}
	bits := math.Float64bits(level)
	p := make([]byte, 8)
	for i := range p {
		p[i] = byte(bits >> (8 * i))
	}
	return b.WriteData(p)
}

// BlockHealth fetches the vendor health report for a block: its PEC and
// grown-bad flag.
func (b *Bus) BlockHealth(block int) (pec int, bad bool, err error) {
	if err := b.Cmd(CmdVendorHealth); err != nil {
		return 0, false, err
	}
	row := block * b.chip.Geometry().PagesPerBlock
	if err := b.Addr(byte(row), byte(row>>8), byte(row>>16)); err != nil {
		return 0, false, err
	}
	rep, err := b.ReadData(5)
	if err != nil {
		return 0, false, err
	}
	pec = int(uint32(rep[0]) | uint32(rep[1])<<8 | uint32(rep[2])<<16 | uint32(rep[3])<<24)
	return pec, rep[4] != 0, nil
}

// CycleBlock fast-forwards wear on a block via the vendor cycle command.
func (b *Bus) CycleBlock(block, n int) error {
	if err := b.Cmd(CmdVendorCycle); err != nil {
		return err
	}
	row := block * b.chip.Geometry().PagesPerBlock
	if err := b.Addr(byte(row), byte(row>>8), byte(row>>16)); err != nil {
		return err
	}
	u := uint32(n)
	return b.WriteData([]byte{byte(u), byte(u >> 8), byte(u >> 16), byte(u >> 24)})
}

// FineProgram drives the §6.2 in-controller fine-programming command: a
// page pattern whose 0-bits select the cells, then the float64 target.
func (b *Bus) FineProgram(a nand.PageAddr, cells []int, target float64) error {
	g := b.chip.Geometry()
	pattern := make([]byte, g.PageBytes)
	for i := range pattern {
		pattern[i] = 0xFF
	}
	for _, c := range cells {
		if c < 0 || c >= g.CellsPerPage() {
			return fmt.Errorf("%w: cell %d", ErrAddress, c)
		}
		pattern[c/8] &^= 1 << (7 - uint(c%8))
	}
	if err := b.Cmd(CmdVendorFine); err != nil {
		return err
	}
	if err := b.Addr(addrCycles(g, a)...); err != nil {
		return err
	}
	if err := b.WriteData(pattern); err != nil {
		return err
	}
	bits := math.Float64bits(target)
	p := make([]byte, 8)
	for i := range p {
		p[i] = byte(bits >> (8 * i))
	}
	return b.WriteData(p)
}
