package onfi

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

func newBus(seed uint64) (*Bus, *nand.Chip) {
	chip := nand.NewChip(nand.TestModel(), seed)
	return New(chip), chip
}

func randPage(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestProgramReadTransaction(t *testing.T) {
	bus, chip := newBus(1)
	rng := rand.New(rand.NewPCG(1, 1))
	data := randPage(rng, chip.Geometry().PageBytes)
	a := nand.PageAddr{Block: 2, Page: 3}
	if err := bus.ProgramPage(a, data); err != nil {
		t.Fatal(err)
	}
	if bus.Status()&StatusFail != 0 {
		t.Fatal("program set the fail bit")
	}
	got, err := bus.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		x := got[i] ^ data[i]
		for x != 0 {
			diff += int(x & 1)
			x >>= 1
		}
	}
	if diff > 3 {
		t.Fatalf("%d bit differences; far above the raw BER budget", diff)
	}
}

func TestEraseTransaction(t *testing.T) {
	bus, chip := newBus(2)
	rng := rand.New(rand.NewPCG(2, 2))
	a := nand.PageAddr{Block: 1, Page: 0}
	if err := bus.ProgramPage(a, randPage(rng, chip.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	if err := bus.EraseBlock(1); err != nil {
		t.Fatal(err)
	}
	if chip.PEC(1) != 1 {
		t.Fatalf("PEC = %d", chip.PEC(1))
	}
	got, err := bus.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatal("block not erased through the bus")
		}
	}
}

// The paper's §1 claim, end to end: PROGRAM + RESET delivers a partial
// pulse, iterating it walks chosen cells over the hidden threshold, and a
// SET-FEATURE read-reference shift reads the hidden bits back — all
// through standard-interface transactions.
func TestVTHIFlowOverStandardCommands(t *testing.T) {
	bus, chip := newBus(3)
	rng := rand.New(rand.NewPCG(3, 3))
	g := chip.Geometry()
	a := nand.PageAddr{Block: 0, Page: 0}
	if err := bus.ProgramPage(a, randPage(rng, g.PageBytes)); err != nil {
		t.Fatal(err)
	}
	// Pick erased cells via the vendor probe.
	levels, err := bus.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	var hidden []int
	for i, v := range levels {
		if v < 30 && len(hidden) < 32 {
			hidden = append(hidden, i)
		}
	}
	if len(hidden) < 32 {
		t.Fatalf("only %d candidate cells", len(hidden))
	}
	const vth = 34
	// Algorithm 1 over the bus: read at Vth, pulse stragglers via
	// PROGRAM+RESET, repeat.
	for step := 0; step < 15; step++ {
		if err := bus.SetReadRef(vth); err != nil {
			t.Fatal(err)
		}
		raw, err := bus.ReadPage(a)
		if err != nil {
			t.Fatal(err)
		}
		var pending []int
		for _, c := range hidden {
			if (raw[c/8]>>(7-uint(c%8)))&1 == 1 { // still below Vth
				pending = append(pending, c)
			}
		}
		if len(pending) == 0 {
			break
		}
		if err := bus.PartialProgram(a, pending); err != nil {
			t.Fatal(err)
		}
	}
	// Decode: one read at the shifted reference.
	if err := bus.SetReadRef(vth); err != nil {
		t.Fatal(err)
	}
	raw, err := bus.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	above := 0
	for _, c := range hidden {
		if (raw[c/8]>>(7-uint(c%8)))&1 == 0 {
			above++
		}
	}
	if above < 30 {
		t.Fatalf("only %d/32 cells crossed the hidden threshold via PROGRAM+RESET", above)
	}
	// Public data must still read normally at the default reference.
	if err := bus.SetReadRef(chip.Model().ReadRef); err != nil {
		t.Fatal(err)
	}
	pub, err := bus.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range hidden {
		if (pub[c/8]>>(7-uint(c%8)))&1 != 1 {
			t.Fatal("a hidden cell no longer reads as public '1'")
		}
	}
}

func TestIdleResetIsHarmless(t *testing.T) {
	bus, chip := newBus(4)
	a := nand.PageAddr{Block: 0, Page: 0}
	before, _ := chip.ProbePage(a)
	if err := bus.Cmd(CmdReset); err != nil {
		t.Fatal(err)
	}
	after, _ := chip.ProbePage(a)
	if !bytes.Equal(before, after) {
		t.Fatal("idle reset changed cell state")
	}
	if bus.Status() != StatusReady {
		t.Fatal("idle reset left bad status")
	}
}

func TestStatusRegister(t *testing.T) {
	bus, _ := newBus(5)
	if err := bus.Cmd(CmdStatus); err != nil {
		t.Fatal(err)
	}
	st, err := bus.ReadData(1)
	if err != nil {
		t.Fatal(err)
	}
	if st[0]&StatusReady == 0 {
		t.Fatal("device not ready after init")
	}
}

func TestProtocolViolations(t *testing.T) {
	bus, chip := newBus(6)
	g := chip.Geometry()
	if err := bus.Cmd(0x42); err == nil {
		t.Error("unknown opcode accepted")
	}
	if bus.Status()&StatusFail == 0 {
		t.Error("fail bit not set after bad opcode")
	}
	// Address cycles without a command.
	if err := bus.Addr(0, 0, 0, 0, 0); err == nil {
		t.Error("stray address cycles accepted")
	}
	// Confirm without setup.
	if err := bus.Cmd(CmdProgramConfirm); err == nil {
		t.Error("confirm without setup accepted")
	}
	// Wrong address cycle count.
	if err := bus.Cmd(CmdRead); err != nil {
		t.Fatal(err)
	}
	if err := bus.Addr(1, 2); err == nil {
		t.Error("short address accepted")
	}
	// Out-of-range row.
	if err := bus.Cmd(CmdRead); err != nil {
		t.Fatal(err)
	}
	row := g.Blocks * g.PagesPerBlock
	if err := bus.Addr(0, 0, byte(row), byte(row>>8), byte(row>>16)); err != nil {
		t.Fatal(err) // address cycles latch; range checked at confirm
	}
	if err := bus.Cmd(CmdReadConfirm); err == nil {
		t.Error("out-of-range read accepted")
	}
	// Page register overflow.
	if err := bus.Cmd(CmdProgram); err != nil {
		t.Fatal(err)
	}
	if err := bus.Addr(0, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := bus.WriteData(make([]byte, g.PageBytes+1)); err == nil {
		t.Error("page register overflow accepted")
	}
	// Unknown feature.
	if err := bus.Cmd(CmdSetFeature); err != nil {
		t.Fatal(err)
	}
	if err := bus.Addr(0x55); err != nil {
		t.Fatal(err)
	}
	if err := bus.WriteData([]byte{1, 2}); err == nil {
		t.Error("unknown feature accepted")
	}
}

func TestPartialProgramValidation(t *testing.T) {
	bus, _ := newBus(7)
	if err := bus.PartialProgram(nand.PageAddr{Block: 0, Page: 0}, []int{-1}); err == nil {
		t.Error("bad cell index accepted")
	}
}
