package onfi

import "fmt"

// Bus cycle tracing: an optional recorder observes every cycle the bus
// executes — command latches, address phases, data transfers — together
// with the status register after the cycle. This is the raw material for
// the observability layer's flight recorder (internal/obs.TraceRing):
// when a bus-driven run diverges from a direct-call run, the last N
// cycles show exactly what the host put on the bus and what the device
// answered.

// CycleKind distinguishes the bus phases a Cycle can record.
type CycleKind uint8

const (
	// CycleCmd is a command latch (Op holds the opcode).
	CycleCmd CycleKind = iota
	// CycleAddr is a completed address phase (Row/Col hold the address).
	CycleAddr
	// CycleDataIn is a host-to-device data transfer (N bytes).
	CycleDataIn
	// CycleDataOut is a device-to-host data transfer (N bytes).
	CycleDataOut
)

// String names the cycle kind as it appears in JSON traces.
func (k CycleKind) String() string {
	switch k {
	case CycleCmd:
		return "cmd"
	case CycleAddr:
		return "addr"
	case CycleDataIn:
		return "data_in"
	case CycleDataOut:
		return "data_out"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MarshalJSON renders the kind as its name, keeping traces readable.
func (k CycleKind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// Cycle is one recorded bus cycle. Fields beyond Kind are populated per
// kind: Op for command latches; Row and Col for address phases (Row is
// the block-major row address, or the feature register for SET-FEATURE);
// N for data transfers. Status always carries the status register after
// the cycle, so a FAIL is attributable to the exact cycle that raised it.
type Cycle struct {
	Kind   CycleKind `json:"kind"`
	Op     byte      `json:"op,omitempty"`
	Row    int       `json:"row,omitempty"`
	Col    int       `json:"col,omitempty"`
	N      int       `json:"n,omitempty"`
	Status byte      `json:"status"`
}

// CycleRecorder consumes recorded cycles. Implementations must tolerate
// concurrent calls when several buses share one recorder; the bus itself
// records synchronously on its (single) driving goroutine.
type CycleRecorder interface {
	RecordCycle(Cycle)
}

// SetRecorder attaches a cycle recorder to the bus (nil detaches). The
// recorder observes every subsequent cycle, protocol errors included.
func (b *Bus) SetRecorder(r CycleRecorder) { b.rec = r }

// SetCycleRecorder attaches a cycle recorder to the adapter's bus (nil
// detaches).
func (d *Device) SetCycleRecorder(r CycleRecorder) { d.bus.SetRecorder(r) }

// recordCmd traces a command latch after it executed.
func (b *Bus) recordCmd(op byte) {
	if b.rec != nil {
		b.rec.RecordCycle(Cycle{Kind: CycleCmd, Op: op, Status: b.status})
	}
}

// recordAddr traces a completed address phase.
func (b *Bus) recordAddr(row, col int) {
	if b.rec != nil {
		b.rec.RecordCycle(Cycle{Kind: CycleAddr, Row: row, Col: col, Status: b.status})
	}
}

// recordData traces a data transfer of n bytes in the given direction.
func (b *Bus) recordData(kind CycleKind, n int) {
	if b.rec != nil {
		b.rec.RecordCycle(Cycle{Kind: kind, N: n, Status: b.status})
	}
}
