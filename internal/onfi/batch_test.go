package onfi

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
)

// The batch surface of the bus adapter must be bit-identical to direct
// chip calls: multi-plane staging, cached sequential reads and the
// batched vendor probe change only the cycle count, never the results or
// the chip's state evolution.

func TestDeviceBatchMatchesDirect(t *testing.T) {
	direct, dev := twin(21)
	g := direct.Geometry()
	rng := rand.New(rand.NewPCG(21, 21))
	start := nand.PageAddr{Block: 1, Page: 1}
	const group = 4
	data := make([]byte, group*g.PageBytes)
	for i := range data {
		data[i] = byte(rng.IntN(256))
	}

	// Direct chip: batched program/read/probe (already proven identical
	// to single ops in internal/nand). Bus device: the multi-plane /
	// cached / batched opcode paths.
	if n, err := direct.ProgramPages(start, data); err != nil || n != group {
		t.Fatalf("direct ProgramPages = %d, %v", n, err)
	}
	if n, err := dev.ProgramPages(start, data); err != nil || n != group {
		t.Fatalf("bus ProgramPages = %d, %v", n, err)
	}

	wantPages := make([]byte, group*g.PageBytes)
	gotPages := make([]byte, group*g.PageBytes)
	if n, err := direct.ReadPages(start, group, wantPages); err != nil || n != group {
		t.Fatalf("direct ReadPages = %d, %v", n, err)
	}
	if n, err := dev.ReadPages(start, group, gotPages); err != nil || n != group {
		t.Fatalf("bus ReadPages = %d, %v", n, err)
	}
	if !bytes.Equal(wantPages, gotPages) {
		t.Fatal("cached sequential reads diverge from direct batched reads")
	}

	wantLv := make([]uint8, group*g.CellsPerPage())
	gotLv := make([]uint8, group*g.CellsPerPage())
	if n, err := direct.ProbeVoltages(start, group, wantLv); err != nil || n != group {
		t.Fatalf("direct ProbeVoltages = %d, %v", n, err)
	}
	if n, err := dev.ProbeVoltages(start, group, gotLv); err != nil || n != group {
		t.Fatalf("bus ProbeVoltages = %d, %v", n, err)
	}
	if !bytes.Equal(wantLv, gotLv) {
		t.Fatal("batched vendor probe diverges from direct batched probe")
	}

	// Into variants at a shifted reference.
	a := nand.PageAddr{Block: start.Block, Page: start.Page + 1}
	want, err := direct.ReadPageRef(a, 37.5)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, g.PageBytes)
	if err := dev.ReadPageRefInto(a, 37.5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("ReadPageRefInto diverges from direct ReadPageRef")
	}

	if direct.Ledger() != dev.Ledger() {
		t.Fatalf("ledgers diverge: direct %+v bus %+v", direct.Ledger(), dev.Ledger())
	}
}

func TestDeviceBatchRangeClamp(t *testing.T) {
	_, dev := twin(5)
	g := dev.Geometry()
	// A group that runs off the end of the block completes the valid
	// prefix and surfaces the chip-style range error, like the chip's own
	// batched surface.
	start := nand.PageAddr{Block: 0, Page: g.PagesPerBlock - 2}
	data := bytes.Repeat([]byte{0x5A}, 3*g.PageBytes)
	n, err := dev.ProgramPages(start, data)
	if err == nil || n != 2 {
		t.Fatalf("ProgramPages over block end = %d, %v; want 2 pages and a range error", n, err)
	}
	out := make([]byte, 3*g.PageBytes)
	n, err = dev.ReadPages(start, 3, out)
	if err == nil || n != 2 {
		t.Fatalf("ReadPages over block end = %d, %v; want 2 pages and a range error", n, err)
	}
	lv := make([]uint8, 3*g.CellsPerPage())
	n, err = dev.ProbeVoltages(start, 3, lv)
	if err == nil || n != 2 {
		t.Fatalf("ProbeVoltages over block end = %d, %v; want 2 pages and a range error", n, err)
	}
	// NeighborPrograms sees the batch-programmed pages (bitmap stays
	// exact through the multi-plane path).
	nbr, err := dev.NeighborPrograms(nand.PageAddr{Block: 0, Page: g.PagesPerBlock - 3})
	if err != nil {
		t.Fatal(err)
	}
	if nbr != 1 {
		t.Fatalf("NeighborPrograms = %d, want 1 (page above was batch-programmed)", nbr)
	}
}

func TestBusCachedReadProtocol(t *testing.T) {
	chip := nand.NewChip(nand.TestModel(), 9)
	bus := New(chip)
	g := chip.Geometry()
	// Cached read without a prior completed read is a protocol error.
	if err := bus.Cmd(CmdReadCache); !errors.Is(err, ErrProtocol) {
		t.Fatalf("cached read cold = %v, want protocol error", err)
	}
	// Read the last page of block 0, then a cached read must refuse to
	// cross into block 1.
	last := nand.PageAddr{Block: 0, Page: g.PagesPerBlock - 1}
	if _, err := bus.ReadPage(last); err != nil {
		t.Fatal(err)
	}
	if err := bus.Cmd(CmdReadCache); !errors.Is(err, ErrProtocol) {
		t.Fatalf("cached read across block = %v, want protocol error", err)
	}
}

func TestBusProgramPlaneProtocol(t *testing.T) {
	chip := nand.NewChip(nand.TestModel(), 11)
	bus := New(chip)
	// Staging without a latched program page is a protocol error.
	if err := bus.Cmd(CmdProgramPlane); !errors.Is(err, ErrProtocol) {
		t.Fatalf("plane stage cold = %v, want protocol error", err)
	}
	// A reset drops staged pages: nothing must land on the chip.
	g := chip.Geometry()
	img := bytes.Repeat([]byte{0x00}, g.PageBytes)
	if err := bus.Cmd(CmdProgram); err != nil {
		t.Fatal(err)
	}
	if err := bus.Addr(addrCycles(g, nand.PageAddr{Block: 0, Page: 0})...); err != nil {
		t.Fatal(err)
	}
	if err := bus.WriteData(img); err != nil {
		t.Fatal(err)
	}
	if err := bus.Cmd(CmdProgramPlane); err != nil {
		t.Fatal(err)
	}
	if err := bus.Cmd(CmdReset); err != nil {
		t.Fatal(err)
	}
	got, err := bus.ReadPage(nand.PageAddr{Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xFF {
			t.Fatalf("byte %d = %#02x after aborted staged program, want erased 0xFF", i, b)
		}
	}
}
