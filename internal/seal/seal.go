// Package seal provides the cryptographic wrapping for hidden payloads.
//
// The paper's data flow (Fig 4) encrypts hidden data before embedding so
// that stored bit values are uniformly distributed ("VT-HI encrypts hidden
// data, not unlike standard SSD controller data scrambling", §5.3) and so
// an adversary who somehow extracted the raw cells would still face
// ciphertext. One master secret drives everything; independent subkeys for
// cell location, encryption, and integrity are derived with HKDF-SHA256
// (RFC 5869, implemented here on stdlib HMAC).
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// KeySize is the size in bytes of every derived subkey.
const KeySize = 32

// Keys holds the independent subkeys derived from one master secret.
type Keys struct {
	// Locate seeds the PRNG that picks which cells hold hidden bits.
	Locate []byte
	// Encrypt is the AES-256-CTR key for hidden payload confidentiality.
	Encrypt []byte
	// MAC authenticates volume-level metadata (per-page MACs would burn
	// scarce hidden capacity; integrity is applied at coarser grain).
	MAC []byte
}

// DeriveKeys expands a master secret of any length into the three subkeys.
func DeriveKeys(master []byte) Keys {
	prk := hkdfExtract(nil, master)
	return Keys{
		Locate:  hkdfExpand(prk, []byte("vt-hi/locate"), KeySize),
		Encrypt: hkdfExpand(prk, []byte("vt-hi/encrypt"), KeySize),
		MAC:     hkdfExpand(prk, []byte("vt-hi/mac"), KeySize),
	}
}

// hkdfExtract implements HKDF-Extract with SHA-256.
func hkdfExtract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	h := hmac.New(sha256.New, salt)
	h.Write(ikm)
	return h.Sum(nil)
}

// hkdfExpand implements HKDF-Expand with SHA-256 for n <= 255*32 bytes.
func hkdfExpand(prk, info []byte, n int) []byte {
	var out, t []byte
	var ctr byte
	for len(out) < n {
		ctr++
		h := hmac.New(sha256.New, prk)
		h.Write(t)
		h.Write(info)
		h.Write([]byte{ctr})
		t = h.Sum(nil)
		out = append(out, t...)
	}
	return out[:n]
}

// EncryptPage encrypts (or, being CTR, decrypts) a hidden payload bound to
// a specific flash page and embedding epoch. The IV is derived from
// (page, epoch): hidden data never stores a nonce — every hidden bit is
// precious — so uniqueness comes from never re-embedding a different
// payload at the same (page, epoch). The FTL layer bumps the epoch each
// time a payload migrates (§5.1's re-embedding on data movement).
func EncryptPage(key []byte, page, epoch uint64, data []byte) []byte {
	block, err := aes.NewCipher(key)
	if err != nil {
		// Only possible with a wrong key length: a programming error.
		panic("seal: " + err.Error())
	}
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[0:8], page)
	binary.BigEndian.PutUint64(iv[8:16], epoch)
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, data)
	return out
}

// Sum computes the HMAC-SHA256 tag of data under key.
func Sum(key, data []byte) [32]byte {
	h := hmac.New(sha256.New, key)
	h.Write(data)
	var tag [32]byte
	copy(tag[:], h.Sum(nil))
	return tag
}

// Verify reports whether tag authenticates data under key, in constant
// time.
func Verify(key, data []byte, tag [32]byte) bool {
	want := Sum(key, data)
	return hmac.Equal(want[:], tag[:])
}
