// Package seal provides the cryptographic wrapping for hidden payloads.
//
// The paper's data flow (Fig 4) encrypts hidden data before embedding so
// that stored bit values are uniformly distributed ("VT-HI encrypts hidden
// data, not unlike standard SSD controller data scrambling", §5.3) and so
// an adversary who somehow extracted the raw cells would still face
// ciphertext. One master secret drives everything; independent subkeys for
// cell location, encryption, and integrity are derived with HKDF-SHA256
// (RFC 5869, implemented here on stdlib HMAC).
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// KeySize is the size in bytes of every derived subkey.
const KeySize = 32

// Keys holds the independent subkeys derived from one master secret.
type Keys struct {
	// Locate seeds the PRNG that picks which cells hold hidden bits.
	Locate []byte
	// Encrypt is the AES-256-CTR key for hidden payload confidentiality.
	Encrypt []byte
	// MAC authenticates volume-level metadata (per-page MACs would burn
	// scarce hidden capacity; integrity is applied at coarser grain).
	MAC []byte
}

// DeriveKeys expands a master secret of any length into the three subkeys.
func DeriveKeys(master []byte) Keys {
	prk := hkdfExtract(nil, master)
	return Keys{
		Locate:  hkdfExpand(prk, []byte("vt-hi/locate"), KeySize),
		Encrypt: hkdfExpand(prk, []byte("vt-hi/encrypt"), KeySize),
		MAC:     hkdfExpand(prk, []byte("vt-hi/mac"), KeySize),
	}
}

// hkdfExtract implements HKDF-Extract with SHA-256.
func hkdfExtract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	h := hmac.New(sha256.New, salt)
	h.Write(ikm)
	return h.Sum(nil)
}

// hkdfExpand implements HKDF-Expand with SHA-256 for n <= 255*32 bytes.
func hkdfExpand(prk, info []byte, n int) []byte {
	var out, t []byte
	var ctr byte
	for len(out) < n {
		ctr++
		h := hmac.New(sha256.New, prk)
		h.Write(t)
		h.Write(info)
		h.Write([]byte{ctr})
		t = h.Sum(nil)
		out = append(out, t...)
	}
	return out[:n]
}

// Sealer encrypts hidden payloads under one encryption subkey with the
// AES key schedule expanded once at construction, so per-page sealing on
// the hide/reveal hot path costs no key setup and no allocations. The
// counter and keystream scratch live in the struct; like a nand.Device, a
// Sealer is not safe for concurrent use.
type Sealer struct {
	block cipher.Block
	ctr   [aes.BlockSize]byte
	ks    [aes.BlockSize]byte
}

// NewSealer builds a sealer for an AES key (16, 24 or 32 bytes; the
// derived Keys.Encrypt is 32). It panics on a bad key length, a
// programming error.
func NewSealer(key []byte) *Sealer {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("seal: " + err.Error())
	}
	return &Sealer{block: block}
}

// EncryptPageInto encrypts (or, being CTR, decrypts) data into dst, which
// must hold at least len(data) bytes and may alias data for in-place use.
// The stream is bit-identical to EncryptPage under the same key: AES-CTR
// with the (page, epoch) IV, counter incremented big-endian per block.
func (s *Sealer) EncryptPageInto(dst []byte, page, epoch uint64, data []byte) {
	if len(dst) < len(data) {
		panic("seal: EncryptPageInto dst shorter than data")
	}
	binary.BigEndian.PutUint64(s.ctr[0:8], page)
	binary.BigEndian.PutUint64(s.ctr[8:16], epoch)
	for off := 0; off < len(data); off += aes.BlockSize {
		s.block.Encrypt(s.ks[:], s.ctr[:])
		n := len(data) - off
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		for i := 0; i < n; i++ {
			dst[off+i] = data[off+i] ^ s.ks[i]
		}
		for i := aes.BlockSize - 1; i >= 0; i-- {
			s.ctr[i]++
			if s.ctr[i] != 0 {
				break
			}
		}
	}
}

// EncryptPage encrypts (or, being CTR, decrypts) a hidden payload bound to
// a specific flash page and embedding epoch. The IV is derived from
// (page, epoch): hidden data never stores a nonce — every hidden bit is
// precious — so uniqueness comes from never re-embedding a different
// payload at the same (page, epoch). The FTL layer bumps the epoch each
// time a payload migrates (§5.1's re-embedding on data movement).
//
// It expands the key schedule on every call; steady-state callers should
// hold a Sealer and use EncryptPageInto.
func EncryptPage(key []byte, page, epoch uint64, data []byte) []byte {
	out := make([]byte, len(data))
	NewSealer(key).EncryptPageInto(out, page, epoch, data)
	return out
}

// Sum computes the HMAC-SHA256 tag of data under key.
func Sum(key, data []byte) [32]byte {
	h := hmac.New(sha256.New, key)
	h.Write(data)
	var tag [32]byte
	copy(tag[:], h.Sum(nil))
	return tag
}

// Verify reports whether tag authenticates data under key, in constant
// time.
func Verify(key, data []byte, tag [32]byte) bool {
	want := Sum(key, data)
	return hmac.Equal(want[:], tag[:])
}
