package seal

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestDeriveKeysIndependent(t *testing.T) {
	k := DeriveKeys([]byte("master"))
	if len(k.Locate) != KeySize || len(k.Encrypt) != KeySize || len(k.MAC) != KeySize {
		t.Fatal("subkey length wrong")
	}
	if bytes.Equal(k.Locate, k.Encrypt) || bytes.Equal(k.Encrypt, k.MAC) || bytes.Equal(k.Locate, k.MAC) {
		t.Fatal("subkeys must be pairwise distinct")
	}
}

func TestDeriveKeysDeterministic(t *testing.T) {
	a := DeriveKeys([]byte("m"))
	b := DeriveKeys([]byte("m"))
	if !bytes.Equal(a.Encrypt, b.Encrypt) {
		t.Fatal("derivation not deterministic")
	}
	c := DeriveKeys([]byte("other"))
	if bytes.Equal(a.Encrypt, c.Encrypt) {
		t.Fatal("distinct masters produced equal subkeys")
	}
}

func TestEncryptPageRoundTrip(t *testing.T) {
	k := DeriveKeys([]byte("m")).Encrypt
	f := func(page, epoch uint64, msg []byte) bool {
		ct := EncryptPage(k, page, epoch, msg)
		pt := EncryptPage(k, page, epoch, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncryptPageDomainSeparation(t *testing.T) {
	k := DeriveKeys([]byte("m")).Encrypt
	msg := make([]byte, 64)
	a := EncryptPage(k, 1, 0, msg)
	b := EncryptPage(k, 2, 0, msg)
	c := EncryptPage(k, 1, 1, msg)
	if bytes.Equal(a, b) || bytes.Equal(a, c) {
		t.Fatal("page/epoch must separate keystreams")
	}
}

func TestMACVerify(t *testing.T) {
	k := DeriveKeys([]byte("m")).MAC
	data := []byte("metadata record")
	tag := Sum(k, data)
	if !Verify(k, data, tag) {
		t.Fatal("valid tag rejected")
	}
	data[0] ^= 1
	if Verify(k, data, tag) {
		t.Fatal("tampered data accepted")
	}
	data[0] ^= 1
	tag[0] ^= 1
	if Verify(k, data, tag) {
		t.Fatal("tampered tag accepted")
	}
}

func TestHKDFExpandLengths(t *testing.T) {
	prk := hkdfExtract(nil, []byte("ikm"))
	for _, n := range []int{1, 31, 32, 33, 100} {
		out := hkdfExpand(prk, []byte("info"), n)
		if len(out) != n {
			t.Errorf("expand(%d) returned %d bytes", n, len(out))
		}
	}
	// Prefix consistency: longer outputs extend shorter ones.
	a := hkdfExpand(prk, []byte("info"), 16)
	b := hkdfExpand(prk, []byte("info"), 64)
	if !bytes.Equal(a, b[:16]) {
		t.Error("expand outputs are not prefix-consistent")
	}
}

// The Sealer's hand-rolled CTR loop must match the stdlib stream exactly
// (EncryptPage is now defined in terms of it, so this pins the on-flash
// format against the independent reference).
func TestSealerMatchesStdlibCTR(t *testing.T) {
	key := DeriveKeys([]byte("ctr-pin")).Encrypt
	s := NewSealer(key)
	for _, n := range []int{0, 1, 15, 16, 17, 64, 100, 257} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 13)
		}
		got := make([]byte, n)
		s.EncryptPageInto(got, 7, 3, data)

		block, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		var iv [16]byte
		binary.BigEndian.PutUint64(iv[0:8], 7)
		binary.BigEndian.PutUint64(iv[8:16], 3)
		want := make([]byte, n)
		cipher.NewCTR(block, iv[:]).XORKeyStream(want, data)
		if !bytes.Equal(got, want) {
			t.Fatalf("len %d: Sealer stream diverges from stdlib CTR", n)
		}
	}
}

func TestSealerInPlaceRoundTrip(t *testing.T) {
	s := NewSealer(DeriveKeys([]byte("inplace")).Encrypt)
	buf := []byte("hidden payload bits, in place")
	orig := append([]byte(nil), buf...)
	s.EncryptPageInto(buf, 1, 2, buf)
	if bytes.Equal(buf, orig) {
		t.Fatal("ciphertext equals plaintext")
	}
	s.EncryptPageInto(buf, 1, 2, buf)
	if !bytes.Equal(buf, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestSealerZeroAllocSteadyState(t *testing.T) {
	s := NewSealer(DeriveKeys([]byte("alloc")).Encrypt)
	data := make([]byte, 2048)
	out := make([]byte, 2048)
	s.EncryptPageInto(out, 9, 9, data)
	if n := testing.AllocsPerRun(50, func() {
		s.EncryptPageInto(out, 9, 9, data)
	}); n != 0 {
		t.Fatalf("EncryptPageInto allocates %v objects/op, want 0", n)
	}
}
