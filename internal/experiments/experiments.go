// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate. Each experiment is a function
// returning a Result — named series (the figure's curves) and printable
// tables (the headline numbers) — so the cmd/experiments tool, the root
// benchmark suite and EXPERIMENTS.md all draw from one implementation.
//
// Experiments accept a Scale: the paper-sized runs (full 18048-byte pages,
// 31 blocks per SVM class, five replicate blocks) take minutes; the CI
// scale keeps every experiment in seconds while preserving the per-cell
// statistics, since all distribution shapes are per-cell properties and
// scaling only trades sample count for speed.
//
// Experiments fan their independent work units — chip samples, SVM-class
// block batches, replicate points — across a bounded worker pool
// (internal/parallel). Each unit owns its own chip sample and a PRNG
// stream partitioned from (Scale.Seed, experiment, unit index), and unit
// results are merged in index order, so Results are bit-identical for
// every Scale.Workers value; see seed.go and determinism_test.go.
package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"strings"

	"stashflash/internal/nand"
	"stashflash/internal/obs"
	"stashflash/internal/stats"
)

// Scale sizes an experiment run.
type Scale struct {
	// PageBytes is the simulated page size. Paper chips use 18048.
	PageBytes int
	// PagesPerBlock is the block height. The paper's §8 arithmetic uses
	// 64 pages per block.
	PagesPerBlock int
	// Blocks is the number of blocks materialisable per chip sample.
	Blocks int
	// BlocksPerClass is the number of blocks per SVM class (paper: 31).
	BlocksPerClass int
	// ChipSamples is the number of distinct chip samples (paper: 3-4).
	ChipSamples int
	// ReplicateBlocks is the number of blocks averaged per BER point
	// (paper: 5).
	ReplicateBlocks int
	// Seed drives all pseudo-randomness for reproducibility. Results are
	// a function of Seed alone, never of Workers: every work unit owns a
	// PRNG stream derived from (Seed, experiment, unit index), and unit
	// results are merged in index order.
	Seed uint64
	// Workers bounds the experiment engine's fan-out across independent
	// chips, blocks and replicate points. 0 means auto (the
	// STASHFLASH_WORKERS environment knob, else GOMAXPROCS); 1 forces a
	// serial run on the calling goroutine.
	Workers int
	// Backend selects how work units drive their chip samples: "" or
	// "direct" calls the simulator chip directly; "onfi" routes every
	// operation through the bus-level command adapter (internal/onfi),
	// which is bit-identical by construction. Results are a function of
	// Seed alone, never of Backend.
	Backend string
	// Metrics, when non-nil, wraps every work unit's device in the
	// observability decorator (internal/obs) recording per-op counters
	// and latency histograms into the collector. The wrapper is
	// results-transparent: Results are a function of Seed alone, never
	// of Metrics (see obs_test.go).
	Metrics *obs.Collector
	// EagerRetention switches every work unit's chip sample to the eager
	// reference retention engine: AdvanceRetention walks all live pages
	// immediately instead of deferring decay to the next sense. The two
	// engines are bit-identical by construction (nand/retention.go), so
	// Results are a function of Seed alone, never of EagerRetention —
	// the knob exists for equivalence tests and benchmark baselines.
	EagerRetention bool
}

// CIScale keeps every experiment under a few tens of seconds.
func CIScale() Scale {
	return Scale{
		PageBytes:       4512, // quarter of the real page
		PagesPerBlock:   8,
		Blocks:          128,
		BlocksPerClass:  8,
		ChipSamples:     3,
		ReplicateBlocks: 3,
		Seed:            1,
	}
}

// PaperScale reproduces the paper's sample sizes; expect minutes per
// experiment.
func PaperScale() Scale {
	return Scale{
		PageBytes:       18048,
		PagesPerBlock:   64,
		Blocks:          384,
		BlocksPerClass:  31,
		ChipSamples:     3,
		ReplicateBlocks: 5,
		Seed:            1,
	}
}

// modelA returns the vendor-A model at this scale.
func (s Scale) modelA() nand.Model {
	return nand.ModelA().ScaleGeometry(s.Blocks, s.PagesPerBlock, s.PageBytes)
}

// modelB returns the vendor-B model at this scale.
func (s Scale) modelB() nand.Model {
	return nand.ModelB().ScaleGeometry(s.Blocks, s.PagesPerBlock, s.PageBytes)
}

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table is a printable block of results.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Result is one regenerated figure or table.
type Result struct {
	ID     string
	Title  string
	Notes  []string
	Tables []Table
	Series []Series
}

// AddNote appends a context note shown with the result.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the result for a terminal.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n-- %s --\n", t.Title)
		writeAligned(w, t.Columns, t.Rows)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\nseries %q (%d points)\n", s.Name, len(s.X))
		cols := []string{"x", "y"}
		rows := make([][]string, len(s.X))
		for i := range s.X {
			rows[i] = []string{trimFloat(s.X[i]), trimFloat(s.Y[i])}
		}
		writeAligned(w, cols, rows)
	}
	fmt.Fprintln(w)
}

// WriteSummary renders only notes and tables (series suppressed), which is
// what the benchmark harness prints.
func (r *Result) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n-- %s --\n", t.Title)
		writeAligned(w, t.Columns, t.Rows)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "series %q: %d points, y: %s .. %s\n",
			s.Name, len(s.X), trimFloat(minOf(s.Y)), trimFloat(maxOf(s.Y)))
	}
	fmt.Fprintln(w)
}

func writeAligned(w io.Writer, cols []string, rows [][]string) {
	width := make([]int, len(cols))
	for i, c := range cols {
		width[i] = len(c)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for i, c := range cols {
		fmt.Fprintf(&b, "%-*s  ", width[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	for _, r := range rows {
		b.Reset()
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", width[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// histSeries converts a voltage histogram into a (level, % of cells)
// series over the given level range, matching the paper's plot axes.
func histSeries(name string, h *stats.Histogram, lo, hi int) Series {
	s := Series{Name: name}
	for lvl := lo; lvl <= hi && lvl < h.Bins(); lvl++ {
		s.X = append(s.X, float64(lvl))
		s.Y = append(s.Y, h.Fraction(lvl)*100)
	}
	return s
}

// addHist folds src's bin counts into dst; merging replicate histograms
// in index order keeps the accumulated distribution schedule-independent.
func addHist(dst, src *stats.Histogram) {
	for lvl := 0; lvl < src.Bins(); lvl++ {
		for k := 0; k < src.Count(lvl); k++ {
			dst.Add(src.BinCenter(lvl))
		}
	}
}

// randBits draws n uniform bits.
func randBits(rng *rand.Rand, n int) []uint8 {
	b := make([]uint8, n)
	for i := range b {
		b[i] = uint8(rng.IntN(2))
	}
	return b
}

// pct formats a ratio as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// f3 formats a float at three significant decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
