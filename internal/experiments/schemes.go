package experiments

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"stashflash/internal/core"
	"stashflash/internal/core/vthi"
	"stashflash/internal/core/womftl"
	"stashflash/internal/nand"
	"stashflash/internal/parallel"
	"stashflash/internal/svm"
	"stashflash/internal/tester"
)

// Schemes runs the cross-scheme bake-off: every hiding backend behind the
// core.Scheme seam is driven through the same harness — clean round-trips
// with ledger-cost accounting, fault-injected recovery, the §7 SVM
// detectability attack, and capacity planning — and the results are
// tabulated side by side. VT-HI (the paper's vendor-command scheme, robust
// operating point) is compared against WOM-FTL (PEARL-style generation
// coding over ordinary page programs, arXiv:2009.02011).
//
// The experiment is the reason the seam exists: every number below is
// produced by scheme-agnostic code (tester.HideBlock/RevealBlock, the
// shared SVM feature pipeline), so adding a scheme to the registry adds a
// row here with no new measurement code.

// schemeSpec names one bake-off contestant: its factory over the seam and
// its capacity planner.
type schemeSpec struct {
	name     string
	vendor   bool
	factory  core.SchemeFactory
	capacity func(m nand.Model) (core.CapacityReport, error)
}

func bakeoffSchemes() []schemeSpec {
	return []schemeSpec{
		{
			name:    "vthi-robust",
			vendor:  true,
			factory: vthi.Factory(vthi.RobustConfig()),
			capacity: func(m nand.Model) (core.CapacityReport, error) {
				return vthi.PlanCapacity(m, vthi.RobustConfig())
			},
		},
		{
			name:   "womftl",
			vendor: false,
			factory: func(dev nand.Device, master []byte) (core.Scheme, error) {
				return womftl.New(dev, master, womftl.DefaultConfig())
			},
			capacity: func(m nand.Model) (core.CapacityReport, error) {
				return womftl.PlanCapacity(m, womftl.DefaultConfig())
			},
		},
	}
}

// embedMode selects how schemeBlockWriter fills a block.
type embedMode int

const (
	// modeNormal writes every page through the scheme's public pipeline
	// with no hidden payload — the adversary's negative class.
	modeNormal embedMode = iota
	// modeInline hides with WriteAndHide while the block fills (the
	// shipping path for both schemes).
	modeInline
	// modePostHoc programs first and embeds afterwards (Hide), the
	// partial-program upgrade path whose voltage placement an adversary
	// might see.
	modePostHoc
)

// typedSchemeErr reports whether err is one of the seam's typed hiding
// outcomes — a visible, contractual loss (the caller remaps to a fresh
// cover page, as stegfs does), never silent corruption.
func typedSchemeErr(err error) bool {
	return errors.Is(err, core.ErrHiddenUnrecoverable) ||
		errors.Is(err, core.ErrPublicUncorrectable) ||
		errors.Is(err, nand.ErrProgramFailed) ||
		errors.Is(err, nand.ErrEraseFailed) ||
		errors.Is(err, nand.ErrBadBlock) ||
		errors.Is(err, nand.ErrPageProgrammed)
}

// schemeBlockWriter adapts a registered scheme to the SVM harness's
// hideFn shape: it fills one block page by page, embedding (or not)
// according to mode. Non-carrying pages under the scheme's stride get a
// plain public write, exactly as a filesystem would leave them. Typed
// embedding failures keep the block in its class: the attempted
// embedding's pulse activity is on the flash either way, which is
// exactly what the adversary gets to inspect.
func schemeBlockWriter(f core.SchemeFactory, key []byte, mode embedMode) hideFn {
	return func(ts *tester.Tester, block int, rng *rand.Rand) error {
		sc, err := f(ts.Device(), key)
		if err != nil {
			return err
		}
		g := ts.Device().Geometry()
		stride := sc.HiddenPageStride()
		for p := 0; p < g.PagesPerBlock; p++ {
			a := nand.PageAddr{Block: block, Page: p}
			pub := make([]byte, sc.PublicDataBytes())
			for i := range pub {
				pub[i] = byte(rng.IntN(256))
			}
			if mode == modeNormal || p%stride != 0 {
				if err := sc.WritePage(a, pub); err != nil {
					return err
				}
				continue
			}
			sec := make([]byte, sc.HiddenPayloadBytes())
			for i := range sec {
				sec[i] = byte(rng.IntN(256))
			}
			switch mode {
			case modeInline:
				if _, err := sc.WriteAndHide(a, pub, sec, 0); err != nil && !typedSchemeErr(err) {
					return err
				}
			case modePostHoc:
				if err := sc.WritePage(a, pub); err != nil {
					return err
				}
				if _, err := sc.Hide(a, sec, 0); err != nil && !typedSchemeErr(err) {
					return err
				}
			}
		}
		return nil
	}
}

// Schemes is the registered bake-off entry point.
func Schemes(s Scale) (*Result, error) {
	r := &Result{ID: "schemes", Title: "cross-scheme bake-off: VT-HI vs WOM-FTL"}
	key := []byte("schemes-key")
	specs := bakeoffSchemes()
	reps := s.ReplicateBlocks

	// Phase 1 — round-trip and fault units. One unit = (scheme, replicate
	// chip): it owns its device, fault plan and data streams, all
	// partitioned from (Seed, "schemes", unit path), so the fan-out is
	// bit-identical for every worker count.
	type unitOut struct {
		pages, exact         int
		payloadBytes         int
		hide                 core.HideStats
		reveal               core.RevealStats
		hideCost, revealCost nand.Ledger

		fHides, fHideErrs   int
		fExact, fRevealErrs int
		fSilent             int
		fAbsorbed, fRetries int
	}
	outs, err := parallel.Map(s.workers(), len(specs)*reps, func(u int) (unitOut, error) {
		si, rep := u/reps, u%reps
		var o unitOut
		ts := s.tester(s.modelA(), "schemes", uint64(si), uint64(rep))
		dev := ts.Device()
		sc, err := specs[si].factory(dev, key)
		if err != nil {
			return o, err
		}

		// Clean round-trip over one lightly worn block, ledger-costed
		// separately for the hide and reveal directions.
		const cleanBlock = 0
		if err := ts.CycleTo(cleanBlock, 100); err != nil {
			return o, err
		}
		epoch := uint64(dev.PEC(cleanBlock))
		before := ts.Ledger()
		payloads, hst, err := ts.HideBlock(sc, cleanBlock, epoch)
		o.hideCost = ts.Ledger().Sub(before)
		o.hide = hst
		if err != nil && !typedSchemeErr(err) {
			return o, fmt.Errorf("clean hide (%s): %w", specs[si].name, err)
		}
		// A typed hide failure truncates HideBlock: payloads covers only
		// the pages hidden before it, and the reveal below stops at the
		// partially embedded page — compare exactly the hidden prefix.
		before = ts.Ledger()
		got, rst, err := ts.RevealBlock(sc, cleanBlock, sc.HiddenPayloadBytes(), epoch)
		o.revealCost = ts.Ledger().Sub(before)
		o.reveal = rst
		if err != nil && !typedSchemeErr(err) {
			return o, fmt.Errorf("clean reveal (%s): %w", specs[si].name, err)
		}
		o.pages = len(payloads)
		for i := range payloads {
			o.payloadBytes += len(payloads[i])
			if i < len(got) && string(got[i]) == string(payloads[i]) {
				o.exact++
			}
		}

		// Faulted round-trips: attach a live plan, then classify every
		// payload outcome as exact, typed loss, or (forbidden) silent
		// corruption — the integrity contract both schemes must meet.
		planSeed, _ := s.subSeed("schemes/plan", uint64(si), uint64(rep))
		dev.SetFaultPlan(nand.NewFaultPlan(nand.FaultConfig{
			Seed:            planSeed,
			ProgramFailProb: 0.01,
			PPFailProb:      0.01,
			EraseFailProb:   0.01,
			BadBlockFrac:    0.02,
			ReadDisturbProb: 0.1,
		}))
		rng := s.rng("schemes/fault-data", uint64(si), uint64(rep))
		g := dev.Geometry()
		stride := sc.HiddenPageStride()
		for b := 1; b <= 2; b++ {
			if err := ts.CycleTo(b, 200); err != nil {
				continue // worn out before use: a typed, visible loss
			}
			type hid struct {
				page   int
				secret []byte
			}
			var hids []hid
			for p := 0; p < g.PagesPerBlock; p += stride {
				a := nand.PageAddr{Block: b, Page: p}
				pub := make([]byte, sc.PublicDataBytes())
				for i := range pub {
					pub[i] = byte(rng.IntN(256))
				}
				sec := make([]byte, sc.HiddenPayloadBytes())
				for i := range sec {
					sec[i] = byte(rng.IntN(256))
				}
				o.fHides++
				st, err := sc.WriteAndHide(a, pub, sec, 0)
				o.fAbsorbed += st.FaultsAbsorbed
				o.fRetries += st.Retries
				if err != nil {
					o.fHideErrs++ // typed loss at hide time: acceptable
					continue
				}
				hids = append(hids, hid{p, sec})
			}
			for _, hd := range hids {
				got, _, err := sc.Reveal(nand.PageAddr{Block: b, Page: hd.page}, len(hd.secret), 0)
				switch {
				case err != nil:
					o.fRevealErrs++ // typed loss at reveal time: acceptable
				case string(got) == string(hd.secret):
					o.fExact++
				default:
					o.fSilent++ // the one outcome the seam contract forbids
				}
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2 — the §7 SVM attack at matched wear (PEC 0 vs PEC 0, the
	// paper's headline security cell), run per embedding path. Feature
	// collection parallelises across chip samples; each sample's device is
	// owned by one worker.
	type detectSpec struct {
		name         string
		hide, normal hideFn
	}
	var detects []detectSpec
	for _, sp := range specs {
		detects = append(detects, detectSpec{
			name:   sp.name + " inline",
			hide:   schemeBlockWriter(sp.factory, key, modeInline),
			normal: schemeBlockWriter(sp.factory, key, modeNormal),
		})
		detects = append(detects, detectSpec{
			name:   sp.name + " post-hoc",
			hide:   schemeBlockWriter(sp.factory, key, modePostHoc),
			normal: schemeBlockWriter(sp.factory, key, modeNormal),
		})
	}
	accs := make([]float64, len(detects))
	for di, d := range detects {
		type classFeats struct{ hidden, normal [][]float64 }
		need := 2 * s.BlocksPerClass
		chipFeats, err := parallel.Map(s.workers(), s.ChipSamples, func(c int) (classFeats, error) {
			var cf classFeats
			ts := s.tester(s.modelA(), "schemes/svm/"+d.name, uint64(c))
			if g := ts.Device().Geometry().Blocks; need > g {
				return cf, fmt.Errorf("experiments: scale provides %d blocks/chip, bake-off needs %d", g, need)
			}
			block := 0
			for ki, fn := range []hideFn{d.hide, d.normal} {
				rng := s.rng("schemes/svm-class/"+d.name, uint64(c), uint64(ki))
				for i := 0; i < s.BlocksPerClass; i++ {
					f, err := blockFeatures(ts, block, 0, rng, fn)
					if err != nil {
						return cf, err
					}
					block++
					if ki == 0 {
						cf.hidden = append(cf.hidden, f)
					} else {
						cf.normal = append(cf.normal, f)
					}
				}
			}
			return cf, nil
		})
		if err != nil {
			return nil, err
		}
		var trX, teX [][]float64
		var trY, teY []int
		for c := 0; c < s.ChipSamples; c++ {
			add := func(feats [][]float64, label int) {
				for _, f := range feats {
					if c == s.ChipSamples-1 {
						teX = append(teX, f)
						teY = append(teY, label)
					} else {
						trX = append(trX, f)
						trY = append(trY, label)
					}
				}
			}
			add(chipFeats[c].hidden, 1)
			add(chipFeats[c].normal, -1)
		}
		best := svm.GridSearch(trX, trY, svm.DefaultGrid(), 3, s.Seed)
		scaler := svm.FitScaler(trX)
		model := svm.Train(scaler.Apply(trX), trY, best.Params)
		accs[di] = model.Accuracy(scaler.Apply(teX), teY)
	}

	// Tabulation. Headline comparison first, then fault detail, the attack
	// matrix, and the capacity plan.
	head := Table{
		Title: "clean-device round-trip and cost per scheme",
		Columns: []string{"scheme", "vendor cmds", "hidden B/page", "stride",
			"pages", "exact", "WA cells/bit", "hide ms/KiB", "reveal ms/KiB", "hide uJ/KiB"},
	}
	fault := Table{
		Title: "recovery under injected faults (p=0.01, disturb 0.1)",
		Columns: []string{"scheme", "hides", "hide err", "recovered",
			"reveal err", "silent", "absorbed", "retries"},
	}
	var recovery, hideCostSeries Series
	recovery.Name = "faulted exact recovery fraction"
	hideCostSeries.Name = "hide cost ms per hidden KiB"
	totalSilent := 0
	for si, sp := range specs {
		var a unitOut
		for rep := 0; rep < reps; rep++ {
			o := outs[si*reps+rep]
			a.pages += o.pages
			a.exact += o.exact
			a.payloadBytes += o.payloadBytes
			a.hide.Steps += o.hide.Steps
			a.hide.Cells += o.hide.Cells
			a.hide.Retries += o.hide.Retries
			a.hide.FaultsAbsorbed += o.hide.FaultsAbsorbed
			a.reveal.CorrectedHidden += o.reveal.CorrectedHidden
			a.reveal.Rereads += o.reveal.Rereads
			a.hideCost.Add(o.hideCost)
			a.revealCost.Add(o.revealCost)
			a.fHides += o.fHides
			a.fHideErrs += o.fHideErrs
			a.fExact += o.fExact
			a.fRevealErrs += o.fRevealErrs
			a.fSilent += o.fSilent
			a.fAbsorbed += o.fAbsorbed
			a.fRetries += o.fRetries
		}
		totalSilent += a.fSilent
		kib := float64(a.payloadBytes) / 1024
		hideMsPerKiB := float64(a.hideCost.Time.Microseconds()) / 1000 / kib
		revealMsPerKiB := float64(a.revealCost.Time.Microseconds()) / 1000 / kib
		sc, err := sp.factory(nand.NewChip(s.modelA(), 0), key)
		if err != nil {
			return nil, err
		}
		head.Rows = append(head.Rows, []string{
			sp.name,
			fmt.Sprint(sp.vendor),
			fmt.Sprint(sc.HiddenPayloadBytes()),
			fmt.Sprint(sc.HiddenPageStride()),
			fmt.Sprint(a.pages),
			fmt.Sprint(a.exact),
			f3(float64(a.hide.Cells) / float64(a.payloadBytes*8)),
			f3(hideMsPerKiB),
			f3(revealMsPerKiB),
			f3(a.hideCost.EnergyUJ / kib),
		})
		den := maxInt(a.fHides, 1)
		fault.Rows = append(fault.Rows, []string{
			sp.name,
			fmt.Sprint(a.fHides), fmt.Sprint(a.fHideErrs),
			fmt.Sprint(a.fExact), fmt.Sprint(a.fRevealErrs),
			fmt.Sprint(a.fSilent),
			fmt.Sprint(a.fAbsorbed), fmt.Sprint(a.fRetries),
		})
		recovery.X = append(recovery.X, float64(si))
		recovery.Y = append(recovery.Y, float64(a.fExact)/float64(den))
		hideCostSeries.X = append(hideCostSeries.X, float64(si))
		hideCostSeries.Y = append(hideCostSeries.Y, hideMsPerKiB)
	}

	attack := Table{
		Title:   "SVM detectability at matched wear (PEC 0, held-out chip)",
		Columns: []string{"scheme / path", "accuracy (%)"},
	}
	var attackSeries Series
	attackSeries.Name = "SVM matched-PEC accuracy %"
	for di, d := range detects {
		attack.Rows = append(attack.Rows, []string{d.name, fmt.Sprintf("%.0f", accs[di]*100)})
		attackSeries.X = append(attackSeries.X, float64(di))
		attackSeries.Y = append(attackSeries.Y, accs[di]*100)
	}

	capTbl := Table{
		Title: "capacity plan (model A at this scale)",
		Columns: []string{"scheme", "cells/page", "parity bits", "payload bits/page",
			"ECC overhead", "payload bits/block", "device payload", "device fraction"},
	}
	for _, sp := range specs {
		rep, err := sp.capacity(s.modelA())
		if err != nil {
			return nil, err
		}
		capTbl.Rows = append(capTbl.Rows, []string{
			sp.name,
			fmt.Sprint(rep.CellsPerPage),
			fmt.Sprint(rep.ECCParityBits),
			fmt.Sprint(rep.PayloadBitsPerPage),
			pct(rep.ECCOverheadFraction),
			fmt.Sprint(rep.PayloadBitsPerBlock),
			fmt.Sprintf("%d B", rep.DevicePayloadBytes),
			fmt.Sprintf("%.4f%%", rep.FractionOfDeviceBits*100),
		})
	}

	r.Tables = append(r.Tables, head, fault, attack, capTbl)
	r.Series = append(r.Series, recovery, hideCostSeries, attackSeries)
	if totalSilent == 0 {
		r.AddNote("no silent corruption from either scheme under injected faults: exact reveal or typed error, per the seam contract")
	} else {
		r.AddNote("WARNING: %d silent corruptions — a scheme violates the seam's integrity contract", totalSilent)
	}
	r.AddNote("womftl needs no vendor commands: hidden bits ride the WOM generation choice of ordinary page programs")
	r.AddNote("inline (WriteAndHide) paths should sit near 50%% accuracy; post-hoc upgrade pulses are the voltage-visible path")
	return r, nil
}
