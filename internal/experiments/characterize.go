package experiments

import (
	"fmt"
	"math"

	"stashflash/internal/nand"
	"stashflash/internal/parallel"
	"stashflash/internal/stats"
	"stashflash/internal/tester"
)

// Fig1 regenerates paper Figure 1: typical voltage level distributions of
// cells in SLC mode versus MLC mode. The MLC curves must be visibly
// narrower and sit at four levels instead of two.
func Fig1(s Scale) (*Result, error) {
	r := &Result{ID: "fig1", Title: "SLC vs MLC voltage level distributions"}
	ts := s.tester(s.modelA(), "fig1")
	dev := ts.Device()

	// Block 0: SLC-style programming with random data.
	if _, err := ts.ProgramRandomBlock(0); err != nil {
		return nil, err
	}
	slc := tester.NewVoltageHistogram()
	for p := 0; p < dev.Geometry().PagesPerBlock; p++ {
		lv, err := dev.ProbePage(nand.PageAddr{Block: 0, Page: p})
		if err != nil {
			return nil, err
		}
		for _, v := range lv {
			slc.Add(float64(v))
		}
	}

	// Block 1: MLC programming (two random logical pages per wordline).
	mlc := tester.NewVoltageHistogram()
	for p := 0; p < dev.Geometry().PagesPerBlock; p++ {
		a := nand.PageAddr{Block: 1, Page: p}
		if err := dev.ProgramPageMLC(a, ts.RandomPage(), ts.RandomPage()); err != nil {
			return nil, err
		}
	}
	for p := 0; p < dev.Geometry().PagesPerBlock; p++ {
		lv, err := dev.ProbePage(nand.PageAddr{Block: 1, Page: p})
		if err != nil {
			return nil, err
		}
		for _, v := range lv {
			mlc.Add(float64(v))
		}
	}

	r.Series = append(r.Series,
		histSeries("SLC", slc, 0, 230),
		histSeries("MLC", mlc, 0, 230),
	)

	// Quantify the "MLC distributions are typically narrower" caption:
	// spread of the topmost programmed state in each mode.
	slcSpread := slc.Quantile(0.995) - slc.Quantile(0.505) // '0' state: upper half of mass
	mlcTop := spreadAbove(mlc, 160)
	r.Tables = append(r.Tables, Table{
		Title:   "state widths (normalized levels)",
		Columns: []string{"mode", "states", "top-state spread"},
		Rows: [][]string{
			{"SLC", "2", f3(slcSpread)},
			{"MLC", "4", f3(mlcTop)},
		},
	})
	if mlcTop < slcSpread {
		r.AddNote("MLC top state is narrower than SLC programmed state (%.1f < %.1f), as in Fig 1", mlcTop, slcSpread)
	} else {
		r.AddNote("WARNING: MLC state not narrower than SLC (%.1f >= %.1f)", mlcTop, slcSpread)
	}
	return r, nil
}

// spreadAbove measures the 1%-99% spread of histogram mass above a level.
func spreadAbove(h *stats.Histogram, lvl int) float64 {
	sub := stats.NewHistogram(0, 256, 256)
	for i := lvl; i < h.Bins(); i++ {
		for k := 0; k < h.Count(i); k++ {
			sub.Add(h.BinCenter(i))
		}
	}
	if sub.Total() == 0 {
		return 0
	}
	return sub.Quantile(0.99) - sub.Quantile(0.01)
}

// Fig2 regenerates paper Figure 2: voltage distributions of four chip
// samples of the same model, at block level (a, b) and page level (c, d),
// split into non-programmed (erased) and programmed states.
func Fig2(s Scale) (*Result, error) {
	r := &Result{ID: "fig2", Title: "voltage distribution variability across chip samples"}
	summary := Table{
		Title:   "per-sample state statistics (block level)",
		Columns: []string{"sample", "erased mean", "erased std", "prog mean", "prog std", "erased>34"},
	}
	// Each chip sample is an independent unit: it owns its device and host
	// streams, so the four samples characterise in parallel.
	type sampleOut struct {
		series []Series
		row    []string
	}
	outs, err := parallel.Map(s.workers(), 4, func(sample int) (sampleOut, error) {
		ts := s.tester(s.modelA(), "fig2", uint64(sample))
		if _, err := ts.ProgramRandomBlock(0); err != nil {
			return sampleOut{}, err
		}
		be, bp, err := ts.BlockDistribution(0)
		if err != nil {
			return sampleOut{}, err
		}
		pe, pp, err := ts.PageDistribution(nand.PageAddr{Block: 0, Page: s.PagesPerBlock / 2})
		if err != nil {
			return sampleOut{}, err
		}
		label := fmt.Sprintf("sample %d", sample+1)
		return sampleOut{
			series: []Series{
				histSeries(label+" block erased", be, 0, 80),
				histSeries(label+" block programmed", bp, 120, 210),
				histSeries(label+" page erased", pe, 0, 80),
				histSeries(label+" page programmed", pp, 120, 210),
			},
			row: []string{
				label,
				f3(be.Mean()), f3(histStd(be)),
				f3(bp.Mean()), f3(histStd(bp)),
				pct(fractionAbove(be, 34)),
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		r.Series = append(r.Series, o.series...)
		summary.Rows = append(summary.Rows, o.row)
	}
	r.Tables = append(r.Tables, summary)
	r.AddNote("paper: 99.99%% of cells in [0,70] (erased) and [120,210] (programmed); samples differ visibly")
	return r, nil
}

func fractionAbove(h *stats.Histogram, lvl int) float64 {
	if h.Total() == 0 {
		return 0
	}
	n := 0
	for i := lvl; i < h.Bins(); i++ {
		n += h.Count(i)
	}
	return float64(n) / float64(h.Total())
}

func histStd(h *stats.Histogram) float64 {
	mean := h.Mean()
	var ss float64
	for i := 0; i < h.Bins(); i++ {
		d := h.BinCenter(i) - mean
		ss += float64(h.Count(i)) * d * d
	}
	if h.Total() < 2 {
		return 0
	}
	return math.Sqrt(ss / float64(h.Total()-1))
}

// Fig3 regenerates paper Figure 3: distributions shift right as blocks
// accumulate program/erase cycles.
func Fig3(s Scale) (*Result, error) {
	// All four PEC points live on one chip sample (the paper cycles blocks
	// of the same device), so Fig 3 stays a single serial unit.
	r := &Result{ID: "fig3", Title: "voltage distribution shift with wear (PEC 0..3000)"}
	ts := s.tester(s.modelA(), "fig3")
	pecs := []int{0, 1000, 2000, 3000}
	shift := Table{
		Title:   "state means by PEC",
		Columns: []string{"PEC", "erased mean", "programmed mean"},
	}
	var base [2]float64
	for i, pec := range pecs {
		block := i
		if err := ts.CycleTo(block, pec); err != nil {
			return nil, err
		}
		if _, err := ts.ProgramRandomBlock(block); err != nil {
			return nil, err
		}
		e, p, err := ts.BlockDistribution(block)
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series,
			histSeries(fmt.Sprintf("PEC %d erased", pec), e, 0, 80),
			histSeries(fmt.Sprintf("PEC %d programmed", pec), p, 120, 210),
		)
		if i == 0 {
			base = [2]float64{e.Mean(), p.Mean()}
		}
		shift.Rows = append(shift.Rows, []string{
			fmt.Sprint(pec), f3(e.Mean()), f3(p.Mean()),
		})
		if err := ts.Device().DropBlockState(block); err != nil {
			return nil, err
		}
		if i == len(pecs)-1 {
			r.AddNote("shift over 3000 PEC: erased %+0.2f, programmed %+0.2f (paper: right shift for both states)",
				e.Mean()-base[0], p.Mean()-base[1])
		}
	}
	r.Tables = append(r.Tables, shift)
	return r, nil
}
