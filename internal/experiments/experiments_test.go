package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps per-experiment smoke tests fast; shape assertions use
// CIScale selectively where the statistics need the sample size.
func tinyScale() Scale {
	return Scale{
		PageBytes:       1128,
		PagesPerBlock:   8,
		Blocks:          128,
		BlocksPerClass:  4,
		ChipSamples:     3,
		ReplicateBlocks: 2,
		Seed:            3,
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must have an entry.
	want := []string{
		"fig1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "tbl1",
		"thru", "energy", "wear", "cap", "relia", "vendor2", "pubber",
		"snapshot", "sumstat", "fig10page", "faults", "retyears", "schemes",
		"fleetload",
	}
	for _, id := range want {
		if _, err := Lookup(id); err != nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestAllExperimentsRun smoke-tests every experiment end to end at tiny
// scale: each must complete and produce at least one table or series.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	s := tinyScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if r.ID != e.ID {
				t.Errorf("result ID %q != %q", r.ID, e.ID)
			}
			if len(r.Tables) == 0 && len(r.Series) == 0 {
				t.Error("experiment produced no output")
			}
			var sb strings.Builder
			r.WriteText(&sb)
			r.WriteSummary(&sb)
			if !strings.Contains(sb.String(), e.ID) {
				t.Error("rendered output missing experiment ID")
			}
		})
	}
}

// Shape assertions against the paper's headline claims, at CI scale.

func TestFig6ConvergesBelowOnePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("CI-scale experiment in -short mode")
	}
	s := CIScale()
	s.ReplicateBlocks = 2
	r, err := Fig6(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range r.Series {
		first := series.Y[0]
		at10 := series.Y[9]
		if first < 0.08 {
			t.Errorf("%s: step-1 BER %.3f suspiciously low (paper ~0.2)", series.Name, first)
		}
		if at10 > 0.035 {
			t.Errorf("%s: step-10 BER %.3f, paper converges below ~0.01", series.Name, at10)
		}
		if at10 >= first {
			t.Errorf("%s: BER did not decrease across steps", series.Name)
		}
	}
}

func TestThroughputRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("CI-scale experiment in -short mode")
	}
	r, err := Throughput(CIScale())
	if err != nil {
		t.Fatal(err)
	}
	// The advantage table holds "NNx" strings; parse the leading float.
	var enc, dec float64
	for _, row := range r.Tables[1].Rows {
		v, err := leadingFloat(row[1])
		if err != nil {
			t.Fatalf("bad ratio cell %q: %v", row[1], err)
		}
		switch row[0] {
		case "encode throughput ratio":
			enc = v
		case "decode throughput ratio":
			dec = v
		}
	}
	// Paper: 24x and 50x. Shape: both VT-HI advantages are an order of
	// magnitude or more. (Our encode loop exits as soon as Algorithm 1
	// converges rather than billing the fixed ten steps of the paper's
	// arithmetic, so the encode ratio lands above the paper's.)
	if enc < 8 {
		t.Errorf("encode advantage %.1fx, want >> 1 (paper 24x)", enc)
	}
	if dec < 20 {
		t.Errorf("decode advantage %.1fx, want large (paper 50x)", dec)
	}
}

// leadingFloat parses the numeric prefix of strings like "37x" or "1.15".
func leadingFloat(s string) (float64, error) {
	end := len(s)
	for i, c := range s {
		if (c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != 'e' {
			end = i
			break
		}
	}
	return strconv.ParseFloat(s[:end], 64)
}

func TestEnergyRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("CI-scale experiment in -short mode")
	}
	r, err := Energy(CIScale())
	if err != nil {
		t.Fatal(err)
	}
	var vt, pt float64
	for _, row := range r.Tables[0].Rows {
		v, err := leadingFloat(row[1])
		if err != nil {
			continue
		}
		switch row[0] {
		case "VT-HI":
			vt = v
		case "PT-HI":
			pt = v
		}
	}
	if vt <= 0 || pt <= 0 {
		t.Fatalf("bad energies: vt=%v pt=%v", vt, pt)
	}
	if pt/vt < 10 {
		t.Errorf("PT-HI/VT-HI energy ratio %.1f, paper 37x — want >> 1", pt/vt)
	}
}

func TestCapacityGain(t *testing.T) {
	r, err := Capacity(CIScale())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "gain") {
			found = true
		}
	}
	if !found {
		t.Error("capacity result missing gain note")
	}
}
