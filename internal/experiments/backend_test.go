package experiments

import "testing"

// TestFaultsBackendEquivalence is the ISSUE's headline equivalence proof
// at the experiment layer: the fault-injection experiment — the one that
// exercises the full taxonomy of typed device errors, recovery retries
// and grown-bad bookkeeping — must render byte-identical Results whether
// every work unit drives its chip sample directly or through the ONFI
// bus command adapter, at workers=1 and workers=8 alike. Backend is a
// transport choice, never an input: Results are a function of Seed alone.
func TestFaultsBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	run := func(backend string, workers int) string {
		s := tinyScale()
		s.Backend = backend
		s.Workers = workers
		r, err := Faults(s)
		if err != nil {
			t.Fatalf("faults backend=%q workers=%d: %v", backend, workers, err)
		}
		return renderText(t, r)
	}
	direct1 := run("", 1)
	for _, c := range []struct {
		backend string
		workers int
	}{{"direct", 1}, {"onfi", 1}, {"onfi", 8}} {
		if got := run(c.backend, c.workers); got != direct1 {
			t.Errorf("backend=%q workers=%d differs from direct workers=1\n--- direct/1 ---\n%s\n--- %s/%d ---\n%s",
				c.backend, c.workers, direct1, c.backend, c.workers, got)
		}
	}
}

// TestBackendEquivalenceSweep extends the bit-identity requirement to a
// representative slice of the suite: chip-sample fan-out (fig2), the
// paired-condition design (pubber), and the wear sweep (fig7). Each must
// be indifferent to the device transport.
func TestBackendEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	for _, id := range []string{"fig2", "fig7", "pubber"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			run := func(backend string) string {
				s := tinyScale()
				s.Backend = backend
				s.Workers = 4
				r, err := e.Run(s)
				if err != nil {
					t.Fatalf("backend=%q: %v", backend, err)
				}
				return renderText(t, r)
			}
			if direct, onfi := run("direct"), run("onfi"); direct != onfi {
				t.Errorf("direct and onfi backends rendered differently\n--- direct ---\n%s\n--- onfi ---\n%s", direct, onfi)
			}
		})
	}
}
