package experiments

import (
	"strings"
	"testing"
)

// renderText serialises a Result exactly as the CLI prints it, so two runs
// compare byte-for-byte — any schedule-dependent float accumulation or
// merge-order drift shows up as a diff.
func renderText(t *testing.T, r *Result) string {
	t.Helper()
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}

// TestFig6DeterministicAcrossWorkers enforces the engine's core invariant
// on the headline experiment at CI scale: a serial run (Workers=1) and a
// maximally fanned-out run (Workers=8) must serialise to byte-identical
// Results, and repeated parallel runs must agree with each other — Results
// are a function of Scale.Seed alone, never of scheduling.
func TestFig6DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("CI-scale experiment in -short mode")
	}
	s := CIScale()

	run := func(workers int) string {
		s := s
		s.Workers = workers
		r, err := Fig6(s)
		if err != nil {
			t.Fatalf("fig6 workers=%d: %v", workers, err)
		}
		return renderText(t, r)
	}

	serial := run(1)
	fanned := run(8)
	if serial != fanned {
		t.Errorf("fig6: workers=1 and workers=8 rendered differently\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
	again := run(8)
	if fanned != again {
		t.Errorf("fig6: two workers=8 runs rendered differently\n--- run 1 ---\n%s\n--- run 2 ---\n%s", fanned, again)
	}
}

// TestFaultsDeterministicAcrossWorkers pins the fault-injected path to the
// same invariant: every unit's FaultPlan stream is partitioned from
// (Seed, "faults/plan", unit), so the injected fault sequence — and with it
// every retry, re-read and grown-bad block — must be byte-identical between
// a serial run and a workers=8 fan-out.
func TestFaultsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	run := func(workers int) string {
		s := tinyScale()
		s.Workers = workers
		r, err := Faults(s)
		if err != nil {
			t.Fatalf("faults workers=%d: %v", workers, err)
		}
		return renderText(t, r)
	}
	serial := run(1)
	fanned := run(8)
	if serial != fanned {
		t.Errorf("faults: workers=1 and workers=8 rendered differently\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
	if strings.Contains(serial, "WARNING") {
		t.Errorf("faults reported silent corruption:\n%s", serial)
	}
}

// TestSchemesDeterministicAcrossWorkers pins the cross-scheme bake-off to
// the engine invariant: every unit — a (scheme, replicate) chip, a fault
// plan, an SVM chip sample — draws from a stream partitioned under the
// "schemes" domain, so a serial run and a workers=8 fan-out must render
// byte-identically, and neither scheme may report silent corruption.
func TestSchemesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	run := func(workers int) string {
		s := tinyScale()
		s.Workers = workers
		r, err := Schemes(s)
		if err != nil {
			t.Fatalf("schemes workers=%d: %v", workers, err)
		}
		return renderText(t, r)
	}
	serial := run(1)
	fanned := run(8)
	if serial != fanned {
		t.Errorf("schemes: workers=1 and workers=8 rendered differently\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
	if strings.Contains(serial, "WARNING") {
		t.Errorf("schemes reported silent corruption:\n%s", serial)
	}
}

// TestExperimentsDeterministicAcrossWorkers sweeps a representative slice
// of the parallel experiments — chip-sample fan-out (fig2, fig9), flat
// (combo x replicate) fan-out (fig7, fig8, relia, vendor2), the paired
// (condition x replicate) design (pubber), and the two-phase SVM pipeline
// (sumstat) — at tiny scale, workers=1 vs workers=4.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	ids := []string{"fig2", "fig7", "fig8", "fig9", "relia", "pubber", "vendor2", "sumstat", "faults", "fleetload"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) string {
				s := tinyScale()
				s.Workers = workers
				r, err := e.Run(s)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return renderText(t, r)
			}
			if serial, fanned := run(1), run(4); serial != fanned {
				t.Errorf("workers=1 and workers=4 rendered differently\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, fanned)
			}
		})
	}
}
