package experiments

import (
	"fmt"
	"time"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
	"stashflash/internal/parallel"
)

// RetentionYears extends the Fig 11 retention study from the paper's
// 4-month oven horizon to archival timescales: hidden (VT-HI) and normal
// BER tracked over 3 months to 10 years of power-off retention, at
// fresh, mid-life and end-of-life wear. The sweep only became practical
// with the lazy retention engine — a bake is an O(1) virtual-clock bump
// and the decade of aging costs exactly one decay fold per page at each
// measurement point (nand/retention.go), so the ~40 chip-years simulated
// here run at interactive speed.
func RetentionYears(s Scale) (*Result, error) {
	r := &Result{ID: "retyears", Title: "multi-year retention BER (VT-HI vs normal data)"}
	tbl := Table{
		Title:   "normalized BER (x t0)",
		Columns: []string{"data", "PEC", "3 mo", "1 y", "2 y", "5 y", "10 y", "raw BER t0"},
	}
	horizons := []time.Duration{
		3 * nand.RetentionMonth,
		12 * nand.RetentionMonth,
		24 * nand.RetentionMonth,
		60 * nand.RetentionMonth,
		120 * nand.RetentionMonth,
	}
	cfg := vthi.StandardConfig()
	pecs := []int{0, 1500, 3000}
	// As in Fig11, each PEC point bakes its own chip sample through the
	// whole timeline, so the points are independent work units.
	type pecOut struct {
		hRow, nRow []string
		hs, ns     Series
	}
	outs, err := parallel.Map(s.workers(), len(pecs), func(pi int) (pecOut, error) {
		pec := pecs[pi]
		ts := s.tester(s.modelA(), "retyears", uint64(pi))
		rng := s.rng("retyears/bits", uint64(pi))
		// Hidden blocks.
		var embss [][]pageEmbedding
		var embes []*vthi.Embedder
		for b := 0; b < s.ReplicateBlocks; b++ {
			if err := ts.CycleTo(b, pec); err != nil {
				return pecOut{}, err
			}
			emb, embs, err := hideFullBlock(ts, rng, b, rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps))
			if err != nil {
				return pecOut{}, err
			}
			embss = append(embss, embs)
			embes = append(embes, emb)
		}
		// Normal reference blocks.
		normBase := s.ReplicateBlocks
		normBlocks := 8
		var normImages [][][]byte
		for b := 0; b < normBlocks; b++ {
			if err := ts.CycleTo(normBase+b, pec); err != nil {
				return pecOut{}, err
			}
			img, err := ts.ProgramRandomBlock(normBase + b)
			if err != nil {
				return pecOut{}, err
			}
			normImages = append(normImages, img)
		}

		hiddenBER := func() (float64, error) {
			var sum float64
			for i := range embss {
				b, err := measureRawBER(embes[i], embss[i])
				if err != nil {
					return 0, err
				}
				sum += b
			}
			return sum / float64(len(embss)), nil
		}
		normalBER := func() (float64, error) {
			errs, bits := 0, 0
			for b := 0; b < normBlocks; b++ {
				res, err := ts.MeasureBlockBER(normBase+b, normImages[b])
				if err != nil {
					return 0, err
				}
				errs += res.Errors
				bits += res.Bits
			}
			return float64(errs) / float64(bits), nil
		}

		h0, err := hiddenBER()
		if err != nil {
			return pecOut{}, err
		}
		n0, err := normalBER()
		if err != nil {
			return pecOut{}, err
		}
		hRow := []string{"VT-HI", fmt.Sprint(pec)}
		nRow := []string{"normal", fmt.Sprint(pec)}
		hs := Series{Name: fmt.Sprintf("VT-HI PEC %d", pec)}
		ns := Series{Name: fmt.Sprintf("normal PEC %d", pec)}
		elapsed := time.Duration(0)
		for _, d := range horizons {
			ts.Bake(d - elapsed)
			elapsed = d
			ht, err := hiddenBER()
			if err != nil {
				return pecOut{}, err
			}
			nt, err := normalBER()
			if err != nil {
				return pecOut{}, err
			}
			hNorm := ratioOr1(ht, h0)
			nNorm := ratioOr1(nt, n0)
			hRow = append(hRow, f3(hNorm))
			nRow = append(nRow, f3(nNorm))
			years := float64(d) / float64(12*nand.RetentionMonth)
			hs.X = append(hs.X, years)
			hs.Y = append(hs.Y, hNorm)
			ns.X = append(ns.X, years)
			ns.Y = append(ns.Y, nNorm)
		}
		hRow = append(hRow, fmt.Sprintf("%.4f", h0))
		nRow = append(nRow, fmt.Sprintf("%.2e", n0))
		return pecOut{hRow: hRow, nRow: nRow, hs: hs, ns: ns}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		tbl.Rows = append(tbl.Rows, o.hRow, o.nRow)
		r.Series = append(r.Series, o.hs, o.ns)
	}
	r.Tables = append(r.Tables, tbl)
	r.AddNote("decay saturates toward the leak floor, so worn blocks front-load their BER growth: most of the 10-year damage lands in the first years")
	r.AddNote("extension beyond the paper: Fig 11 stops at 4 months; the lazy engine makes decade horizons interactive")
	return r, nil
}
