package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"stashflash/internal/fleet"
	"stashflash/internal/nand"
	"stashflash/internal/parallel"
)

// fleetload: the cross-tenant batching equivalence experiment. F
// concurrent read-only tenants per shard (F = 1, 4, 16) walk a shared
// multi-chip fleet twice — once with per-shard coalescing enabled, once
// without — and every tenant's transcript digest must equal the digest
// the standalone reference device produces for that tenant's walk. The
// result is the service-layer face of the determinism argument in
// internal/fleet/coalesce.go: coalescing changes only how operations
// cross the chip queue, never what the chip computes.
//
// The geometry is deliberately tiny and fixed: the experiment's content
// is concurrency (fan-out levels, batched vs unbatched), not cell
// statistics, so Scale contributes only the seed and the backend.
// Fan-out is likewise experiment content, so the submitter count is the
// fan level itself, never Scale.Workers — which keeps the rendered
// Result bit-identical across worker settings.

const (
	flShards = 4  // fleet width: enough shards to interleave, cheap to format
	flRounds = 5  // reads+probes per tenant transcript
	flMaxFan = 16 // highest tenants-per-shard level
)

// flFanouts are the tenants-per-shard levels the experiment sweeps.
var flFanouts = []int{1, 4, 16}

// flOps is the device-or-fleet walk surface, mirroring the façade the
// coalescer equivalence tests drive.
type flOps struct {
	geom    nand.Geometry
	erase   func(block int) error
	program func(start nand.PageAddr, data []byte) (int, error)
	read    func(start nand.PageAddr, pages int) ([]byte, int, error)
	probe   func(start nand.PageAddr, pages int) ([]uint8, int, error)
}

func flDeviceOps(dev nand.LabDevice) flOps {
	g := dev.Geometry()
	return flOps{
		geom:    g,
		erase:   dev.EraseBlock,
		program: func(start nand.PageAddr, data []byte) (int, error) { return nand.ProgramPages(dev, start, data) },
		read: func(start nand.PageAddr, pages int) ([]byte, int, error) {
			out := make([]byte, pages*g.PageBytes)
			n, err := nand.ReadPages(dev, start, pages, out)
			return out, n, err
		},
		probe: func(start nand.PageAddr, pages int) ([]uint8, int, error) {
			out := make([]uint8, pages*g.CellsPerPage())
			n, err := nand.ProbeVoltages(dev, start, pages, out)
			return out, n, err
		},
	}
}

func flFleetOps(f *fleet.Fleet, shard int) flOps {
	return flOps{
		geom:    f.Geometry(),
		erase:   func(block int) error { return f.EraseBlock(shard, block) },
		program: func(start nand.PageAddr, data []byte) (int, error) { return f.ProgramPages(shard, start, data) },
		read: func(start nand.PageAddr, pages int) ([]byte, int, error) {
			return f.ReadPages(shard, start, pages)
		},
		probe: func(start nand.PageAddr, pages int) ([]uint8, int, error) {
			return f.ProbeVoltages(shard, start, pages)
		},
	}
}

// flConfig is the fleet shape under test; the chip seed derives from the
// run seed so reference devices and fleet chips are the same silicon.
func (s Scale) flConfig(batching *fleet.Batching) fleet.Config {
	seed, _ := s.subSeed("fleetload/fleet")
	return fleet.Config{
		Shards:   flShards,
		Model:    nand.ModelA().ScaleGeometry(8, 4, 512),
		Seed:     seed,
		Backend:  s.Backend,
		Batching: batching,
	}
}

// flSetup programs every block of a shard with stream-derived data: the
// deterministic state the read-only tenants walk.
func flSetup(ops flOps, s Scale, shard int) error {
	rng := s.rng("fleetload/shard", uint64(shard))
	g := ops.geom
	data := make([]byte, 2*g.PageBytes)
	for b := 0; b < g.Blocks; b++ {
		if err := ops.erase(b); err != nil {
			return err
		}
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		if _, err := ops.program(nand.PageAddr{Block: b, Page: 0}, data); err != nil {
			return err
		}
	}
	return nil
}

// flTenantDigest is one tenant's read-only transcript: a page walk that
// is a function of the tenant index alone. Reads and probes never mutate
// chip state, so the digest is independent of how concurrent tenants
// interleave — the property that makes per-tenant comparison against a
// sequential reference sound at every fan-out.
func flTenantDigest(ops flOps, tenant int) (string, error) {
	g := ops.geom
	h := sha256.New()
	for r := 0; r < flRounds; r++ {
		b := (tenant + 3*r) % g.Blocks
		data, _, err := ops.read(nand.PageAddr{Block: b, Page: 0}, 2)
		if err != nil {
			return "", fmt.Errorf("tenant %d round %d read: %w", tenant, r, err)
		}
		h.Write(data)
		levels, _, err := ops.probe(nand.PageAddr{Block: b, Page: tenant % 2}, 1)
		if err != nil {
			return "", fmt.Errorf("tenant %d round %d probe: %w", tenant, r, err)
		}
		h.Write(levels)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FleetLoad regenerates the cross-tenant batching equivalence table.
func FleetLoad(s Scale) (*Result, error) {
	res := &Result{
		ID:    "fleetload",
		Title: "cross-tenant batching: coalesced fleet vs sequential reference",
	}

	// Reference: each shard's silicon driven directly and sequentially —
	// per-shard setup, then each tenant's walk in turn.
	refCfg := s.flConfig(nil)
	want := make([][]string, flShards)
	fp := sha256.New()
	for sh := 0; sh < flShards; sh++ {
		ops := flDeviceOps(refCfg.Device(sh))
		if err := flSetup(ops, s, sh); err != nil {
			return nil, fmt.Errorf("fleetload: reference shard %d setup: %w", sh, err)
		}
		want[sh] = make([]string, flMaxFan)
		for tn := 0; tn < flMaxFan; tn++ {
			d, err := flTenantDigest(ops, tn)
			if err != nil {
				return nil, fmt.Errorf("fleetload: reference shard %d: %w", sh, err)
			}
			want[sh][tn] = d
			fp.Write([]byte(d))
		}
	}

	// Both fleets: the unbatched baseline and the coalescing one.
	modes := []struct {
		name     string
		batching *fleet.Batching
	}{
		{"unbatched", nil},
		{"batched", &fleet.Batching{MaxOps: flMaxFan}},
	}
	verdicts := make(map[string]map[int]string, len(modes))
	for _, mode := range modes {
		f, err := fleet.New(s.flConfig(mode.batching))
		if err != nil {
			return nil, fmt.Errorf("fleetload: %s fleet: %w", mode.name, err)
		}
		err = parallel.ForEach(flShards, flShards, func(sh int) error {
			return flSetup(flFleetOps(f, sh), s, sh)
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleetload: %s fleet setup: %w", mode.name, err)
		}
		verdicts[mode.name] = make(map[int]string, len(flFanouts))
		for _, fan := range flFanouts {
			units := fan * flShards
			got := make([]string, units)
			err := parallel.ForEach(units, units, func(u int) error {
				shard, tenant := u%flShards, u/flShards
				d, derr := flTenantDigest(flFleetOps(f, shard), tenant)
				got[u] = d
				return derr
			})
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("fleetload: %s fan=%d: %w", mode.name, fan, err)
			}
			for u := range got {
				shard, tenant := u%flShards, u/flShards
				if got[u] != want[shard][tenant] {
					f.Close()
					return nil, fmt.Errorf("fleetload: %s fan=%d: shard %d tenant %d transcript %s != reference %s",
						mode.name, fan, shard, tenant, got[u], want[shard][tenant])
				}
			}
			verdicts[mode.name][fan] = "match"
		}
		f.Close()
	}

	rows := make([][]string, 0, len(flFanouts))
	for _, fan := range flFanouts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", fan),
			fmt.Sprintf("%d", fan*flShards),
			fmt.Sprintf("%d", flRounds),
			verdicts["unbatched"][fan],
			verdicts["batched"][fan],
		})
	}
	res.Tables = append(res.Tables, Table{
		Title:   "per-tenant transcript digests vs sequential reference",
		Columns: []string{"tenants/shard", "tenants", "rounds/tenant", "unbatched", "batched"},
		Rows:    rows,
	})
	res.AddNote("%d shards of %v silicon; every tenant transcript SHA-256-matches the reference at every fan-out",
		flShards, refCfg.Model.Geometry)
	res.AddNote("reference transcript fingerprint %s", hex.EncodeToString(fp.Sum(nil))[:16])
	return res, nil
}
