package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
	"stashflash/internal/parallel"
	"stashflash/internal/pthi"
	"stashflash/internal/tester"
)

// hideFullBlock programs a block with random data and embeds raw bits on
// every hidden page; it returns the embeddings for later BER measurement.
func hideFullBlock(ts *tester.Tester, rng *rand.Rand, block int, cfg vthi.Config) (*vthi.Embedder, []pageEmbedding, error) {
	emb, err := vthi.NewEmbedder(ts.Device(), []byte("perf-key"), cfg)
	if err != nil {
		return nil, nil, err
	}
	embs, err := embedBlockRaw(ts, emb, block, rng, cfg.HiddenCellsPerPage, cfg.PageInterval)
	if err != nil {
		return nil, nil, err
	}
	for _, pe := range embs {
		if _, err := emb.Embed(pe.plan, pe.bits, cfg.MaxPPSteps); err != nil {
			return nil, nil, err
		}
	}
	return emb, embs, nil
}

// Fig11 regenerates paper Figure 11: hidden vs normal data BER after 1
// day, 1 month and 4 months of retention, normalized to the BER right
// after storing, for blocks at PEC 0/1000/2000.
func Fig11(s Scale) (*Result, error) {
	r := &Result{ID: "fig11", Title: "normalized retention BER (VT-HI vs normal data)"}
	tbl := Table{
		Title:   "normalized BER (x t0)",
		Columns: []string{"data", "PEC", "1 day", "1 month", "4 months", "raw BER t0"},
	}
	durations := []time.Duration{24 * time.Hour, nand.RetentionMonth, 4 * nand.RetentionMonth}
	cfg := vthi.StandardConfig()
	pecs := []int{0, 1000, 2000}
	// Each PEC point bakes its own chip sample through the full retention
	// timeline, so the three points are independent units.
	type pecOut struct {
		hRow, nRow []string
		hs, ns     Series
	}
	outs, err := parallel.Map(s.workers(), len(pecs), func(pi int) (pecOut, error) {
		pec := pecs[pi]
		ts := s.tester(s.modelA(), "fig11", uint64(pi))
		rng := s.rng("fig11/bits", uint64(pi))
		// Hidden blocks.
		var embss [][]pageEmbedding
		var embes []*vthi.Embedder
		for b := 0; b < s.ReplicateBlocks; b++ {
			if err := ts.CycleTo(b, pec); err != nil {
				return pecOut{}, err
			}
			emb, embs, err := hideFullBlock(ts, rng, b, rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps))
			if err != nil {
				return pecOut{}, err
			}
			embss = append(embss, embs)
			embes = append(embes, emb)
		}
		// Normal reference blocks (larger sample for the tiny public BER).
		normBase := s.ReplicateBlocks
		normBlocks := 8
		var normImages [][][]byte
		for b := 0; b < normBlocks; b++ {
			if err := ts.CycleTo(normBase+b, pec); err != nil {
				return pecOut{}, err
			}
			img, err := ts.ProgramRandomBlock(normBase + b)
			if err != nil {
				return pecOut{}, err
			}
			normImages = append(normImages, img)
		}

		hiddenBER := func() (float64, error) {
			var sum float64
			for i := range embss {
				b, err := measureRawBER(embes[i], embss[i])
				if err != nil {
					return 0, err
				}
				sum += b
			}
			return sum / float64(len(embss)), nil
		}
		normalBER := func() (float64, error) {
			errs, bits := 0, 0
			for b := 0; b < normBlocks; b++ {
				res, err := ts.MeasureBlockBER(normBase+b, normImages[b])
				if err != nil {
					return 0, err
				}
				errs += res.Errors
				bits += res.Bits
			}
			return float64(errs) / float64(bits), nil
		}

		h0, err := hiddenBER()
		if err != nil {
			return pecOut{}, err
		}
		n0, err := normalBER()
		if err != nil {
			return pecOut{}, err
		}
		hRow := []string{"VT-HI", fmt.Sprint(pec)}
		nRow := []string{"normal", fmt.Sprint(pec)}
		hs := Series{Name: fmt.Sprintf("VT-HI PEC %d", pec)}
		ns := Series{Name: fmt.Sprintf("normal PEC %d", pec)}
		elapsed := time.Duration(0)
		for di, d := range durations {
			ts.Bake(d - elapsed)
			elapsed = d
			ht, err := hiddenBER()
			if err != nil {
				return pecOut{}, err
			}
			nt, err := normalBER()
			if err != nil {
				return pecOut{}, err
			}
			hNorm := ratioOr1(ht, h0)
			nNorm := ratioOr1(nt, n0)
			hRow = append(hRow, f3(hNorm))
			nRow = append(nRow, f3(nNorm))
			hs.X = append(hs.X, float64(di))
			hs.Y = append(hs.Y, hNorm)
			ns.X = append(ns.X, float64(di))
			ns.Y = append(ns.Y, nNorm)
		}
		hRow = append(hRow, fmt.Sprintf("%.4f", h0))
		nRow = append(nRow, fmt.Sprintf("%.2e", n0))
		return pecOut{hRow: hRow, nRow: nRow, hs: hs, ns: ns}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		tbl.Rows = append(tbl.Rows, o.hRow, o.nRow)
		r.Series = append(r.Series, o.hs, o.ns)
	}
	r.Tables = append(r.Tables, tbl)
	r.AddNote("paper: PEC 2000 hidden BER rises 6.3x over 4 months while normal rises 2.3x; PEC 0 hidden BER is flat")
	return r, nil
}

func ratioOr1(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return num * 1e9 // effectively infinite growth from a zero base
	}
	return num / den
}

// Reliability regenerates the §8 "Reliability" paragraph: hidden BER as a
// function of the PEC of the cells at encode time (paper: 0.013 at PEC 0,
// ~0.011 at other PEC — low and not wear-bound).
func Reliability(s Scale) (*Result, error) {
	r := &Result{ID: "relia", Title: "hidden BER vs encode-time PEC"}
	cfg := vthi.StandardConfig()
	tbl := Table{Title: "hidden BER by PEC", Columns: []string{"PEC", "hidden BER"}}
	series := Series{Name: "hidden BER"}
	pecs := []int{0, 1000, 2000, 3000}
	// Flat (PEC, replicate) fan-out; replicate BERs are averaged back per
	// PEC in replicate order.
	reps := s.ReplicateBlocks
	bers, err := parallel.Map(s.workers(), len(pecs)*reps, func(u int) (float64, error) {
		pi, rep := u/reps, u%reps
		ts := s.tester(s.modelA(), "relia", uint64(pi), uint64(rep))
		rng := s.rng("relia/bits", uint64(pi), uint64(rep))
		if err := ts.CycleTo(0, pecs[pi]); err != nil {
			return 0, err
		}
		emb, embs, err := hideFullBlock(ts, rng, 0, rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps))
		if err != nil {
			return 0, err
		}
		return measureRawBER(emb, embs)
	})
	if err != nil {
		return nil, err
	}
	for pi, pec := range pecs {
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sum += bers[pi*reps+rep] / float64(reps)
		}
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(pec), fmt.Sprintf("%.4f", sum)})
		series.X = append(series.X, float64(pec))
		series.Y = append(series.Y, sum)
	}
	r.Tables = append(r.Tables, tbl)
	r.Series = append(r.Series, series)
	r.AddNote("paper: BER ~0.013 at PEC 0 and ~0.011 at higher PEC; ours must stay ~0.005-0.03 across all PEC")
	return r, nil
}

// Throughput regenerates the §8 throughput analysis: encode/decode time
// per block and resulting hidden-data throughput for VT-HI and PT-HI, from
// the operation ledger — the same per-command arithmetic the paper does by
// hand.
func Throughput(s Scale) (*Result, error) {
	// The ledger arithmetic reads one chip's command history end to end,
	// so this experiment is a single serial unit.
	r := &Result{ID: "thru", Title: "hidden data encode/decode throughput, VT-HI vs PT-HI"}
	rng := s.rng("thru/bits")

	// --- VT-HI ---
	ts := s.tester(s.modelA(), "thru")
	cfg := vthi.StandardConfig()
	rcfg := rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps)
	images, err := ts.ProgramRandomBlock(0)
	if err != nil {
		return nil, err
	}
	emb, err := vthi.NewEmbedder(ts.Device(), []byte("thru"), rcfg)
	if err != nil {
		return nil, err
	}
	g := ts.Device().Geometry()
	var embs []pageEmbedding
	before := ts.Ledger()
	for _, p := range hiddenPages(g.PagesPerBlock, cfg.PageInterval) {
		plan, err := emb.Plan(nand.PageAddr{Block: 0, Page: p}, images[p], cfg.HiddenCellsPerPage)
		if err != nil {
			return nil, err
		}
		pe := pageEmbedding{plan: plan, bits: randBits(rng, cfg.HiddenCellsPerPage)}
		if _, err := emb.Embed(pe.plan, pe.bits, cfg.MaxPPSteps); err != nil {
			return nil, err
		}
		embs = append(embs, pe)
	}
	encCost := ts.Ledger().Sub(before)
	vtBits := len(embs) * cfg.HiddenCellsPerPage

	before = ts.Ledger()
	for _, pe := range embs {
		if _, err := emb.ReadBits(pe.plan); err != nil {
			return nil, err
		}
	}
	decCost := ts.Ledger().Sub(before)

	// --- PT-HI (scaled to this geometry) ---
	ptCfg := pthi.OptimalConfig()
	if need := ptCfg.BitsPerPage * 2 * ptCfg.CellsPerHalfGroup; need > g.CellsPerPage() {
		ptCfg.BitsPerPage = g.CellsPerPage() / (2 * ptCfg.CellsPerHalfGroup)
	}
	pt, err := pthi.NewHider(ts.Device(), []byte("thru-pt"), ptCfg)
	if err != nil {
		return nil, err
	}
	ptBits := pt.BlockCapacityBits()
	before = ts.Ledger()
	if err := pt.EncodeBlock(1, randBits(rng, ptBits)); err != nil {
		return nil, err
	}
	ptEnc := ts.Ledger().Sub(before)
	before = ts.Ledger()
	if _, err := pt.DecodeBlock(1); err != nil {
		return nil, err
	}
	ptDec := ts.Ledger().Sub(before)

	row := func(scheme, dir string, bits int, c nand.Ledger) []string {
		kbps := float64(bits) / c.Time.Seconds() / 1000
		return []string{scheme, dir, fmt.Sprint(bits), c.Time.Round(time.Millisecond).String(), fmt.Sprintf("%.1f", kbps)}
	}
	tbl := Table{
		Title:   "per-block hidden data cost (ledger of nominal command latencies)",
		Columns: []string{"scheme", "direction", "bits/block", "time/block", "throughput Kb/s"},
		Rows: [][]string{
			row("VT-HI", "encode", vtBits, encCost),
			row("VT-HI", "decode", vtBits, decCost),
			row("PT-HI", "encode", ptBits, ptEnc),
			row("PT-HI", "decode", ptBits, ptDec),
		},
	}
	r.Tables = append(r.Tables, tbl)

	encRatio := (float64(vtBits) / encCost.Time.Seconds()) / (float64(ptBits) / ptEnc.Time.Seconds())
	decRatio := (float64(vtBits) / decCost.Time.Seconds()) / (float64(ptBits) / ptDec.Time.Seconds())
	r.Tables = append(r.Tables, Table{
		Title:   "VT-HI advantage",
		Columns: []string{"metric", "measured", "paper"},
		Rows: [][]string{
			{"encode throughput ratio", fmt.Sprintf("%.1fx", encRatio), "24x (35 vs 1.4 Kb/s)"},
			{"decode throughput ratio", fmt.Sprintf("%.1fx", decRatio), "50x (2700 vs 54 Kb/s)"},
		},
	})
	r.AddNote("paper nominal figures: VT-HI 0.44 s/block encode (35 Kb/s), 0.006 s/block decode (2.7 Mb/s); PT-HI 51.1 s (1.4 Kb/s), 1.32 s (54 Kb/s)")
	return r, nil
}

// Energy regenerates the §8 energy comparison: energy to hide one page of
// data (paper: 1.1 mJ for VT-HI vs 43 mJ for PT-HI, 37x).
func Energy(s Scale) (*Result, error) {
	r := &Result{ID: "energy", Title: "energy per hidden page, VT-HI vs PT-HI"}
	rng := s.rng("energy/bits")
	ts := s.tester(s.modelA(), "energy")
	cfg := vthi.StandardConfig()
	g := ts.Device().Geometry()

	before := ts.Ledger()
	_, embs, err := hideFullBlock(ts, rng, 0, rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps))
	if err != nil {
		return nil, err
	}
	vtCost := ts.Ledger().Sub(before)
	// Exclude the public programming (it happens with or without hiding).
	vtHideEnergy := vtCost.EnergyUJ - float64(vtCost.Programs)*ts.Device().Model().ProgEnergy
	vtPerPage := vtHideEnergy / float64(len(embs)) / 1000 // mJ

	ptCfg := pthi.OptimalConfig()
	if need := ptCfg.BitsPerPage * 2 * ptCfg.CellsPerHalfGroup; need > g.CellsPerPage() {
		ptCfg.BitsPerPage = g.CellsPerPage() / (2 * ptCfg.CellsPerHalfGroup)
	}
	pt, err := pthi.NewHider(ts.Device(), []byte("energy-pt"), ptCfg)
	if err != nil {
		return nil, err
	}
	before = ts.Ledger()
	if err := pt.EncodeBlock(1, randBits(rng, pt.BlockCapacityBits())); err != nil {
		return nil, err
	}
	ptCost := ts.Ledger().Sub(before)
	ptPerPage := ptCost.EnergyUJ / float64(g.PagesPerBlock) / 1000 // mJ

	r.Tables = append(r.Tables, Table{
		Title:   "hide energy per page (mJ)",
		Columns: []string{"scheme", "mJ/page", "paper"},
		Rows: [][]string{
			{"VT-HI", f3(vtPerPage), "1.1"},
			{"PT-HI", f3(ptPerPage), "43"},
			{"ratio", fmt.Sprintf("%.0fx", ptPerPage/vtPerPage), "37x"},
		},
	})
	return r, nil
}

// Wear regenerates the §1/§8 wear-amplification comparison: programming
// operations applied per hidden cell (paper: ~10 for VT-HI vs 625 for
// PT-HI) and PEC consumed per block encode.
func Wear(s Scale) (*Result, error) {
	r := &Result{ID: "wear", Title: "wear amplification of hiding, VT-HI vs PT-HI"}
	rng := s.rng("wear/bits")
	ts := s.tester(s.modelA(), "wear")
	cfg := vthi.StandardConfig()
	rcfg := rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps)
	images, err := ts.ProgramRandomBlock(0)
	if err != nil {
		return nil, err
	}
	emb, err := vthi.NewEmbedder(ts.Device(), []byte("wear"), rcfg)
	if err != nil {
		return nil, err
	}
	g := ts.Device().Geometry()
	pulses, zeros := 0, 0
	for _, p := range hiddenPages(g.PagesPerBlock, cfg.PageInterval) {
		plan, err := emb.Plan(nand.PageAddr{Block: 0, Page: p}, images[p], cfg.HiddenCellsPerPage)
		if err != nil {
			return nil, err
		}
		bits := randBits(rng, cfg.HiddenCellsPerPage)
		for _, b := range bits {
			if b == 0 {
				zeros++
			}
		}
		for st := 0; st < cfg.MaxPPSteps; st++ {
			n, err := emb.ProgramStep(plan, bits)
			if err != nil {
				return nil, err
			}
			pulses += n
			if n == 0 {
				break
			}
		}
	}
	vtPerCell := float64(pulses) / float64(zeros)
	ptCfg := pthi.OptimalConfig()

	r.Tables = append(r.Tables, Table{
		Title:   "program pulses per hidden cell",
		Columns: []string{"scheme", "pulses/cell", "PEC per block encode", "paper"},
		Rows: [][]string{
			{"VT-HI", f3(vtPerCell), "0", "~10 pulses, no P/E cycles"},
			{"PT-HI", fmt.Sprint(ptCfg.StressCycles), fmt.Sprint(ptCfg.StressCycles), "625 cycles"},
		},
	})
	r.AddNote("VT-HI wear touches only the ~%.2f%% of cells holding hidden data; PT-HI consumes full block lifetime", 100*float64(cfg.HiddenCellsPerPage)/float64(g.CellsPerPage()))
	return r, nil
}

// Capacity regenerates the §6.3/§8 capacity accounting for the standard
// and enhanced configurations, plus the PT-HI baseline.
func Capacity(s Scale) (*Result, error) {
	r := &Result{ID: "cap", Title: "hidden capacity accounting"}
	m := nand.ModelA()
	tbl := Table{
		Title: "per-configuration capacity on the full vendor-A part",
		Columns: []string{"config", "cells/page", "ECC parity", "payload bits/page",
			"bits/block", "device bytes", "% of device bits"},
	}
	var stdBits int
	for _, cfg := range []vthi.Config{vthi.StandardConfig(), vthi.EnhancedConfig()} {
		rep, err := vthi.PlanCapacity(m, cfg)
		if err != nil {
			return nil, err
		}
		if cfg.Name == "standard" {
			stdBits = rep.PayloadBitsPerPage
		}
		tbl.Rows = append(tbl.Rows, []string{
			rep.Config, fmt.Sprint(rep.CellsPerPage), fmt.Sprint(rep.ECCParityBits),
			fmt.Sprint(rep.PayloadBitsPerPage), fmt.Sprint(rep.PayloadBitsPerBlock),
			fmt.Sprint(rep.DevicePayloadBytes), pct(rep.FractionOfDeviceBits),
		})
	}
	// PT-HI reference: 72 Kb/block at the paper's 64-page accounting.
	ptPerPage := 1125
	tbl.Rows = append(tbl.Rows, []string{
		"pt-hi (paper)", "-", "-", fmt.Sprint(ptPerPage), fmt.Sprint(ptPerPage * 64 / 5), "-", "-",
	})
	r.Tables = append(r.Tables, tbl)
	enh, err := vthi.PlanCapacity(m, vthi.EnhancedConfig())
	if err != nil {
		return nil, err
	}
	r.AddNote("enhanced/standard usable-capacity gain: %.1fx (paper: ~9x, and 2x the PT-HI capacity)",
		float64(enh.PayloadBitsPerPage)/float64(stdBits))
	r.AddNote("paper accounting counts MLC device bits at a 4-page interval, yielding 0.02%%/0.2%%; same order as ours")
	return r, nil
}

// Vendor2 regenerates the §8 "Applicability" check: the same VT-HI
// standard configuration on the second vendor's chip model achieves ~1%
// hidden BER.
func Vendor2(s Scale) (*Result, error) {
	r := &Result{ID: "vendor2", Title: "applicability on a second vendor model"}
	cfg := vthi.StandardConfig()
	tbl := Table{Title: "hidden BER per chip model (fresh chips)", Columns: []string{"model", "hidden BER"}}
	models := []struct {
		name  string
		model nand.Model
	}{
		{"vendor A", s.modelA()},
		{"vendor B", s.modelB()},
	}
	reps := s.ReplicateBlocks
	bers, err := parallel.Map(s.workers(), len(models)*reps, func(u int) (float64, error) {
		mi, rep := u/reps, u%reps
		ts := s.tester(models[mi].model, "vendor2", uint64(mi), uint64(rep))
		rng := s.rng("vendor2/bits", uint64(mi), uint64(rep))
		emb, embs, err := hideFullBlock(ts, rng, 0, rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps))
		if err != nil {
			return 0, err
		}
		return measureRawBER(emb, embs)
	})
	if err != nil {
		return nil, err
	}
	for mi, mk := range models {
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sum += bers[mi*reps+rep] / float64(reps)
		}
		tbl.Rows = append(tbl.Rows, []string{mk.name, fmt.Sprintf("%.4f", sum)})
	}
	r.Tables = append(r.Tables, tbl)
	r.AddNote("paper: 1%% BER on the second model, similar to the first — the method is not chip-specific")
	return r, nil
}

// PublicInterference regenerates the §6.3 public-BER measurement: hiding
// with no page interval raises public BER ~20%; one page of spacing halves
// the damage.
func PublicInterference(s Scale) (*Result, error) {
	r := &Result{ID: "pubber", Title: "public data BER vs hidden page interval"}
	cfg := vthi.StandardConfig()
	blocks := 4 * s.ReplicateBlocks // public BER is tiny; widen the sample
	// Conditions: the unhidden baseline plus each hide interval. The chip,
	// data and bit streams are keyed by replicate only — NOT by condition —
	// so every condition reruns the same chip samples and the "vs baseline"
	// deltas are a paired comparison, as in the original sequential run.
	conds := []struct {
		interval int
		hide     bool
	}{{0, false}, {0, true}, {1, true}, {2, true}, {4, true}}
	units, err := parallel.Map(s.workers(), len(conds)*blocks, func(u int) (tester.BERResult, error) {
		ci, rep := u/blocks, u%blocks
		interval, hide := conds[ci].interval, conds[ci].hide
		ts := s.tester(s.modelA(), "pubber", uint64(rep))
		rng := s.rng("pubber/bits", uint64(rep))
		images, err := ts.ProgramRandomBlock(0)
		if err != nil {
			return tester.BERResult{}, err
		}
		if hide {
			emb, err := vthi.NewEmbedder(ts.Device(), []byte("pubber"), rawConfig(cfg.HiddenCellsPerPage, interval, cfg.MaxPPSteps))
			if err != nil {
				return tester.BERResult{}, err
			}
			g := ts.Device().Geometry()
			for _, p := range hiddenPages(g.PagesPerBlock, interval) {
				plan, err := emb.Plan(nand.PageAddr{Block: 0, Page: p}, images[p], cfg.HiddenCellsPerPage)
				if err != nil {
					return tester.BERResult{}, err
				}
				if _, err := emb.Embed(plan, randBits(rng, cfg.HiddenCellsPerPage), cfg.MaxPPSteps); err != nil {
					return tester.BERResult{}, err
				}
			}
		}
		// Hidden '0' cells legitimately read as public '1' still; they
		// were selected from '1' bits and stay below the public
		// reference, so no masking is needed.
		return ts.MeasureBlockBER(0, images)
	})
	if err != nil {
		return nil, err
	}
	berOf := func(ci int) float64 {
		var agg tester.BERResult
		for rep := 0; rep < blocks; rep++ {
			agg.Errors += units[ci*blocks+rep].Errors
			agg.Bits += units[ci*blocks+rep].Bits
		}
		return agg.BER()
	}
	base := berOf(0)
	tbl := Table{
		Title:   "public BER",
		Columns: []string{"condition", "BER", "vs baseline"},
		Rows:    [][]string{{"no hidden data", fmt.Sprintf("%.2e", base), "-"}},
	}
	series := Series{Name: "public BER increase %"}
	for ci, cond := range conds {
		if !cond.hide {
			continue
		}
		b := berOf(ci)
		incr := (b - base) / base * 100
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("hidden, interval %d", cond.interval), fmt.Sprintf("%.2e", b), fmt.Sprintf("%+.0f%%", incr),
		})
		series.X = append(series.X, float64(cond.interval))
		series.Y = append(series.Y, incr)
	}
	r.Tables = append(r.Tables, tbl)
	r.Series = append(r.Series, series)
	r.AddNote("paper: +20%% at interval 0, +10%% at interval 1; subsequent experiments use interval 1")
	return r, nil
}

// Table1 regenerates the paper's Table 1: the qualitative VT-HI vs PT-HI
// comparison, backed by the quantitative sub-experiments.
func Table1(s Scale) (*Result, error) {
	r := &Result{ID: "tbl1", Title: "VT-HI vs PT-HI comparison (paper Table 1)"}
	rng := s.rng("tbl1/bits")
	ts := s.tester(s.modelA(), "tbl1")
	g := ts.Device().Geometry()
	cfg := vthi.StandardConfig()

	// VT-HI numbers.
	before := ts.Ledger()
	emb, embs, err := hideFullBlock(ts, rng, 0, rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps))
	if err != nil {
		return nil, err
	}
	vtEnc := ts.Ledger().Sub(before)
	vtBER, err := measureRawBER(emb, embs)
	if err != nil {
		return nil, err
	}
	vtBits := len(embs) * cfg.HiddenCellsPerPage
	// Repeated-read check: ten decodes, BER must not drift.
	var vtBER10 float64
	for i := 0; i < 10; i++ {
		vtBER10, err = measureRawBER(emb, embs)
		if err != nil {
			return nil, err
		}
	}

	// PT-HI numbers.
	ptCfg := pthi.OptimalConfig()
	if need := ptCfg.BitsPerPage * 2 * ptCfg.CellsPerHalfGroup; need > g.CellsPerPage() {
		ptCfg.BitsPerPage = g.CellsPerPage() / (2 * ptCfg.CellsPerHalfGroup)
	}
	pt, err := pthi.NewHider(ts.Device(), []byte("tbl1"), ptCfg)
	if err != nil {
		return nil, err
	}
	ptBitsIn := randBits(rng, pt.BlockCapacityBits())
	before = ts.Ledger()
	if err := pt.EncodeBlock(1, ptBitsIn); err != nil {
		return nil, err
	}
	ptEnc := ts.Ledger().Sub(before)
	got, err := pt.DecodeBlock(1)
	if err != nil {
		return nil, err
	}
	ptErrs := 0
	for i := range got {
		if got[i] != ptBitsIn[i] {
			ptErrs++
		}
	}
	ptBER := float64(ptErrs) / float64(len(got))

	r.Tables = append(r.Tables, Table{
		Title:   "measured comparison",
		Columns: []string{"criterion", "VT-HI", "PT-HI"},
		Rows: [][]string{
			{"hidden BER (fresh)", fmt.Sprintf("%.4f", vtBER), fmt.Sprintf("%.4f", ptBER)},
			{"encode Kb/s", fmt.Sprintf("%.1f", float64(vtBits)/vtEnc.Time.Seconds()/1000), fmt.Sprintf("%.2f", float64(len(got))/ptEnc.Time.Seconds()/1000)},
			{"energy/page (mJ)", f3((vtEnc.EnergyUJ - float64(vtEnc.Programs)*ts.Device().Model().ProgEnergy) / float64(len(embs)) / 1000), f3(ptEnc.EnergyUJ / float64(g.PagesPerBlock) / 1000)},
			{"public data integrity on decode", "preserved (read-only)", "destroyed (erase + program)"},
			{"repeated reads", fmt.Sprintf("yes (BER stable at %.4f)", vtBER10), "no (decode is destructive)"},
			{"block PEC consumed by encode", "0", fmt.Sprint(ptCfg.StressCycles)},
			{"survives public rewrite w/o re-embed", "no", "yes"},
		},
	})
	r.AddNote("paper Table 1: VT-HI wins reliability, performance, power, repeated reads; PT-HI wins public-data-independence")
	return r, nil
}
