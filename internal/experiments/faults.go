package experiments

import (
	"fmt"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
	"stashflash/internal/parallel"
)

// Faults measures hidden-data integrity on a misbehaving device: each
// fault-rate point attaches a deterministic nand.FaultPlan (program/erase
// status FAILs, transient PP pulse FAILs, read-disturb bursts, early block
// wear-out) and drives the robust hide/reveal path through it. The contract
// under test is the one the fault layer exists to enforce: every hidden
// payload is either revealed exactly or lost to a *typed* error — silent
// corruption must never happen, at any injected rate.
//
// Rate 0 doubles as a transparency probe: a zero-probability plan is
// attached but must leave the pristine fast paths untouched, so its row
// reports perfect recovery with zero retries, rereads and absorbed faults
// (and the engine's determinism test pins the whole Result bit-identical
// across worker counts).
func Faults(s Scale) (*Result, error) {
	r := &Result{ID: "faults", Title: "hidden-data integrity vs injected fault rate"}
	key := []byte("faults-key")
	cfg := vthi.RobustConfig()
	rates := []float64{0, 0.002, 0.01, 0.05}

	// One unit = (rate, replicate chip): it owns its device, its fault plan
	// and its data stream, all partitioned from (Seed, "faults", unit path).
	type unitOut struct {
		hides, hideErrs            int
		exact, revealErrs, silent  int
		absorbed, retries, rereads int
		corrected, grownBad        int
	}
	reps := s.ReplicateBlocks
	outs, err := parallel.Map(s.workers(), len(rates)*reps, func(u int) (unitOut, error) {
		ri, rep := u/reps, u%reps
		rate := rates[ri]
		var o unitOut
		ts := s.tester(s.modelA(), "faults", uint64(ri), uint64(rep))
		dev := ts.Device()
		planSeed, _ := s.subSeed("faults/plan", uint64(ri), uint64(rep))
		dev.SetFaultPlan(nand.NewFaultPlan(nand.FaultConfig{
			Seed:            planSeed,
			ProgramFailProb: rate,
			PPFailProb:      rate,
			EraseFailProb:   rate,
			BadBlockFrac:    rate,
			ReadDisturbProb: 10 * rate,
		}))
		h, err := vthi.NewHider(dev, key, cfg)
		if err != nil {
			return o, err
		}
		rng := s.rng("faults/data", uint64(ri), uint64(rep))
		secret := func() []byte {
			b := make([]byte, h.HiddenPayloadBytes())
			for i := range b {
				b[i] = byte(rng.IntN(256))
			}
			return b
		}
		g := dev.Geometry()
		const blocksPerUnit = 2
		for b := 0; b < blocksPerUnit; b++ {
			// Age the block a little so BadBlockFrac wear-out can fire.
			if err := ts.CycleTo(b, 200); err != nil {
				continue // worn out before use; grownBad picks it up below
			}
			type hid struct {
				page   int
				secret []byte
			}
			var hids []hid
			for _, pg := range hiddenPages(g.PagesPerBlock, cfg.PageInterval) {
				a := nand.PageAddr{Block: b, Page: pg}
				pub := make([]byte, h.PublicDataBytes())
				for i := range pub {
					pub[i] = byte(rng.IntN(256))
				}
				sec := secret()
				o.hides++
				st, err := h.WriteAndHide(a, pub, sec, 0)
				o.absorbed += st.FaultsAbsorbed
				o.retries += st.Retries
				if err != nil {
					o.hideErrs++ // typed loss at hide time: acceptable outcome
					continue
				}
				hids = append(hids, hid{pg, sec})
			}
			for _, hd := range hids {
				got, st, err := h.Reveal(nand.PageAddr{Block: b, Page: hd.page}, len(hd.secret), 0)
				o.rereads += st.Rereads
				o.corrected += st.CorrectedHidden
				switch {
				case err != nil:
					o.revealErrs++ // typed loss at reveal time: acceptable
				case string(got) == string(hd.secret):
					o.exact++
				default:
					o.silent++ // the one outcome the layer must forbid
				}
			}
		}
		o.grownBad = len(dev.GrownBadBlocks())
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := Table{
		Title: "hide/reveal outcomes per injected fault rate",
		Columns: []string{"rate", "hides", "hide err", "recovered", "reveal err",
			"silent", "absorbed", "retries", "rereads", "corrected", "grown bad"},
	}
	var recovery, typedLoss Series
	recovery.Name = "exact recovery fraction"
	typedLoss.Name = "typed loss fraction"
	totalSilent := 0
	for ri, rate := range rates {
		var a unitOut
		for rep := 0; rep < reps; rep++ {
			o := outs[ri*reps+rep]
			a.hides += o.hides
			a.hideErrs += o.hideErrs
			a.exact += o.exact
			a.revealErrs += o.revealErrs
			a.silent += o.silent
			a.absorbed += o.absorbed
			a.retries += o.retries
			a.rereads += o.rereads
			a.corrected += o.corrected
			a.grownBad += o.grownBad
		}
		totalSilent += a.silent
		den := maxInt(a.hides, 1)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.3f", rate),
			fmt.Sprint(a.hides), fmt.Sprint(a.hideErrs),
			fmt.Sprint(a.exact), fmt.Sprint(a.revealErrs),
			fmt.Sprint(a.silent),
			fmt.Sprint(a.absorbed), fmt.Sprint(a.retries), fmt.Sprint(a.rereads),
			fmt.Sprint(a.corrected), fmt.Sprint(a.grownBad),
		})
		recovery.X = append(recovery.X, rate)
		recovery.Y = append(recovery.Y, float64(a.exact)/float64(den))
		typedLoss.X = append(typedLoss.X, rate)
		typedLoss.Y = append(typedLoss.Y, float64(a.hideErrs+a.revealErrs)/float64(den))
	}
	r.Tables = append(r.Tables, tbl)
	r.Series = append(r.Series, recovery, typedLoss)
	if totalSilent == 0 {
		r.AddNote("no silent corruption at any injected rate: every payload was revealed exactly or lost to a typed error")
	} else {
		r.AddNote("WARNING: %d silent corruptions — the fault layer's integrity contract is broken", totalSilent)
	}
	return r, nil
}
