package experiments

import (
	"fmt"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
)

// Snapshot regenerates the §9.2 "Multiple-Snapshot Adversary" discussion
// as a measurement: a single-snapshot adversary sees nothing (Figs 9/10),
// but one who diffs per-cell voltage probes taken before and after a hide
// — with the public data unchanged — sees the manipulated cells directly.
// The experiment quantifies the detection gap and the paper's proposed
// mitigation: piggybacking hides on public writes, so every diff the
// adversary takes is dominated by legitimate data turnover.
func Snapshot(s Scale) (*Result, error) {
	r := &Result{ID: "snapshot", Title: "multiple-snapshot adversary (§9.2 discussion)"}
	ts := s.tester(s.modelA(), "snapshot")
	dev := ts.Device()
	rng := s.rng("snapshot/bits")
	cfg := vthi.StandardConfig()
	bits := paperDensityBits(dev.Model(), cfg.HiddenCellsPerPage)

	images, err := ts.ProgramRandomBlock(0)
	if err != nil {
		return nil, err
	}
	probeBlock := func(block int) ([][]uint8, error) {
		out := make([][]uint8, dev.Geometry().PagesPerBlock)
		for p := range out {
			lv, err := dev.ProbePage(nand.PageAddr{Block: block, Page: p})
			if err != nil {
				return nil, err
			}
			out[p] = lv
		}
		return out, nil
	}
	diffCells := func(a, b [][]uint8, threshold int) int {
		n := 0
		for p := range a {
			for i := range a[p] {
				d := int(b[p][i]) - int(a[p][i])
				if d >= threshold || -d >= threshold {
					n++
				}
			}
		}
		return n
	}

	snap1, err := probeBlock(0)
	if err != nil {
		return nil, err
	}

	// Case 1: hide between snapshots, public data untouched.
	emb, err := vthi.NewEmbedder(dev, []byte("snapshot-key"), rawConfig(bits, cfg.PageInterval, cfg.MaxPPSteps))
	if err != nil {
		return nil, err
	}
	g := dev.Geometry()
	hiddenCells := 0
	for _, p := range hiddenPages(g.PagesPerBlock, cfg.PageInterval) {
		plan, err := emb.Plan(nand.PageAddr{Block: 0, Page: p}, images[p], bits)
		if err != nil {
			return nil, err
		}
		payload := randBits(rng, bits)
		if _, err := emb.Embed(plan, payload, cfg.MaxPPSteps); err != nil {
			return nil, err
		}
		for _, b := range payload {
			if b == 0 {
				hiddenCells++
			}
		}
	}
	snap2, err := probeBlock(0)
	if err != nil {
		return nil, err
	}
	const detectThreshold = 8 // levels; beyond any read/probe noise
	movedByHide := diffCells(snap1, snap2, detectThreshold)

	// Case 2 (mitigation): the same diff across a block whose public
	// data was legitimately rewritten — the cover traffic the paper
	// suggests hides the manipulation inside.
	if err := dev.EraseBlock(0); err != nil {
		return nil, err
	}
	if _, err := ts.ProgramRandomBlock(0); err != nil {
		return nil, err
	}
	snap3, err := probeBlock(0)
	if err != nil {
		return nil, err
	}
	movedByRewrite := diffCells(snap2, snap3, detectThreshold)

	totalCells := g.CellsPerBlock()
	r.Tables = append(r.Tables, Table{
		Title:   fmt.Sprintf("cells moved >= %d levels between snapshots (of %d)", detectThreshold, totalCells),
		Columns: []string{"interval between snapshots", "cells moved", "fraction"},
		Rows: [][]string{
			{"hide only (public data unchanged)", fmt.Sprint(movedByHide), pct(float64(movedByHide) / float64(totalCells))},
			{"ordinary public rewrite", fmt.Sprint(movedByRewrite), pct(float64(movedByRewrite) / float64(totalCells))},
		},
	})
	r.AddNote("a hide between snapshots moves ~%d cells (%d hidden '0' cells plus their partial-program disturb victims) while the public image is byte-identical — trivially detectable, as §9.2 concedes", movedByHide, hiddenCells)
	r.AddNote("the mitigation is cover traffic: piggybacking hides on public writes buries the manipulation in %dx more legitimate movement", movedByRewrite/maxInt(movedByHide, 1))
	return r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
