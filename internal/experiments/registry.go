package experiments

import (
	"fmt"
	"sort"
)

// Runner is one experiment entry point.
type Runner func(Scale) (*Result, error)

// Entry describes a registered experiment.
type Entry struct {
	ID    string
	Paper string // which paper artifact it regenerates
	Run   Runner
}

var registry = []Entry{
	{"fig1", "Figure 1 (SLC vs MLC distributions)", Fig1},
	{"fig2", "Figure 2 (sample variability)", Fig2},
	{"fig3", "Figure 3 (wear shift)", Fig3},
	{"fig5", "Figure 5 (hidden encoding placement)", Fig5},
	{"fig6", "Figure 6 (BER vs PP steps)", Fig6},
	{"fig7", "Figure 7 (BER vs page interval)", Fig7},
	{"fig8", "Figure 8 (distribution shift vs hidden bits)", Fig8},
	{"fig9", "Figure 9 (indistinguishability + KS)", Fig9},
	{"fig10", "Figure 10 (SVM, standard config)", Fig10},
	{"fig11", "Figure 11 (retention)", Fig11},
	{"fig12", "Figure 12 (SVM, enhanced config)", Fig12},
	{"tbl1", "Table 1 (VT-HI vs PT-HI)", Table1},
	{"thru", "§8 throughput analysis", Throughput},
	{"energy", "§8 energy analysis", Energy},
	{"wear", "§1/§8 wear amplification", Wear},
	{"cap", "§6.3/§8 capacity accounting", Capacity},
	{"relia", "§8 reliability vs PEC", Reliability},
	{"vendor2", "§8 second-vendor applicability", Vendor2},
	{"pubber", "§6.3 public-data interference", PublicInterference},
	{"snapshot", "§9.2 multiple-snapshot adversary (discussion)", Snapshot},
	{"sumstat", "§7 closing analysis (SVM on BER/mean/std)", SummaryStats},
	{"fig10page", "§7 page-level SVM", PageLevel},
	{"faults", "fault-injected recovery (extension)", Faults},
	{"retyears", "multi-year retention sweep (extension)", RetentionYears},
	{"schemes", "cross-scheme bake-off (extension)", Schemes},
	{"fleetload", "cross-tenant batching equivalence (extension)", FleetLoad},
}

// All returns every registered experiment, ordered by ID registration.
func All() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	return out
}

// IDs lists the registered experiment identifiers, sorted.
func IDs() []string {
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Entry, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}
