package experiments

import (
	"fmt"
	"math/rand/v2"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
	"stashflash/internal/parallel"
	"stashflash/internal/stats"
	"stashflash/internal/tester"
)

// rawConfig builds the paper-faithful embedding configuration used by the
// BER sweeps: absolute Vth 34, no ECC involvement (raw bits), hidden pages
// at the given interval.
func rawConfig(bits, interval, maxSteps int) vthi.Config {
	cfg := vthi.StandardConfig()
	cfg.HiddenCellsPerPage = bits
	cfg.PageInterval = interval
	cfg.MaxPPSteps = maxSteps
	return cfg
}

// hiddenPages lists page numbers carrying hidden data at an interval.
func hiddenPages(pagesPerBlock, interval int) []int {
	var out []int
	for p := 0; p < pagesPerBlock; p += interval + 1 {
		out = append(out, p)
	}
	return out
}

// pageEmbedding tracks one page's raw embedding for BER measurement.
type pageEmbedding struct {
	plan *vthi.PagePlan
	bits []uint8
}

// embedBlockRaw programs a block with random data and prepares raw-bit
// embeddings on its hidden pages (without running any PP steps yet).
func embedBlockRaw(ts *tester.Tester, emb *vthi.Embedder, block int, rng *rand.Rand, bits, interval int) ([]pageEmbedding, error) {
	images, err := ts.ProgramRandomBlock(block)
	if err != nil {
		return nil, err
	}
	g := ts.Device().Geometry()
	var out []pageEmbedding
	for _, p := range hiddenPages(g.PagesPerBlock, interval) {
		plan, err := emb.Plan(nand.PageAddr{Block: block, Page: p}, images[p], bits)
		if err != nil {
			return nil, err
		}
		out = append(out, pageEmbedding{plan: plan, bits: randBits(rng, bits)})
	}
	return out, nil
}

// measureRawBER reads back every embedding and returns the aggregate raw
// hidden BER.
func measureRawBER(emb *vthi.Embedder, embs []pageEmbedding) (float64, error) {
	errs, total := 0, 0
	for _, pe := range embs {
		got, err := emb.ReadBits(pe.plan)
		if err != nil {
			return 0, err
		}
		for j := range got {
			if got[j] != pe.bits[j] {
				errs++
			}
		}
		total += len(got)
	}
	return float64(errs) / float64(total), nil
}

// berStepsOneRep runs the Fig 6 measurement for one (combo, replicate)
// work unit: the hidden BER after each PP step 1..maxSteps on a fresh
// chip sample private to the unit.
func berStepsOneRep(s Scale, domain string, combo uint64, rep, interval, bits, maxSteps int) ([]float64, error) {
	ts := s.tester(s.modelA(), domain, combo, uint64(rep))
	rng := s.rng(domain+"/bits", combo, uint64(rep))
	emb, err := vthi.NewEmbedder(ts.Device(), []byte(domain+"-key"), rawConfig(bits, interval, maxSteps))
	if err != nil {
		return nil, err
	}
	embs, err := embedBlockRaw(ts, emb, 0, rng, bits, interval)
	if err != nil {
		return nil, err
	}
	out := make([]float64, maxSteps)
	for st := 0; st < maxSteps; st++ {
		for _, pe := range embs {
			if _, err := emb.ProgramStep(pe.plan, pe.bits); err != nil {
				return nil, err
			}
		}
		ber, err := measureRawBER(emb, embs)
		if err != nil {
			return nil, err
		}
		out[st] = ber
	}
	return out, nil
}

// ivBitsCombo is one (page interval, hidden bits) sweep point.
type ivBitsCombo struct {
	iv, bits int
}

// berPerStepSweep fans every (combo, replicate) pair of a BER sweep out
// as one flat unit batch — the widest decomposition with no nesting —
// and folds replicates back into per-combo step averages in replicate
// order, so the floats are identical for any worker count.
func berPerStepSweep(s Scale, domain string, combos []ivBitsCombo, maxSteps int) ([][]float64, error) {
	reps := s.ReplicateBlocks
	units, err := parallel.Map(s.workers(), len(combos)*reps, func(u int) ([]float64, error) {
		ci, rep := u/reps, u%reps
		return berStepsOneRep(s, domain, uint64(ci), rep, combos[ci].iv, combos[ci].bits, maxSteps)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(combos))
	for ci := range combos {
		avg := make([]float64, maxSteps)
		for rep := 0; rep < reps; rep++ {
			for st, ber := range units[ci*reps+rep] {
				avg[st] += ber / float64(reps)
			}
		}
		out[ci] = avg
	}
	return out, nil
}

// Fig5 regenerates paper Figure 5: where hidden '1' and hidden '0' cells
// sit inside the normal non-programmed distribution.
func Fig5(s Scale) (*Result, error) {
	r := &Result{ID: "fig5", Title: "hidden-bit encoding inside the erased-state distribution"}
	ts := s.tester(s.modelA(), "fig5")
	rng := s.rng("fig5/bits")
	cfg := vthi.StandardConfig()
	emb, err := vthi.NewEmbedder(ts.Device(), []byte("fig5-key"), rawConfig(cfg.HiddenCellsPerPage, cfg.PageInterval, cfg.MaxPPSteps))
	if err != nil {
		return nil, err
	}
	embs, err := embedBlockRaw(ts, emb, 0, rng, cfg.HiddenCellsPerPage, cfg.PageInterval)
	if err != nil {
		return nil, err
	}
	for _, pe := range embs {
		if _, err := emb.Embed(pe.plan, pe.bits, cfg.MaxPPSteps); err != nil {
			return nil, err
		}
	}

	normal := tester.NewVoltageHistogram()
	hidden1 := tester.NewVoltageHistogram()
	hidden0 := tester.NewVoltageHistogram()
	ref := uint8(ts.Device().Model().ReadRef)
	for _, pe := range embs {
		lv, err := ts.Device().ProbePage(pe.plan.Addr)
		if err != nil {
			return nil, err
		}
		sel := map[int]uint8{}
		for j, cell := range pe.plan.Cells {
			sel[cell] = pe.bits[j]
		}
		for i, v := range lv {
			if v >= ref {
				continue // programmed state, out of frame
			}
			if b, ok := sel[i]; ok {
				if b == 1 {
					hidden1.Add(float64(v))
				} else {
					hidden0.Add(float64(v))
				}
			} else {
				normal.Add(float64(v))
			}
		}
	}
	r.Series = append(r.Series,
		histSeries("normal '1'", normal, 0, 80),
		histSeries("hidden '1'", hidden1, 0, 80),
		histSeries("hidden '0'", hidden0, 0, 80),
	)
	r.Tables = append(r.Tables, Table{
		Title:   "population placement (Vth = 34)",
		Columns: []string{"population", "mean", "share below 34", "share at/above 34"},
		Rows: [][]string{
			{"normal '1'", f3(normal.Mean()), pct(1 - fractionAbove(normal, 34)), pct(fractionAbove(normal, 34))},
			{"hidden '1'", f3(hidden1.Mean()), pct(1 - fractionAbove(hidden1, 34)), pct(fractionAbove(hidden1, 34))},
			{"hidden '0'", f3(hidden0.Mean()), pct(1 - fractionAbove(hidden0, 34)), pct(fractionAbove(hidden0, 34))},
		},
	})
	r.AddNote("hidden '0' cells must sit at/above the threshold, hidden '1' below, both inside the normal '1' envelope")
	return r, nil
}

// Fig6 regenerates paper Figure 6: hidden BER over the first PP steps for
// combinations of page interval {0,1,2,4} and hidden bits {32,128,512}.
func Fig6(s Scale) (*Result, error) {
	r := &Result{ID: "fig6", Title: "hidden BER vs PP steps (interval x hidden bits)"}
	const maxSteps = 15
	intervals := []int{0, 1, 2, 4}
	bitCounts := []int{32, 128, 512}
	conv := Table{
		Title:   "steps to reach <1% BER (paper: ~10)",
		Columns: []string{"combo", "BER@1", "BER@5", "BER@10", "BER@15", "steps to <1%"},
	}
	var combos []ivBitsCombo
	for _, iv := range intervals {
		for _, bits := range bitCounts {
			combos = append(combos, ivBitsCombo{iv, bits})
		}
	}
	bers, err := berPerStepSweep(s, "fig6", combos, maxSteps)
	if err != nil {
		return nil, err
	}
	for ci, combo := range combos {
		ber := bers[ci]
		name := fmt.Sprintf("%d+%d", combo.iv, combo.bits)
		series := Series{Name: name}
		for st := 0; st < maxSteps; st++ {
			series.X = append(series.X, float64(st+1))
			series.Y = append(series.Y, ber[st])
		}
		r.Series = append(r.Series, series)
		cross := "-"
		for st := 0; st < maxSteps; st++ {
			if ber[st] < 0.01 {
				cross = fmt.Sprint(st + 1)
				break
			}
		}
		conv.Rows = append(conv.Rows, []string{
			name, f3(ber[0]), f3(ber[4]), f3(ber[9]), f3(ber[14]), cross,
		})
	}
	r.Tables = append(r.Tables, conv)
	r.AddNote("paper: BER starts ~0.20-0.25 and converges below 1%% after ~10 steps, for all combos")
	return r, nil
}

// Fig7 regenerates paper Figure 7: hidden BER at ten PP steps as a
// function of page interval, for 32/128/512 hidden cells.
func Fig7(s Scale) (*Result, error) {
	r := &Result{ID: "fig7", Title: "hidden BER at 10 PP steps vs page interval"}
	intervals := []int{0, 1, 2, 4}
	bitCounts := []int{32, 128, 512}
	tbl := Table{
		Title:   "hidden BER at 10 steps",
		Columns: []string{"hidden cells", "interval 0", "interval 1", "interval 2", "interval 4"},
	}
	var combos []ivBitsCombo
	for _, bits := range bitCounts {
		for _, iv := range intervals {
			combos = append(combos, ivBitsCombo{iv, bits})
		}
	}
	bers, err := berPerStepSweep(s, "fig7", combos, 10)
	if err != nil {
		return nil, err
	}
	for bi, bits := range bitCounts {
		series := Series{Name: fmt.Sprintf("%d hidden cells", bits)}
		row := []string{fmt.Sprint(bits)}
		for ii, iv := range intervals {
			ber := bers[bi*len(intervals)+ii]
			series.X = append(series.X, float64(iv))
			series.Y = append(series.Y, ber[9])
			row = append(row, f3(ber[9]))
		}
		r.Series = append(r.Series, series)
		tbl.Rows = append(tbl.Rows, row)
	}
	r.Tables = append(r.Tables, tbl)
	r.AddNote("paper: variation is small and generally insensitive to hidden cell count; residual irregularity is BER variance + program interference")
	return r, nil
}

// Fig8 regenerates paper Figure 8: block-level erased-state distributions
// after hiding 0/32/64/128/256 bits per page — the shift must stay tiny.
func Fig8(s Scale) (*Result, error) {
	r := &Result{ID: "fig8", Title: "erased-state distribution shift vs hidden bits per page"}
	counts := []int{0, 32, 64, 128, 256}
	tbl := Table{
		Title:   "erased-state statistics after VT-HI (bit counts are paper-page-equivalent densities)",
		Columns: []string{"hidden bits/page", "erased mean", "share >= 34", "KS vs normal"},
	}
	// Every (bit count, replicate block) pair is an independent unit; the
	// per-count histograms are folded back together in replicate order.
	reps := s.ReplicateBlocks
	hists, err := parallel.Map(s.workers(), len(counts)*reps, func(u int) (*stats.Histogram, error) {
		i, rep := u/reps, u%reps
		bits := 0
		if counts[i] > 0 {
			bits = paperDensityBits(s.modelA(), counts[i])
		}
		ts := s.tester(s.modelA(), "fig8", uint64(i), uint64(rep))
		rng := s.rng("fig8/bits", uint64(i), uint64(rep))
		if bits == 0 {
			if _, err := ts.ProgramRandomBlock(0); err != nil {
				return nil, err
			}
		} else {
			emb, err := vthi.NewEmbedder(ts.Device(), []byte("fig8-key"), rawConfig(bits, 1, 10))
			if err != nil {
				return nil, err
			}
			embs, err := embedBlockRaw(ts, emb, 0, rng, bits, 1)
			if err != nil {
				return nil, err
			}
			for _, pe := range embs {
				if _, err := emb.Embed(pe.plan, pe.bits, 10); err != nil {
					return nil, err
				}
			}
		}
		e, _, err := ts.BlockDistribution(0)
		return e, err
	})
	if err != nil {
		return nil, err
	}
	var baseline *stats.Histogram
	for i, paperBits := range counts {
		hist := tester.NewVoltageHistogram()
		for rep := 0; rep < reps; rep++ {
			addHist(hist, hists[i*reps+rep])
		}
		name := "normal"
		if paperBits > 0 {
			name = fmt.Sprintf("%d bits", paperBits)
		}
		r.Series = append(r.Series, histSeries(name, hist, 0, 80))
		ks := 0.0
		if baseline == nil {
			baseline = hist
		} else {
			ks = stats.KSStatistic(baseline, hist)
		}
		tbl.Rows = append(tbl.Rows, []string{
			name, f3(hist.Mean()), pct(fractionAbove(hist, 34)), f3(ks),
		})
	}
	r.Tables = append(r.Tables, tbl)
	r.AddNote("paper: hiding creates only a tiny right shift, growing with hidden bits")
	return r, nil
}

// Fig9 regenerates paper Figure 9: per-chip overlays of normal vs VT-HI
// block distributions, with KS statistics quantifying the "the human eye
// has difficulty distinguishing" claim.
func Fig9(s Scale) (*Result, error) {
	r := &Result{ID: "fig9", Title: "normal vs VT-HI distributions across chips"}
	tbl := Table{
		Title:   "two-sample KS distances (hide-induced vs natural block-to-block)",
		Columns: []string{"chip", "KS erased (same block, pre vs post hide)", "KS erased (two normal blocks)", "KS programmed (pre vs post hide)"},
	}
	cfg := vthi.StandardConfig()
	// One unit per chip sample: all three blocks of a sample live on the
	// same (single-threaded) chip, so the fan-out is strictly across chips.
	type chipOut struct {
		series        []Series
		row           []string
		ksE, ksN, ksP float64
	}
	outs, err := parallel.Map(s.workers(), s.ChipSamples, func(chip int) (chipOut, error) {
		ts := s.tester(s.modelA(), "fig9", uint64(chip))
		rng := s.rng("fig9/bits", uint64(chip))
		bits := paperDensityBits(ts.Device().Model(), cfg.HiddenCellsPerPage)
		// Blocks 0, 2: normal; block 1: VT-HI standard config. The
		// normal-vs-normal distance is the natural variation floor any
		// hide-induced difference must stay below.
		if _, err := ts.ProgramRandomBlock(0); err != nil {
			return chipOut{}, err
		}
		if _, err := ts.ProgramRandomBlock(2); err != nil {
			return chipOut{}, err
		}
		emb, err := vthi.NewEmbedder(ts.Device(), []byte("fig9-key"), rawConfig(bits, cfg.PageInterval, cfg.MaxPPSteps))
		if err != nil {
			return chipOut{}, err
		}
		embs, err := embedBlockRaw(ts, emb, 1, rng, bits, cfg.PageInterval)
		if err != nil {
			return chipOut{}, err
		}
		// Same-block snapshot before hiding isolates the hide-induced
		// distance from natural block-to-block differences.
		pe0, pp0, err := ts.BlockDistribution(1)
		if err != nil {
			return chipOut{}, err
		}
		for _, pe := range embs {
			if _, err := emb.Embed(pe.plan, pe.bits, cfg.MaxPPSteps); err != nil {
				return chipOut{}, err
			}
		}
		ne, np, err := ts.BlockDistribution(0)
		if err != nil {
			return chipOut{}, err
		}
		he, hp, err := ts.BlockDistribution(1)
		if err != nil {
			return chipOut{}, err
		}
		ne2, _, err := ts.BlockDistribution(2)
		if err != nil {
			return chipOut{}, err
		}
		label := fmt.Sprintf("chip %d", chip+1)
		ksE := stats.KSStatistic(pe0, he) // pure hide effect, same block
		ksN := stats.KSStatistic(ne, ne2) // natural block-to-block floor
		ksP := stats.KSStatistic(pp0, hp)
		return chipOut{
			series: []Series{
				histSeries(label+" normal erased", ne, 0, 80),
				histSeries(label+" hidden erased", he, 0, 80),
				histSeries(label+" normal programmed", np, 120, 210),
				histSeries(label+" hidden programmed", hp, 120, 210),
			},
			row: []string{label, f3(ksE), f3(ksN), f3(ksP)},
			ksE: ksE, ksN: ksN, ksP: ksP,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var hideKS, naturalKS float64
	for _, o := range outs {
		r.Series = append(r.Series, o.series...)
		tbl.Rows = append(tbl.Rows, o.row)
		hideKS += o.ksE
		naturalKS += o.ksN
	}
	r.Tables = append(r.Tables, tbl)
	n := float64(s.ChipSamples)
	r.AddNote("mean KS: hide-induced (same block) %.4f vs natural block-to-block %.4f — hiding moves the distribution less than ordinary block variation", hideKS/n, naturalKS/n)
	return r, nil
}
