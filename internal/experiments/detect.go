package experiments

import (
	"fmt"
	"math/rand/v2"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
	"stashflash/internal/parallel"
	"stashflash/internal/stats"
	"stashflash/internal/svm"
	"stashflash/internal/tester"
)

// featLevels bounds the histogram features handed to the SVM: erased-state
// bins 0..95 and programmed-state bins 110..229, concatenated. This is the
// "voltage levels for all cells in the block" representation of §7, binned
// the way the probe quantises.
const (
	erasedFeatLo, erasedFeatHi = 0, 95
	progFeatLo, progFeatHi     = 110, 229
)

// paperDensityBits converts a per-page hidden-bit budget defined on the
// paper's 18048-byte page to the equivalent budget on a scaled page, so
// detectability experiments at reduced scale keep the paper's hidden-cell
// DENSITY (what the adversary's statistics actually see) rather than its
// absolute count.
func paperDensityBits(m nand.Model, paperBits int) int {
	const paperCells = 18048 * 8
	b := paperBits * m.CellsPerPage() / paperCells
	b = b / 8 * 8
	if b < 16 {
		b = 16
	}
	return b
}

func featuresFrom(erased, programmed *stats.Histogram) []float64 {
	var out []float64
	for l := erasedFeatLo; l <= erasedFeatHi; l++ {
		out = append(out, erased.Fraction(l))
	}
	for l := progFeatLo; l <= progFeatHi; l++ {
		out = append(out, programmed.Fraction(l))
	}
	return out
}

// blockFeatures programs one block (cycled to pec) and returns its
// feature vector; when hide is non-nil, hidden data is embedded first.
type hideFn func(ts *tester.Tester, block int, rng *rand.Rand) error

func blockFeatures(ts *tester.Tester, block, pec int, rng *rand.Rand, hide hideFn) ([]float64, error) {
	if err := ts.CycleTo(block, pec); err != nil {
		return nil, err
	}
	if hide == nil {
		if _, err := ts.ProgramRandomBlock(block); err != nil {
			return nil, err
		}
	} else if err := hide(ts, block, rng); err != nil {
		return nil, err
	}
	e, p, err := ts.BlockDistribution(block)
	if err != nil {
		return nil, err
	}
	if err := ts.Device().DropBlockState(block); err != nil {
		return nil, err
	}
	return featuresFrom(e, p), nil
}

// standardHide embeds random raw bits with the paper's standard
// configuration on every hidden page of a freshly programmed block.
func standardHide(key []byte) hideFn {
	cfg := vthi.StandardConfig()
	return func(ts *tester.Tester, block int, rng *rand.Rand) error {
		bits := paperDensityBits(ts.Device().Model(), cfg.HiddenCellsPerPage)
		emb, err := vthi.NewEmbedder(ts.Device(), key, rawConfig(bits, cfg.PageInterval, cfg.MaxPPSteps))
		if err != nil {
			return err
		}
		embs, err := embedBlockRaw(ts, emb, block, rng, bits, cfg.PageInterval)
		if err != nil {
			return err
		}
		for _, pe := range embs {
			if _, err := emb.Embed(pe.plan, pe.bits, cfg.MaxPPSteps); err != nil {
				return err
			}
		}
		return nil
	}
}

// enhancedConfigFor clamps the enhanced configuration's 2560-cell budget
// to what a (possibly scaled-down) page can host.
func enhancedConfigFor(m nand.Model) vthi.Config {
	cfg := vthi.EnhancedConfig()
	cfg.HiddenCellsPerPage = paperDensityBits(m, cfg.HiddenCellsPerPage)
	// Scale the hidden ECC with the cell budget: strength covers the ~2%
	// operating BER plus slack, as the full-size configuration does.
	cfg.BCHT = cfg.HiddenCellsPerPage/32 + 8
	return cfg
}

// enhancedHide embeds with the vendor-supported enhanced configuration:
// pages are written and hidden-into in one pass while the block fills.
func enhancedHide(key []byte) hideFn {
	return func(ts *tester.Tester, block int, rng *rand.Rand) error {
		h, err := vthi.NewHider(ts.Device(), key, enhancedConfigFor(ts.Device().Model()))
		if err != nil {
			return err
		}
		g := ts.Device().Geometry()
		stride := h.HiddenPageStride()
		for p := 0; p < g.PagesPerBlock; p++ {
			a := nand.PageAddr{Block: block, Page: p}
			pub := make([]byte, h.PublicDataBytes())
			for i := range pub {
				pub[i] = byte(rng.IntN(256))
			}
			if p%stride == 0 {
				payload := make([]byte, h.HiddenPayloadBytes())
				for i := range payload {
					payload[i] = byte(rng.IntN(256))
				}
				if _, err := h.WriteAndHide(a, pub, payload, 0); err != nil {
					return err
				}
			} else if err := h.WritePage(a, pub); err != nil {
				return err
			}
		}
		return nil
	}
}

// enhancedNormal writes a block through the same public pipeline as
// enhancedHide but embeds nothing, so the two classes differ only in the
// hidden bits.
func enhancedNormal(key []byte) hideFn {
	return func(ts *tester.Tester, block int, rng *rand.Rand) error {
		h, err := vthi.NewHider(ts.Device(), key, enhancedConfigFor(ts.Device().Model()))
		if err != nil {
			return err
		}
		g := ts.Device().Geometry()
		for p := 0; p < g.PagesPerBlock; p++ {
			pub := make([]byte, h.PublicDataBytes())
			for i := range pub {
				pub[i] = byte(rng.IntN(256))
			}
			if err := h.WritePage(nand.PageAddr{Block: block, Page: p}, pub); err != nil {
				return err
			}
		}
		return nil
	}
}

// classSpec names one feature class of the sweep: blocks at one PEC,
// hidden or normal.
type classSpec struct {
	pec    int
	hidden bool
}

// svmSweep runs the paper's §7 methodology: per (hiddenPEC, normalPEC)
// pair, train on ChipSamples-1 chips with grid search + 3-fold CV and
// score on the held-out chip.
//
// The sweep runs in two fan-out phases. Feature collection parallelises
// strictly across chip samples — every class of one sample shares that
// sample's device, which is single-threaded, so one worker owns the
// whole device. Cell evaluation then parallelises across the
// (hiddenPEC, normalPEC) grid, which only reads the shared feature sets.
func svmSweep(s Scale, id, title string, hide, normal hideFn, hiddenPECs, normalPECs []int) (*Result, error) {
	r := &Result{ID: id, Title: title}

	// Canonical class list. Block numbers on each chip are assigned in
	// this order — a pure function of the sweep spec, not of execution
	// order, so the layout is identical for any worker count. Each class
	// gets fresh blocks: reusing a cycled block would contaminate the PEC
	// class with leftover wear.
	var classes []classSpec
	for _, hp := range hiddenPECs {
		classes = append(classes, classSpec{hp, true})
	}
	for _, np := range normalPECs {
		classes = append(classes, classSpec{np, false})
	}
	blocksNeeded := len(classes) * s.BlocksPerClass

	chipFeats, err := parallel.Map(s.workers(), s.ChipSamples, func(c int) (map[classSpec][][]float64, error) {
		ts := s.tester(s.modelA(), id, uint64(c))
		if g := ts.Device().Geometry().Blocks; blocksNeeded > g {
			return nil, fmt.Errorf("experiments: scale provides %d blocks/chip, sweep needs %d", g, blocksNeeded)
		}
		feats := make(map[classSpec][][]float64, len(classes))
		block := 0
		for ki, cl := range classes {
			rng := s.rng(id+"/class", uint64(c), uint64(ki))
			fn := normal
			if cl.hidden {
				fn = hide
			}
			out := make([][]float64, 0, s.BlocksPerClass)
			for i := 0; i < s.BlocksPerClass; i++ {
				f, err := blockFeatures(ts, block, cl.pec, rng, fn)
				if err != nil {
					return nil, err
				}
				block++
				out = append(out, f)
			}
			feats[cl] = out
		}
		return feats, nil
	})
	if err != nil {
		return nil, err
	}

	grid := svm.DefaultGrid()
	nc := len(normalPECs)
	accs, err := parallel.Map(s.workers(), len(hiddenPECs)*nc, func(u int) (float64, error) {
		hp, np := hiddenPECs[u/nc], normalPECs[u%nc]
		var trX, teX [][]float64
		var trY, teY []int
		for c := 0; c < s.ChipSamples; c++ {
			add := func(spec classSpec, label int) {
				for _, f := range chipFeats[c][spec] {
					if c == s.ChipSamples-1 {
						teX = append(teX, f)
						teY = append(teY, label)
					} else {
						trX = append(trX, f)
						trY = append(trY, label)
					}
				}
			}
			add(classSpec{hp, true}, 1)
			add(classSpec{np, false}, -1)
		}
		best := svm.GridSearch(trX, trY, grid, 3, s.Seed)
		sc := svm.FitScaler(trX)
		model := svm.Train(sc.Apply(trX), trY, best.Params)
		return model.Accuracy(sc.Apply(teX), teY), nil
	})
	if err != nil {
		return nil, err
	}

	tbl := Table{
		Title:   "held-out-chip classification accuracy (%)",
		Columns: append([]string{"hidden PEC \\ normal PEC"}, intsToStrings(normalPECs)...),
	}
	for hi, hp := range hiddenPECs {
		series := Series{Name: fmt.Sprintf("PEC %d", hp)}
		row := []string{fmt.Sprint(hp)}
		for ni, np := range normalPECs {
			acc := accs[hi*nc+ni]
			series.X = append(series.X, float64(np))
			series.Y = append(series.Y, acc*100)
			row = append(row, fmt.Sprintf("%.0f", acc*100))
		}
		r.Series = append(r.Series, series)
		tbl.Rows = append(tbl.Rows, row)
	}
	r.Tables = append(r.Tables, tbl)
	return r, nil
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}

// Fig10 regenerates paper Figure 10: SVM accuracy classifying hidden vs
// normal blocks (standard configuration) across wear levels. Matched-PEC
// cells should sit near 50%; mismatched wear dominates classification.
func Fig10(s Scale) (*Result, error) {
	r, err := svmSweep(s, "fig10",
		"SVM detectability, standard configuration",
		standardHide([]byte("fig10-key")), nil,
		[]int{0, 1000, 2000},
		[]int{0, 500, 1000, 1500, 2000, 2500, 3000},
	)
	if err != nil {
		return nil, err
	}
	r.AddNote("paper: ~50-53%% when hidden and normal PEC match within a few hundred cycles; accuracy rises with PEC mismatch")
	annotateMatchedPEC(r)
	return r, nil
}

// Fig12 regenerates paper Figure 12: the same sweep for the enhanced
// (vendor-supported, 10x bits) configuration; accuracy in the matched-PEC
// band is slightly higher than the standard configuration but still low.
func Fig12(s Scale) (*Result, error) {
	key := []byte("fig12-key")
	r, err := svmSweep(s, "fig12",
		"SVM detectability, enhanced (9x capacity) configuration",
		enhancedHide(key), enhancedNormal(key),
		[]int{0, 1000, 2000},
		[]int{0, 500, 1000, 1500, 2000, 2500, 3000},
	)
	if err != nil {
		return nil, err
	}
	r.AddNote("paper: matched-PEC accuracy 50-60%%, slightly above the standard configuration")
	r.AddNote("this reproduction's enhanced mode is MORE detectable than the paper's: the 10x payload cannot hide in our model's thin natural tail; see EXPERIMENTS.md on the paper's underspecified threshold-15 placement")
	annotateMatchedPEC(r)
	return r, nil
}

// annotateMatchedPEC summarises the diagonal (matched wear) accuracy,
// which is the paper's headline security number.
func annotateMatchedPEC(r *Result) {
	var sum float64
	var n int
	for _, s := range r.Series {
		var hp int
		fmt.Sscanf(s.Name, "PEC %d", &hp)
		for i := range s.X {
			if int(s.X[i]) == hp {
				sum += s.Y[i]
				n++
			}
		}
	}
	if n > 0 {
		r.AddNote("matched-PEC mean accuracy: %.1f%% (50%% = random guess)", sum/float64(n))
	}
}
