package experiments

import (
	"fmt"

	"stashflash/internal/core/vthi"
	"stashflash/internal/nand"
	"stashflash/internal/parallel"
	"stashflash/internal/svm"
	"stashflash/internal/tester"
)

// Variants of the §7 detectability analysis beyond the headline Fig 10:
//
//   - SummaryStats reproduces the section's closing experiment: "an
//     attacker could draw inferences from changes in characteristics of
//     public data, such as BER, mean voltage, and its standard deviation
//     ... these analyses are also unsuccessful".
//   - PageLevel reproduces "a similar experiment at the page-level shows
//     similar results".

// summaryFeatures reduces a block to the paper's coarse characteristics:
// per-state mean and standard deviation plus the public bit error count
// the adversary actually observes — the corrected-symbol counts reported
// by the page ECC on read (an attacker has no ground-truth originals).
func summaryFeatures(ts *tester.Tester, h *vthi.Hider, block int) ([]float64, error) {
	e, p, err := ts.BlockDistribution(block)
	if err != nil {
		return nil, err
	}
	corrected := 0
	for pg := 0; pg < ts.Device().Geometry().PagesPerBlock; pg++ {
		_, n, err := h.ReadPublic(nand.PageAddr{Block: block, Page: pg})
		if err != nil {
			return nil, err
		}
		corrected += n
	}
	return []float64{
		e.Mean(), histStd(e),
		p.Mean(), histStd(p),
		float64(corrected),
	}, nil
}

// labelledFeatures is one device's contribution to an SVM data set: feature
// rows plus their class labels, in block order.
type labelledFeatures struct {
	X [][]float64
	Y []int
}

// heldOutAccuracies trains and scores one SVM per PEC on features
// collected per (pec, chip) unit — outs is indexed [pec*ChipSamples+chip]
// — training on the first ChipSamples-1 chips and scoring on the last.
// The cells only read the shared feature sets, so they fan out freely.
func heldOutAccuracies(s Scale, pecs []int, outs []labelledFeatures) ([]float64, error) {
	grid := svm.DefaultGrid()
	return parallel.Map(s.workers(), len(pecs), func(pi int) (float64, error) {
		var trX, teX [][]float64
		var trY, teY []int
		for c := 0; c < s.ChipSamples; c++ {
			o := outs[pi*s.ChipSamples+c]
			if c == s.ChipSamples-1 {
				teX = append(teX, o.X...)
				teY = append(teY, o.Y...)
			} else {
				trX = append(trX, o.X...)
				trY = append(trY, o.Y...)
			}
		}
		best := svm.GridSearch(trX, trY, grid, 3, s.Seed)
		sc := svm.FitScaler(trX)
		model := svm.Train(sc.Apply(trX), trY, best.Params)
		return model.Accuracy(sc.Apply(teX), teY), nil
	})
}

// SummaryStats runs the matched-PEC detectability test using only summary
// characteristics as features. The paper reports the attack fails; the
// matched-wear accuracies here must hover near 50%.
func SummaryStats(s Scale) (*Result, error) {
	r := &Result{ID: "sumstat", Title: "SVM on summary statistics (BER, mean, std) — §7 closing analysis"}
	key := []byte("sumstat-key")
	cfg := vthi.StandardConfig()

	tbl := Table{
		Title:   "held-out-chip accuracy at matched PEC (%)",
		Columns: []string{"PEC", "accuracy"},
	}
	pecs := []int{0, 1000, 2000}
	// Phase 1: every (PEC, chip sample) pair is an independent unit that
	// owns its device and produces that device's labelled feature rows.
	outs, err := parallel.Map(s.workers(), len(pecs)*s.ChipSamples, func(u int) (labelledFeatures, error) {
		pi, c := u/s.ChipSamples, u%s.ChipSamples
		pec := pecs[pi]
		var lf labelledFeatures
		ts := s.tester(s.modelA(), "sumstat", uint64(pi), uint64(c))
		rng := s.rng("sumstat/data", uint64(pi), uint64(c))
		dev := ts.Device()
		h, err := vthi.NewHider(dev, key, cfg)
		if err != nil {
			return lf, err
		}
		bits := paperDensityBits(dev.Model(), cfg.HiddenCellsPerPage)
		for i := 0; i < 2*s.BlocksPerClass; i++ {
			block := i
			hidden := i%2 == 0
			if err := ts.CycleTo(block, pec); err != nil {
				return lf, err
			}
			// Both classes are written through the same public ECC
			// pipeline; hidden blocks additionally embed payloads.
			for pg := 0; pg < dev.Geometry().PagesPerBlock; pg++ {
				pub := make([]byte, h.PublicDataBytes())
				for j := range pub {
					pub[j] = byte(rng.IntN(256))
				}
				if err := h.WritePage(nand.PageAddr{Block: block, Page: pg}, pub); err != nil {
					return lf, err
				}
			}
			if hidden {
				for _, pg := range hiddenPages(dev.Geometry().PagesPerBlock, cfg.PageInterval) {
					// Use a density-scaled raw embed so the hidden load
					// matches the other detectability experiments.
					raw, err := vthi.NewEmbedder(dev, key, rawConfig(bits, cfg.PageInterval, cfg.MaxPPSteps))
					if err != nil {
						return lf, err
					}
					img, err := dev.ReadPage(nand.PageAddr{Block: block, Page: pg})
					if err != nil {
						return lf, err
					}
					plan, err := raw.Plan(nand.PageAddr{Block: block, Page: pg}, img, bits)
					if err != nil {
						return lf, err
					}
					if _, err := raw.Embed(plan, randBits(rng, bits), cfg.MaxPPSteps); err != nil {
						return lf, err
					}
				}
			}
			f, err := summaryFeatures(ts, h, block)
			if err != nil {
				return lf, err
			}
			if err := ts.Device().DropBlockState(block); err != nil {
				return lf, err
			}
			label := -1
			if hidden {
				label = 1
			}
			lf.X = append(lf.X, f)
			lf.Y = append(lf.Y, label)
		}
		return lf, nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 2: train/score each PEC cell on the collected features.
	accs, err := heldOutAccuracies(s, pecs, outs)
	if err != nil {
		return nil, err
	}
	for pi, pec := range pecs {
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(pec), fmt.Sprintf("%.0f", accs[pi]*100)})
		r.Series = append(r.Series, Series{Name: "accuracy", X: []float64{float64(pec)}, Y: []float64{accs[pi] * 100}})
	}
	r.Tables = append(r.Tables, tbl)
	r.AddNote("paper: classification from public-data characteristics is \"also unsuccessful\"; 50%% = random")
	return r, nil
}

// PageLevel runs the matched-PEC detectability test on PAGE-level voltage
// histograms ("a similar experiment at the page-level shows similar
// results", §7). Pages have fewer cells than blocks, so the per-sample
// statistics are noisier — if anything the attacker does worse.
func PageLevel(s Scale) (*Result, error) {
	r := &Result{ID: "fig10page", Title: "SVM detectability at page level (§7)"}
	key := []byte("page-key")
	cfg := vthi.StandardConfig()

	tbl := Table{
		Title:   "held-out-chip page classification accuracy at matched PEC (%)",
		Columns: []string{"PEC", "accuracy"},
	}
	pecs := []int{0, 1000, 2000}
	outs, err := parallel.Map(s.workers(), len(pecs)*s.ChipSamples, func(u int) (labelledFeatures, error) {
		pi, c := u/s.ChipSamples, u%s.ChipSamples
		pec := pecs[pi]
		var lf labelledFeatures
		ts := s.tester(s.modelA(), "fig10page", uint64(pi), uint64(c))
		rng := s.rng("fig10page/bits", uint64(pi), uint64(c))
		dev := ts.Device()
		bits := paperDensityBits(dev.Model(), cfg.HiddenCellsPerPage)
		collect := func(block int, pages []int, label int) error {
			for _, p := range pages {
				e, pr, err := ts.PageDistribution(nand.PageAddr{Block: block, Page: p})
				if err != nil {
					return err
				}
				lf.X = append(lf.X, featuresFrom(e, pr))
				lf.Y = append(lf.Y, label)
			}
			return nil
		}
		// Several hidden and normal blocks per device; the samples are
		// the hidden-position pages of each (stride 2).
		blocksPerClass := s.BlocksPerClass / 2
		if blocksPerClass < 2 {
			blocksPerClass = 2
		}
		for b := 0; b < 2*blocksPerClass; b++ {
			hidden := b%2 == 0
			if err := ts.CycleTo(b, pec); err != nil {
				return lf, err
			}
			hp := hiddenPages(dev.Geometry().PagesPerBlock, cfg.PageInterval)
			if hidden {
				emb, err := vthi.NewEmbedder(dev, key, rawConfig(bits, cfg.PageInterval, cfg.MaxPPSteps))
				if err != nil {
					return lf, err
				}
				embs, err := embedBlockRaw(ts, emb, b, rng, bits, cfg.PageInterval)
				if err != nil {
					return lf, err
				}
				for _, pe := range embs {
					if _, err := emb.Embed(pe.plan, pe.bits, cfg.MaxPPSteps); err != nil {
						return lf, err
					}
				}
				if err := collect(b, hp, 1); err != nil {
					return lf, err
				}
			} else {
				if _, err := ts.ProgramRandomBlock(b); err != nil {
					return lf, err
				}
				if err := collect(b, hp, -1); err != nil {
					return lf, err
				}
			}
			if err := dev.DropBlockState(b); err != nil {
				return lf, err
			}
		}
		return lf, nil
	})
	if err != nil {
		return nil, err
	}
	accs, err := heldOutAccuracies(s, pecs, outs)
	if err != nil {
		return nil, err
	}
	for pi, pec := range pecs {
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(pec), fmt.Sprintf("%.0f", accs[pi]*100)})
		r.Series = append(r.Series, Series{Name: "accuracy", X: []float64{float64(pec)}, Y: []float64{accs[pi] * 100}})
	}
	r.Tables = append(r.Tables, tbl)
	r.AddNote("paper: page-level results are \"similar\" to block-level — matched-PEC accuracy near 50%%")
	return r, nil
}
