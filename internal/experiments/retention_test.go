package experiments

import "testing"

// TestRetentionYearsEquivalence proves the multi-year retention sweep is
// indifferent to every engine knob that must never be an input: worker
// fan-out, device transport, and — the point of this experiment — the
// lazy-vs-eager retention engine. A decade of virtual aging rendered
// through deferred decay folds must be byte-identical to the eager
// reference walk.
func TestRetentionYearsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	run := func(name string, mutate func(*Scale)) string {
		s := tinyScale()
		mutate(&s)
		r, err := RetentionYears(s)
		if err != nil {
			t.Fatalf("retyears %s: %v", name, err)
		}
		return renderText(t, r)
	}
	base := run("direct/1/lazy", func(s *Scale) { s.Workers = 1 })
	for _, c := range []struct {
		name   string
		mutate func(*Scale)
	}{
		{"direct/8/lazy", func(s *Scale) { s.Workers = 8 }},
		{"onfi/1/lazy", func(s *Scale) { s.Backend = "onfi"; s.Workers = 1 }},
		{"onfi/8/lazy", func(s *Scale) { s.Backend = "onfi"; s.Workers = 8 }},
		{"direct/1/eager", func(s *Scale) { s.Workers = 1; s.EagerRetention = true }},
		{"onfi/8/eager", func(s *Scale) { s.Backend = "onfi"; s.Workers = 8; s.EagerRetention = true }},
	} {
		if got := run(c.name, c.mutate); got != base {
			t.Errorf("%s differs from direct/1/lazy\n--- direct/1/lazy ---\n%s\n--- %s ---\n%s",
				c.name, base, c.name, got)
		}
	}
}
