package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand/v2"

	"stashflash/internal/nand"
	"stashflash/internal/onfi"
	"stashflash/internal/parallel"
	"stashflash/internal/tester"
)

// Seed partitioning: every independent work unit of an experiment — a
// chip sample, an SVM-class block batch, a replicate point — draws from a
// private PRNG stream derived from (Scale.Seed, experiment domain, unit
// index path) instead of sharing one sequential generator. A worker
// consuming its stream therefore can never perturb another unit's draws,
// which is the invariant that makes workers=1 and workers=N bit-identical
// (see TestFig6DeterminismAcrossWorkers). The earlier ad-hoc additive
// offsets (s.Seed+rep*977 and friends) provided per-unit streams too, but
// with no collision guarantee across experiments; the hash-derived scheme
// makes the partition systematic.

// subSeed derives two independent 64-bit seed words for one work unit by
// hashing the run seed, an experiment-scoped domain string, and the
// unit's index path with SHA-256. Distinct (domain, path) pairs yield
// computationally independent streams under the same run seed.
func (s Scale) subSeed(domain string, path ...uint64) (uint64, uint64) {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], s.Seed)
	h.Write(b[:])
	h.Write([]byte(domain))
	for _, u := range path {
		binary.BigEndian.PutUint64(b[:], u)
		h.Write(b[:])
	}
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum[0:8]), binary.BigEndian.Uint64(sum[8:16])
}

// rng returns the unit's private PRNG stream.
func (s Scale) rng(domain string, path ...uint64) *rand.Rand {
	a, b := s.subSeed(domain, path...)
	return rand.New(rand.NewPCG(a, b))
}

// tester builds the chip sample plus host tester owned by one work unit.
// The chip's manufacturing-variation stream and the host's data-pattern
// stream are partitioned under separate sub-domains so they stay
// independent. Scale.Backend picks how the tester reaches the chip: ""
// or "direct" issues direct calls, "onfi" drives every operation through
// the bus-level command adapter (bit-identical by construction; see
// internal/onfi). The returned Tester (and its device) must remain
// confined to the worker that called this: a Device is not safe for
// concurrent use, so the engine parallelises across devices, never
// within one.
func (s Scale) tester(m nand.Model, domain string, path ...uint64) *tester.Tester {
	chipSeed, _ := s.subSeed(domain+"/chip", path...)
	hostSeed, _ := s.subSeed(domain+"/host", path...)
	chip := nand.NewChip(m, chipSeed)
	// The eager reference engine is results-transparent (bit-identical
	// to the lazy default; see retention_test.go here and in nand).
	chip.SetEagerRetention(s.EagerRetention)
	var dev nand.LabDevice = chip
	if s.Backend == "onfi" {
		dev = onfi.NewDevice(chip)
	}
	if s.Metrics != nil {
		// The observability decorator forwards every operation verbatim;
		// Results stay bit-identical with or without it (obs_test.go).
		dev = s.Metrics.Wrap(dev)
	}
	return tester.New(dev, hostSeed)
}

// workers resolves the effective fan-out width for this run: an explicit
// Scale.Workers pin, else $STASHFLASH_WORKERS, else GOMAXPROCS.
func (s Scale) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return parallel.DefaultWorkers()
}
