package experiments

import (
	"testing"

	"stashflash/internal/obs"
)

// TestObservabilityTransparent is the acceptance proof for the
// observability decorator: wrapping every work unit's device in
// obs.Device must leave experiment Results bit-identical — at workers=1
// and workers=8, over both device backends — because the wrapper only
// counts and times, never touches data, errors or PRNG streams. fig2
// (chip-sample fan-out, pure characterisation) and faults (typed errors,
// retries, recovery — the path where a non-transparent wrapper would
// perturb the most) stand for the suite.
func TestObservabilityTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs in -short mode")
	}
	for _, id := range []string{"fig2", "faults"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			run := func(backend string, workers int, m *obs.Collector) string {
				s := tinyScale()
				s.Backend = backend
				s.Workers = workers
				s.Metrics = m
				r, err := e.Run(s)
				if err != nil {
					t.Fatalf("backend=%q workers=%d metrics=%v: %v", backend, workers, m != nil, err)
				}
				return renderText(t, r)
			}
			bare := run("", 1, nil)
			for _, c := range []struct {
				backend string
				workers int
			}{{"", 1}, {"", 8}, {"onfi", 1}, {"onfi", 8}} {
				m := obs.NewCollector(0)
				if got := run(c.backend, c.workers, m); got != bare {
					t.Errorf("wrapped run (backend=%q workers=%d) differs from bare run\n--- bare ---\n%s\n--- wrapped ---\n%s",
						c.backend, c.workers, bare, got)
				}
				snap := m.Snapshot()
				if snap.Devices == 0 {
					t.Errorf("backend=%q workers=%d: collector wrapped no devices", c.backend, c.workers)
				}
				var total uint64
				for _, o := range snap.Ops {
					total += o.Count
				}
				if total == 0 {
					t.Errorf("backend=%q workers=%d: collector recorded no operations", c.backend, c.workers)
				}
			}
		})
	}
}

// TestObservabilityTraceOverONFI checks the flight recorder end to end
// through the experiment engine: a traced collector over the onfi
// backend retains bus cycles in its snapshot.
func TestObservabilityTraceOverONFI(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	m := obs.NewCollector(128)
	s := tinyScale()
	s.Backend = "onfi"
	s.Metrics = m
	if _, err := Fig2(s); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.TraceRecorded == 0 || len(snap.Trace) == 0 {
		t.Fatalf("trace empty after onfi run: recorded %d retained %d", snap.TraceRecorded, len(snap.Trace))
	}
	if len(snap.Trace) > 128 {
		t.Errorf("trace retained %d cycles, cap 128", len(snap.Trace))
	}
}
