package ecc

import (
	"math/rand/v2"
	"testing"
)

// The perf campaign pins zero steady-state allocations on the codec hot
// paths: once a codec has warmed its scratch, Encode/Decode must not touch
// the heap. These tests are the contract; the benchmarks below report the
// same numbers per op so regressions show up in bench diffs too.

func eccTestWord(t testing.TB, c *BCH, msgLen int, flips int) []byte {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, uint64(msgLen)))
	data := make([]byte, msgLen)
	for i := range data {
		data[i] = uint8(rng.IntN(2))
	}
	word := c.Encode(data)
	for _, i := range rng.Perm(len(word))[:flips] {
		word[i] ^= 1
	}
	return word
}

func TestBCHZeroAllocSteadyState(t *testing.T) {
	c := NewBCH(9, 4)
	data := make([]byte, 256)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := range data {
		data[i] = uint8(rng.IntN(2))
	}
	dst := make([]byte, len(data)+c.ParityBits())
	// Warm-up sizes every internal scratch buffer.
	c.EncodeTo(dst, data)
	if _, err := c.Decode(dst); err != nil {
		t.Fatalf("warm-up decode: %v", err)
	}

	if n := testing.AllocsPerRun(50, func() { c.EncodeTo(dst, data) }); n != 0 {
		t.Errorf("EncodeTo allocates %.1f objects/op, want 0", n)
	}
	word := eccTestWord(t, c, 256, 3)
	orig := append([]byte(nil), word...)
	if n := testing.AllocsPerRun(50, func() {
		copy(word, orig)
		if _, err := c.Decode(word); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}); n != 0 {
		t.Errorf("Decode allocates %.1f objects/op, want 0", n)
	}
}

func TestRSZeroAllocSteadyState(t *testing.T) {
	c := NewRS(4)
	rng := rand.New(rand.NewPCG(9, 9))
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(rng.IntN(256))
	}
	dst := make([]byte, len(data)+c.ParitySymbols())
	c.EncodeTo(dst, data)
	word := append([]byte(nil), dst...)
	word[3] ^= 0x5a
	word[40] ^= 0x11
	orig := append([]byte(nil), word...)
	if _, err := c.Decode(word); err != nil {
		t.Fatalf("warm-up decode: %v", err)
	}

	if n := testing.AllocsPerRun(50, func() { c.EncodeTo(dst, data) }); n != 0 {
		t.Errorf("EncodeTo allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		copy(word, orig)
		if _, err := c.Decode(word); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}); n != 0 {
		t.Errorf("Decode allocates %.1f objects/op, want 0", n)
	}
}

func TestRSDecodeErasuresZeroAllocSteadyState(t *testing.T) {
	c := NewRS(4)
	rng := rand.New(rand.NewPCG(11, 11))
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(rng.IntN(256))
	}
	clean := c.Encode(data)
	erasures := []int{2, 17, 33, 50, 60}
	word := append([]byte(nil), clean...)
	if err := c.DecodeErasures(word, erasures); err != nil {
		t.Fatalf("warm-up erasure decode: %v", err)
	}
	if n := testing.AllocsPerRun(50, func() {
		copy(word, clean)
		for _, p := range erasures {
			word[p] ^= 0xff
		}
		if err := c.DecodeErasures(word, erasures); err != nil {
			t.Fatalf("erasure decode: %v", err)
		}
	}); n != 0 {
		t.Errorf("DecodeErasures allocates %.1f objects/op, want 0", n)
	}
}

func TestInterleaverToZeroAlloc(t *testing.T) {
	il := NewInterleaver(8)
	bits := make([]uint8, 2048)
	for i := range bits {
		bits[i] = uint8(i % 2)
	}
	dst := make([]uint8, len(bits))
	back := make([]uint8, len(bits))
	if n := testing.AllocsPerRun(50, func() {
		il.InterleaveTo(dst, bits)
		il.DeinterleaveTo(back, dst)
	}); n != 0 {
		t.Errorf("InterleaveTo+DeinterleaveTo allocates %.1f objects/op, want 0", n)
	}
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestInterleaveToMatchesInterleave(t *testing.T) {
	for _, depth := range []int{1, 3, 8} {
		il := NewInterleaver(depth)
		for _, n := range []int{0, 1, 17, 256} {
			bits := make([]uint8, n)
			for i := range bits {
				bits[i] = uint8((i * 7) % 2)
			}
			dst := make([]uint8, n)
			got := il.InterleaveTo(dst, bits)
			want := il.Interleave(bits)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("depth=%d n=%d: InterleaveTo differs at %d", depth, n, i)
				}
			}
			gotBack := il.DeinterleaveTo(make([]uint8, n), got)
			for i := range bits {
				if gotBack[i] != bits[i] {
					t.Fatalf("depth=%d n=%d: DeinterleaveTo not inverse at %d", depth, n, i)
				}
			}
		}
	}
}

func BenchmarkBCHEncode(b *testing.B) {
	c := NewBCH(9, 4)
	data := make([]byte, 256)
	for i := range data {
		data[i] = uint8(i % 2)
	}
	dst := make([]byte, len(data)+c.ParityBits())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeTo(dst, data)
	}
}

func BenchmarkBCHDecode(b *testing.B) {
	c := NewBCH(9, 4)
	word := eccTestWord(b, c, 256, 3)
	orig := append([]byte(nil), word...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(word, orig)
		if _, err := c.Decode(word); err != nil {
			b.Fatalf("decode: %v", err)
		}
	}
}

func BenchmarkRSDecode(b *testing.B) {
	c := NewRS(4)
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i * 31)
	}
	clean := c.Encode(data)
	word := append([]byte(nil), clean...)
	word[5] ^= 0x21
	word[77] ^= 0x84
	orig := append([]byte(nil), word...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(word, orig)
		if _, err := c.Decode(word); err != nil {
			b.Fatalf("decode: %v", err)
		}
	}
}

func BenchmarkRSDecodeErasures(b *testing.B) {
	c := NewRS(4)
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i * 13)
	}
	clean := c.Encode(data)
	erasures := []int{4, 19, 66, 90, 101, 120}
	word := append([]byte(nil), clean...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(word, clean)
		for _, p := range erasures {
			word[p] ^= 0xff
		}
		if err := c.DecodeErasures(word, erasures); err != nil {
			b.Fatalf("erasure decode: %v", err)
		}
	}
}
