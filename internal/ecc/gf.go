// Package ecc implements the error-correcting codes the paper relies on:
// binary BCH codes (the standard choice for NAND flash pages and what we
// use for VT-HI hidden payloads), Reed–Solomon over GF(2^8) (for the
// RAID-like cross-page redundancy §8 suggests for bad-block protection),
// and an extended Hamming SEC-DED code for small metadata. All codes are
// systematic. Everything is implemented from scratch on stdlib only.
package ecc

import "fmt"

// Field is a finite field GF(2^m) represented with log/antilog tables.
// Elements are integers in [0, 2^m). Addition is XOR.
type Field struct {
	m    int      // extension degree
	n    int      // multiplicative group order, 2^m - 1
	poly uint32   // primitive polynomial (including x^m term)
	exp  []uint16 // exp[i] = alpha^i, doubled length to skip mod n
	log  []uint16 // log[x] = i such that alpha^i = x; log[0] unused
}

// primitivePolys[m] is a primitive polynomial of degree m over GF(2),
// encoded with bit i = coefficient of x^i. Standard choices.
var primitivePolys = map[int]uint32{
	3:  0b1011,              // x^3 + x + 1
	4:  0b10011,             // x^4 + x + 1
	5:  0b100101,            // x^5 + x^2 + 1
	6:  0b1000011,           // x^6 + x + 1
	7:  0b10001001,          // x^7 + x^3 + 1
	8:  0b100011101,         // x^8 + x^4 + x^3 + x^2 + 1
	9:  0b1000010001,        // x^9 + x^4 + 1
	10: 0b10000001001,       // x^10 + x^3 + 1
	11: 0b100000000101,      // x^11 + x^2 + 1
	12: 0b1000001010011,     // x^12 + x^6 + x^4 + x + 1
	13: 0b10000000011011,    // x^13 + x^4 + x^3 + x + 1
	14: 0b100010001000011,   // x^14 + x^10 + x^6 + x + 1
	15: 0b1000000000000011,  // x^15 + x + 1
	16: 0b10001000000001011, // x^16 + x^12 + x^3 + x + 1
}

// NewField constructs GF(2^m) for 3 <= m <= 16. It panics on unsupported m:
// field degree is a compile-time design choice, never data.
func NewField(m int) *Field {
	poly, ok := primitivePolys[m]
	if !ok {
		panic(fmt.Sprintf("ecc: unsupported field degree %d", m))
	}
	n := (1 << m) - 1
	f := &Field{
		m:    m,
		n:    n,
		poly: poly,
		exp:  make([]uint16, 2*n),
		log:  make([]uint16, n+1),
	}
	x := uint32(1)
	for i := 0; i < n; i++ {
		f.exp[i] = uint16(x)
		f.exp[i+n] = uint16(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x&(1<<m) != 0 {
			x ^= poly
		}
	}
	return f
}

// M returns the extension degree m.
func (f *Field) M() int { return f.m }

// N returns the multiplicative group order 2^m - 1 (the natural BCH/RS
// codeword length over this field).
func (f *Field) N() int { return f.n }

// Exp returns alpha^i for any integer i, reducing the exponent mod n.
// Negative exponents are valid (alpha^-i = alpha^(n-i)); Go's % keeps the
// sign of the dividend, so the remainder is normalized before indexing.
func (f *Field) Exp(i int) int {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	return int(f.exp[i])
}

// Log returns the discrete log of x. It panics on x == 0, which has no log;
// callers must guard, as every zero-divide here is an algorithm bug.
func (f *Field) Log(x int) int {
	if x == 0 {
		panic("ecc: log of zero")
	}
	return int(f.log[x])
}

// Mul multiplies two field elements.
func (f *Field) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return int(f.exp[int(f.log[a])+int(f.log[b])])
}

// Div divides a by b. It panics if b == 0.
func (f *Field) Div(a, b int) int {
	if b == 0 {
		panic("ecc: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(f.log[a]) - int(f.log[b])
	if d < 0 {
		d += f.n
	}
	return int(f.exp[d])
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("ecc: inverse of zero")
	}
	return int(f.exp[f.n-int(f.log[a])])
}

// Pow returns a^e for e >= 0.
func (f *Field) Pow(a, e int) int {
	if a == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	return int(f.exp[(int(f.log[a])*e)%f.n])
}

// PolyEval evaluates the polynomial p (p[i] = coefficient of x^i) at x
// using Horner's rule.
func (f *Field) PolyEval(p []int, x int) int {
	v := 0
	for i := len(p) - 1; i >= 0; i-- {
		v = f.Mul(v, x) ^ p[i]
	}
	return v
}

// PolyMul multiplies two polynomials over the field.
func (f *Field) PolyMul(a, b []int) []int {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]int, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= f.Mul(ai, bj)
		}
	}
	return out
}

// minimalPolynomial returns the minimal polynomial over GF(2) of alpha^i,
// as a GF(2) polynomial encoded with bit j = coefficient of x^j. It works
// by multiplying (x - alpha^(i*2^k)) over the cyclotomic coset of i.
func (f *Field) minimalPolynomial(i int) uint64 {
	// Collect the cyclotomic coset {i, 2i, 4i, ...} mod n.
	coset := []int{}
	seen := map[int]bool{}
	for c := i % f.n; !seen[c]; c = (c * 2) % f.n {
		seen[c] = true
		coset = append(coset, c)
	}
	// Product of (x + alpha^c) computed over GF(2^m); the result has
	// coefficients in GF(2) by construction.
	p := []int{1} // constant polynomial 1
	for _, c := range coset {
		root := f.Exp(c)
		// p = p * (x + root)
		np := make([]int, len(p)+1)
		for d, pd := range p {
			np[d+1] ^= pd
			np[d] ^= f.Mul(pd, root)
		}
		p = np
	}
	var bits uint64
	for d, pd := range p {
		switch pd {
		case 0:
		case 1:
			bits |= 1 << uint(d)
		default:
			panic("ecc: minimal polynomial has non-binary coefficient")
		}
	}
	return bits
}

// gf2PolyMul multiplies two GF(2) polynomials in bit representation.
func gf2PolyMul(a, b uint64) uint64 {
	var out uint64
	for b != 0 {
		if b&1 != 0 {
			out ^= a
		}
		a <<= 1
		b >>= 1
	}
	return out
}

// gf2PolyMod reduces a modulo m over GF(2); both in bit representation.
func gf2PolyMod(a, m uint64) uint64 {
	dm := bitLen(m)
	for {
		da := bitLen(a)
		if da < dm {
			return a
		}
		a ^= m << uint(da-dm)
	}
}

func bitLen(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}
