package ecc

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randomBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.IntN(256))
	}
	return out
}

func TestRSRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 11))
	for _, tt := range []int{1, 4, 8, 16} {
		code := NewRS(tt)
		for _, dl := range []int{1, 32, code.K()} {
			data := randomBytes(rng, dl)
			cw := code.Encode(data)
			if len(cw) != dl+2*tt {
				t.Fatalf("RS(t=%d) len=%d want %d", tt, len(cw), dl+2*tt)
			}
			n, err := code.Decode(cw)
			if err != nil || n != 0 {
				t.Fatalf("RS(t=%d) clean decode: n=%d err=%v", tt, n, err)
			}
			if !bytes.Equal(cw[:dl], data) {
				t.Fatalf("RS(t=%d) data mutated", tt)
			}
		}
	}
}

func TestRSCorrectsUpToT(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 13))
	for _, tt := range []int{2, 8, 16} {
		code := NewRS(tt)
		for trial := 0; trial < 25; trial++ {
			dl := 1 + rng.IntN(code.K())
			data := randomBytes(rng, dl)
			cw := code.Encode(data)
			nErr := 1 + rng.IntN(tt)
			pos := map[int]bool{}
			for len(pos) < nErr {
				pos[rng.IntN(len(cw))] = true
			}
			recv := append([]byte(nil), cw...)
			for i := range pos {
				recv[i] ^= byte(1 + rng.IntN(255))
			}
			n, err := code.Decode(recv)
			if err != nil {
				t.Fatalf("RS(t=%d) failed on %d errors (dl=%d): %v", tt, nErr, dl, err)
			}
			if n != nErr {
				t.Fatalf("RS(t=%d): corrected %d want %d", tt, n, nErr)
			}
			if !bytes.Equal(recv[:dl], data) {
				t.Fatalf("RS(t=%d): data wrong after correction", tt)
			}
		}
	}
}

func TestRSDetectsOverload(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 15))
	code := NewRS(4)
	detected := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		data := randomBytes(rng, 64)
		cw := code.Encode(data)
		recv := append([]byte(nil), cw...)
		pos := map[int]bool{}
		for len(pos) < 4*code.T() {
			pos[rng.IntN(len(recv))] = true
		}
		for i := range pos {
			recv[i] ^= byte(1 + rng.IntN(255))
		}
		if _, err := code.Decode(recv); err != nil {
			detected++
		}
	}
	if detected < trials*9/10 {
		t.Errorf("only %d/%d overload patterns detected", detected, trials)
	}
}

func TestRSPropertyRoundTrip(t *testing.T) {
	code := NewRS(8)
	f := func(seed uint64, lenSel uint16, errSel uint8) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		dl := 1 + int(lenSel)%code.K()
		data := randomBytes(r, dl)
		cw := code.Encode(data)
		nErr := int(errSel) % (code.T() + 1)
		pos := map[int]bool{}
		for len(pos) < nErr {
			pos[r.IntN(len(cw))] = true
		}
		for i := range pos {
			cw[i] ^= byte(1 + r.IntN(255))
		}
		n, err := code.Decode(cw)
		if err != nil || n != nErr {
			return false
		}
		return bytes.Equal(cw[:dl], data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRSInvalidParams(t *testing.T) {
	for _, bad := range []int{0, -1, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRS(%d): want panic", bad)
				}
			}()
			NewRS(bad)
		}()
	}
}
