package ecc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 3; m <= 16; m++ {
		f := NewField(m)
		if f.M() != m {
			t.Errorf("m=%d: M()=%d", m, f.M())
		}
		if f.N() != (1<<m)-1 {
			t.Errorf("m=%d: N()=%d", m, f.N())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unsupported degree accepted")
		}
	}()
	NewField(2)
}

func TestFieldExpLogInverse(t *testing.T) {
	f := NewField(8)
	for x := 1; x <= f.N(); x++ {
		if got := f.Exp(f.Log(x)); got != x {
			t.Fatalf("exp(log(%d)) = %d", x, got)
		}
		if got := f.Mul(x, f.Inv(x)); got != 1 {
			t.Fatalf("%d * inv = %d", x, got)
		}
	}
}

// Regression: Exp used to index exp[i%n] directly, and Go's % keeps the
// dividend's sign, so any negative exponent panicked with an out-of-range
// index. Negative exponents are legitimate (alpha^-i = alpha^(n-i)) and
// appear wherever inverse roots are walked.
func TestFieldExpNegative(t *testing.T) {
	f := NewField(8)
	for _, i := range []int{-1, -7, -f.N(), -f.N() - 3, -10 * f.N()} {
		got := f.Exp(i)
		want := f.Inv(f.Exp(-i))
		if got != want {
			t.Fatalf("Exp(%d) = %d, want inverse of Exp(%d) = %d", i, got, -i, want)
		}
	}
	if got := f.Exp(-f.N()); got != 1 {
		t.Fatalf("Exp(-n) = %d, want 1", got)
	}
}

func TestFieldAxioms(t *testing.T) {
	f := NewField(9)
	rng := rand.New(rand.NewPCG(1, 1))
	pick := func() int { return rng.IntN(f.N() + 1) }
	for i := 0; i < 2000; i++ {
		a, b, c := pick(), pick(), pick()
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatal("multiplication not commutative")
		}
		if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
			t.Fatal("multiplication not associative")
		}
		// Distributivity over XOR (field addition).
		if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
			t.Fatal("multiplication not distributive")
		}
		if b != 0 && f.Mul(f.Div(a, b), b) != a {
			t.Fatal("div/mul inconsistent")
		}
	}
}

func TestFieldPow(t *testing.T) {
	f := NewField(8)
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 should be 1 by convention")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 should be 0")
	}
	for _, a := range []int{1, 2, 7, 133} {
		want := 1
		for e := 0; e < 10; e++ {
			if got := f.Pow(a, e); got != want {
				t.Fatalf("%d^%d = %d, want %d", a, e, got, want)
			}
			want = f.Mul(want, a)
		}
	}
}

func TestFieldZeroGuards(t *testing.T) {
	f := NewField(8)
	for _, fn := range []func(){
		func() { f.Log(0) },
		func() { f.Inv(0) },
		func() { f.Div(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic on zero operand")
				}
			}()
			fn()
		}()
	}
}

func TestPolyEvalMul(t *testing.T) {
	f := NewField(8)
	// p(x) = 3x^2 + x + 5 at x=2, over GF(256): 3*4 ^ 2 ^ 5.
	p := []int{5, 1, 3}
	want := f.Mul(3, f.Mul(2, 2)) ^ 2 ^ 5
	if got := f.PolyEval(p, 2); got != want {
		t.Fatalf("eval = %d, want %d", got, want)
	}
	// (x+1)(x+1) = x^2 + 1 in characteristic 2 (with root 1 doubled).
	sq := f.PolyMul([]int{1, 1}, []int{1, 1})
	if len(sq) != 3 || sq[0] != 1 || sq[1] != 0 || sq[2] != 1 {
		t.Fatalf("(x+1)^2 = %v", sq)
	}
	if f.PolyMul(nil, []int{1}) != nil {
		t.Error("empty polynomial product should be nil")
	}
}

func TestMinimalPolynomialDividesField(t *testing.T) {
	// Every minimal polynomial of alpha^i must divide x^(2^m - 1) - 1,
	// i.e. alpha^i must be a root.
	f := NewField(6)
	for i := 1; i < f.N(); i++ {
		mp := f.minimalPolynomial(i)
		// Evaluate the GF(2) polynomial at alpha^i over GF(2^m).
		v := 0
		for d := 0; d < 64; d++ {
			if mp&(1<<uint(d)) != 0 {
				v ^= f.Pow(f.Exp(i%f.N()), d)
			}
		}
		if v != 0 {
			t.Fatalf("alpha^%d is not a root of its minimal polynomial", i)
		}
	}
}

func TestGF2PolyHelpers(t *testing.T) {
	// (x+1)(x+1) = x^2+1 over GF(2).
	if got := gf2PolyMul(0b11, 0b11); got != 0b101 {
		t.Errorf("gf2PolyMul = %b", got)
	}
	// x^3 mod (x^2+1) = x.
	if got := gf2PolyMod(0b1000, 0b101); got != 0b10 {
		t.Errorf("gf2PolyMod = %b", got)
	}
	if bitLen(0) != 0 || bitLen(1) != 1 || bitLen(0b1000) != 4 {
		t.Error("bitLen wrong")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		bits := BytesToBits(b)
		if len(bits) != len(b)*8 {
			return false
		}
		back := BitsToBytes(bits)
		if len(back) != len(b) {
			return false
		}
		for i := range b {
			if back[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitsToBytesPartial(t *testing.T) {
	// 3 bits 1,0,1 -> one byte 0b1010_0000.
	got := BitsToBytes([]uint8{1, 0, 1})
	if len(got) != 1 || got[0] != 0xA0 {
		t.Fatalf("got %x", got)
	}
}

func TestCountDiffBits(t *testing.T) {
	if CountDiffBits([]uint8{1, 0, 1}, []uint8{1, 1, 0}) != 2 {
		t.Error("wrong distance")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	CountDiffBits([]uint8{1}, []uint8{1, 0})
}

func TestInterleaverRoundTrip(t *testing.T) {
	f := func(depthSel uint8, bits []uint8) bool {
		depth := 1 + int(depthSel)%8
		for i := range bits {
			bits[i] &= 1
		}
		il := NewInterleaver(depth)
		out := il.Deinterleave(il.Interleave(bits))
		if len(out) != len(bits) {
			return false
		}
		for i := range bits {
			if out[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestInterleaverSpreadsBursts(t *testing.T) {
	il := NewInterleaver(4)
	bits := make([]uint8, 32)
	inter := il.Interleave(bits)
	// Corrupt a burst of 4 adjacent interleaved positions.
	for i := 8; i < 12; i++ {
		inter[i] ^= 1
	}
	back := il.Deinterleave(inter)
	// The 4 errors must land in 4 distinct rows (stride = width).
	width := (len(bits) + 3) / 4
	rows := map[int]bool{}
	for i, b := range back {
		if b != 0 {
			rows[i/width] = true
		}
	}
	if len(rows) != 4 {
		t.Fatalf("burst hit %d rows, want 4", len(rows))
	}
}

func TestInterleaverDepthOne(t *testing.T) {
	il := NewInterleaver(1)
	in := []uint8{1, 0, 1, 1}
	out := il.Interleave(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("depth-1 interleave must be identity")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero depth must panic")
		}
	}()
	NewInterleaver(0)
}

func TestHammingRoundTrip(t *testing.T) {
	var h Hamming7264
	f := func(data uint64) bool {
		lo, hi := h.Encode(data)
		got, corrected, err := h.Decode(lo, hi)
		return err == nil && !corrected && got == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHammingCorrectsSingleBit(t *testing.T) {
	var h Hamming7264
	data := uint64(0xDEADBEEFCAFEF00D)
	lo, hi := h.Encode(data)
	for bit := 0; bit < 72; bit++ {
		l, hb := lo, hi
		if bit < 64 {
			l ^= 1 << uint(bit)
		} else {
			hb ^= 1 << uint(bit-64)
		}
		got, corrected, err := h.Decode(l, hb)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if !corrected {
			t.Fatalf("bit %d: correction not reported", bit)
		}
		if got != data {
			t.Fatalf("bit %d: wrong data", bit)
		}
	}
}

func TestHammingDetectsDoubleBit(t *testing.T) {
	var h Hamming7264
	rng := rand.New(rand.NewPCG(3, 3))
	data := uint64(0x0123456789ABCDEF)
	lo, hi := h.Encode(data)
	detected := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		b1 := rng.IntN(72)
		b2 := rng.IntN(72)
		for b2 == b1 {
			b2 = rng.IntN(72)
		}
		l, hb := lo, hi
		for _, b := range []int{b1, b2} {
			if b < 64 {
				l ^= 1 << uint(b)
			} else {
				hb ^= 1 << uint(b-64)
			}
		}
		if _, _, err := h.Decode(l, hb); err == ErrDoubleError {
			detected++
		}
	}
	if detected != trials {
		t.Fatalf("detected %d/%d double errors; SEC-DED must catch all", detected, trials)
	}
}
