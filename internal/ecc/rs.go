package ecc

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed–Solomon code over GF(2^8) with natural length
// 255 symbols. It corrects up to t symbol errors using 2t parity symbols.
// The paper suggests "RAID-like schemes" across pages/blocks to protect
// hidden data from bad blocks (§8 Reliability); RS is the standard
// construction for that, and symbol-oriented correction also handles the
// bursty errors that program interference induces in adjacent cells.
//
// Shortened use (messages shorter than K symbols) is supported directly.
//
// A codec owns reusable decode scratch (syndromes, evaluator, locator work
// polynomials, the erasure system), so Decode, DecodeErasures and EncodeTo
// perform no steady-state allocations. Like a nand.Device, a codec is
// therefore not safe for concurrent use; distinct codecs share nothing.
type RS struct {
	f   *Field
	t   int   // correctable symbol errors
	n   int   // natural codeword length, 255
	k   int   // natural data length, 255 - 2t
	gen []int // generator polynomial, gen[i] = coeff of x^i, monic

	reg    []int // encode LFSR scratch, 2t entries
	synd   []int // syndrome scratch, 2t entries
	omega  []int // error-evaluator scratch, 2t entries
	deriv  []int // formal-derivative scratch
	fixIdx []int // pending correction positions
	fixVal []int // pending correction magnitudes
	bm     bmScratch

	// Erasure-decoding scratch: locator points plus the flat augmented
	// Vandermonde system and its row headers (see DecodeErasures).
	locs []int
	mat  []int
	rows [][]int
}

// ErrRSTooLong is returned/panicked when a message exceeds code capacity.
var ErrRSTooLong = errors.New("ecc: RS message exceeds code capacity")

// NewRS constructs an RS(255, 255-2t) code correcting t symbol errors.
func NewRS(t int) *RS {
	if t < 1 || 2*t >= 255 {
		panic(fmt.Sprintf("ecc: invalid RS t=%d", t))
	}
	f := NewField(8)
	// g(x) = prod_{i=1..2t} (x - alpha^i)
	gen := []int{1}
	for i := 1; i <= 2*t; i++ {
		root := f.Exp(i)
		ng := make([]int, len(gen)+1)
		for d, gd := range gen {
			ng[d+1] ^= gd
			ng[d] ^= f.Mul(gd, root)
		}
		gen = ng
	}
	r := 2 * t
	return &RS{
		f: f, t: t, n: 255, k: 255 - r, gen: gen,
		reg:    make([]int, r),
		synd:   make([]int, r),
		omega:  make([]int, r),
		deriv:  make([]int, r),
		fixIdx: make([]int, 0, t),
		fixVal: make([]int, 0, t),
	}
}

// N returns the natural codeword length in symbols (255).
func (c *RS) N() int { return c.n }

// K returns the natural data length in symbols.
func (c *RS) K() int { return c.k }

// T returns the number of correctable symbol errors.
func (c *RS) T() int { return c.t }

// ParitySymbols returns the number of parity symbols appended by Encode.
func (c *RS) ParitySymbols() int { return 2 * c.t }

// Encode returns data followed by 2t parity symbols. len(data) may be at
// most K() (shortened code). It panics if the message is too long.
func (c *RS) Encode(data []byte) []byte {
	return c.EncodeTo(make([]byte, len(data)+2*c.t), data)
}

// EncodeTo is Encode into a caller-owned buffer: dst must hold at least
// len(data)+ParitySymbols() bytes and may alias data only if they share
// the same start. It returns dst[:len(data)+ParitySymbols()] and performs
// no allocations.
func (c *RS) EncodeTo(dst, data []byte) []byte {
	if len(data) > c.k {
		panic(ErrRSTooLong)
	}
	r := 2 * c.t
	if len(dst) < len(data)+r {
		panic(fmt.Sprintf("ecc: RS EncodeTo dst holds %d bytes, need %d", len(dst), len(data)+r))
	}
	reg := c.reg
	for i := range reg {
		reg[i] = 0
	}
	for _, d := range data {
		fb := int(d) ^ reg[r-1]
		copy(reg[1:], reg[:r-1])
		reg[0] = 0
		if fb != 0 {
			for i := 0; i < r; i++ {
				reg[i] ^= c.f.Mul(fb, c.gen[i])
			}
		}
	}
	out := dst[:len(data)+r]
	copy(out, data)
	for i := 0; i < r; i++ {
		out[len(data)+i] = byte(reg[r-1-i])
	}
	return out
}

// syndromes fills c.synd with the 2t syndromes of recv and reports whether
// any is non-zero. Position i carries codeword exponent e = len(recv)-1-i,
// so for syndrome j the term exponent j*e mod n decreases by j per
// position — an incremental walk with no multiply or modulo in the loop.
func (c *RS) syndromes(recv []byte) bool {
	nonzero := false
	e0 := len(recv) - 1
	f := c.f
	for j := 1; j <= 2*c.t; j++ {
		p := (j * e0) % c.n
		v := 0
		for _, sym := range recv {
			if sym != 0 {
				// Mul(sym, alpha^p) via one doubled-exp lookup.
				v ^= int(f.exp[int(f.log[sym])+p])
			}
			p -= j
			if p < 0 {
				p += c.n
			}
		}
		c.synd[j-1] = v
		if v != 0 {
			nonzero = true
		}
	}
	return nonzero
}

// Decode corrects up to T() symbol errors in recv in place and returns the
// number of corrected symbols, or ErrUncorrectable.
func (c *RS) Decode(recv []byte) (int, error) {
	r := 2 * c.t
	if len(recv) < r {
		return 0, fmt.Errorf("ecc: RS received word too short: %d < %d parity symbols", len(recv), r)
	}
	if !c.syndromes(recv) {
		return 0, nil
	}

	lambda, errCount := berlekampMassey(c.f, c.synd, &c.bm)
	if lambda == nil || errCount > c.t {
		return 0, ErrUncorrectable
	}

	// Error evaluator Omega(x) = [S(x) * Lambda(x)] mod x^2t, into scratch.
	omega := c.omega[:r]
	for i := range omega {
		omega[i] = 0
	}
	for a, sa := range c.synd {
		if sa == 0 {
			continue
		}
		for b, lb := range lambda {
			if i := a + b; i < r && lb != 0 {
				omega[i] ^= c.f.Mul(sa, lb)
			}
		}
	}

	// Formal derivative of Lambda over characteristic 2: odd-degree terms
	// drop a degree, even-degree terms vanish.
	deriv := c.deriv[:len(lambda)-1]
	for i := range deriv {
		deriv[i] = 0
	}
	for i := 1; i < len(lambda); i += 2 {
		deriv[i-1] = lambda[i]
	}
	if len(deriv) == 0 {
		deriv = c.deriv[:1]
		deriv[0] = 0
	}

	// Chien search + Forney on real positions; the candidate root
	// exponent walks the circle one step per position.
	e0 := len(recv) - 1
	u := (c.n - e0%c.n) % c.n
	fixIdx := c.fixIdx[:0]
	fixVal := c.fixVal[:0]
	for i := range recv {
		xInv := int(c.f.exp[u]) // alpha^{-e}
		u++
		if u == c.n {
			u = 0
		}
		if c.f.PolyEval(lambda, xInv) != 0 {
			continue
		}
		// Forney with S(x) = sum_j S_{j+1} x^j and narrow-sense roots
		// (b=1): Y_k = Omega(X_k^{-1}) / Lambda'(X_k^{-1}) — in
		// characteristic 2 the minus sign vanishes and no extra X_k
		// factor appears.
		num := c.f.PolyEval(omega, xInv)
		den := c.f.PolyEval(deriv, xInv)
		if den == 0 {
			return 0, ErrUncorrectable
		}
		fixIdx = append(fixIdx, i)
		fixVal = append(fixVal, c.f.Div(num, den))
	}
	c.fixIdx, c.fixVal = fixIdx, fixVal
	if len(fixIdx) != errCount {
		return 0, ErrUncorrectable
	}
	for i, idx := range fixIdx {
		recv[idx] ^= byte(fixVal[i])
	}
	// Verify; roll back on residual syndromes so recv is left as received.
	if c.syndromes(recv) {
		for i, idx := range fixIdx {
			recv[idx] ^= byte(fixVal[i])
		}
		return 0, ErrUncorrectable
	}
	return len(fixIdx), nil
}
