package ecc

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed–Solomon code over GF(2^8) with natural length
// 255 symbols. It corrects up to t symbol errors using 2t parity symbols.
// The paper suggests "RAID-like schemes" across pages/blocks to protect
// hidden data from bad blocks (§8 Reliability); RS is the standard
// construction for that, and symbol-oriented correction also handles the
// bursty errors that program interference induces in adjacent cells.
//
// Shortened use (messages shorter than K symbols) is supported directly.
type RS struct {
	f   *Field
	t   int   // correctable symbol errors
	n   int   // natural codeword length, 255
	k   int   // natural data length, 255 - 2t
	gen []int // generator polynomial, gen[i] = coeff of x^i, monic
}

// ErrRSTooLong is returned/panicked when a message exceeds code capacity.
var ErrRSTooLong = errors.New("ecc: RS message exceeds code capacity")

// NewRS constructs an RS(255, 255-2t) code correcting t symbol errors.
func NewRS(t int) *RS {
	if t < 1 || 2*t >= 255 {
		panic(fmt.Sprintf("ecc: invalid RS t=%d", t))
	}
	f := NewField(8)
	// g(x) = prod_{i=1..2t} (x - alpha^i)
	gen := []int{1}
	for i := 1; i <= 2*t; i++ {
		root := f.Exp(i)
		ng := make([]int, len(gen)+1)
		for d, gd := range gen {
			ng[d+1] ^= gd
			ng[d] ^= f.Mul(gd, root)
		}
		gen = ng
	}
	return &RS{f: f, t: t, n: 255, k: 255 - 2*t, gen: gen}
}

// N returns the natural codeword length in symbols (255).
func (c *RS) N() int { return c.n }

// K returns the natural data length in symbols.
func (c *RS) K() int { return c.k }

// T returns the number of correctable symbol errors.
func (c *RS) T() int { return c.t }

// ParitySymbols returns the number of parity symbols appended by Encode.
func (c *RS) ParitySymbols() int { return 2 * c.t }

// Encode returns data followed by 2t parity symbols. len(data) may be at
// most K() (shortened code). It panics if the message is too long.
func (c *RS) Encode(data []byte) []byte {
	if len(data) > c.k {
		panic(ErrRSTooLong)
	}
	r := 2 * c.t
	reg := make([]int, r)
	for _, d := range data {
		fb := int(d) ^ reg[r-1]
		copy(reg[1:], reg[:r-1])
		reg[0] = 0
		if fb != 0 {
			for i := 0; i < r; i++ {
				reg[i] ^= c.f.Mul(fb, c.gen[i])
			}
		}
	}
	out := make([]byte, len(data)+r)
	copy(out, data)
	for i := 0; i < r; i++ {
		out[len(data)+i] = byte(reg[r-1-i])
	}
	return out
}

// Decode corrects up to T() symbol errors in recv in place and returns the
// number of corrected symbols, or ErrUncorrectable.
func (c *RS) Decode(recv []byte) (int, error) {
	r := 2 * c.t
	if len(recv) < r {
		return 0, fmt.Errorf("ecc: RS received word too short: %d < %d parity symbols", len(recv), r)
	}
	s := c.n - len(recv) // shortening amount
	synd := make([]int, r)
	allZero := true
	for j := 1; j <= r; j++ {
		v := 0
		for i, sym := range recv {
			if sym != 0 {
				e := c.n - 1 - s - i
				v ^= c.f.Mul(int(sym), c.f.Exp(j*e%c.f.N()))
			}
		}
		synd[j-1] = v
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		return 0, nil
	}

	lambda, errCount := berlekampMassey(c.f, synd)
	if lambda == nil || errCount > c.t {
		return 0, ErrUncorrectable
	}

	// Error evaluator Omega(x) = [S(x) * Lambda(x)] mod x^2t.
	sPoly := make([]int, r)
	copy(sPoly, synd)
	omega := c.f.PolyMul(sPoly, lambda)
	if len(omega) > r {
		omega = omega[:r]
	}

	// Chien search + Forney on real positions.
	type fix struct {
		idx int
		val int
	}
	var fixes []fix
	for i := range recv {
		e := c.n - 1 - s - i
		xInv := c.f.Exp((c.f.N() - e%c.f.N()) % c.f.N()) // alpha^{-e}
		if c.f.PolyEval(lambda, xInv) != 0 {
			continue
		}
		// Forney with S(x) = sum_j S_{j+1} x^j and narrow-sense roots
		// (b=1): Y_k = Omega(X_k^{-1}) / Lambda'(X_k^{-1}) — in
		// characteristic 2 the minus sign vanishes and no extra X_k
		// factor appears.
		num := c.f.PolyEval(omega, xInv)
		den := c.f.PolyEval(polyFormalDeriv(lambda), xInv)
		if den == 0 {
			return 0, ErrUncorrectable
		}
		fixes = append(fixes, fix{i, c.f.Div(num, den)})
	}
	if len(fixes) != errCount {
		return 0, ErrUncorrectable
	}
	for _, fx := range fixes {
		recv[fx.idx] ^= byte(fx.val)
	}
	// Verify.
	for j := 1; j <= r; j++ {
		v := 0
		for i, sym := range recv {
			if sym != 0 {
				e := c.n - 1 - s - i
				v ^= c.f.Mul(int(sym), c.f.Exp(j*e%c.f.N()))
			}
		}
		if v != 0 {
			// Roll back.
			for _, fx := range fixes {
				recv[fx.idx] ^= byte(fx.val)
			}
			return 0, ErrUncorrectable
		}
	}
	return len(fixes), nil
}

// polyFormalDeriv returns the formal derivative of p over characteristic-2
// fields: odd-degree terms drop a degree, even-degree terms vanish.
func polyFormalDeriv(p []int) []int {
	if len(p) <= 1 {
		return []int{0}
	}
	out := make([]int, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out
}
