package ecc

import (
	"bytes"
	"testing"
)

// Fuzz targets for the two decoders the hidden channel trusts with
// adversarial input: a stolen device hands the BCH/RS decoders arbitrary
// bytes, so they must never panic, over-read, or mutate the received word
// on a failed decode. Seed corpora live in testdata/fuzz; `make fuzz-smoke`
// runs each target briefly in CI, and
//
//	go test ./internal/ecc -fuzz FuzzBCHDecode
//
// explores from the committed seeds.

// FuzzBCHDecode feeds the BCH decoder an arbitrary received bit-word and a
// derived valid-codeword trial. Invariants: no panic at any input length;
// a failed decode leaves the word exactly as received; a codeword with at
// most T flips decodes back to itself.
func FuzzBCHDecode(f *testing.F) {
	code := NewBCH(10, 8)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1}, code.ParityBits()))
	f.Add(bytes.Repeat([]byte{0, 1}, code.N()/2))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary word: any length, any bits.
		recv := make([]uint8, len(data))
		for i, b := range data {
			recv[i] = b & 1
		}
		before := append([]uint8(nil), recv...)
		if _, err := code.Decode(recv); err != nil && !bytes.Equal(recv, before) {
			t.Fatalf("failed decode mutated the received word (len %d)", len(recv))
		}

		// Derived trial: encode data bits, flip up to T positions chosen by
		// the tail of the input, decode, demand the exact codeword back.
		k := code.K()
		if len(data) < 2 {
			return
		}
		msg := make([]uint8, k)
		for i := range msg {
			msg[i] = data[i%len(data)] >> (i % 8) & 1
		}
		cw := code.Encode(msg)
		want := append([]uint8(nil), cw...)
		flips := int(data[0]) % (code.T() + 1)
		for i := 0; i < flips; i++ {
			cw[(int(data[1])*31+i*97)%len(cw)] ^= 1
		}
		n, err := code.Decode(cw)
		if err != nil {
			t.Fatalf("decode failed with %d <= t flips: %v", flips, err)
		}
		if n > flips {
			t.Fatalf("claimed %d corrections for %d flips", n, flips)
		}
		if !bytes.Equal(cw, want) {
			t.Fatalf("decode with %d flips did not restore the codeword", flips)
		}
	})
}

// FuzzRSDecode is the same contract for the public-data Reed-Solomon code.
func FuzzRSDecode(f *testing.F) {
	code := NewRS(4)
	f.Add([]byte{})
	f.Add(make([]byte, code.ParitySymbols()))
	f.Add(bytes.Repeat([]byte{0xA5}, code.N()))
	f.Fuzz(func(t *testing.T, data []byte) {
		recv := append([]byte(nil), data...)
		before := append([]byte(nil), recv...)
		if _, err := code.Decode(recv); err != nil && !bytes.Equal(recv, before) {
			t.Fatalf("failed decode mutated the received word (len %d)", len(recv))
		}

		if len(data) < 2 {
			return
		}
		msg := make([]byte, code.K())
		for i := range msg {
			msg[i] = data[i%len(data)]
		}
		cw := code.Encode(msg)
		want := append([]byte(nil), cw...)
		flips := int(data[0]) % (code.T() + 1)
		for i := 0; i < flips; i++ {
			cw[(int(data[1])*13+i*101)%len(cw)] ^= byte(7 + i)
		}
		n, err := code.Decode(cw)
		if err != nil {
			t.Fatalf("decode failed with %d <= t corrupted symbols: %v", flips, err)
		}
		if n > flips {
			t.Fatalf("claimed %d corrections for %d corruptions", n, flips)
		}
		if !bytes.Equal(cw, want) {
			t.Fatalf("decode with %d corruptions did not restore the codeword", flips)
		}
	})
}
