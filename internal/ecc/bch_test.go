package ecc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBCHParams(t *testing.T) {
	cases := []struct {
		m, t      int
		wantN     int
		maxParity int
	}{
		{5, 1, 31, 5},
		{9, 4, 511, 36},
		{10, 8, 1023, 80},
	}
	for _, c := range cases {
		code := NewBCH(c.m, c.t)
		if code.N() != c.wantN {
			t.Errorf("BCH(m=%d,t=%d): N=%d, want %d", c.m, c.t, code.N(), c.wantN)
		}
		if got := code.ParityBits(); got > c.maxParity {
			t.Errorf("BCH(m=%d,t=%d): parity=%d, want <= %d", c.m, c.t, got, c.maxParity)
		}
		if code.K()+code.ParityBits() != code.N() {
			t.Errorf("BCH(m=%d,t=%d): k+r != n", c.m, c.t)
		}
	}
}

func randomBits(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.IntN(2))
	}
	return out
}

func TestBCHRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, cfg := range []struct{ m, t, dataLen int }{
		{5, 1, 10}, {9, 4, 256}, {9, 8, 300}, {10, 12, 512},
	} {
		code := NewBCH(cfg.m, cfg.t)
		data := randomBits(rng, cfg.dataLen)
		cw := code.Encode(data)
		if len(cw) != cfg.dataLen+code.ParityBits() {
			t.Fatalf("codeword length %d, want %d", len(cw), cfg.dataLen+code.ParityBits())
		}
		n, err := code.Decode(cw)
		if err != nil || n != 0 {
			t.Fatalf("clean decode: corrected=%d err=%v", n, err)
		}
		for i := range data {
			if cw[i] != data[i] {
				t.Fatalf("data corrupted at %d", i)
			}
		}
	}
}

func TestBCHCorrectsUpToT(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, cfg := range []struct{ m, t, dataLen int }{
		{9, 4, 256}, {9, 8, 400}, {10, 16, 800},
	} {
		code := NewBCH(cfg.m, cfg.t)
		for trial := 0; trial < 20; trial++ {
			data := randomBits(rng, cfg.dataLen)
			cw := code.Encode(data)
			nErr := 1 + rng.IntN(cfg.t)
			flipped := map[int]bool{}
			for len(flipped) < nErr {
				flipped[rng.IntN(len(cw))] = true
			}
			recv := append([]uint8(nil), cw...)
			for i := range flipped {
				recv[i] ^= 1
			}
			n, err := code.Decode(recv)
			if err != nil {
				t.Fatalf("BCH(m=%d,t=%d) failed on %d errors: %v", cfg.m, cfg.t, nErr, err)
			}
			if n != nErr {
				t.Fatalf("corrected %d, want %d", n, nErr)
			}
			for i := range data {
				if recv[i] != data[i] {
					t.Fatalf("data bit %d wrong after correction", i)
				}
			}
		}
	}
}

func TestBCHDetectsOverload(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	code := NewBCH(9, 4)
	detected := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		data := randomBits(rng, 256)
		cw := code.Encode(data)
		// Inject far more errors than t.
		recv := append([]uint8(nil), cw...)
		flipped := map[int]bool{}
		for len(flipped) < 4*code.T() {
			flipped[rng.IntN(len(recv))] = true
		}
		for i := range flipped {
			recv[i] ^= 1
		}
		if _, err := code.Decode(recv); err != nil {
			detected++
		}
	}
	// Miscorrection is possible but must be rare.
	if detected < trials*9/10 {
		t.Errorf("only %d/%d overload patterns detected", detected, trials)
	}
}

func TestBCHPropertyRoundTrip(t *testing.T) {
	code := NewBCH(9, 4)
	rng := rand.New(rand.NewPCG(7, 8))
	f := func(seed uint64, lenSel uint16, errSel uint8) bool {
		dataLen := 1 + int(lenSel)%code.K()
		r := rand.New(rand.NewPCG(seed, 99))
		data := randomBits(r, dataLen)
		cw := code.Encode(data)
		nErr := int(errSel) % (code.T() + 1)
		flipped := map[int]bool{}
		for len(flipped) < nErr {
			flipped[rng.IntN(len(cw))] = true
		}
		for i := range flipped {
			cw[i] ^= 1
		}
		n, err := code.Decode(cw)
		if err != nil || n != nErr {
			return false
		}
		for i := range data {
			if cw[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBCHRejectsShortWord(t *testing.T) {
	code := NewBCH(9, 4)
	if _, err := code.Decode(make([]uint8, 3)); err == nil {
		t.Error("want error for word shorter than parity")
	}
}
