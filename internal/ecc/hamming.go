package ecc

import "errors"

// Hamming7264 is the classic extended Hamming SEC-DED code on 64-bit words:
// 64 data bits, 7 Hamming parity bits, 1 overall parity bit. VT-HI uses it
// for the small configuration-metadata records (§9.2 "Metadata Persistence")
// that must survive single bit flips but are too small to justify BCH.
type Hamming7264 struct{}

// ErrDoubleError reports a detected-but-uncorrectable double bit error.
var ErrDoubleError = errors.New("ecc: double bit error detected")

// hammingPositions maps data bit i (0..63) to its position in the 72-bit
// codeword, skipping power-of-two positions (1,2,4,...,64) which hold
// parity. Position 0 holds the overall parity bit. Positions are 1-based
// within the Hamming layout, stored at codeword bit (position) with bit 0
// reserved for overall parity.
var hammingDataPos [64]int

func init() {
	i := 0
	for pos := 1; pos <= 71 && i < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two: parity position
			continue
		}
		hammingDataPos[i] = pos
		i++
	}
	if i != 64 {
		panic("ecc: hamming layout construction failed")
	}
}

// Encode encodes a 64-bit word into a 72-bit codeword packed into a uint64
// pair: the return is (low 64 bits, high 8 bits).
func (Hamming7264) Encode(data uint64) (lo uint64, hi uint8) {
	var cw [72]uint8
	for i := 0; i < 64; i++ {
		cw[hammingDataPos[i]] = uint8(data>>uint(i)) & 1
	}
	// Hamming parity bits at positions 1,2,4,...,64.
	for p := 1; p <= 64; p <<= 1 {
		x := uint8(0)
		for pos := 1; pos < 72; pos++ {
			if pos&p != 0 && pos != p {
				x ^= cw[pos]
			}
		}
		cw[p] = x
	}
	// Overall parity at position 0.
	x := uint8(0)
	for pos := 1; pos < 72; pos++ {
		x ^= cw[pos]
	}
	cw[0] = x
	return packCW(cw)
}

// Decode corrects a single bit error and detects double errors in the
// 72-bit codeword (lo, hi). It returns the decoded data word and whether a
// single-bit correction was applied.
func (Hamming7264) Decode(lo uint64, hi uint8) (data uint64, corrected bool, err error) {
	cw := unpackCW(lo, hi)
	syndrome := 0
	for p := 1; p <= 64; p <<= 1 {
		x := uint8(0)
		for pos := 1; pos < 72; pos++ {
			if pos&p != 0 {
				x ^= cw[pos]
			}
		}
		if x != 0 {
			syndrome |= p
		}
	}
	overall := uint8(0)
	for pos := 0; pos < 72; pos++ {
		overall ^= cw[pos]
	}
	switch {
	case syndrome == 0 && overall == 0:
		// Clean.
	case syndrome != 0 && overall != 0:
		// Single error at position syndrome; correct it.
		if syndrome < 72 {
			cw[syndrome] ^= 1
			corrected = true
		} else {
			return 0, false, ErrDoubleError
		}
	case syndrome == 0 && overall != 0:
		// Error in the overall parity bit itself; data is fine.
		corrected = true
	default: // syndrome != 0, overall == 0
		return 0, false, ErrDoubleError
	}
	for i := 0; i < 64; i++ {
		data |= uint64(cw[hammingDataPos[i]]) << uint(i)
	}
	return data, corrected, nil
}

func packCW(cw [72]uint8) (lo uint64, hi uint8) {
	for i := 0; i < 64; i++ {
		lo |= uint64(cw[i]) << uint(i)
	}
	for i := 64; i < 72; i++ {
		hi |= cw[i] << uint(i-64)
	}
	return lo, hi
}

func unpackCW(lo uint64, hi uint8) [72]uint8 {
	var cw [72]uint8
	for i := 0; i < 64; i++ {
		cw[i] = uint8(lo>>uint(i)) & 1
	}
	for i := 64; i < 72; i++ {
		cw[i] = (hi >> uint(i-64)) & 1
	}
	return cw
}
