package ecc

import (
	"errors"
	"fmt"
)

// BCH is a binary, systematic, t-error-correcting BCH code of natural
// length n = 2^m - 1. Shortened use (fewer than k data bits) is supported
// directly by Encode/Decode: missing leading data bits are treated as
// zeros, which is how NAND controllers fit BCH to page and spare sizes.
//
// Bits are represented one-per-byte (values 0 or 1); hidden payloads are a
// few hundred bits per page, so clarity beats packing here.
type BCH struct {
	f   *Field
	t   int     // design error-correction capability
	n   int     // natural codeword length
	k   int     // natural data length
	gen []uint8 // generator polynomial coefficients, gen[i] = coeff of x^i
}

// ErrUncorrectable is returned when a received word holds more errors than
// the code can correct (or the decoder cannot locate them consistently).
var ErrUncorrectable = errors.New("ecc: uncorrectable error pattern")

// NewBCH constructs a BCH code over GF(2^m) correcting up to t bit errors.
// It panics if the requested code is impossible (parity would exceed the
// codeword) — code parameters are design-time constants.
func NewBCH(m, t int) *BCH {
	f := NewField(m)
	gen := bchGenerator(f, t)
	r := len(gen) - 1 // parity bits
	n := f.N()
	if r >= n {
		panic(fmt.Sprintf("ecc: BCH(m=%d, t=%d) has no data bits", m, t))
	}
	return &BCH{f: f, t: t, n: n, k: n - r, gen: gen}
}

// bchGenerator computes g(x) = lcm of minimal polynomials of alpha^1..alpha^2t.
func bchGenerator(f *Field, t int) []uint8 {
	if t < 1 {
		panic("ecc: BCH t must be >= 1")
	}
	seen := map[uint64]bool{}
	gen := []uint8{1}
	for i := 1; i <= 2*t; i++ {
		mp := f.minimalPolynomial(i)
		if seen[mp] {
			continue
		}
		seen[mp] = true
		gen = gf2SliceMulBits(gen, mp)
	}
	return gen
}

// gf2SliceMulBits multiplies a coefficient-slice GF(2) polynomial by a
// bit-encoded one.
func gf2SliceMulBits(a []uint8, b uint64) []uint8 {
	db := bitLen(b) - 1
	out := make([]uint8, len(a)+db)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j := 0; j <= db; j++ {
			if b&(1<<uint(j)) != 0 {
				out[i+j] ^= 1
			}
		}
	}
	return out
}

// N returns the natural codeword length 2^m - 1.
func (c *BCH) N() int { return c.n }

// K returns the natural number of data bits.
func (c *BCH) K() int { return c.k }

// T returns the number of correctable bit errors.
func (c *BCH) T() int { return c.t }

// ParityBits returns the number of parity bits appended by Encode.
func (c *BCH) ParityBits() int { return c.n - c.k }

// Encode systematically encodes data (one bit per byte, each 0 or 1) and
// returns data followed by ParityBits() parity bits. len(data) may be any
// value up to K() (shortened code). It panics if data is too long or holds
// non-bit values.
func (c *BCH) Encode(data []uint8) []uint8 {
	if len(data) > c.k {
		panic(fmt.Sprintf("ecc: BCH data length %d exceeds k=%d", len(data), c.k))
	}
	r := c.n - c.k
	// LFSR division: feed data bits in, remainder accumulates in reg.
	// reg[i] corresponds to coefficient of x^i.
	reg := make([]uint8, r)
	for _, bit := range data {
		if bit > 1 {
			panic("ecc: BCH data must be 0/1 bits")
		}
		fb := bit ^ reg[r-1]
		copy(reg[1:], reg[:r-1])
		reg[0] = 0
		if fb != 0 {
			for i := 0; i < r; i++ {
				if c.gen[i] != 0 {
					reg[i] ^= fb
				}
			}
		}
	}
	out := make([]uint8, len(data)+r)
	copy(out, data)
	// Parity out in high-to-low coefficient order to match the codeword
	// polynomial layout used by Decode.
	for i := 0; i < r; i++ {
		out[len(data)+i] = reg[r-1-i]
	}
	return out
}

// Decode corrects up to T() bit errors in recv (a word produced by Encode,
// possibly with bit flips) in place, and returns the number of corrected
// bits. It returns ErrUncorrectable if the pattern exceeds the code's
// capability. recv = dataBits || parityBits with the same shortening as at
// encode time.
func (c *BCH) Decode(recv []uint8) (int, error) {
	r := c.n - c.k
	if len(recv) < r {
		return 0, fmt.Errorf("ecc: BCH received word too short: %d < %d parity bits", len(recv), r)
	}
	// Position i in recv corresponds to codeword polynomial exponent
	// n-1-s-i where s is the shortening amount.
	s := c.n - len(recv)
	synd := make([]int, 2*c.t)
	allZero := true
	for j := 1; j <= 2*c.t; j++ {
		v := 0
		for i, bit := range recv {
			if bit != 0 {
				e := c.n - 1 - s - i
				v ^= c.f.Exp(j * e % c.f.N())
			}
		}
		synd[j-1] = v
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		return 0, nil
	}

	lambda, errCount := berlekampMassey(c.f, synd)
	if lambda == nil || errCount > c.t {
		return 0, ErrUncorrectable
	}

	// Chien search over the real (non-shortened) positions.
	corrected := 0
	for i := range recv {
		e := c.n - 1 - s - i
		// Candidate error locator root: x = alpha^{-e}.
		x := c.f.Exp((c.f.N() - e%c.f.N()) % c.f.N())
		if c.f.PolyEval(lambda, x) == 0 {
			recv[i] ^= 1
			corrected++
		}
	}
	if corrected != errCount {
		// Some roots fell in the shortened region or the locator was
		// inconsistent: more errors than t.
		// Roll back our speculative flips to leave recv as received.
		for i := range recv {
			e := c.n - 1 - s - i
			x := c.f.Exp((c.f.N() - e%c.f.N()) % c.f.N())
			if c.f.PolyEval(lambda, x) == 0 {
				recv[i] ^= 1
			}
		}
		return 0, ErrUncorrectable
	}
	// Verify: recompute a couple of syndromes to catch miscorrection. On
	// failure roll the speculative flips back so recv is left as received
	// (the same contract as the Chien-mismatch path above).
	for j := 1; j <= 2*c.t; j++ {
		v := 0
		for i, bit := range recv {
			if bit != 0 {
				e := c.n - 1 - s - i
				v ^= c.f.Exp(j * e % c.f.N())
			}
		}
		if v != 0 {
			for i := range recv {
				e := c.n - 1 - s - i
				x := c.f.Exp((c.f.N() - e%c.f.N()) % c.f.N())
				if c.f.PolyEval(lambda, x) == 0 {
					recv[i] ^= 1
				}
			}
			return 0, ErrUncorrectable
		}
	}
	return corrected, nil
}

// berlekampMassey runs the Berlekamp–Massey algorithm over field f on the
// syndrome sequence and returns the error-locator polynomial (lambda[i] =
// coeff of x^i, lambda[0] = 1) and its degree L. It returns (nil, 0) when
// the locator degree disagrees with the polynomial (detected failure).
func berlekampMassey(f *Field, synd []int) ([]int, int) {
	lambda := []int{1}
	b := []int{1}
	L := 0
	mShift := 1
	bDelta := 1
	for n := 0; n < len(synd); n++ {
		// Discrepancy.
		d := synd[n]
		for i := 1; i <= L && i < len(lambda); i++ {
			d ^= f.Mul(lambda[i], synd[n-i])
		}
		if d == 0 {
			mShift++
			continue
		}
		if 2*L <= n {
			tPoly := append([]int(nil), lambda...)
			lambda = polySubScaledShift(f, lambda, b, f.Div(d, bDelta), mShift)
			L = n + 1 - L
			b = tPoly
			bDelta = d
			mShift = 1
		} else {
			lambda = polySubScaledShift(f, lambda, b, f.Div(d, bDelta), mShift)
			mShift++
		}
	}
	// Trim and validate degree.
	for len(lambda) > 1 && lambda[len(lambda)-1] == 0 {
		lambda = lambda[:len(lambda)-1]
	}
	if len(lambda)-1 != L {
		return nil, 0
	}
	return lambda, L
}

// polySubScaledShift returns a(x) - scale * x^shift * b(x) (characteristic
// 2, so subtraction is XOR).
func polySubScaledShift(f *Field, a, b []int, scale, shift int) []int {
	out := make([]int, max(len(a), len(b)+shift))
	copy(out, a)
	for i, bi := range b {
		if bi != 0 {
			out[i+shift] ^= f.Mul(scale, bi)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
