package ecc

import (
	"errors"
	"fmt"
)

// BCH is a binary, systematic, t-error-correcting BCH code of natural
// length n = 2^m - 1. Shortened use (fewer than k data bits) is supported
// directly by Encode/Decode: missing leading data bits are treated as
// zeros, which is how NAND controllers fit BCH to page and spare sizes.
//
// Bits cross the API one-per-byte (values 0 or 1) because hidden payloads
// are a few hundred bits per page and every caller already works in that
// representation. Internally the hot paths are word-packed: Encode runs
// the LFSR division over a []uint64 remainder register with a 256-entry
// byte-stepping table (the classic CRC construction, generalised to the
// multi-word parity registers real BCH codes need — StandardConfig's
// m=9/t=8 code already has 72 parity bits), and Decode's syndrome and
// Chien loops walk exponents incrementally so the inner loops carry no
// division or modulo at all.
//
// A BCH codec owns reusable scratch (the register, syndromes, and the
// Berlekamp–Massey work polynomials), so Decode and EncodeTo perform no
// steady-state allocations. Like a nand.Device, a codec is therefore not
// safe for concurrent use; distinct codecs share nothing.
type BCH struct {
	f   *Field
	t   int     // design error-correction capability
	n   int     // natural codeword length
	k   int     // natural data length
	gen []uint8 // generator polynomial coefficients, gen[i] = coeff of x^i

	r        int      // parity bits, len(gen)-1
	regWords int      // 64-bit words in the remainder register
	topMask  uint64   // mask keeping the top register word to r bits
	genWords []uint64 // gen[0..r-1] packed, bit i of word i/64
	encTab   []uint64 // byte-step table, 256 entries of regWords words; nil when r < 8

	reg  []uint64 // encode remainder scratch
	synd []int    // decode syndrome scratch, 2t entries
	bm   bmScratch
}

// ErrUncorrectable is returned when a received word holds more errors than
// the code can correct (or the decoder cannot locate them consistently).
var ErrUncorrectable = errors.New("ecc: uncorrectable error pattern")

// NewBCH constructs a BCH code over GF(2^m) correcting up to t bit errors.
// It panics if the requested code is impossible (parity would exceed the
// codeword) — code parameters are design-time constants.
func NewBCH(m, t int) *BCH {
	f := NewField(m)
	gen := bchGenerator(f, t)
	r := len(gen) - 1 // parity bits
	n := f.N()
	if r >= n {
		panic(fmt.Sprintf("ecc: BCH(m=%d, t=%d) has no data bits", m, t))
	}
	c := &BCH{f: f, t: t, n: n, k: n - r, gen: gen, r: r}
	c.regWords = (r + 63) / 64
	if rem := r & 63; rem == 0 {
		c.topMask = ^uint64(0)
	} else {
		c.topMask = (uint64(1) << uint(rem)) - 1
	}
	c.genWords = make([]uint64, c.regWords)
	for i := 0; i < r; i++ {
		if gen[i] != 0 {
			c.genWords[i>>6] |= 1 << uint(i&63)
		}
	}
	c.reg = make([]uint64, c.regWords)
	c.synd = make([]int, 2*t)
	if r >= 8 {
		c.encTab = c.buildEncTab()
	}
	return c
}

// buildEncTab precomputes, for every input byte value, the register delta
// of eight bitwise LFSR steps — the multi-word generalisation of a
// MSB-first CRC table.
func (c *BCH) buildEncTab() []uint64 {
	tab := make([]uint64, 256*c.regWords)
	tmp := make([]uint64, c.regWords)
	for v := 0; v < 256; v++ {
		for i := range tmp {
			tmp[i] = 0
		}
		// Register starts as v placed in the top 8 bits (v's bit k at
		// polynomial position r-8+k), then absorbs 8 zero input bits.
		for k := 0; k < 8; k++ {
			if v&(1<<uint(k)) != 0 {
				pos := c.r - 8 + k
				tmp[pos>>6] |= 1 << uint(pos&63)
			}
		}
		for s := 0; s < 8; s++ {
			c.regStep(tmp, 0)
		}
		copy(tab[v*c.regWords:(v+1)*c.regWords], tmp)
	}
	return tab
}

// regStep advances the packed LFSR register by one input bit.
func (c *BCH) regStep(reg []uint64, bit uint8) {
	top := c.r - 1
	fb := bit ^ (uint8(reg[top>>6]>>uint(top&63)) & 1)
	for w := len(reg) - 1; w > 0; w-- {
		reg[w] = reg[w]<<1 | reg[w-1]>>63
	}
	reg[0] <<= 1
	reg[len(reg)-1] &= c.topMask
	if fb != 0 {
		for w := range reg {
			reg[w] ^= c.genWords[w]
		}
	}
}

// regTopByte extracts the top 8 register bits (positions r-8..r-1).
func (c *BCH) regTopByte(reg []uint64) byte {
	lo := c.r - 8
	w := lo >> 6
	sh := uint(lo & 63)
	v := reg[w] >> sh
	if sh > 56 && w+1 < len(reg) {
		v |= reg[w+1] << (64 - sh)
	}
	return byte(v)
}

// bchGenerator computes g(x) = lcm of minimal polynomials of alpha^1..alpha^2t.
func bchGenerator(f *Field, t int) []uint8 {
	if t < 1 {
		panic("ecc: BCH t must be >= 1")
	}
	seen := map[uint64]bool{}
	gen := []uint8{1}
	for i := 1; i <= 2*t; i++ {
		mp := f.minimalPolynomial(i)
		if seen[mp] {
			continue
		}
		seen[mp] = true
		gen = gf2SliceMulBits(gen, mp)
	}
	return gen
}

// gf2SliceMulBits multiplies a coefficient-slice GF(2) polynomial by a
// bit-encoded one.
func gf2SliceMulBits(a []uint8, b uint64) []uint8 {
	db := bitLen(b) - 1
	out := make([]uint8, len(a)+db)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j := 0; j <= db; j++ {
			if b&(1<<uint(j)) != 0 {
				out[i+j] ^= 1
			}
		}
	}
	return out
}

// N returns the natural codeword length 2^m - 1.
func (c *BCH) N() int { return c.n }

// K returns the natural number of data bits.
func (c *BCH) K() int { return c.k }

// T returns the number of correctable bit errors.
func (c *BCH) T() int { return c.t }

// ParityBits returns the number of parity bits appended by Encode.
func (c *BCH) ParityBits() int { return c.n - c.k }

// Encode systematically encodes data (one bit per byte, each 0 or 1) and
// returns data followed by ParityBits() parity bits. len(data) may be any
// value up to K() (shortened code). It panics if data is too long or holds
// non-bit values.
func (c *BCH) Encode(data []uint8) []uint8 {
	return c.EncodeTo(make([]uint8, len(data)+c.r), data)
}

// EncodeTo is Encode into a caller-owned buffer: dst must hold at least
// len(data)+ParityBits() entries and must not alias data. It returns
// dst[:len(data)+ParityBits()] and performs no allocations.
func (c *BCH) EncodeTo(dst, data []uint8) []uint8 {
	if len(data) > c.k {
		panic(fmt.Sprintf("ecc: BCH data length %d exceeds k=%d", len(data), c.k))
	}
	if len(dst) < len(data)+c.r {
		panic(fmt.Sprintf("ecc: BCH EncodeTo dst holds %d entries, need %d", len(dst), len(data)+c.r))
	}
	reg := c.reg
	for i := range reg {
		reg[i] = 0
	}
	i := 0
	if c.encTab != nil {
		// Byte-at-a-time LFSR: fold 8 data bits per table lookup.
		for ; i+8 <= len(data); i += 8 {
			var bb byte
			for k := 0; k < 8; k++ {
				bit := data[i+k]
				if bit > 1 {
					panic("ecc: BCH data must be 0/1 bits")
				}
				bb = bb<<1 | bit
			}
			top := int(c.regTopByte(reg) ^ bb)
			for w := len(reg) - 1; w > 0; w-- {
				reg[w] = reg[w]<<8 | reg[w-1]>>56
			}
			reg[0] <<= 8
			reg[len(reg)-1] &= c.topMask
			ent := c.encTab[top*c.regWords : (top+1)*c.regWords]
			for w := range reg {
				reg[w] ^= ent[w]
			}
		}
	}
	for ; i < len(data); i++ {
		bit := data[i]
		if bit > 1 {
			panic("ecc: BCH data must be 0/1 bits")
		}
		c.regStep(reg, bit)
	}
	out := dst[:len(data)+c.r]
	copy(out, data)
	// Parity out in high-to-low coefficient order to match the codeword
	// polynomial layout used by Decode.
	for p := 0; p < c.r; p++ {
		b := c.r - 1 - p
		out[len(data)+p] = uint8(reg[b>>6]>>uint(b&63)) & 1
	}
	return out
}

// Decode corrects up to T() bit errors in recv (a word produced by Encode,
// possibly with bit flips) in place, and returns the number of corrected
// bits. It returns ErrUncorrectable if the pattern exceeds the code's
// capability. recv = dataBits || parityBits with the same shortening as at
// encode time.
func (c *BCH) Decode(recv []uint8) (int, error) {
	if len(recv) < c.r {
		return 0, fmt.Errorf("ecc: BCH received word too short: %d < %d parity bits", len(recv), c.r)
	}
	if !c.syndromes(recv, c.synd) {
		return 0, nil
	}

	lambda, errCount := berlekampMassey(c.f, c.synd, &c.bm)
	if lambda == nil || errCount > c.t {
		return 0, ErrUncorrectable
	}

	// Chien search over the real (non-shortened) positions. Position i
	// corresponds to codeword exponent e = len(recv)-1-i; the candidate
	// locator root alpha^{-e} walks the exponent circle one step per
	// position, so no modulo appears in the loop.
	corrected := c.chienFlip(recv, lambda)
	if corrected != errCount {
		// Some roots fell in the shortened region or the locator was
		// inconsistent: more errors than t.
		// Roll back our speculative flips to leave recv as received.
		c.chienFlip(recv, lambda)
		return 0, ErrUncorrectable
	}
	// Verify: recompute the syndromes to catch miscorrection. On failure
	// roll the speculative flips back so recv is left as received (the
	// same contract as the Chien-mismatch path above).
	if c.syndromes(recv, c.synd) {
		c.chienFlip(recv, lambda)
		return 0, ErrUncorrectable
	}
	return corrected, nil
}

// syndromes fills synd with the 2t syndromes of recv and reports whether
// any is non-zero. Position i carries codeword exponent e = len(recv)-1-i
// (shortening folds into the leading zeros), so for syndrome j the term
// exponent j*e mod n decreases by j per position — one subtraction with
// wraparound instead of a multiply+mod per set bit.
func (c *BCH) syndromes(recv []uint8, synd []int) bool {
	nonzero := false
	e0 := len(recv) - 1
	for j := 1; j <= 2*c.t; j++ {
		p := (j * e0) % c.n
		v := 0
		for _, bit := range recv {
			if bit != 0 {
				v ^= int(c.f.exp[p])
			}
			p -= j
			if p < 0 {
				p += c.n
			}
		}
		synd[j-1] = v
		if v != 0 {
			nonzero = true
		}
	}
	return nonzero
}

// chienFlip flips every position whose locator root matches and returns
// the flip count. Running it twice restores recv exactly, which is how
// Decode rolls back speculative corrections.
func (c *BCH) chienFlip(recv []uint8, lambda []int) int {
	e0 := len(recv) - 1
	u := (c.n - e0%c.n) % c.n // exponent of alpha^{-e} at position 0
	count := 0
	for i := range recv {
		if c.f.PolyEval(lambda, int(c.f.exp[u])) == 0 {
			recv[i] ^= 1
			count++
		}
		u++
		if u == c.n {
			u = 0
		}
	}
	return count
}

// bmScratch holds the three Berlekamp–Massey work polynomials. The
// algorithm rotates the backing arrays among lambda/b/tmp roles, so a
// codec-owned scratch makes repeated decodes allocation-free.
type bmScratch struct {
	lambda, b, tmp []int
}

func (sc *bmScratch) ensure(n int) {
	if cap(sc.lambda) < n {
		sc.lambda = make([]int, n)
		sc.b = make([]int, n)
		sc.tmp = make([]int, n)
	}
}

// berlekampMassey runs the Berlekamp–Massey algorithm over field f on the
// syndrome sequence and returns the error-locator polynomial (lambda[i] =
// coeff of x^i, lambda[0] = 1) and its degree L. It returns (nil, 0) when
// the locator degree disagrees with the polynomial (detected failure).
// The returned slice aliases sc and is valid until the next call with the
// same scratch.
func berlekampMassey(f *Field, synd []int, sc *bmScratch) ([]int, int) {
	sc.ensure(len(synd) + 2)
	la, ba, ta := sc.lambda, sc.b, sc.tmp
	la[0], ba[0] = 1, 1
	ll, lb := 1, 1 // live lengths of la and ba
	L := 0
	mShift := 1
	bDelta := 1
	for n := 0; n < len(synd); n++ {
		// Discrepancy.
		d := synd[n]
		for i := 1; i <= L && i < ll; i++ {
			d ^= f.Mul(la[i], synd[n-i])
		}
		if d == 0 {
			mShift++
			continue
		}
		// ta = la - scale * x^mShift * ba (characteristic 2: XOR).
		scale := f.Div(d, bDelta)
		nl := ll
		if v := lb + mShift; v > nl {
			nl = v
		}
		copy(ta[:ll], la[:ll])
		for i := ll; i < nl; i++ {
			ta[i] = 0
		}
		for i := 0; i < lb; i++ {
			if ba[i] != 0 {
				ta[i+mShift] ^= f.Mul(scale, ba[i])
			}
		}
		if 2*L <= n {
			la, ba, ta = ta, la, ba
			lb = ll
			ll = nl
			L = n + 1 - L
			bDelta = d
			mShift = 1
		} else {
			la, ta = ta, la
			ll = nl
			mShift++
		}
	}
	// Trim and validate degree.
	for ll > 1 && la[ll-1] == 0 {
		ll--
	}
	if ll-1 != L {
		return nil, 0
	}
	return la[:ll], L
}
