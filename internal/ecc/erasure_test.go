package ecc

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestErasureRecoversUpTo2T(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, tt := range []int{1, 2, 4, 8} {
		code := NewRS(tt)
		for trial := 0; trial < 20; trial++ {
			dl := 1 + rng.IntN(code.K())
			data := randomBytes(rng, dl)
			cw := code.Encode(data)
			nErase := 1 + rng.IntN(2*tt)
			pos := map[int]bool{}
			for len(pos) < nErase {
				pos[rng.IntN(len(cw))] = true
			}
			recv := append([]byte(nil), cw...)
			var erasures []int
			for p := range pos {
				recv[p] = byte(rng.IntN(256)) // garbage; decoder zeroes it
				erasures = append(erasures, p)
			}
			if err := code.DecodeErasures(recv, erasures); err != nil {
				t.Fatalf("RS(t=%d), %d erasures: %v", tt, nErase, err)
			}
			if !bytes.Equal(recv, cw) {
				t.Fatalf("RS(t=%d): codeword not restored", tt)
			}
		}
	}
}

func TestErasureBeyondCapacityRejected(t *testing.T) {
	code := NewRS(2)
	cw := code.Encode(make([]byte, 10))
	var erasures []int
	for i := 0; i < 5; i++ { // 5 > 2t = 4
		erasures = append(erasures, i)
	}
	if err := code.DecodeErasures(cw, erasures); err == nil {
		t.Fatal("over-capacity erasure set accepted")
	}
}

func TestErasureValidation(t *testing.T) {
	code := NewRS(2)
	cw := code.Encode(make([]byte, 10))
	if err := code.DecodeErasures(cw, []int{-1}); err == nil {
		t.Error("negative position accepted")
	}
	if err := code.DecodeErasures(cw, []int{len(cw)}); err == nil {
		t.Error("out-of-range position accepted")
	}
	if err := code.DecodeErasures(cw, []int{1, 1}); err == nil {
		t.Error("duplicate position accepted")
	}
	if err := code.DecodeErasures(make([]byte, 2), []int{0}); err == nil {
		t.Error("short word accepted")
	}
	if err := code.DecodeErasures(cw, nil); err != nil {
		t.Errorf("empty erasure set should be a no-op: %v", err)
	}
}

func TestErasureDetectsResidualErrors(t *testing.T) {
	// An unknown-position error alongside erasures must fail the final
	// syndrome verification (this decoder is erasure-only).
	code := NewRS(2)
	rng := rand.New(rand.NewPCG(2, 2))
	data := randomBytes(rng, 40)
	cw := code.Encode(data)
	recv := append([]byte(nil), cw...)
	recv[0] = 0      // erasure
	recv[20] ^= 0x5A // hidden error
	if err := code.DecodeErasures(recv, []int{0}); err == nil {
		t.Fatal("residual unknown error not detected")
	}
}

func TestErasureProperty(t *testing.T) {
	code := NewRS(4)
	f := func(seed uint64, lenSel uint16, nSel uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		dl := 1 + int(lenSel)%code.K()
		data := randomBytes(rng, dl)
		cw := code.Encode(data)
		n := int(nSel) % (2*code.T() + 1)
		pos := map[int]bool{}
		for len(pos) < n {
			pos[rng.IntN(len(cw))] = true
		}
		recv := append([]byte(nil), cw...)
		var erasures []int
		for p := range pos {
			recv[p] ^= byte(1 + rng.IntN(255))
			erasures = append(erasures, p)
		}
		if err := code.DecodeErasures(recv, erasures); err != nil {
			return false
		}
		return bytes.Equal(recv, cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
