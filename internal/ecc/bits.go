package ecc

// Bit-level helpers shared by the codes and their callers. Hidden payloads
// move between byte buffers (what users hand the API) and bit slices (what
// the per-cell encoder programs), so these conversions are on the hot path
// of every hide/reveal operation.

// BytesToBits expands b into one bit per output byte, MSB first within each
// input byte.
func BytesToBits(b []byte) []uint8 {
	out := make([]uint8, len(b)*8)
	for i, x := range b {
		for j := 0; j < 8; j++ {
			out[i*8+j] = (x >> uint(7-j)) & 1
		}
	}
	return out
}

// BitsToBytes packs bits (one per byte, MSB first) into bytes. Trailing
// bits that do not fill a byte are packed into the final byte's high bits.
func BitsToBytes(bits []uint8) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// CountDiffBits returns the Hamming distance between equal-length bit
// slices; it is the raw-BER numerator used throughout the experiments. It
// panics on length mismatch (always a harness bug).
func CountDiffBits(a, b []uint8) int {
	if len(a) != len(b) {
		panic("ecc: CountDiffBits length mismatch")
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// Interleaver performs block interleaving of bit slices: bits are written
// row-wise into a depth×width matrix and read column-wise. A burst of up
// to `depth` adjacent bit errors (e.g. from program interference hitting
// neighbouring cells) lands in distinct codewords after deinterleaving.
type Interleaver struct {
	depth int
}

// NewInterleaver creates an interleaver with the given depth (>= 1).
func NewInterleaver(depth int) *Interleaver {
	if depth < 1 {
		panic("ecc: interleaver depth must be >= 1")
	}
	return &Interleaver{depth: depth}
}

// Interleave reorders bits; the result has the same length.
func (il *Interleaver) Interleave(bits []uint8) []uint8 {
	if il.depth == 1 || len(bits) == 0 {
		return append([]uint8(nil), bits...)
	}
	n := len(bits)
	width := (n + il.depth - 1) / il.depth
	out := make([]uint8, 0, n)
	for c := 0; c < width; c++ {
		for r := 0; r < il.depth; r++ {
			i := r*width + c
			if i < n {
				out = append(out, bits[i])
			}
		}
	}
	return out
}

// Deinterleave inverts Interleave.
func (il *Interleaver) Deinterleave(bits []uint8) []uint8 {
	if il.depth == 1 || len(bits) == 0 {
		return append([]uint8(nil), bits...)
	}
	n := len(bits)
	width := (n + il.depth - 1) / il.depth
	out := make([]uint8, n)
	j := 0
	for c := 0; c < width; c++ {
		for r := 0; r < il.depth; r++ {
			i := r*width + c
			if i < n {
				out[i] = bits[j]
				j++
			}
		}
	}
	return out
}
