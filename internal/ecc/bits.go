package ecc

// Bit-level helpers shared by the codes and their callers. Hidden payloads
// move between byte buffers (what users hand the API) and bit slices (what
// the per-cell encoder programs), so these conversions are on the hot path
// of every hide/reveal operation.

// BytesToBits expands b into one bit per output byte, MSB first within each
// input byte.
func BytesToBits(b []byte) []uint8 {
	return BytesToBitsInto(make([]uint8, len(b)*8), b)
}

// BytesToBitsInto is BytesToBits into a caller-owned buffer: dst must hold
// at least len(b)*8 entries. It returns dst[:len(b)*8] and performs no
// allocations.
func BytesToBitsInto(dst []uint8, b []byte) []uint8 {
	if len(dst) < len(b)*8 {
		panic("ecc: BytesToBitsInto dst too short")
	}
	out := dst[:len(b)*8]
	for i, x := range b {
		out[i*8+0] = (x >> 7) & 1
		out[i*8+1] = (x >> 6) & 1
		out[i*8+2] = (x >> 5) & 1
		out[i*8+3] = (x >> 4) & 1
		out[i*8+4] = (x >> 3) & 1
		out[i*8+5] = (x >> 2) & 1
		out[i*8+6] = (x >> 1) & 1
		out[i*8+7] = x & 1
	}
	return out
}

// BitsToBytes packs bits (one per byte, MSB first) into bytes. Trailing
// bits that do not fill a byte are packed into the final byte's high bits.
func BitsToBytes(bits []uint8) []byte {
	return BitsToBytesInto(make([]byte, (len(bits)+7)/8), bits)
}

// BitsToBytesInto is BitsToBytes into a caller-owned buffer: dst must hold
// at least (len(bits)+7)/8 bytes, which are overwritten in full. It
// returns the packed prefix of dst and performs no allocations.
func BitsToBytesInto(dst []byte, bits []uint8) []byte {
	n := (len(bits) + 7) / 8
	if len(dst) < n {
		panic("ecc: BitsToBytesInto dst too short")
	}
	out := dst[:n]
	for i := range out {
		out[i] = 0
	}
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// CountDiffBits returns the Hamming distance between equal-length bit
// slices; it is the raw-BER numerator used throughout the experiments. It
// panics on length mismatch (always a harness bug).
func CountDiffBits(a, b []uint8) int {
	if len(a) != len(b) {
		panic("ecc: CountDiffBits length mismatch")
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// Interleaver performs block interleaving of bit slices: bits are written
// row-wise into a depth×width matrix and read column-wise. A burst of up
// to `depth` adjacent bit errors (e.g. from program interference hitting
// neighbouring cells) lands in distinct codewords after deinterleaving.
type Interleaver struct {
	depth int
}

// NewInterleaver creates an interleaver with the given depth (>= 1).
func NewInterleaver(depth int) *Interleaver {
	if depth < 1 {
		panic("ecc: interleaver depth must be >= 1")
	}
	return &Interleaver{depth: depth}
}

// Interleave reorders bits; the result has the same length.
func (il *Interleaver) Interleave(bits []uint8) []uint8 {
	return il.InterleaveTo(make([]uint8, len(bits)), bits)
}

// InterleaveTo is Interleave into a caller-owned buffer: dst must hold at
// least len(bits) entries and must not alias bits. It returns
// dst[:len(bits)] and performs no allocations.
func (il *Interleaver) InterleaveTo(dst, bits []uint8) []uint8 {
	if len(dst) < len(bits) {
		panic("ecc: InterleaveTo dst too short")
	}
	out := dst[:len(bits)]
	if il.depth == 1 || len(bits) == 0 {
		copy(out, bits)
		return out
	}
	n := len(bits)
	width := (n + il.depth - 1) / il.depth
	j := 0
	for c := 0; c < width; c++ {
		for r := 0; r < il.depth; r++ {
			i := r*width + c
			if i < n {
				out[j] = bits[i]
				j++
			}
		}
	}
	return out
}

// Deinterleave inverts Interleave.
func (il *Interleaver) Deinterleave(bits []uint8) []uint8 {
	return il.DeinterleaveTo(make([]uint8, len(bits)), bits)
}

// DeinterleaveTo is Deinterleave into a caller-owned buffer with the same
// contract as InterleaveTo.
func (il *Interleaver) DeinterleaveTo(dst, bits []uint8) []uint8 {
	if len(dst) < len(bits) {
		panic("ecc: DeinterleaveTo dst too short")
	}
	out := dst[:len(bits)]
	if il.depth == 1 || len(bits) == 0 {
		copy(out, bits)
		return out
	}
	n := len(bits)
	width := (n + il.depth - 1) / il.depth
	j := 0
	for c := 0; c < width; c++ {
		for r := 0; r < il.depth; r++ {
			i := r*width + c
			if i < n {
				out[i] = bits[j]
				j++
			}
		}
	}
	return out
}
