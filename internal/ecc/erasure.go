package ecc

import "fmt"

// DecodeErasures corrects symbols at KNOWN positions (erasures) in recv in
// place. With 2t parity symbols the code recovers up to 2t erasures —
// twice its unknown-position error capability — because the error
// locations need not be solved for: the syndrome equations become a
// linear system in the magnitudes alone.
//
// This is the decoding mode behind VT-HI's RAID-like cross-page
// protection (§8 Reliability): a page whose hidden shard failed its own
// BCH is a known-bad position in the stripe.
func (c *RS) DecodeErasures(recv []byte, erasures []int) error {
	r := 2 * c.t
	if len(recv) < r {
		return fmt.Errorf("ecc: RS received word too short: %d < %d parity symbols", len(recv), r)
	}
	if len(erasures) == 0 {
		return nil
	}
	if len(erasures) > r {
		return fmt.Errorf("ecc: %d erasures exceed %d parity symbols", len(erasures), r)
	}
	s := c.n - len(recv)
	seen := map[int]bool{}
	for _, pos := range erasures {
		if pos < 0 || pos >= len(recv) {
			return fmt.Errorf("ecc: erasure position %d out of range", pos)
		}
		if seen[pos] {
			return fmt.Errorf("ecc: duplicate erasure position %d", pos)
		}
		seen[pos] = true
		// Zero the erased symbol so it contributes nothing; the solved
		// magnitude then replaces it outright.
		recv[pos] = 0
	}

	// Syndromes of the zeroed word.
	synd := make([]int, r)
	for j := 1; j <= r; j++ {
		v := 0
		for i, sym := range recv {
			if sym != 0 {
				e := c.n - 1 - s - i
				v ^= c.f.Mul(int(sym), c.f.Exp(j*e%c.f.N()))
			}
		}
		synd[j-1] = v
	}

	// Solve sum_i Y_i * X_i^j = S_j for the magnitudes Y_i, where
	// X_i = alpha^(position exponent). Vandermonde system, Gaussian
	// elimination over GF(256).
	e := len(erasures)
	locs := make([]int, e)
	for i, pos := range erasures {
		locs[i] = c.f.Exp((c.n - 1 - s - pos) % c.f.N())
	}
	// Build augmented matrix: e equations suffice (take the first e
	// syndromes); using more would over-determine consistently, but e
	// keeps elimination minimal.
	mat := make([][]int, e)
	for j := 0; j < e; j++ {
		row := make([]int, e+1)
		for i := 0; i < e; i++ {
			row[i] = c.f.Pow(locs[i], j+1)
		}
		row[e] = synd[j]
		mat[j] = row
	}
	mags, err := c.solve(mat, e)
	if err != nil {
		return err
	}
	for i, pos := range erasures {
		recv[pos] = byte(mags[i])
	}
	// Verify against the full syndrome set.
	for j := 1; j <= r; j++ {
		v := 0
		for i, sym := range recv {
			if sym != 0 {
				ex := c.n - 1 - s - i
				v ^= c.f.Mul(int(sym), c.f.Exp(j*ex%c.f.N()))
			}
		}
		if v != 0 {
			return ErrUncorrectable
		}
	}
	return nil
}

// solve runs Gaussian elimination on an e x (e+1) augmented matrix over
// the field and returns the solution vector.
func (c *RS) solve(mat [][]int, e int) ([]int, error) {
	for col := 0; col < e; col++ {
		// Find a pivot.
		pivot := -1
		for row := col; row < e; row++ {
			if mat[row][col] != 0 {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return nil, ErrUncorrectable
		}
		mat[col], mat[pivot] = mat[pivot], mat[col]
		inv := c.f.Inv(mat[col][col])
		for k := col; k <= e; k++ {
			mat[col][k] = c.f.Mul(mat[col][k], inv)
		}
		for row := 0; row < e; row++ {
			if row == col || mat[row][col] == 0 {
				continue
			}
			factor := mat[row][col]
			for k := col; k <= e; k++ {
				mat[row][k] ^= c.f.Mul(factor, mat[col][k])
			}
		}
	}
	out := make([]int, e)
	for i := 0; i < e; i++ {
		out[i] = mat[i][e]
	}
	return out, nil
}
