package ecc

import "fmt"

// DecodeErasures corrects symbols at KNOWN positions (erasures) in recv in
// place. With 2t parity symbols the code recovers up to 2t erasures —
// twice its unknown-position error capability — because the error
// locations need not be solved for: the syndrome equations become a
// linear system in the magnitudes alone.
//
// This is the decoding mode behind VT-HI's RAID-like cross-page
// protection (§8 Reliability): a page whose hidden shard failed its own
// BCH is a known-bad position in the stripe.
func (c *RS) DecodeErasures(recv []byte, erasures []int) error {
	r := 2 * c.t
	if len(recv) < r {
		return fmt.Errorf("ecc: RS received word too short: %d < %d parity symbols", len(recv), r)
	}
	if len(erasures) == 0 {
		return nil
	}
	if len(erasures) > r {
		return fmt.Errorf("ecc: %d erasures exceed %d parity symbols", len(erasures), r)
	}
	for i, pos := range erasures {
		if pos < 0 || pos >= len(recv) {
			return fmt.Errorf("ecc: erasure position %d out of range", pos)
		}
		// Erasure lists are at most 2t long, so a quadratic scan beats a
		// map both in time and in allocations.
		for _, prev := range erasures[:i] {
			if prev == pos {
				return fmt.Errorf("ecc: duplicate erasure position %d", pos)
			}
		}
		// Zero the erased symbol so it contributes nothing; the solved
		// magnitude then replaces it outright.
		recv[pos] = 0
	}

	// Syndromes of the zeroed word (into the codec's syndrome scratch).
	c.syndromes(recv)

	// Solve sum_i Y_i * X_i^j = S_j for the magnitudes Y_i, where
	// X_i = alpha^(position exponent). Vandermonde system, Gaussian
	// elimination over GF(256). The system lives in codec scratch: one
	// flat backing array plus row headers so pivoting swaps headers only.
	e := len(erasures)
	stride := e + 1
	if cap(c.locs) < e {
		c.locs = make([]int, r)
		c.mat = make([]int, r*(r+1))
		c.rows = make([][]int, r)
	}
	locs := c.locs[:e]
	e0 := len(recv) - 1
	for i, pos := range erasures {
		locs[i] = c.f.Exp(e0 - pos)
	}
	// e equations suffice (take the first e syndromes); using more would
	// over-determine consistently, but e keeps elimination minimal. Row j
	// holds X_i^(j+1), built incrementally from row j-1.
	rows := c.rows[:e]
	for j := 0; j < e; j++ {
		rows[j] = c.mat[j*stride : (j+1)*stride]
	}
	for i := 0; i < e; i++ {
		rows[0][i] = locs[i]
	}
	for j := 1; j < e; j++ {
		for i := 0; i < e; i++ {
			rows[j][i] = c.f.Mul(rows[j-1][i], locs[i])
		}
	}
	for j := 0; j < e; j++ {
		rows[j][e] = c.synd[j]
	}
	if err := c.solve(rows, e); err != nil {
		return err
	}
	for i, pos := range erasures {
		recv[pos] = byte(rows[i][e])
	}
	// Verify against the full syndrome set.
	if c.syndromes(recv) {
		return ErrUncorrectable
	}
	return nil
}

// solve runs Gaussian elimination on an e x (e+1) augmented matrix over
// the field, leaving the solution vector in rows[i][e].
func (c *RS) solve(rows [][]int, e int) error {
	for col := 0; col < e; col++ {
		// Find a pivot.
		pivot := -1
		for row := col; row < e; row++ {
			if rows[row][col] != 0 {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return ErrUncorrectable
		}
		rows[col], rows[pivot] = rows[pivot], rows[col]
		inv := c.f.Inv(rows[col][col])
		for k := col; k <= e; k++ {
			rows[col][k] = c.f.Mul(rows[col][k], inv)
		}
		for row := 0; row < e; row++ {
			if row == col || rows[row][col] == 0 {
				continue
			}
			factor := rows[row][col]
			for k := col; k <= e; k++ {
				rows[row][k] ^= c.f.Mul(factor, rows[col][k])
			}
		}
	}
	return nil
}
