package obs

import (
	"sync"
	"testing"

	"stashflash/internal/onfi"
)

// TestTraceRingWraparound fills a small ring far past its capacity and
// checks that exactly the last N cycles survive, oldest first, with the
// total recorded count still accounting for the dropped ones.
func TestTraceRingWraparound(t *testing.T) {
	const cap, total = 8, 20
	r := NewTraceRing(cap)
	for i := 0; i < total; i++ {
		r.RecordCycle(onfi.Cycle{Kind: onfi.CycleDataIn, N: i})
	}
	if got := r.Recorded(); got != total {
		t.Errorf("Recorded() = %d, want %d", got, total)
	}
	cycles := r.Cycles()
	if len(cycles) != cap {
		t.Fatalf("retained %d cycles, want %d", len(cycles), cap)
	}
	for i, cy := range cycles {
		if want := total - cap + i; cy.N != want {
			t.Errorf("cycle %d: N = %d, want %d (oldest-first order)", i, cy.N, want)
		}
	}
}

// TestTraceRingPartialFill checks the pre-wrap path: fewer cycles than
// capacity come back verbatim.
func TestTraceRingPartialFill(t *testing.T) {
	r := NewTraceRing(8)
	for i := 0; i < 3; i++ {
		r.RecordCycle(onfi.Cycle{Kind: onfi.CycleCmd, Op: byte(i)})
	}
	cycles := r.Cycles()
	if len(cycles) != 3 {
		t.Fatalf("retained %d cycles, want 3", len(cycles))
	}
	for i, cy := range cycles {
		if cy.Op != byte(i) {
			t.Errorf("cycle %d: op = %d, want %d", i, cy.Op, i)
		}
	}
}

// TestTraceRingConcurrent hammers the ring from several writers while a
// reader snapshots mid-flight; run under -race. Every snapshot must be
// internally consistent (bounded length, within recorded totals).
func TestTraceRingConcurrent(t *testing.T) {
	const writers, each = 4, 1000
	r := NewTraceRing(32)
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			cycles := r.Cycles()
			if len(cycles) > 32 {
				t.Errorf("snapshot retained %d cycles, cap 32", len(cycles))
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.RecordCycle(onfi.Cycle{Kind: onfi.CycleDataOut, Col: w, N: i})
			}
		}(w)
	}
	wg.Wait()
	close(done)
	if got := r.Recorded(); got != writers*each {
		t.Errorf("Recorded() = %d, want %d", got, writers*each)
	}
	if got := len(r.Cycles()); got != 32 {
		t.Errorf("retained %d cycles, want 32", got)
	}
}
