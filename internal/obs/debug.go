package obs

// The debug server is the only place in the repository allowed to import
// net/http/pprof and expvar (enforced by the Makefile's lint gate): both
// packages register handlers on import, and keeping them here makes the
// debug surface strictly opt-in — no listener, no handler, unless a CLI
// was started with -debug-addr.

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar publication (expvar.Publish
// panics on duplicate names, and tests may start several servers).
var expvarOnce sync.Once

// ServeDebug starts an HTTP debug server on addr exposing:
//
//	/debug/pprof/...   net/http/pprof profiles
//	/debug/vars        expvar (includes the "stashflash" metrics var)
//	/debug/metrics     the collector snapshot as indented JSON
//
// The collector snapshot is also published process-wide as the expvar
// variable "stashflash", so generic expvar scrapers pick it up. The
// server runs on its own mux (nothing leaks onto http.DefaultServeMux
// beyond expvar's own init registration) and its own goroutine; the
// returned listener lets callers learn the bound address and shut the
// server down. c may be nil to serve pprof/expvar only.
func ServeDebug(addr string, c *Collector) (net.Listener, error) {
	if c != nil {
		expvarOnce.Do(func() {
			expvar.Publish("stashflash", expvar.Func(func() any { return c.Snapshot() }))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if c != nil {
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := c.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln, nil
}
