package obs

import "fmt"

// LabelSet is a fixed family of independently aggregated collectors, one
// per label. It exists for the fleet layer (internal/fleet): a sharded
// multi-chip array binds one collector to each chip so per-shard metrics
// stay separable in stashd's stats output, while each chip's recording
// path remains the ordinary single-Collector fast path — a LabelSet adds
// no locking of its own and is safe for concurrent use exactly as its
// member collectors are.
type LabelSet struct {
	labels []string
	cs     []*Collector
}

// NewLabelSet builds one zero-trace collector per label. Labels should be
// unique; Snapshots keys the output map by them.
func NewLabelSet(labels ...string) *LabelSet {
	s := &LabelSet{labels: append([]string(nil), labels...)}
	s.cs = make([]*Collector, len(s.labels))
	for i := range s.cs {
		s.cs[i] = NewCollector(0)
	}
	return s
}

// ChipLabels generates the conventional fleet label family: "chip0" ..
// "chipN-1". The fleet assigns them by chip index, so a label follows the
// physical package, not the logical shard — after a shard remap, the
// dead chip's counters stay frozen under its own label and the spare
// accumulates under its label (the shard→chip map in ShardStatus joins
// the two views).
func ChipLabels(n int) []string {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("chip%d", i)
	}
	return labels
}

// Len returns the number of labels.
func (s *LabelSet) Len() int { return len(s.cs) }

// Labels returns the label family in index order.
func (s *LabelSet) Labels() []string { return append([]string(nil), s.labels...) }

// At returns the collector bound to label index i.
func (s *LabelSet) At(i int) *Collector { return s.cs[i] }

// Snapshots merges every member collector and returns the per-label
// views. Each snapshot is internally consistent per shard exactly as
// Collector.Snapshot documents; across labels the map is a momentary
// merge.
func (s *LabelSet) Snapshots() map[string]Snapshot {
	out := make(map[string]Snapshot, len(s.cs))
	for i, c := range s.cs {
		out[s.labels[i]] = c.Snapshot()
	}
	return out
}
