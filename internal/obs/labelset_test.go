package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"stashflash/internal/nand"
)

// TestSnapshotCarriesSchema is the regression pin for the schema/version
// field: every exported snapshot document must self-identify its shape so
// benchdiff-style consumers can detect incompatible changes instead of
// misparsing them.
func TestSnapshotCarriesSchema(t *testing.T) {
	c := NewCollector(0)
	snap := c.Snapshot()
	if snap.Schema != SnapshotSchema {
		t.Fatalf("Snapshot().Schema = %q, want %q", snap.Schema, SnapshotSchema)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if got, ok := doc["schema"].(string); !ok || got != SnapshotSchema {
		t.Fatalf("JSON schema field = %v, want %q", doc["schema"], SnapshotSchema)
	}
	if !strings.HasPrefix(SnapshotSchema, "stashflash-metrics/") {
		t.Fatalf("SnapshotSchema %q lost its namespace prefix", SnapshotSchema)
	}
}

func TestLabelSetKeepsCollectorsSeparate(t *testing.T) {
	set := NewLabelSet(ChipLabels(3)...)
	if set.Len() != 3 {
		t.Fatalf("Len = %d, want 3", set.Len())
	}

	m := nand.ModelA().ScaleGeometry(4, 4, 1024)
	// Drive chip 0 through label 0 and chip 2 through label 2; label 1
	// stays idle.
	for _, i := range []int{0, 2} {
		dev := set.At(i).Wrap(nand.NewChip(m, uint64(i)+1))
		data := make([]byte, m.PageBytes)
		for p := 0; p < i+1; p++ {
			if err := dev.ProgramPage(nand.PageAddr{Block: 0, Page: p}, data); err != nil {
				t.Fatal(err)
			}
		}
		if err := dev.EraseBlock(0); err != nil {
			t.Fatal(err)
		}
	}

	snaps := set.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("Snapshots returned %d labels, want 3", len(snaps))
	}
	if got := snaps["chip0"].Ops["program"].Count; got != 1 {
		t.Errorf("chip0 programs = %d, want 1", got)
	}
	if got := snaps["chip2"].Ops["program"].Count; got != 3 {
		t.Errorf("chip2 programs = %d, want 3", got)
	}
	if got := snaps["chip1"].Ops["program"].Count; got != 0 {
		t.Errorf("idle chip1 recorded %d programs", got)
	}
	for label, s := range snaps {
		if s.Schema != SnapshotSchema {
			t.Errorf("label %s snapshot schema = %q", label, s.Schema)
		}
	}
}

func TestChipLabels(t *testing.T) {
	labels := ChipLabels(2)
	if len(labels) != 2 || labels[0] != "chip0" || labels[1] != "chip1" {
		t.Fatalf("ChipLabels(2) = %v", labels)
	}
	set := NewLabelSet(labels...)
	if got := set.Labels(); len(got) != 2 || got[1] != "chip1" {
		t.Fatalf("Labels() = %v", got)
	}
}
