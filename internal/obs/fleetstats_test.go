package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestFleetStatsCounters(t *testing.T) {
	s := &FleetStats{}
	s.Admit()
	s.Admit()
	s.Release()
	s.Reject()
	s.RecordBatch(1)
	s.RecordBatch(7)
	snap := s.Snapshot()
	if snap.Schema != FleetStatsSchema {
		t.Fatalf("schema %q", snap.Schema)
	}
	if snap.Inflight != 1 || snap.PeakInflight != 2 || snap.Admitted != 2 {
		t.Fatalf("gauge wrong: %+v", snap)
	}
	if snap.AdmissionRejects != 1 {
		t.Fatalf("rejects: %+v", snap)
	}
	if snap.QueueCrossings != 2 || snap.OpsExecuted != 8 || snap.MaxBatch != 7 {
		t.Fatalf("batch counters: %+v", snap)
	}
	if snap.AvgBatch != 4.0 {
		t.Fatalf("avg batch %v, want 4.0", snap.AvgBatch)
	}
}

func TestFleetStatsNilSafe(t *testing.T) {
	var s *FleetStats
	s.Admit()
	s.Release()
	s.Reject()
	s.RecordBatch(3)
	snap := s.Snapshot()
	if snap.Schema != FleetStatsSchema || snap.OpsExecuted != 0 {
		t.Fatalf("nil snapshot: %+v", snap)
	}
}

func TestFleetStatsConcurrent(t *testing.T) {
	s := &FleetStats{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Admit()
				s.RecordBatch(2)
				s.Release()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Admitted != 8000 || snap.Inflight != 0 || snap.OpsExecuted != 16000 {
		t.Fatalf("concurrent counters: %+v", snap)
	}
	if snap.PeakInflight < 1 || snap.PeakInflight > 8 {
		t.Fatalf("peak inflight %d", snap.PeakInflight)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}
