package obs

import (
	"errors"
	"testing"

	"stashflash/internal/nand"
	"stashflash/internal/onfi"
)

// tinyChip builds a small chip sample for wrapper tests.
func tinyChip(seed uint64) *nand.Chip {
	return nand.NewChip(nand.ModelA().ScaleGeometry(4, 2, 32), seed)
}

// TestDeviceCounters scripts a known operation sequence and checks every
// counter the wrapper should move: op counts, latency invariants, block
// wear/read tallies, typed-error classification and retry detection.
func TestDeviceCounters(t *testing.T) {
	c := NewCollector(0)
	chip := tinyChip(1)
	d := c.Wrap(chip)
	if got := c.Devices(); got != 1 {
		t.Fatalf("Devices() = %d, want 1", got)
	}

	a := nand.PageAddr{Block: 0, Page: 0}
	data := make([]byte, chip.Geometry().PageBytes)
	for i := range data {
		data[i] = 0xA5
	}

	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(a, data); err != nil {
		t.Fatal(err)
	}
	// Re-programming without erase is a typed error; the second identical
	// attempt right after the failure is a device-level retry.
	if err := d.ProgramPage(a, data); !errors.Is(err, nand.ErrPageProgrammed) {
		t.Fatalf("second program: err = %v, want ErrPageProgrammed", err)
	}
	if err := d.ProgramPage(a, data); !errors.Is(err, nand.ErrPageProgrammed) {
		t.Fatalf("third program: err = %v, want ErrPageProgrammed", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.ReadPage(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ReadPageRef(a, chip.Model().ReadRef+1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProbePage(a); err != nil {
		t.Fatal(err)
	}
	if err := d.PartialProgram(nand.PageAddr{Block: 0, Page: 1}, []int{1, 5, 9}); err != nil {
		t.Fatal(err)
	}
	if err := d.CycleBlock(1, 5); err != nil {
		t.Fatal(err)
	}

	snap := c.Snapshot()
	want := map[string]uint64{
		"erase":           1,
		"program":         3,
		"read":            3,
		"read_ref":        1,
		"probe":           1,
		"partial_program": 1,
		"cycle":           1,
	}
	for op, n := range want {
		got := snap.Ops[op]
		if got.Count != n {
			t.Errorf("ops[%q].count = %d, want %d", op, got.Count, n)
		}
		var sum uint64
		for _, b := range got.Buckets {
			sum += b
		}
		if sum != n {
			t.Errorf("ops[%q] bucket sum = %d, want %d", op, sum, n)
		}
	}
	if got := snap.Ops["program"].Errors; got != 2 {
		t.Errorf("program errors = %d, want 2", got)
	}
	if got := snap.Errors["page_programmed"]; got != 2 {
		t.Errorf("errors[page_programmed] = %d, want 2", got)
	}
	if snap.Retries != 1 {
		t.Errorf("retries = %d, want 1 (third program retried the failed second)", snap.Retries)
	}
	// Reads, the shifted read and the probe all count as read-class
	// exposure on block 0.
	if got := snap.BlockReads[0]; got != 5 {
		t.Errorf("block_reads[0] = %d, want 5", got)
	}
	// Erase adds one wear unit to block 0; the cycle fast-forward adds 5
	// to block 1.
	if got := snap.BlockWear[0]; got != 1 {
		t.Errorf("block_wear[0] = %d, want 1", got)
	}
	if got := snap.BlockWear[1]; got != 5 {
		t.Errorf("block_wear[1] = %d, want 5", got)
	}
	if len(snap.Trace) != 0 || snap.TraceRecorded != 0 {
		t.Errorf("trace disabled but snapshot carries %d cycles (recorded %d)", len(snap.Trace), snap.TraceRecorded)
	}
}

// TestDeviceTransparency spot-checks the wrapper's contract at the
// device level: reads and probes through the wrapper return exactly the
// bytes of the unwrapped chip.
func TestDeviceTransparency(t *testing.T) {
	plain := tinyChip(7)
	wrapped := NewCollector(0).Wrap(tinyChip(7))

	a := nand.PageAddr{Block: 2, Page: 1}
	data := make([]byte, plain.Geometry().PageBytes)
	for i := range data {
		data[i] = byte(i * 13)
	}
	for _, dev := range []nand.LabDevice{plain, wrapped} {
		if err := dev.ProgramPage(a, data); err != nil {
			t.Fatal(err)
		}
	}
	pr, err := plain.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := wrapped.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(pr) != string(wr) {
		t.Error("wrapped read differs from direct read")
	}
	pp, err := plain.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := wrapped.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(pp) != string(wp) {
		t.Error("wrapped probe differs from direct probe")
	}
}

// TestWrapAttachesTrace proves that wrapping the ONFI adapter with a
// tracing collector records the bus cycles of subsequent operations: a
// full read transaction is a READ latch, an address phase, a READ
// CONFIRM latch and a data-out transfer.
func TestWrapAttachesTrace(t *testing.T) {
	c := NewCollector(64)
	chip := tinyChip(3)
	d := c.Wrap(onfi.NewDevice(chip))

	if _, err := d.ReadPage(nand.PageAddr{Block: 1, Page: 0}); err != nil {
		t.Fatal(err)
	}
	cycles := c.Trace().Cycles()
	if len(cycles) != 4 {
		t.Fatalf("read transaction recorded %d cycles, want 4: %+v", len(cycles), cycles)
	}
	wantKinds := []onfi.CycleKind{onfi.CycleCmd, onfi.CycleAddr, onfi.CycleCmd, onfi.CycleDataOut}
	wantOps := []byte{onfi.CmdRead, 0, onfi.CmdReadConfirm, 0}
	for i, cy := range cycles {
		if cy.Kind != wantKinds[i] {
			t.Errorf("cycle %d kind = %v, want %v", i, cy.Kind, wantKinds[i])
		}
		if cy.Kind == onfi.CycleCmd && cy.Op != wantOps[i] {
			t.Errorf("cycle %d op = %#02x, want %#02x", i, cy.Op, wantOps[i])
		}
		if cy.Status&onfi.StatusFail != 0 {
			t.Errorf("cycle %d carries status FAIL: %+v", i, cy)
		}
	}
	if cycles[1].Row != chip.Geometry().PagesPerBlock {
		t.Errorf("address cycle row = %d, want %d", cycles[1].Row, chip.Geometry().PagesPerBlock)
	}
	if cycles[3].N != chip.Geometry().PageBytes {
		t.Errorf("data-out cycle n = %d, want %d", cycles[3].N, chip.Geometry().PageBytes)
	}
	snap := c.Snapshot()
	if snap.TraceRecorded != 4 || len(snap.Trace) != 4 {
		t.Errorf("snapshot trace: recorded %d retained %d, want 4/4", snap.TraceRecorded, len(snap.Trace))
	}
}

// TestRetentionRecording checks that AdvanceRetention is recorded as an
// operation, totals the virtual time advanced, and surfaces the backend
// virtual clock as a max gauge.
func TestRetentionRecording(t *testing.T) {
	c := NewCollector(0)
	d := c.Wrap(tinyChip(7))

	d.AdvanceRetention(3 * nand.RetentionMonth)
	d.AdvanceRetention(2 * nand.RetentionMonth)
	d.AdvanceRetention(0) // no-op bake: counted, advances nothing

	snap := c.Snapshot()
	op, ok := snap.Ops["retention"]
	if !ok {
		t.Fatalf("snapshot missing retention op: %v", snap.Ops)
	}
	if op.Count != 3 {
		t.Fatalf("retention count = %d, want 3", op.Count)
	}
	want := uint64(5 * nand.RetentionMonth)
	if snap.RetentionAdvancedNs != want {
		t.Fatalf("RetentionAdvancedNs = %d, want %d", snap.RetentionAdvancedNs, want)
	}
	if snap.VirtualClockNs != want {
		t.Fatalf("VirtualClockNs = %d, want %d", snap.VirtualClockNs, want)
	}

	// A second device on the same chip sees the same clock; the gauge is
	// a max, not a sum.
	d2 := c.Wrap(d.Inner())
	d2.AdvanceRetention(nand.RetentionMonth)
	snap = c.Snapshot()
	if got := snap.VirtualClockNs; got != uint64(6*nand.RetentionMonth) {
		t.Fatalf("VirtualClockNs after second device = %d, want %d", got, uint64(6*nand.RetentionMonth))
	}
	if got := snap.RetentionAdvancedNs; got != uint64(6*nand.RetentionMonth) {
		t.Fatalf("RetentionAdvancedNs after second device = %d, want %d", got, uint64(6*nand.RetentionMonth))
	}
}
