package obs

import (
	"time"

	"stashflash/internal/nand"
	"stashflash/internal/onfi"
)

// Device decorates a nand.LabDevice with metrics recording. Every
// operation is forwarded verbatim — same arguments, same return values,
// same errors — so a wrapped backend is results-transparent: the only
// side effects are counter updates in the owning Collector. It follows
// the nand.Device concurrency contract (one device per goroutine); the
// Collector it records into is shared and concurrency-safe.
type Device struct {
	inner nand.LabDevice
	sh    *shard

	// Retry detection: a device-level retry is the re-issue of the same
	// operation kind against the same address immediately after that
	// operation failed there (the pattern core.Hider's fault recovery
	// produces). Tracking it needs only the last failure, and the device
	// is single-goroutine by contract, so no lock is taken.
	failedOp    Op
	failedBlock int
	failedPage  int
	failed      bool
}

// The wrapper preserves the full lab surface of whatever it wraps.
var _ nand.LabDevice = (*Device)(nil)

// Wrap decorates a device with metrics recording into c. The device is
// bound to one collector shard round-robin, so devices driven by
// different workers record without contending. If the collector has a
// trace ring and the backend is the ONFI bus adapter, the ring is
// attached to the bus as a side effect.
func (c *Collector) Wrap(d nand.LabDevice) *Device {
	i := int(c.next.Add(1)-1) & (numShards - 1)
	c.devices.Add(1)
	if c.trace != nil {
		if od, ok := d.(*onfi.Device); ok {
			od.SetCycleRecorder(c.trace)
		}
	}
	return &Device{inner: d, sh: &c.shards[i], failedBlock: -1, failedPage: -1}
}

// Inner returns the wrapped device.
func (d *Device) Inner() nand.LabDevice { return d.inner }

// observe records one forwarded operation: latency, error class, retry
// detection and block tallies. wear is the erase-equivalent wear the
// operation adds to the block on success (erase: 1, cycle: n).
func (d *Device) observe(op Op, block, page int, wear uint64, start time.Time, err error) {
	retry := d.failed && d.failedOp == op && d.failedBlock == block && d.failedPage == page
	d.sh.record(op, block, wear, time.Since(start), retry, err)
	if err != nil {
		d.failed, d.failedOp, d.failedBlock, d.failedPage = true, op, block, page
	} else {
		d.failed = false
	}
}

// --- nand.Device (standard commands) -------------------------------------

// Geometry forwards without recording (parameter-page metadata, not an
// array operation).
func (d *Device) Geometry() nand.Geometry { return d.inner.Geometry() }

// Model forwards without recording.
func (d *Device) Model() nand.Model { return d.inner.Model() }

// PEC forwards without recording (controller metadata).
func (d *Device) PEC(block int) int { return d.inner.PEC(block) }

// IsBadBlock forwards without recording.
func (d *Device) IsBadBlock(block int) bool { return d.inner.IsBadBlock(block) }

// EraseBlock forwards an erase and records it as one unit of block wear.
func (d *Device) EraseBlock(block int) error {
	start := time.Now()
	err := d.inner.EraseBlock(block)
	d.observe(OpErase, block, -1, 1, start, err)
	return err
}

// CycleBlock forwards a wear fast-forward and records n units of wear.
func (d *Device) CycleBlock(block, n int) error {
	start := time.Now()
	err := d.inner.CycleBlock(block, n)
	wear := uint64(0)
	if n > 0 {
		wear = uint64(n)
	}
	d.observe(OpCycle, block, -1, wear, start, err)
	return err
}

// ProgramPage forwards a full program.
func (d *Device) ProgramPage(a nand.PageAddr, data []byte) error {
	start := time.Now()
	err := d.inner.ProgramPage(a, data)
	d.observe(OpProgram, a.Block, a.Page, 0, start, err)
	return err
}

// ReadPage forwards a default-reference read.
func (d *Device) ReadPage(a nand.PageAddr) ([]byte, error) {
	start := time.Now()
	data, err := d.inner.ReadPage(a)
	d.observe(OpRead, a.Block, a.Page, 0, start, err)
	return data, err
}

// PartialProgram forwards one PP pulse.
func (d *Device) PartialProgram(a nand.PageAddr, cells []int) error {
	start := time.Now()
	err := d.inner.PartialProgram(a, cells)
	d.observe(OpPartial, a.Block, a.Page, 0, start, err)
	return err
}

// --- nand.BatchDevice (page-granular fast paths) --------------------------

// Batch forwarding goes through the nand package helpers, so a backend
// with a native batch surface (the chip, the ONFI bus adapter) keeps its
// fast path and any other backend falls back to the single-op loop.
// Either way the collector sees the same records a loop of single ops
// would have produced: one observation per page, with the measured batch
// duration split evenly across the pages touched.
var _ nand.BatchDevice = (*Device)(nil)

// observeBatch records one batched operation as per-page observations.
// n pages completed; if err is non-nil it is recorded against the page
// after the completed prefix (the page the batch failed on).
func (d *Device) observeBatch(op Op, start nand.PageAddr, n int, t0 time.Time, err error) {
	if n == 0 && err == nil {
		return
	}
	pages := n
	if err != nil {
		pages++
	}
	per := time.Since(t0) / time.Duration(pages)
	for p := 0; p < n; p++ {
		page := start.Page + p
		retry := d.failed && d.failedOp == op && d.failedBlock == start.Block && d.failedPage == page
		d.sh.record(op, start.Block, 0, per, retry, nil)
		d.failed = false
	}
	if err != nil {
		page := start.Page + n
		retry := d.failed && d.failedOp == op && d.failedBlock == start.Block && d.failedPage == page
		d.sh.record(op, start.Block, 0, per, retry, err)
		d.failed, d.failedOp, d.failedBlock, d.failedPage = true, op, start.Block, page
	}
}

// ReadPageInto forwards a default-reference read into a caller buffer.
func (d *Device) ReadPageInto(a nand.PageAddr, out []byte) error {
	start := time.Now()
	err := nand.ReadPageInto(d.inner, a, out)
	d.observe(OpRead, a.Block, a.Page, 0, start, err)
	return err
}

// ReadPageRefInto forwards a shifted-reference read into a caller buffer.
func (d *Device) ReadPageRefInto(a nand.PageAddr, ref float64, out []byte) error {
	start := time.Now()
	err := nand.ReadPageRefInto(d.inner, a, ref, out)
	d.observe(OpReadRef, a.Block, a.Page, 0, start, err)
	return err
}

// ProbePageInto forwards a per-cell probe into a caller buffer.
func (d *Device) ProbePageInto(a nand.PageAddr, out []uint8) error {
	start := time.Now()
	err := nand.ProbePageInto(d.inner, a, out)
	d.observe(OpProbe, a.Block, a.Page, 0, start, err)
	return err
}

// ReadPages forwards a batched sequential read.
func (d *Device) ReadPages(start nand.PageAddr, count int, out []byte) (int, error) {
	t0 := time.Now()
	n, err := nand.ReadPages(d.inner, start, count, out)
	d.observeBatch(OpRead, start, n, t0, err)
	return n, err
}

// ProgramPages forwards a batched multi-page program.
func (d *Device) ProgramPages(start nand.PageAddr, data []byte) (int, error) {
	t0 := time.Now()
	n, err := nand.ProgramPages(d.inner, start, data)
	d.observeBatch(OpProgram, start, n, t0, err)
	return n, err
}

// ProbeVoltages forwards a batched per-cell probe.
func (d *Device) ProbeVoltages(start nand.PageAddr, count int, out []uint8) (int, error) {
	t0 := time.Now()
	n, err := nand.ProbeVoltages(d.inner, start, count, out)
	d.observeBatch(OpProbe, start, n, t0, err)
	return n, err
}

// --- nand.VendorDevice ----------------------------------------------------

// ReadPageRef forwards a shifted-reference read.
func (d *Device) ReadPageRef(a nand.PageAddr, ref float64) ([]byte, error) {
	start := time.Now()
	data, err := d.inner.ReadPageRef(a, ref)
	d.observe(OpReadRef, a.Block, a.Page, 0, start, err)
	return data, err
}

// FineProgram forwards a controller-grade fine program.
func (d *Device) FineProgram(a nand.PageAddr, cells []int, target float64) error {
	start := time.Now()
	err := d.inner.FineProgram(a, cells, target)
	d.observe(OpFine, a.Block, a.Page, 0, start, err)
	return err
}

// ProbePage forwards a per-cell characterisation probe.
func (d *Device) ProbePage(a nand.PageAddr) ([]uint8, error) {
	start := time.Now()
	levels, err := d.inner.ProbePage(a)
	d.observe(OpProbe, a.Block, a.Page, 0, start, err)
	return levels, err
}

// NeighborPrograms forwards without recording (firmware bookkeeping, no
// array activity).
func (d *Device) NeighborPrograms(a nand.PageAddr) (int, error) {
	return d.inner.NeighborPrograms(a)
}

// --- lab capabilities (control plane, forwarded) --------------------------

// SetFaultPlan forwards to the backend's fault-injection control plane.
func (d *Device) SetFaultPlan(p *nand.FaultPlan) { d.inner.SetFaultPlan(p) }

// FaultPlan forwards to the backend.
func (d *Device) FaultPlan() *nand.FaultPlan { return d.inner.FaultPlan() }

// PowerCycle forwards the power restore.
func (d *Device) PowerCycle() { d.inner.PowerCycle() }

// GrownBadBlocks forwards the grown-bad list.
func (d *Device) GrownBadBlocks() []int { return d.inner.GrownBadBlocks() }

// StressCycleBlock forwards one PT-HI stress cycle; its completing erase
// is one unit of wear.
func (d *Device) StressCycleBlock(block int, cellsPerPage [][]int) error {
	start := time.Now()
	err := d.inner.StressCycleBlock(block, cellsPerPage)
	d.observe(OpStress, block, -1, 1, start, err)
	return err
}

// StressCells forwards bulk cell stress (no erase, so no wear tally).
func (d *Device) StressCells(a nand.PageAddr, cells []int, n int) error {
	start := time.Now()
	err := d.inner.StressCells(a, cells, n)
	d.observe(OpStress, a.Block, a.Page, 0, start, err)
	return err
}

// AdvanceRetention forwards the retention bake and records it: wall
// latency (O(1) under the lazy retention engine — see nand/retention.go),
// the virtual time advanced, and the backend's virtual clock afterwards.
func (d *Device) AdvanceRetention(t time.Duration) {
	start := time.Now()
	d.inner.AdvanceRetention(t)
	d.sh.recordRetention(time.Since(start), t, d.inner.Ledger().VirtualClock)
}

// Ledger forwards the backend's cost accounting.
func (d *Device) Ledger() nand.Ledger { return d.inner.Ledger() }

// ResetLedger forwards the accounting reset.
func (d *Device) ResetLedger() { d.inner.ResetLedger() }

// DropBlockState forwards the simulator-only state release without
// recording (not a device command).
func (d *Device) DropBlockState(block int) error { return d.inner.DropBlockState(block) }

// ProgramPageMLC forwards an MLC-mode program, recorded as a program.
func (d *Device) ProgramPageMLC(a nand.PageAddr, lower, upper []byte) error {
	start := time.Now()
	err := d.inner.ProgramPageMLC(a, lower, upper)
	d.observe(OpProgram, a.Block, a.Page, 0, start, err)
	return err
}

// ReadPageMLC forwards an MLC-mode read, recorded as a read.
func (d *Device) ReadPageMLC(a nand.PageAddr) (lower, upper []byte, err error) {
	start := time.Now()
	lower, upper, err = d.inner.ReadPageMLC(a)
	d.observe(OpRead, a.Block, a.Page, 0, start, err)
	return lower, upper, err
}
