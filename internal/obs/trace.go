package obs

import (
	"sync"

	"stashflash/internal/onfi"
)

// TraceRing is a bounded ring buffer of ONFI bus cycles — the flight
// recorder for post-mortem debugging of backend divergence. It keeps the
// last N cycles recorded and drops older ones; Cycles returns them
// oldest-first. Safe for concurrent use: recording takes one short
// mutex, and the collector attaches one ring to every bus it wraps, so
// the ring observes the interleaved cycle stream of all traced devices.
type TraceRing struct {
	mu    sync.Mutex
	buf   []onfi.Cycle
	total uint64 // cycles ever recorded, including dropped ones
}

// NewTraceRing builds a ring holding the last n cycles (n >= 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]onfi.Cycle, 0, n)}
}

// RecordCycle implements onfi.CycleRecorder.
func (r *TraceRing) RecordCycle(cy onfi.Cycle) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, cy)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = cy
	}
	r.total++
	r.mu.Unlock()
}

// Recorded reports how many cycles have ever been recorded (dropped
// cycles included).
func (r *TraceRing) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cycles returns a copy of the retained cycles, oldest first.
func (r *TraceRing) Cycles() []onfi.Cycle {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]onfi.Cycle, len(r.buf))
	if r.total <= uint64(cap(r.buf)) {
		copy(out, r.buf)
		return out
	}
	// The ring has wrapped: the oldest retained cycle sits at the next
	// write position.
	head := int(r.total % uint64(cap(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}
