// Package obs is the observability spine of the repository: a
// zero-dependency metrics layer that watches the device boundary while
// the stack runs. Its centrepiece is Device, a decorating wrapper that
// satisfies nand.LabDevice and records, for every operation it forwards,
// an operation count, a latency sample in a log-2 bucket histogram, a
// typed-error tally, and per-block wear/read tallies — without changing
// a single observable result (see the transparency tests in
// internal/experiments).
//
// A Collector aggregates the recordings of many wrapped devices. The
// experiment engine creates one device per work unit and fans units
// across workers (internal/parallel), so the collector is lock-sharded:
// each wrapped device is bound round-robin to one of a fixed set of
// shards and records under that shard's private mutex. Workers driving
// distinct devices therefore almost never contend on a lock, and a
// Snapshot merges the shards after the fact.
//
// The package also carries the opt-in debugging surface: an ONFI bus
// cycle trace ring (trace.go) and the net/http/pprof + expvar debug
// server (debug.go). Both are off unless explicitly enabled — the
// Makefile's lint gate keeps pprof/expvar imports confined to this
// package so no other build path grows a debug listener by accident.
package obs

import (
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"stashflash/internal/nand"
)

// Op enumerates the device operations the wrapper distinguishes.
type Op int

const (
	// OpRead is ReadPage (default-reference reads, MLC reads included).
	OpRead Op = iota
	// OpReadRef is ReadPageRef (shifted-reference decode reads).
	OpReadRef
	// OpProgram is ProgramPage / ProgramPageMLC (full ISPP programs).
	OpProgram
	// OpPartial is PartialProgram (one PROGRAM+RESET pulse).
	OpPartial
	// OpErase is EraseBlock.
	OpErase
	// OpCycle is CycleBlock (tester-rig wear fast-forward).
	OpCycle
	// OpProbe is ProbePage (per-cell voltage characterisation).
	OpProbe
	// OpFine is FineProgram (controller-grade fine programming).
	OpFine
	// OpStress is StressCycleBlock / StressCells (PT-HI bulk stress).
	OpStress
	// OpRetention is AdvanceRetention (virtual-clock bake; O(1) wall
	// time under the lazy retention engine, see nand/retention.go).
	OpRetention

	opCount
)

// opNames are the JSON/expvar keys of the operation counters.
var opNames = [opCount]string{
	OpRead:      "read",
	OpReadRef:   "read_ref",
	OpProgram:   "program",
	OpPartial:   "partial_program",
	OpErase:     "erase",
	OpCycle:     "cycle",
	OpProbe:     "probe",
	OpFine:      "fine_program",
	OpStress:    "stress",
	OpRetention: "retention",
}

// String names the operation as it appears in snapshots.
func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// errKind indexes the typed-error tallies.
type errKind int

const (
	errProgramFailed errKind = iota
	errEraseFailed
	errBadBlock
	errPowerLoss
	errBlockRange
	errPageProgrammed
	errBadDataLength
	errNegativeCount
	errOther

	errCount
)

var errNames = [errCount]string{
	errProgramFailed:  "program_failed",
	errEraseFailed:    "erase_failed",
	errBadBlock:       "bad_block",
	errPowerLoss:      "power_loss",
	errBlockRange:     "block_range",
	errPageProgrammed: "page_programmed",
	errBadDataLength:  "bad_data_length",
	errNegativeCount:  "negative_count",
	errOther:          "other",
}

// classify maps a device error to its tally bucket with errors.Is, so
// wrapped errors (the chip always wraps with context) land correctly.
func classify(err error) errKind {
	switch {
	case errors.Is(err, nand.ErrProgramFailed):
		return errProgramFailed
	case errors.Is(err, nand.ErrEraseFailed):
		return errEraseFailed
	case errors.Is(err, nand.ErrBadBlock):
		return errBadBlock
	case errors.Is(err, nand.ErrPowerLoss):
		return errPowerLoss
	case errors.Is(err, nand.ErrBlockRange):
		return errBlockRange
	case errors.Is(err, nand.ErrPageProgrammed):
		return errPageProgrammed
	case errors.Is(err, nand.ErrBadDataLength):
		return errBadDataLength
	case errors.Is(err, nand.ErrNegativeCount):
		return errNegativeCount
	default:
		return errOther
	}
}

// histBuckets is the fixed width of every latency histogram: bucket i
// counts operations whose wall-clock latency d satisfies
// 2^(i-1) ns <= d < 2^i ns (bucket 0 is d < 1ns), so 40 buckets cover
// everything up to ~9 minutes. Fixed log-2 bucketing keeps recording to
// one bits.Len64 and one increment — no comparisons, no allocation.
const histBuckets = 40

// bucketOf returns the histogram bucket of a latency sample.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketLowNs returns the inclusive lower latency bound of bucket i in
// nanoseconds (0 for bucket 0). Exported for consumers rendering the
// histogram; the JSON snapshot carries only the counts.
func BucketLowNs(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// opData is one operation's shard-local accumulation.
type opData struct {
	count   uint64
	errors  uint64
	totalNs uint64
	buckets [histBuckets]uint64
}

// shard is one lock domain of a Collector. Every field is guarded by mu;
// a shard is several KiB, so neighbouring shards never share a cache
// line through their mutexes.
type shard struct {
	mu      sync.Mutex
	ops     [opCount]opData
	errs    [errCount]uint64
	retries uint64
	// blockWear[b] counts erase-equivalent wear added to block b through
	// this shard (erases, stress-cycle erases, and fast-forwarded cycles);
	// blockReads[b] counts read-class operations (reads, shifted reads,
	// probes) — the read-disturb exposure tally. Grown on demand to the
	// largest block index seen.
	blockWear  []uint64
	blockReads []uint64
	// retentionNs totals the virtual time pushed through
	// AdvanceRetention; virtualClockNs is the largest backend virtual
	// clock seen at a bake (a gauge — every shard of one chip observes
	// the same monotone clock, so the max is the chip's virtual age).
	retentionNs    uint64
	virtualClockNs uint64
}

// grow extends a tally slice to cover index b.
func grow(s []uint64, b int) []uint64 {
	for len(s) <= b {
		s = append(s, 0)
	}
	return s
}

// Collector aggregates the metrics of every device wrapped with Wrap.
// All methods are safe for concurrent use; the recording hot path is
// sharded so concurrent devices do not serialise on one mutex.
type Collector struct {
	shards  []shard
	next    atomic.Uint64 // round-robin device→shard binding
	devices atomic.Uint64
	trace   *TraceRing // nil unless trace cycles were requested
}

// numShards is the fixed shard count (a power of two; comfortably above
// the experiment engine's usual worker fan-out).
const numShards = 16

// NewCollector builds a collector. traceCycles > 0 additionally keeps a
// ring of the last traceCycles ONFI bus cycles: wrapping a bus-backed
// device (internal/onfi) attaches the ring to its bus, and the cycles
// appear in Snapshot. traceCycles <= 0 disables tracing entirely.
func NewCollector(traceCycles int) *Collector {
	c := &Collector{shards: make([]shard, numShards)}
	if traceCycles > 0 {
		c.trace = NewTraceRing(traceCycles)
	}
	return c
}

// Trace returns the collector's cycle ring, or nil when tracing is off.
func (c *Collector) Trace() *TraceRing { return c.trace }

// Devices reports how many devices have been wrapped so far.
func (c *Collector) Devices() uint64 { return c.devices.Load() }

// record is the single hot-path entry: one shard lock covers the op
// count, the latency bucket, the error tally, the retry tally and the
// block tallies together, so any Snapshot sees them move atomically.
func (s *shard) record(op Op, block int, wear uint64, d time.Duration, retry bool, err error) {
	s.mu.Lock()
	od := &s.ops[op]
	od.count++
	od.totalNs += uint64(d)
	od.buckets[bucketOf(d)]++
	if err != nil {
		od.errors++
		s.errs[classify(err)]++
	}
	if retry {
		s.retries++
	}
	if block >= 0 {
		switch op {
		case OpRead, OpReadRef, OpProbe:
			s.blockReads = grow(s.blockReads, block)
			s.blockReads[block]++
		case OpErase, OpCycle, OpStress:
			if err == nil && wear > 0 {
				s.blockWear = grow(s.blockWear, block)
				s.blockWear[block] += wear
			}
		}
	}
	s.mu.Unlock()
}

// recordRetention tallies one AdvanceRetention call: wall latency,
// virtual time advanced, and the backend's virtual clock afterwards
// (folded in as a max gauge — bakes only move the clock forward).
func (s *shard) recordRetention(wall, advanced, clock time.Duration) {
	s.mu.Lock()
	od := &s.ops[OpRetention]
	od.count++
	od.totalNs += uint64(wall)
	od.buckets[bucketOf(wall)]++
	if advanced > 0 {
		s.retentionNs += uint64(advanced)
	}
	if clock > 0 && uint64(clock) > s.virtualClockNs {
		s.virtualClockNs = uint64(clock)
	}
	s.mu.Unlock()
}
