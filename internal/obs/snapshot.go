package obs

import (
	"encoding/json"
	"io"

	"stashflash/internal/onfi"
)

// OpSnapshot is one operation's aggregated view. Buckets is the log-2
// latency histogram: Buckets[i] counts operations whose latency d
// satisfies BucketLowNs(i) <= d < 2*BucketLowNs(i) (bucket 0 is
// sub-nanosecond). Trailing zero buckets are trimmed.
type OpSnapshot struct {
	Count   uint64   `json:"count"`
	Errors  uint64   `json:"errors,omitempty"`
	TotalNs uint64   `json:"total_ns"`
	Buckets []uint64 `json:"latency_log2_ns,omitempty"`
}

// SnapshotSchema identifies the snapshot document shape. Consumers that
// diff or aggregate snapshots across tool versions (benchdiff-style
// pipelines scraping -metricsjson or stashctl stats -json) should reject
// documents whose schema string they do not recognise; the value is
// bumped whenever a field changes meaning or layout incompatibly.
const SnapshotSchema = "stashflash-metrics/v1"

// Snapshot is the JSON-exportable state of a Collector at one moment.
// Per-shard consistency is exact (a shard's counters move under one
// lock, so an op's bucket sum always equals its count); cross-shard the
// snapshot is a momentary merge.
type Snapshot struct {
	// Schema is the document shape identifier, always SnapshotSchema.
	Schema string `json:"schema"`
	// Devices is the number of devices wrapped since the collector was
	// created.
	Devices uint64 `json:"devices_wrapped"`
	// Ops maps operation name (see Op.String) to its aggregate; ops never
	// issued are omitted.
	Ops map[string]OpSnapshot `json:"ops"`
	// Errors maps typed-error kind to occurrence count; kinds never seen
	// are omitted.
	Errors map[string]uint64 `json:"errors,omitempty"`
	// Retries counts operations re-issued to the same address right
	// after failing there.
	Retries uint64 `json:"retries,omitempty"`
	// BlockWear[b] is the erase-equivalent wear recorded against block
	// index b across all wrapped devices; BlockReads[b] is the number of
	// read-class operations (reads, shifted reads, probes) against it —
	// the read-disturb exposure tally.
	BlockWear  []uint64 `json:"block_wear,omitempty"`
	BlockReads []uint64 `json:"block_reads,omitempty"`
	// RetentionAdvancedNs is the total virtual time pushed through
	// AdvanceRetention across all wrapped devices; VirtualClockNs is the
	// largest backend virtual clock observed at a bake — the chip's
	// virtual age (shards of one chip all see the same monotone clock).
	RetentionAdvancedNs uint64 `json:"retention_advanced_ns,omitempty"`
	VirtualClockNs      uint64 `json:"virtual_clock_ns,omitempty"`
	// TraceRecorded / Trace carry the bus-cycle flight recorder when
	// tracing is enabled: total cycles ever recorded, and the retained
	// tail, oldest first.
	TraceRecorded uint64       `json:"trace_recorded,omitempty"`
	Trace         []onfi.Cycle `json:"trace,omitempty"`
}

// addInto folds a tally slice into dst, growing dst as needed.
func addInto(dst, src []uint64) []uint64 {
	dst = grow(dst, len(src)-1)
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Snapshot merges every shard into one exportable view. Shards are
// locked one at a time, so recording continues on the others while the
// merge walks; each shard's contribution is internally consistent.
func (c *Collector) Snapshot() Snapshot {
	var ops [opCount]opData
	var errs [errCount]uint64
	var retries uint64
	var wear, reads []uint64
	var retNs, clockNs uint64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for o := range s.ops {
			d := &s.ops[o]
			ops[o].count += d.count
			ops[o].errors += d.errors
			ops[o].totalNs += d.totalNs
			for b, n := range d.buckets {
				ops[o].buckets[b] += n
			}
		}
		for k, n := range s.errs {
			errs[k] += n
		}
		retries += s.retries
		wear = addInto(wear, s.blockWear)
		reads = addInto(reads, s.blockReads)
		retNs += s.retentionNs
		if s.virtualClockNs > clockNs {
			clockNs = s.virtualClockNs
		}
		s.mu.Unlock()
	}

	snap := Snapshot{
		Schema:              SnapshotSchema,
		Devices:             c.devices.Load(),
		Ops:                 make(map[string]OpSnapshot, opCount),
		Retries:             retries,
		BlockWear:           wear,
		BlockReads:          reads,
		RetentionAdvancedNs: retNs,
		VirtualClockNs:      clockNs,
	}
	for o := Op(0); o < opCount; o++ {
		d := &ops[o]
		if d.count == 0 {
			continue
		}
		last := 0
		for b, n := range d.buckets {
			if n != 0 {
				last = b
			}
		}
		buckets := make([]uint64, last+1)
		copy(buckets, d.buckets[:last+1])
		snap.Ops[o.String()] = OpSnapshot{
			Count:   d.count,
			Errors:  d.errors,
			TotalNs: d.totalNs,
			Buckets: buckets,
		}
	}
	for k := errKind(0); k < errCount; k++ {
		if errs[k] == 0 {
			continue
		}
		if snap.Errors == nil {
			snap.Errors = make(map[string]uint64)
		}
		snap.Errors[errNames[k]] = errs[k]
	}
	if c.trace != nil {
		snap.Trace = c.trace.Cycles()
		snap.TraceRecorded = c.trace.Recorded()
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON with a trailing
// newline — the document cmd/experiments -metricsjson and
// cmd/stashctl stats -json emit (schema: EXPERIMENTS.md).
func (c *Collector) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
