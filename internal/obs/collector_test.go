package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"stashflash/internal/nand"
)

// TestBucketOf pins the log-2 bucket boundaries: bucket i covers
// [2^(i-1), 2^i) nanoseconds, bucket 0 is sub-nanosecond, and the last
// bucket absorbs everything above the covered range.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 1; i < histBuckets; i++ {
		lo := BucketLowNs(i)
		if got := bucketOf(time.Duration(lo)); got != i {
			t.Errorf("bucketOf(BucketLowNs(%d)=%d) = %d, want %d", i, lo, got, i)
		}
	}
}

// TestShardedConcurrency hammers the collector from many goroutines —
// each driving its own wrapped device, per the nand.Device concurrency
// contract — while a reader takes snapshots mid-flight. Run under
// -race, this is the lock-sharding proof; the mid-flight snapshots also
// assert the no-torn-counters invariant (every op's bucket sum equals
// its count, since both move under one shard lock), and the final
// snapshot must account for every operation exactly.
func TestShardedConcurrency(t *testing.T) {
	const (
		goroutines = 8
		readsEach  = 400
	)
	c := NewCollector(0)

	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() { // snapshot reader racing the writers
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := c.Snapshot()
			for op, o := range snap.Ops {
				var sum uint64
				for _, b := range o.Buckets {
					sum += b
				}
				if sum != o.Count {
					t.Errorf("torn counters: ops[%q] bucket sum %d != count %d", op, sum, o.Count)
					return
				}
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := c.Wrap(tinyChip(uint64(g + 1)))
			a := nand.PageAddr{Block: g % 4, Page: 0}
			for i := 0; i < readsEach; i++ {
				if _, err := d.ReadPage(a); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)

	snap := c.Snapshot()
	if got := snap.Ops["read"].Count; got != goroutines*readsEach {
		t.Errorf("final read count = %d, want %d", got, goroutines*readsEach)
	}
	if snap.Devices != goroutines {
		t.Errorf("devices_wrapped = %d, want %d", snap.Devices, goroutines)
	}
	var blockReads uint64
	for _, n := range snap.BlockReads {
		blockReads += n
	}
	if blockReads != goroutines*readsEach {
		t.Errorf("block_reads total = %d, want %d", blockReads, goroutines*readsEach)
	}
}

// TestSnapshotJSONSchema smoke-tests the exported document: ops that
// never ran are omitted, JSON round-trips, and the histogram is trimmed.
func TestSnapshotJSONSchema(t *testing.T) {
	c := NewCollector(0)
	d := c.Wrap(tinyChip(5))
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if _, ok := snap.Ops["probe"]; ok {
		t.Error("ops[probe] present with zero count; zero ops must be omitted")
	}
	e, ok := snap.Ops["erase"]
	if !ok || e.Count != 1 {
		t.Fatalf("ops[erase] = %+v, want count 1", e)
	}
	if len(e.Buckets) == 0 || e.Buckets[len(e.Buckets)-1] == 0 {
		t.Errorf("histogram not trimmed to last non-zero bucket: %v", e.Buckets)
	}
	if e.TotalNs == 0 {
		t.Error("total_ns = 0, want > 0")
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot does not round-trip as JSON: %v", err)
	}
	if round.Ops["erase"].Count != 1 {
		t.Errorf("round-tripped erase count = %d, want 1", round.Ops["erase"].Count)
	}
}
