package obs

import "sync/atomic"

// FleetStatsSchema versions the JSON shape of FleetSnapshot. Bump on any
// breaking change; consumers (stashd stats, dashboards) key on it.
const FleetStatsSchema = "stashflash-fleet-stats/v1"

// FleetStats aggregates fleet-level scheduling counters: admission
// control outcomes, queue-crossing counts and batch occupancy of the
// per-shard coalescer (internal/fleet). It is the fleet-wide complement
// of the per-chip LabelSet collectors — those count device operations,
// this counts how submissions reached the per-chip queues. All methods
// are safe for concurrent use and are no-ops on a nil receiver, so the
// fleet records unconditionally and callers opt in by supplying one.
type FleetStats struct {
	inflight  atomic.Int64
	peak      atomic.Int64
	admitted  atomic.Uint64
	rejects   atomic.Uint64
	crossings atomic.Uint64
	ops       atomic.Uint64
	maxBatch  atomic.Int64
}

// Admit records one submission passing admission control; balance with
// Release when the operation completes.
func (s *FleetStats) Admit() {
	if s == nil {
		return
	}
	s.admitted.Add(1)
	cur := s.inflight.Add(1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// Release records one admitted operation completing.
func (s *FleetStats) Release() {
	if s == nil {
		return
	}
	s.inflight.Add(-1)
}

// Reject records one submission refused by an inflight budget
// (ErrOverloaded).
func (s *FleetStats) Reject() {
	if s == nil {
		return
	}
	s.rejects.Add(1)
}

// RecordBatch records one queue crossing that carried n operations (n=1
// for the unbatched path, n>1 when the coalescer merged submissions).
func (s *FleetStats) RecordBatch(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.crossings.Add(1)
	s.ops.Add(uint64(n))
	for {
		m := s.maxBatch.Load()
		if int64(n) <= m || s.maxBatch.CompareAndSwap(m, int64(n)) {
			return
		}
	}
}

// FleetSnapshot is the JSON view of a FleetStats. AvgBatch is the mean
// coalesced occupancy per queue crossing (1.0 means batching never
// merged anything).
type FleetSnapshot struct {
	Schema           string  `json:"schema"`
	Inflight         int64   `json:"inflight"`
	PeakInflight     int64   `json:"peak_inflight"`
	Admitted         uint64  `json:"admitted"`
	AdmissionRejects uint64  `json:"admission_rejects"`
	QueueCrossings   uint64  `json:"queue_crossings"`
	OpsExecuted      uint64  `json:"ops_executed"`
	MaxBatch         int64   `json:"max_batch"`
	AvgBatch         float64 `json:"avg_batch"`
}

// Snapshot returns a momentary merge of the counters (each field is
// individually atomic; the set is not a consistent cut).
func (s *FleetStats) Snapshot() FleetSnapshot {
	out := FleetSnapshot{Schema: FleetStatsSchema}
	if s == nil {
		return out
	}
	out.Inflight = s.inflight.Load()
	out.PeakInflight = s.peak.Load()
	out.Admitted = s.admitted.Load()
	out.AdmissionRejects = s.rejects.Load()
	out.QueueCrossings = s.crossings.Load()
	out.OpsExecuted = s.ops.Load()
	out.MaxBatch = s.maxBatch.Load()
	if out.QueueCrossings > 0 {
		out.AvgBatch = float64(out.OpsExecuted) / float64(out.QueueCrossings)
	}
	return out
}
