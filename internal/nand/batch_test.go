package nand

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// The batch surface's contract is bit-identical equivalence with the
// single-op loops it replaces: same results, same chip noise-stream
// consumption, same ledger. Two same-seed chips driven through the two
// surfaces must stay indistinguishable.

func batchTestChips(t *testing.T) (*Chip, *Chip) {
	t.Helper()
	m := TestModel()
	return NewChip(m, 77), NewChip(m, 77)
}

func TestProgramReadPagesMatchSingleOps(t *testing.T) {
	single, batch := batchTestChips(t)
	g := single.Geometry()
	rng := rand.New(rand.NewPCG(1, 2))
	data := make([]byte, 4*g.PageBytes)
	for i := range data {
		data[i] = byte(rng.IntN(256))
	}
	start := PageAddr{Block: 1, Page: 2}

	for p := 0; p < 4; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		if err := single.ProgramPage(a, data[p*g.PageBytes:(p+1)*g.PageBytes]); err != nil {
			t.Fatalf("single program: %v", err)
		}
	}
	if n, err := batch.ProgramPages(start, data); err != nil || n != 4 {
		t.Fatalf("ProgramPages = %d, %v", n, err)
	}

	got := make([]byte, 4*g.PageBytes)
	if n, err := batch.ReadPages(start, 4, got); err != nil || n != 4 {
		t.Fatalf("ReadPages = %d, %v", n, err)
	}
	for p := 0; p < 4; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		want, err := single.ReadPage(a)
		if err != nil {
			t.Fatalf("single read: %v", err)
		}
		if !bytes.Equal(want, got[p*g.PageBytes:(p+1)*g.PageBytes]) {
			t.Fatalf("page %d differs between batch and single read", p)
		}
	}

	// Probes must agree too (and with each other across surfaces).
	lv := make([]uint8, 4*g.CellsPerPage())
	if n, err := batch.ProbeVoltages(start, 4, lv); err != nil || n != 4 {
		t.Fatalf("ProbeVoltages = %d, %v", n, err)
	}
	for p := 0; p < 4; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		want, err := single.ProbePage(a)
		if err != nil {
			t.Fatalf("single probe: %v", err)
		}
		if !bytes.Equal(want, lv[p*g.CellsPerPage():(p+1)*g.CellsPerPage()]) {
			t.Fatalf("probe page %d differs between batch and single", p)
		}
	}

	if single.Ledger() != batch.Ledger() {
		t.Fatalf("ledgers diverge: single %+v batch %+v", single.Ledger(), batch.Ledger())
	}
}

func TestPartialProgramPatternMatchesCellList(t *testing.T) {
	single, batch := batchTestChips(t)
	g := single.Geometry()
	a := PageAddr{Block: 0, Page: 3}

	// A sparse ascending cell selection and its pattern encoding (0-bit
	// selects the cell, the PROGRAM data convention).
	rng := rand.New(rand.NewPCG(5, 6))
	cells := []int{}
	pattern := make([]byte, g.PageBytes)
	for i := range pattern {
		pattern[i] = 0xFF
	}
	for i := 0; i < g.CellsPerPage(); i++ {
		if rng.Float64() < 0.1 {
			cells = append(cells, i)
			pattern[i/8] &^= 1 << (7 - uint(i%8))
		}
	}

	for pulse := 0; pulse < 3; pulse++ {
		if err := single.PartialProgram(a, cells); err != nil {
			t.Fatalf("PartialProgram: %v", err)
		}
		if err := batch.PartialProgramPattern(a, pattern); err != nil {
			t.Fatalf("PartialProgramPattern: %v", err)
		}
	}

	want, err := single.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := batch.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("pattern-driven pulses diverge from cell-list pulses")
	}
	if single.Ledger() != batch.Ledger() {
		t.Fatalf("ledgers diverge: single %+v batch %+v", single.Ledger(), batch.Ledger())
	}
}

func TestReadPageRefIntoMatchesReadPageRef(t *testing.T) {
	single, batch := batchTestChips(t)
	g := single.Geometry()
	a := PageAddr{Block: 2, Page: 0}
	img := make([]byte, g.PageBytes)
	for i := range img {
		img[i] = byte(i * 37)
	}
	if err := single.ProgramPage(a, img); err != nil {
		t.Fatal(err)
	}
	if err := batch.ProgramPage(a, img); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, g.PageBytes)
	for _, ref := range []float64{10, 40, 120, 200} {
		want, err := single.ReadPageRef(a, ref)
		if err != nil {
			t.Fatal(err)
		}
		if err := batch.ReadPageRefInto(a, ref, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, out) {
			t.Fatalf("ReadPageRefInto differs at ref %v", ref)
		}
	}
}

func TestBatchOpsStopAtFirstError(t *testing.T) {
	c := NewChip(TestModel(), 3)
	g := c.Geometry()
	// Page 2 pre-programmed: a 3-page batch starting at page 0 must stop
	// after completing pages 0 and 1.
	blocker := PageAddr{Block: 0, Page: 2}
	img := bytes.Repeat([]byte{0xA5}, g.PageBytes)
	if err := c.ProgramPage(blocker, img); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x3C}, 3*g.PageBytes)
	n, err := c.ProgramPages(PageAddr{Block: 0, Page: 0}, data)
	if err == nil {
		t.Fatal("expected program-before-erase failure")
	}
	if n != 2 {
		t.Fatalf("ProgramPages completed %d pages before error, want 2", n)
	}
	// Out-of-range page mid-group: reads complete up to the boundary.
	out := make([]byte, 3*g.PageBytes)
	n, err = c.ReadPages(PageAddr{Block: 0, Page: g.PagesPerBlock - 2}, 3, out)
	if err == nil {
		t.Fatal("expected page-range failure")
	}
	if n != 2 {
		t.Fatalf("ReadPages completed %d pages before error, want 2", n)
	}
}
