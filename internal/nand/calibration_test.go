package nand

import (
	"math/rand/v2"
	"testing"
	"time"
)

// Calibration tests pin the generative voltage model to the shapes the
// paper reports in §4, §6.3 and §8. They are the contract between the
// simulator and every experiment built on top of it: if a model parameter
// drifts, these fail before the experiment outputs silently change.

// calibChip programs a few full pages of random data and returns the chip
// plus the programmed addresses.
func calibChip(t *testing.T, seed uint64, pec int) (*Chip, []PageAddr) {
	t.Helper()
	m := ModelA().ScaleGeometry(8, 8, 4096) // 32768 cells/page
	c := NewChip(m, seed)
	if pec > 0 {
		if err := c.CycleBlock(0, pec); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewPCG(seed, 77))
	var addrs []PageAddr
	for p := 0; p < m.PagesPerBlock; p++ {
		a := PageAddr{Block: 0, Page: p}
		if err := c.ProgramPage(a, randPageData(rng, m.PageBytes)); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	return c, addrs
}

// splitStates partitions probed levels into erased ('1') and programmed
// ('0') populations using the public read reference.
func splitStates(t *testing.T, c *Chip, addrs []PageAddr) (erased, programmed []float64) {
	t.Helper()
	ref := uint8(c.Model().ReadRef)
	for _, a := range addrs {
		p, err := c.ProbePage(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range p {
			if v < ref {
				erased = append(erased, float64(v))
			} else {
				programmed = append(programmed, float64(v))
			}
		}
	}
	return erased, programmed
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Paper §4: 99.99% of cells concentrate in [0,70] (erased) and [120,210]
// (programmed).
func TestCalibrationStateRanges(t *testing.T) {
	c, addrs := calibChip(t, 21, 0)
	erased, programmed := splitStates(t, c, addrs)
	outE, outP := 0, 0
	for _, v := range erased {
		if v > 70 {
			outE++
		}
	}
	for _, v := range programmed {
		if v < 120 || v > 210 {
			outP++
		}
	}
	if frac := float64(outE) / float64(len(erased)); frac > 0.001 {
		t.Errorf("%.4f%% of erased cells above 70, want <= 0.1%%", frac*100)
	}
	if frac := float64(outP) / float64(len(programmed)); frac > 0.001 {
		t.Errorf("%.4f%% of programmed cells outside [120,210], want <= 0.1%%", frac*100)
	}
	// Roughly half the cells are in each state under random data.
	total := len(erased) + len(programmed)
	if f := float64(len(erased)) / float64(total); f < 0.45 || f > 0.55 {
		t.Errorf("erased fraction %.3f, want ~0.5", f)
	}
}

// Paper §6.3: with random data, "a minimum of 700 cells in the
// non-programmed state that are normally charged above our data hiding
// threshold" of 34, per 18048-byte page (~72k erased cells) — about 1% of
// erased cells, and the reason >512 hidden bits/page would be detectable.
func TestCalibrationNaturalTailAboveVth(t *testing.T) {
	// Per-chip process offsets swing the tail severalfold, so measure
	// the fleet average across samples (the paper's bound is likewise a
	// measurement over multiple chips) and only a loose floor per chip.
	var fracs []float64
	for seed := uint64(22); seed < 28; seed++ {
		c, addrs := calibChip(t, seed, 0)
		erased, _ := splitStates(t, c, addrs)
		above := 0
		for _, v := range erased {
			if v >= 34 {
				above++
			}
		}
		frac := float64(above) / float64(len(erased))
		fracs = append(fracs, frac)
		if frac < 0.001 {
			t.Errorf("chip seed %d: tail above Vth=34 is %.4f, want >= 0.1%%", seed, frac)
		}
	}
	avg := meanOf(fracs)
	if avg < 0.005 || avg > 0.03 {
		t.Errorf("fleet-average erased tail above Vth=34 is %.4f, want ~0.01 (0.005..0.03)", avg)
	}
	// Scaled to the real page: ~72k erased cells; the average tail must
	// comfortably exceed the 512-bit hiding budget the paper derives.
	if perRealPage := avg * 72192; perRealPage < 500 {
		t.Errorf("tail scaled to an 18048B page = %.0f cells, paper measured >= 700", perRealPage)
	}
}

// Paper §8: public data BER on a fresh chip ~3e-5.
func TestCalibrationPublicBER(t *testing.T) {
	m := ModelA().ScaleGeometry(4, 16, 8192)
	c := NewChip(m, 23)
	rng := rand.New(rand.NewPCG(23, 1))
	errs, bits := 0, 0
	for p := 0; p < m.PagesPerBlock; p++ {
		a := PageAddr{Block: 0, Page: p}
		data := randPageData(rng, m.PageBytes)
		if err := c.ProgramPage(a, data); err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadPage(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			errs += popcount(got[i] ^ data[i])
		}
		bits += len(got) * 8
	}
	ber := float64(errs) / float64(bits)
	// ~1e-6 .. 2e-4 brackets the paper's 3e-5 with sampling room on 1M bits.
	if ber > 2e-4 {
		t.Errorf("fresh public BER = %.2e, want <= 2e-4 (paper: 3e-5)", ber)
	}
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		n += int(b & 1)
		b >>= 1
	}
	return n
}

// Paper Fig 3: distributions shift right with PEC; by 3000 PEC the shift
// is visible (several normalized units) in both states.
func TestCalibrationWearShift(t *testing.T) {
	fresh, addrF := calibChip(t, 24, 0)
	worn, addrW := calibChip(t, 24, 3000)
	eF, pF := splitStates(t, fresh, addrF)
	eW, pW := splitStates(t, worn, addrW)
	dE := meanOf(eW) - meanOf(eF)
	dP := meanOf(pW) - meanOf(pF)
	if dE < 1.5 || dE > 20 {
		t.Errorf("erased mean shift over 3000 PEC = %.2f, want 1.5..20", dE)
	}
	if dP < 1.5 || dP > 20 {
		t.Errorf("programmed mean shift over 3000 PEC = %.2f, want 1.5..20", dP)
	}
}

// Chip-to-chip variation must be visible (Fig 2: "noticeable variations in
// the distributions of different samples") but small against state gaps.
func TestCalibrationSampleVariation(t *testing.T) {
	var means []float64
	for seed := uint64(30); seed < 34; seed++ {
		c, addrs := calibChip(t, seed, 0)
		e, _ := splitStates(t, c, addrs)
		means = append(means, meanOf(e))
	}
	lo, hi := means[0], means[0]
	for _, m := range means {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi-lo < 0.2 {
		t.Errorf("chip sample erased means span only %.3f units; expected visible variation", hi-lo)
	}
	if hi-lo > 15 {
		t.Errorf("chip sample erased means span %.1f units; implausibly wide", hi-lo)
	}
}

// Retention: worn cells leak much faster than fresh cells (Fig 11). The
// programmed state of a PEC-2000 block must lose visibly more charge over
// four months than a PEC-0 block.
func TestCalibrationRetentionWearCoupling(t *testing.T) {
	drop := func(pec int) float64 {
		c, addrs := calibChip(t, 25, pec)
		_, before := splitStates(t, c, addrs)
		c.AdvanceRetention(4 * RetentionMonth)
		_, after := splitStates(t, c, addrs)
		return meanOf(before) - meanOf(after)
	}
	d0 := drop(0)
	d2000 := drop(2000)
	if d0 < 0 {
		t.Errorf("fresh-block retention drop negative: %.3f", d0)
	}
	if d2000 < 2*d0 {
		t.Errorf("PEC-2000 retention drop %.3f not clearly above fresh drop %.3f", d2000, d0)
	}
}

// PP pulses must be coarse but effective: a cell's expected rise per pulse
// matches PPStepMean (times the mean lognormal gain), and enough pulses
// carry even slow cells past Vth=34 from the bare erased level — hiding in
// practice starts ~2 interference events higher, so this is the worst case.
func TestCalibrationPPStep(t *testing.T) {
	m := TestModel()
	c := NewChip(m, 26)
	a := PageAddr{Block: 0, Page: 0}
	cells := make([]int, m.CellsPerPage())
	for i := range cells {
		cells[i] = i
	}
	before, _ := c.ProbePage(a)
	for k := 0; k < 10; k++ {
		if err := c.PartialProgram(a, cells); err != nil {
			t.Fatal(err)
		}
	}
	mid, _ := c.ProbePage(a)
	var rise float64
	for i := range cells {
		rise += float64(mid[i]) - float64(before[i])
	}
	rise /= float64(len(cells))
	if rise < 5*m.PPStepMean || rise > 15*m.PPStepMean {
		t.Errorf("mean rise after 10 pulses = %.1f, want ~10 steps of %.1f", rise, m.PPStepMean)
	}
	for k := 0; k < 10; k++ {
		if err := c.PartialProgram(a, cells); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := c.ProbePage(a)
	crossed := 0
	for i := range cells {
		if after[i] >= 34 {
			crossed++
		}
	}
	if frac := float64(crossed) / float64(len(cells)); frac < 0.9 {
		t.Errorf("only %.3f of cells crossed Vth=34 after 20 unconditional pulses", frac)
	}
}

// AdvanceRetention with non-positive durations is a no-op.
func TestRetentionNoOp(t *testing.T) {
	c, addrs := calibChip(t, 27, 0)
	before, _ := c.ProbePage(addrs[0])
	c.AdvanceRetention(0)
	c.AdvanceRetention(-time.Hour)
	after, _ := c.ProbePage(addrs[0])
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("no-op retention changed state")
		}
	}
}
