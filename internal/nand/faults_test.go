package nand

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
)

// faultWorkload drives a chip through every command class and returns a
// probe transcript plus the final ledger, for bit-identity comparisons.
func faultWorkload(t *testing.T, c *Chip) ([]uint8, Ledger) {
	t.Helper()
	rng := rand.New(rand.NewPCG(9, 9))
	var probes []uint8
	if err := c.CycleBlock(0, 500); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		a := PageAddr{Block: 0, Page: p}
		if err := c.ProgramPage(a, randPageData(rng, c.Geometry().PageBytes)); err != nil {
			t.Fatal(err)
		}
		if err := c.PartialProgram(a, []int{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReadPage(a); err != nil {
			t.Fatal(err)
		}
		lv, err := c.ProbePage(a)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, lv...)
	}
	if err := c.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	return probes, c.Ledger()
}

// TestZeroFaultPlanMatchesNilPlan pins the tentpole transparency invariant:
// a chip carrying a zero-probability FaultPlan must be bit-identical to a
// chip with no plan at all — same voltages, same ledger — because the plan
// owns a private PRNG and a zero config never draws from it.
func TestZeroFaultPlanMatchesNilPlan(t *testing.T) {
	pristine := NewChip(TestModel(), 41)
	planned := NewChip(TestModel(), 41)
	planned.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 123}))

	wantProbes, wantLedger := faultWorkload(t, pristine)
	gotProbes, gotLedger := faultWorkload(t, planned)
	if !bytes.Equal(wantProbes, gotProbes) {
		t.Error("zero-fault plan perturbed cell voltages")
	}
	if wantLedger != gotLedger {
		t.Errorf("zero-fault plan perturbed the ledger: %+v != %+v", gotLedger, wantLedger)
	}
	if st := planned.FaultPlan().Stats(); st != (FaultStats{}) {
		t.Errorf("zero-fault plan injected faults: %+v", st)
	}
}

// TestBoundaryTypedErrors pins the public command surface's error taxonomy:
// out-of-range and negative arguments are typed errors, never panics.
func TestBoundaryTypedErrors(t *testing.T) {
	c := NewChip(TestModel(), 42)
	blocks := c.Geometry().Blocks
	for _, tc := range []struct {
		name string
		err  error
		want error
	}{
		{"erase negative", c.EraseBlock(-1), ErrBlockRange},
		{"erase past end", c.EraseBlock(blocks), ErrBlockRange},
		{"cycle negative block", c.CycleBlock(-1, 10), ErrBlockRange},
		{"cycle negative count", c.CycleBlock(0, -1), ErrNegativeCount},
		{"drop negative", c.DropBlockState(-1), ErrBlockRange},
		{"drop past end", c.DropBlockState(blocks + 67), ErrBlockRange},
		{"stress-cycle negative block", c.StressCycleBlock(-1, nil), ErrBlockRange},
		{"stress negative count", c.StressCells(PageAddr{}, []int{0}, -5), ErrNegativeCount},
	} {
		if !errors.Is(tc.err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, tc.err, tc.want)
		}
	}
}

// TestProgrammerErrorsStillPanic pins the other side of the boundary:
// invariant violations that only buggy code can produce stay panics.
func TestProgrammerErrorsStillPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	c := NewChip(TestModel(), 43)
	mustPanic("PEC out of range", func() { c.PEC(-1) })
	mustPanic("NewChip bad geometry", func() {
		m := TestModel()
		m.Blocks = 0
		NewChip(m, 1)
	})
}

func TestProgramFailGrowsBadBlock(t *testing.T) {
	c := NewChip(TestModel(), 44)
	c.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 1, ProgramFailProb: 1}))
	rng := rand.New(rand.NewPCG(1, 1))
	a := PageAddr{Block: 0, Page: 0}
	err := c.ProgramPage(a, randPageData(rng, c.Geometry().PageBytes))
	if !errors.Is(err, ErrProgramFailed) {
		t.Fatalf("program on failing device: %v, want ErrProgramFailed", err)
	}
	if !c.IsBadBlock(0) {
		t.Fatal("program status FAIL did not grow the block bad")
	}
	// The failed program left the page partially charged, not clean.
	lv, err := c.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for _, v := range lv {
		if v > 100 {
			high++
		}
	}
	if high == 0 {
		t.Error("aborted program left no residual charge")
	}
	// Further mutations are rejected; reads still work so firmware can
	// evacuate the block.
	if err := c.ProgramPage(PageAddr{Block: 0, Page: 1}, randPageData(rng, c.Geometry().PageBytes)); !errors.Is(err, ErrBadBlock) {
		t.Errorf("program to grown bad block: %v, want ErrBadBlock", err)
	}
	if err := c.EraseBlock(0); !errors.Is(err, ErrBadBlock) {
		t.Errorf("erase of grown bad block: %v, want ErrBadBlock", err)
	}
	if _, err := c.ReadPage(a); err != nil {
		t.Errorf("read of grown bad block failed: %v", err)
	}
	if got := c.GrownBadBlocks(); len(got) != 1 || got[0] != 0 {
		t.Errorf("GrownBadBlocks = %v, want [0]", got)
	}
	st := c.FaultPlan().Stats()
	if st.ProgramFails != 1 || st.GrownBad != 1 {
		t.Errorf("stats = %+v, want 1 program fail / 1 grown bad", st)
	}
}

func TestPPFailIsTransient(t *testing.T) {
	c := NewChip(TestModel(), 45)
	c.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 2, PPFailProb: 1}))
	a := PageAddr{Block: 0, Page: 0}
	before, err := c.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PartialProgram(a, []int{0, 1, 2}); !errors.Is(err, ErrProgramFailed) {
		t.Fatalf("pp pulse on failing device: %v, want ErrProgramFailed", err)
	}
	if c.IsBadBlock(0) {
		t.Error("transient pulse FAIL grew the block bad")
	}
	after, err := c.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed pulse moved charge")
	}
	if st := c.FaultPlan().Stats(); st.PPFails != 1 {
		t.Errorf("stats = %+v, want 1 pp fail", st)
	}
}

func TestEraseFailGrowsBadBlock(t *testing.T) {
	c := NewChip(TestModel(), 46)
	c.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 3, EraseFailProb: 1}))
	if err := c.EraseBlock(0); !errors.Is(err, ErrEraseFailed) {
		t.Fatalf("erase on failing device: %v, want ErrEraseFailed", err)
	}
	if !c.IsBadBlock(0) {
		t.Error("erase status FAIL did not grow the block bad")
	}
	if c.PEC(0) != 1 {
		t.Errorf("failed erase left PEC %d, want 1 (oxide still stressed)", c.PEC(0))
	}
}

// TestWearOutDeathPEC checks early wear-out: with BadBlockFrac 1 every
// block has a death point uniform in [1, RatedPEC], cycling across it fails
// with the PEC pinned at the death count, and the death point is a pure
// function of (plan seed, block) — independent of operation order.
func TestWearOutDeathPEC(t *testing.T) {
	rated := TestModel().RatedPEC
	deathOf := func(block int) int {
		c := NewChip(TestModel(), 47)
		c.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 4, BadBlockFrac: 1}))
		if err := c.CycleBlock(block, rated+1); !errors.Is(err, ErrEraseFailed) {
			t.Fatalf("cycling past rated life: %v, want ErrEraseFailed", err)
		}
		if !c.IsBadBlock(block) {
			t.Fatal("worn-out block not grown bad")
		}
		if st := c.FaultPlan().Stats(); st.WornOut != 1 {
			t.Fatalf("stats = %+v, want 1 worn out", st)
		}
		return c.PEC(block)
	}
	d0 := deathOf(0)
	if d0 < 1 || d0 > rated {
		t.Errorf("death PEC %d outside [1, %d]", d0, rated)
	}
	if again := deathOf(0); again != d0 {
		t.Errorf("death PEC not reproducible: %d then %d", d0, again)
	}
	// Reaching the same death point via a different op schedule (two hops
	// instead of one) must land identically.
	c := NewChip(TestModel(), 47)
	c.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 4, BadBlockFrac: 1}))
	if d0 > 1 {
		if err := c.CycleBlock(0, d0-1); err != nil {
			t.Fatalf("cycling below death point: %v", err)
		}
	}
	if err := c.EraseBlock(0); !errors.Is(err, ErrEraseFailed) {
		t.Fatalf("erase at death point: %v, want ErrEraseFailed", err)
	}
	if c.PEC(0) != d0 {
		t.Errorf("death via erase at PEC %d, via cycle at %d", c.PEC(0), d0)
	}
}

func TestReadDisturbBumpsErasedCells(t *testing.T) {
	c := NewChip(TestModel(), 48)
	c.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 5, ReadDisturbProb: 1}))
	a := PageAddr{Block: 0, Page: 0}
	before, err := c.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.ReadPage(a); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	sumBefore, sumAfter := 0, 0
	for i := range before {
		sumBefore += int(before[i])
		sumAfter += int(after[i])
	}
	if sumAfter <= sumBefore {
		t.Errorf("50 disturbed reads did not raise total charge (%d -> %d)", sumBefore, sumAfter)
	}
	if st := c.FaultPlan().Stats(); st.ReadDisturbs != 50 {
		t.Errorf("stats = %+v, want 50 disturb bursts", st)
	}
}

// TestArmedPowerLossTruncatesPP checks the crash-injection primitive:
// exactly k pulses land, the k+1st and everything after it fail with
// ErrPowerLoss, and the charge moved by the k pulses survives the outage.
func TestArmedPowerLossTruncatesPP(t *testing.T) {
	c := NewChip(TestModel(), 49)
	plan := NewFaultPlan(FaultConfig{Seed: 6})
	c.SetFaultPlan(plan)
	a := PageAddr{Block: 0, Page: 0}
	baseline, err := c.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}

	const k = 3
	plan.ArmPowerLossAfterPP(k)
	for i := 0; i < k; i++ {
		if err := c.PartialProgram(a, []int{7}); err != nil {
			t.Fatalf("pulse %d of %d failed early: %v", i+1, k, err)
		}
	}
	if err := c.PartialProgram(a, []int{7}); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("pulse %d: %v, want ErrPowerLoss", k+1, err)
	}
	if !plan.PowerLost() {
		t.Error("plan not latched power-lost")
	}
	// Every command class fails until power is restored.
	if _, err := c.ReadPage(a); !errors.Is(err, ErrPowerLoss) {
		t.Errorf("read during outage: %v", err)
	}
	if err := c.EraseBlock(1); !errors.Is(err, ErrPowerLoss) {
		t.Errorf("erase during outage: %v", err)
	}
	if _, err := c.ProbePage(a); !errors.Is(err, ErrPowerLoss) {
		t.Errorf("probe during outage: %v", err)
	}

	c.PowerCycle()
	after, err := c.ProbePage(a)
	if err != nil {
		t.Fatalf("probe after power cycle: %v", err)
	}
	if after[7] <= baseline[7] {
		t.Errorf("cell 7 level %d not above baseline %d: truncated pulses lost", after[7], baseline[7])
	}
	if st := plan.Stats(); st.PowerLosses != 1 {
		t.Errorf("stats = %+v, want 1 power loss", st)
	}
	// Disarmed after the cycle: further pulses run normally.
	if err := c.PartialProgram(a, []int{7}); err != nil {
		t.Errorf("pulse after power cycle: %v", err)
	}
}

func TestGrownBadBlocksPersistAcrossSaveLoad(t *testing.T) {
	c := NewChip(TestModel(), 50)
	c.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 7, EraseFailProb: 1}))
	if err := c.EraseBlock(2); !errors.Is(err, ErrEraseFailed) {
		t.Fatalf("seed erase fail: %v", err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.IsBadBlock(2) {
		t.Error("grown bad block lost across save/load")
	}
	rng := rand.New(rand.NewPCG(8, 8))
	if err := loaded.ProgramPage(PageAddr{Block: 2, Page: 0}, randPageData(rng, loaded.Geometry().PageBytes)); !errors.Is(err, ErrBadBlock) {
		t.Errorf("program to persisted bad block: %v, want ErrBadBlock", err)
	}
}
