package nand

import (
	"math"
	"time"
)

// RetentionMonth is the nominal month the retention model is calibrated in.
const RetentionMonth = 30 * 24 * time.Hour

// Lazy virtual-clock retention engine.
//
// The paper emulates months of retention by baking chips in an oven (§8);
// the simulator's equivalent used to walk every materialised cell on each
// AdvanceRetention, so experiment cost scaled as O(cells × bakes) and
// years-long aging studies were out of reach. Retention is now lazy:
//
//   - AdvanceRetention is an O(1) bump of a ledger-owned virtual clock
//     (Ledger.VirtualClock — physical age, preserved across ResetLedger).
//   - Each materialised page carries a decay anchor: retStart is the
//     virtual time its current charge life began (materialisation, or the
//     last wear event that changed the block's leak rate), retDone the
//     virtual time already folded into its stored voltages.
//   - The decay law is cumulative and closed-form. With
//     rate = LeakRateBase + LeakRatePEC2·(PEC/1000)² and months measured
//     from retStart,
//
//     D(t) = LeakScale · (1 − e^(−rate·months(t)))
//
//     a cell's level at virtual time t is
//     max(LeakFloor, v − f_i·(D(t) − D(retDone))) for cells above the
//     floor, where f_i = max(0, 1 + N_i·LeakJitter) is a per-cell leak
//     factor. Cells at or below the floor are pinned and never touched.
//
// Senses (read/probe, including the batched paths) evaluate the decayed
// levels through senseView, a cached pure function of the stored charge
// and the clock; mutating operations first fold pending decay into the
// stored voltages via settleForWrite and then move charge. Because the
// fold points are a pure function of the operation sequence — never of
// how many bakes happened in between — N small bakes are bit-identical
// to one big bake, and the lazy engine is bit-identical to the eager
// reference walk (SetEagerRetention), which merely precomputes the same
// views at bake time.
//
// The per-cell jitter N_i comes from SHA-256 seed-partitioned streams
// keyed by (chip seed, block, page, erase epoch) and expanded per cell by
// a splitmix64 mix — the same partitioned-stream scheme FaultPlan and the
// experiment engine use. Retention consumes nothing from the chip's
// operation-order PRNG, which is what makes laziness order-independent.

// viewStale marks a page's cached decayed view as invalid. The virtual
// clock is non-negative and strictly increasing, so it can never collide.
const viewStale = time.Duration(-1)

// AdvanceRetention ages the chip by d of power-off retention time: charge
// stored in every materialised cell relaxes toward the leak floor. The
// leak rate grows quadratically with block wear — "cells with higher PEC
// accumulate trapped charge and become more sensitive to leakage" (§8) —
// which is what makes hidden data, parked just above its reference
// threshold with no engineered guard band, degrade faster than public
// data (Fig 11).
//
// The bake itself is O(1): it advances the ledger's virtual clock and
// defers the decay arithmetic to the next sense of each page. In the
// eager reference mode (SetEagerRetention) the decayed views of all
// materialised pages are precomputed here instead; fully-erased blocks
// and floor-pinned pages are skipped in O(1).
func (c *Chip) AdvanceRetention(d time.Duration) {
	if d <= 0 {
		return
	}
	c.ledger.VirtualClock += d
	if !c.retEager {
		return
	}
	for b, bs := range c.blocks {
		if bs == nil || bs.live == 0 {
			continue
		}
		for p, ps := range bs.pages {
			if ps != nil {
				c.senseView(PageAddr{Block: b, Page: p}, bs, ps)
			}
		}
	}
}

// SetEagerRetention toggles the eager reference walk: when enabled,
// AdvanceRetention materialises the decayed view of every live page at
// bake time instead of deferring to the next sense. Results are
// bit-identical either way — the lazy engine is a pure memoisation of the
// same closed-form decay — so the flag exists for the equivalence suite
// and for benchmarking the walk the lazy engine replaced. The flag is
// not persisted by Save.
func (c *Chip) SetEagerRetention(eager bool) { c.retEager = eager }

// cumDrop is the cumulative mean charge drop D(dt) a page accumulates
// over dt of retention since its decay anchor, at the given wear level.
func (c *Chip) cumDrop(pec int, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	m := &c.model
	pecK := float64(pec) / 1000
	rate := m.LeakRateBase + m.LeakRatePEC2*pecK*pecK
	months := float64(dt) / float64(RetentionMonth)
	return m.LeakScale * (1 - math.Exp(-rate*months))
}

// retJitterBase derives the SHA-256 partitioned jitter stream for one
// (block, page, erase epoch). Keying by epoch gives every charge life a
// fresh, order-independent jitter pattern.
func (c *Chip) retJitterBase(block, page int, epoch uint64) uint64 {
	a, b := streamSeed(c.seed, "nand/retention/jitter", uint64(block), uint64(page), epoch)
	return a + b
}

// retJitter expands a page's jitter stream to cell i's normal deviate:
// a splitmix64 mix of (stream, cell) split into three 21-bit uniforms
// whose Irwin–Hall sum approximates N(0,1), bounded in (−3, 3). Leakage
// jitter is a noisy-process spread, not an adversarial distribution, so
// the bounded approximation is calibration-equivalent to the Gaussian it
// replaces — and being a pure function of position, it lets floor-pinned
// cells skip their draws entirely.
func retJitter(base, i uint64) float64 {
	x := base + i*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	const m = 1 << 21
	u := float64(x&(m-1)) + float64((x>>21)&(m-1)) + float64((x>>42)&(m-1))
	return (u/m - 1.5) * 2
}

// settleForWrite folds all decay pending up to the virtual clock into a
// page's stored voltages and invalidates the cached view. Every mutating
// operation calls it before moving charge, so mutations always act on the
// decayed ("current") levels and the fold points are a pure function of
// the operation sequence — the property that makes lazy and eager
// retention bit-identical.
func (c *Chip) settleForWrite(a PageAddr, bs *blockState, ps *pageState) {
	clock := c.ledger.VirtualClock
	if ps.retDone >= clock {
		return
	}
	d0 := c.cumDrop(bs.pec, ps.retDone-ps.retStart)
	d1 := c.cumDrop(bs.pec, clock-ps.retStart)
	ps.retDone = clock
	ps.viewDone = viewStale
	ps.viewPinned = false
	delta := d1 - d0
	if delta <= 0 {
		return
	}
	m := &c.model
	floor := float32(m.LeakFloor)
	base := c.retJitterBase(a.Block, a.Page, bs.epoch)
	jit := m.LeakJitter
	for i, v := range ps.v {
		if v <= floor {
			continue // pinned: no decay, no jitter draw
		}
		f := 1 + retJitter(base, uint64(i))*jit
		if f < 0 {
			f = 0
		}
		nv := v - float32(f*delta)
		if nv < floor {
			nv = floor
		}
		ps.v[i] = nv
	}
}

// senseView returns the page's cell levels as they stand at the virtual
// clock: the stored charge minus any decay not yet folded in. The decayed
// view is a pure function of (stored charge, anchor, clock), cached per
// page and recomputed only when the clock has moved — repeated senses
// after one bake cost a single cell walk, and pages whose view has fully
// pinned at the leak floor cost O(1) per bake even under the eager
// reference walk. The view must be treated as read-only; mutating paths
// go through settleForWrite instead.
func (c *Chip) senseView(a PageAddr, bs *blockState, ps *pageState) []float32 {
	clock := c.ledger.VirtualClock
	if ps.retDone >= clock {
		return ps.v
	}
	if ps.view != nil && (ps.viewDone == clock || ps.viewPinned) {
		ps.viewDone = clock
		return ps.view
	}
	d0 := c.cumDrop(bs.pec, ps.retDone-ps.retStart)
	d1 := c.cumDrop(bs.pec, clock-ps.retStart)
	delta := d1 - d0
	if delta <= 0 {
		return ps.v
	}
	if ps.view == nil {
		ps.view = make([]float32, len(ps.v))
	}
	m := &c.model
	floor := float32(m.LeakFloor)
	base := c.retJitterBase(a.Block, a.Page, bs.epoch)
	jit := m.LeakJitter
	pinned := true
	view := ps.view
	for i, v := range ps.v {
		if v <= floor {
			view[i] = v
			continue
		}
		f := 1 + retJitter(base, uint64(i))*jit
		if f < 0 {
			f = 0
		}
		nv := v - float32(f*delta)
		if nv < floor {
			nv = floor
		} else if nv > floor {
			pinned = false
		}
		view[i] = nv
	}
	ps.viewDone = clock
	ps.viewPinned = pinned
	return view
}

// settleBlockWear folds pending decay into every materialised page of a
// block and re-anchors their decay curves at the current virtual clock.
// Wear events that change a block's PEC while voltages stay in place
// (erase status FAIL, wear-out death, stress cycles) change the leak
// rate: folding first banks the decay already suffered on the old curve,
// re-anchoring starts the remaining life on the new one.
func (c *Chip) settleBlockWear(block int, bs *blockState) {
	clock := c.ledger.VirtualClock
	for p, ps := range bs.pages {
		if ps == nil {
			continue
		}
		c.settleForWrite(PageAddr{Block: block, Page: p}, bs, ps)
		ps.retStart = clock
	}
}
