package nand

import (
	"math"
	"time"
)

// RetentionMonth is the nominal month the retention model is calibrated in.
const RetentionMonth = 30 * 24 * time.Hour

// AdvanceRetention ages the chip by d of power-off retention time: charge
// stored in every materialised cell relaxes toward the leak floor. The
// leak rate grows quadratically with block wear — "cells with higher PEC
// accumulate trapped charge and become more sensitive to leakage" (§8) —
// which is what makes hidden data, parked just above its reference
// threshold with no engineered guard band, degrade faster than public
// data (Fig 11).
//
// The paper emulates months of retention by baking chips in an oven; this
// method is the simulator's equivalent of that accelerated-aging step.
func (c *Chip) AdvanceRetention(d time.Duration) {
	if d <= 0 {
		return
	}
	months := float64(d) / float64(RetentionMonth)
	m := &c.model
	for _, bs := range c.blocks {
		if bs == nil {
			continue
		}
		pecK := float64(bs.pec) / 1000
		rate := m.LeakRateBase + m.LeakRatePEC2*pecK*pecK
		drop := m.LeakScale * (1 - math.Exp(-rate*months))
		for _, ps := range bs.pages {
			if ps == nil {
				continue
			}
			floor := float32(m.LeakFloor)
			for i, v := range ps.v {
				if v <= floor {
					continue
				}
				// Per-cell jitter: leakage is itself a noisy process;
				// without it retention loss would be a clean
				// deterministic shift, which real chips do not show.
				d := drop * (1 + c.rng.NormFloat64()*m.LeakJitter)
				if d < 0 {
					d = 0
				}
				nv := v - float32(d)
				if nv < floor {
					nv = floor
				}
				ps.v[i] = nv
			}
		}
	}
}
