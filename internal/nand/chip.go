package nand

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Chip is one simulated NAND flash package. All methods are deterministic
// given the construction seed and the operation sequence; two chips built
// with different seeds model distinct physical samples of the same model
// (manufacturing variation), which is how the paper's "four sample chips"
// experiments are reproduced.
//
// # Concurrency
//
// Chip follows the Device concurrency contract (see device.go): not safe
// for concurrent use; distinct Chip instances share no mutable state, so
// concurrent goroutines may each drive their own chip freely.
type Chip struct {
	model      Model
	seed       uint64
	chipOffset float64 // per-chip process corner offset
	tailMult   float64 // per-chip heavy-tail mass multiplier
	heavyMean  float64 // per-chip heavy-tail decay scale
	progMult   float64 // per-chip programmed-state width multiplier
	src        *rand.PCG
	rng        *rand.Rand
	blocks     []*blockState
	ledger     Ledger
	faults     *FaultPlan   // nil = pristine device (see faults.go)
	bad        map[int]bool // grown bad blocks
	retEager   bool         // eager retention reference walk (see retention.go)
}

type blockState struct {
	pec         int
	epoch       uint64 // increments on every erase; seeds regeneration
	blockOffset float64
	tailMult    float64 // per-block heavy-tail mass multiplier
	pages       []*pageState
	// pendingInterf counts neighbour program events that occurred while
	// a page was not materialised; applied statistically on demand.
	pendingInterf []int
	// stress holds per-cell accumulated program-stress counts (the PT-HI
	// channel). Unlike voltages it models permanent oxide damage, so it
	// survives erases. Allocated lazily per page.
	stress [][]uint16
	// live counts materialised pages, so a fully-erased block costs O(1)
	// in the eager retention walk.
	live int
}

type pageState struct {
	v          []float32 // per-cell stored charge, normalized units (decay folded up to retDone)
	gain       []float32 // per-cell charge gain (programming speed)
	pageOffset float64
	programmed bool

	// Lazy retention bookkeeping (see retention.go). retStart anchors the
	// decay curve; retDone is the virtual time already folded into v; view
	// caches the decayed levels at viewDone, viewPinned marking a view
	// that has fully settled at the leak floor.
	retStart   time.Duration
	retDone    time.Duration
	view       []float32
	viewDone   time.Duration
	viewPinned bool
}

// Errors returned by chip operations. Program-before-erase is the classic
// NAND constraint: once a cell is charged its level can only be increased,
// so a full-page PROGRAM requires an erased page (§3).
var (
	ErrPageProgrammed = errors.New("nand: page already programmed (erase block first)")
	ErrBadDataLength  = errors.New("nand: data length does not match page size")
)

// NewChip builds a chip sample of the given model. Distinct seeds yield
// distinct physical samples with their own process variation.
func NewChip(model Model, seed uint64) *Chip {
	if err := model.Geometry.Validate(); err != nil {
		panic(err)
	}
	src := rand.NewPCG(seed, 0x5afe5afe)
	c := &Chip{
		model: model,
		seed:  seed,
		src:   src,
		rng:   rand.New(src),
	}
	c.chipOffset = c.rng.NormFloat64() * model.ChipSigma
	c.tailMult = math.Exp(c.rng.NormFloat64() * model.TailFracJitterChip)
	c.heavyMean = model.ErasedHeavyMean * math.Exp(c.rng.NormFloat64()*model.HeavyMeanJitterChip)
	c.progMult = math.Exp(c.rng.NormFloat64() * model.ProgSigmaJitterChip)
	c.blocks = make([]*blockState, model.Blocks)
	return c
}

// Model returns the chip's parameter set.
func (c *Chip) Model() Model { return c.model }

// Geometry returns the chip's layout.
func (c *Chip) Geometry() Geometry { return c.model.Geometry }

// Ledger returns a snapshot of the accumulated operation costs.
func (c *Chip) Ledger() Ledger { return c.ledger }

// ResetLedger zeroes the operation cost accounting. The virtual retention
// clock is physical age, not a cost, so it survives the reset.
func (c *Chip) ResetLedger() { c.ledger = Ledger{VirtualClock: c.ledger.VirtualClock} }

// PEC returns the program/erase cycle count of a block.
func (c *Chip) PEC(block int) int {
	return c.blockRef(block).pec
}

// --- internal state management -------------------------------------------

func (c *Chip) blockRef(b int) *blockState {
	if b < 0 || b >= len(c.blocks) {
		panic(fmt.Sprintf("nand: block %d out of range", b))
	}
	if c.blocks[b] == nil {
		bs := &blockState{
			pages:         make([]*pageState, c.model.PagesPerBlock),
			pendingInterf: make([]int, c.model.PagesPerBlock),
			stress:        make([][]uint16, c.model.PagesPerBlock),
		}
		// Block process offsets are fixed physical properties: derive
		// them from the chip seed and block number, not the op sequence.
		br := rand.New(rand.NewPCG(c.seed, 0xb10c<<16|uint64(b)))
		bs.blockOffset = br.NormFloat64() * c.model.BlockSigma
		bs.tailMult = math.Exp(br.NormFloat64() * c.model.TailFracJitterBlock)
		c.blocks[b] = bs
	}
	return c.blocks[b]
}

// pageRef materialises a page's analog state on first touch. Erased-state
// voltages are a pure function of (chip seed, block, page, erase epoch), so
// an untouched page costs nothing and regenerates identically.
func (c *Chip) pageRef(a PageAddr) *pageState {
	bs := c.blockRef(a.Block)
	if ps := bs.pages[a.Page]; ps != nil {
		return ps
	}
	m := &c.model
	cells := m.CellsPerPage()
	ps := &pageState{
		v:    make([]float32, cells),
		gain: make([]float32, cells),
	}

	// Fixed physical per-page properties: offset, tail mass, per-cell gain.
	pr := rand.New(rand.NewPCG(c.seed, 0x9a9e<<32|uint64(a.Block)<<16|uint64(a.Page)))
	ps.pageOffset = pr.NormFloat64() * m.PageSigma
	heavyFrac := m.ErasedHeavyFrac * c.tailMult * bs.tailMult * math.Exp(pr.NormFloat64()*m.TailFracJitterPage)
	for i := range ps.gain {
		ps.gain[i] = float32(math.Exp(pr.NormFloat64() * m.GainSigma))
	}

	// Erased-state voltages for the current erase epoch.
	er := rand.New(rand.NewPCG(c.seed^bs.epoch*0x9e3779b97f4a7c15,
		0xe7a5ed<<24|uint64(a.Block)<<12|uint64(a.Page)))
	base := m.ErasedMean + c.chipOffset + bs.blockOffset + ps.pageOffset + c.wearShift(bs)
	sigma := m.ErasedSigma + m.WearSigmaErasedPerK*float64(bs.pec)/1000
	for i := range ps.v {
		tail := m.ErasedTailMean
		if heavyFrac > 0 && er.Float64() < heavyFrac {
			tail = c.heavyMean
		}
		v := base + er.NormFloat64()*sigma + er.ExpFloat64()*tail
		if v < 0 {
			v = 0
		}
		ps.v[i] = float32(v)
	}

	// Apply interference from neighbour programs that happened while this
	// page was unmaterialised: k events approximate to one Gaussian with
	// k-scaled moments.
	if k := bs.pendingInterf[a.Page]; k > 0 {
		mean := float64(k) * m.InterfMean
		sd := math.Sqrt(float64(k)) * m.InterfSigma
		for i := range ps.v {
			d := mean + er.NormFloat64()*sd
			if d > 0 {
				ps.v[i] += float32(d)
			}
		}
		bs.pendingInterf[a.Page] = 0
	}

	// The page's decay curve is anchored at its materialisation time.
	ps.retStart = c.ledger.VirtualClock
	ps.retDone = ps.retStart
	ps.viewDone = viewStale
	bs.live++
	bs.pages[a.Page] = ps
	return ps
}

// wearShift is the mean erased-state right-shift for a block's PEC.
func (c *Chip) wearShift(bs *blockState) float64 {
	return c.model.WearShiftPerK * float64(bs.pec) / 1000
}

// progWearShift is the mean programmed-state right-shift for a block's PEC.
func (c *Chip) progWearShift(bs *blockState) float64 {
	return c.model.WearShiftProgPerK * float64(bs.pec) / 1000
}

// --- command surface -------------------------------------------------------

// EraseBlock erases a block: all cells return to the erased distribution,
// the block's PEC increments, and any hidden payload co-located with the
// data is physically destroyed (the paper's "almost instantaneous" hidden
// data destruction, §1). Under an attached FaultPlan the erase may report
// status FAIL (ErrEraseFailed) — leaving voltages in place and growing the
// block bad — or hit the block's wear-out death point.
func (c *Chip) EraseBlock(block int) error {
	if block < 0 || block >= len(c.blocks) {
		return fmt.Errorf("%w: block %d not in [0,%d)", ErrBlockRange, block, len(c.blocks))
	}
	if err := c.powerCheck(); err != nil {
		return err
	}
	if err := c.badCheck(block); err != nil {
		return err
	}
	bs := c.blockRef(block)
	if c.faults != nil {
		if c.faults.drawEraseFail() {
			// The failed erase still stresses the oxide: PEC advances but
			// voltages stay put and the block is grown bad. The PEC change
			// shifts the leak rate, so pending decay settles first.
			c.settleBlockWear(block, bs)
			bs.pec++
			c.markBad(block)
			c.recordErase()
			return fmt.Errorf("%w: block %d", ErrEraseFailed, block)
		}
		if d := c.faults.deathPEC(block, c.model.RatedPEC); d > 0 && bs.pec+1 >= d {
			c.settleBlockWear(block, bs)
			bs.pec++
			c.faults.stats.WornOut++
			c.markBad(block)
			c.recordErase()
			return fmt.Errorf("%w: block %d worn out at PEC %d", ErrEraseFailed, block, bs.pec)
		}
	}
	bs.pec++
	bs.epoch++
	for i := range bs.pages {
		bs.pages[i] = nil
		bs.pendingInterf[i] = 0
	}
	bs.live = 0
	c.recordErase()
	return nil
}

// CycleBlock fast-forwards wear on a block by n program/erase cycles of
// random data, leaving the block erased. It is the simulator's stand-in
// for the paper's pre-conditioning runs ("we repeated this process for 0
// to 3000 PEC") without paying for n full-block programs; the wear model
// applies identically. The ledger records only the final erase. If the
// fast-forward crosses the block's injected wear-out death point, the
// block dies there (ErrEraseFailed) with its PEC pinned at the death
// count; per-cycle erase-fail draws are not applied to fast-forwarded
// cycles.
func (c *Chip) CycleBlock(block, n int) error {
	if block < 0 || block >= len(c.blocks) {
		return fmt.Errorf("%w: block %d not in [0,%d)", ErrBlockRange, block, len(c.blocks))
	}
	if n < 0 {
		return fmt.Errorf("%w: cycle count %d", ErrNegativeCount, n)
	}
	if err := c.powerCheck(); err != nil {
		return err
	}
	if err := c.badCheck(block); err != nil {
		return err
	}
	bs := c.blockRef(block)
	if c.faults != nil {
		if d := c.faults.deathPEC(block, c.model.RatedPEC); d > 0 && bs.pec+n >= d {
			// Voltages stay in place while PEC jumps: settle pending decay
			// on the old leak rate first (see settleBlockWear).
			c.settleBlockWear(block, bs)
			bs.pec = d
			c.faults.stats.WornOut++
			c.markBad(block)
			c.recordErase()
			return fmt.Errorf("%w: block %d worn out at PEC %d", ErrEraseFailed, block, d)
		}
	}
	bs.pec += n
	bs.epoch++
	for i := range bs.pages {
		bs.pages[i] = nil
		bs.pendingInterf[i] = 0
	}
	bs.live = 0
	c.recordErase()
	return nil
}

// DropBlockState releases the materialised analog state of a block without
// touching PEC or logical content semantics. This is a simulator-only
// affordance for long experiment sweeps that probe a block once and never
// revisit it; the next access regenerates the block as freshly erased.
// Production code must use EraseBlock.
func (c *Chip) DropBlockState(block int) error {
	if block < 0 || block >= len(c.blocks) {
		return fmt.Errorf("%w: block %d not in [0,%d)", ErrBlockRange, block, len(c.blocks))
	}
	bs := c.blockRef(block)
	bs.epoch++
	for i := range bs.pages {
		bs.pages[i] = nil
		bs.pendingInterf[i] = 0
	}
	bs.live = 0
	return nil
}

// ProgramPage programs a full page: cells with data bit 0 are charged to
// the programmed state; bit-1 cells stay erased (low voltage means logical
// '1' on NAND, §5.3). Data is MSB-first: cell i holds bit 7-(i%8) of
// data[i/8]. Programming interferes with adjacent pages (Fig 2a).
func (c *Chip) ProgramPage(a PageAddr, data []byte) error {
	if err := c.model.check(a); err != nil {
		return err
	}
	if len(data) != c.model.PageBytes {
		return fmt.Errorf("%w: got %d bytes, page holds %d", ErrBadDataLength, len(data), c.model.PageBytes)
	}
	if err := c.powerCheck(); err != nil {
		return err
	}
	if err := c.badCheck(a.Block); err != nil {
		return err
	}
	ps := c.pageRef(a)
	if ps.programmed {
		return fmt.Errorf("%w: %v", ErrPageProgrammed, a)
	}
	bs := c.blockRef(a.Block)
	c.settleForWrite(a, bs, ps)
	m := &c.model
	base := m.ProgramTarget + c.chipOffset + bs.blockOffset + ps.pageOffset + c.progWearShift(bs)
	sigma := (m.ProgramSigma + m.WearSigmaProgPerK*float64(bs.pec)/1000) * c.progMult
	if c.faults != nil && c.faults.drawProgramFail() {
		// Program status FAIL: the aborted internal ISPP sequence leaves
		// the page partially, unreliably charged — each 0-cell lands with
		// only ~half probability and doubled spread — and the block is
		// grown bad. All noise comes from the plan's private stream so the
		// chip's own stream is untouched.
		frng := c.faults.rng
		for i := range ps.v {
			if dataBit(data, i) == 0 && frng.Float64() < 0.5 {
				v := base + frng.NormFloat64()*2*sigma
				if float32(v) > ps.v[i] {
					ps.v[i] = float32(v)
				}
			}
		}
		ps.programmed = true
		c.markBad(a.Block)
		c.recordProgram()
		return fmt.Errorf("%w: %v", ErrProgramFailed, a)
	}
	for i := range ps.v {
		if dataBit(data, i) == 0 {
			v := base + c.rng.NormFloat64()*sigma
			if float32(v) > ps.v[i] { // charge only ever increases
				ps.v[i] = float32(v)
			}
		}
	}
	ps.programmed = true
	c.interfereNeighbors(a)
	c.recordProgram()
	return nil
}

// interfereNeighbors applies program interference from programming page a
// to the physically adjacent pages: erased cells of materialised
// neighbours gain a little charge; unmaterialised neighbours accumulate a
// pending event folded in at materialisation.
func (c *Chip) interfereNeighbors(a PageAddr) {
	bs := c.blockRef(a.Block)
	m := &c.model
	for _, np := range []int{a.Page - 1, a.Page + 1} {
		if np < 0 || np >= m.PagesPerBlock {
			continue
		}
		ns := bs.pages[np]
		if ns == nil {
			bs.pendingInterf[np]++
			continue
		}
		c.settleForWrite(PageAddr{Block: a.Block, Page: np}, bs, ns)
		for i := range ns.v {
			if ns.v[i] < float32(m.InterfCutoff) { // low-charge cells couple
				d := m.InterfMean + c.rng.NormFloat64()*m.InterfSigma
				if d > 0 {
					ns.v[i] += float32(d)
				}
			}
		}
	}
}

// ReadPage reads the page at the default public reference threshold. This
// is the only operation a normal user needs; it requires no key material
// and is unaffected by hidden data (§5.3).
func (c *Chip) ReadPage(a PageAddr) ([]byte, error) {
	return c.ReadPageRef(a, c.model.ReadRef)
}

// ReadPageInto is ReadPage into a caller-owned buffer of exactly PageBytes
// bytes, which is overwritten in full. It performs no allocations.
func (c *Chip) ReadPageInto(a PageAddr, out []byte) error {
	return c.ReadPageRefInto(a, c.model.ReadRef, out)
}

// ReadPageRef reads the page comparing each cell against an arbitrary
// reference threshold voltage. This models the vendor-specific command
// that "shifts the reference threshold voltage for reading" which VT-HI
// uses to extract hidden bits with a single, non-destructive read (§1, §5.3).
func (c *Chip) ReadPageRef(a PageAddr, ref float64) ([]byte, error) {
	out := make([]byte, c.model.PageBytes)
	if err := c.ReadPageRefInto(a, ref, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPageRefInto is ReadPageRef into a caller-owned buffer of exactly
// PageBytes bytes, which is overwritten in full. The sense pass is
// vectorised: one output byte is assembled per eight cells, replacing the
// original per-bit read-modify-write walk.
func (c *Chip) ReadPageRefInto(a PageAddr, ref float64, out []byte) error {
	if err := c.model.check(a); err != nil {
		return err
	}
	if len(out) != c.model.PageBytes {
		return fmt.Errorf("%w: got %d bytes, page holds %d", ErrBadDataLength, len(out), c.model.PageBytes)
	}
	if err := c.powerCheck(); err != nil {
		return err
	}
	bs := c.blockRef(a.Block)
	if bs.pages[a.Page] == nil && bs.pendingInterf[a.Page] == 0 && ref > c.maxErasedLikely() {
		// Fast path: untouched erased page reads as all '1' at any
		// reference comfortably above the erased distribution.
		for i := range out {
			out[i] = 0xFF
		}
		c.recordRead()
		c.applyReadDisturb(a)
		return nil
	}
	ps := c.pageRef(a)
	rf := float32(ref)
	v := c.senseView(a, bs, ps)
	// CellsPerPage is always a multiple of 8 (PageBytes*8), so the page
	// divides exactly into byte groups.
	for base := 0; base < len(v); base += 8 {
		g := v[base : base+8 : base+8]
		var b byte
		if g[0] < rf {
			b |= 1 << 7
		}
		if g[1] < rf {
			b |= 1 << 6
		}
		if g[2] < rf {
			b |= 1 << 5
		}
		if g[3] < rf {
			b |= 1 << 4
		}
		if g[4] < rf {
			b |= 1 << 3
		}
		if g[5] < rf {
			b |= 1 << 2
		}
		if g[6] < rf {
			b |= 1 << 1
		}
		if g[7] < rf {
			b |= 1
		}
		out[base>>3] = b
	}
	c.recordRead()
	c.applyReadDisturb(a)
	return nil
}

// ReadPages reads count consecutive pages starting at start into out
// (count*PageBytes bytes) at the default public reference, stopping at the
// first failing page. It returns the number of pages fully read; on error,
// out holds valid data for exactly that many leading pages. The pages are
// sensed in ascending order through the same per-page path as ReadPage, so
// results and chip state evolution are bit-identical to a ReadPage loop.
func (c *Chip) ReadPages(start PageAddr, count int, out []byte) (int, error) {
	if count < 0 {
		return 0, fmt.Errorf("%w: page count %d", ErrNegativeCount, count)
	}
	pb := c.model.PageBytes
	if len(out) < count*pb {
		return 0, fmt.Errorf("%w: got %d bytes, %d pages need %d", ErrBadDataLength, len(out), count, count*pb)
	}
	for p := 0; p < count; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		if err := c.ReadPageInto(a, out[p*pb:(p+1)*pb]); err != nil {
			return p, err
		}
	}
	return count, nil
}

// ProgramPages programs consecutive pages starting at start with data
// (a whole number of page images), stopping at the first failing page. It
// returns the number of pages fully programmed. Pages are programmed in
// ascending order through the same path as ProgramPage, so interference
// and noise draws are bit-identical to a ProgramPage loop.
func (c *Chip) ProgramPages(start PageAddr, data []byte) (int, error) {
	pb := c.model.PageBytes
	if len(data)%pb != 0 {
		return 0, fmt.Errorf("%w: got %d bytes, not a multiple of page size %d", ErrBadDataLength, len(data), pb)
	}
	count := len(data) / pb
	for p := 0; p < count; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		if err := c.ProgramPage(a, data[p*pb:(p+1)*pb]); err != nil {
			return p, err
		}
	}
	return count, nil
}

// maxErasedLikely bounds the erased distribution for the fast read path.
func (c *Chip) maxErasedLikely() float64 {
	m := &c.model
	return m.ErasedMean + 2*m.InterfMean + 8*m.ErasedSigma + 12*m.ErasedTailMean +
		6*m.InterfSigma + 3*(m.ChipSigma+m.BlockSigma+m.PageSigma) +
		m.WearShiftPerK*float64(m.RatedPEC)/1000
}

// NeighborPrograms returns how many program operations have hit the pages
// physically adjacent to a since the block was last erased. Firmware knows
// this trivially (it issued the programs); VT-HI's vendor-supported mode
// uses it to compensate the hidden read reference for accumulated program
// interference.
func (c *Chip) NeighborPrograms(a PageAddr) (int, error) {
	if err := c.model.check(a); err != nil {
		return 0, err
	}
	bs := c.blockRef(a.Block)
	n := 0
	for _, np := range []int{a.Page - 1, a.Page + 1} {
		if np < 0 || np >= c.model.PagesPerBlock {
			continue
		}
		if ps := bs.pages[np]; ps != nil && ps.programmed {
			n++
		}
	}
	return n, nil
}

// FineProgram charges each listed cell to at least the target level with
// controller-grade precision, in a single internal ISPP sequence. This is
// the vendor-support operation §6.2 argues for ("an in-controller
// implementation ... could likely program hidden data in fewer programming
// steps"); it is not reachable through the public ONFI command set, which
// is why the paper's unmodified-device prototype falls back to iterated
// coarse PartialProgram pulses. Ledger cost: one program operation.
func (c *Chip) FineProgram(a PageAddr, cells []int, target float64) error {
	if err := c.model.check(a); err != nil {
		return err
	}
	if err := c.powerCheck(); err != nil {
		return err
	}
	if err := c.badCheck(a.Block); err != nil {
		return err
	}
	if c.faults != nil && c.faults.drawProgramFail() {
		// The in-controller ISPP sequence aborts before moving charge;
		// the block is grown bad like any other program status FAIL.
		c.markBad(a.Block)
		c.recordProgram()
		return fmt.Errorf("%w: %v (fine program)", ErrProgramFailed, a)
	}
	ps := c.pageRef(a)
	c.settleForWrite(a, c.blockRef(a.Block), ps)
	m := &c.model
	for _, i := range cells {
		if i < 0 || i >= len(ps.v) {
			return fmt.Errorf("nand: cell %d out of range [0,%d)", i, len(ps.v))
		}
		v := target + math.Abs(c.rng.NormFloat64())*m.FineSigma
		if float32(v) > ps.v[i] {
			ps.v[i] = float32(v)
		}
	}
	c.recordProgram()
	return nil
}

// ProbePage measures the per-cell voltage of a page, quantised to the
// normalized integer levels 0..255 the real characterisation interface
// exposes (negative voltage is not measurable; paper §4 footnote). This is
// the adversary's strongest tool and the basis of chip characterisation.
func (c *Chip) ProbePage(a PageAddr) ([]uint8, error) {
	out := make([]uint8, c.model.CellsPerPage())
	if err := c.ProbePageInto(a, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ProbePageInto is ProbePage into a caller-owned buffer of exactly
// CellsPerPage bytes, which is overwritten in full. It performs no
// allocations.
func (c *Chip) ProbePageInto(a PageAddr, out []uint8) error {
	if err := c.model.check(a); err != nil {
		return err
	}
	if len(out) != c.model.CellsPerPage() {
		return fmt.Errorf("%w: got %d levels, page has %d cells", ErrBadDataLength, len(out), c.model.CellsPerPage())
	}
	if err := c.powerCheck(); err != nil {
		return err
	}
	bs := c.blockRef(a.Block)
	ps := c.pageRef(a)
	for i, v := range c.senseView(a, bs, ps) {
		q := int(v + 0.5)
		if q < 0 {
			q = 0
		} else if q > 255 {
			q = 255
		}
		out[i] = uint8(q)
	}
	c.recordProbe()
	return nil
}

// ProbeVoltages probes count consecutive pages starting at start into out
// (count*CellsPerPage levels), stopping at the first failing page. It
// returns the number of pages fully probed; on error, out holds valid
// levels for exactly that many leading pages. The quantisation matches
// ProbePage exactly.
func (c *Chip) ProbeVoltages(start PageAddr, count int, out []uint8) (int, error) {
	if count < 0 {
		return 0, fmt.Errorf("%w: page count %d", ErrNegativeCount, count)
	}
	cp := c.model.CellsPerPage()
	if len(out) < count*cp {
		return 0, fmt.Errorf("%w: got %d levels, %d pages need %d", ErrBadDataLength, len(out), count, count*cp)
	}
	for p := 0; p < count; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		if err := c.ProbePageInto(a, out[p*cp:(p+1)*cp]); err != nil {
			return p, err
		}
	}
	return count, nil
}

// PartialProgram applies one partial-programming pulse — a PROGRAM command
// aborted midway (§1) — to the listed cells of a page. Each pulse adds a
// coarse, noisy charge increment scaled by the cell's intrinsic gain and
// slowed by accumulated stress. Pulses disturb a small fraction of cells
// in adjacent pages (the interference §6.3 measures via page intervals).
func (c *Chip) PartialProgram(a PageAddr, cells []int) error {
	if err := c.model.check(a); err != nil {
		return err
	}
	if c.faults != nil {
		// The armed-power-loss gate counts successful pulses, so it sits
		// ahead of every other fault draw.
		if err := c.faults.ppGate(); err != nil {
			return fmt.Errorf("%w: partial program %v truncated", err, a)
		}
		if err := c.badCheck(a.Block); err != nil {
			return err
		}
		if c.faults.drawPPFail() {
			// Transient pulse FAIL: status reports failure, no charge
			// moves, the block stays good — a retry may succeed.
			c.recordPP()
			return fmt.Errorf("%w: pulse at %v", ErrProgramFailed, a)
		}
	}
	ps := c.pageRef(a)
	bs := c.blockRef(a.Block)
	c.settleForWrite(a, bs, ps)
	stress := bs.stress[a.Page]
	stepSigma, maxStep := c.ppNoise(bs)
	for _, i := range cells {
		if i < 0 || i >= len(ps.v) {
			return fmt.Errorf("nand: cell %d out of range [0,%d)", i, len(ps.v))
		}
		c.ppPulse(ps, stress, stepSigma, maxStep, i)
	}
	c.disturbNeighbors(a)
	c.recordPP()
	return nil
}

// PartialProgramPattern is PartialProgram driven by a full page pattern
// instead of a cell list: every cell whose pattern bit is 0 receives one
// pulse (the PROGRAM data convention — 0 drives charge). Cells are pulsed
// in ascending order, so the noise draws are bit-identical to
// PartialProgram with the equivalent ascending cell list. This is the
// zero-alloc entry the ONFI bus uses: the latched data register IS the
// pattern, so no intermediate cell list need be built.
func (c *Chip) PartialProgramPattern(a PageAddr, pattern []byte) error {
	if err := c.model.check(a); err != nil {
		return err
	}
	if len(pattern) != c.model.PageBytes {
		return fmt.Errorf("%w: got %d pattern bytes, page holds %d", ErrBadDataLength, len(pattern), c.model.PageBytes)
	}
	if c.faults != nil {
		// Same fault-draw order as PartialProgram: armed-power-loss gate,
		// grown-bad check, transient pulse FAIL.
		if err := c.faults.ppGate(); err != nil {
			return fmt.Errorf("%w: partial program %v truncated", err, a)
		}
		if err := c.badCheck(a.Block); err != nil {
			return err
		}
		if c.faults.drawPPFail() {
			c.recordPP()
			return fmt.Errorf("%w: pulse at %v", ErrProgramFailed, a)
		}
	}
	ps := c.pageRef(a)
	bs := c.blockRef(a.Block)
	c.settleForWrite(a, bs, ps)
	stress := bs.stress[a.Page]
	stepSigma, maxStep := c.ppNoise(bs)
	for base := 0; base < len(pattern); base++ {
		pb := pattern[base]
		if pb == 0xFF {
			continue // no cells selected in this byte
		}
		for k := 0; k < 8; k++ {
			if pb&(1<<uint(7-k)) == 0 {
				c.ppPulse(ps, stress, stepSigma, maxStep, base*8+k)
			}
		}
	}
	c.disturbNeighbors(a)
	c.recordPP()
	return nil
}

// ppNoise returns the wear-scaled pulse noise parameters for a block.
func (c *Chip) ppNoise(bs *blockState) (stepSigma, maxStep float64) {
	m := &c.model
	stepSigma = m.PPStepSigma * (1 + m.PPNoisePerK*float64(bs.pec)/1000)
	maxStep = 3 * m.PPStepMean // one aborted program moves bounded charge
	return stepSigma, maxStep
}

// ppPulse applies one partial-programming charge increment to cell i. The
// step is drawn for every selected cell — even when the draw comes out
// non-positive and moves no charge — so batched and list-based callers
// consume the chip's noise stream identically.
func (c *Chip) ppPulse(ps *pageState, stress []uint16, stepSigma, maxStep float64, i int) {
	m := &c.model
	step := m.PPStepMean + c.rng.NormFloat64()*stepSigma
	if step <= 0 {
		return
	}
	g := float64(ps.gain[i])
	if stress != nil {
		g /= 1 + m.StressSlowdown*float64(stress[i])
	}
	eff := step * g
	if eff > maxStep {
		eff = maxStep
	}
	ps.v[i] += float32(eff)
}

// disturbNeighbors models the collateral damage of one PP pulse: a sparse
// random set of victim cells in each adjacent materialised page receives
// signed jitter (programmed victims) or a small positive charge bump
// (erased victims).
func (c *Chip) disturbNeighbors(a PageAddr) {
	bs := c.blockRef(a.Block)
	m := &c.model
	cells := m.CellsPerPage()
	nVictims := int(m.PPDisturbVictims * float64(cells))
	if nVictims < 1 {
		nVictims = 1
	}
	for _, np := range []int{a.Page - 1, a.Page + 1} {
		if np < 0 || np >= m.PagesPerBlock {
			continue
		}
		ns := bs.pages[np]
		if ns == nil {
			continue // erased, unmaterialised: regenerates fresh anyway
		}
		c.settleForWrite(PageAddr{Block: a.Block, Page: np}, bs, ns)
		for k := 0; k < nVictims; k++ {
			i := c.rng.IntN(cells)
			if ns.v[i] >= float32(m.InterfCutoff) {
				ns.v[i] += float32(c.rng.NormFloat64() * m.PPDisturbSigma)
			} else {
				d := math.Abs(c.rng.NormFloat64()) * m.PPDisturbErasedMean
				ns.v[i] += float32(d)
			}
		}
	}
}

// StressCycleBlock performs one full program/erase cycle over a block
// whose only purpose is accumulating program stress on chosen cells: each
// page is programmed with a pattern charging the listed cells, then the
// block is erased. Every listed cell gains one stress count; the block
// gains one PEC. This is the unit operation of the PT-HI baseline's
// encode, which repeats it hundreds of times ("several
// hundreds-to-thousands of normal programming cycles", §2) — and is why
// PT-HI burns device lifetime two orders of magnitude faster than VT-HI.
// The ledger is billed PagesPerBlock programs plus one erase, exactly the
// cost model behind the paper's §8 PT-HI throughput arithmetic.
func (c *Chip) StressCycleBlock(block int, cellsPerPage [][]int) error {
	if block < 0 || block >= len(c.blocks) {
		return fmt.Errorf("%w: block %d not in [0,%d)", ErrBlockRange, block, len(c.blocks))
	}
	if len(cellsPerPage) > c.model.PagesPerBlock {
		return fmt.Errorf("nand: %d page patterns for %d pages", len(cellsPerPage), c.model.PagesPerBlock)
	}
	if err := c.powerCheck(); err != nil {
		return err
	}
	if err := c.badCheck(block); err != nil {
		return err
	}
	bs := c.blockRef(block)
	cells := c.model.CellsPerPage()
	for p := 0; p < c.model.PagesPerBlock; p++ {
		if p < len(cellsPerPage) && len(cellsPerPage[p]) > 0 {
			if bs.stress[p] == nil {
				bs.stress[p] = make([]uint16, cells)
			}
			st := bs.stress[p]
			for _, i := range cellsPerPage[p] {
				if i < 0 || i >= cells {
					return fmt.Errorf("nand: cell %d out of range [0,%d)", i, cells)
				}
				if st[i] < math.MaxUint16 {
					st[i]++
				}
			}
		}
		// The full block is programmed on every stress cycle, pattern
		// or not — the cost model charges every page.
		c.recordProgram()
	}
	// The erase that completes the cycle: voltages reset, wear advances.
	// The PEC change shifts the leak rate while materialised voltages may
	// survive (wear-out death below), so pending decay settles first.
	c.settleBlockWear(block, bs)
	bs.pec++
	if c.faults != nil {
		if d := c.faults.deathPEC(block, c.model.RatedPEC); d > 0 && bs.pec >= d {
			c.faults.stats.WornOut++
			c.markBad(block)
			c.recordErase()
			return fmt.Errorf("%w: block %d worn out at PEC %d", ErrEraseFailed, block, bs.pec)
		}
	}
	bs.epoch++
	for i := range bs.pages {
		bs.pages[i] = nil
		bs.pendingInterf[i] = 0
	}
	bs.live = 0
	c.recordErase()
	return nil
}

// StressCells applies n program-stress cycles to the listed cells without
// changing their logical content; this is the bulk equivalent of the
// repeated program pulses the PT-HI baseline uses to permanently slow
// cells. Stress survives erases (it models oxide damage). The ledger is
// charged n partial programs.
func (c *Chip) StressCells(a PageAddr, cells []int, n int) error {
	if err := c.model.check(a); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("%w: stress count %d", ErrNegativeCount, n)
	}
	if err := c.powerCheck(); err != nil {
		return err
	}
	if err := c.badCheck(a.Block); err != nil {
		return err
	}
	bs := c.blockRef(a.Block)
	if bs.stress[a.Page] == nil {
		bs.stress[a.Page] = make([]uint16, c.model.CellsPerPage())
	}
	st := bs.stress[a.Page]
	for _, i := range cells {
		if i < 0 || i >= len(st) {
			return fmt.Errorf("nand: cell %d out of range [0,%d)", i, len(st))
		}
		v := int(st[i]) + n
		if v > math.MaxUint16 {
			v = math.MaxUint16
		}
		st[i] = uint16(v)
	}
	for k := 0; k < n; k++ {
		c.recordPP()
	}
	return nil
}

// dataBit extracts cell i's logical bit from page data (MSB first).
func dataBit(data []byte, i int) byte {
	return (data[i/8] >> uint(7-i%8)) & 1
}
