package nand

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestNeighborPrograms(t *testing.T) {
	c := NewChip(TestModel(), 30)
	rng := rand.New(rand.NewPCG(1, 1))
	a := PageAddr{Block: 0, Page: 2}
	n, err := c.NeighborPrograms(a)
	if err != nil || n != 0 {
		t.Fatalf("fresh page: n=%d err=%v", n, err)
	}
	if err := c.ProgramPage(PageAddr{Block: 0, Page: 1}, randPageData(rng, c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	if n, _ = c.NeighborPrograms(a); n != 1 {
		t.Fatalf("one neighbour programmed: n=%d", n)
	}
	if err := c.ProgramPage(PageAddr{Block: 0, Page: 3}, randPageData(rng, c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	if n, _ = c.NeighborPrograms(a); n != 2 {
		t.Fatalf("both neighbours programmed: n=%d", n)
	}
	// Edge page has only one physical neighbour.
	edge := PageAddr{Block: 0, Page: 0}
	if n, _ = c.NeighborPrograms(edge); n != 1 {
		t.Fatalf("edge page: n=%d, want 1", n)
	}
	if _, err := c.NeighborPrograms(PageAddr{Block: -1}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestFineProgramPlacesPrecisely(t *testing.T) {
	c := NewChip(TestModel(), 31)
	a := PageAddr{Block: 0, Page: 0}
	cells := []int{5, 100, 2000}
	const target = 40.0
	if err := c.FineProgram(a, cells, target); err != nil {
		t.Fatal(err)
	}
	lv, _ := c.ProbePage(a)
	for _, i := range cells {
		v := float64(lv[i])
		if v < target-1 || v > target+5 {
			t.Errorf("cell %d at %.0f, want tightly above %.0f", i, v, target)
		}
	}
	// Cells already above the target must not move down.
	if err := c.FineProgram(a, cells, 20); err != nil {
		t.Fatal(err)
	}
	lv2, _ := c.ProbePage(a)
	for _, i := range cells {
		if lv2[i] < lv[i] {
			t.Errorf("cell %d moved down: %d -> %d", i, lv[i], lv2[i])
		}
	}
	if err := c.FineProgram(a, []int{-1}, 40); err == nil {
		t.Error("bad cell index accepted")
	}
	if err := c.FineProgram(PageAddr{Block: 1 << 20}, []int{0}, 40); err == nil {
		t.Error("bad address accepted")
	}
}

func TestFineProgramLedger(t *testing.T) {
	c := NewChip(TestModel(), 32)
	before := c.Ledger()
	if err := c.FineProgram(PageAddr{Block: 0, Page: 0}, []int{1, 2}, 40); err != nil {
		t.Fatal(err)
	}
	cost := c.Ledger().Sub(before)
	if cost.Programs != 1 {
		t.Fatalf("fine program billed %d programs, want 1", cost.Programs)
	}
}

func TestStressCycleBlockSemantics(t *testing.T) {
	c := NewChip(TestModel(), 33)
	g := c.Geometry()
	patterns := make([][]int, g.PagesPerBlock)
	patterns[0] = []int{1, 2, 3}
	before := c.Ledger()
	if err := c.StressCycleBlock(0, patterns); err != nil {
		t.Fatal(err)
	}
	cost := c.Ledger().Sub(before)
	if cost.Programs != int64(g.PagesPerBlock) {
		t.Errorf("billed %d programs, want %d (whole block per cycle)", cost.Programs, g.PagesPerBlock)
	}
	if cost.Erases != 1 {
		t.Errorf("billed %d erases, want 1", cost.Erases)
	}
	if c.PEC(0) != 1 {
		t.Errorf("PEC = %d, want 1", c.PEC(0))
	}
	// Errors.
	if err := c.StressCycleBlock(-1, patterns); err == nil {
		t.Error("bad block accepted")
	}
	badPattern := make([][]int, g.PagesPerBlock)
	badPattern[0] = []int{-1}
	if err := c.StressCycleBlock(0, badPattern); err == nil {
		t.Error("bad cell accepted")
	}
	tooMany := make([][]int, g.PagesPerBlock+1)
	if err := c.StressCycleBlock(0, tooMany); err == nil {
		t.Error("oversized pattern list accepted")
	}
}

func TestStressSurvivesErase(t *testing.T) {
	c := NewChip(TestModel(), 34)
	a := PageAddr{Block: 0, Page: 0}
	if err := c.StressCells(a, []int{7}, 500); err != nil {
		t.Fatal(err)
	}
	if err := c.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	// Stress is oxide damage: the stressed cell must still charge slower
	// than an unstressed one after the erase.
	const pulses = 8
	for k := 0; k < pulses; k++ {
		if err := c.PartialProgram(a, []int{7, 8}); err != nil {
			t.Fatal(err)
		}
	}
	lv, _ := c.ProbePage(a)
	if lv[7] >= lv[8] {
		// Gains differ per cell; compare against the page average of
		// unstressed cells instead of a single neighbour when close.
		t.Logf("single-cell comparison inconclusive (%d vs %d); widening", lv[7], lv[8])
		cells := make([]int, 64)
		for i := range cells {
			cells[i] = 100 + i
		}
		for k := 0; k < pulses; k++ {
			if err := c.PartialProgram(a, cells); err != nil {
				t.Fatal(err)
			}
		}
		lv, _ = c.ProbePage(a)
		sum := 0
		for _, i := range cells {
			sum += int(lv[i])
		}
		if int(lv[7]) >= sum/len(cells) {
			t.Errorf("stressed cell (%d) charged as fast as unstressed average (%d)", lv[7], sum/len(cells))
		}
	}
}

func TestDropBlockStateRegeneratesErased(t *testing.T) {
	c := NewChip(TestModel(), 35)
	rng := rand.New(rand.NewPCG(2, 2))
	a := PageAddr{Block: 0, Page: 0}
	if err := c.ProgramPage(a, randPageData(rng, c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	pec := c.PEC(0)
	if err := c.DropBlockState(0); err != nil {
		t.Fatal(err)
	}
	if c.PEC(0) != pec {
		t.Error("DropBlockState changed PEC")
	}
	got, err := c.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatal("dropped block did not regenerate as erased")
		}
	}
}

func TestMLCStatesAreFour(t *testing.T) {
	c := NewChip(TestModel(), 36)
	a := PageAddr{Block: 0, Page: 0}
	g := c.Geometry()
	// Force each of the four (lower, upper) combinations into known cells
	// by crafting bit patterns: byte 0b00110101... simpler: all four
	// combos via two bytes.
	lower := make([]byte, g.PageBytes)
	upper := make([]byte, g.PageBytes)
	// cell0: l=1,u=1 erased; cell1: l=0,u=1; cell2: l=0,u=0; cell3: l=1,u=0
	lower[0] = 0b10010000
	upper[0] = 0b11000000
	if err := c.ProgramPageMLC(a, lower, upper); err != nil {
		t.Fatal(err)
	}
	lv, _ := c.ProbePage(a)
	m := c.Model()
	refs := m.MLCRefs()
	if !(float64(lv[0]) < refs[0]) {
		t.Errorf("cell 0 (11) at %d, want below %f", lv[0], refs[0])
	}
	if !(float64(lv[1]) >= refs[0] && float64(lv[1]) < refs[1]) {
		t.Errorf("cell 1 (01) at %d, want in [%f,%f)", lv[1], refs[0], refs[1])
	}
	if !(float64(lv[2]) >= refs[1] && float64(lv[2]) < refs[2]) {
		t.Errorf("cell 2 (00) at %d, want in [%f,%f)", lv[2], refs[1], refs[2])
	}
	if !(float64(lv[3]) >= refs[2]) {
		t.Errorf("cell 3 (10) at %d, want above %f", lv[3], refs[2])
	}
}

func TestMLCValidation(t *testing.T) {
	c := NewChip(TestModel(), 37)
	g := c.Geometry()
	ok := make([]byte, g.PageBytes)
	if err := c.ProgramPageMLC(PageAddr{Block: 0, Page: 0}, ok[:3], ok); err == nil {
		t.Error("short lower vector accepted")
	}
	if err := c.ProgramPageMLC(PageAddr{Block: -1}, ok, ok); err == nil {
		t.Error("bad address accepted")
	}
	a := PageAddr{Block: 0, Page: 0}
	if err := c.ProgramPageMLC(a, ok, ok); err != nil {
		t.Fatal(err)
	}
	if err := c.ProgramPageMLC(a, ok, ok); err == nil {
		t.Error("double MLC program accepted")
	}
	if _, _, err := c.ReadPageMLC(PageAddr{Block: 1 << 20}); err == nil {
		t.Error("bad MLC read address accepted")
	}
}

func TestRetentionOnlyLowersVoltage(t *testing.T) {
	c := NewChip(TestModel(), 38)
	rng := rand.New(rand.NewPCG(3, 3))
	a := PageAddr{Block: 0, Page: 0}
	if err := c.CycleBlock(0, 2000); err != nil {
		t.Fatal(err)
	}
	if err := c.ProgramPage(a, randPageData(rng, c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	before, _ := c.ProbePage(a)
	c.AdvanceRetention(12 * RetentionMonth)
	after, _ := c.ProbePage(a)
	floor := c.Model().LeakFloor
	for i := range before {
		if float64(after[i]) > float64(before[i])+0.51 { // probe rounding slack
			t.Fatalf("cell %d rose during retention: %d -> %d", i, before[i], after[i])
		}
		if float64(before[i]) > floor && float64(after[i]) < floor-0.51 {
			t.Fatalf("cell %d leaked below the floor: %d", i, after[i])
		}
	}
}

func TestGeometryHelpers(t *testing.T) {
	g := Geometry{Blocks: 4, PagesPerBlock: 8, PageBytes: 512}
	if g.CellsPerPage() != 4096 {
		t.Error("CellsPerPage")
	}
	if g.CellsPerBlock() != 32768 {
		t.Error("CellsPerBlock")
	}
	if g.TotalBytes() != 4*8*512 {
		t.Error("TotalBytes")
	}
	a := PageAddr{Block: 2, Page: 3}
	if a.String() == "" {
		t.Error("PageAddr.String empty")
	}
}

func TestScaleGeometryPreservesModel(t *testing.T) {
	m := ModelA()
	s := m.ScaleGeometry(10, 4, 1024)
	if s.Blocks != 10 || s.PagesPerBlock != 4 || s.PageBytes != 1024 {
		t.Error("geometry not applied")
	}
	if s.ProgramTarget != m.ProgramTarget || s.ReadLatency != m.ReadLatency {
		t.Error("scaling mutated voltage/timing parameters")
	}
}

func TestLedgerTimeEnergyMonotone(t *testing.T) {
	c := NewChip(TestModel(), 39)
	var lastTime time.Duration
	var lastEnergy float64
	ops := []func(){
		func() { c.ReadPage(PageAddr{Block: 0, Page: 0}) },
		func() { c.ProbePage(PageAddr{Block: 0, Page: 0}) },
		func() { c.PartialProgram(PageAddr{Block: 0, Page: 0}, []int{0}) },
		func() { c.EraseBlock(0) },
	}
	for i, op := range ops {
		op()
		l := c.Ledger()
		if l.Time <= lastTime || l.EnergyUJ <= lastEnergy {
			t.Fatalf("op %d did not advance the ledger", i)
		}
		lastTime, lastEnergy = l.Time, l.EnergyUJ
	}
}
