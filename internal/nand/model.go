package nand

import "time"

// Model parameterises the generative voltage model of one flash chip
// family. Two presets mirror the paper's two NDA'd vendor chips (ModelA,
// ModelB); reduced geometries for tests and experiments derive from them.
//
// All voltages are in the paper's normalized units: probes quantise to
// integer levels 0..255, the default public read reference sits at 127,
// erased ('1') cells concentrate in [0, 70] and programmed ('0') cells in
// [120, 210] (paper §4).
type Model struct {
	Name string
	Geometry

	// --- Command timing and energy (paper §6.1) ---

	ReadLatency    time.Duration // READ page
	ProgramLatency time.Duration // PROGRAM page
	EraseLatency   time.Duration // ERASE block
	PPLatency      time.Duration // partial program (aborted PROGRAM)
	ProbeLatency   time.Duration // per-cell voltage characterisation read

	ReadEnergy  float64 // uJ per READ
	ProgEnergy  float64 // uJ per PROGRAM
	EraseEnergy float64 // uJ per ERASE
	PPEnergy    float64 // uJ per partial program
	ProbeEnergy float64 // uJ per probe

	// RatedPEC is the specified block endurance in program/erase cycles.
	RatedPEC int

	// --- Erased ('1') state ---

	// ErasedMean/ErasedSigma describe the post-erase cell level BEFORE
	// program interference from neighbouring pages charges it further; a
	// cell in the middle of a fully programmed block ends near
	// ErasedMean + 2*InterfMean (both neighbours programmed once), which
	// is the distribution the paper's Fig 2a shows.
	ErasedMean  float64
	ErasedSigma float64
	// ErasedTailMean is the mean of an additive exponential component
	// producing the long right tail visible in paper Fig 2a.
	ErasedTailMean float64
	// ErasedHeavyFrac/ErasedHeavyMean add a second, heavier exponential
	// tail component to a small fraction of cells: Fig 2a shows visible
	// erased-state mass all the way to level 70, and it is exactly this
	// natural high tail that gives hidden '0' cells cover.
	ErasedHeavyFrac float64
	ErasedHeavyMean float64
	// TailFracJitterChip/Block/Page vary the heavy-tail mass
	// multiplicatively (log-normal) per chip, block and page, and
	// HeavyMeanJitterChip varies the tail's decay scale per chip. This is
	// the "naturally-occurring variability ... creates enough noise to
	// form a useful substrate" of the paper's conclusion: the SVM is
	// trained on other chip samples (§7), so chip-level differences in
	// tail mass and shape are what break the attack's transfer.
	TailFracJitterChip  float64
	TailFracJitterBlock float64
	TailFracJitterPage  float64
	HeavyMeanJitterChip float64

	// --- Programmed ('0') state ---

	// ProgramTarget/ProgramSigma describe the ISPP result for the
	// programmed state; ProgSigmaJitterChip varies the achieved width
	// per chip sample (log-normal multiplier) — programmed-state shape
	// is a manufacturing property too.
	ProgramTarget       float64
	ProgramSigma        float64
	ProgSigmaJitterChip float64

	// --- Process variation hierarchy (paper §4) ---

	ChipSigma  float64 // per-chip offset spread
	BlockSigma float64 // per-block offset spread
	PageSigma  float64 // per-page offset spread

	// --- Wear (paper Fig 3) ---

	// WearShiftPerK is the mean right-shift of the ERASED state per 1000
	// PEC; kept gentle so hidden BER stays wear-insensitive (§8
	// Reliability). WearShiftProgPerK shifts the PROGRAMMED state, which
	// carries the bulk of the first-order PEC signature the SVM sees
	// (Fig 3b, Fig 10) without touching the hiding threshold region.
	WearShiftPerK     float64
	WearShiftProgPerK float64
	// WearSigmaErasedPerK / WearSigmaProgPerK widen the two states per
	// 1000 PEC.
	WearSigmaErasedPerK float64
	WearSigmaProgPerK   float64

	// --- Program interference (paper Fig 2a discussion, §6.3) ---

	// InterfMean/InterfSigma: charge added to each erased cell of a page
	// adjacent to a page being programmed. Only cells below InterfCutoff
	// couple appreciably; cells already charged to the programmed state
	// are barely moved by neighbour fields.
	InterfMean   float64
	InterfSigma  float64
	InterfCutoff float64

	// --- Partial programming (paper §1, §6.2) ---

	// PPStepMean/PPStepSigma describe the voltage increment of one PP
	// pulse before the per-cell gain factor. Deliberately coarse and
	// noisy: PP "is less precise than a program command issued by the
	// controller" (§6.2).
	PPStepMean  float64
	PPStepSigma float64
	// PPNoisePerK grows the per-pulse noise with wear: programming
	// becomes less repeatable on cycled cells, which is what erodes the
	// PT-HI timing channel "after only a few hundred public data
	// Program/Erase Cycles" (§2).
	PPNoisePerK float64
	// FineSigma is the placement precision of the vendor-internal
	// FineProgram operation ("an in-controller implementation of voltage
	// hiding could likely program hidden data in fewer programming
	// steps", §6.2). Much tighter than PP.
	FineSigma float64
	// GainSigma is the log-scale spread of the per-cell charge gain
	// (cell-to-cell programming speed variation). Higher values produce
	// slower BER convergence across PP steps (Fig 6's long tail).
	GainSigma float64

	// PPDisturbVictims is the fraction of cells in each adjacent page
	// disturbed by one PP pulse; PPDisturbSigma is the (signed) jitter
	// applied to a programmed victim, and PPDisturbErasedMean the charge
	// bump applied to an erased victim. These drive the public-data BER
	// increase the paper measures at page interval 0 vs 1 (§6.3).
	PPDisturbVictims    float64
	PPDisturbSigma      float64
	PPDisturbErasedMean float64

	// --- Read reference voltages ---

	// ReadRef is the default public (SLC-style) read threshold.
	ReadRef float64

	// --- Retention (paper Fig 11) ---

	// Retention loss is modelled as a charge drop of roughly constant
	// magnitude (dominated by detrapping of a fixed damaged-charge
	// population, so nearly independent of the stored level). The drop is
	// a cumulative saturating curve over the page's charge life, anchored
	// when the page materialises (or its wear level changes in place):
	//
	//	D(t) = LeakScale * (1 - exp(-(LeakRateBase + LeakRatePEC2*(PEC/1000)^2) * months(t)))
	//
	// with t measured on the chip's virtual retention clock from the
	// anchor; a bake from t0 to t1 costs each cell (D(t1)-D(t0)) scaled
	// by its jittered leak factor, clamped at LeakFloor. The cumulative
	// form composes exactly over the virtual clock, which is what the
	// lazy retention engine (retention.go) relies on. The quadratic PEC
	// term is the "cells with higher PEC accumulate trapped charge and
	// become more sensitive to leakage" of §8; the constant magnitude is
	// what makes hidden data (parked just above its threshold) degrade
	// much faster than public data (38+ levels of margin), reproducing
	// Fig 11's 6.3x vs 2.3x split.
	LeakRateBase float64
	LeakRatePEC2 float64
	LeakScale    float64
	LeakFloor    float64
	LeakJitter   float64 // per-cell multiplicative spread of the drop

	// --- Programming time channel (PT-HI substrate) ---

	// ProgTimeMean/ProgTimeSigma: per-cell time (us) to program, before
	// stress effects. StressSlowdown is the fractional programming-time
	// increase per accumulated stress cycle.
	ProgTimeMean   float64
	ProgTimeSigma  float64
	StressSlowdown float64

	// --- MLC mode (paper Fig 1b) ---

	// MLCTargets are the three programmed-state centers used when a
	// wordline operates in MLC mode (the erased state is the fourth).
	MLCTargets [3]float64
	MLCSigma   float64
}

// ModelA mirrors the paper's primary chip: a 1x-nm MLC package, 8 GB, 2048
// blocks, 18048-byte pages, 128 lower + 128 upper pages per block, rated
// 3000 PEC, with 90 us / 1200 us / 5 ms read/program/erase latencies and
// 50 / 68 / 190 uJ energies (paper §6.1). PP latency is 600 us, the value
// the paper uses in its §8 throughput arithmetic.
func ModelA() Model {
	return Model{
		Name: "vendor-A-1xnm-mlc-8gb",
		Geometry: Geometry{
			Blocks:        2048,
			PagesPerBlock: 256,
			PageBytes:     18048,
		},
		ReadLatency:    90 * time.Microsecond,
		ProgramLatency: 1200 * time.Microsecond,
		EraseLatency:   5 * time.Millisecond,
		PPLatency:      600 * time.Microsecond,
		ProbeLatency:   90 * time.Microsecond,
		ReadEnergy:     50,
		ProgEnergy:     68,
		EraseEnergy:    190,
		PPEnergy:       34, // half a program: aborted midway
		ProbeEnergy:    50,
		RatedPEC:       3000,

		ErasedMean:      10.5,
		ErasedSigma:     2.3,
		ErasedTailMean:  1.2,
		ErasedHeavyFrac: 0.035,
		ErasedHeavyMean: 7.0,

		TailFracJitterChip:  0.40,
		TailFracJitterBlock: 0.30,
		TailFracJitterPage:  0.45,
		HeavyMeanJitterChip: 0.20,
		ProgramTarget:       165,
		ProgramSigma:        9.5,
		ProgSigmaJitterChip: 0.08,

		ChipSigma:  0.9,
		BlockSigma: 0.8,
		PageSigma:  1.0,

		WearShiftPerK:       0.8,
		WearShiftProgPerK:   4.2,
		WearSigmaErasedPerK: 0.15,
		WearSigmaProgPerK:   1.1,

		InterfMean:   6.5,
		InterfSigma:  1.5,
		InterfCutoff: 95,

		PPStepMean:  10,
		PPStepSigma: 3.0,
		PPNoisePerK: 1.2,
		FineSigma:   0.6,
		GainSigma:   0.9,

		PPDisturbVictims:    0.004,
		PPDisturbSigma:      5.0,
		PPDisturbErasedMean: 0.8,

		ReadRef: 127,

		LeakRateBase: 0.0010,
		LeakRatePEC2: 0.0050,
		LeakScale:    30,
		LeakFloor:    4,
		LeakJitter:   0.35,

		ProgTimeMean:   1200,
		ProgTimeSigma:  140,
		StressSlowdown: 0.002,

		MLCTargets: [3]float64{95, 140, 185},
		MLCSigma:   6.0,
	}
}

// ModelB mirrors the paper's second-vendor chip used for the §8
// applicability experiment: 16 GB, 2096 blocks, 18256-byte pages. Its
// voltage model differs slightly (different process corner), which is the
// point of the experiment: the same VT-HI configuration still achieves
// ~1% hidden BER.
func ModelB() Model {
	m := ModelA()
	m.Name = "vendor-B-1xnm-mlc-16gb"
	m.Geometry = Geometry{
		Blocks:        2096,
		PagesPerBlock: 512,
		PageBytes:     18256,
	}
	m.ErasedMean = 11.4
	m.ErasedSigma = 2.5
	m.ErasedTailMean = 1.3
	m.ErasedHeavyFrac = 0.033
	m.ErasedHeavyMean = 6.6
	m.TailFracJitterChip = 0.45
	m.TailFracJitterBlock = 0.33
	m.TailFracJitterPage = 0.48
	m.HeavyMeanJitterChip = 0.22
	m.InterfMean = 6.8
	m.InterfSigma = 1.7
	m.ProgramTarget = 168
	m.ProgramSigma = 10.1
	m.PPStepMean = 9
	m.PPStepSigma = 3.2
	m.GainSigma = 0.95
	m.WearShiftPerK = 1.0
	m.WearShiftProgPerK = 4.6
	return m
}

// ScaleGeometry returns a copy of m with the given geometry; every voltage
// and timing parameter is unchanged. Experiments use this to bound memory:
// distribution statistics are per-cell, so fewer pages/blocks change only
// sample counts, not shapes.
func (m Model) ScaleGeometry(blocks, pagesPerBlock, pageBytes int) Model {
	m.Geometry = Geometry{Blocks: blocks, PagesPerBlock: pagesPerBlock, PageBytes: pageBytes}
	return m
}

// TestModel is ModelA shrunk to a size unit tests can churn through
// quickly: 64 blocks of 8 pages, 512-byte pages (4096 cells each).
func TestModel() Model {
	return ModelA().ScaleGeometry(64, 8, 512)
}
