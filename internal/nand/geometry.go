// Package nand implements a voltage-level simulator of NAND flash memory.
//
// It is the substitute for the paper's hardware testbed (1x-nm MLC chips
// from two vendors driven by a commercial tester; see DESIGN.md §2). The
// simulator models each flash cell as an analog voltage in the normalized
// units the paper reports (probes quantise to 0..255), and reproduces the
// statistical structure VT-HI depends on:
//
//   - wide, noisy per-state voltage distributions with chip-, block- and
//     page-level process variation (paper Fig 2);
//   - partial charging of erased cells by program interference (Fig 2a/2c);
//   - right-shift of distributions with program/erase wear (Fig 3);
//   - an imprecise partial-program (PP) operation — a normal PROGRAM
//     aborted midway — whose per-cell response varies (Fig 6);
//   - charge leakage over retention time, accelerated on worn cells
//     (Fig 11);
//   - per-cell programming-time variation that shifts under repeated
//     program stress (the covert channel used by the PT-HI baseline).
//
// The command surface mirrors what the paper uses on real chips: ERASE,
// PROGRAM, READ, READ with a shifted reference voltage (the vendor command
// "used in modern flash chips by all vendors"), partial program, and a
// per-cell voltage probe (the NDA'd characterisation command).
package nand

import "fmt"

// Geometry describes the physical layout of a simulated flash package.
type Geometry struct {
	// Blocks is the number of erase blocks in the package.
	Blocks int
	// PagesPerBlock is the number of pages in each block.
	PagesPerBlock int
	// PageBytes is the number of data bytes per page; the page holds
	// 8*PageBytes cells (one public bit per cell, SLC-style, as in the
	// paper's hiding experiments).
	PageBytes int
}

// CellsPerPage returns the number of flash cells in one page.
func (g Geometry) CellsPerPage() int { return g.PageBytes * 8 }

// CellsPerBlock returns the number of flash cells in one block.
func (g Geometry) CellsPerBlock() int { return g.CellsPerPage() * g.PagesPerBlock }

// TotalBytes returns the raw data capacity of the package in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.Blocks) * int64(g.PagesPerBlock) * int64(g.PageBytes)
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Blocks < 1 || g.PagesPerBlock < 1 || g.PageBytes < 1 {
		return fmt.Errorf("nand: invalid geometry %+v", g)
	}
	return nil
}

// PageAddr identifies a page within a package.
type PageAddr struct {
	Block int
	Page  int
}

// String renders the address for diagnostics.
func (a PageAddr) String() string { return fmt.Sprintf("block %d page %d", a.Block, a.Page) }

// Check validates a page address against the geometry, with the same
// errors the chip's own command surface returns. Host adapters use it for
// firmware-side validation so bus backends fail identically to direct
// chip calls.
func (g Geometry) Check(a PageAddr) error { return g.check(a) }

// check validates a page address against the geometry.
func (g Geometry) check(a PageAddr) error {
	if a.Block < 0 || a.Block >= g.Blocks {
		return fmt.Errorf("nand: block %d out of range [0,%d)", a.Block, g.Blocks)
	}
	if a.Page < 0 || a.Page >= g.PagesPerBlock {
		return fmt.Errorf("nand: page %d out of range [0,%d)", a.Page, g.PagesPerBlock)
	}
	return nil
}
