package nand

import "fmt"

// MLC-mode operations. The paper's chips are MLC parts operated SLC-style
// for hiding (its Fig 2 distributions "are essentially SLC distributions");
// full MLC programming is modelled for the Fig 1 characterisation and for
// the §6.2 discussion of hiding at higher densities with vendor support.

// ProgramPageMLC programs a page in MLC mode: each cell stores two bits
// (lower, upper), mapped Gray-style to the four voltage states
// 11 (erased) < 10 < 00 < 01 from low to high, each a narrow distribution
// (Fig 1b: "MLC distributions are typically narrower"). lower and upper
// must each be PageBytes long.
func (c *Chip) ProgramPageMLC(a PageAddr, lower, upper []byte) error {
	if err := c.model.check(a); err != nil {
		return err
	}
	if len(lower) != c.model.PageBytes || len(upper) != c.model.PageBytes {
		return fmt.Errorf("%w: MLC needs two %d-byte vectors", ErrBadDataLength, c.model.PageBytes)
	}
	ps := c.pageRef(a)
	if ps.programmed {
		return fmt.Errorf("%w: %v", ErrPageProgrammed, a)
	}
	bs := c.blockRef(a.Block)
	c.settleForWrite(a, bs, ps)
	m := &c.model
	off := c.chipOffset + bs.blockOffset + ps.pageOffset + c.wearShift(bs)
	for i := range ps.v {
		lo := dataBit(lower, i)
		hi := dataBit(upper, i)
		var target float64
		switch {
		case lo == 1 && hi == 1:
			continue // erased state
		case lo == 0 && hi == 1:
			target = m.MLCTargets[0]
		case lo == 0 && hi == 0:
			target = m.MLCTargets[1]
		default: // lo == 1 && hi == 0
			target = m.MLCTargets[2]
		}
		v := target + off + c.rng.NormFloat64()*m.MLCSigma
		if float32(v) > ps.v[i] {
			ps.v[i] = float32(v)
		}
	}
	ps.programmed = true
	c.interfereNeighbors(a)
	c.recordProgram()
	return nil
}

// MLCRefs returns the three read reference voltages separating the four
// MLC states, placed midway between adjacent state centers.
func (m Model) MLCRefs() [3]float64 {
	erasedCenter := m.ErasedMean + 2*m.InterfMean
	return [3]float64{
		(erasedCenter + m.MLCTargets[0]) / 2,
		(m.MLCTargets[0] + m.MLCTargets[1]) / 2,
		(m.MLCTargets[1] + m.MLCTargets[2]) / 2,
	}
}

// ReadPageMLC reads a page programmed in MLC mode, returning the lower and
// upper bit vectors recovered with the three inter-state references.
func (c *Chip) ReadPageMLC(a PageAddr) (lower, upper []byte, err error) {
	if err := c.model.check(a); err != nil {
		return nil, nil, err
	}
	bs := c.blockRef(a.Block)
	ps := c.pageRef(a)
	refs := c.model.MLCRefs()
	lower = make([]byte, c.model.PageBytes)
	upper = make([]byte, c.model.PageBytes)
	for i, vf := range c.senseView(a, bs, ps) {
		v := float64(vf)
		var lo, hi byte
		switch {
		case v < refs[0]:
			lo, hi = 1, 1
		case v < refs[1]:
			lo, hi = 0, 1
		case v < refs[2]:
			lo, hi = 0, 0
		default:
			lo, hi = 1, 0
		}
		if lo != 0 {
			lower[i/8] |= 1 << uint(7-i%8)
		}
		if hi != 0 {
			upper[i/8] |= 1 << uint(7-i%8)
		}
	}
	c.recordRead()
	c.recordRead() // two logical page reads on real parts
	return lower, upper, nil
}
