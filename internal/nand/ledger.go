package nand

import "time"

// Ledger accounts every command issued to a chip: operation counts, the
// simulated bus-level time they would take on the real part, and the energy
// they would draw. The paper's throughput and energy results (§8) are
// exactly this arithmetic — "our calculations do not take into account data
// transfer and hardware overheads" — so the ledger reproduces them from the
// same per-operation constants.
// The JSON tags serve the observability exports (cmd/stashctl stats
// -json); Time marshals as nanoseconds, per time.Duration.
type Ledger struct {
	Reads           int64 `json:"reads"`
	Programs        int64 `json:"programs"`
	Erases          int64 `json:"erases"`
	PartialPrograms int64 `json:"partial_programs"`
	Probes          int64 `json:"probes"`

	// Time is the summed nominal latency of all operations.
	Time time.Duration `json:"time_ns"`
	// EnergyUJ is the summed nominal energy in microjoules.
	EnergyUJ float64 `json:"energy_uj"`

	// VirtualClock is the chip's accumulated power-off retention age —
	// the ledger-owned virtual time the lazy retention engine decays
	// against (see retention.go). Unlike the cost fields it is physical
	// state: AdvanceRetention adds to it and Chip.ResetLedger preserves it.
	VirtualClock time.Duration `json:"virtual_clock_ns"`
}

// Add accumulates another ledger into this one.
func (l *Ledger) Add(o Ledger) {
	l.Reads += o.Reads
	l.Programs += o.Programs
	l.Erases += o.Erases
	l.PartialPrograms += o.PartialPrograms
	l.Probes += o.Probes
	l.Time += o.Time
	l.EnergyUJ += o.EnergyUJ
	l.VirtualClock += o.VirtualClock
}

// Sub returns the difference l - o; use to meter a region of work:
//
//	before := chip.Ledger()
//	... operations ...
//	cost := chip.Ledger().Sub(before)
func (l Ledger) Sub(o Ledger) Ledger {
	return Ledger{
		Reads:           l.Reads - o.Reads,
		Programs:        l.Programs - o.Programs,
		Erases:          l.Erases - o.Erases,
		PartialPrograms: l.PartialPrograms - o.PartialPrograms,
		Probes:          l.Probes - o.Probes,
		Time:            l.Time - o.Time,
		EnergyUJ:        l.EnergyUJ - o.EnergyUJ,
		VirtualClock:    l.VirtualClock - o.VirtualClock,
	}
}

func (c *Chip) recordRead() {
	c.ledger.Reads++
	c.ledger.Time += c.model.ReadLatency
	c.ledger.EnergyUJ += c.model.ReadEnergy
}

func (c *Chip) recordProgram() {
	c.ledger.Programs++
	c.ledger.Time += c.model.ProgramLatency
	c.ledger.EnergyUJ += c.model.ProgEnergy
}

func (c *Chip) recordErase() {
	c.ledger.Erases++
	c.ledger.Time += c.model.EraseLatency
	c.ledger.EnergyUJ += c.model.EraseEnergy
}

func (c *Chip) recordPP() {
	c.ledger.PartialPrograms++
	c.ledger.Time += c.model.PPLatency
	c.ledger.EnergyUJ += c.model.PPEnergy
}

func (c *Chip) recordProbe() {
	c.ledger.Probes++
	c.ledger.Time += c.model.ProbeLatency
	c.ledger.EnergyUJ += c.model.ProbeEnergy
}
