package nand

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
)

// Fault injection: a FaultPlan attached to a Chip turns the pristine-lab
// simulator into a misbehaving device. The plan injects the runtime
// failure modes Cai et al. catalog for MLC programming — program status
// failures, erase failures, grown bad blocks (wear-out), read disturb —
// plus power loss that truncates a partial-programming sequence after an
// armed number of pulses.
//
// # Determinism
//
// The plan owns a private PRNG derived from FaultConfig.Seed with the
// same SHA-256 partitioned-stream scheme the experiment engine uses
// (internal/experiments.(Scale).subSeed): fault draws never touch the
// chip's own PRNG, so a nil plan and a zero-probability plan produce
// bit-identical chips, and the injected fault sequence is reproducible at
// any experiment worker count. Per-block wear-out death points are derived
// statelessly from (Seed, block), so they are independent of operation
// order as well.

// Typed errors for recoverable device conditions. These replace panics on
// the public command surface: firmware is expected to observe and survive
// them (retry, remap, retire), so they must be values, not crashes. Panics
// remain only for programmer-error invariants (invalid geometry at
// construction, internal state queries with impossible arguments).
var (
	// ErrBlockRange reports a block index outside the chip's geometry on a
	// public command (erase, cycle, drop).
	ErrBlockRange = errors.New("nand: block out of range")
	// ErrNegativeCount reports a negative cycle or stress count.
	ErrNegativeCount = errors.New("nand: negative count")
	// ErrProgramFailed is the program status-FAIL: the page is left
	// partially, unreliably charged and the block is grown bad (full-page
	// PROGRAM) or the pulse simply did not land (partial program).
	ErrProgramFailed = errors.New("nand: program failed (status FAIL)")
	// ErrEraseFailed is the erase status-FAIL: voltages are left in place
	// and the block is grown bad.
	ErrEraseFailed = errors.New("nand: erase failed (status FAIL)")
	// ErrBadBlock rejects programs/erases aimed at a grown bad block.
	// Reads still succeed — firmware must be able to evacuate the block.
	ErrBadBlock = errors.New("nand: grown bad block")
	// ErrPowerLoss is returned by every operation once an injected power
	// loss has fired, until Chip.PowerCycle restores the device.
	ErrPowerLoss = errors.New("nand: power lost")
)

// FaultConfig parameterises a FaultPlan. The zero value injects nothing.
type FaultConfig struct {
	// Seed roots the plan's private fault streams.
	Seed uint64

	// ProgramFailProb is the per-operation probability that a full-page
	// PROGRAM (or vendor FineProgram) reports status FAIL. The page is
	// left partially charged and the block is grown bad.
	ProgramFailProb float64
	// PPFailProb is the per-pulse probability that a partial-programming
	// pulse reports status FAIL without moving charge. Transient: the
	// block is not marked bad, and a retry may succeed.
	PPFailProb float64
	// EraseFailProb is the per-operation probability that an ERASE reports
	// status FAIL, leaving voltages in place and growing the block bad.
	EraseFailProb float64
	// BadBlockFrac is the fraction of blocks that wear out early: each
	// such block draws a death PEC uniform in [1, RatedPEC] and its first
	// erase at or past that count fails permanently.
	BadBlockFrac float64
	// ReadDisturbProb is the per-read probability of a disturb burst: a
	// sparse set of low-charge cells on the page gains a small positive
	// bump, eroding the hidden margin the way accumulated reads do.
	ReadDisturbProb float64
	// ReadDisturbCells is the burst size in cells (default 16).
	ReadDisturbCells int
	// ReadDisturbMean is the mean bump per disturbed cell in normalized
	// levels (default 2).
	ReadDisturbMean float64
}

// Zero reports whether the config injects no faults at all. A plan built
// from a Zero config is behaviourally identical to no plan.
func (c FaultConfig) Zero() bool {
	return c.ProgramFailProb == 0 && c.PPFailProb == 0 && c.EraseFailProb == 0 &&
		c.BadBlockFrac == 0 && c.ReadDisturbProb == 0
}

// FaultStats counts the faults a plan has injected so far.
type FaultStats struct {
	ProgramFails int // full-page/fine program status FAILs
	PPFails      int // transient partial-program pulse FAILs
	EraseFails   int // erase status FAILs (excluding wear-out deaths)
	WornOut      int // blocks that hit their death PEC
	ReadDisturbs int // disturb bursts applied
	PowerLosses  int // armed power losses that fired
	GrownBad     int // blocks grown bad from any cause
}

// FaultPlan is a deterministic schedule of injected faults. Attach one to
// a chip with Chip.SetFaultPlan; a plan must not be shared across chips
// (its draw stream is advanced by the chip's operation sequence).
type FaultPlan struct {
	cfg   FaultConfig
	rng   *rand.Rand
	stats FaultStats
	death map[int]int // per-block death PEC cache; 0 = immortal

	// ppAllow is the number of further partial-program pulses permitted
	// before an armed power loss fires; -1 means disarmed.
	ppAllow   int
	powerLost bool
}

// NewFaultPlan builds a plan from cfg, applying burst-shape defaults.
func NewFaultPlan(cfg FaultConfig) *FaultPlan {
	if cfg.ReadDisturbCells <= 0 {
		cfg.ReadDisturbCells = 16
	}
	if cfg.ReadDisturbMean <= 0 {
		cfg.ReadDisturbMean = 2
	}
	a, b := streamSeed(cfg.Seed, "nand/faults/ops")
	return &FaultPlan{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(a, b)),
		death:   make(map[int]int),
		ppAllow: -1,
	}
}

// Config returns the plan's parameters (with defaults applied).
func (p *FaultPlan) Config() FaultConfig { return p.cfg }

// Stats returns a snapshot of the injected-fault counters.
func (p *FaultPlan) Stats() FaultStats { return p.stats }

// ArmPowerLossAfterPP arms a power loss that lets exactly k further
// partial-programming pulses complete and then kills the device: the k+1st
// pulse — and every operation after it — returns ErrPowerLoss until
// Chip.PowerCycle. Charge already moved stays on the cells; that
// persistence is precisely what makes the truncated hide observable.
func (p *FaultPlan) ArmPowerLossAfterPP(k int) {
	if k < 0 {
		k = 0
	}
	p.ppAllow = k
	p.powerLost = false
}

// PowerLost reports whether an injected power loss is currently latched.
func (p *FaultPlan) PowerLost() bool { return p.powerLost }

// StreamSeed derives two independent 64-bit seed words from (seed,
// domain, index path) with the repository's SHA-256 partitioned-stream
// recipe — the derivation the chip's internal streams (fault draws,
// per-block death points, retention leak jitter) and the experiment
// engine both use. Distinct (domain, path) pairs yield computationally
// independent streams under the same root seed, so higher layers
// (internal/fleet mints per-chip sample and fault seeds this way) compose
// with everything below without collision bookkeeping.
func StreamSeed(seed uint64, domain string, path ...uint64) (uint64, uint64) {
	return streamSeed(seed, domain, path...)
}

// streamSeed mirrors the experiment engine's SHA-256 partitioned-stream
// derivation so chip-internal streams (fault draws, per-block death
// points, retention leak jitter) compose with experiment seed
// partitioning and stay independent of operation order.
func streamSeed(seed uint64, domain string, path ...uint64) (uint64, uint64) {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte(domain))
	for _, u := range path {
		binary.BigEndian.PutUint64(b[:], u)
		h.Write(b[:])
	}
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum[0:8]), binary.BigEndian.Uint64(sum[8:16])
}

// deathPEC returns the PEC at which the block wears out (0 = immortal).
// Derived statelessly from (Seed, block) so the answer does not depend on
// when — or from which worker's operation order — it is first asked.
func (p *FaultPlan) deathPEC(block, ratedPEC int) int {
	if d, ok := p.death[block]; ok {
		return d
	}
	d := 0
	if p.cfg.BadBlockFrac > 0 {
		a, b := streamSeed(p.cfg.Seed, "nand/faults/badblock", uint64(block))
		r := rand.New(rand.NewPCG(a, b))
		if r.Float64() < p.cfg.BadBlockFrac {
			if ratedPEC < 1 {
				ratedPEC = 1
			}
			d = 1 + r.IntN(ratedPEC)
		}
	}
	p.death[block] = d
	return d
}

// The draw helpers consume the plan's op stream only when the relevant
// probability is non-zero, so disabled fault classes are free.

func (p *FaultPlan) drawProgramFail() bool {
	if p.cfg.ProgramFailProb <= 0 || p.rng.Float64() >= p.cfg.ProgramFailProb {
		return false
	}
	p.stats.ProgramFails++
	return true
}

func (p *FaultPlan) drawPPFail() bool {
	if p.cfg.PPFailProb <= 0 || p.rng.Float64() >= p.cfg.PPFailProb {
		return false
	}
	p.stats.PPFails++
	return true
}

func (p *FaultPlan) drawEraseFail() bool {
	if p.cfg.EraseFailProb <= 0 || p.rng.Float64() >= p.cfg.EraseFailProb {
		return false
	}
	p.stats.EraseFails++
	return true
}

func (p *FaultPlan) drawReadDisturb() bool {
	if p.cfg.ReadDisturbProb <= 0 || p.rng.Float64() >= p.cfg.ReadDisturbProb {
		return false
	}
	p.stats.ReadDisturbs++
	return true
}

// ppGate enforces an armed power loss: it admits the allowed number of
// pulses, then latches the power-lost state.
func (p *FaultPlan) ppGate() error {
	if p.powerLost {
		return ErrPowerLoss
	}
	if p.ppAllow < 0 {
		return nil
	}
	if p.ppAllow == 0 {
		p.powerLost = true
		p.stats.PowerLosses++
		return ErrPowerLoss
	}
	p.ppAllow--
	return nil
}

// --- chip integration ------------------------------------------------------

// SetFaultPlan attaches a fault plan to the chip (nil detaches). The plan
// must be private to this chip.
func (c *Chip) SetFaultPlan(p *FaultPlan) { c.faults = p }

// FaultPlan returns the attached plan, or nil.
func (c *Chip) FaultPlan() *FaultPlan { return c.faults }

// PowerCycle restores the device after an injected power loss and disarms
// any pending armed loss. Cell voltages are physical state and survive the
// cycle — that persistence is what makes hidden data durable at all.
func (c *Chip) PowerCycle() {
	if c.faults != nil {
		c.faults.powerLost = false
		c.faults.ppAllow = -1
	}
}

// IsBadBlock reports whether a block has been grown bad at runtime
// (program/erase failure or wear-out). Out-of-range blocks report false.
func (c *Chip) IsBadBlock(block int) bool { return c.bad[block] }

// GrownBadBlocks lists the grown bad blocks in ascending order.
func (c *Chip) GrownBadBlocks() []int {
	out := make([]int, 0, len(c.bad))
	for b := range c.bad {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// markBad records a grown bad block.
func (c *Chip) markBad(block int) {
	if c.bad == nil {
		c.bad = make(map[int]bool)
	}
	if !c.bad[block] {
		c.bad[block] = true
		if c.faults != nil {
			c.faults.stats.GrownBad++
		}
	}
}

// powerCheck fails every operation while an injected power loss is latched.
func (c *Chip) powerCheck() error {
	if c.faults != nil && c.faults.powerLost {
		return ErrPowerLoss
	}
	return nil
}

// badCheck rejects mutating operations aimed at a grown bad block.
func (c *Chip) badCheck(block int) error {
	if c.bad[block] {
		return fmt.Errorf("%w: block %d", ErrBadBlock, block)
	}
	return nil
}

// applyReadDisturb fires an injected disturb burst on the page just read:
// a sparse set of its low-charge cells gains a small exponential bump.
// (Physically the victims are sibling pages; the simplification keeps the
// burst aimed at the hidden-margin cells the fault model exists to stress.)
func (c *Chip) applyReadDisturb(a PageAddr) {
	if c.faults == nil || !c.faults.drawReadDisturb() {
		return
	}
	ps := c.pageRef(a)
	// The disturb bump mutates stored charge, so pending decay folds in
	// first — like every other mutating path.
	c.settleForWrite(a, c.blockRef(a.Block), ps)
	cutoff := float32(c.model.InterfCutoff)
	frng := c.faults.rng
	for k := 0; k < c.faults.cfg.ReadDisturbCells; k++ {
		i := frng.IntN(len(ps.v))
		if ps.v[i] < cutoff {
			ps.v[i] += float32(frng.ExpFloat64() * c.faults.cfg.ReadDisturbMean)
		}
	}
}
