package nand

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"
)

// Chip persistence: a device image captures the full analog state
// (voltages, gains, stress, wear, RNG position) so tools like cmd/stashctl
// can operate on a device across invocations, the way the paper's host
// software drives one physical chip across sessions. The format is
// self-describing gob; it is a simulator artifact, not a wire format.

const imageFormatVersion = 1

type chipImage struct {
	Version    int
	Model      Model
	Seed       uint64
	ChipOffset float64
	TailMult   float64
	HeavyMean  float64
	ProgMult   float64
	RNGState   []byte
	Blocks     []blockImage
	Ledger     Ledger
	// BadBlocks lists grown bad blocks. Gob tolerates its absence, so
	// version-1 images from before fault injection load unchanged.
	BadBlocks []int
}

type blockImage struct {
	Index       int
	PEC         int
	Epoch       uint64
	BlockOffset float64
	TailMult    float64
	Pending     []int
	Pages       []pageImage
	Stress      map[int][]uint16
}

type pageImage struct {
	Index      int
	V          []float32
	Gain       []float32
	PageOffset float64
	Programmed bool
	// Lazy-retention epoch record (see retention.go): the decay-curve
	// anchor and the virtual time already folded into V. The virtual
	// clock itself rides in the Ledger. Gob tolerates their absence, so
	// pre-retention-engine images load with both at zero — consistent
	// with their zero virtual clock.
	RetStart time.Duration
	RetDone  time.Duration
}

// Save serialises the chip's full state to w.
func (c *Chip) Save(w io.Writer) error {
	img := chipImage{
		Version:    imageFormatVersion,
		Model:      c.model,
		Seed:       c.seed,
		ChipOffset: c.chipOffset,
		TailMult:   c.tailMult,
		HeavyMean:  c.heavyMean,
		ProgMult:   c.progMult,
		Ledger:     c.ledger,
		BadBlocks:  c.GrownBadBlocks(),
	}
	st, err := c.src.MarshalBinary()
	if err != nil {
		return fmt.Errorf("nand: marshaling RNG: %w", err)
	}
	img.RNGState = st
	for b, bs := range c.blocks {
		if bs == nil {
			continue
		}
		bi := blockImage{
			Index:       b,
			PEC:         bs.pec,
			Epoch:       bs.epoch,
			BlockOffset: bs.blockOffset,
			TailMult:    bs.tailMult,
			Pending:     append([]int(nil), bs.pendingInterf...),
			Stress:      map[int][]uint16{},
		}
		for p, ps := range bs.pages {
			if ps == nil {
				continue
			}
			bi.Pages = append(bi.Pages, pageImage{
				Index:      p,
				V:          ps.v,
				Gain:       ps.gain,
				PageOffset: ps.pageOffset,
				Programmed: ps.programmed,
				RetStart:   ps.retStart,
				RetDone:    ps.retDone,
			})
		}
		for p, st := range bs.stress {
			if st != nil {
				bi.Stress[p] = st
			}
		}
		img.Blocks = append(img.Blocks, bi)
	}
	return gob.NewEncoder(w).Encode(&img)
}

// Load reconstructs a chip from an image produced by Save.
func Load(r io.Reader) (*Chip, error) {
	var img chipImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("nand: decoding chip image: %w", err)
	}
	if img.Version != imageFormatVersion {
		return nil, fmt.Errorf("nand: chip image version %d, want %d", img.Version, imageFormatVersion)
	}
	if err := img.Model.Geometry.Validate(); err != nil {
		return nil, err
	}
	c := NewChip(img.Model, img.Seed)
	c.chipOffset = img.ChipOffset
	if img.TailMult != 0 {
		c.tailMult = img.TailMult
	}
	if img.HeavyMean != 0 {
		c.heavyMean = img.HeavyMean
	}
	if img.ProgMult != 0 {
		c.progMult = img.ProgMult
	}
	c.ledger = img.Ledger
	if err := c.src.UnmarshalBinary(img.RNGState); err != nil {
		return nil, fmt.Errorf("nand: restoring RNG: %w", err)
	}
	for _, b := range img.BadBlocks {
		if b < 0 || b >= img.Model.Blocks {
			return nil, fmt.Errorf("nand: image bad block %d out of range", b)
		}
		c.markBad(b)
	}
	for _, bi := range img.Blocks {
		if bi.Index < 0 || bi.Index >= img.Model.Blocks {
			return nil, fmt.Errorf("nand: image block %d out of range", bi.Index)
		}
		bs := c.blockRef(bi.Index)
		bs.pec = bi.PEC
		bs.epoch = bi.Epoch
		bs.blockOffset = bi.BlockOffset
		if bi.TailMult != 0 {
			bs.tailMult = bi.TailMult
		}
		copy(bs.pendingInterf, bi.Pending)
		for _, pi := range bi.Pages {
			if pi.Index < 0 || pi.Index >= img.Model.PagesPerBlock {
				return nil, fmt.Errorf("nand: image page %d out of range", pi.Index)
			}
			cells := img.Model.CellsPerPage()
			if len(pi.V) != cells || len(pi.Gain) != cells {
				return nil, fmt.Errorf("nand: image page %d has %d cells, geometry says %d", pi.Index, len(pi.V), cells)
			}
			bs.pages[pi.Index] = &pageState{
				v:          pi.V,
				gain:       pi.Gain,
				pageOffset: pi.PageOffset,
				programmed: pi.Programmed,
				retStart:   pi.RetStart,
				retDone:    pi.RetDone,
				viewDone:   viewStale,
			}
			bs.live++
		}
		for p, st := range bi.Stress {
			if p >= 0 && p < img.Model.PagesPerBlock {
				bs.stress[p] = st
			}
		}
	}
	return c, nil
}
