package nand

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := NewChip(TestModel(), 77)
	rng := rand.New(rand.NewPCG(1, 1))
	// Build up nontrivial state: wear, programmed pages, stress, pending
	// interference.
	if err := c.CycleBlock(2, 1200); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := c.ProgramPage(PageAddr{Block: 2, Page: p}, randPageData(rng, c.Geometry().PageBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.StressCells(PageAddr{Block: 1, Page: 0}, []int{1, 2, 3}, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.PartialProgram(PageAddr{Block: 2, Page: 0}, []int{10, 20, 30}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if c2.PEC(2) != c.PEC(2) {
		t.Errorf("PEC: %d vs %d", c2.PEC(2), c.PEC(2))
	}
	if c2.Ledger() != c.Ledger() {
		t.Errorf("ledger mismatch: %+v vs %+v", c2.Ledger(), c.Ledger())
	}
	for p := 0; p < 3; p++ {
		a := PageAddr{Block: 2, Page: p}
		p1, err := c.ProbePage(a)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := c2.ProbePage(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p1, p2) {
			t.Fatalf("page %d voltages differ after reload", p)
		}
	}
	// The RNG position must be restored: the next stochastic op has to
	// produce identical results on both chips.
	a := PageAddr{Block: 2, Page: 3}
	d := randPageData(rand.New(rand.NewPCG(9, 9)), c.Geometry().PageBytes)
	if err := c.ProgramPage(a, d); err != nil {
		t.Fatal(err)
	}
	if err := c2.ProgramPage(a, d); err != nil {
		t.Fatal(err)
	}
	v1, _ := c.ProbePage(a)
	v2, _ := c2.ProbePage(a)
	if !bytes.Equal(v1, v2) {
		t.Fatal("post-reload operations diverge: RNG state not restored")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a chip image"))); err == nil {
		t.Fatal("garbage image accepted")
	}
}

func TestSaveLoadEmptyChip(t *testing.T) {
	c := NewChip(TestModel(), 5)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.ReadPage(PageAddr{Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatal("reloaded empty chip not erased")
		}
	}
}
