package nand

import (
	"bytes"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// The lazy retention engine's contract (retention.go): AdvanceRetention
// only moves the virtual clock, decay is applied on demand, and nothing
// observable may differ from the eager reference walk. These tests pin
// that contract bit-for-bit.

// retScript drives one chip through a medley of retention-relevant
// operations — programs, partial programs, MLC, fine programs, reads,
// probes, erases, stress cycles — interleaved with bakes, and returns a
// transcript of every observable output (read/probe bytes, error
// strings, ledger). Two chips are behaviourally identical iff their
// transcripts match.
func retScript(c *Chip, withFaults bool) []byte {
	var tr bytes.Buffer
	note := func(err error) {
		if err != nil {
			fmt.Fprintf(&tr, "err:%v\n", err)
		}
	}
	if withFaults {
		c.SetFaultPlan(NewFaultPlan(FaultConfig{
			Seed:            99,
			EraseFailProb:   0.25,
			ProgramFailProb: 0.05,
			PPFailProb:      0.05,
			ReadDisturbProb: 0.3,
			BadBlockFrac:    0.2,
		}))
	}
	g := c.Geometry()
	rng := rand.New(rand.NewPCG(11, 22))
	page := func(b, p int) PageAddr { return PageAddr{Block: b, Page: p} }
	sense := func(a PageAddr) {
		if lv, err := c.ProbePage(a); err == nil {
			tr.Write(lv)
		} else {
			note(err)
		}
		if d, err := c.ReadPage(a); err == nil {
			tr.Write(d)
		} else {
			note(err)
		}
	}
	note(c.CycleBlock(1, 1500))
	note(c.CycleBlock(2, 3000))
	for b := 0; b < 3; b++ {
		for p := 0; p < 3; p++ {
			note(c.ProgramPage(page(b, p), randPageData(rng, g.PageBytes)))
		}
	}
	c.AdvanceRetention(4 * RetentionMonth)
	sense(page(0, 0))
	sense(page(2, 2))
	// Partial programming on top of decayed cells, plus neighbour disturb.
	cells := []int{0, 7, 31, 100, 101, g.CellsPerPage() - 1}
	for k := 0; k < 3; k++ {
		note(c.PartialProgram(page(1, 4), cells))
	}
	c.AdvanceRetention(9 * RetentionMonth)
	note(c.FineProgram(page(0, 4), cells, 120))
	sense(page(1, 4))
	sense(page(1, 3)) // disturb victim neighbour
	// Erases and re-programs roll the epoch (fresh jitter streams); under
	// faults some of these fail in place, changing PEC while voltages stay.
	for b := 0; b < 3; b++ {
		note(c.EraseBlock(b))
	}
	c.AdvanceRetention(2 * RetentionMonth)
	for b := 0; b < 3; b++ {
		note(c.ProgramPage(page(b, 1), randPageData(rng, g.PageBytes)))
	}
	note(c.ProgramPageMLC(page(3, 0), randPageData(rng, g.PageBytes), randPageData(rng, g.PageBytes)))
	c.AdvanceRetention(30 * RetentionMonth)
	if lo, hi, err := c.ReadPageMLC(page(3, 0)); err == nil {
		tr.Write(lo)
		tr.Write(hi)
	} else {
		note(err)
	}
	note(c.StressCycleBlock(4, [][]int{cells}))
	note(c.ProgramPage(page(4, 0), randPageData(rng, g.PageBytes)))
	c.AdvanceRetention(6 * RetentionMonth)
	// Final sweep over everything materialised.
	for b := 0; b < 5; b++ {
		for p := 0; p < g.PagesPerBlock; p++ {
			sense(page(b, p))
		}
	}
	fmt.Fprintf(&tr, "ledger:%+v\n", c.Ledger())
	return tr.Bytes()
}

// TestLazyEagerBitIdentical is the nand-level equivalence suite: the lazy
// engine and the eager reference walk must produce bit-identical
// transcripts over an operation medley, with and without fault injection.
func TestLazyEagerBitIdentical(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		name := "pristine"
		if withFaults {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			lazy := NewChip(TestModel(), 42)
			eager := NewChip(TestModel(), 42)
			eager.SetEagerRetention(true)
			lt := retScript(lazy, withFaults)
			et := retScript(eager, withFaults)
			if !bytes.Equal(lt, et) {
				t.Fatalf("lazy and eager transcripts differ (%d vs %d bytes)", len(lt), len(et))
			}
			if withFaults && lazy.FaultPlan().Stats() != eager.FaultPlan().Stats() {
				t.Fatalf("fault stats diverged: %+v vs %+v",
					lazy.FaultPlan().Stats(), eager.FaultPlan().Stats())
			}
		})
	}
}

// TestBakeComposition is the property test that N small bakes compose to
// one big bake exactly — including when senses happen between the small
// bakes, since senses never perturb stored charge.
func TestBakeComposition(t *testing.T) {
	total := 60 * RetentionMonth
	build := func(seed uint64) (*Chip, []PageAddr) {
		c := NewChip(TestModel(), seed)
		if err := c.CycleBlock(1, 2200); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(seed, 5))
		addrs := []PageAddr{{Block: 0, Page: 0}, {Block: 1, Page: 2}, {Block: 1, Page: 3}}
		for _, a := range addrs {
			if err := c.ProgramPage(a, randPageData(rng, c.Geometry().PageBytes)); err != nil {
				t.Fatal(err)
			}
		}
		return c, addrs
	}
	for seed := uint64(50); seed < 53; seed++ {
		one, addrs := build(seed)
		one.AdvanceRetention(total)

		many, _ := build(seed)
		parts := rand.New(rand.NewPCG(seed, 6))
		left := total
		for left > 0 {
			d := time.Duration(parts.Int64N(int64(20 * RetentionMonth)))
			if d > left || d == 0 {
				d = left
			}
			many.AdvanceRetention(d)
			left -= d
			// Interleaved senses must not change where the decay lands.
			if _, err := many.ProbePage(addrs[0]); err != nil {
				t.Fatal(err)
			}
		}
		if oc, mc := one.Ledger().VirtualClock, many.Ledger().VirtualClock; oc != mc {
			t.Fatalf("seed %d: virtual clocks diverged: %v vs %v", seed, oc, mc)
		}
		for _, a := range addrs {
			po, _ := one.ProbePage(a)
			pm, _ := many.ProbePage(a)
			if !bytes.Equal(po, pm) {
				t.Fatalf("seed %d: %v probes differ between one big and N small bakes", seed, a)
			}
			ro, _ := one.ReadPage(a)
			rm, _ := many.ReadPage(a)
			if !bytes.Equal(ro, rm) {
				t.Fatalf("seed %d: %v reads differ between one big and N small bakes", seed, a)
			}
		}
	}
}

// TestRetentionPersistRoundTrip pins the satellite requirement: a chip
// baked with decay still pending must save, reload, and sense identically
// — including decay that lands only after the reload.
func TestRetentionPersistRoundTrip(t *testing.T) {
	c := NewChip(TestModel(), 77)
	if err := c.CycleBlock(0, 1800); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	a := PageAddr{Block: 0, Page: 1}
	if err := c.ProgramPage(a, randPageData(rng, c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	c.AdvanceRetention(8 * RetentionMonth) // pending: nothing sensed since

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Ledger(), c.Ledger(); got != want {
		t.Fatalf("ledger changed across reload: %+v vs %+v", got, want)
	}
	pc, _ := c.ProbePage(a)
	pr, _ := r.ProbePage(a)
	if !bytes.Equal(pc, pr) {
		t.Fatal("reloaded chip senses pending decay differently")
	}
	// Age both further: the persisted epoch records must keep composing.
	c.AdvanceRetention(16 * RetentionMonth)
	r.AdvanceRetention(16 * RetentionMonth)
	pc, _ = c.ProbePage(a)
	pr, _ = r.ProbePage(a)
	if !bytes.Equal(pc, pr) {
		t.Fatal("post-reload aging diverged from the original chip")
	}
	dc, _ := c.ReadPage(a)
	dr, _ := r.ReadPage(a)
	if !bytes.Equal(dc, dr) {
		t.Fatal("post-reload reads diverged from the original chip")
	}
}

// TestRetentionCrashConsistency checks that pending lazy decay survives
// the FaultPlan power-loss path: a chip that loses power mid-operation
// after a bake must, once power-cycled, sense exactly like a twin that
// never saw the loss.
func TestRetentionCrashConsistency(t *testing.T) {
	build := func() *Chip {
		c := NewChip(TestModel(), 31)
		c.SetFaultPlan(NewFaultPlan(FaultConfig{Seed: 13}))
		rng := rand.New(rand.NewPCG(3, 1))
		if err := c.ProgramPage(PageAddr{Block: 0, Page: 0}, randPageData(rng, c.Geometry().PageBytes)); err != nil {
			t.Fatal(err)
		}
		c.AdvanceRetention(18 * RetentionMonth) // decay pending at the crash
		return c
	}
	crashed := build()
	crashed.FaultPlan().ArmPowerLossAfterPP(0)
	a := PageAddr{Block: 0, Page: 0}
	if err := crashed.PartialProgram(a, []int{1, 2, 3}); err == nil {
		t.Fatal("armed power loss did not fire")
	}
	if _, err := crashed.ReadPage(a); err == nil {
		t.Fatal("reads must fail while power is lost")
	}
	crashed.PowerCycle()

	twin := build()
	for _, c := range []*Chip{crashed, twin} {
		if got := c.Ledger().VirtualClock; got != 18*RetentionMonth {
			t.Fatalf("virtual clock %v, want %v", got, 18*RetentionMonth)
		}
	}
	pc, err := crashed.ProbePage(a)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := twin.ProbePage(a)
	if !bytes.Equal(pc, pt) {
		t.Fatal("pending decay did not survive the power-loss path")
	}
}

// TestResetLedgerPreservesVirtualClock: the clock is physics, not
// accounting.
func TestResetLedgerPreservesVirtualClock(t *testing.T) {
	c := NewChip(TestModel(), 5)
	c.AdvanceRetention(7 * RetentionMonth)
	if _, err := c.ReadPage(PageAddr{}); err != nil {
		t.Fatal(err)
	}
	c.ResetLedger()
	l := c.Ledger()
	if l.Reads != 0 {
		t.Fatal("reset did not clear op counts")
	}
	if l.VirtualClock != 7*RetentionMonth {
		t.Fatalf("reset dropped the virtual clock: %v", l.VirtualClock)
	}
	// And the age still decays state after the reset.
	diff := Ledger{VirtualClock: 9 * RetentionMonth}
	l.Add(diff)
	if l.VirtualClock != 16*RetentionMonth {
		t.Fatal("Ledger.Add ignores the virtual clock")
	}
	if l.Sub(diff).VirtualClock != 7*RetentionMonth {
		t.Fatal("Ledger.Sub ignores the virtual clock")
	}
}

// TestRetentionJitterShape guards the position-keyed jitter stream: mean
// ~0, unit-ish variance, strictly bounded (the clamp to a non-negative
// leak factor depends on the bound).
func TestRetentionJitterShape(t *testing.T) {
	const n = 200000
	base := uint64(0x1234abcd)
	var sum, sq float64
	for i := uint64(0); i < n; i++ {
		j := retJitter(base, i)
		if j <= -3 || j >= 3 {
			t.Fatalf("jitter %f outside (-3,3)", j)
		}
		sum += j
		sq += j * j
	}
	mean := sum / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("jitter mean %f, want ~0", mean)
	}
	if sd := math.Sqrt(sq/n - mean*mean); sd < 0.9 || sd > 1.1 {
		t.Errorf("jitter sd %f, want ~1", sd)
	}
}

// BenchmarkBake measures AdvanceRetention on the full-geometry ModelA
// chip with a realistic working set materialised: the lazy engine is an
// O(1) clock bump, the eager reference walk pays for every live cell.
// The acceptance bar for the lazy engine is >=100x on a 12-month bake.
func BenchmarkBake(b *testing.B) {
	const pages = 8
	build := func(b *testing.B, eager bool) *Chip {
		b.Helper()
		c := NewChip(ModelA(), 1)
		c.SetEagerRetention(eager)
		rng := rand.New(rand.NewPCG(1, 2))
		for p := 0; p < pages; p++ {
			if err := c.ProgramPage(PageAddr{Block: 0, Page: p}, randPageData(rng, c.Geometry().PageBytes)); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}
	// rewind puts the chip back at virtual age zero with the bake's decay
	// un-folded, so every iteration times the same fresh 12-month bake
	// instead of marching the clock toward saturation (and, after ~300
	// years, int64 overflow). The in-package reach is what keeps the
	// timed region honest; its cost is a handful of field writes.
	rewind := func(c *Chip) {
		c.ledger.VirtualClock = 0
		for _, ps := range c.blocks[0].pages {
			if ps != nil {
				ps.retDone, ps.viewDone, ps.viewPinned = 0, viewStale, false
			}
		}
	}
	b.Run("lazy", func(b *testing.B) {
		c := build(b, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rewind(c)
			c.AdvanceRetention(12 * RetentionMonth)
		}
	})
	b.Run("eager", func(b *testing.B) {
		c := build(b, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rewind(c)
			c.AdvanceRetention(12 * RetentionMonth)
		}
	})
}

// BenchmarkBakeEagerFloorPinned shows the eager reference walk no longer
// pays for floor-pinned cells: once a page's decayed view has fully
// settled at LeakFloor, each further bake costs O(1) for that page,
// versus a full cell walk while cells are still live.
func BenchmarkBakeEagerFloorPinned(b *testing.B) {
	model := func() Model {
		m := TestModel()
		m.LeakScale = 300 // deep enough that every cell reaches the floor
		m.LeakJitter = 0
		return m
	}
	build := func(b *testing.B) *Chip {
		b.Helper()
		c := NewChip(model(), 9)
		c.SetEagerRetention(true)
		for p := 0; p < c.Geometry().PagesPerBlock; p++ {
			if _, err := c.ProbePage(PageAddr{Block: 0, Page: p}); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}
	// Second-granularity bakes keep the clock far from both decay
	// saturation and int64 overflow at any iteration count.
	b.Run("live", func(b *testing.B) {
		c := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AdvanceRetention(time.Second)
		}
	})
	b.Run("pinned", func(b *testing.B) {
		c := build(b)
		c.AdvanceRetention(3000 * RetentionMonth) // saturate: all cells at floor
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AdvanceRetention(time.Second)
		}
	})
}
