package nand

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func randPageData(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestGeometryValidate(t *testing.T) {
	good := Geometry{Blocks: 4, PagesPerBlock: 2, PageBytes: 16}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	for _, bad := range []Geometry{
		{Blocks: 0, PagesPerBlock: 2, PageBytes: 16},
		{Blocks: 4, PagesPerBlock: 0, PageBytes: 16},
		{Blocks: 4, PagesPerBlock: 2, PageBytes: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid geometry %+v accepted", bad)
		}
	}
}

func TestModelAMatchesPaperSpecs(t *testing.T) {
	m := ModelA()
	if got := m.TotalBytes(); got != int64(2048)*256*18048 {
		t.Errorf("ModelA capacity = %d", got)
	}
	// Paper §6.1: 90us/1200us/5ms latencies; 50/68/190 uJ energies.
	if m.ReadLatency.Microseconds() != 90 || m.ProgramLatency.Microseconds() != 1200 ||
		m.EraseLatency.Milliseconds() != 5 {
		t.Error("ModelA latencies do not match §6.1")
	}
	if m.ReadEnergy != 50 || m.ProgEnergy != 68 || m.EraseEnergy != 190 {
		t.Error("ModelA energies do not match §6.1")
	}
	if m.RatedPEC != 3000 {
		t.Error("ModelA rated PEC should be 3000")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	c := NewChip(TestModel(), 1)
	rng := rand.New(rand.NewPCG(2, 3))
	data := randPageData(rng, c.Geometry().PageBytes)
	a := PageAddr{Block: 3, Page: 2}
	if err := c.ProgramPage(a, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	// Raw NAND is not error-free: the model's fresh-chip BER is ~3e-5,
	// so a 4096-bit page may legitimately show the odd flipped bit.
	diffBits := 0
	for i := range got {
		diffBits += popcount(got[i] ^ data[i])
	}
	if diffBits > 3 {
		t.Fatalf("read-back differs in %d bits; far above the raw BER budget", diffBits)
	}
}

func TestErasedPageReadsAllOnes(t *testing.T) {
	c := NewChip(TestModel(), 4)
	got, err := c.ReadPage(PageAddr{Block: 0, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xFF {
			t.Fatalf("erased page byte %d = %#x, want 0xFF", i, b)
		}
	}
}

func TestDoubleProgramRejected(t *testing.T) {
	c := NewChip(TestModel(), 5)
	data := make([]byte, c.Geometry().PageBytes)
	a := PageAddr{Block: 1, Page: 1}
	if err := c.ProgramPage(a, data); err != nil {
		t.Fatal(err)
	}
	if err := c.ProgramPage(a, data); err == nil {
		t.Fatal("second program of same page must fail")
	}
}

func TestEraseResetsPage(t *testing.T) {
	c := NewChip(TestModel(), 6)
	a := PageAddr{Block: 2, Page: 0}
	if err := c.ProgramPage(a, make([]byte, c.Geometry().PageBytes)); err != nil { // all zero bits -> all programmed
		t.Fatal(err)
	}
	if err := c.EraseBlock(2); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadPage(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatal("block not erased")
		}
	}
	if c.PEC(2) != 1 {
		t.Fatalf("PEC = %d, want 1", c.PEC(2))
	}
	// Reprogramming must now succeed.
	if err := c.ProgramPage(a, make([]byte, c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
}

func TestBadAddressesRejected(t *testing.T) {
	c := NewChip(TestModel(), 7)
	data := make([]byte, c.Geometry().PageBytes)
	for _, a := range []PageAddr{{Block: -1}, {Block: 1 << 20}, {Block: 0, Page: -1}, {Block: 0, Page: 1 << 20}} {
		if err := c.ProgramPage(a, data); err == nil {
			t.Errorf("program at %v accepted", a)
		}
		if _, err := c.ReadPage(a); err == nil {
			t.Errorf("read at %v accepted", a)
		}
		if _, err := c.ProbePage(a); err == nil {
			t.Errorf("probe at %v accepted", a)
		}
	}
	if err := c.ProgramPage(PageAddr{}, make([]byte, 3)); err == nil {
		t.Error("short data accepted")
	}
}

func TestDeterministicAcrossChipInstances(t *testing.T) {
	run := func() []uint8 {
		c := NewChip(TestModel(), 42)
		rng := rand.New(rand.NewPCG(8, 9))
		data := randPageData(rng, c.Geometry().PageBytes)
		a := PageAddr{Block: 1, Page: 3}
		if err := c.ProgramPage(a, data); err != nil {
			t.Fatal(err)
		}
		p, err := c.ProbePage(a)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical seed and op sequence produced different voltages")
	}
}

func TestDifferentSeedsDifferentSamples(t *testing.T) {
	probe := func(seed uint64) []uint8 {
		c := NewChip(TestModel(), seed)
		p, err := c.ProbePage(PageAddr{Block: 0, Page: 0})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if bytes.Equal(probe(1), probe(2)) {
		t.Fatal("distinct chip samples produced identical voltages")
	}
}

// Voltage can only increase between erases: the fundamental NAND constraint
// VT-HI relies on (§3). Property-checked across random PP pulse sequences.
func TestVoltageMonotoneUnderPP(t *testing.T) {
	c := NewChip(TestModel(), 10)
	a := PageAddr{Block: 0, Page: 0}
	if err := c.ProgramPage(a, randPageData(rand.New(rand.NewPCG(1, 1)), c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	before, _ := c.ProbePage(a)
	f := func(rawCells []uint8) bool {
		cells := make([]int, 0, len(rawCells))
		for _, rc := range rawCells {
			cells = append(cells, int(rc)%c.Geometry().CellsPerPage())
		}
		if err := c.PartialProgram(a, cells); err != nil {
			return false
		}
		after, _ := c.ProbePage(a)
		for _, i := range cells {
			if after[i] < before[i] {
				return false
			}
		}
		before = after
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestProbeIsSideEffectFree(t *testing.T) {
	c := NewChip(TestModel(), 11)
	a := PageAddr{Block: 0, Page: 0}
	if err := c.ProgramPage(a, randPageData(rand.New(rand.NewPCG(4, 4)), c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	p1, _ := c.ProbePage(a)
	p2, _ := c.ProbePage(a)
	if !bytes.Equal(p1, p2) {
		t.Fatal("probe changed cell state")
	}
}

func TestLedgerAccounting(t *testing.T) {
	c := NewChip(TestModel(), 12)
	a := PageAddr{Block: 0, Page: 0}
	if err := c.ProgramPage(a, make([]byte, c.Geometry().PageBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadPage(a); err != nil {
		t.Fatal(err)
	}
	if err := c.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	l := c.Ledger()
	if l.Programs != 1 || l.Reads != 1 || l.Erases != 1 {
		t.Fatalf("ledger = %+v", l)
	}
	m := c.Model()
	wantTime := m.ProgramLatency + m.ReadLatency + m.EraseLatency
	if l.Time != wantTime {
		t.Fatalf("ledger time = %v, want %v", l.Time, wantTime)
	}
	wantEnergy := m.ProgEnergy + m.ReadEnergy + m.EraseEnergy
	if l.EnergyUJ != wantEnergy {
		t.Fatalf("ledger energy = %v, want %v", l.EnergyUJ, wantEnergy)
	}
	c.ResetLedger()
	if c.Ledger() != (Ledger{}) {
		t.Fatal("ResetLedger did not zero the ledger")
	}
}

func TestLedgerSubAdd(t *testing.T) {
	a := Ledger{Reads: 5, Programs: 3, Time: 10, EnergyUJ: 2}
	b := Ledger{Reads: 2, Programs: 1, Time: 4, EnergyUJ: 1}
	d := a.Sub(b)
	if d.Reads != 3 || d.Programs != 2 || d.Time != 6 || d.EnergyUJ != 1 {
		t.Fatalf("Sub = %+v", d)
	}
	var s Ledger
	s.Add(a)
	s.Add(b)
	if s.Reads != 7 || s.Programs != 4 {
		t.Fatalf("Add = %+v", s)
	}
}

func TestCycleBlockAdvancesPEC(t *testing.T) {
	c := NewChip(TestModel(), 13)
	if err := c.CycleBlock(5, 1000); err != nil {
		t.Fatal(err)
	}
	if c.PEC(5) != 1000 {
		t.Fatalf("PEC = %d", c.PEC(5))
	}
}

func TestStressSlowsCells(t *testing.T) {
	c := NewChip(TestModel(), 14)
	a := PageAddr{Block: 0, Page: 0}
	cells := c.Geometry().CellsPerPage()
	stressed := make([]int, 0, cells/2)
	fresh := make([]int, 0, cells/2)
	for i := 0; i < cells; i++ {
		if i%2 == 0 {
			stressed = append(stressed, i)
		} else {
			fresh = append(fresh, i)
		}
	}
	if err := c.StressCells(a, stressed, 625); err != nil {
		t.Fatal(err)
	}
	// Apply the same PP pulses to everything; stressed cells must lag.
	all := make([]int, cells)
	for i := range all {
		all[i] = i
	}
	for k := 0; k < 10; k++ {
		if err := c.PartialProgram(a, all); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := c.ProbePage(a)
	var ms, mf float64
	for _, i := range stressed {
		ms += float64(p[i])
	}
	for _, i := range fresh {
		mf += float64(p[i])
	}
	ms /= float64(len(stressed))
	mf /= float64(len(fresh))
	if ms >= mf {
		t.Fatalf("stressed cells charged faster: stressed mean %.2f vs fresh %.2f", ms, mf)
	}
}

func TestMLCRoundTrip(t *testing.T) {
	c := NewChip(TestModel(), 15)
	rng := rand.New(rand.NewPCG(5, 5))
	lo := randPageData(rng, c.Geometry().PageBytes)
	hi := randPageData(rng, c.Geometry().PageBytes)
	a := PageAddr{Block: 0, Page: 0}
	if err := c.ProgramPageMLC(a, lo, hi); err != nil {
		t.Fatal(err)
	}
	gl, gh, err := c.ReadPageMLC(a)
	if err != nil {
		t.Fatal(err)
	}
	badLo, badHi := 0, 0
	for i := range lo {
		if gl[i] != lo[i] {
			badLo++
		}
		if gh[i] != hi[i] {
			badHi++
		}
	}
	// MLC margins are tighter; allow a small error count on 512 bytes.
	if badLo > 4 || badHi > 4 {
		t.Fatalf("MLC round trip: %d/%d bad lower/upper bytes", badLo, badHi)
	}
}

// TestDistinctChipsConcurrentlySafe exercises the documented concurrency
// contract under the race detector: distinct Chip instances share no
// mutable state, so goroutines may drive their own chips simultaneously.
// Each goroutine runs the same program/probe/erase workload on its own
// chip and must obtain exactly the probe trace a serial run produces —
// any cross-chip interference would either trip -race or perturb the
// deterministic voltages.
func TestDistinctChipsConcurrentlySafe(t *testing.T) {
	workload := func(c *Chip) ([]uint8, error) {
		rng := rand.New(rand.NewPCG(9, 9))
		var probes []uint8
		for round := 0; round < 3; round++ {
			for p := 0; p < c.Geometry().PagesPerBlock; p++ {
				a := PageAddr{Block: 0, Page: p}
				if err := c.ProgramPage(a, randPageData(rng, c.Geometry().PageBytes)); err != nil {
					return nil, err
				}
				lv, err := c.ProbePage(a)
				if err != nil {
					return nil, err
				}
				probes = append(probes, lv...)
			}
			if err := c.EraseBlock(0); err != nil {
				return nil, err
			}
		}
		return probes, nil
	}

	// Serial references, one per seed (the seeds model distinct samples).
	seeds := []uint64{100, 200}
	want := make([][]uint8, len(seeds))
	for i, seed := range seeds {
		var err error
		if want[i], err = workload(NewChip(TestModel(), seed)); err != nil {
			t.Fatal(err)
		}
	}

	got := make([][]uint8, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			got[i], errs[i] = workload(NewChip(TestModel(), seed))
		}(i, seed)
	}
	wg.Wait()
	for i := range seeds {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("chip seed %d: concurrent probe trace differs from serial run", seeds[i])
		}
	}
}
