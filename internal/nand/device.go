package nand

import "time"

// This file defines the backend seam of the repository: the capability-
// segmented device interfaces every layer above the chip is written
// against. The split mirrors the paper's §6.2 command taxonomy:
//
//   - Device is the standard command surface — what ONFI mandates and what
//     the paper's §1 claim ("only standard flash interface commands, i.e.
//     PROGRAM and RESET") is about. Partial programming lives here because
//     it is synthesised from PROGRAM + RESET, not from any vendor command.
//   - VendorDevice adds the vendor/NDA operations §6.2 describes: the
//     read-reference shift "used in modern flash chips by all vendors",
//     controller-grade fine programming, the per-cell characterisation
//     probe, and the firmware-side neighbour-program bookkeeping.
//   - The remaining small interfaces are lab/testbed capabilities — fault
//     injection, stress cycling, retention baking, cost accounting — that
//     a production backend need not provide; consumers that want one
//     type-assert for it (see PlanOf) or demand LabDevice outright.
//
// Implementations: *Chip (the voltage-level simulator, direct calls) and
// *onfi.Device (the same chip driven purely through bus command cycles).
// *obs.Device decorates either with per-operation metrics recording; it
// forwards every call verbatim, so the interfaces here are also the
// transparency contract instrumentation must honour.
//
// # Concurrency
//
// A Device is not safe for concurrent use: operations mutate device state
// (block voltages, PRNG streams, the cost ledger), and real packages
// serialise commands on the bus as well. Drive each Device from a single
// goroutine at a time, or wrap it with external locking.
//
// Distinct Device instances over distinct chips share no mutable state,
// so concurrent goroutines may each drive their own device freely. This
// is the invariant the experiment engine (internal/experiments +
// internal/parallel) relies on: it parallelises across device samples,
// never within one device.

// Device is the standard flash command surface: everything here maps to
// ONFI-mandated transactions (READ, PROGRAM, ERASE, READ STATUS, READ
// PARAMETER PAGE for Geometry/Model metadata) plus the PROGRAM+RESET
// partial-programming idiom of §1. Operations return the package's typed
// errors (ErrProgramFailed, ErrEraseFailed, ErrBadBlock, ErrPowerLoss,
// ErrBlockRange, ErrPageProgrammed, ErrBadDataLength); match with
// errors.Is.
type Device interface {
	// Geometry returns the device layout (blocks, pages, page size).
	Geometry() Geometry
	// Model returns the device parameter sheet (the simulator analogue of
	// the ONFI parameter page: read references, rated PEC, noise model).
	Model() Model
	// PEC returns the program/erase cycle count of a block.
	PEC(block int) int
	// IsBadBlock reports whether a block has been grown bad.
	IsBadBlock(block int) bool
	// EraseBlock erases a block.
	EraseBlock(block int) error
	// CycleBlock fast-forwards wear by n program/erase cycles, leaving
	// the block erased (the pre-conditioning loop of the paper's §4).
	CycleBlock(block, n int) error
	// ProgramPage programs a full page (MSB-first data layout).
	ProgramPage(a PageAddr, data []byte) error
	// ReadPage reads a page at the default public read reference.
	ReadPage(a PageAddr) ([]byte, error)
	// PartialProgram delivers one coarse partial-programming pulse to the
	// listed cells — a PROGRAM aborted by RESET. Cells must be in
	// ascending order; this is what every caller in the repo produces
	// (prng.SelectK/SelectKSparse sort their output) and what keeps
	// bus-level pattern rebuilds bit-identical to direct calls.
	PartialProgram(a PageAddr, cells []int) error
}

// VendorDevice extends Device with the vendor-specific operations of
// §6.2: the ones the paper obtained under NDA or argues a cooperating
// controller vendor would provide.
type VendorDevice interface {
	Device
	// ReadPageRef reads a page against an arbitrary reference threshold
	// (the vendor read-reference-shift command VT-HI decodes with; §5.3).
	ReadPageRef(a PageAddr, ref float64) ([]byte, error)
	// FineProgram charges the listed cells to at least target with
	// controller-grade precision (§6.2's in-controller implementation).
	FineProgram(a PageAddr, cells []int, target float64) error
	// ProbePage measures per-cell voltages quantised to 0..255 (the
	// NDA'd characterisation command; §4).
	ProbePage(a PageAddr) ([]uint8, error)
	// NeighborPrograms reports how many program operations have hit the
	// pages adjacent to a since the block's last erase — firmware-side
	// bookkeeping (§6.2: the firmware issued those programs).
	NeighborPrograms(a PageAddr) (int, error)
}

// BatchDevice is the optional page-granular batch surface of the perf
// campaign: zero-alloc Into variants that fill caller-owned buffers, and
// multi-page group operations that let a backend amortise per-operation
// overhead (the ONFI backend maps page groups onto multi-plane and cached
// command cycles; the chip walks cells in one vectorised pass).
//
// Semantics are pinned to the unbatched surface: a batch op must produce
// bit-identical results and state evolution to the equivalent loop of
// single-page calls, in ascending page order. Group operations stop at the
// first failing page and return how many pages completed before it;
// output buffers hold valid data for exactly those leading pages.
//
// Backends are free not to implement this; use the package-level
// ReadPageInto/ReadPages/ProgramPages/ProbeVoltages helpers, which fall
// back to single-op loops over any Device.
type BatchDevice interface {
	// ReadPageInto reads a page at the default public reference into a
	// caller-owned buffer of exactly PageBytes bytes.
	ReadPageInto(a PageAddr, out []byte) error
	// ReadPageRefInto reads a page at an arbitrary reference into a
	// caller-owned buffer of exactly PageBytes bytes.
	ReadPageRefInto(a PageAddr, ref float64, out []byte) error
	// ProbePageInto probes per-cell voltages into a caller-owned buffer
	// of exactly CellsPerPage levels.
	ProbePageInto(a PageAddr, out []uint8) error
	// ReadPages reads count consecutive pages into out (count*PageBytes
	// bytes) and returns the number of pages fully read.
	ReadPages(start PageAddr, count int, out []byte) (int, error)
	// ProgramPages programs consecutive pages from data (a whole number
	// of page images) and returns the number fully programmed.
	ProgramPages(start PageAddr, data []byte) (int, error)
	// ProbeVoltages probes count consecutive pages into out
	// (count*CellsPerPage levels) and returns the number fully probed.
	ProbeVoltages(start PageAddr, count int, out []uint8) (int, error)
}

// ReadPageInto reads a page into out through the batch surface when the
// backend provides one, falling back to ReadPage plus a copy.
func ReadPageInto(d Device, a PageAddr, out []byte) error {
	if bd, ok := d.(BatchDevice); ok {
		return bd.ReadPageInto(a, out)
	}
	p, err := d.ReadPage(a)
	if err != nil {
		return err
	}
	copy(out, p)
	return nil
}

// ReadPageRefInto reads a page at ref into out through the batch surface
// when available, falling back to ReadPageRef plus a copy.
func ReadPageRefInto(d VendorDevice, a PageAddr, ref float64, out []byte) error {
	if bd, ok := d.(BatchDevice); ok {
		return bd.ReadPageRefInto(a, ref, out)
	}
	p, err := d.ReadPageRef(a, ref)
	if err != nil {
		return err
	}
	copy(out, p)
	return nil
}

// ProbePageInto probes a page into out through the batch surface when
// available, falling back to ProbePage plus a copy.
func ProbePageInto(d VendorDevice, a PageAddr, out []uint8) error {
	if bd, ok := d.(BatchDevice); ok {
		return bd.ProbePageInto(a, out)
	}
	p, err := d.ProbePage(a)
	if err != nil {
		return err
	}
	copy(out, p)
	return nil
}

// ReadPages reads count consecutive pages starting at start into out,
// preferring the backend's batch surface and otherwise looping ReadPage.
func ReadPages(d Device, start PageAddr, count int, out []byte) (int, error) {
	if bd, ok := d.(BatchDevice); ok {
		return bd.ReadPages(start, count, out)
	}
	pb := d.Geometry().PageBytes
	for p := 0; p < count; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		img, err := d.ReadPage(a)
		if err != nil {
			return p, err
		}
		copy(out[p*pb:(p+1)*pb], img)
	}
	return count, nil
}

// ProgramPages programs consecutive page images starting at start,
// preferring the backend's batch surface and otherwise looping
// ProgramPage.
func ProgramPages(d Device, start PageAddr, data []byte) (int, error) {
	if bd, ok := d.(BatchDevice); ok {
		return bd.ProgramPages(start, data)
	}
	pb := d.Geometry().PageBytes
	count := len(data) / pb
	for p := 0; p < count; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		if err := d.ProgramPage(a, data[p*pb:(p+1)*pb]); err != nil {
			return p, err
		}
	}
	return count, nil
}

// ProbeVoltages probes count consecutive pages starting at start into out,
// preferring the backend's batch surface and otherwise looping ProbePage.
func ProbeVoltages(d VendorDevice, start PageAddr, count int, out []uint8) (int, error) {
	if bd, ok := d.(BatchDevice); ok {
		return bd.ProbeVoltages(start, count, out)
	}
	cp := d.Geometry().CellsPerPage()
	for p := 0; p < count; p++ {
		a := PageAddr{Block: start.Block, Page: start.Page + p}
		lv, err := d.ProbePage(a)
		if err != nil {
			return p, err
		}
		copy(out[p*cp:(p+1)*cp], lv)
	}
	return count, nil
}

// FaultInjector is the testbed control plane for deterministic fault
// injection (see faults.go). It is not a bus command set: attaching a
// plan configures the simulated silicon itself.
type FaultInjector interface {
	SetFaultPlan(p *FaultPlan)
	FaultPlan() *FaultPlan
	PowerCycle()
	GrownBadBlocks() []int
}

// StressDevice exposes the bulk program-stress operations the PT-HI
// baseline needs (§2): full stress cycles and per-cell stress writes.
type StressDevice interface {
	StressCycleBlock(block int, cellsPerPage [][]int) error
	StressCells(a PageAddr, cells []int, n int) error
}

// RetentionDevice fast-forwards charge leakage (the bake oven standing in
// for the paper's retention experiments, Fig 11). Implementations
// advance a virtual clock; the chip applies the accumulated decay lazily
// at the next sense of each page (see retention.go), so a bake itself is
// O(1) regardless of how much state is live.
type RetentionDevice interface {
	AdvanceRetention(d time.Duration)
}

// LedgerDevice exposes the operation cost accounting behind the §8
// throughput/energy/wear analyses.
type LedgerDevice interface {
	Ledger() Ledger
	ResetLedger()
}

// StateDropper releases materialised analog state without erase
// semantics — a simulator-only affordance for long sweeps.
type StateDropper interface {
	DropBlockState(block int) error
}

// MLCDevice programs/reads pages in two-bit MLC mode (Fig 1).
type MLCDevice interface {
	ProgramPageMLC(a PageAddr, lower, upper []byte) error
	ReadPageMLC(a PageAddr) (lower, upper []byte, err error)
}

// LabDevice is the full characterisation-rig surface the tester and the
// experiment suite drive: vendor commands plus every lab capability.
type LabDevice interface {
	VendorDevice
	FaultInjector
	StressDevice
	RetentionDevice
	LedgerDevice
	StateDropper
	MLCDevice
}

// PlanOf returns the fault plan attached to a device, or nil when the
// backend does not support fault injection (or has no plan attached).
func PlanOf(d Device) *FaultPlan {
	if fi, ok := d.(FaultInjector); ok {
		return fi.FaultPlan()
	}
	return nil
}

// PageIndex flattens a page address into the device-wide page number
// (block-major). Shared by every layer that needs a stable per-page
// nonce or row address.
func PageIndex(g Geometry, a PageAddr) uint64 {
	return uint64(a.Block)*uint64(g.PagesPerBlock) + uint64(a.Page)
}

// The simulator chip implements the complete surface via direct calls.
var (
	_ VendorDevice = (*Chip)(nil)
	_ LabDevice    = (*Chip)(nil)
	_ BatchDevice  = (*Chip)(nil)
)
