package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMomentsBasics(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if got := m.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := m.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", got, 32.0/7)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Errorf("min/max = %v/%v", m.Min(), m.Max())
	}
	s := m.Summarize()
	if s.N != 8 || s.Mean != m.Mean() {
		t.Errorf("summary mismatch: %+v", s)
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Var() != 0 || m.Std() != 0 {
		t.Error("empty moments must be zero")
	}
}

func TestMomentsMatchesDirectComputation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 2 + rng.IntN(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		var m Moments
		m.AddAll(xs)
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(m.Mean()-mean) < 1e-9 && math.Abs(m.Var()-v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 256, 256)
	h.Add(0)
	h.Add(255.4)
	h.Add(127)
	if h.Count(0) != 1 || h.Count(255) != 1 || h.Count(127) != 1 {
		t.Fatalf("counts wrong: %v %v %v", h.Count(0), h.Count(255), h.Count(127))
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Clipped() != 0 {
		t.Fatalf("clipped = %d", h.Clipped())
	}
	h.Add(-5)
	h.Add(400)
	if h.Clipped() != 2 {
		t.Fatalf("clipped = %d, want 2", h.Clipped())
	}
	if h.Count(0) != 2 || h.Count(255) != 2 {
		t.Fatal("clipped values not clamped into edge bins")
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	h := NewHistogram(0, 100, 50)
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64() * 100)
	}
	s := 0.0
	for _, f := range h.Fractions() {
		s += f
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", s)
	}
}

func TestHistogramMeanModeQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(4.5) // everything in bin 4
	}
	if got := h.Mean(); math.Abs(got-4.5) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if got := h.Mode(); math.Abs(got-4.5) > 1e-9 {
		t.Errorf("mode = %v", got)
	}
	q := h.Quantile(0.5)
	if q < 4 || q > 5 {
		t.Errorf("median = %v, want within bin [4,5)", q)
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 10 {
		t.Error("extreme quantiles must hit range edges")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(5, 5, 10) },
		func() { NewHistogram(0, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestKSIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	a := NewHistogram(0, 100, 100)
	b := NewHistogram(0, 100, 100)
	for i := 0; i < 20000; i++ {
		a.Add(rng.NormFloat64()*10 + 50)
		b.Add(rng.NormFloat64()*10 + 50)
	}
	d := KSStatistic(a, b)
	if d > 0.03 {
		t.Errorf("KS of identical distributions = %v", d)
	}
	p := KSPValue(d, a.Total(), b.Total())
	if p < 0.01 {
		t.Errorf("p-value %v rejects identical distributions", p)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	a := NewHistogram(0, 100, 100)
	b := NewHistogram(0, 100, 100)
	for i := 0; i < 5000; i++ {
		a.Add(rng.NormFloat64()*10 + 40)
		b.Add(rng.NormFloat64()*10 + 60)
	}
	d := KSStatistic(a, b)
	if d < 0.3 {
		t.Errorf("KS of shifted distributions = %v, want large", d)
	}
	if p := KSPValue(d, a.Total(), b.Total()); p > 1e-6 {
		t.Errorf("p-value %v fails to reject shifted distributions", p)
	}
}

func TestKSPanicsOnMismatchedBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	KSStatistic(NewHistogram(0, 10, 10), NewHistogram(0, 10, 20))
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 1, 1})
	if m != 1 || s != 0 {
		t.Errorf("MeanStd = %v, %v", m, s)
	}
}
