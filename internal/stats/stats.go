// Package stats provides the statistical primitives used throughout the
// VT-HI reproduction: streaming moments, histograms over normalized flash
// voltage levels, percentiles, and two-sample distribution tests.
//
// The package is deliberately small and dependency-free; it exists so that
// the chip characterisation code (internal/tester), the detectability
// analysis (internal/svm feature extraction) and the experiment harness all
// agree on one histogram definition — the paper reports every distribution
// as "% of cells in block/page" over normalized voltage units, and that is
// exactly what Histogram produces.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates streaming mean/variance using Welford's algorithm.
// The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddAll folds a slice of observations into the accumulator.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// N returns the number of observations seen so far.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean, or 0 if no observations were added.
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the unbiased sample variance (n-1 denominator).
func (m *Moments) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Std returns the sample standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest observation, or 0 if none were added.
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation, or 0 if none were added.
func (m *Moments) Max() float64 { return m.max }

// Summary is a point-in-time snapshot of a Moments accumulator. It is the
// feature vector the paper's final SVM experiment uses ("BER, mean voltage,
// and its standard deviation").
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize snapshots the accumulator.
func (m *Moments) Summarize() Summary {
	return Summary{N: m.n, Mean: m.Mean(), Std: m.Std(), Min: m.min, Max: m.max}
}

// Histogram is a fixed-bin histogram over a closed value range. Flash
// voltage probes quantise to normalized units 0..255, so the canonical
// instantiation is NewHistogram(0, 256, 256): one bin per probe level.
type Histogram struct {
	lo, hi  float64
	binW    float64
	counts  []int
	total   int
	clipped int
}

// NewHistogram creates a histogram with bins splitting [lo, hi) evenly.
// It panics if hi <= lo or bins < 1; both indicate a programming error.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram range [%v, %v)", lo, hi))
	}
	if bins < 1 {
		panic(fmt.Sprintf("stats: invalid bin count %d", bins))
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		binW:   (hi - lo) / float64(bins),
		counts: make([]int, bins),
	}
}

// Add records one observation. Values outside [lo, hi) are clamped into the
// first/last bin and counted as clipped; flash probes saturate the same way.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.binW)
	if i < 0 {
		i = 0
		h.clipped++
	} else if i >= len(h.counts) {
		i = len(h.counts) - 1
		h.clipped++
	}
	h.counts[i]++
	h.total++
}

// AddAll records a slice of observations.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the raw count in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Clipped returns how many observations fell outside [lo, hi).
func (h *Histogram) Clipped() int { return h.clipped }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.binW
}

// Fraction returns the fraction of observations in bin i, in [0,1].
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Fractions returns the normalized bin heights ("% of cells" divided by
// 100). The returned slice is freshly allocated.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	for i := range h.counts {
		out[i] = h.Fraction(i)
	}
	return out
}

// CDF returns the empirical cumulative distribution evaluated at the upper
// edge of each bin.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	cum := 0
	for i, c := range h.counts {
		cum += c
		if h.total > 0 {
			out[i] = float64(cum) / float64(h.total)
		}
	}
	return out
}

// Mean returns the histogram mean estimated from bin centers.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for i, c := range h.counts {
		s += float64(c) * h.BinCenter(i)
	}
	return s / float64(h.total)
}

// Mode returns the center of the fullest bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.counts {
		if c > h.counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Quantile returns the q-th quantile (0 <= q <= 1) estimated from the
// histogram by linear interpolation within the containing bin.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return h.lo
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(h.total)
	cum := 0.0
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.binW
		}
		cum = next
	}
	return h.hi
}

// KSStatistic computes the two-sample Kolmogorov–Smirnov statistic between
// two histograms with identical binning. The paper argues hidden and normal
// distributions are visually indistinguishable (Fig 9); KS gives that claim
// a number. It panics on mismatched binning — comparing histograms with
// different bins is a programming error, not a data condition.
func KSStatistic(a, b *Histogram) float64 {
	if a.Bins() != b.Bins() || a.lo != b.lo || a.hi != b.hi {
		panic("stats: KSStatistic requires identically binned histograms")
	}
	ca, cb := a.CDF(), b.CDF()
	d := 0.0
	for i := range ca {
		if diff := math.Abs(ca[i] - cb[i]); diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue approximates the two-sided p-value of the two-sample KS test
// with sample sizes n and m via the asymptotic Kolmogorov distribution.
func KSPValue(d float64, n, m int) float64 {
	if n == 0 || m == 0 {
		return 1
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	// Kolmogorov series; converges fast for lambda > 0.3.
	sum := 0.0
	for j := 1; j <= 100; j++ {
		term := 2 * math.Pow(-1, float64(j-1)) * math.Exp(-2*lambda*lambda*float64(j*j))
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Percentile returns the p-th percentile (0..100) of xs by sorting a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(c) {
		return c[len(c)-1]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// MeanStd returns the mean and sample standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	var m Moments
	m.AddAll(xs)
	return m.Mean(), m.Std()
}
