package wom

import "testing"

// TestCodewordsDistinct checks every (value, generation) pair maps to a
// unique programmed-cell mask, so decoding recovers both.
func TestCodewordsDistinct(t *testing.T) {
	seen := map[uint8]string{}
	for v := uint8(0); v < 4; v++ {
		for _, g := range []uint8{Gen1, Gen2} {
			m := ProgrammedSet(v, g)
			if prev, dup := seen[m]; dup {
				t.Fatalf("mask %03b encodes both %s and (v=%d,g=%d)", m, prev, v, g)
			}
			seen[m] = string(rune('0'+v)) + "g" + string(rune('0'+g))
		}
	}
	if len(seen) != 8 {
		t.Fatalf("expected all 8 masks used, got %d", len(seen))
	}
}

// TestDecodeInvertsEncode checks Decode is the exact inverse of
// ProgrammedSet over the whole code.
func TestDecodeInvertsEncode(t *testing.T) {
	for v := uint8(0); v < 4; v++ {
		for _, g := range []uint8{Gen1, Gen2} {
			gotV, gotG := Decode(ProgrammedSet(v, g))
			if gotV != v || gotG != g {
				t.Fatalf("Decode(ProgrammedSet(%d,%d)) = (%d,%d)", v, g, gotV, gotG)
			}
		}
	}
}

// TestUpgradeIsMonotone checks the NAND-critical property: a same-value
// generation upgrade only ever programs additional cells (gen1 set is a
// strict subset of gen2 set), and UpgradeSet is exactly the difference.
func TestUpgradeIsMonotone(t *testing.T) {
	for v := uint8(0); v < 4; v++ {
		g1, g2 := ProgrammedSet(v, Gen1), ProgrammedSet(v, Gen2)
		if g1&^g2 != 0 {
			t.Fatalf("value %d: gen1 mask %03b not a subset of gen2 mask %03b", v, g1, g2)
		}
		if up := UpgradeSet(v); up != g2&^g1 {
			t.Fatalf("value %d: UpgradeSet %03b != gen2\\gen1 %03b", v, up, g2&^g1)
		}
		if g1 == g2 {
			t.Fatalf("value %d: generations indistinguishable (mask %03b)", v, g1)
		}
	}
}

// TestDecodeTotal checks every 3-bit mask decodes without panicking and
// re-encodes to itself — the code has no invalid words, so a public read
// never faces an undecodable triple.
func TestDecodeTotal(t *testing.T) {
	for m := uint8(0); m < 8; m++ {
		v, g := Decode(m)
		if back := ProgrammedSet(v, g); back != m {
			t.Fatalf("mask %03b decodes to (v=%d,g=%d) which re-encodes to %03b", m, v, g, back)
		}
	}
}
