// Package wom implements the two-generation write-once-memory code the
// PEARL-style FTL hiding scheme (core/womftl) rides on: 2 public bits per
// 3 NAND cells, writable twice without an erase. The code is a
// nested-generation variant of the classic Rivest–Shamir 2-write WOM
// code, chosen so every value's first-generation cell set is a strict
// subset of its second-generation set — upgrading a triple to the same
// public value only ever programs additional cells, which is the only
// state change NAND permits without an erase.
//
// The deniability channel is the generation choice itself: both
// generations of a value decode to the same public bits, so whether a
// triple was written "fresh" (generation 1) or "upgraded" (generation 2)
// is invisible to a public read yet carries one hidden bit per selected
// triple for a key holder (PEARL, arXiv:2009.02011).
//
// Cell convention follows NAND data bits: 1 = erased, 0 = programmed.
//
//	value  gen-1 programmed set   gen-2 programmed set
//	 00           {}                   {0,1,2}
//	 01           {0}                  {0,1}
//	 10           {1}                  {1,2}
//	 11           {2}                  {0,2}
//
// All eight patterns are distinct, so decoding recovers both the value
// and the generation: programmed weight 0/1 is generation 1, weight 2/3
// generation 2.
//
// Only hiding-scheme packages (internal/core/...) may import this
// package; the layering lint enforces it.
package wom

// CellsPerTriple is the code's block length in cells.
const CellsPerTriple = 3

// BitsPerTriple is the public payload of one triple.
const BitsPerTriple = 2

// Generations a triple can be in.
const (
	Gen1 = 1
	Gen2 = 2
)

// gen1Sets[v] and gen2Sets[v] are the programmed-cell masks (bit i set =
// cell i programmed) for value v at each generation. gen1Sets[v] is a
// subset of gen2Sets[v] for every v — the monotonicity that makes the
// upgrade a pure additive program.
var (
	gen1Sets = [4]uint8{0b000, 0b001, 0b010, 0b100}
	gen2Sets = [4]uint8{0b111, 0b011, 0b110, 0b101}
)

// decodeTab maps a 3-bit programmed mask to (value, generation).
var decodeTab = [8]struct{ value, gen uint8 }{}

func init() {
	for v := uint8(0); v < 4; v++ {
		decodeTab[gen1Sets[v]] = struct{ value, gen uint8 }{v, Gen1}
		decodeTab[gen2Sets[v]] = struct{ value, gen uint8 }{v, Gen2}
	}
}

// Decode maps a triple's programmed-cell mask (bit i set = cell i
// programmed) to its public value and generation. Every mask is a valid
// codeword, so Decode is total.
func Decode(programmedMask uint8) (value, gen uint8) {
	e := decodeTab[programmedMask&0b111]
	return e.value, e.gen
}

// ProgrammedSet returns the programmed-cell mask encoding value at gen.
func ProgrammedSet(value, gen uint8) uint8 {
	if gen == Gen2 {
		return gen2Sets[value&0b11]
	}
	return gen1Sets[value&0b11]
}

// UpgradeSet returns the mask of cells to program to move value's triple
// from generation 1 to generation 2 (the set difference gen2 \ gen1).
func UpgradeSet(value uint8) uint8 {
	return gen2Sets[value&0b11] &^ gen1Sets[value&0b11]
}
