package fleet

import (
	"runtime"
	"time"

	"stashflash/internal/nand"
)

// Cross-tenant batching: with Config.Batching set, batch-façade
// submissions do not cross the chip's request channel one by one.
// Each submitter appends its operation to the chip worker's pending
// queue (a mutex-guarded slice) and rings the worker's doorbell; the
// worker pulls whole batches straight from that queue, MaxOps at a
// time. While the worker executes batch k, the submitters woken by
// batch k-1's responses append batch k+1 — group commit without a
// leader: no submitter ever carries a flush duty, and under load the
// worker never parks between batches.
//
// Determinism argument (the property equiv_test.go pins): a chip's
// result stream is a function of the order its operations execute in,
// and coalescing changes only how operations cross to the worker, never
// their order — pending operations are appended under the worker mutex
// and pulled FIFO, and the worker executes a batch front to back, so
// the chip observes exactly the arrival order it would have observed
// unbatched. Timing (the Window knob, scheduler interleavings) moves
// batch boundaries, and batch boundaries are invisible to the chip.
// Concurrent submitters to one shard race for arrival order either way;
// any order the batched path can produce, the unbatched path can too.
//
// Liveness: submitters park only on their own buffered response
// channel, and the worker never blocks delivering a response, so the
// only parked state is the worker's idle select on (requests,
// doorbell). The doorbell has one slot: after an append, either the
// worker is awake (its next pull sees the operation) or the doorbell
// holds a token that wakes it — an appended operation is never
// stranded. Close interacts safely: admission registers the operation
// in the fleet's inflight group before it is appended, so Close's
// inflight.Wait cannot pass while a pending operation has not been
// answered, and the request channels close only after that — the
// worker's pending queue is provably empty by the time it sees the
// closed channel and exits.

// submit routes one batch-façade operation: through the worker's
// pending queue when Config.Batching is set, else the plain ExecOn
// path. The operation lands on the worker resolved at admission time —
// exactly the worker a direct ExecOn would have used — so a remap that
// races the submission plays out identically on both paths.
func (f *Fleet) submit(shard int, fn func(chip int, dev nand.LabDevice) error) error {
	if f.cfg.Batching == nil {
		return f.ExecOn(shard, fn)
	}
	w, err := f.acquire(shard)
	if err != nil {
		return err
	}
	defer f.release(shard)
	req := request{fn: fn, resp: respPool.Get().(chan response)}
	w.cmu.Lock()
	w.pending = append(w.pending, req)
	w.cmu.Unlock()
	select {
	case w.bell <- struct{}{}:
	default: // a wake-up is already on its way
	}
	resp := <-req.resp
	respPool.Put(req.resp)
	if resp.dead {
		return f.retire(shard, resp.chip, resp.err)
	}
	return resp.err
}

// grab pulls the next batch off the worker's pending queue, MaxOps at
// most, into the worker's reusable scratch buffer (safe: the previous
// batch is fully processed before the next grab). Returns nil when
// nothing is pending.
func (w *chipWorker) grab() []request {
	w.cmu.Lock()
	n := len(w.pending)
	if n == 0 {
		w.cmu.Unlock()
		return nil
	}
	if n > w.maxOps {
		n = w.maxOps
	}
	batch := append(w.scratch[:0], w.pending[:n]...)
	rest := copy(w.pending, w.pending[n:])
	for i := rest; i < len(w.pending); i++ {
		w.pending[i] = request{} // drop closure refs for the GC
	}
	w.pending = w.pending[:rest]
	w.cmu.Unlock()
	w.scratch = batch
	return batch
}

// runCoalesced is the worker loop with batching on: pull batches from
// the pending queue while they last, park on (requests, doorbell) when
// idle. Direct-path submissions (Exec/ExecOn) still arrive on the
// request channel; the non-blocking drain after every pulled batch
// keeps them from starving behind sustained façade load.
func (w *chipWorker) runCoalesced() {
	for {
		// The group-commit "wait for followers" beat, once per pull:
		// the submitters readied by the previous batch's responses (or
		// the one that just rang the doorbell — goready schedules it
		// ahead of everything else) get a turn to append before the
		// grab. Without the yield a woken worker races each submitter
		// one-on-one and pulls nothing but singletons. An optional
		// non-zero Window trades latency for occupancy by lingering
		// outright; idle workers pay neither — they park in the select
		// below.
		if w.window > 0 {
			time.Sleep(w.window)
		} else {
			runtime.Gosched()
		}
		batch := w.grab()
		if batch == nil {
			select {
			case b, ok := <-w.reqs:
				if !ok {
					return
				}
				w.process(b)
			case <-w.bell:
			}
			continue
		}
		w.process(batch)
		select {
		case b, ok := <-w.reqs:
			if !ok {
				return
			}
			w.process(b)
		default:
		}
	}
}
