package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
	"stashflash/internal/parallel"
)

// Fleet-vs-sequential equivalence: a shard's operation stream applied
// through the fleet — at any submitter fan-out — must be bit-identical
// to the same stream applied to the standalone reference device
// Config.Device builds. Every sensed byte (reads, batch reads, voltage
// probes) folds into a per-shard SHA-256 transcript digest; digest
// equality across {sequential, workers=1, workers=4, workers=16} is the
// bit-identity proof the acceptance criteria pin.

// equivRounds is the number of workload rounds per shard.
const equivRounds = 5

// shardStream derives the shard's private workload PRNG — the same
// partitioned-stream recipe the fleet itself uses for chip seeds, under
// a test-owned domain so the two never collide.
func shardStream(seed uint64, shard int) *rand.Rand {
	a, b := nand.StreamSeed(seed, "fleet/equivtest", uint64(shard))
	return rand.New(rand.NewPCG(a, b))
}

// runEquivRound applies one deterministic round of mixed operations to
// dev, folding every observable output into h. The rng must be the
// shard's private stream: both the reference walk and the fleet walk
// consume it in the same order, so any divergence in device state shows
// up as a digest mismatch.
func runEquivRound(dev nand.LabDevice, rng *rand.Rand, round int, h hash.Hash) error {
	g := dev.Geometry()
	b := round % g.Blocks
	if err := dev.EraseBlock(b); err != nil {
		return fmt.Errorf("round %d erase: %w", round, err)
	}
	// Two full-page programs with stream-derived data.
	data := make([]byte, g.PageBytes)
	for p := 0; p < 2 && p < g.PagesPerBlock; p++ {
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		if err := dev.ProgramPage(nand.PageAddr{Block: b, Page: p}, data); err != nil {
			return fmt.Errorf("round %d program page %d: %w", round, p, err)
		}
	}
	// Batch read-back through the BatchDevice fast path.
	buf := make([]byte, 2*g.PageBytes)
	if _, err := nand.ReadPages(dev, nand.PageAddr{Block: b, Page: 0}, 2, buf); err != nil {
		return fmt.Errorf("round %d batch read: %w", round, err)
	}
	h.Write(buf)
	// Voltage probe of the first programmed page.
	levels, err := dev.ProbePage(nand.PageAddr{Block: b, Page: 0})
	if err != nil {
		return fmt.Errorf("round %d probe: %w", round, err)
	}
	h.Write(levels)
	// A partial-programming pulse on the last page (erased: the pulse
	// nudges analog state the next probe must reproduce exactly).
	last := nand.PageAddr{Block: b, Page: g.PagesPerBlock - 1}
	cells := []int{3, 17, 64, 200, 511}
	if err := dev.PartialProgram(last, cells); err != nil {
		return fmt.Errorf("round %d partial program: %w", round, err)
	}
	levels, err = dev.ProbePage(last)
	if err != nil {
		return fmt.Errorf("round %d post-PP probe: %w", round, err)
	}
	h.Write(levels)
	return nil
}

// sequentialDigests drives each shard's reference device on the calling
// goroutine and returns the per-shard transcript digests.
func sequentialDigests(t *testing.T, cfg Config) []string {
	t.Helper()
	out := make([]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		dev := cfg.Device(s)
		rng := shardStream(cfg.Seed, s)
		h := sha256.New()
		for r := 0; r < equivRounds; r++ {
			if err := runEquivRound(dev, rng, r, h); err != nil {
				t.Fatalf("reference shard %d: %v", s, err)
			}
		}
		out[s] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// fleetDigests drives the same per-shard streams through a fresh fleet,
// submitting from `workers` goroutines (one shard per work unit, each
// round a separate queue crossing so the command queue really is
// exercised between operations).
func fleetDigests(t *testing.T, cfg Config, workers int) []string {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := make([]string, cfg.Shards)
	err = parallel.ForEach(workers, cfg.Shards, func(s int) error {
		rng := shardStream(cfg.Seed, s)
		h := sha256.New()
		for r := 0; r < equivRounds; r++ {
			r := r
			if err := f.Exec(s, func(dev nand.LabDevice) error {
				return runEquivRound(dev, rng, r, h)
			}); err != nil {
				return err
			}
		}
		out[s] = hex.EncodeToString(h.Sum(nil))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFleetBitIdenticalToSequential is the acceptance-criteria suite: a
// 24-chip sharded run must be bit-identical to the sequential
// single-chip reference at submitter worker counts 1, 4 and 16, over
// both device backends.
func TestFleetBitIdenticalToSequential(t *testing.T) {
	for _, backend := range []string{"direct", "onfi"} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{
				Shards:  24,
				Spares:  2,
				Model:   nand.ModelA().ScaleGeometry(8, 4, 512),
				Seed:    0xF1EE7,
				Backend: backend,
			}
			want := sequentialDigests(t, cfg)
			for _, workers := range []int{1, 4, 16} {
				got := fleetDigests(t, cfg, workers)
				for s := range want {
					if got[s] != want[s] {
						t.Fatalf("backend=%s workers=%d: shard %d transcript %s != sequential reference %s",
							backend, workers, s, got[s], want[s])
					}
				}
			}
		})
	}
}

// TestFleetDigestsVaryAcrossShardsAndSeeds guards the equivalence suite
// itself against vacuous passes: distinct shards (distinct physical
// samples) and distinct fleet seeds must produce distinct transcripts.
func TestFleetDigestsVaryAcrossShardsAndSeeds(t *testing.T) {
	cfg := Config{Shards: 2, Model: nand.ModelA().ScaleGeometry(8, 4, 512), Seed: 11}
	a := sequentialDigests(t, cfg)
	if a[0] == a[1] {
		t.Error("two shards produced identical transcripts")
	}
	cfg.Seed = 12
	b := sequentialDigests(t, cfg)
	if a[0] == b[0] {
		t.Error("two fleet seeds produced identical transcripts")
	}
}
