package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand/v2"
	"testing"

	"stashflash/internal/nand"
	"stashflash/internal/parallel"
)

// Fleet-vs-sequential equivalence: a shard's operation stream applied
// through the fleet — at any submitter fan-out — must be bit-identical
// to the same stream applied to the standalone reference device
// Config.Device builds. Every sensed byte (reads, batch reads, voltage
// probes) folds into a per-shard SHA-256 transcript digest; digest
// equality across {sequential, workers=1, workers=4, workers=16} is the
// bit-identity proof the acceptance criteria pin.

// equivRounds is the number of workload rounds per shard.
const equivRounds = 5

// shardStream derives the shard's private workload PRNG — the same
// partitioned-stream recipe the fleet itself uses for chip seeds, under
// a test-owned domain so the two never collide.
func shardStream(seed uint64, shard int) *rand.Rand {
	a, b := nand.StreamSeed(seed, "fleet/equivtest", uint64(shard))
	return rand.New(rand.NewPCG(a, b))
}

// runEquivRound applies one deterministic round of mixed operations to
// dev, folding every observable output into h. The rng must be the
// shard's private stream: both the reference walk and the fleet walk
// consume it in the same order, so any divergence in device state shows
// up as a digest mismatch.
func runEquivRound(dev nand.LabDevice, rng *rand.Rand, round int, h hash.Hash) error {
	g := dev.Geometry()
	b := round % g.Blocks
	if err := dev.EraseBlock(b); err != nil {
		return fmt.Errorf("round %d erase: %w", round, err)
	}
	// Two full-page programs with stream-derived data.
	data := make([]byte, g.PageBytes)
	for p := 0; p < 2 && p < g.PagesPerBlock; p++ {
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		if err := dev.ProgramPage(nand.PageAddr{Block: b, Page: p}, data); err != nil {
			return fmt.Errorf("round %d program page %d: %w", round, p, err)
		}
	}
	// Batch read-back through the BatchDevice fast path.
	buf := make([]byte, 2*g.PageBytes)
	if _, err := nand.ReadPages(dev, nand.PageAddr{Block: b, Page: 0}, 2, buf); err != nil {
		return fmt.Errorf("round %d batch read: %w", round, err)
	}
	h.Write(buf)
	// Voltage probe of the first programmed page.
	levels, err := dev.ProbePage(nand.PageAddr{Block: b, Page: 0})
	if err != nil {
		return fmt.Errorf("round %d probe: %w", round, err)
	}
	h.Write(levels)
	// A partial-programming pulse on the last page (erased: the pulse
	// nudges analog state the next probe must reproduce exactly).
	last := nand.PageAddr{Block: b, Page: g.PagesPerBlock - 1}
	cells := []int{3, 17, 64, 200, 511}
	if err := dev.PartialProgram(last, cells); err != nil {
		return fmt.Errorf("round %d partial program: %w", round, err)
	}
	levels, err = dev.ProbePage(last)
	if err != nil {
		return fmt.Errorf("round %d post-PP probe: %w", round, err)
	}
	h.Write(levels)
	return nil
}

// sequentialDigests drives each shard's reference device on the calling
// goroutine and returns the per-shard transcript digests.
func sequentialDigests(t *testing.T, cfg Config) []string {
	t.Helper()
	out := make([]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		dev := cfg.Device(s)
		rng := shardStream(cfg.Seed, s)
		h := sha256.New()
		for r := 0; r < equivRounds; r++ {
			if err := runEquivRound(dev, rng, r, h); err != nil {
				t.Fatalf("reference shard %d: %v", s, err)
			}
		}
		out[s] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// fleetDigests drives the same per-shard streams through a fresh fleet,
// submitting from `workers` goroutines (one shard per work unit, each
// round a separate queue crossing so the command queue really is
// exercised between operations).
func fleetDigests(t *testing.T, cfg Config, workers int) []string {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := make([]string, cfg.Shards)
	err = parallel.ForEach(workers, cfg.Shards, func(s int) error {
		rng := shardStream(cfg.Seed, s)
		h := sha256.New()
		for r := 0; r < equivRounds; r++ {
			r := r
			if err := f.Exec(s, func(dev nand.LabDevice) error {
				return runEquivRound(dev, rng, r, h)
			}); err != nil {
				return err
			}
		}
		out[s] = hex.EncodeToString(h.Sum(nil))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFleetBitIdenticalToSequential is the acceptance-criteria suite: a
// 24-chip sharded run must be bit-identical to the sequential
// single-chip reference at submitter worker counts 1, 4 and 16, over
// both device backends.
func TestFleetBitIdenticalToSequential(t *testing.T) {
	for _, backend := range []string{"direct", "onfi"} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{
				Shards:  24,
				Spares:  2,
				Model:   nand.ModelA().ScaleGeometry(8, 4, 512),
				Seed:    0xF1EE7,
				Backend: backend,
			}
			want := sequentialDigests(t, cfg)
			for _, workers := range []int{1, 4, 16} {
				got := fleetDigests(t, cfg, workers)
				for s := range want {
					if got[s] != want[s] {
						t.Fatalf("backend=%s workers=%d: shard %d transcript %s != sequential reference %s",
							backend, workers, s, got[s], want[s])
					}
				}
			}
		})
	}
}

// TestFleetDigestsVaryAcrossShardsAndSeeds guards the equivalence suite
// itself against vacuous passes: distinct shards (distinct physical
// samples) and distinct fleet seeds must produce distinct transcripts.
func TestFleetDigestsVaryAcrossShardsAndSeeds(t *testing.T) {
	cfg := Config{Shards: 2, Model: nand.ModelA().ScaleGeometry(8, 4, 512), Seed: 11}
	a := sequentialDigests(t, cfg)
	if a[0] == a[1] {
		t.Error("two shards produced identical transcripts")
	}
	cfg.Seed = 12
	b := sequentialDigests(t, cfg)
	if a[0] == b[0] {
		t.Error("two fleet seeds produced identical transcripts")
	}
}

// --- Batch-façade equivalence (PR 10) ---------------------------------
//
// The per-shard coalescer must leave the batch façade bit-identical to
// both the unbatched fleet path and the sequential reference. Two suites
// pin it: a mutating single-submitter-per-shard walk (erase/program/
// read/probe through ReadPages/ProgramPages/ProbeVoltages), and a
// concurrent read-only walk with many submitters per shard, where the
// coalescer genuinely merges racing submissions and every submitter's
// private transcript must still match the reference.

// facadeOps abstracts the batch façade so the same round functions drive
// a fleet shard and the standalone reference device.
type facadeOps struct {
	geom    nand.Geometry
	erase   func(block int) error
	program func(start nand.PageAddr, data []byte) (int, error)
	read    func(start nand.PageAddr, count int) ([]byte, int, error)
	probe   func(start nand.PageAddr, count int) ([]uint8, int, error)
}

// deviceFacadeOps adapts a standalone device via the nand batch helpers
// (exactly the helpers the fleet façade itself uses).
func deviceFacadeOps(dev nand.LabDevice) facadeOps {
	g := dev.Geometry()
	return facadeOps{
		geom:  g,
		erase: dev.EraseBlock,
		program: func(start nand.PageAddr, data []byte) (int, error) {
			return nand.ProgramPages(dev, start, data)
		},
		read: func(start nand.PageAddr, count int) ([]byte, int, error) {
			buf := make([]byte, count*g.PageBytes)
			n, err := nand.ReadPages(dev, start, count, buf)
			return buf[:n*g.PageBytes], n, err
		},
		probe: func(start nand.PageAddr, count int) ([]uint8, int, error) {
			buf := make([]uint8, count*g.CellsPerPage())
			n, err := nand.ProbeVoltages(dev, start, count, buf)
			return buf[:n*g.CellsPerPage()], n, err
		},
	}
}

// fleetFacadeOps adapts one fleet shard's batch façade.
func fleetFacadeOps(f *Fleet, shard int) facadeOps {
	return facadeOps{
		geom:  f.Geometry(),
		erase: func(block int) error { return f.EraseBlock(shard, block) },
		program: func(start nand.PageAddr, data []byte) (int, error) {
			return f.ProgramPages(shard, start, data)
		},
		read: func(start nand.PageAddr, count int) ([]byte, int, error) {
			return f.ReadPages(shard, start, count)
		},
		probe: func(start nand.PageAddr, count int) ([]uint8, int, error) {
			return f.ProbeVoltages(shard, start, count)
		},
	}
}

// runFacadeRound is the mutating per-shard round: erase, two programs
// with stream-derived data, batch read-back and a voltage probe, every
// observable folded into h.
func runFacadeRound(ops facadeOps, rng *rand.Rand, round int, h hash.Hash) error {
	g := ops.geom
	b := round % g.Blocks
	if err := ops.erase(b); err != nil {
		return fmt.Errorf("round %d erase: %w", round, err)
	}
	pages := 2
	if g.PagesPerBlock < pages {
		pages = g.PagesPerBlock
	}
	data := make([]byte, pages*g.PageBytes)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	if _, err := ops.program(nand.PageAddr{Block: b, Page: 0}, data); err != nil {
		return fmt.Errorf("round %d program: %w", round, err)
	}
	got, _, err := ops.read(nand.PageAddr{Block: b, Page: 0}, pages)
	if err != nil {
		return fmt.Errorf("round %d read: %w", round, err)
	}
	h.Write(got)
	levels, _, err := ops.probe(nand.PageAddr{Block: b, Page: 0}, pages)
	if err != nil {
		return fmt.Errorf("round %d probe: %w", round, err)
	}
	h.Write(levels)
	return nil
}

// facadeDigest runs equivRounds of runFacadeRound and returns the
// transcript digest.
func facadeDigest(ops facadeOps, rng *rand.Rand) (string, error) {
	h := sha256.New()
	for r := 0; r < equivRounds; r++ {
		if err := runFacadeRound(ops, rng, r, h); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TestFleetFacadeBitIdenticalToSequential drives the mutating façade
// walk through the fleet — batched and unbatched, both backends, fan-outs
// 1/4/16 — and requires every per-shard transcript to equal the
// sequential reference.
func TestFleetFacadeBitIdenticalToSequential(t *testing.T) {
	for _, backend := range []string{"direct", "onfi"} {
		for _, batching := range []*Batching{nil, {MaxOps: 8}} {
			mode := "unbatched"
			if batching != nil {
				mode = "batched"
			}
			t.Run(backend+"/"+mode, func(t *testing.T) {
				cfg := Config{
					Shards:   12,
					Spares:   1,
					Model:    nand.ModelA().ScaleGeometry(8, 4, 512),
					Seed:     0xBA7C4,
					Backend:  backend,
					Batching: batching,
				}
				want := make([]string, cfg.Shards)
				for s := range want {
					d, err := facadeDigest(deviceFacadeOps(cfg.Device(s)), shardStream(cfg.Seed, s))
					if err != nil {
						t.Fatalf("reference shard %d: %v", s, err)
					}
					want[s] = d
				}
				for _, workers := range []int{1, 4, 16} {
					f, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := make([]string, cfg.Shards)
					ferr := parallel.ForEach(workers, cfg.Shards, func(s int) error {
						d, err := facadeDigest(fleetFacadeOps(f, s), shardStream(cfg.Seed, s))
						got[s] = d
						return err
					})
					f.Close()
					if ferr != nil {
						t.Fatal(ferr)
					}
					for s := range want {
						if got[s] != want[s] {
							t.Fatalf("%s/%s workers=%d: shard %d transcript %s != reference %s",
								backend, mode, workers, s, got[s], want[s])
						}
					}
				}
			})
		}
	}
}

// facadeSetup programs every block of a shard with stream-derived data
// (the deterministic state the read-only tenants walk).
func facadeSetup(ops facadeOps, rng *rand.Rand) error {
	g := ops.geom
	data := make([]byte, 2*g.PageBytes)
	for b := 0; b < g.Blocks; b++ {
		if err := ops.erase(b); err != nil {
			return err
		}
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		if _, err := ops.program(nand.PageAddr{Block: b, Page: 0}, data); err != nil {
			return err
		}
	}
	return nil
}

// tenantReadDigest is one tenant's private read-only transcript: a
// deterministic page walk (a function of the tenant index alone) whose
// reads and probes fold into the tenant's own digest. Reads and probes
// do not mutate chip state, so the digest is independent of how
// concurrent tenants interleave — which is what lets many tenants share
// a shard while each transcript stays comparable to the reference.
func tenantReadDigest(ops facadeOps, tenant int) (string, error) {
	g := ops.geom
	h := sha256.New()
	for r := 0; r < equivRounds; r++ {
		b := (tenant + 3*r) % g.Blocks
		data, _, err := ops.read(nand.PageAddr{Block: b, Page: 0}, 2)
		if err != nil {
			return "", fmt.Errorf("tenant %d round %d read: %w", tenant, r, err)
		}
		h.Write(data)
		levels, _, err := ops.probe(nand.PageAddr{Block: b, Page: tenant % 2}, 1)
		if err != nil {
			return "", fmt.Errorf("tenant %d round %d probe: %w", tenant, r, err)
		}
		h.Write(levels)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TestFleetCoalescedTenantsBitIdentical is the cross-tenant batching
// proof: F concurrent tenants per shard (F = 1, 4, 16) hammer the batch
// façade of a shared shard — so the coalescer really merges racing
// submissions — and every tenant's transcript must equal the transcript
// the standalone reference device produces for that tenant's walk.
func TestFleetCoalescedTenantsBitIdentical(t *testing.T) {
	for _, backend := range []string{"direct", "onfi"} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{
				Shards:   4,
				Model:    nand.ModelA().ScaleGeometry(8, 4, 512),
				Seed:     0xC0A1E5CE,
				Backend:  backend,
				Batching: &Batching{MaxOps: 8},
			}
			const maxFan = 16
			// Reference: per-shard device, deterministic setup, then each
			// tenant's walk sequentially.
			want := make([][]string, cfg.Shards)
			for s := range want {
				ops := deviceFacadeOps(cfg.Device(s))
				if err := facadeSetup(ops, shardStream(cfg.Seed, s)); err != nil {
					t.Fatalf("reference shard %d setup: %v", s, err)
				}
				want[s] = make([]string, maxFan)
				for tn := 0; tn < maxFan; tn++ {
					d, err := tenantReadDigest(ops, tn)
					if err != nil {
						t.Fatalf("reference shard %d: %v", s, err)
					}
					want[s][tn] = d
				}
			}
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := parallel.ForEach(cfg.Shards, cfg.Shards, func(s int) error {
				return facadeSetup(fleetFacadeOps(f, s), shardStream(cfg.Seed, s))
			}); err != nil {
				t.Fatal(err)
			}
			for _, fan := range []int{1, 4, 16} {
				units := fan * cfg.Shards
				got := make([]string, units)
				if err := parallel.ForEach(units, units, func(u int) error {
					shard, tenant := u%cfg.Shards, u/cfg.Shards
					d, err := tenantReadDigest(fleetFacadeOps(f, shard), tenant)
					got[u] = d
					return err
				}); err != nil {
					t.Fatal(err)
				}
				for u := range got {
					shard, tenant := u%cfg.Shards, u/cfg.Shards
					if got[u] != want[shard][tenant] {
						t.Fatalf("backend=%s fan=%d: shard %d tenant %d transcript %s != reference %s",
							backend, fan, shard, tenant, got[u], want[shard][tenant])
					}
				}
			}
		})
	}
}
