package fleet

import (
	"bytes"
	"errors"
	"testing"

	"stashflash/internal/nand"
)

// armPowerLoss latches a power loss on the shard's current chip: the
// next partial-programming pulse kills the package. The arming runs on
// the chip's own goroutine (plans are single-goroutine like their chip).
func armPowerLoss(t *testing.T, f *Fleet, shard int) {
	t.Helper()
	if err := f.Exec(shard, func(dev nand.LabDevice) error {
		plan := nand.PlanOf(dev)
		if plan == nil {
			t.Error("no fault plan attached")
			return nil
		}
		plan.ArmPowerLossAfterPP(0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// killShard drives one partial-programming pulse into an armed shard and
// returns the degradation error.
func killShard(f *Fleet, shard int) error {
	return f.Exec(shard, func(dev nand.LabDevice) error {
		return dev.PartialProgram(nand.PageAddr{Block: 0, Page: 0}, []int{0})
	})
}

// TestChipDeathRemapsToSpare walks the full degradation ladder on one
// shard — healthy chip, latched power loss, remap to the spare, second
// death, out of service — checking the exact-payload-or-typed-error
// contract at every rung while a sibling shard keeps its data intact.
func TestChipDeathRemapsToSpare(t *testing.T) {
	// A practically-zero fault probability so a plan is attached (giving
	// the test ArmPowerLossAfterPP) without any spontaneous fault firing.
	faults := nand.FaultConfig{BadBlockFrac: 1e-15}
	f := newTestFleet(t, Config{Shards: 2, Spares: 1, Model: testModel(), Seed: 21, Faults: &faults})
	g := f.Geometry()

	// Seed both shards with known payloads.
	payload := make([]byte, g.PageBytes)
	for i := range payload {
		payload[i] = byte(i*7 + 1)
	}
	for s := 0; s < 2; s++ {
		if err := f.EraseBlock(s, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ProgramPages(s, nand.PageAddr{Block: 3, Page: 0}, payload); err != nil {
			t.Fatal(err)
		}
	}

	// Kill shard 1's chip. The observing operation must report the typed
	// degradation error joined with the device error.
	armPowerLoss(t, f, 1)
	err := killShard(f, 1)
	if !errors.Is(err, ErrShardDegraded) {
		t.Fatalf("chip death returned %v, want ErrShardDegraded", err)
	}
	if errors.Is(err, ErrFleetExhausted) {
		t.Fatalf("spare was available yet error reports exhaustion: %v", err)
	}
	if !errors.Is(err, nand.ErrPowerLoss) {
		t.Fatalf("underlying device error not joined: %v", err)
	}

	// The shard is remapped to the spare (chip index Shards) and the
	// spare pool is drained by one.
	if chip, err := f.ShardChip(1); err != nil || chip != 2 {
		t.Fatalf("ShardChip(1) = %d, %v; want spare chip 2", chip, err)
	}
	if f.SparesLeft() != 0 {
		t.Fatalf("SparesLeft = %d after one remap", f.SparesLeft())
	}
	st := f.Status()
	if !st[1].Degraded || st[1].Remaps != 1 || st[1].Chip != 2 || st[1].DeadError == "" {
		t.Fatalf("shard 1 status after remap: %+v", st[1])
	}
	if st[0].Degraded || st[0].Remaps != 0 || st[0].Chip != 0 {
		t.Fatalf("healthy shard 0 status disturbed: %+v", st[0])
	}

	// The sibling shard's payload is untouched, bit for bit.
	got, done, err := f.ReadPages(0, nand.PageAddr{Block: 3, Page: 0}, 1)
	if err != nil || done != 1 || !bytes.Equal(got, payload) {
		t.Fatalf("healthy shard payload after sibling death: done=%d err=%v equal=%v",
			done, err, bytes.Equal(got, payload))
	}

	// The remapped shard serves fresh payloads on its spare chip — the
	// old payloads died with the old chip; the fresh ones read back exact.
	if err := f.EraseBlock(1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProgramPages(1, nand.PageAddr{Block: 3, Page: 0}, payload); err != nil {
		t.Fatal(err)
	}
	got, done, err = f.ReadPages(1, nand.PageAddr{Block: 3, Page: 0}, 1)
	if err != nil || done != 1 || !bytes.Equal(got, payload) {
		t.Fatalf("remapped shard round trip: done=%d err=%v equal=%v", done, err, bytes.Equal(got, payload))
	}

	// Kill the spare too: no spares remain, so the shard goes out of
	// service with both typed errors joined.
	armPowerLoss(t, f, 1)
	err = killShard(f, 1)
	if !errors.Is(err, ErrShardDegraded) || !errors.Is(err, ErrFleetExhausted) {
		t.Fatalf("second death returned %v, want ErrShardDegraded+ErrFleetExhausted", err)
	}
	if chip, _ := f.ShardChip(1); chip != -1 {
		t.Fatalf("out-of-service shard still mapped to chip %d", chip)
	}
	// Every later operation reports exhaustion — never a read of stale or
	// garbage data.
	if _, _, err := f.ReadPages(1, nand.PageAddr{Block: 3, Page: 0}, 1); !errors.Is(err, ErrFleetExhausted) {
		t.Fatalf("op on out-of-service shard returned %v, want ErrFleetExhausted", err)
	}
	// The untouched shard still works.
	if got, _, err := f.ReadPages(0, nand.PageAddr{Block: 3, Page: 0}, 1); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("healthy shard broken after fleet exhaustion: %v", err)
	}
}

// TestWearOutDeathCrossesDeadBlockLimit exercises the second death
// route: grown bad blocks accumulating past DeadBlockLimit. With every
// erase failing, the second distinct failed block must retire the chip.
func TestWearOutDeathCrossesDeadBlockLimit(t *testing.T) {
	faults := nand.FaultConfig{EraseFailProb: 1}
	f := newTestFleet(t, Config{
		Shards: 1, Spares: 0, Model: testModel(), Seed: 33,
		Faults: &faults, DeadBlockLimit: 2,
	})
	var degradedAt int
	for b := 0; b < 4; b++ {
		err := f.EraseBlock(0, b)
		if err == nil {
			t.Fatalf("erase %d succeeded under EraseFailProb=1", b)
		}
		if errors.Is(err, ErrShardDegraded) {
			if !errors.Is(err, ErrFleetExhausted) || !errors.Is(err, nand.ErrEraseFailed) {
				t.Fatalf("degradation error missing joined causes: %v", err)
			}
			degradedAt = b
			break
		}
		if !errors.Is(err, nand.ErrEraseFailed) {
			t.Fatalf("erase %d: %v, want plain ErrEraseFailed below the limit", b, err)
		}
	}
	if degradedAt != 1 {
		t.Fatalf("chip retired after erase %d, want the second grown bad block", degradedAt)
	}
}

// TestNegativeDeadBlockLimitDisablesRetirement pins the opt-out: chips
// soldier on returning per-operation errors, and the shard never
// degrades no matter how much wear accumulates.
func TestNegativeDeadBlockLimitDisablesRetirement(t *testing.T) {
	faults := nand.FaultConfig{EraseFailProb: 1}
	f := newTestFleet(t, Config{
		Shards: 1, Model: testModel(), Seed: 34,
		Faults: &faults, DeadBlockLimit: -1,
	})
	for b := 0; b < 8; b++ {
		err := f.EraseBlock(0, b)
		if !errors.Is(err, nand.ErrEraseFailed) || errors.Is(err, ErrShardDegraded) {
			t.Fatalf("erase %d: %v, want bare ErrEraseFailed forever", b, err)
		}
	}
	if st := f.Status(); st[0].Degraded || st[0].Chip != 0 {
		t.Fatalf("retirement fired despite negative limit: %+v", st[0])
	}
}
