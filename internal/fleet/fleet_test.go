package fleet

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"stashflash/internal/nand"
	"stashflash/internal/obs"
)

// testModel is the small per-chip geometry the fleet tests churn through.
func testModel() nand.Model {
	return nand.ModelA().ScaleGeometry(8, 4, 512)
}

func newTestFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestConfigValidation(t *testing.T) {
	m := testModel()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"zero shards", Config{Shards: 0, Model: m}},
		{"negative spares", Config{Shards: 1, Spares: -1, Model: m}},
		{"bad backend", Config{Shards: 1, Model: m, Backend: "scsi"}},
		{"bad geometry", Config{Shards: 1}},
		{"short label set", Config{Shards: 2, Spares: 1, Model: m, Metrics: obs.NewLabelSet(obs.ChipLabels(2)...)}},
	} {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
}

func TestExecRoutesEachShardToItsOwnChip(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 4, Model: testModel(), Seed: 7})
	for s := 0; s < 4; s++ {
		var chip int
		if err := f.ExecOn(s, func(c int, _ nand.LabDevice) error { chip = c; return nil }); err != nil {
			t.Fatal(err)
		}
		if chip != s {
			t.Errorf("shard %d initially routed to chip %d", s, chip)
		}
	}
}

func TestShardRangeAndClose(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 2, Model: testModel(), Seed: 1})
	if err := f.Exec(-1, func(nand.LabDevice) error { return nil }); !errors.Is(err, ErrShardRange) {
		t.Errorf("shard -1: got %v, want ErrShardRange", err)
	}
	if err := f.Exec(2, func(nand.LabDevice) error { return nil }); !errors.Is(err, ErrShardRange) {
		t.Errorf("shard 2: got %v, want ErrShardRange", err)
	}
	f.Close()
	f.Close() // idempotent
	if err := f.Exec(0, func(nand.LabDevice) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("after Close: got %v, want ErrClosed", err)
	}
}

// TestExecPanicBecomesError pins the long-running-service property: a
// panicking request is the submitter's error, not the death of the chip
// goroutine (or the process) every other tenant depends on.
func TestExecPanicBecomesError(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1, Model: testModel(), Seed: 1})
	err := f.Exec(0, func(nand.LabDevice) error { panic("request bug") })
	if err == nil || !strings.Contains(err.Error(), "request bug") {
		t.Fatalf("panic did not surface as error: %v", err)
	}
	// The chip goroutine must still be alive and serving.
	if err := f.Exec(0, func(dev nand.LabDevice) error { return dev.EraseBlock(0) }); err != nil {
		t.Fatalf("chip dead after panicking request: %v", err)
	}
}

func TestBatchFacadeRoundTrip(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 2, Model: testModel(), Seed: 3})
	g := f.Geometry()
	data := make([]byte, 2*g.PageBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}
	start := nand.PageAddr{Block: 1, Page: 0}
	if err := f.EraseBlock(0, 1); err != nil {
		t.Fatal(err)
	}
	done, err := f.ProgramPages(0, start, data)
	if err != nil || done != 2 {
		t.Fatalf("ProgramPages: done=%d err=%v", done, err)
	}
	got, done, err := f.ReadPages(0, start, 2)
	if err != nil || done != 2 {
		t.Fatalf("ReadPages: done=%d err=%v", done, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("batch read-back mismatched programmed data")
	}
	levels, done, err := f.ProbeVoltages(0, start, 2)
	if err != nil || done != 2 {
		t.Fatalf("ProbeVoltages: done=%d err=%v", done, err)
	}
	if len(levels) != 2*g.CellsPerPage() {
		t.Fatalf("probe returned %d levels", len(levels))
	}
	// The sibling shard's chip is a distinct physical sample: same
	// programming, different analog voltages.
	if err := f.EraseBlock(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProgramPages(1, start, data); err != nil {
		t.Fatal(err)
	}
	levels2, _, err := f.ProbeVoltages(1, start, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(levels, levels2) {
		t.Error("distinct shards produced identical analog voltages (seed partition broken?)")
	}
}

// TestConcurrentSubmittersOneShard drives one shard from many goroutines
// at once: the queue must serialise them (no device-contract violation —
// run under -race) and every operation must land.
func TestConcurrentSubmittersOneShard(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1, Model: testModel(), Seed: 5})
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				errs[i] = f.Exec(0, func(dev nand.LabDevice) error {
					if err := dev.EraseBlock(i % 8); err != nil {
						return err
					}
					_, err := dev.ReadPage(nand.PageAddr{Block: i % 8, Page: 0})
					return err
				})
				if errs[i] != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

func TestMetricsLabelsSeparatePerChip(t *testing.T) {
	set := obs.NewLabelSet(obs.ChipLabels(3)...)
	f := newTestFleet(t, Config{Shards: 2, Spares: 1, Model: testModel(), Seed: 9, Metrics: set})
	if err := f.EraseBlock(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.EraseBlock(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.EraseBlock(1, 1); err != nil {
		t.Fatal(err)
	}
	snaps := set.Snapshots()
	if got := snaps["chip0"].Ops["erase"].Count; got != 1 {
		t.Errorf("chip0 erases = %d, want 1", got)
	}
	if got := snaps["chip1"].Ops["erase"].Count; got != 2 {
		t.Errorf("chip1 erases = %d, want 2", got)
	}
	if got := snaps["chip2"].Ops["erase"].Count; got != 0 {
		t.Errorf("idle spare recorded %d erases", got)
	}
}

func TestStatusHealthyFleet(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 3, Spares: 1, Model: testModel(), Seed: 2})
	if err := f.Exec(1, func(dev nand.LabDevice) error { return dev.CycleBlock(0, 5) }); err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if len(st) != 3 {
		t.Fatalf("Status returned %d shards", len(st))
	}
	for s, row := range st {
		if row.Shard != s || row.Chip != s || row.Degraded || row.Remaps != 0 {
			t.Errorf("shard %d status unexpectedly %+v", s, row)
		}
	}
	if st[1].MaxPEC < 5 {
		t.Errorf("shard 1 MaxPEC = %d after 5 cycles", st[1].MaxPEC)
	}
	if f.SparesLeft() != 1 {
		t.Errorf("SparesLeft = %d, want 1", f.SparesLeft())
	}
}
