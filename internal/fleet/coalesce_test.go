package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"stashflash/internal/nand"
	"stashflash/internal/obs"
)

// pendingLen peeks at the pending queue of the worker currently
// backing a shard (test-only; same package).
func pendingLen(f *Fleet, shard int) int {
	f.mu.Lock()
	w := f.workers[f.shards[shard].chip]
	f.mu.Unlock()
	w.cmu.Lock()
	defer w.cmu.Unlock()
	return len(w.pending)
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// holdChipTurn blocks shard 0's chip goroutine inside an Exec closure
// until the returned release func is called, so façade submissions made
// meanwhile must pile up in the coalescer. The second returned func
// waits for the Exec submitter to finish.
func holdChipTurn(f *Fleet) (release, wait func()) {
	hold := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = f.Exec(0, func(nand.LabDevice) error {
			close(started)
			<-hold
			return nil
		})
	}()
	<-started
	return func() { close(hold) }, wg.Wait
}

// TestCoalescerMergesConcurrentSubmissions proves the coalescer really
// merges: with the chip turn held by a blocked Exec closure and the
// queue depth at 1, concurrent façade reads must accumulate in the
// pending queue and later cross it together — fewer crossings than
// operations, max batch occupancy well above 1 — while every read still
// returns the right data.
func TestCoalescerMergesConcurrentSubmissions(t *testing.T) {
	stats := &obs.FleetStats{}
	cfg := Config{
		Shards:     1,
		Model:      nand.ModelA().ScaleGeometry(4, 4, 256),
		Seed:       7,
		QueueDepth: 1,
		Batching:   &Batching{MaxOps: 64},
		Stats:      stats,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g := f.Geometry()
	want := make([]byte, 2*g.PageBytes)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := f.EraseBlock(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProgramPages(0, nand.PageAddr{Block: 0, Page: 0}, want); err != nil {
		t.Fatal(err)
	}
	before := stats.Snapshot()

	release, execWait := holdChipTurn(f)
	const readers = 16
	var wg sync.WaitGroup
	results := make([][]byte, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = f.ReadPages(0, nand.PageAddr{Block: 0, Page: 0}, 2)
		}(i)
	}
	// With the worker blocked inside the held Exec closure, nothing
	// drains the pending queue, so the concurrent reads accumulate
	// there. Once >= 8 are pending, the worker's next pull is
	// guaranteed to be a batch of >= 8.
	waitFor(t, "pending pile-up", func() bool { return pendingLen(f, 0) >= 8 })
	release()
	wg.Wait()
	execWait()

	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if string(results[i]) != string(want) {
			t.Fatalf("reader %d: wrong data", i)
		}
	}
	after := stats.Snapshot()
	ops := after.OpsExecuted - before.OpsExecuted
	crossings := after.QueueCrossings - before.QueueCrossings
	if ops != readers+1 {
		t.Fatalf("ops executed: got %d, want %d", ops, readers+1)
	}
	if crossings >= ops {
		t.Fatalf("no coalescing: %d crossings for %d ops", crossings, ops)
	}
	if after.MaxBatch < 8 {
		t.Fatalf("max batch occupancy %d, want >= 8", after.MaxBatch)
	}
	t.Logf("coalesced %d ops into %d crossings (max batch %d)", ops, crossings, after.MaxBatch)
}

// TestCoalescerRespectsMaxOps caps a pile-up at MaxOps per crossing.
func TestCoalescerRespectsMaxOps(t *testing.T) {
	stats := &obs.FleetStats{}
	cfg := Config{
		Shards:     1,
		Model:      nand.ModelA().ScaleGeometry(4, 4, 256),
		Seed:       7,
		QueueDepth: 1,
		Batching:   &Batching{MaxOps: 4},
		Stats:      stats,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.EraseBlock(0, 0); err != nil {
		t.Fatal(err)
	}
	release, execWait := holdChipTurn(f)
	const readers = 12
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = f.ReadPages(0, nand.PageAddr{Block: 0, Page: 0}, 1)
		}()
	}
	waitFor(t, "pending pile-up", func() bool { return pendingLen(f, 0) >= 8 })
	release()
	wg.Wait()
	execWait()
	snap := stats.Snapshot()
	if snap.MaxBatch > 4 {
		t.Fatalf("batch occupancy %d exceeds MaxOps 4", snap.MaxBatch)
	}
	if snap.MaxBatch < 2 {
		t.Fatalf("batch occupancy %d: expected at least one merged batch", snap.MaxBatch)
	}
}

// TestAdmissionControlShardBudget: submissions beyond MaxInflightShard
// fail fast with ErrOverloaded while the budgeted ones complete; the
// rejects surface in the stats and the shard status.
func TestAdmissionControlShardBudget(t *testing.T) {
	stats := &obs.FleetStats{}
	cfg := Config{
		Shards:           1,
		Model:            nand.ModelA().ScaleGeometry(4, 4, 256),
		Seed:             7,
		MaxInflightShard: 2,
		Stats:            stats,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hold := make(chan struct{})
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = f.Exec(0, func(nand.LabDevice) error {
				started <- struct{}{}
				<-hold
				return nil
			})
		}()
	}
	// One closure runs, the other waits in the queue — both hold budget.
	<-started
	waitFor(t, "budget to fill", func() bool { return stats.Snapshot().Inflight >= 2 })
	err = f.Exec(0, func(nand.LabDevice) error { return nil })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget submission: got %v, want ErrOverloaded", err)
	}
	close(hold)
	wg.Wait()
	if err := f.Exec(0, func(nand.LabDevice) error { return nil }); err != nil {
		t.Fatalf("post-drain submission: %v", err)
	}
	snap := stats.Snapshot()
	if snap.AdmissionRejects != 1 {
		t.Fatalf("admission rejects: got %d, want 1", snap.AdmissionRejects)
	}
	if snap.Inflight != 0 {
		t.Fatalf("inflight gauge not drained: %d", snap.Inflight)
	}
	status := f.Status()
	if status[0].AdmissionRejects != 1 {
		t.Fatalf("shard status rejects: got %d, want 1", status[0].AdmissionRejects)
	}
}

// TestAdmissionControlFleetBudget: the fleet-wide budget rejects across
// shards even when each shard is under its own bound.
func TestAdmissionControlFleetBudget(t *testing.T) {
	cfg := Config{
		Shards:           2,
		Model:            nand.ModelA().ScaleGeometry(4, 4, 256),
		Seed:             7,
		MaxInflightFleet: 1,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	release, wait := holdChipTurn(f)
	if err := f.Exec(1, func(nand.LabDevice) error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fleet budget: got %v, want ErrOverloaded", err)
	}
	release()
	wait()
	if err := f.Exec(1, func(nand.LabDevice) error { return nil }); err != nil {
		t.Fatalf("post-drain: %v", err)
	}
}

// TestCoalescedSubmissionsRespectBudget: the coalesced path shares the
// same admission accounting as the direct path.
func TestCoalescedSubmissionsRespectBudget(t *testing.T) {
	cfg := Config{
		Shards:           1,
		Model:            nand.ModelA().ScaleGeometry(4, 4, 256),
		Seed:             7,
		Batching:         &Batching{},
		MaxInflightShard: 1,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	release, wait := holdChipTurn(f)
	if _, _, err := f.ReadPages(0, nand.PageAddr{}, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("coalesced over-budget read: got %v, want ErrOverloaded", err)
	}
	release()
	wait()
	if err := f.EraseBlock(0, 0); err != nil {
		t.Fatalf("post-drain erase: %v", err)
	}
	if _, _, err := f.ReadPages(0, nand.PageAddr{}, 1); err != nil {
		t.Fatalf("post-drain read: %v", err)
	}
}
