// Package fleet shards an array of simulated NAND packages — tens to
// hundreds of nand.LabDevice chips — behind one façade, the device-side
// substrate of the stashd service (cmd/stashd) and the "millions of
// users" road named in ROADMAP item 1.
//
// Three contracts shape the design:
//
//   - Concurrency. A nand.Device is single-goroutine by contract, so the
//     fleet gives every chip a private command queue drained by exactly
//     one goroutine. Callers submit closures with Exec/ExecOn; the
//     closure runs on the owning goroutine, so arbitrary device work
//     (including whole stegfs volume operations) stays within the
//     contract no matter how many HTTP handlers call in concurrently.
//     Distinct chips share no mutable state, so the per-chip queues give
//     fleet-wide parallelism for free.
//
//   - Determinism. Chip i's physical sample seed and fault stream derive
//     from (Config.Seed, i) with the repository's SHA-256
//     partitioned-stream recipe (nand.StreamSeed — the same scheme as
//     internal/parallel seed partitioning and nand.FaultPlan). Per-shard
//     operation order is submission order (one FIFO queue per chip), and
//     cross-shard operations touch disjoint state, so a fleet run is
//     bit-identical to driving each chip sequentially in isolation — at
//     any number of submitting goroutines. Config.Device builds the
//     standalone reference device the equivalence suite compares against.
//
//   - Degradation. Chips die under a nand.FaultPlan (wear-out, latched
//     power loss). A dying chip is retired and its shard remapped to a
//     spare when one remains; the observing operation — and every later
//     operation that raced it — returns a typed error joining
//     ErrShardDegraded (payloads on the dead chip are lost, callers must
//     re-provision) with the underlying device error. With no spares
//     left the shard goes out of service and returns ErrFleetExhausted.
//     Never silent corruption: an operation either ran to completion on
//     one healthy chip or reports a typed error.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"stashflash/internal/nand"
	"stashflash/internal/obs"
)

// Typed errors of the fleet façade; match with errors.Is.
var (
	// ErrShardRange reports a shard index outside [0, Config.Shards).
	ErrShardRange = errors.New("fleet: shard out of range")
	// ErrClosed reports an operation submitted after Close.
	ErrClosed = errors.New("fleet: fleet closed")
	// ErrShardDegraded reports that the shard's chip died: the operation
	// did not complete (or completed on a chip that is now retired), and
	// any payloads stored on the dead chip are lost. If a spare was
	// available the shard is already remapped and later operations run on
	// the fresh chip.
	ErrShardDegraded = errors.New("fleet: shard degraded (chip died; its payloads are lost)")
	// ErrFleetExhausted reports a shard out of service: its chip died and
	// no spare chips remain.
	ErrFleetExhausted = errors.New("fleet: shard out of service (no spare chips left)")
	// ErrOverloaded reports a submission refused by admission control: the
	// per-shard or fleet-wide inflight budget is exhausted. The operation
	// never reached a chip queue; retry after backing off. stashd maps it
	// to HTTP 429.
	ErrOverloaded = errors.New("fleet: overloaded (inflight budget exhausted)")
)

// Config sizes and seeds a fleet. The zero value is not usable; Shards
// and Model must be set.
type Config struct {
	// Shards is the number of logical shards, each initially mapped to
	// its own primary chip (chip indices 0..Shards-1).
	Shards int
	// Spares is the number of standby chips (indices Shards..) a degraded
	// shard can be remapped onto.
	Spares int
	// Model parameterises every chip in the fleet.
	Model nand.Model
	// Seed roots the fleet's seed partition: chip i's sample seed derives
	// from (Seed, "fleet/chip", i) and its fault stream from
	// (Seed, "fleet/faults", i), so fleets with the same Seed are
	// bit-identical chip for chip.
	Seed uint64
	// Backend selects how operations reach the simulated silicon: "" or
	// "direct" issues simulator calls, "onfi" drives every operation
	// through the bus-level command adapter (bit-identical by
	// construction; see internal/onfi).
	Backend string
	// Faults, when non-nil and non-zero, attaches a per-chip FaultPlan
	// built from this template with the chip's derived fault seed (the
	// template's own Seed field is ignored).
	Faults *nand.FaultConfig
	// DeadBlockLimit is the grown-bad-block count at which a chip that
	// just failed an operation is declared dead and retired. 0 selects
	// the default max(1, Blocks/8); negative disables retirement (chips
	// soldier on returning per-operation errors). A latched power loss
	// always retires the chip regardless of the limit.
	DeadBlockLimit int
	// QueueDepth is the per-chip command queue buffering (default 8).
	QueueDepth int
	// Metrics, when non-nil, wraps chip i's device with the collector at
	// label index i (obs.LabelSet), keeping per-chip/per-shard metrics
	// separable. Must have at least ChipCount collectors.
	Metrics *obs.LabelSet
	// Batching, when non-nil, opts the batch façade (ReadPages,
	// ProgramPages, ProbeVoltages, EraseBlock) into the per-shard
	// coalescer: concurrent submissions to the same shard merge into one
	// queue crossing per chip turn. Exec/ExecOn are never coalesced (a
	// closure may be a whole volume transaction; callers own its
	// boundaries). See coalesce.go for the determinism argument.
	Batching *Batching
	// MaxInflightShard bounds concurrently admitted operations per shard;
	// 0 means unlimited. Submissions over budget fail fast with
	// ErrOverloaded instead of queueing without bound.
	MaxInflightShard int
	// MaxInflightFleet bounds concurrently admitted operations across the
	// whole fleet; 0 means unlimited.
	MaxInflightFleet int
	// Stats, when non-nil, receives fleet-level scheduling counters:
	// admissions/rejects, queue crossings and batch occupancy.
	Stats *obs.FleetStats
}

// Batching parameterises the per-shard coalescer. The zero value is
// usable: default batch bound, no artificial flush delay.
type Batching struct {
	// MaxOps bounds how many coalesced operations one queue crossing may
	// carry (default 32). Larger batches amortise the crossing further but
	// hold the chip turn longer.
	MaxOps int
	// Window is an optional flush deadline: a non-zero window makes the
	// flusher linger that long before each grab so trickling submitters
	// can pile up. Zero (the default) is pure group-commit — a batch is
	// whatever accumulated while the previous one was in flight, which
	// already coalesces under load and adds no idle latency. The window
	// trades latency for occupancy; it never affects results (order is
	// still arrival order).
	Window time.Duration
}

// maxOps resolves the effective per-crossing bound.
func (b *Batching) maxOps() int {
	if b == nil || b.MaxOps <= 0 {
		return 32
	}
	return b.MaxOps
}

// ChipCount is the total number of chips the fleet owns.
func (c Config) ChipCount() int { return c.Shards + c.Spares }

// deadLimit resolves the effective retirement threshold.
func (c Config) deadLimit() int {
	switch {
	case c.DeadBlockLimit < 0:
		return -1
	case c.DeadBlockLimit > 0:
		return c.DeadBlockLimit
	default:
		if l := c.Model.Blocks / 8; l > 1 {
			return l
		}
		return 1
	}
}

// Device builds chip i exactly as New does — same derived sample seed,
// same derived fault plan, same backend adapter — but standalone and
// unwrapped. This is the sequential reference the fleet equivalence
// suite drives: a shard's operation stream applied to Device(chip) on
// one goroutine must be bit-identical to the same stream through the
// fleet at any submitter fan-out.
func (c Config) Device(i int) nand.LabDevice {
	dev, _ := buildChip(c, i)
	return dev
}

// validate rejects unusable configurations before any goroutine starts.
func (c Config) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("fleet: need at least 1 shard, got %d", c.Shards)
	}
	if c.Spares < 0 {
		return fmt.Errorf("fleet: negative spare count %d", c.Spares)
	}
	if err := c.Model.Geometry.Validate(); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	switch c.Backend {
	case "", "direct", "onfi":
	default:
		return fmt.Errorf("fleet: unknown backend %q (direct, onfi)", c.Backend)
	}
	if c.Metrics != nil && c.Metrics.Len() < c.ChipCount() {
		return fmt.Errorf("fleet: metrics label set has %d collectors for %d chips",
			c.Metrics.Len(), c.ChipCount())
	}
	if c.MaxInflightShard < 0 || c.MaxInflightFleet < 0 {
		return fmt.Errorf("fleet: negative inflight budget (shard %d, fleet %d)",
			c.MaxInflightShard, c.MaxInflightFleet)
	}
	if c.Batching != nil && c.Batching.Window < 0 {
		return fmt.Errorf("fleet: negative batching window %v", c.Batching.Window)
	}
	return nil
}

// request is one unit of work submitted to a chip queue. Its response
// channel must be buffered (capacity 1) so the worker never blocks
// delivering an outcome mid-batch.
type request struct {
	fn   func(chip int, dev nand.LabDevice) error
	resp chan response
}

// respPool recycles response channels across submissions. Every request
// receives exactly one response and the submitter always drains it, so a
// channel is empty again by the time it goes back in the pool — this
// keeps the per-operation hot path allocation-free on the fleet side.
var respPool = sync.Pool{
	New: func() any { return make(chan response, 1) },
}

// response reports a request's outcome plus the worker's verdict on
// whether its chip should be retired (decided on the worker goroutine —
// the only goroutine allowed to inspect device state). chip identifies
// the executing chip for submitters that did not resolve the worker
// themselves (the coalesced path).
type response struct {
	chip int
	err  error
	dead bool
}

// chipWorker owns one chip: its device handle and the single goroutine
// that drains its work. The request channel carries singleton batches
// from the direct Exec/ExecOn path; with Config.Batching set, the
// batch façade instead appends to the worker's pending queue and the
// worker pulls whole batches from it (see coalesce.go) — either way
// one batch is one chip turn.
type chipWorker struct {
	idx       int
	dev       nand.LabDevice
	saver     chipSaver // underlying chip's Save handle (persist.go)
	reqs      chan []request
	deadLimit int
	stats     *obs.FleetStats

	// Coalescer state (used only when batching is on; see coalesce.go).
	cmu     sync.Mutex
	pending []request
	bell    chan struct{} // capacity 1: "pending is non-empty"
	scratch []request     // reusable grab buffer (worker-owned)
	maxOps  int
	window  time.Duration
}

// run drains work until the request channel is closed. Each request's
// closure executes here, on the chip's one goroutine, in batch order.
func (w *chipWorker) run() {
	if w.maxOps > 0 {
		w.runCoalesced()
		return
	}
	for batch := range w.reqs {
		w.process(batch)
	}
}

// process executes one batch front to back, answering every request.
func (w *chipWorker) process(batch []request) {
	w.stats.RecordBatch(len(batch))
	for _, req := range batch {
		err := w.exec(req.fn)
		req.resp <- response{chip: w.idx, err: err, dead: err != nil && w.chipDead(err)}
	}
}

// exec runs one closure, converting a panic into an error: one bad
// request must not take down the queue goroutine (and with it every
// tenant mapped to this chip).
func (w *chipWorker) exec(fn func(int, nand.LabDevice) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fleet: request on chip %d panicked: %v", w.idx, r)
		}
	}()
	return fn(w.idx, w.dev)
}

// chipDead decides whether the chip behind a failed operation should be
// retired: a latched power loss took the package offline, or wear grew
// enough bad blocks to cross the retirement limit. Transient error
// classes (range checks, bad lengths) never retire a chip.
func (w *chipWorker) chipDead(opErr error) bool {
	if errors.Is(opErr, nand.ErrPowerLoss) {
		return true
	}
	if w.deadLimit < 0 {
		return false
	}
	if !errors.Is(opErr, nand.ErrBadBlock) &&
		!errors.Is(opErr, nand.ErrEraseFailed) &&
		!errors.Is(opErr, nand.ErrProgramFailed) {
		return false
	}
	if fi, ok := w.dev.(nand.FaultInjector); ok {
		return len(fi.GrownBadBlocks()) >= w.deadLimit
	}
	return false
}

// shardState is the mutable routing entry of one logical shard.
type shardState struct {
	chip     int // current chip index; -1 = out of service
	degraded bool
	remaps   int
	deadErr  error // device error that retired the most recent chip
	inflight int   // admitted, not yet completed operations
	rejects  uint64
}

// Fleet is the sharded multi-chip façade. All exported methods are safe
// for concurrent use from any number of goroutines.
type Fleet struct {
	cfg     Config
	workers []*chipWorker
	wg      sync.WaitGroup
	stats   *obs.FleetStats

	mu        sync.Mutex
	shards    []shardState
	spares    []int
	closed    bool
	inflightN int // fleet-wide admitted count (mirror of stats gauge)
	inflight  sync.WaitGroup
}

// New builds the fleet and starts one queue goroutine per chip
// (primaries and spares alike — a spare's goroutine idles until a remap
// routes work to it). Callers must Close the fleet to join those
// goroutines.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 8
	}
	f := &Fleet{
		cfg:     cfg,
		workers: make([]*chipWorker, cfg.ChipCount()),
		shards:  make([]shardState, cfg.Shards),
		stats:   cfg.Stats,
	}
	limit := cfg.deadLimit()
	for i := range f.workers {
		dev, saver := buildChip(cfg, i)
		if cfg.Metrics != nil {
			dev = cfg.Metrics.At(i).Wrap(dev)
		}
		w := &chipWorker{
			idx:       i,
			dev:       dev,
			saver:     saver,
			reqs:      make(chan []request, depth),
			deadLimit: limit,
			stats:     cfg.Stats,
		}
		if cfg.Batching != nil {
			w.maxOps = cfg.Batching.maxOps()
			w.window = cfg.Batching.Window
			w.bell = make(chan struct{}, 1)
		}
		f.workers[i] = w
	}
	for s := range f.shards {
		f.shards[s].chip = s
	}
	for i := cfg.Shards; i < cfg.ChipCount(); i++ {
		f.spares = append(f.spares, i)
	}
	for _, w := range f.workers {
		f.wg.Add(1)
		go func(w *chipWorker) {
			defer f.wg.Done()
			w.run()
		}(w)
	}
	return f, nil
}

// Shards returns the logical shard count.
func (f *Fleet) Shards() int { return f.cfg.Shards }

// Geometry returns the per-chip layout (all chips share the model).
func (f *Fleet) Geometry() nand.Geometry { return f.cfg.Model.Geometry }

// SparesLeft reports how many standby chips remain unassigned.
func (f *Fleet) SparesLeft() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.spares)
}

// ShardChip returns the chip index currently backing a shard (-1 when
// the shard is out of service), or an error for an invalid shard.
func (f *Fleet) ShardChip(shard int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if shard < 0 || shard >= len(f.shards) {
		return -1, fmt.Errorf("fleet: shard %d: %w", shard, ErrShardRange)
	}
	return f.shards[shard].chip, nil
}

// acquire admits one operation on a shard — range check, closed check,
// out-of-service check, then the inflight budgets — and resolves the
// shard's current worker. On success the caller is registered in-flight
// (so Close drains cleanly) and must balance with release(shard).
func (f *Fleet) acquire(shard int) (*chipWorker, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if shard < 0 || shard >= len(f.shards) {
		return nil, fmt.Errorf("fleet: shard %d: %w", shard, ErrShardRange)
	}
	if f.closed {
		return nil, ErrClosed
	}
	st := &f.shards[shard]
	if st.chip < 0 {
		return nil, fmt.Errorf("fleet: shard %d (last chip error: %v): %w",
			shard, st.deadErr, ErrFleetExhausted)
	}
	if f.cfg.MaxInflightShard > 0 && st.inflight >= f.cfg.MaxInflightShard {
		st.rejects++
		f.stats.Reject()
		return nil, fmt.Errorf("fleet: shard %d: %d operations in flight: %w",
			shard, st.inflight, ErrOverloaded)
	}
	if f.cfg.MaxInflightFleet > 0 && f.inflightN >= f.cfg.MaxInflightFleet {
		st.rejects++
		f.stats.Reject()
		return nil, fmt.Errorf("fleet: shard %d: %d operations in flight fleet-wide: %w",
			shard, f.inflightN, ErrOverloaded)
	}
	st.inflight++
	f.inflightN++
	f.inflight.Add(1)
	f.stats.Admit()
	return f.workers[st.chip], nil
}

// release balances acquire: the operation completed (or was answered
// with an error) and its budget slot is free again.
func (f *Fleet) release(shard int) {
	f.mu.Lock()
	f.shards[shard].inflight--
	f.inflightN--
	f.mu.Unlock()
	f.stats.Release()
	f.inflight.Done()
}

// currentWorker re-resolves a shard's worker without admission — the
// coalescer's flusher uses it for operations that were already admitted.
// It deliberately ignores the closed flag: admitted work must still
// reach a chip (Close waits on it), but a shard that went out of service
// mid-flight fails the remaining operations typed.
func (f *Fleet) currentWorker(shard int) (*chipWorker, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &f.shards[shard]
	if st.chip < 0 {
		return nil, fmt.Errorf("fleet: shard %d (last chip error: %v): %w",
			shard, st.deadErr, ErrFleetExhausted)
	}
	return f.workers[st.chip], nil
}

// retire handles a chip death observed by an operation on shard: the
// first observer remaps the shard to a spare (or takes it out of
// service); racing observers see the shard already moved off the dead
// chip and just report the degradation. The returned error joins
// ErrShardDegraded (and ErrFleetExhausted when no spare was left) with
// the underlying device error, so errors.Is works on all of them.
func (f *Fleet) retire(shard, chip int, opErr error) error {
	f.mu.Lock()
	st := &f.shards[shard]
	if st.chip == chip {
		st.degraded = true
		st.deadErr = opErr
		if len(f.spares) > 0 {
			st.chip = f.spares[0]
			f.spares = f.spares[1:]
			st.remaps++
		} else {
			st.chip = -1
		}
	}
	outOfService := st.chip < 0
	f.mu.Unlock()
	if outOfService {
		return fmt.Errorf("fleet: shard %d: chip %d died with no spare left: %w",
			shard, chip, errors.Join(ErrShardDegraded, ErrFleetExhausted, opErr))
	}
	return fmt.Errorf("fleet: shard %d: chip %d died, shard remapped to a spare: %w",
		shard, chip, errors.Join(ErrShardDegraded, opErr))
}

// ExecOn runs fn against the shard's current chip, on that chip's own
// queue goroutine, and returns fn's error (wrapped with degradation
// context if the operation killed the chip). fn receives the executing
// chip's index so callers that cache per-chip state can detect a remap
// that raced their submission: stashd compares it against the chip a
// tenant's volume was created on and refuses to touch a stale volume —
// the device it wraps belongs to a retired chip whose goroutine may
// still be draining older requests.
//
// fn must confine the device to the call (no goroutines, no stashing the
// handle); everything else — single ops, batch ops, whole volume
// transactions — is fair game and runs without interleaving.
func (f *Fleet) ExecOn(shard int, fn func(chip int, dev nand.LabDevice) error) error {
	w, err := f.acquire(shard)
	if err != nil {
		return err
	}
	defer f.release(shard)
	req := request{fn: fn, resp: respPool.Get().(chan response)}
	w.reqs <- []request{req}
	resp := <-req.resp
	respPool.Put(req.resp)
	if resp.dead {
		return f.retire(shard, w.idx, resp.err)
	}
	return resp.err
}

// Exec is ExecOn for callers that do not track chip identity.
func (f *Fleet) Exec(shard int, fn func(dev nand.LabDevice) error) error {
	return f.ExecOn(shard, func(_ int, dev nand.LabDevice) error { return fn(dev) })
}

// Close drains in-flight operations, stops every chip goroutine and
// waits for them to exit. Subsequent operations return ErrClosed. Close
// is idempotent.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.inflight.Wait()
	for _, w := range f.workers {
		close(w.reqs)
	}
	f.wg.Wait()
}

// ShardStatus is one shard's routing and health view.
type ShardStatus struct {
	Shard int `json:"shard"`
	// Chip is the chip index currently backing the shard; -1 when the
	// shard is out of service.
	Chip int `json:"chip"`
	// Degraded reports that the shard lost at least one chip (payloads
	// stored before the remap are gone).
	Degraded bool `json:"degraded,omitempty"`
	// Remaps counts spare assignments.
	Remaps int `json:"remaps,omitempty"`
	// DeadError is the device error that retired the most recent chip.
	DeadError string `json:"dead_error,omitempty"`
	// Inflight is the shard's admitted-but-not-completed operation count
	// at snapshot time (the queue-depth gauge admission control bounds).
	Inflight int `json:"inflight,omitempty"`
	// AdmissionRejects counts submissions this shard refused with
	// ErrOverloaded.
	AdmissionRejects uint64 `json:"admission_rejects,omitempty"`
	// BadBlocks and MaxPEC summarise the current chip's wear (zero when
	// the shard is out of service).
	BadBlocks int `json:"bad_blocks,omitempty"`
	MaxPEC    int `json:"max_pec,omitempty"`
}

// Status reports every shard's routing entry plus current-chip wear
// gathered on the owning goroutines. A shard that degrades while the
// walk is in progress is reported from its routing entry alone.
func (f *Fleet) Status() []ShardStatus {
	out := make([]ShardStatus, f.cfg.Shards)
	for s := range out {
		f.mu.Lock()
		st := f.shards[s]
		f.mu.Unlock()
		row := ShardStatus{
			Shard: s, Chip: st.chip, Degraded: st.degraded, Remaps: st.remaps,
			Inflight: st.inflight, AdmissionRejects: st.rejects,
		}
		if st.deadErr != nil {
			row.DeadError = st.deadErr.Error()
		}
		if st.chip >= 0 {
			_ = f.Exec(s, func(dev nand.LabDevice) error {
				if fi, ok := dev.(nand.FaultInjector); ok {
					row.BadBlocks = len(fi.GrownBadBlocks())
				}
				g := dev.Geometry()
				for b := 0; b < g.Blocks; b++ {
					if p := dev.PEC(b); p > row.MaxPEC {
						row.MaxPEC = p
					}
				}
				return nil
			})
		}
		out[s] = row
	}
	return out
}
