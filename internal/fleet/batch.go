package fleet

import "stashflash/internal/nand"

// Batched façade operations: each call crosses the shard's queue at most
// once — with Config.Batching set, concurrent façade calls to one shard
// coalesce into a shared crossing (see coalesce.go) — and lands on the
// backend's BatchDevice fast path when it has one
// (the chip's vectorised cell walks, the ONFI adapter's multi-plane and
// cached command cycles), falling back to per-page loops otherwise via
// the nand package helpers. Group semantics mirror nand.BatchDevice:
// stop at the first failing page, report how many pages completed, and
// return valid data for exactly those leading pages.

// ReadPages reads count consecutive pages of one shard starting at
// start. It returns the pages fully read (done*PageBytes bytes of data)
// and the first error, if any.
func (f *Fleet) ReadPages(shard int, start nand.PageAddr, count int) (data []byte, done int, err error) {
	execErr := f.submit(shard, func(_ int, dev nand.LabDevice) error {
		pb := dev.Geometry().PageBytes
		buf := make([]byte, count*pb)
		n, rerr := nand.ReadPages(dev, start, count, buf)
		data, done = buf[:n*pb], n
		return rerr
	})
	return data, done, execErr
}

// ReadPagesInto is ReadPages into a caller-supplied buffer (len at
// least count*PageBytes), mirroring nand.ReadPages. Hot paths that read
// in a loop use it to keep the per-operation fleet side allocation-free.
func (f *Fleet) ReadPagesInto(shard int, start nand.PageAddr, count int, out []byte) (done int, err error) {
	execErr := f.submit(shard, func(_ int, dev nand.LabDevice) error {
		n, rerr := nand.ReadPages(dev, start, count, out)
		done = n
		return rerr
	})
	return done, execErr
}

// ProgramPages programs consecutive page images (a whole number of
// PageBytes pages) on one shard and returns how many pages fully
// programmed before the first error.
func (f *Fleet) ProgramPages(shard int, start nand.PageAddr, data []byte) (done int, err error) {
	execErr := f.submit(shard, func(_ int, dev nand.LabDevice) error {
		n, perr := nand.ProgramPages(dev, start, data)
		done = n
		return perr
	})
	return done, execErr
}

// ProbeVoltages probes per-cell voltage levels for count consecutive
// pages of one shard. It returns the pages fully probed (done *
// CellsPerPage levels) and the first error, if any.
func (f *Fleet) ProbeVoltages(shard int, start nand.PageAddr, count int) (levels []uint8, done int, err error) {
	execErr := f.submit(shard, func(_ int, dev nand.LabDevice) error {
		cp := dev.Geometry().CellsPerPage()
		buf := make([]uint8, count*cp)
		n, perr := nand.ProbeVoltages(dev, start, count, buf)
		levels, done = buf[:n*cp], n
		return perr
	})
	return levels, done, execErr
}

// EraseBlock erases one block of one shard.
func (f *Fleet) EraseBlock(shard, block int) error {
	return f.submit(shard, func(_ int, dev nand.LabDevice) error {
		return dev.EraseBlock(block)
	})
}
