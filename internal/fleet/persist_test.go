package fleet

import (
	"bytes"
	"errors"
	"testing"

	"stashflash/internal/nand"
)

// TestFleetSaveRestoreRoundTrip: programmed data survives Save/Restore
// bit-exact, and a restored chip's RNG position is intact — operations
// after the restore are bit-identical to the same operations on a fleet
// that never restarted.
func TestFleetSaveRestoreRoundTrip(t *testing.T) {
	for _, backend := range []string{"direct", "onfi"} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{Shards: 3, Spares: 1, Model: testModel(), Seed: 99, Backend: backend}
			dir := t.TempDir()

			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			g := f.Geometry()
			payload := make([]byte, 2*g.PageBytes)
			for i := range payload {
				payload[i] = byte(i*3 + 1)
			}
			for s := 0; s < cfg.Shards; s++ {
				if err := f.EraseBlock(s, 1); err != nil {
					t.Fatal(err)
				}
				if _, err := f.ProgramPages(s, nand.PageAddr{Block: 1, Page: 0}, payload); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Save(dir); err != nil {
				t.Fatal(err)
			}
			// The uninterrupted fleet continues: one more program per shard,
			// then probe digest material.
			contWant := make([][]byte, cfg.Shards)
			for s := 0; s < cfg.Shards; s++ {
				if _, err := f.ProgramPages(s, nand.PageAddr{Block: 1, Page: 2}, payload[:g.PageBytes]); err != nil {
					t.Fatal(err)
				}
				levels, _, err := f.ProbeVoltages(s, nand.PageAddr{Block: 1, Page: 2}, 1)
				if err != nil {
					t.Fatal(err)
				}
				contWant[s] = append([]byte(nil), levels...)
			}
			f.Close()

			r, err := Restore(cfg, dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for s := 0; s < cfg.Shards; s++ {
				data, _, err := r.ReadPages(s, nand.PageAddr{Block: 1, Page: 0}, 2)
				if err != nil {
					t.Fatalf("shard %d read after restore: %v", s, err)
				}
				if !bytes.Equal(data, payload) {
					t.Fatalf("shard %d payload mismatched after restore", s)
				}
				// Replay the continuation: identical program noise requires the
				// restored RNG stream position.
				if _, err := r.ProgramPages(s, nand.PageAddr{Block: 1, Page: 2}, payload[:g.PageBytes]); err != nil {
					t.Fatal(err)
				}
				levels, _, err := r.ProbeVoltages(s, nand.PageAddr{Block: 1, Page: 2}, 1)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(levels, contWant[s]) {
					t.Fatalf("shard %d: post-restore continuation diverged from uninterrupted fleet", s)
				}
			}
		})
	}
}

// TestFleetRestorePreservesRouting: a degraded fleet (one shard on a
// spare, one out of service) restores with the same routing, the same
// remaining spare pool, and typed exhaustion on the dead shard.
func TestFleetRestorePreservesRouting(t *testing.T) {
	faults := nand.FaultConfig{BadBlockFrac: 1e-15}
	cfg := Config{Shards: 2, Spares: 1, Model: testModel(), Seed: 31, Faults: &faults}
	dir := t.TempDir()

	f := newTestFleet(t, cfg)
	// Shard 0: kill the primary (remaps to the spare), then kill the
	// spare (out of service).
	armPowerLoss(t, f, 0)
	if err := killShard(f, 0); !errors.Is(err, ErrShardDegraded) {
		t.Fatalf("first kill: %v", err)
	}
	armPowerLoss(t, f, 0)
	if err := killShard(f, 0); !errors.Is(err, ErrShardDegraded) {
		t.Fatalf("second kill: %v", err)
	}
	// Shard 1 keeps a payload.
	g := f.Geometry()
	payload := make([]byte, g.PageBytes)
	for i := range payload {
		payload[i] = byte(i + 5)
	}
	if err := f.EraseBlock(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProgramPages(1, nand.PageAddr{Block: 2, Page: 0}, payload); err != nil {
		t.Fatal(err)
	}
	wantStatus := f.Status()
	if err := f.Save(dir); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	gotStatus := r.Status()
	for s := range wantStatus {
		if gotStatus[s].Chip != wantStatus[s].Chip ||
			gotStatus[s].Degraded != wantStatus[s].Degraded ||
			gotStatus[s].Remaps != wantStatus[s].Remaps {
			t.Fatalf("shard %d routing after restore: %+v != %+v", s, gotStatus[s], wantStatus[s])
		}
	}
	if r.SparesLeft() != 0 {
		t.Fatalf("spares left after restore: %d, want 0", r.SparesLeft())
	}
	if err := r.EraseBlock(0, 0); !errors.Is(err, ErrFleetExhausted) {
		t.Fatalf("dead shard after restore: got %v, want ErrFleetExhausted", err)
	}
	data, _, err := r.ReadPages(1, nand.PageAddr{Block: 2, Page: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("surviving shard payload mismatched after restore")
	}
}

// TestFleetRestoreRejectsMismatchedConfig: a state directory saved by
// one fleet shape must not restore into another.
func TestFleetRestoreRejectsMismatchedConfig(t *testing.T) {
	cfg := Config{Shards: 2, Spares: 0, Model: testModel(), Seed: 7}
	dir := t.TempDir()
	f := newTestFleet(t, cfg)
	if err := f.Save(dir); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, bad := range []Config{
		{Shards: 3, Spares: 0, Model: testModel(), Seed: 7},
		{Shards: 2, Spares: 1, Model: testModel(), Seed: 7},
		{Shards: 2, Spares: 0, Model: testModel(), Seed: 8},
		{Shards: 2, Spares: 0, Model: testModel(), Seed: 7, Backend: "onfi"},
	} {
		if _, err := Restore(bad, dir); err == nil {
			t.Fatalf("config %+v restored from mismatched state", bad)
		}
	}
	if !HasState(dir) {
		t.Fatal("HasState false on a saved directory")
	}
	if HasState(t.TempDir()) {
		t.Fatal("HasState true on an empty directory")
	}
}
