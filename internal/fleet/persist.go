package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stashflash/internal/nand"
	"stashflash/internal/onfi"
)

// Fleet persistence: Save writes one image per live chip (the nand.Chip
// gob format — analog cell state, wear, ledger, RNG position) plus a
// routing manifest (shard→chip map, spare pool, degradation records) to
// a directory; Restore rebuilds an equivalent fleet from it. What is NOT
// preserved: a restored chip's fault plan restarts from its derived
// stream's beginning (fault schedules are per-process, the same way a
// power cycle resets a real testbed's injector), and retired chips are
// rebuilt fresh since nothing routes to them. Chip images are written on
// the owning queue goroutines, so Save composes with the concurrency
// contract; for a consistent cut the caller must be quiescent (stashd
// saves after its HTTP listener has drained, before Close).

// manifestSchema versions fleet.json.
const manifestSchema = "stashflash-fleet-state/v1"

// chipSaver is the persistence capability of the direct chip backend.
type chipSaver interface {
	Save(w io.Writer) error
}

// buildChip constructs chip i exactly as Config.Device does and also
// returns its persistence handle (the underlying chip object, which the
// backend adapter may wrap but the saver still reaches).
func buildChip(c Config, i int) (nand.LabDevice, chipSaver) {
	chipSeed, _ := nand.StreamSeed(c.Seed, "fleet/chip", uint64(i))
	chip := nand.NewChip(c.Model, chipSeed)
	if c.Faults != nil && !c.Faults.Zero() {
		fc := *c.Faults
		fc.Seed, _ = nand.StreamSeed(c.Seed, "fleet/faults", uint64(i))
		chip.SetFaultPlan(nand.NewFaultPlan(fc))
	}
	var dev nand.LabDevice = chip
	if c.Backend == "onfi" {
		dev = onfi.NewDevice(chip)
	}
	return dev, chip
}

// savedShard is one routing entry of the manifest.
type savedShard struct {
	Chip     int    `json:"chip"`
	Degraded bool   `json:"degraded,omitempty"`
	Remaps   int    `json:"remaps,omitempty"`
	DeadErr  string `json:"dead_error,omitempty"`
}

// manifest is the fleet.json document. The config echo lets Restore
// reject a directory saved by a differently-shaped fleet before touching
// any chip image.
type manifest struct {
	Schema    string        `json:"schema"`
	Shards    int           `json:"shards"`
	Spares    int           `json:"spares"`
	Seed      uint64        `json:"seed"`
	Backend   string        `json:"backend"`
	Geometry  nand.Geometry `json:"geometry"`
	Routing   []savedShard  `json:"routing"`
	SparePool []int         `json:"spare_pool"`
}

// chipImagePath names chip i's image inside the state directory.
func chipImagePath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("chip_%d.img", i))
}

// writeFileAtomic writes via a temp file + rename so a crash mid-save
// never leaves a truncated file under the final name.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// execChip submits fn directly to chip i's queue goroutine, bypassing
// shard routing (spares have no shard) and the admission budgets (a
// save must not compete with tenant traffic for budget).
func (f *Fleet) execChip(chip int, fn func(dev nand.LabDevice) error) error {
	f.mu.Lock()
	if chip < 0 || chip >= len(f.workers) {
		f.mu.Unlock()
		return fmt.Errorf("fleet: chip %d out of range", chip)
	}
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.inflight.Add(1)
	w := f.workers[chip]
	f.mu.Unlock()
	defer f.inflight.Done()
	req := request{
		fn:   func(_ int, dev nand.LabDevice) error { return fn(dev) },
		resp: make(chan response, 1),
	}
	w.reqs <- []request{req}
	resp := <-req.resp
	return resp.err
}

// Save persists the fleet into dir (created if missing): the routing
// manifest and one image per live chip (current shard chips plus the
// spare pool). Retired chips are skipped. Call on a quiescent fleet for
// a consistent cut.
func (f *Fleet) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f.mu.Lock()
	m := manifest{
		Schema:    manifestSchema,
		Shards:    f.cfg.Shards,
		Spares:    f.cfg.Spares,
		Seed:      f.cfg.Seed,
		Backend:   f.cfg.Backend,
		Geometry:  f.cfg.Model.Geometry,
		Routing:   make([]savedShard, len(f.shards)),
		SparePool: append([]int(nil), f.spares...),
	}
	for s, st := range f.shards {
		row := savedShard{Chip: st.chip, Degraded: st.degraded, Remaps: st.remaps}
		if st.deadErr != nil {
			row.DeadErr = st.deadErr.Error()
		}
		m.Routing[s] = row
	}
	f.mu.Unlock()
	live := make([]int, 0, len(f.workers))
	for _, row := range m.Routing {
		if row.Chip >= 0 {
			live = append(live, row.Chip)
		}
	}
	live = append(live, m.SparePool...)
	for _, i := range live {
		w := f.workers[i]
		if w.saver == nil {
			return fmt.Errorf("fleet: chip %d: backend does not expose a persistence handle", i)
		}
		err := f.execChip(i, func(nand.LabDevice) error {
			return writeFileAtomic(chipImagePath(dir, i), w.saver.Save)
		})
		if err != nil {
			return fmt.Errorf("fleet: saving chip %d: %w", i, err)
		}
	}
	return writeFileAtomic(filepath.Join(dir, "fleet.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// HasState reports whether dir holds a fleet manifest.
func HasState(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "fleet.json"))
	return err == nil
}

// Restore rebuilds a fleet from a Save directory. cfg must describe the
// same fleet shape (shards, spares, seed, backend, geometry) the
// directory was saved from; scheduling knobs (queue depth, batching,
// budgets, metrics) are free to differ. Live chips come back from their
// images with wear, analog state and RNG position intact; the routing
// table (including degraded shards and the remaining spare pool) is
// restored as saved.
func Restore(cfg Config, dir string) (*Fleet, error) {
	data, err := os.ReadFile(filepath.Join(dir, "fleet.json"))
	if err != nil {
		return nil, fmt.Errorf("fleet: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("fleet: parsing manifest: %w", err)
	}
	if m.Schema != manifestSchema {
		return nil, fmt.Errorf("fleet: manifest schema %q, want %q", m.Schema, manifestSchema)
	}
	if m.Shards != cfg.Shards || m.Spares != cfg.Spares || m.Seed != cfg.Seed ||
		m.Backend != cfg.Backend || m.Geometry != cfg.Model.Geometry {
		return nil, fmt.Errorf("fleet: manifest (shards=%d spares=%d seed=%d backend=%q %v) does not match config (shards=%d spares=%d seed=%d backend=%q %v)",
			m.Shards, m.Spares, m.Seed, m.Backend, m.Geometry,
			cfg.Shards, cfg.Spares, cfg.Seed, cfg.Backend, cfg.Model.Geometry)
	}
	if len(m.Routing) != cfg.Shards {
		return nil, fmt.Errorf("fleet: manifest has %d routing entries for %d shards", len(m.Routing), cfg.Shards)
	}
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	live := map[int]bool{}
	for _, row := range m.Routing {
		if row.Chip >= 0 {
			live[row.Chip] = true
		}
	}
	for _, i := range m.SparePool {
		live[i] = true
	}
	for i := range live {
		if i < 0 || i >= len(f.workers) {
			f.Close()
			return nil, fmt.Errorf("fleet: manifest references chip %d outside the fleet", i)
		}
		dev, saver, err := restoreChip(cfg, i, dir)
		if err != nil {
			f.Close()
			return nil, err
		}
		if cfg.Metrics != nil {
			dev = cfg.Metrics.At(i).Wrap(dev)
		}
		// The worker goroutine is already running but idle (nothing has
		// been routed yet), and dev/saver are read only by it after this.
		f.workers[i].dev = dev
		f.workers[i].saver = saver
	}
	f.mu.Lock()
	for s, row := range m.Routing {
		st := &f.shards[s]
		st.chip = row.Chip
		st.degraded = row.Degraded
		st.remaps = row.Remaps
		if row.DeadErr != "" {
			st.deadErr = errors.New(row.DeadErr)
		}
	}
	f.spares = append([]int(nil), m.SparePool...)
	f.mu.Unlock()
	return f, nil
}

// restoreChip loads chip i's image and re-applies the derived fault plan
// and backend adapter (locals only: the concrete chip type must not
// appear in any signature outside the device packages).
func restoreChip(cfg Config, i int, dir string) (nand.LabDevice, chipSaver, error) {
	file, err := os.Open(chipImagePath(dir, i))
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: chip %d image: %w", i, err)
	}
	defer file.Close()
	chip, err := nand.Load(file)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: chip %d image: %w", i, err)
	}
	if chip.Geometry() != cfg.Model.Geometry {
		return nil, nil, fmt.Errorf("fleet: chip %d image geometry %v does not match %v",
			i, chip.Geometry(), cfg.Model.Geometry)
	}
	if cfg.Faults != nil && !cfg.Faults.Zero() {
		fc := *cfg.Faults
		fc.Seed, _ = nand.StreamSeed(cfg.Seed, "fleet/faults", uint64(i))
		chip.SetFaultPlan(nand.NewFaultPlan(fc))
	}
	var dev nand.LabDevice = chip
	if cfg.Backend == "onfi" {
		dev = onfi.NewDevice(chip)
	}
	return dev, chip, nil
}
