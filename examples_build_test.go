package stashflash

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuild compiles every example program so documentation code
// cannot rot silently: an API change that breaks an example breaks the
// build wall, not a future reader.
func TestExamplesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) < 5 {
		t.Fatalf("expected at least 5 example programs, found %v", dirs)
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			out := filepath.Join(t.TempDir(), dir)
			cmd := exec.Command("go", "build", "-o", out, "./examples/"+dir)
			cmd.Env = os.Environ()
			if msg, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("example %s does not build: %v\n%s", dir, err, msg)
			}
		})
	}
}
