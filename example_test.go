package stashflash_test

import (
	"fmt"

	"stashflash"
)

// ExampleDevice_NewHider demonstrates the basic hide/reveal round trip.
func ExampleDevice_NewHider() {
	dev := stashflash.OpenVendorA(42)
	hider, err := dev.NewHider([]byte("secret"), stashflash.Robust)
	if err != nil {
		panic(err)
	}
	addr := stashflash.PageAddr{Block: 0, Page: 0}
	// Public data is assumed encrypted (uniformly random bits); an
	// all-zeros page would leave no non-programmed cells to hide in.
	public := make([]byte, hider.PublicDataBytes())
	for i := range public {
		public[i] = byte(i * 151)
	}
	if err := hider.WritePage(addr, public); err != nil {
		panic(err)
	}
	if _, err := hider.Hide(addr, []byte("hidden"), 0); err != nil {
		panic(err)
	}
	msg, _, err := hider.Reveal(addr, 6, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", msg)
	// Output: hidden
}

// ExamplePlanCapacity shows the §6.3 capacity arithmetic on the full part.
func ExamplePlanCapacity() {
	std, err := stashflash.PlanCapacity(stashflash.VendorA(), stashflash.Standard)
	if err != nil {
		panic(err)
	}
	enh, err := stashflash.PlanCapacity(stashflash.VendorA(), stashflash.Enhanced)
	if err != nil {
		panic(err)
	}
	fmt.Printf("standard: %d hidden payload bits/page\n", std.PayloadBitsPerPage)
	fmt.Printf("enhanced: %d hidden payload bits/page (%.1fx)\n",
		enh.PayloadBitsPerPage, float64(enh.PayloadBitsPerPage)/float64(std.PayloadBitsPerPage))
	// Output:
	// standard: 184 hidden payload bits/page
	// enhanced: 1792 hidden payload bits/page (9.7x)
}

// ExampleDevice_CreateVolume mounts a hidden volume, stores a secret
// sector, and recovers all hidden state from the key alone.
func ExampleDevice_CreateVolume() {
	dev := stashflash.OpenVendorA(7)
	vol, err := dev.CreateVolume([]byte("hidden key"), []byte("public key"), 8)
	if err != nil {
		panic(err)
	}
	if err := vol.HiddenWrite(1, []byte("vault")); err != nil {
		panic(err)
	}
	if err := vol.Sync(); err != nil {
		panic(err)
	}
	if err := vol.Remount([]byte("hidden key")); err != nil {
		panic(err)
	}
	got, err := vol.HiddenRead(1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", got[:5])
	// Output: vault
}
