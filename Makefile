# Tier-1 verify is `make ci` (see ROADMAP.md).

GO ?= go

.PHONY: build test vet race fuzz-smoke lint-layering ci test-fleet bench bench-parallel bench-device bench-retention bench-schemes bench-fleet bench-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Brief fuzz runs from the committed seed corpora (testdata/fuzz). Each
# target gets a few seconds — enough to catch regressions on the decode
# and mount paths without turning CI into a fuzzing campaign. The deep
# CI lane stretches each target: `make fuzz-smoke FUZZTIME=60s`.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/ecc -run '^$$' -fuzz '^FuzzBCHDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ecc -run '^$$' -fuzz '^FuzzRSDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stegfs -run '^$$' -fuzz '^FuzzSuperblockParse$$' -fuzztime $(FUZZTIME)

# Layering gate: outside the device packages (internal/nand defines the
# interfaces, internal/onfi adapts the bus) and test files, no function
# may take a *nand.Chip parameter or hold one in a struct field — code
# must consume the nand.Device interfaces so every backend keeps working.
# The pattern matches an identifier directly before `*nand.Chip` (a
# parameter or field declaration); bare return types and type assertions
# stay legal.
lint-layering:
	@bad=$$(grep -rn --include='*.go' '[A-Za-z0-9_] \*nand\.Chip' . \
		--exclude-dir=related --exclude-dir=.git \
		--exclude='*_test.go' \
		| grep -v '^\./internal/nand/' | grep -v '^\./internal/onfi/' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-layering: *nand.Chip must not leak into parameters/fields outside internal/nand and internal/onfi:"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "lint-layering: ok"
	@unformatted=$$(gofmt -l . 2>/dev/null | grep -v '^related/' || true); \
	if [ -n "$$unformatted" ]; then \
		echo "lint-layering: files need gofmt:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	@echo "gofmt: ok"
	@bad=$$(grep -rln --include='*.go' -e '"net/http/pprof"' -e '"expvar"' . \
		--exclude-dir=related --exclude-dir=.git \
		--exclude='*_test.go' \
		| grep -v '^\./internal/obs/' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-layering: net/http/pprof and expvar are confined to internal/obs (debug server stays opt-in):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "debug-import confinement: ok"
	@bad=$$(for f in $$(grep -rl --include='*.go' '^[[:space:]]*go ' . \
		--exclude-dir=related --exclude-dir=.git \
		--exclude='*_test.go' \
		| grep -v '^\./internal/fleet/'); do \
		grep -ql '"stashflash/internal/nand"' $$f && echo $$f; \
	done; true); \
	if [ -n "$$bad" ]; then \
		echo "lint-layering: only internal/fleet may start goroutines in files that import internal/nand"; \
		echo "(a nand.Device is single-goroutine by contract; route device work through the fleet's per-chip queues):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "goroutine-ownership confinement: ok"
	@bad=$$(grep -rln --include='*.go' '^[[:space:]]*go ' ./cmd/stashd \
		--exclude='*_test.go' \
		| grep -v '^\./cmd/stashd/run\.go$$' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-layering: inside cmd/stashd only run.go (the server lifecycle) may start goroutines"; \
		echo "(handlers and persistence stay synchronous; concurrency lives behind the fleet's coalescer queues):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "stashd goroutine confinement: ok"
	@bad=$$(grep -rn --include='*.go' 'nand\.VendorDevice' . \
		--exclude-dir=related --exclude-dir=.git \
		--exclude='*_test.go' \
		| grep -v ':[0-9]*:[[:space:]]*//' \
		| grep -v '^\./internal/nand/' | grep -v '^\./internal/onfi/' \
		| grep -v '^\./internal/obs/' | grep -v '^\./internal/pthi/' \
		| grep -v '^\./internal/core/vthi/' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-layering: nand.VendorDevice is confined to the device adapters (nand, onfi, obs), the pthi baseline and internal/core/vthi"; \
		echo "(everything else consumes nand.Device through the core.Scheme seam, so WOM-class schemes keep working on unmodified hardware):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vendor-device confinement: ok"
	@bad=$$(grep -rln --include='*.go' '"stashflash/internal/wom"' . \
		--exclude-dir=related --exclude-dir=.git \
		| grep -v '^\./internal/wom/' | grep -v '^\./internal/core/' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-layering: the WOM code tables are scheme internals — only scheme packages under internal/core may import stashflash/internal/wom:"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "wom-import confinement: ok"

ci: build vet lint-layering test race fuzz-smoke

# Fleet + stashd suite on its own: the equivalence wall, the degradation
# ladder and the concurrent-tenant soak, plain then under the race
# detector. STASHFLASH_SOAK_SECONDS stretches the soak (default 2s);
# e.g. `STASHFLASH_SOAK_SECONDS=60 make test-fleet` for a long shakeout.
test-fleet:
	$(GO) test ./internal/fleet ./cmd/stashd
	$(GO) test -race ./internal/fleet ./cmd/stashd

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Regenerate BENCH_parallel.json: per-experiment wall clock at workers=1
# vs workers=GOMAXPROCS. Meaningful speedups need a multi-core runner.
bench-parallel:
	$(GO) run ./cmd/experiments -benchjson BENCH_parallel.json all

# Regenerate BENCH_device.json: per-experiment wall clock over the direct
# chip backend vs the ONFI bus command adapter (identical results; the
# overhead column is the cost of the command encoding).
bench-device:
	$(GO) run ./cmd/experiments -devbenchjson BENCH_device.json all

# Regenerate BENCH_retention.json: fixed aging scenarios over the lazy
# virtual-clock retention engine vs the eager reference walk (identical
# results; the speedup column is what the lazy engine buys).
bench-retention:
	$(GO) run ./cmd/experiments -retbenchjson BENCH_retention.json

# Regenerate BENCH_schemes.json: per-scheme hide/reveal/post-hoc wall
# clock on full-geometry chips (the scheme hot-path gate).
bench-schemes:
	$(GO) run ./cmd/experiments -schemesbenchjson BENCH_schemes.json

# Regenerate BENCH_fleet.json: the multi-tenant fleet read path, batched
# vs unbatched, at fan-outs 1/4/16 — plus the measured batching win
# (ops per queue crossing at the top fan-out) the baseline's win_floor
# makes benchdiff enforce.
bench-fleet:
	$(GO) run ./cmd/experiments -fleetbenchjson BENCH_fleet.json

# Bench-regression gate: regenerate both benchmark documents into
# untracked temp files and diff them against the committed baselines with
# cmd/benchdiff. Fails when the fresh run is slower than the tolerance
# (default 25%; override with STASHFLASH_BENCH_TOLERANCE=0.5 or similar
# on noisy runners). Wired as a non-blocking CI job.
bench-check:
	$(GO) run ./cmd/experiments -benchjson .bench_fresh_parallel.json all
	$(GO) run ./cmd/benchdiff -baseline BENCH_parallel.json -fresh .bench_fresh_parallel.json
	$(GO) run ./cmd/experiments -devbenchjson .bench_fresh_device.json all
	$(GO) run ./cmd/benchdiff -baseline BENCH_device.json -fresh .bench_fresh_device.json
	$(GO) run ./cmd/experiments -retbenchjson .bench_fresh_retention.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_retention.json -fresh .bench_fresh_retention.json
	$(GO) run ./cmd/experiments -schemesbenchjson .bench_fresh_schemes.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_schemes.json -fresh .bench_fresh_schemes.json
	$(GO) run ./cmd/experiments -fleetbenchjson .bench_fresh_fleet.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_fleet.json -fresh .bench_fresh_fleet.json
