# Tier-1 verify is `make ci` (see ROADMAP.md).

GO ?= go

.PHONY: build test vet race ci bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

ci: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Regenerate BENCH_parallel.json: per-experiment wall clock at workers=1
# vs workers=GOMAXPROCS. Meaningful speedups need a multi-core runner.
bench-parallel:
	$(GO) run ./cmd/experiments -benchjson BENCH_parallel.json all
