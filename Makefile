# Tier-1 verify is `make ci` (see ROADMAP.md).

GO ?= go

.PHONY: build test vet race fuzz-smoke ci bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Brief fuzz runs from the committed seed corpora (testdata/fuzz). Each
# target gets a few seconds — enough to catch regressions on the decode
# and mount paths without turning CI into a fuzzing campaign.
fuzz-smoke:
	$(GO) test ./internal/ecc -run '^$$' -fuzz '^FuzzBCHDecode$$' -fuzztime 10s
	$(GO) test ./internal/ecc -run '^$$' -fuzz '^FuzzRSDecode$$' -fuzztime 10s
	$(GO) test ./internal/stegfs -run '^$$' -fuzz '^FuzzSuperblockParse$$' -fuzztime 10s

ci: build vet test race fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Regenerate BENCH_parallel.json: per-experiment wall clock at workers=1
# vs workers=GOMAXPROCS. Meaningful speedups need a multi-core runner.
bench-parallel:
	$(GO) run ./cmd/experiments -benchjson BENCH_parallel.json all
