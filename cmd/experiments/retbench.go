package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"stashflash/internal/nand"
)

// Retention-engine benchmark (-retbenchjson): times aging scenarios over
// the lazy virtual-clock retention engine against the eager reference
// walk (nand/retention.go). The two engines are bit-identical by
// construction, so the columns measure pure engine cost: an O(1) clock
// bump plus on-demand decay folds versus an immediate walk of every live
// page at each bake. The document feeds the same benchdiff gate as
// BENCH_parallel.json / BENCH_device.json.

// retBenchEntry is one scenario's lazy-vs-eager wall-clock comparison.
type retBenchEntry struct {
	ID      string  `json:"id"`
	LazyMs  float64 `json:"lazy_ms"`
	EagerMs float64 `json:"eager_ms"`
	Speedup float64 `json:"speedup"`
}

// retBenchReport is the BENCH_retention.json document.
type retBenchReport struct {
	Scale        string          `json:"scale"`
	Seed         uint64          `json:"seed"`
	NumCPU       int             `json:"num_cpu"`
	GoMaxProcs   int             `json:"gomaxprocs"`
	Pages        int             `json:"programmed_pages"`
	Experiments  []retBenchEntry `json:"experiments"`
	TotalLazyMs  float64         `json:"total_lazy_ms"`
	TotalEagerMs float64         `json:"total_eager_ms"`
	Speedup      float64         `json:"speedup"`
}

// retBenchPages is the live-state size of every scenario: this many
// programmed pages of block 0 on a full-geometry vendor-A chip, at
// mid-life wear so the leak rate is realistic.
const retBenchPages = 64

// retBenchReps is the best-of repetition count per timed scenario. A
// variable so the flag-plumbing tests can drop it to 1.
var retBenchReps = 3

// retBenchChip builds one scenario substrate in the requested engine
// mode. Build cost is outside every timed region.
func retBenchChip(seed uint64, eager bool) (nand.LabDevice, error) {
	chip := nand.NewChip(nand.ModelA(), seed)
	chip.SetEagerRetention(eager)
	var dev nand.LabDevice = chip
	if err := dev.CycleBlock(0, 2000); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))
	data := make([]byte, dev.Geometry().PageBytes)
	for p := 0; p < retBenchPages; p++ {
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		if err := dev.ProgramPage(nand.PageAddr{Block: 0, Page: p}, data); err != nil {
			return nil, err
		}
	}
	return dev, nil
}

// retBenchScenarios are the timed workloads. Each receives a freshly
// built substrate; the virtual clock always stays far below the
// time.Duration horizon.
var retBenchScenarios = []struct {
	id   string
	desc string
	run  func(dev nand.LabDevice) error
}{
	{
		id:   "bake12mo",
		desc: "20 bakes totalling 12 months, no senses in between",
		run: func(dev nand.LabDevice) error {
			for i := 0; i < 20; i++ {
				dev.AdvanceRetention(12 * nand.RetentionMonth / 20)
			}
			return nil
		},
	},
	{
		id:   "sense12mo",
		desc: "one 12-month bake, then probe every programmed page (the deferred decay is paid here)",
		run: func(dev nand.LabDevice) error {
			dev.AdvanceRetention(12 * nand.RetentionMonth)
			for p := 0; p < retBenchPages; p++ {
				if _, err := dev.ProbePage(nand.PageAddr{Block: 0, Page: p}); err != nil {
					return err
				}
			}
			return nil
		},
	},
	{
		id:   "sweep10y",
		desc: "10 annual bakes, sampling 8 of the programmed pages after each",
		run: func(dev nand.LabDevice) error {
			for y := 0; y < 10; y++ {
				dev.AdvanceRetention(12 * nand.RetentionMonth)
				for p := 0; p < 8; p++ {
					a := nand.PageAddr{Block: 0, Page: p}
					if _, err := dev.ProbePage(a); err != nil {
						return err
					}
					if _, err := dev.ReadPage(a); err != nil {
						return err
					}
				}
			}
			return nil
		},
	},
}

// runRetentionBench times every scenario in both engine modes and writes
// the BENCH_retention.json comparison. Scenarios run on full-geometry
// chips regardless of -scale; only the seed is taken from the run scale.
func runRetentionBench(path string, seed uint64) error {
	rep := retBenchReport{
		Scale:      "modelA-full",
		Seed:       seed,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Pages:      retBenchPages,
	}
	// Best-of-retBenchReps with a clean heap before each timed region: a
	// scenario mutates the virtual clock, so every repetition gets a fresh
	// substrate, and the minimum discards runs a GC pause landed in.
	timeRun := func(id string, run func(nand.LabDevice) error, eager bool) (float64, error) {
		best := 0.0
		for rep := 0; rep < retBenchReps; rep++ {
			dev, err := retBenchChip(seed, eager)
			if err != nil {
				return 0, fmt.Errorf("%s: building substrate: %w", id, err)
			}
			runtime.GC()
			start := time.Now()
			if err := run(dev); err != nil {
				return 0, fmt.Errorf("%s (eager=%v): %w", id, eager, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1e3
			if rep == 0 || ms < best {
				best = ms
			}
		}
		return best, nil
	}
	for _, sc := range retBenchScenarios {
		lazyMs, err := timeRun(sc.id, sc.run, false)
		if err != nil {
			return err
		}
		eagerMs, err := timeRun(sc.id, sc.run, true)
		if err != nil {
			return err
		}
		// A lazy pass can finish under timer resolution; clamp the
		// denominator so the ratio stays finite (and JSON-encodable).
		den := lazyMs
		if den < 0.001 {
			den = 0.001
		}
		entry := retBenchEntry{ID: sc.id, LazyMs: lazyMs, EagerMs: eagerMs, Speedup: eagerMs / den}
		rep.Experiments = append(rep.Experiments, entry)
		rep.TotalLazyMs += lazyMs
		rep.TotalEagerMs += eagerMs
		fmt.Fprintf(os.Stderr, "%-10s lazy %10.3fms  eager %10.3fms  %.0fx  (%s)\n",
			sc.id, lazyMs, eagerMs, entry.Speedup, sc.desc)
	}
	if den := rep.TotalLazyMs; den >= 0.001 {
		rep.Speedup = rep.TotalEagerMs / den
	} else {
		rep.Speedup = rep.TotalEagerMs / 0.001
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total: lazy %.3fms, eager %.3fms (%.0fx); wrote %s\n",
		rep.TotalLazyMs, rep.TotalEagerMs, rep.Speedup, path)
	return nil
}
