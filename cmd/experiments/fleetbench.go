package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"stashflash/internal/fleet"
	"stashflash/internal/nand"
	"stashflash/internal/obs"
	"stashflash/internal/parallel"
)

// Fleet benchmark (-fleetbenchjson): drives the multi-tenant read path
// of the sharded fleet with cross-tenant batching on and off, at
// fan-outs of 1, 4 and 16 concurrent tenants per shard. The chips are
// tiny on purpose: with almost no silicon work per operation the
// workload isolates the per-operation queue-crossing overhead that the
// coalescer exists to amortise — the regime a many-tenant stashd under
// load lives in.
//
// Two things feed the benchdiff gate:
//
//   - The wall-clock entries (fleet_ms per fan-out and mode) are
//     regression-gated against the committed baseline with the usual
//     tolerance, like every other BENCH_*.json.
//   - max_fan_win is the multi-tenant batching win at the largest
//     fan-out: measured operations per queue crossing, batched over
//     unbatched, from the fleet's own counters. Unbatched, every
//     operation is its own crossing (the ratio's denominator is 1 by
//     construction, but it is measured, not assumed); batched, the
//     coalescer merges concurrent tenants into shared crossings. This
//     is the amortisation factor that the multi-plane/cached ONFI
//     command set of Cai et al. converts into device-level parallelism,
//     and — in the style of the repo's §8 throughput arithmetic — it is
//     the enforceable throughput win: schedule noise moves wall-clock
//     numbers by double-digit percents on a loaded host, while a broken
//     coalescer collapses this ratio to 1.0 no matter the host.
//     benchdiff fails a fresh run whose max_fan_win is below the
//     baseline's win_floor.
type fleetBenchEntry struct {
	ID      string  `json:"id"`
	FleetMs float64 `json:"fleet_ms"`
}

// fleetBenchReport is the BENCH_fleet.json document.
type fleetBenchReport struct {
	Scale        string            `json:"scale"`
	Seed         uint64            `json:"seed"`
	NumCPU       int               `json:"num_cpu"`
	GoMaxProcs   int               `json:"gomaxprocs"`
	Shards       int               `json:"shards"`
	Rounds       int               `json:"rounds"`
	WinMetric    string            `json:"win_metric"`
	WinFloor     float64           `json:"win_floor"`
	MaxFanWin    float64           `json:"max_fan_win"`
	Experiments  []fleetBenchEntry `json:"experiments"`
	TotalFleetMs float64           `json:"total_fleet_ms"`
}

const (
	// fleetBenchShards is the fleet width under test.
	fleetBenchShards = 4
	// fleetBenchRounds is how many reads each tenant submits per timed run.
	fleetBenchRounds = 1000
	// fleetBenchWinFloor is the minimum batched-over-unbatched
	// ops-per-crossing ratio at the largest fan-out the committed
	// baseline demands of fresh runs.
	fleetBenchWinFloor = 2.0
	// fleetBenchWinMetric documents how max_fan_win is computed.
	fleetBenchWinMetric = "ops per queue crossing, batched/unbatched, at the largest fan-out"
)

// fleetBenchFanouts are the tenants-per-shard levels.
var fleetBenchFanouts = []int{1, 4, 16}

// fleetBenchReps is the best-of repetition count per timed scenario. A
// variable so the flag-plumbing tests can drop it to 1 (and the deep CI
// lane can raise it).
var fleetBenchReps = 5

// fleetBenchConfig is the fleet shape under test: tiny pages so the
// queue crossing, not the sense, is the dominant per-operation cost.
func fleetBenchConfig(seed uint64, batching *fleet.Batching, stats *obs.FleetStats) fleet.Config {
	return fleet.Config{
		Shards:   fleetBenchShards,
		Model:    nand.ModelA().ScaleGeometry(8, 4, 16),
		Seed:     seed,
		Batching: batching,
		Stats:    stats,
	}
}

// fleetBenchSetup programs every block so the timed reads walk real
// data. Setup cost is outside every timed region.
func fleetBenchSetup(f *fleet.Fleet) error {
	g := f.Geometry()
	data := make([]byte, 2*g.PageBytes)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	return parallel.ForEach(fleetBenchShards, fleetBenchShards, func(s int) error {
		for b := 0; b < g.Blocks; b++ {
			if err := f.EraseBlock(s, b); err != nil {
				return err
			}
			if _, err := f.ProgramPages(s, nand.PageAddr{Block: b}, data); err != nil {
				return err
			}
		}
		return nil
	})
}

// fleetBenchRun times one fan level: fan tenants per shard, each
// submitting fleetBenchRounds single-page reads into a reused buffer.
// Reads are pure, so the fleet's state is identical before and after
// and repetitions compose.
func fleetBenchRun(f *fleet.Fleet, fan int) (float64, error) {
	g := f.Geometry()
	units := fan * fleetBenchShards
	runtime.GC()
	start := time.Now()
	err := parallel.ForEach(units, units, func(u int) error {
		shard := u % fleetBenchShards
		buf := make([]byte, g.PageBytes)
		for r := 0; r < fleetBenchRounds; r++ {
			a := nand.PageAddr{Block: (u + r) % g.Blocks, Page: r % 2}
			if _, rerr := f.ReadPagesInto(shard, a, 1, buf); rerr != nil {
				return rerr
			}
		}
		return nil
	})
	return float64(time.Since(start).Microseconds()) / 1e3, err
}

// runFleetBench times every (fan-out, mode) scenario and writes the
// BENCH_fleet.json document.
func runFleetBench(path string, seed uint64) error {
	rep := fleetBenchReport{
		Scale:      "fleet-tiny",
		Seed:       seed,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     fleetBenchShards,
		Rounds:     fleetBenchRounds,
		WinMetric:  fleetBenchWinMetric,
		WinFloor:   fleetBenchWinFloor,
	}
	maxFan := fleetBenchFanouts[len(fleetBenchFanouts)-1]
	best := map[string]float64{}
	opsPerCrossing := map[string]float64{}
	modes := []struct {
		name     string
		batching *fleet.Batching
	}{
		{"unbatched", nil},
		{"batched", &fleet.Batching{MaxOps: 32}},
	}
	for _, mode := range modes {
		stats := &obs.FleetStats{}
		f, err := fleet.New(fleetBenchConfig(seed, mode.batching, stats))
		if err != nil {
			return err
		}
		if err := fleetBenchSetup(f); err != nil {
			f.Close()
			return fmt.Errorf("fleet bench setup (%s): %w", mode.name, err)
		}
		for _, fan := range fleetBenchFanouts {
			id := fmt.Sprintf("fanout%d/%s", fan, mode.name)
			before := stats.Snapshot()
			for r := 0; r < fleetBenchReps; r++ {
				ms, err := fleetBenchRun(f, fan)
				if err != nil {
					f.Close()
					return fmt.Errorf("%s: %w", id, err)
				}
				if r == 0 || ms < best[id] {
					best[id] = ms
				}
			}
			after := stats.Snapshot()
			ops := after.OpsExecuted - before.OpsExecuted
			crossings := after.QueueCrossings - before.QueueCrossings
			if crossings > 0 {
				opsPerCrossing[id] = float64(ops) / float64(crossings)
			}
			rep.Experiments = append(rep.Experiments, fleetBenchEntry{ID: id, FleetMs: best[id]})
			rep.TotalFleetMs += best[id]
			fmt.Fprintf(os.Stderr, "%-20s %10.3fms   %6.2f ops/crossing\n", id, best[id], opsPerCrossing[id])
		}
		f.Close()
	}
	if u := opsPerCrossing[fmt.Sprintf("fanout%d/unbatched", maxFan)]; u > 0 {
		rep.MaxFanWin = opsPerCrossing[fmt.Sprintf("fanout%d/batched", maxFan)] / u
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total: %.3fms; batching win at fanout%d: %.2fx ops/crossing (floor %.2fx); wrote %s\n",
		rep.TotalFleetMs, maxFan, rep.MaxFanWin, rep.WinFloor, path)
	return nil
}
