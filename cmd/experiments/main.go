// Command experiments regenerates the paper's tables and figures from the
// simulated substrate. Each experiment prints its headline tables and (in
// full mode) the figure series as aligned (x, y) columns.
//
// Usage:
//
//	experiments -list
//	experiments [-scale ci|paper] [-summary] [-seed N] [-workers N] [-backend direct|onfi] all
//	experiments [-scale ci|paper] fig6 fig10 tbl1 ...
//	experiments -benchjson BENCH_parallel.json all
//	experiments -devbenchjson BENCH_device.json all
//	experiments -retbenchjson BENCH_retention.json
//	experiments -schemesbenchjson BENCH_schemes.json
//	experiments -metricsjson metrics.json [-trace 256 -backend onfi] all
//	experiments -debug-addr localhost:6060 -scale paper all
//
// -workers bounds the experiment engine's fan-out across independent
// chips, blocks and replicate points (0 = auto: STASHFLASH_WORKERS, else
// GOMAXPROCS; 1 = serial). Results are bit-identical for every worker
// count. -backend selects how work units reach their chip samples:
// "direct" issues simulator calls, "onfi" drives every operation through
// the bus-level command adapter; results are bit-identical for either.
// -benchjson additionally times each experiment at workers=1 and at the
// selected worker count and writes the comparison as JSON; -devbenchjson
// times each experiment at backend=direct and backend=onfi and writes
// the per-backend cost comparison; -retbenchjson times fixed retention
// aging scenarios over the lazy virtual-clock engine and the eager
// reference walk (it takes no experiment ids — the scenarios are built
// in, see retbench.go); -schemesbenchjson times every bake-off scheme's
// hide/reveal/post-hoc operations on full-geometry chips (also no
// experiment ids, see schemesbench.go).
//
// -metricsjson wraps every work unit's device in the observability
// decorator (internal/obs) and writes the aggregated per-operation
// counters, latency histograms, typed-error tallies and block wear/read
// tallies as JSON after the run (schema documented in EXPERIMENTS.md);
// -trace N additionally retains the last N ONFI bus cycles when running
// -backend onfi. -debug-addr serves net/http/pprof and expvar (plus the
// live metrics snapshot at /debug/metrics) for the duration of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"stashflash/internal/experiments"
	"stashflash/internal/obs"
	"stashflash/internal/parallel"
)

// benchEntry is one experiment's serial-vs-parallel wall-clock comparison.
type benchEntry struct {
	ID         string  `json:"id"`
	Workers1Ms float64 `json:"workers1_ms"`
	WorkersNMs float64 `json:"workersN_ms"`
	Speedup    float64 `json:"speedup"`
}

// benchReport is the BENCH_parallel.json document.
type benchReport struct {
	Scale       string       `json:"scale"`
	Seed        uint64       `json:"seed"`
	NumCPU      int          `json:"num_cpu"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	Workers     int          `json:"workers"`
	Experiments []benchEntry `json:"experiments"`
	Total1Ms    float64      `json:"total_workers1_ms"`
	TotalNMs    float64      `json:"total_workersN_ms"`
	Speedup     float64      `json:"speedup"`
}

func main() {
	scaleName := flag.String("scale", "ci", "run scale: ci (seconds) or paper (minutes)")
	summary := flag.Bool("summary", false, "print tables and notes only, suppress series points")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Uint64("seed", 0, "override the scale's seed (0 keeps default)")
	workers := flag.Int("workers", 0, "experiment engine worker count (0 = auto, 1 = serial)")
	backend := flag.String("backend", "", "device backend: direct (default) or onfi (bus command adapter)")
	benchJSON := flag.String("benchjson", "", "time each experiment at workers=1 vs -workers and write the comparison to this JSON file")
	devBenchJSON := flag.String("devbenchjson", "", "time each experiment at backend=direct vs backend=onfi and write the comparison to this JSON file")
	retBenchJSON := flag.String("retbenchjson", "", "time the fixed retention aging scenarios over the lazy vs eager engine and write the comparison to this JSON file (takes no experiment ids)")
	schemesBenchJSON := flag.String("schemesbenchjson", "", "time each hiding scheme's hide/reveal/post-hoc operations on full-geometry chips and write the measurements to this JSON file (takes no experiment ids)")
	fleetBenchJSON := flag.String("fleetbenchjson", "", "time the fleet's multi-tenant read path batched vs unbatched at fan-outs 1/4/16 and write the measurements to this JSON file (takes no experiment ids)")
	benchReps := flag.Int("reps", 0, "override the best-of repetition count of the fixed-scenario benches (0 keeps each bench's default; the deep CI lane uses 10)")
	metricsJSON := flag.String("metricsjson", "", "record per-operation device metrics across the run and write the snapshot to this JSON file (schema: EXPERIMENTS.md)")
	traceCycles := flag.Int("trace", 0, "with -metricsjson: keep the last N ONFI bus cycles in the snapshot (needs -backend onfi)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar debug endpoints on this address for the duration of the run (e.g. localhost:6060)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Paper)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "ci":
		scale = experiments.CIScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (ci, paper)\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	scale.Workers = *workers
	switch *backend {
	case "", "direct", "onfi":
		scale.Backend = *backend
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown backend %q (direct, onfi)\n", *backend)
		os.Exit(2)
	}

	var collector *obs.Collector
	if *metricsJSON != "" || *debugAddr != "" {
		collector = obs.NewCollector(*traceCycles)
		scale.Metrics = collector
	}
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr, collector)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: debug server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: debug server on http://%s/debug/\n", ln.Addr())
	}

	// The retention, scheme and fleet benches run fixed scenarios, not
	// experiment entries, so they are resolved before the ids-required
	// check.
	if *benchReps > 0 {
		retBenchReps, schemesBenchReps, fleetBenchReps = *benchReps, *benchReps, *benchReps
	}
	if *retBenchJSON != "" {
		if err := runRetentionBench(*retBenchJSON, scale.Seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *schemesBenchJSON != "" {
		if err := runSchemesBench(*schemesBenchJSON, scale.Seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *fleetBenchJSON != "" {
		if err := runFleetBench(*fleetBenchJSON, scale.Seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: name experiments to run, or \"all\" (see -list)")
		os.Exit(2)
	}
	var entries []experiments.Entry
	if len(ids) == 1 && ids[0] == "all" {
		entries = experiments.All()
	} else {
		for _, id := range ids {
			e, err := experiments.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	if *benchJSON != "" {
		if err := runBench(*benchJSON, scale, *scaleName, entries); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		writeMetrics(*metricsJSON, collector)
		return
	}
	if *devBenchJSON != "" {
		if err := runDeviceBench(*devBenchJSON, scale, *scaleName, entries); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		writeMetrics(*metricsJSON, collector)
		return
	}

	for _, e := range entries {
		start := time.Now()
		r, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		r.AddNote("regenerates %s; ran in %v at scale %q", e.Paper, time.Since(start).Round(time.Millisecond), *scaleName)
		if *summary {
			r.WriteSummary(os.Stdout)
		} else {
			r.WriteText(os.Stdout)
		}
	}
	writeMetrics(*metricsJSON, collector)
}

// writeMetrics dumps the collector snapshot to path, if both are set.
func writeMetrics(path string, c *obs.Collector) {
	if path == "" || c == nil {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = c.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: metrics:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote device metrics snapshot to %s\n", path)
}

// runBench times each experiment serial then parallel and writes the
// BENCH_parallel.json comparison. The serial pass runs first so both
// passes see the same warmed state (none: experiments are pure functions
// of Scale), making the two timings directly comparable.
func runBench(path string, scale experiments.Scale, scaleName string, entries []experiments.Entry) error {
	n := scale.Workers
	if n <= 0 {
		n = parallel.DefaultWorkers()
	}
	rep := benchReport{
		Scale:      scaleName,
		Seed:       scale.Seed,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    n,
	}
	timeRun := func(e experiments.Entry, workers int) (float64, error) {
		s := scale
		s.Workers = workers
		start := time.Now()
		if _, err := e.Run(s); err != nil {
			return 0, fmt.Errorf("%s (workers=%d): %w", e.ID, workers, err)
		}
		return float64(time.Since(start).Microseconds()) / 1e3, nil
	}
	for _, e := range entries {
		ms1, err := timeRun(e, 1)
		if err != nil {
			return err
		}
		msN, err := timeRun(e, n)
		if err != nil {
			return err
		}
		entry := benchEntry{ID: e.ID, Workers1Ms: ms1, WorkersNMs: msN, Speedup: ms1 / msN}
		rep.Experiments = append(rep.Experiments, entry)
		rep.Total1Ms += ms1
		rep.TotalNMs += msN
		fmt.Fprintf(os.Stderr, "%-10s workers=1 %8.1fms  workers=%d %8.1fms  %.2fx\n",
			e.ID, ms1, n, msN, entry.Speedup)
	}
	if rep.TotalNMs > 0 {
		rep.Speedup = rep.Total1Ms / rep.TotalNMs
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total: workers=1 %.1fms, workers=%d %.1fms (%.2fx); wrote %s\n",
		rep.Total1Ms, n, rep.TotalNMs, rep.Speedup, path)
	return nil
}

// devBenchEntry is one experiment's direct-vs-ONFI wall-clock comparison.
type devBenchEntry struct {
	ID       string  `json:"id"`
	DirectMs float64 `json:"direct_ms"`
	ONFIMs   float64 `json:"onfi_ms"`
	Overhead float64 `json:"overhead"`
}

// devBenchReport is the BENCH_device.json document.
type devBenchReport struct {
	Scale         string          `json:"scale"`
	Seed          uint64          `json:"seed"`
	NumCPU        int             `json:"num_cpu"`
	GoMaxProcs    int             `json:"gomaxprocs"`
	Workers       int             `json:"workers"`
	Experiments   []devBenchEntry `json:"experiments"`
	TotalDirectMs float64         `json:"total_direct_ms"`
	TotalONFIMs   float64         `json:"total_onfi_ms"`
	Overhead      float64         `json:"overhead"`
}

// runDeviceBench times each experiment over the direct backend and over
// the ONFI command adapter, both at the selected worker count, and
// writes the per-backend cost comparison. Results are bit-identical
// across backends (see internal/experiments/backend_test.go), so the
// overhead column is the pure cost of the bus command encoding.
func runDeviceBench(path string, scale experiments.Scale, scaleName string, entries []experiments.Entry) error {
	n := scale.Workers
	if n <= 0 {
		n = parallel.DefaultWorkers()
	}
	rep := devBenchReport{
		Scale:      scaleName,
		Seed:       scale.Seed,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    n,
	}
	timeRun := func(e experiments.Entry, backend string) (float64, error) {
		s := scale
		s.Workers = n
		s.Backend = backend
		start := time.Now()
		if _, err := e.Run(s); err != nil {
			return 0, fmt.Errorf("%s (backend=%s): %w", e.ID, backend, err)
		}
		return float64(time.Since(start).Microseconds()) / 1e3, nil
	}
	for _, e := range entries {
		msD, err := timeRun(e, "direct")
		if err != nil {
			return err
		}
		msO, err := timeRun(e, "onfi")
		if err != nil {
			return err
		}
		entry := devBenchEntry{ID: e.ID, DirectMs: msD, ONFIMs: msO, Overhead: msO / msD}
		rep.Experiments = append(rep.Experiments, entry)
		rep.TotalDirectMs += msD
		rep.TotalONFIMs += msO
		fmt.Fprintf(os.Stderr, "%-10s direct %8.1fms  onfi %8.1fms  %.2fx\n",
			e.ID, msD, msO, entry.Overhead)
	}
	if rep.TotalDirectMs > 0 {
		rep.Overhead = rep.TotalONFIMs / rep.TotalDirectMs
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total: direct %.1fms, onfi %.1fms (%.2fx overhead); wrote %s\n",
		rep.TotalDirectMs, rep.TotalONFIMs, rep.Overhead, path)
	return nil
}
