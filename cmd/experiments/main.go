// Command experiments regenerates the paper's tables and figures from the
// simulated substrate. Each experiment prints its headline tables and (in
// full mode) the figure series as aligned (x, y) columns.
//
// Usage:
//
//	experiments -list
//	experiments [-scale ci|paper] [-summary] [-seed N] all
//	experiments [-scale ci|paper] fig6 fig10 tbl1 ...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stashflash/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "ci", "run scale: ci (seconds) or paper (minutes)")
	summary := flag.Bool("summary", false, "print tables and notes only, suppress series points")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Uint64("seed", 0, "override the scale's seed (0 keeps default)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Paper)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "ci":
		scale = experiments.CIScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (ci, paper)\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: name experiments to run, or \"all\" (see -list)")
		os.Exit(2)
	}
	var entries []experiments.Entry
	if len(ids) == 1 && ids[0] == "all" {
		entries = experiments.All()
	} else {
		for _, id := range ids {
			e, err := experiments.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	for _, e := range entries {
		start := time.Now()
		r, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		r.AddNote("regenerates %s; ran in %v at scale %q", e.Paper, time.Since(start).Round(time.Millisecond), *scaleName)
		if *summary {
			r.WriteSummary(os.Stdout)
		} else {
			r.WriteText(os.Stdout)
		}
	}
}
