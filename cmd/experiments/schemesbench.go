package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"stashflash/internal/core"
	"stashflash/internal/nand"
	"stashflash/internal/tester"

	_ "stashflash/internal/core/vthi"
	_ "stashflash/internal/core/womftl"
)

// Scheme benchmark (-schemesbenchjson): times the core hiding operations
// of every bake-off scheme — block hide, block reveal, and the post-hoc
// upgrade path — on full-geometry vendor-A chips. The document feeds the
// same benchdiff gate as the other BENCH_*.json baselines, so a scheme
// hot-path regression (WOM encode, BCH sizing, pulse loop) shows up red
// in CI even when the functional suite stays green.

// schemesBenchEntry is one (scheme, operation) wall-clock measurement.
type schemesBenchEntry struct {
	ID       string  `json:"id"`
	SchemeMs float64 `json:"scheme_ms"`
}

// schemesBenchReport is the BENCH_schemes.json document.
type schemesBenchReport struct {
	Scale         string              `json:"scale"`
	Seed          uint64              `json:"seed"`
	NumCPU        int                 `json:"num_cpu"`
	GoMaxProcs    int                 `json:"gomaxprocs"`
	Blocks        int                 `json:"blocks"`
	Experiments   []schemesBenchEntry `json:"experiments"`
	TotalSchemeMs float64             `json:"total_scheme_ms"`
}

// schemesBenchNames are the registry entries the bench times: the two
// bake-off contestants, by their canonical names.
var schemesBenchNames = []string{"vthi", "womftl"}

// schemesBenchBlocks is how many blocks each timed operation covers.
const schemesBenchBlocks = 1

// schemesBenchReps is the best-of repetition count per timed scenario. A
// variable so the flag-plumbing tests can drop it to 1.
var schemesBenchReps = 3

// schemesBenchTyped tolerates the seam's contractual hiding losses (a
// live system remaps and carries on); anything else aborts the bench.
func schemesBenchTyped(err error) bool {
	return errors.Is(err, core.ErrHiddenUnrecoverable) ||
		errors.Is(err, core.ErrPublicUncorrectable)
}

// schemesBenchSubstrate builds a fresh full-geometry chip with a scheme
// instance over it. Build cost is outside every timed region.
func schemesBenchSubstrate(name string, seed uint64) (*tester.Tester, core.Scheme, error) {
	info, err := core.SchemeByName(name)
	if err != nil {
		return nil, nil, err
	}
	chip := nand.NewChip(nand.ModelA(), seed)
	sc, err := info.New(chip, []byte("schemes-bench-key"))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	return tester.New(chip, seed^0x5eed), sc, nil
}

// hideBlocks drives HideBlock over the bench's block budget, tolerating
// typed per-block losses.
func hideBlocks(ts *tester.Tester, sc core.Scheme) error {
	for b := 0; b < schemesBenchBlocks; b++ {
		if _, _, err := ts.HideBlock(sc, b, 0); err != nil && !schemesBenchTyped(err) {
			return err
		}
	}
	return nil
}

// runSchemesBench times every (scheme, operation) scenario and writes the
// BENCH_schemes.json document. Scenarios run on full-geometry chips
// regardless of -scale; only the seed is taken from the run scale.
func runSchemesBench(path string, seed uint64) error {
	rep := schemesBenchReport{
		Scale:      "modelA-full",
		Seed:       seed,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Blocks:     schemesBenchBlocks,
	}
	// Best-of-schemesBenchReps with a clean heap before each timed region;
	// every repetition gets a fresh substrate so no run sees another's
	// programmed state, and the minimum discards runs a GC pause landed in.
	timeOp := func(name string, prep bool, op func(*tester.Tester, core.Scheme) error) (float64, error) {
		best := 0.0
		for r := 0; r < schemesBenchReps; r++ {
			ts, sc, err := schemesBenchSubstrate(name, seed)
			if err != nil {
				return 0, err
			}
			if prep {
				if err := hideBlocks(ts, sc); err != nil {
					return 0, fmt.Errorf("%s: preparing hidden blocks: %w", name, err)
				}
			}
			runtime.GC()
			start := time.Now()
			if err := op(ts, sc); err != nil {
				return 0, fmt.Errorf("%s: %w", name, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1e3
			if r == 0 || ms < best {
				best = ms
			}
		}
		return best, nil
	}
	type scenario struct {
		op   string
		prep bool
		run  func(*tester.Tester, core.Scheme) error
	}
	scenarios := []scenario{
		{"hide", false, hideBlocks},
		{"reveal", true, func(ts *tester.Tester, sc core.Scheme) error {
			for b := 0; b < schemesBenchBlocks; b++ {
				if _, _, err := ts.RevealBlock(sc, b, sc.HiddenPayloadBytes(), 0); err != nil && !schemesBenchTyped(err) {
					return err
				}
			}
			return nil
		}},
		{"posthoc", false, func(ts *tester.Tester, sc core.Scheme) error {
			g := ts.Device().Geometry()
			stride := sc.HiddenPageStride()
			// Pseudorandom covers: an all-zero page would program every
			// cell and leave the hider nothing to embed into.
			pub := make([]byte, sc.PublicDataBytes())
			x := uint64(0x9E3779B97F4A7C15)
			for i := range pub {
				x = x*6364136223846793005 + 1442695040888963407
				pub[i] = byte(x >> 56)
			}
			hidden := make([]byte, sc.HiddenPayloadBytes())
			for i := range hidden {
				hidden[i] = byte(i)
			}
			// The pulse path costs two orders of magnitude more per page
			// than the inline path; eight pages time it fine.
			pages := g.PagesPerBlock
			if pages > 8 {
				pages = 8
			}
			for p := 0; p < pages; p += stride {
				a := nand.PageAddr{Block: 0, Page: p}
				if err := sc.WritePage(a, pub); err != nil {
					return err
				}
				if _, err := sc.Hide(a, hidden, 0); err != nil && !schemesBenchTyped(err) {
					return err
				}
			}
			return nil
		}},
	}
	for _, name := range schemesBenchNames {
		for _, sn := range scenarios {
			ms, err := timeOp(name, sn.prep, sn.run)
			if err != nil {
				return err
			}
			id := name + "/" + sn.op
			rep.Experiments = append(rep.Experiments, schemesBenchEntry{ID: id, SchemeMs: ms})
			rep.TotalSchemeMs += ms
			fmt.Fprintf(os.Stderr, "%-16s %10.3fms\n", id, ms)
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total: %.3fms; wrote %s\n", rep.TotalSchemeMs, path)
	return nil
}
