package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"stashflash/internal/experiments"
	"stashflash/internal/nand"
	"stashflash/internal/obs"
)

// capEntry returns the cheapest experiment (pure capacity arithmetic, no
// device churn) so the bench plumbing tests run in milliseconds.
func capEntry(t *testing.T) []experiments.Entry {
	t.Helper()
	e, err := experiments.Lookup("cap")
	if err != nil {
		t.Fatal(err)
	}
	return []experiments.Entry{e}
}

// readJSON loads a written report back as a generic document.
func readJSON(t *testing.T, path string) map[string]any {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	return doc
}

// expEntry extracts experiments[0] from a bench document.
func expEntry(t *testing.T, doc map[string]any) map[string]any {
	t.Helper()
	exps, ok := doc["experiments"].([]any)
	if !ok || len(exps) != 1 {
		t.Fatalf("experiments array malformed: %v", doc["experiments"])
	}
	return exps[0].(map[string]any)
}

func TestRunBenchWritesComparisonDocument(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	scale := experiments.CIScale()
	scale.Workers = 2
	if err := runBench(path, scale, "ci", capEntry(t)); err != nil {
		t.Fatal(err)
	}
	doc := readJSON(t, path)
	if doc["scale"] != "ci" || doc["workers"].(float64) != 2 {
		t.Fatalf("scale/workers not plumbed: %v", doc)
	}
	e := expEntry(t, doc)
	if e["id"] != "cap" {
		t.Fatalf("experiment id = %v", e["id"])
	}
	for _, k := range []string{"workers1_ms", "workersN_ms", "speedup"} {
		if _, ok := e[k].(float64); !ok {
			t.Errorf("entry key %q missing: %v", k, e)
		}
	}
	for _, k := range []string{"seed", "num_cpu", "gomaxprocs", "total_workers1_ms", "total_workersN_ms"} {
		if _, ok := doc[k].(float64); !ok {
			t.Errorf("report key %q missing", k)
		}
	}
}

func TestRunDeviceBenchWritesComparisonDocument(t *testing.T) {
	path := filepath.Join(t.TempDir(), "devbench.json")
	if err := runDeviceBench(path, experiments.CIScale(), "ci", capEntry(t)); err != nil {
		t.Fatal(err)
	}
	doc := readJSON(t, path)
	e := expEntry(t, doc)
	if e["id"] != "cap" {
		t.Fatalf("experiment id = %v", e["id"])
	}
	for _, k := range []string{"direct_ms", "onfi_ms", "overhead"} {
		if _, ok := e[k].(float64); !ok {
			t.Errorf("entry key %q missing: %v", k, e)
		}
	}
	for _, k := range []string{"total_direct_ms", "total_onfi_ms", "overhead"} {
		if _, ok := doc[k].(float64); !ok {
			t.Errorf("report key %q missing", k)
		}
	}
}

func TestRunRetentionBenchWritesComparisonDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("ages full-geometry chips; skipped in -short mode")
	}
	defer func(old int) { retBenchReps = old }(retBenchReps)
	retBenchReps = 1

	path := filepath.Join(t.TempDir(), "retbench.json")
	if err := runRetentionBench(path, 99); err != nil {
		t.Fatal(err)
	}
	doc := readJSON(t, path)
	if doc["seed"].(float64) != 99 || doc["programmed_pages"].(float64) == 0 {
		t.Fatalf("seed/pages not plumbed: %v", doc)
	}
	exps, ok := doc["experiments"].([]any)
	if !ok || len(exps) == 0 {
		t.Fatalf("no scenarios in report: %v", doc["experiments"])
	}
	for _, raw := range exps {
		e := raw.(map[string]any)
		for _, k := range []string{"id", "lazy_ms", "eager_ms", "speedup"} {
			if _, ok := e[k]; !ok {
				t.Errorf("scenario key %q missing: %v", k, e)
			}
		}
	}
	if doc["total_eager_ms"].(float64) <= 0 {
		t.Fatalf("eager total implausible: %v", doc["total_eager_ms"])
	}
}

func TestRunSchemesBenchWritesDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full-geometry chips; skipped in -short mode")
	}
	defer func(old int) { schemesBenchReps = old }(schemesBenchReps)
	schemesBenchReps = 1

	path := filepath.Join(t.TempDir(), "schemesbench.json")
	if err := runSchemesBench(path, 7); err != nil {
		t.Fatal(err)
	}
	doc := readJSON(t, path)
	if doc["seed"].(float64) != 7 || doc["blocks"].(float64) == 0 {
		t.Fatalf("seed/blocks not plumbed: %v", doc)
	}
	exps, ok := doc["experiments"].([]any)
	if !ok || len(exps) != 3*len(schemesBenchNames) {
		t.Fatalf("want %d scenario entries, got %v", 3*len(schemesBenchNames), doc["experiments"])
	}
	seen := map[string]bool{}
	for _, raw := range exps {
		e := raw.(map[string]any)
		id, _ := e["id"].(string)
		seen[id] = true
		if ms, ok := e["scheme_ms"].(float64); !ok || ms < 0 {
			t.Errorf("scenario %q scheme_ms malformed: %v", id, e)
		}
	}
	for _, want := range []string{"vthi/hide", "vthi/reveal", "vthi/posthoc", "womftl/hide", "womftl/reveal", "womftl/posthoc"} {
		if !seen[want] {
			t.Errorf("scenario %q missing from report (have %v)", want, seen)
		}
	}
	if doc["total_scheme_ms"].(float64) <= 0 {
		t.Fatalf("total implausible: %v", doc["total_scheme_ms"])
	}
}

func TestRunFleetBenchWritesDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a multi-tenant fleet; skipped in -short mode")
	}
	defer func(old int) { fleetBenchReps = old }(fleetBenchReps)
	fleetBenchReps = 1

	path := filepath.Join(t.TempDir(), "fleetbench.json")
	if err := runFleetBench(path, 11); err != nil {
		t.Fatal(err)
	}
	doc := readJSON(t, path)
	if doc["seed"].(float64) != 11 || doc["shards"].(float64) != fleetBenchShards {
		t.Fatalf("seed/shards not plumbed: %v", doc)
	}
	if doc["win_floor"].(float64) != fleetBenchWinFloor {
		t.Fatalf("win_floor not plumbed: %v", doc["win_floor"])
	}
	exps, ok := doc["experiments"].([]any)
	if !ok || len(exps) != 2*len(fleetBenchFanouts) {
		t.Fatalf("want %d scenario entries, got %v", 2*len(fleetBenchFanouts), doc["experiments"])
	}
	seen := map[string]bool{}
	for _, raw := range exps {
		e := raw.(map[string]any)
		id, _ := e["id"].(string)
		seen[id] = true
		if ms, ok := e["fleet_ms"].(float64); !ok || ms < 0 {
			t.Errorf("scenario %q fleet_ms malformed: %v", id, e)
		}
	}
	for _, want := range []string{"fanout1/unbatched", "fanout4/unbatched", "fanout16/unbatched",
		"fanout1/batched", "fanout4/batched", "fanout16/batched"} {
		if !seen[want] {
			t.Errorf("scenario %q missing from report (have %v)", want, seen)
		}
	}
	if doc["total_fleet_ms"].(float64) <= 0 {
		t.Fatalf("total implausible: %v", doc["total_fleet_ms"])
	}
	// The coalescer must actually merge at the top fan-out: the win the
	// committed baseline's floor enforces has to reproduce here.
	if win := doc["max_fan_win"].(float64); win < fleetBenchWinFloor {
		t.Fatalf("max_fan_win %.2f below the %v floor", win, fleetBenchWinFloor)
	}
}

func TestWriteMetricsSnapshotDocument(t *testing.T) {
	c := obs.NewCollector(0)
	dev := c.Wrap(nand.NewChip(nand.TestModel(), 1))
	if err := dev.EraseBlock(0); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "metrics.json")
	writeMetrics(path, c)
	doc := readJSON(t, path)
	if doc["schema"] != obs.SnapshotSchema {
		t.Fatalf("metrics schema = %v, want %q", doc["schema"], obs.SnapshotSchema)
	}
	if ops, ok := doc["ops"].(map[string]any); !ok || ops["erase"] == nil {
		t.Fatalf("recorded erase missing from snapshot: %v", doc["ops"])
	}

	// The nil-collector and empty-path forms must both be no-ops (main
	// calls writeMetrics unconditionally at the end of a run).
	writeMetrics("", c)
	writeMetrics(filepath.Join(t.TempDir(), "untouched.json"), nil)
}
